// ivmf_decompose — command-line interval SVD.
//
// Reads an interval matrix from a file and auto-detects the format: dense
// interval CSV (cells `lo:hi`, bare numbers are scalars) or the sparse
// triplet format of io/triplets.h (first line `%%ivmf interval coordinate`).
// Runs the selected ISVD strategy / decomposition target, prints the Θ_HM
// reconstruction accuracy, and optionally writes the factors. Triplet input
// is decomposed through the matrix-free sparse path — all five strategies,
// signed or non-negative; accuracy and the dense reconstruction output are
// skipped when the dense shape would be unreasonably large.
//
// Usage:
//   ivmf_decompose --input=m.csv [--rank=10] [--strategy=4] [--target=b]
//                  [--matcher=hungarian|greedy|stable] [--eig=jacobi|lanczos]
//                  [--shard_rows=N] [--backing=memory|mmap|auto:MB]
//                  [--out_prefix=result]
//
// With --out_prefix=P the tool writes P_u.csv, P_sigma.csv, P_v.csv (interval
// CSV for interval-valued outputs, scalar CSV otherwise) and P_recon.csv.
//
// --shard_rows=N (triplet input only) decomposes through a block-row
// sharded store of N-row shards. --backing selects where the shard segments
// live: memory (default), mmap (segment files in a temp store — the
// out-of-core path), or auto:MB (memory unless the estimated store exceeds
// MB mebibytes).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "base/flags.h"
#include "core/accuracy.h"
#include "core/isvd.h"
#include "core/sparse_isvd.h"
#include "io/csv.h"
#include "io/file_util.h"
#include "io/triplets.h"
#include "obs/log.h"
#include "sparse/block_matrix.h"
#include "sparse/shard_store.h"

namespace {

using ivmf::IntFlag;
using ivmf::StringFlag;

void Usage() {
  std::fprintf(stderr,
               "usage: ivmf_decompose --input=FILE.csv [--rank=N] "
               "[--strategy=0..4] [--target=a|b|c]\n"
               "                      [--matcher=hungarian|greedy|stable] "
               "[--eig=jacobi|lanczos]\n"
               "                      [--shard_rows=N] "
               "[--backing=memory|mmap|auto:MB] [--out_prefix=P]\n");
}

// Parses --backing. Returns false (after Usage) on a malformed value.
bool ParseBacking(const std::string& backing, ivmf::BackingPolicy* policy) {
  if (backing.empty() || backing == "memory") {
    *policy = ivmf::BackingPolicy::Memory();
    return true;
  }
  if (backing == "mmap") {
    *policy = ivmf::BackingPolicy::Mmap();
    return true;
  }
  constexpr char kAutoPrefix[] = "auto:";
  if (backing.rfind(kAutoPrefix, 0) == 0) {
    char* end = nullptr;
    const std::string mb = backing.substr(sizeof(kAutoPrefix) - 1);
    const unsigned long long value = std::strtoull(mb.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && !mb.empty()) {
      *policy = ivmf::BackingPolicy::Auto(static_cast<size_t>(value) << 20);
      return true;
    }
  }
  Usage();
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ivmf;

  const std::string input = StringFlag(argc, argv, "input", "");
  if (input.empty()) {
    Usage();
    return 2;
  }

  const std::optional<std::string> loaded =
      io_internal::ReadFileToString(input);
  if (!loaded) {
    obs::LogError("decompose_cli", "cannot read input", {{"path", input}});
    return 1;
  }
  const std::string& text = *loaded;

  // Format auto-detection: triplet files announce themselves on line 1.
  const bool sparse_input = LooksLikeTriplets(text);
  std::optional<SparseIntervalMatrix> sparse;
  std::optional<IntervalMatrix> m;
  if (sparse_input) {
    sparse = SparseIntervalMatrixFromTriplets(text);
    if (!sparse) {
      obs::LogError("decompose_cli", "cannot parse interval triplets",
                    {{"path", input}});
      return 1;
    }
    // Densify small matrices so accuracy / reconstruction still work.
    constexpr size_t kDensifyLimit = 4u << 20;  // dense cells
    if (sparse->rows() * sparse->cols() <= kDensifyLimit) {
      m = sparse->ToDense();
    }
  } else {
    m = IntervalMatrixFromCsv(text);
    if (!m) {
      obs::LogError("decompose_cli", "cannot parse interval CSV",
                    {{"path", input}});
      return 1;
    }
  }

  const int strategy = IntFlag(argc, argv, "strategy", 4);
  if (strategy < 0 || strategy > 4) {
    Usage();
    return 2;
  }
  const size_t rank = static_cast<size_t>(IntFlag(argc, argv, "rank", 0));

  IsvdOptions options;
  const std::string target = StringFlag(argc, argv, "target", "b");
  if (target == "a") {
    options.target = DecompositionTarget::kA;
  } else if (target == "b") {
    options.target = DecompositionTarget::kB;
  } else if (target == "c") {
    options.target = DecompositionTarget::kC;
  } else {
    Usage();
    return 2;
  }
  const std::string matcher = StringFlag(argc, argv, "matcher", "hungarian");
  if (matcher == "greedy") {
    options.ilsa.matcher = AlignMatcher::kGreedy;
  } else if (matcher == "stable") {
    options.ilsa.matcher = AlignMatcher::kStableMarriage;
  } else if (matcher != "hungarian") {
    Usage();
    return 2;
  }
  // Dense input keeps the exact-by-default Jacobi solver; triplet input
  // defaults to the matrix-free Lanczos route (the reason to use triplets).
  const std::string eig = StringFlag(argc, argv, "eig", "");
  if (eig == "lanczos") {
    options.eig_solver = EigSolver::kLanczos;
  } else if (eig == "jacobi") {
    options.eig_solver = EigSolver::kJacobi;
  } else if (!eig.empty()) {
    Usage();
    return 2;
  } else if (sparse_input) {
    options.eig_solver = EigSolver::kLanczos;
  }
  options.gram_side = GramSide::kAuto;

  const size_t shard_rows =
      static_cast<size_t>(IntFlag(argc, argv, "shard_rows", 0));
  BackingPolicy backing;
  if (!ParseBacking(StringFlag(argc, argv, "backing", ""), &backing)) {
    return 2;
  }
  if (shard_rows > 0 && !sparse_input) {
    obs::LogError("decompose_cli",
                  "--shard_rows needs sparse triplet input", {});
    return 2;
  }

  IsvdResult result;
  if (sparse_input) {
    std::printf("input: %zu x %zu sparse interval matrix (%zu nnz, fill "
                "%.4f) from %s\n",
                sparse->rows(), sparse->cols(), sparse->nnz(),
                sparse->FillFraction(), input.c_str());
    if (shard_rows > 0) {
      const ShardedSparseIntervalMatrix sharded =
          ShardedSparseIntervalMatrix::FromCsr(*sparse, shard_rows, backing);
      std::printf("sharded: %zu shards of %zu rows, %s-backed\n",
                  sharded.num_shards(), sharded.shard_rows(),
                  sharded.mmap_backed() ? "mmap" : "memory");
      result = RunIsvd(strategy, sharded, rank, options);
    } else {
      result = RunIsvd(strategy, *sparse, rank, options);
    }
  } else {
    std::printf("input: %zu x %zu interval matrix from %s\n", m->rows(),
                m->cols(), input.c_str());
    result = RunIsvd(strategy, *m, rank, options);
  }

  IntervalMatrix recon;
  if (m.has_value()) {
    recon = result.Reconstruct();
    const AccuracyReport report = DecompositionAccuracy(*m, recon);
    std::printf("%s, rank %zu: Θ(min)=%.4f Θ(max)=%.4f Θ_HM=%.4f\n",
                IsvdName(strategy, options.target).c_str(), result.rank(),
                report.theta_min, report.theta_max, report.harmonic_mean);
  } else {
    std::printf("%s, rank %zu (dense shape too large: accuracy / "
                "reconstruction skipped)\n",
                IsvdName(strategy, options.target).c_str(), result.rank());
  }
  const PhaseTimings& t = result.timings;
  std::printf("time: total %.4fs (preproc %.4f, decomp %.4f, align %.4f, "
              "solve %.4f, recomp %.4f, renorm %.4f)\n",
              t.Total(), t.preprocess, t.decompose, t.align, t.solve,
              t.recompute, t.renormalize);

  const std::string prefix = StringFlag(argc, argv, "out_prefix", "");
  if (!prefix.empty()) {
    bool ok = true;
    if (options.target == DecompositionTarget::kA) {
      ok &= SaveIntervalMatrixCsv(prefix + "_u.csv", result.u);
      ok &= SaveIntervalMatrixCsv(prefix + "_v.csv", result.v);
    } else {
      ok &= SaveMatrixCsv(prefix + "_u.csv", result.ScalarU());
      ok &= SaveMatrixCsv(prefix + "_v.csv", result.ScalarV());
    }
    IntervalMatrix sigma(result.rank(), result.rank());
    for (size_t j = 0; j < result.rank(); ++j)
      sigma.Set(j, j, result.sigma[j]);
    ok &= SaveIntervalMatrixCsv(prefix + "_sigma.csv", sigma);
    if (m.has_value()) {
      ok &= SaveIntervalMatrixCsv(prefix + "_recon.csv", recon);
    }
    if (!ok) {
      obs::LogError("decompose_cli", "failed writing factor outputs",
                    {{"prefix", prefix}});
      return 1;
    }
    std::printf("wrote %s_{u,sigma,v%s}.csv\n", prefix.c_str(),
                m.has_value() ? ",recon" : "");
  }
  return 0;
}
