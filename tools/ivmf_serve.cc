// ivmf_serve — concurrent serving loop over a streaming interval SVD.
//
// Loads a rating matrix (triplet file, or a synthetic CF workload when no
// --input is given), runs the initial decomposition, and serves it: a
// ServingEngine publishes an immutable snapshot per refresh while reader
// threads issue a YCSB-style mix of point predictions, top-k ranking scans,
// and rating updates against zipfian-popular users. Prints per-op latency
// percentiles and throughput, then a few sample queries from the final
// epoch so the served values are visible.
//
// Usage:
//   ivmf_serve [--input=BASE.trp] [--rank=10] [--strategy=2]
//              [--readers=4] [--duration_ms=2000] [--read_pct=90]
//              [--topk_pct=5] [--topk=10] [--theta_pct=99] [--uniform]
//              [--seed=1234] [--probe_user=0]
//   or synthetic: --users=N --items=M [--fill_pct=F] [--alpha_pct=A]

#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/flags.h"
#include "data/ratings.h"
#include "io/triplets.h"
#include "serve/serving_engine.h"
#include "serve/workload.h"

int main(int argc, char** argv) {
  using namespace ivmf;

  const int strategy = IntFlag(argc, argv, "strategy", 2);
  if (strategy < 0 || strategy > 4) {
    std::fprintf(stderr, "error: --strategy must be 0..4\n");
    return 2;
  }
  const size_t rank = static_cast<size_t>(IntFlag(argc, argv, "rank", 10));

  SparseIntervalMatrix base;
  const std::string input = StringFlag(argc, argv, "input", "");
  if (!input.empty()) {
    std::optional<SparseIntervalMatrix> loaded =
        LoadSparseIntervalTriplets(input);
    if (!loaded) {
      std::fprintf(stderr, "error: cannot parse base triplets '%s'\n",
                   input.c_str());
      return 1;
    }
    base = std::move(*loaded);
  } else {
    RatingsConfig config;
    config.num_users =
        static_cast<size_t>(IntFlag(argc, argv, "users", 5000));
    config.num_items =
        static_cast<size_t>(IntFlag(argc, argv, "items", 1000));
    config.fill = IntFlag(argc, argv, "fill_pct", 5) / 100.0;
    config.seed = static_cast<uint64_t>(IntFlag(argc, argv, "gen_seed", 404));
    const double alpha = IntFlag(argc, argv, "alpha_pct", 30) / 100.0;
    base = SparseCfIntervalMatrix(GenerateSparseRatings(config), alpha);
  }
  if (base.rows() == 0 || base.cols() == 0) {
    std::fprintf(stderr, "error: base matrix is empty\n");
    return 1;
  }

  ServingWorkloadOptions workload;
  workload.readers = static_cast<size_t>(IntFlag(argc, argv, "readers", 4));
  workload.duration_seconds =
      IntFlag(argc, argv, "duration_ms", 2000) / 1000.0;
  workload.read_fraction = IntFlag(argc, argv, "read_pct", 90) / 100.0;
  workload.topk_fraction = IntFlag(argc, argv, "topk_pct", 5) / 100.0;
  workload.top_k = static_cast<size_t>(IntFlag(argc, argv, "topk", 10));
  workload.zipf_theta = IntFlag(argc, argv, "theta_pct", 99) / 100.0;
  workload.user_distribution = BoolFlag(argc, argv, "uniform")
                                   ? KeyDistribution::kUniform
                                   : KeyDistribution::kZipfian;
  workload.seed = static_cast<uint64_t>(IntFlag(argc, argv, "seed", 1234));

  std::printf("serving %zu x %zu sparse interval matrix, %zu nnz, ISVD%d "
              "rank %zu\n",
              base.rows(), base.cols(), base.nnz(), strategy, rank);

  ServingEngine engine(strategy, rank, std::move(base));
  std::printf("epoch %llu published (initial decomposition); running %zu "
              "readers for %.1fs...\n",
              static_cast<unsigned long long>(engine.epoch()),
              workload.readers, workload.duration_seconds);

  const ServingWorkloadReport report = RunServingWorkload(engine, workload);

  const auto print_op = [&](const char* op, size_t ops,
                            const LatencyRecorder& lat) {
    if (ops == 0) return;
    std::printf("  %-8s %9zu ops  %8.0f ops/s  p50 %7.1fus  p95 %7.1fus  "
                "p99 %7.1fus\n",
                op, ops, static_cast<double>(ops) / report.seconds,
                lat.Percentile(50) * 1e6, lat.Percentile(95) * 1e6,
                lat.Percentile(99) * 1e6);
  };
  print_op("predict", report.predict_ops, report.predict_latency);
  print_op("topk", report.topk_ops, report.topk_latency);
  print_op("update", report.update_ops, report.update_latency);
  std::printf("total %zu ops, %.0f ops/s; epochs %llu -> %llu "
              "(%llu published), %zu regressions\n",
              report.total_ops(), report.throughput(),
              static_cast<unsigned long long>(report.first_epoch),
              static_cast<unsigned long long>(report.last_epoch),
              static_cast<unsigned long long>(report.snapshots_published),
              report.epoch_regressions);
  if (report.epoch_regressions != 0) {
    std::fprintf(stderr, "error: readers observed non-monotonic epochs\n");
    return 1;
  }

  // Sample queries from the final epoch.
  const std::shared_ptr<const ServingSnapshot> snapshot = engine.Acquire();
  const size_t probe_user = static_cast<size_t>(
      IntFlag(argc, argv, "probe_user", 0));
  if (probe_user < snapshot->users()) {
    std::printf("\nepoch %llu, user %zu, top-%zu unrated items "
                "(midpoint-ranked):\n",
                static_cast<unsigned long long>(snapshot->epoch()),
                probe_user, workload.top_k);
    for (const ServingSnapshot::ScoredItem& s : snapshot->TopK(
             probe_user, workload.top_k, /*exclude_observed=*/true)) {
      std::printf("  item %6zu  predicted [%.4f, %.4f]\n", s.item,
                  s.score.lo, s.score.hi);
    }
  }
  return 0;
}
