// ivmf_serve — concurrent serving loop over a streaming interval SVD.
//
// Loads a rating matrix (triplet file, or a synthetic CF workload when no
// --input is given), runs the initial decomposition, and serves it: a
// ServingEngine publishes an immutable snapshot per refresh while reader
// threads issue a YCSB-style mix of point predictions, top-k ranking scans,
// and rating updates against zipfian-popular users. Prints per-op latency
// percentiles and throughput, then a few sample queries from the final
// epoch so the served values are visible.
//
// Observability: a monitor thread prints a stats line every --stats_ms
// (epoch, ops so far, queue depth, matvecs; 0 disables), --metrics-json
// dumps the full registry snapshot (counters, gauges, p50/p95/p99
// histograms) to a file, and --trace records spans (refreshes, solves,
// serving steps) to a Chrome trace_event file loadable in chrome://tracing.
// --http_port=N additionally serves /metrics, /metrics.json, /tracez,
// /logz, and /healthz live while the workload runs (port 0 = ephemeral,
// printed at startup); /healthz is backed by a watchdog that beats on every
// snapshot publication and reports stalled when cells are queued but
// nothing published for --stall_seconds.
//
// Usage:
//   ivmf_serve [--input=BASE.trp] [--rank=10] [--strategy=2]
//              [--readers=4] [--duration_ms=2000] [--read_pct=90]
//              [--topk_pct=5] [--topk=10] [--theta_pct=99] [--uniform]
//              [--seed=1234] [--probe_user=0] [--stats_ms=1000]
//              [--metrics-json=PATH] [--trace=PATH]
//              [--http_port=N] [--stall_seconds=S]
//   or synthetic: --users=N --items=M [--fill_pct=F] [--alpha_pct=A]

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/flags.h"
#include "data/ratings.h"
#include "io/triplets.h"
#include "obs/export_flags.h"
#include "obs/http_exporter.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "serve/serving_engine.h"
#include "serve/workload.h"

namespace {

// Periodic one-line progress report, printed from its own thread while the
// workload runs. Wakes on a condition variable so shutdown is immediate.
class StatsMonitor {
 public:
  StatsMonitor(const ivmf::ServingEngine& engine, int interval_ms)
      : engine_(engine), interval_ms_(interval_ms) {
    if (interval_ms_ > 0) thread_ = std::thread([this] { Loop(); });
  }

  ~StatsMonitor() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                       [this] { return stop_; })) {
        return;
      }
      const ivmf::obs::MetricsSnapshot snapshot =
          ivmf::obs::MetricsRegistry::Global().Snapshot();
      std::printf(
          "[stats] epoch %llu | ops %llu | pending %zu cells | "
          "refreshes %llu warm / %llu cold | matvecs %llu\n",
          static_cast<unsigned long long>(engine_.epoch()),
          static_cast<unsigned long long>(snapshot.CounterSum("serve.ops")),
          engine_.pending_cells(),
          static_cast<unsigned long long>(
              snapshot.CounterValue("streaming.refresh.count{mode=warm}")),
          static_cast<unsigned long long>(
              snapshot.CounterValue("streaming.refresh.count{mode=cold}")),
          static_cast<unsigned long long>(
              snapshot.CounterSum("sparse.matvec.calls")));
      std::fflush(stdout);
    }
  }

  const ivmf::ServingEngine& engine_;
  const int interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ivmf;

  const int strategy = IntFlag(argc, argv, "strategy", 2);
  if (strategy < 0 || strategy > 4) {
    obs::LogError("serve_cli", "--strategy must be 0..4",
                  {{"strategy", strategy}});
    return 2;
  }
  const size_t rank = static_cast<size_t>(IntFlag(argc, argv, "rank", 10));
  const obs::ObsCliOptions obs_options = obs::ParseObsCliOptions(argc, argv);
  const int stats_ms = IntFlag(argc, argv, "stats_ms", 1000);

  obs::StartObsCollection(obs_options);

  SparseIntervalMatrix base;
  const std::string input = StringFlag(argc, argv, "input", "");
  if (!input.empty()) {
    std::optional<SparseIntervalMatrix> loaded =
        LoadSparseIntervalTriplets(input);
    if (!loaded) {
      obs::LogError("serve_cli", "cannot parse base triplets",
                    {{"path", input}});
      return 1;
    }
    base = std::move(*loaded);
  } else {
    RatingsConfig config;
    config.num_users =
        static_cast<size_t>(IntFlag(argc, argv, "users", 5000));
    config.num_items =
        static_cast<size_t>(IntFlag(argc, argv, "items", 1000));
    config.fill = IntFlag(argc, argv, "fill_pct", 5) / 100.0;
    config.seed = static_cast<uint64_t>(IntFlag(argc, argv, "gen_seed", 404));
    const double alpha = IntFlag(argc, argv, "alpha_pct", 30) / 100.0;
    base = SparseCfIntervalMatrix(GenerateSparseRatings(config), alpha);
  }
  if (base.rows() == 0 || base.cols() == 0) {
    obs::LogError("serve_cli", "base matrix is empty");
    return 1;
  }

  ServingWorkloadOptions workload;
  workload.readers = static_cast<size_t>(IntFlag(argc, argv, "readers", 4));
  workload.duration_seconds =
      IntFlag(argc, argv, "duration_ms", 2000) / 1000.0;
  workload.read_fraction = IntFlag(argc, argv, "read_pct", 90) / 100.0;
  workload.topk_fraction = IntFlag(argc, argv, "topk_pct", 5) / 100.0;
  workload.top_k = static_cast<size_t>(IntFlag(argc, argv, "topk", 10));
  workload.zipf_theta = IntFlag(argc, argv, "theta_pct", 99) / 100.0;
  workload.user_distribution = BoolFlag(argc, argv, "uniform")
                                   ? KeyDistribution::kUniform
                                   : KeyDistribution::kZipfian;
  workload.seed = static_cast<uint64_t>(IntFlag(argc, argv, "seed", 1234));

  std::printf("serving %zu x %zu sparse interval matrix, %zu nnz, ISVD%d "
              "rank %zu\n",
              base.rows(), base.cols(), base.nnz(), strategy, rank);

  // The watchdog watches refresh progress: the engine beats on every
  // snapshot publication, and "stalled" requires cells actually queued
  // (an idle engine with a stale heartbeat is healthy). The engine pointer
  // is filled in after construction; on_publish only fires from the engine
  // itself, so the beat never races the assignment.
  ServingEngine* engine_ptr = nullptr;
  obs::WatchdogOptions watchdog_options;
  watchdog_options.stall_seconds = obs_options.stall_seconds;
  watchdog_options.busy = [&engine_ptr] {
    return engine_ptr != nullptr && engine_ptr->pending_cells() > 0;
  };
  obs::Watchdog watchdog(watchdog_options);

  ServingEngineOptions engine_options;
  engine_options.on_publish =
      [&watchdog](const std::shared_ptr<const ServingSnapshot>&) {
        watchdog.Beat();
      };
  ServingEngine engine(strategy, rank, std::move(base),
                       std::move(engine_options));
  engine_ptr = &engine;

  obs::HttpExporter exporter([&] {
    obs::HttpExporterOptions http;
    http.port = static_cast<uint16_t>(obs_options.http_port);
    http.watchdog = &watchdog;
    return http;
  }());
  if (obs_options.http_requested) {
    if (!exporter.Start()) return 1;
    std::printf("introspection: http://127.0.0.1:%u/ (metrics, tracez, "
                "logz, healthz)\n",
                static_cast<unsigned>(exporter.port()));
  }

  std::printf("epoch %llu published (initial decomposition); running %zu "
              "readers for %.1fs...\n",
              static_cast<unsigned long long>(engine.epoch()),
              workload.readers, workload.duration_seconds);

  ServingWorkloadReport report;
  {
    StatsMonitor monitor(engine, stats_ms);
    report = RunServingWorkload(engine, workload);
  }

  const auto print_op = [&](const char* op, size_t ops,
                            const obs::Histogram& lat) {
    if (ops == 0) return;
    std::printf("  %-8s %9zu ops  %8.0f ops/s  p50 %7.1fus  p95 %7.1fus  "
                "p99 %7.1fus\n",
                op, ops, static_cast<double>(ops) / report.seconds,
                lat.Percentile(50) * 1e6, lat.Percentile(95) * 1e6,
                lat.Percentile(99) * 1e6);
  };
  print_op("predict", report.predict_ops, report.predict_latency);
  print_op("topk", report.topk_ops, report.topk_latency);
  print_op("update", report.update_ops, report.update_latency);
  std::printf("total %zu ops, %.0f ops/s; epochs %llu -> %llu "
              "(%llu published), %zu regressions\n",
              report.total_ops(), report.throughput(),
              static_cast<unsigned long long>(report.first_epoch),
              static_cast<unsigned long long>(report.last_epoch),
              static_cast<unsigned long long>(report.snapshots_published),
              report.epoch_regressions);
  if (report.epoch_regressions != 0) {
    obs::LogError("serve_cli", "readers observed non-monotonic epochs",
                  {{"regressions", report.epoch_regressions}});
    return 1;
  }

  // Sample queries from the final epoch.
  const std::shared_ptr<const ServingSnapshot> snapshot = engine.Acquire();
  const size_t probe_user = static_cast<size_t>(
      IntFlag(argc, argv, "probe_user", 0));
  if (probe_user < snapshot->users()) {
    std::printf("\nepoch %llu, user %zu, top-%zu unrated items "
                "(midpoint-ranked):\n",
                static_cast<unsigned long long>(snapshot->epoch()),
                probe_user, workload.top_k);
    for (const ServingSnapshot::ScoredItem& s : snapshot->TopK(
             probe_user, workload.top_k, /*exclude_observed=*/true)) {
      std::printf("  item %6zu  predicted [%.4f, %.4f]\n", s.item,
                  s.score.lo, s.score.hi);
    }
  }

  exporter.Stop();
  return obs::WriteObsOutputs(obs_options) ? 0 : 1;
}
