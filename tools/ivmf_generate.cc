// ivmf_generate — synthetic interval-dataset generator.
//
// Writes the paper's synthetic workloads as interval CSV files consumable
// by ivmf_decompose (and any CSV-reading pipeline).
//
// Usage:
//   ivmf_generate --kind=uniform|anonymized|faces|ratings|categories|cf
//                 --output=FILE.csv [--rows=40] [--cols=250] [--seed=42]
//                 [--zero_fraction=0] [--interval_density=1]
//                 [--interval_intensity=1] [--privacy=low|medium|high]
//                 [--sparsity=F] [--alpha=0.3] [--shift=X]
//
// With --sparsity=F (0 < F <= 1) the output is the sparse triplet format of
// io/triplets.h instead of dense CSV. kind=cf is the collaborative-filtering
// interval matrix (F.2 eq. 5–7) over rows users x cols items with observed
// fill F, built entirely through the sparse path so it scales to shapes
// whose dense CSV would be impractical; the other kinds generate their
// dense matrix as usual and store only its nonzero cells.
//
// --shift=X subtracts X from every stored entry (both endpoints) after
// generation — the paper's constructions are non-negative, so this is the
// knob for producing signed matrices that exercise the four-product
// Algorithm-1 Gram route of the sparse ISVD path. For sparse outputs the
// shift applies to stored cells only; absent cells stay the zero interval.

#include <cstdio>
#include <cstring>
#include <string>

#include "base/flags.h"
#include "base/rng.h"
#include "data/anonymize.h"
#include "data/faces.h"
#include "data/ratings.h"
#include "data/synthetic.h"
#include "io/csv.h"
#include "io/triplets.h"
#include "obs/log.h"
#include "sparse/sparse_interval_matrix.h"

namespace {

using ivmf::DoubleFlag;
using ivmf::IntFlag;
using ivmf::StringFlag;

void Usage() {
  std::fprintf(
      stderr,
      "usage: ivmf_generate --kind=uniform|anonymized|faces|ratings|"
      "categories|cf --output=FILE.csv\n"
      "       [--rows=40 --cols=250 --seed=42 --zero_fraction=0\n"
      "        --interval_density=1 --interval_intensity=1 "
      "--privacy=medium]\n"
      "       [--sparsity=F --alpha=0.3]   (triplet output; required for "
      "kind=cf)\n"
      "       [--shift=X]   (subtract X from every stored entry: signed "
      "data)\n");
}

// Subtracts `shift` from every stored entry of a sparse matrix.
ivmf::SparseIntervalMatrix ShiftSparse(const ivmf::SparseIntervalMatrix& m,
                                       double shift) {
  std::vector<ivmf::IntervalTriplet> triplets = m.ToTriplets();
  for (ivmf::IntervalTriplet& t : triplets) {
    t.value.lo -= shift;
    t.value.hi -= shift;
  }
  return ivmf::SparseIntervalMatrix::FromTriplets(m.rows(), m.cols(),
                                                  std::move(triplets));
}

// Subtracts `shift` from every entry of a dense interval matrix.
void ShiftDense(ivmf::IntervalMatrix& m, double shift) {
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      const ivmf::Interval v = m.At(i, j);
      m.Set(i, j, ivmf::Interval(v.lo - shift, v.hi - shift));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ivmf;

  const std::string kind = StringFlag(argc, argv, "kind", "uniform");
  const std::string output = StringFlag(argc, argv, "output", "");
  if (output.empty()) {
    Usage();
    return 2;
  }
  const uint64_t seed = static_cast<uint64_t>(IntFlag(argc, argv, "seed", 42));
  const size_t rows = static_cast<size_t>(IntFlag(argc, argv, "rows", 40));
  const size_t cols = static_cast<size_t>(IntFlag(argc, argv, "cols", 250));
  const double sparsity = DoubleFlag(argc, argv, "sparsity", 0.0);
  if (sparsity < 0.0 || sparsity > 1.0) {
    Usage();
    return 2;
  }
  const double shift = DoubleFlag(argc, argv, "shift", 0.0);

  if (kind == "cf") {
    // Collaborative-filtering intervals, generated sparsely end to end.
    RatingsConfig config;
    config.num_users = rows;
    config.num_items = cols;
    config.fill = sparsity > 0.0 ? sparsity : 0.05;
    config.seed = seed;
    const SparseRatingsData data = GenerateSparseRatings(config);
    SparseIntervalMatrix cf =
        SparseCfIntervalMatrix(data, DoubleFlag(argc, argv, "alpha", 0.3));
    if (shift != 0.0) cf = ShiftSparse(cf, shift);
    if (!SaveSparseIntervalTriplets(output, cf)) {
      ivmf::obs::LogError("generate_cli", "cannot write output",
                          {{"path", output}});
      return 1;
    }
    std::printf("wrote %zu x %zu sparse interval matrix (cf, %zu nnz, fill "
                "%.4f) to %s\n",
                cf.rows(), cf.cols(), cf.nnz(), cf.FillFraction(),
                output.c_str());
    return 0;
  }

  IntervalMatrix result;
  if (kind == "uniform") {
    SyntheticConfig config;
    config.rows = rows;
    config.cols = cols;
    config.zero_fraction = DoubleFlag(argc, argv, "zero_fraction", 0.0);
    config.interval_density = DoubleFlag(argc, argv, "interval_density", 1.0);
    config.interval_intensity =
        DoubleFlag(argc, argv, "interval_intensity", 1.0);
    Rng rng(seed);
    result = GenerateUniformIntervalMatrix(config, rng);
  } else if (kind == "anonymized") {
    Rng rng(seed);
    Matrix scalar(rows, cols);
    for (size_t i = 0; i < rows; ++i)
      for (size_t j = 0; j < cols; ++j) scalar(i, j) = rng.Uniform();
    const std::string privacy = StringFlag(argc, argv, "privacy", "medium");
    AnonymizationMix mix = MediumPrivacyMix();
    if (privacy == "high") mix = HighPrivacyMix();
    if (privacy == "low") mix = LowPrivacyMix();
    result = AnonymizeMatrix(scalar, mix, rng);
  } else if (kind == "faces") {
    FaceCorpusConfig config;
    config.seed = seed;
    result = GenerateFaceCorpus(config).intervals;
  } else if (kind == "ratings") {
    RatingsConfig config;
    config.seed = seed;
    result = UserGenreIntervalMatrix(GenerateRatings(config));
  } else if (kind == "categories") {
    CategoryRangeConfig config;
    config.seed = seed;
    config.num_users = rows;
    result = GenerateCategoryRangeMatrix(config);
  } else {
    Usage();
    return 2;
  }

  if (sparsity > 0.0) {
    // Sparsify first so the shift touches stored cells only (absent cells
    // stay the zero interval).
    SparseIntervalMatrix sparse = SparseIntervalMatrix::FromDense(result);
    if (shift != 0.0) sparse = ShiftSparse(sparse, shift);
    if (!SaveSparseIntervalTriplets(output, sparse)) {
      ivmf::obs::LogError("generate_cli", "cannot write output",
                          {{"path", output}});
      return 1;
    }
    std::printf("wrote %zu x %zu sparse interval matrix (%s, %zu nnz) to %s\n",
                sparse.rows(), sparse.cols(), kind.c_str(), sparse.nnz(),
                output.c_str());
    return 0;
  }

  if (shift != 0.0) ShiftDense(result, shift);
  if (!SaveIntervalMatrixCsv(output, result)) {
    ivmf::obs::LogError("generate_cli", "cannot write output",
                        {{"path", output}});
    return 1;
  }
  std::printf("wrote %zu x %zu interval matrix (%s) to %s\n", result.rows(),
              result.cols(), kind.c_str(), output.c_str());
  return 0;
}
