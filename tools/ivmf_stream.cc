// ivmf_stream — streaming interval SVD driver.
//
// Maintains a decomposition over a rating matrix that keeps growing:
// starts from a base triplet file (io/triplets.h format), applies batches
// of arriving / revised cells, and refreshes the decomposition after each
// batch through core/streaming_isvd.h — warm-started Krylov solves with a
// full-recompute fallback — printing per-batch stats (warm/cold, Krylov
// iterations, wall clock, leading sigma).
//
// Batches are triplet files with the SAME declared shape as the base (the
// universe is fixed; streaming revises and adds cells). A cell listed in a
// batch replaces the current cell outright (last-write-wins), so batch
// files may legitimately re-list cells: the strict duplicate-reject parse
// applies within one file, while revisions across files are the point.
//
// Without --input, a synthetic CF workload is generated and a slice of its
// cells is replayed as the arrival stream — a self-contained demo:
//   ivmf_stream --users=2000 --items=500 --batches=4 --batch_pct=2
//
// Usage:
//   ivmf_stream --input=base.trp --batch=b1.trp --batch=b2.trp ...
//               [--rank=10] [--strategy=2] [--target=a|b|c] [--cold]
//               [--out_prefix=P] [--metrics-json=PATH] [--trace=PATH]
//               [--http_port=N] [--stall_seconds=S]
//
// With --out_prefix=P the final factors are written as P_u.csv,
// P_sigma.csv, P_v.csv (interval CSV for target a, scalar otherwise).
// The observability flags match ivmf_serve (shared via obs/export_flags):
// --metrics-json and --trace dump the registry snapshot / Chrome trace at
// exit, and --http_port serves the live introspection endpoints while the
// batch replay runs, with /healthz beating once per refresh.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "base/flags.h"
#include "core/streaming_isvd.h"
#include "data/ratings.h"
#include "io/csv.h"
#include "io/triplets.h"
#include "obs/export_flags.h"
#include "obs/http_exporter.h"
#include "obs/log.h"
#include "obs/watchdog.h"

namespace {

using ivmf::BoolFlag;
using ivmf::IntFlag;
using ivmf::RepeatedFlag;
using ivmf::StringFlag;

void Usage() {
  std::fprintf(
      stderr,
      "usage: ivmf_stream --input=BASE.trp --batch=B1.trp [--batch=B2.trp...]\n"
      "                   [--rank=N] [--strategy=0..4] [--target=a|b|c]\n"
      "                   [--cold] [--out_prefix=P]\n"
      "   or: ivmf_stream --users=N --items=M [--batches=K] [--batch_pct=P]\n"
      "                   [--fill_pct=F] [--alpha_pct=A] [same options]\n"
      "observability: [--metrics-json=PATH] [--trace=PATH] [--http_port=N]\n"
      "               [--stall_seconds=S]\n");
}

void PrintRefresh(const char* label, const ivmf::StreamingIsvd& streaming) {
  const ivmf::StreamingRefreshStats& stats = streaming.last_stats();
  const ivmf::IsvdResult& result = streaming.result();
  const double sigma_1 = result.sigma.empty() ? 0.0 : result.sigma[0].hi;
  std::printf("%-12s %9zu cells  %4s  %5zu iters  %8.4fs  rank %zu  "
              "sigma1 %.6g\n",
              label, stats.delta_cells, stats.warm ? "warm" : "cold",
              stats.iterations, stats.seconds, result.rank(), sigma_1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ivmf;

  const int strategy = IntFlag(argc, argv, "strategy", 2);
  if (strategy < 0 || strategy > 4) {
    Usage();
    return 2;
  }
  const size_t rank = static_cast<size_t>(IntFlag(argc, argv, "rank", 10));
  const obs::ObsCliOptions obs_options = obs::ParseObsCliOptions(argc, argv);
  obs::StartObsCollection(obs_options);

  StreamingIsvdOptions options;
  const std::string target = StringFlag(argc, argv, "target", "b");
  if (target == "a") {
    options.isvd.target = DecompositionTarget::kA;
  } else if (target == "b") {
    options.isvd.target = DecompositionTarget::kB;
  } else if (target == "c") {
    options.isvd.target = DecompositionTarget::kC;
  } else {
    Usage();
    return 2;
  }
  if (BoolFlag(argc, argv, "cold")) options.warm_start = false;

  // Assemble the base matrix and the batch stream.
  SparseIntervalMatrix base;
  std::vector<std::vector<IntervalTriplet>> batches;
  const std::string input = StringFlag(argc, argv, "input", "");
  if (!input.empty()) {
    std::optional<SparseIntervalMatrix> loaded =
        LoadSparseIntervalTriplets(input);
    if (!loaded) {
      obs::LogError("stream_cli", "cannot parse base triplets",
                    {{"path", input}});
      return 1;
    }
    base = std::move(*loaded);
    for (const std::string& path : RepeatedFlag(argc, argv, "batch")) {
      std::optional<SparseIntervalMatrix> batch =
          LoadSparseIntervalTriplets(path);
      if (!batch) {
        obs::LogError("stream_cli", "cannot parse batch triplets",
                      {{"path", path}});
        return 1;
      }
      if (batch->rows() != base.rows() || batch->cols() != base.cols()) {
        obs::LogError("stream_cli", "batch shape does not match base",
                      {{"path", path},
                       {"batch_rows", batch->rows()},
                       {"batch_cols", batch->cols()},
                       {"base_rows", base.rows()},
                       {"base_cols", base.cols()}});
        return 1;
      }
      batches.push_back(batch->ToTriplets());
    }
  } else {
    // Synthetic demo workload: generate CF intervals, stream the tail.
    RatingsConfig config;
    config.num_users = static_cast<size_t>(IntFlag(argc, argv, "users", 2000));
    config.num_items = static_cast<size_t>(IntFlag(argc, argv, "items", 500));
    config.fill = IntFlag(argc, argv, "fill_pct", 10) / 100.0;
    config.seed = static_cast<uint64_t>(IntFlag(argc, argv, "seed", 404));
    const double alpha = IntFlag(argc, argv, "alpha_pct", 30) / 100.0;
    const int num_batches = IntFlag(argc, argv, "batches", 4);
    const double batch_fraction =
        IntFlag(argc, argv, "batch_pct", 2) / 100.0;

    const SparseRatingsData data = GenerateSparseRatings(config);
    const SparseIntervalMatrix cf = SparseCfIntervalMatrix(data, alpha);
    const std::vector<IntervalTriplet> cells = cf.ToTriplets();
    const size_t batch_size = static_cast<size_t>(
        batch_fraction * static_cast<double>(cells.size()));
    const size_t stream = batch_size * static_cast<size_t>(num_batches);
    if (batch_size == 0 || stream >= cells.size()) {
      obs::LogError("stream_cli", "batches/batch_pct too large",
                    {{"generated_cells", cells.size()},
                     {"stream_cells", stream}});
      return 1;
    }
    base = SparseIntervalMatrix::FromTriplets(
        cf.rows(), cf.cols(),
        {cells.begin(), cells.begin() + static_cast<ptrdiff_t>(
                                            cells.size() - stream)});
    for (int b = 0; b < num_batches; ++b) {
      const auto begin = cells.begin() + static_cast<ptrdiff_t>(
                                             cells.size() - stream +
                                             static_cast<size_t>(b) * batch_size);
      batches.emplace_back(begin, begin + static_cast<ptrdiff_t>(batch_size));
    }
  }

  std::printf("base: %zu x %zu sparse interval matrix, %zu nnz (fill %.4f), "
              "ISVD%d rank %zu, %zu batches\n",
              base.rows(), base.cols(), base.nnz(), base.FillFraction(),
              strategy, rank, batches.size());

  // Batch replay is synchronous, so the watchdog runs in strict mode (no
  // busy probe): a refresh that exceeds --stall_seconds flips /healthz.
  obs::WatchdogOptions watchdog_options;
  watchdog_options.stall_seconds = obs_options.stall_seconds;
  obs::Watchdog watchdog(watchdog_options);
  obs::HttpExporter exporter([&] {
    obs::HttpExporterOptions http;
    http.port = static_cast<uint16_t>(obs_options.http_port);
    http.watchdog = &watchdog;
    return http;
  }());
  if (obs_options.http_requested) {
    if (!exporter.Start()) return 1;
    std::printf("introspection: http://127.0.0.1:%u/\n",
                static_cast<unsigned>(exporter.port()));
  }

  StreamingIsvd streaming(strategy, rank, std::move(base), options);
  watchdog.Beat();
  PrintRefresh("base", streaming);
  for (size_t b = 0; b < batches.size(); ++b) {
    streaming.ApplyBatch(batches[b]);
    streaming.Refresh();
    watchdog.Beat();
    char label[32];
    std::snprintf(label, sizeof(label), "batch %zu", b + 1);
    PrintRefresh(label, streaming);
  }

  const std::string prefix = StringFlag(argc, argv, "out_prefix", "");
  if (!prefix.empty()) {
    const IsvdResult& result = streaming.result();
    bool ok = true;
    if (options.isvd.target == DecompositionTarget::kA) {
      ok &= SaveIntervalMatrixCsv(prefix + "_u.csv", result.u);
      ok &= SaveIntervalMatrixCsv(prefix + "_v.csv", result.v);
    } else {
      ok &= SaveMatrixCsv(prefix + "_u.csv", result.ScalarU());
      ok &= SaveMatrixCsv(prefix + "_v.csv", result.ScalarV());
    }
    IntervalMatrix sigma(result.rank(), result.rank());
    for (size_t j = 0; j < result.rank(); ++j) sigma.Set(j, j, result.sigma[j]);
    ok &= SaveIntervalMatrixCsv(prefix + "_sigma.csv", sigma);
    if (!ok) {
      obs::LogError("stream_cli", "failed writing factor outputs",
                    {{"prefix", prefix}});
      return 1;
    }
    std::printf("wrote %s_{u,sigma,v}.csv\n", prefix.c_str());
  }
  exporter.Stop();
  return obs::WriteObsOutputs(obs_options) ? 0 : 1;
}
