// Compares two BENCH_*.json files metric-by-metric and exits nonzero on a
// perf regression — the CLI behind the CI perf gate.
//
//   ivmf_bench_diff BASELINE.json CANDIDATE.json
//       [--tolerance=0.5] [--min_seconds=1e-3] [--require-all]
//
// Records pair by workload identity (bench/name/op plus shape fields like
// users/items/rank); directed metrics (times lower-better, throughputs
// higher-better) fail past the relative tolerance, undirected counters are
// reported informationally only, and timings where both sides sit under
// --min_seconds are skipped as noise. Exit codes: 0 ok, 1 regression,
// 2 usage or unreadable/malformed input.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/flags.h"
#include "obs/bench_diff.h"

namespace {

using ivmf::obs::BenchDiffOptions;
using ivmf::obs::BenchDiffReport;
using ivmf::obs::BenchRecord;
using ivmf::obs::DiffStatus;
using ivmf::obs::MetricDiff;

const char* StatusLabel(DiffStatus status) {
  switch (status) {
    case DiffStatus::kOk:
      return "ok";
    case DiffStatus::kRegression:
      return "REGRESSION";
    case DiffStatus::kSkipped:
      return "skip";
    case DiffStatus::kInfo:
      return "info";
  }
  return "?";
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json CANDIDATE.json [--tolerance=R]\n"
               "          [--min_seconds=S] [--require-all] [--verbose]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) paths.emplace_back(argv[i]);
  }
  if (paths.size() != 2) return Usage(argv[0]);

  BenchDiffOptions options;
  options.tolerance = ivmf::DoubleFlag(argc, argv, "tolerance", 0.5);
  options.min_seconds = ivmf::DoubleFlag(argc, argv, "min_seconds", 1e-3);
  options.require_all = ivmf::BoolFlag(argc, argv, "require-all");
  const bool verbose = ivmf::BoolFlag(argc, argv, "verbose");
  if (options.tolerance < 0.0 || options.min_seconds < 0.0) {
    return Usage(argv[0]);
  }

  std::string error;
  const auto baseline = ivmf::obs::LoadBenchRecords(paths[0], &error);
  if (!baseline.has_value()) {
    std::fprintf(stderr, "ivmf_bench_diff: %s: %s\n", paths[0].c_str(),
                 error.c_str());
    return 2;
  }
  error.clear();
  const auto candidate = ivmf::obs::LoadBenchRecords(paths[1], &error);
  if (!candidate.has_value()) {
    std::fprintf(stderr, "ivmf_bench_diff: %s: %s\n", paths[1].c_str(),
                 error.c_str());
    return 2;
  }

  const BenchDiffReport report =
      ivmf::obs::DiffBenchRecords(*baseline, *candidate, options);

  std::printf("baseline : %s (%zu records)\n", paths[0].c_str(),
              baseline->size());
  std::printf("candidate: %s (%zu records)\n", paths[1].c_str(),
              candidate->size());
  std::printf("compared : %zu records, tolerance %.2f, noise floor %gs\n\n",
              report.compared_records, options.tolerance, options.min_seconds);

  for (const MetricDiff& diff : report.diffs) {
    const bool interesting =
        diff.status == DiffStatus::kRegression ||
        diff.status == DiffStatus::kInfo;
    if (!verbose && !interesting) continue;
    std::printf("[%-10s] %s :: %s  %.6g -> %.6g (x%.3f)\n",
                StatusLabel(diff.status), diff.record_key.c_str(),
                diff.metric.c_str(), diff.baseline, diff.candidate,
                diff.ratio);
  }
  for (const std::string& key : report.missing_records) {
    std::printf("[%-10s] %s :: record missing in candidate\n",
                options.require_all ? "REGRESSION" : "info", key.c_str());
  }

  const size_t regressions = report.regressions();
  std::printf("\n%zu regression(s), %zu metric comparison(s), %zu missing\n",
              regressions, report.diffs.size(), report.missing_records.size());
  if (report.compared_records == 0) {
    std::fprintf(stderr,
                 "ivmf_bench_diff: no overlapping records — nothing gated\n");
    return options.require_all ? 1 : 0;
  }
  return report.HasRegression() ? 1 : 0;
}
