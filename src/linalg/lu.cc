#include "linalg/lu.h"

#include <cmath>
#include <numeric>

namespace ivmf {

LuDecomposition::LuDecomposition(const Matrix& a)
    : n_(a.rows()), lu_(a), perm_(a.rows()) {
  IVMF_CHECK_MSG(a.rows() == a.cols(), "LU needs a square matrix");
  std::iota(perm_.begin(), perm_.end(), 0);

  for (size_t k = 0; k < n_; ++k) {
    // Partial pivoting: bring the largest |entry| of column k to the pivot.
    size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (size_t i = k + 1; i < n_; ++i) {
      const double cand = std::abs(lu_(i, k));
      if (cand > best) {
        best = cand;
        pivot = i;
      }
    }
    if (best < 1e-300) {
      singular_ = true;
      continue;
    }
    if (pivot != k) {
      for (size_t j = 0; j < n_; ++j) std::swap(lu_(k, j), lu_(pivot, j));
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (size_t i = k + 1; i < n_; ++i) {
      const double factor = lu_(i, k) * inv_pivot;
      lu_(i, k) = factor;
      for (size_t j = k + 1; j < n_; ++j) lu_(i, j) -= factor * lu_(k, j);
    }
  }
}

std::vector<double> LuDecomposition::Solve(const std::vector<double>& b) const {
  IVMF_CHECK(!singular_);
  IVMF_CHECK(b.size() == n_);
  std::vector<double> x(n_);
  // Forward substitution with the permuted right-hand side: L y = P b.
  for (size_t i = 0; i < n_; ++i) {
    double sum = b[perm_[i]];
    for (size_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  // Back substitution: U x = y.
  for (size_t ii = n_; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = x[i];
    for (size_t j = i + 1; j < n_; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum / lu_(i, i);
  }
  return x;
}

Matrix LuDecomposition::Solve(const Matrix& b) const {
  IVMF_CHECK(b.rows() == n_);
  Matrix x(n_, b.cols());
  for (size_t j = 0; j < b.cols(); ++j) {
    x.SetCol(j, Solve(b.Col(j)));
  }
  return x;
}

Matrix LuDecomposition::Inverse() const { return Solve(Matrix::Identity(n_)); }

double LuDecomposition::Determinant() const {
  if (singular_) return 0.0;
  double det = perm_sign_;
  for (size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

std::optional<Matrix> Inverse(const Matrix& a) {
  LuDecomposition lu(a);
  if (lu.IsSingular()) return std::nullopt;
  return lu.Inverse();
}

}  // namespace ivmf
