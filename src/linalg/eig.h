// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// ISVD2–ISVD4 obtain right singular vectors as eigenvectors of the Gram
// matrices A_* and A^* (Section 4.3.1 of the paper). Both are symmetric, so
// the classical two-sided Jacobi method applies; it converges quadratically
// and produces fully orthogonal eigenvectors, which the interval alignment
// step downstream depends on.

#ifndef IVMF_LINALG_EIG_H_
#define IVMF_LINALG_EIG_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace ivmf {

// Eigendecomposition of a symmetric matrix A truncated to the r
// algebraically-largest eigenvalues:  A ≃ V * diag(lambda) * V^T.
struct EigResult {
  std::vector<double> eigenvalues;  // r values, descending.
  Matrix eigenvectors;              // n x r, orthonormal columns.

  // True when an iterative solver exhausted its basis before delivering the
  // requested pair count — the spectrum is truncated and eigenvalues.size()
  // is smaller than asked. Always false for the exact Jacobi solver.
  // Callers that pair two decompositions (the ISVD endpoint solves) should
  // IVMF_CHECK this before relying on matching counts.
  bool truncated = false;

  // Krylov steps (operator applications) an iterative solver spent;
  // 0 for direct solvers. Exposes warm-start / early-exit savings.
  size_t iterations = 0;
};

struct EigOptions {
  // Stop when every off-diagonal entry is below tolerance * ||A||_F.
  double tolerance = 1e-12;
  int max_sweeps = 60;
};

// Computes the top-r eigenpairs of symmetric `a` (rank == 0 means all).
// Precondition: `a` is square; symmetry is assumed (the strictly lower
// triangle is read together with the upper one by the rotations).
EigResult ComputeSymmetricEig(const Matrix& a, size_t rank = 0,
                              const EigOptions& options = {});

// Fixes the sign freedom of eigenvector columns: each column is flipped so
// its entry of largest absolute value (first such index on ties) is
// positive. Every symmetric eigensolver in the library applies this, so
// Jacobi and (matrix-free) Lanczos produce identical vectors whenever they
// agree up to sign — which the interval-valued decomposition target a
// depends on, since its factor intervals are not sign-invariant.
void CanonicalizeEigenvectorSigns(Matrix& eigenvectors);

}  // namespace ivmf

#endif  // IVMF_LINALG_EIG_H_
