#include "linalg/pinv.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/lu.h"
#include "linalg/svd.h"

namespace ivmf {

Matrix PseudoInverse(const Matrix& a, const PinvOptions& options) {
  const SvdResult svd = ComputeSvd(a);
  const double sigma_max = svd.sigma.empty() ? 0.0 : svd.sigma.front();

  double cutoff = options.singular_value_cutoff;
  if (cutoff <= 0.0) {
    // Standard relative tolerance: eps * max(n, m) * sigma_max.
    cutoff = std::numeric_limits<double>::epsilon() *
             static_cast<double>(std::max(a.rows(), a.cols())) * sigma_max;
  }

  // A^+ = V * diag(1/sigma_i for sigma_i > cutoff) * U^T.
  const size_t r = svd.sigma.size();
  Matrix v_scaled = svd.v;  // cols x r
  for (size_t j = 0; j < r; ++j) {
    const double inv = svd.sigma[j] > cutoff ? 1.0 / svd.sigma[j] : 0.0;
    for (size_t i = 0; i < v_scaled.rows(); ++i) v_scaled(i, j) *= inv;
  }
  return v_scaled * svd.u.Transpose();
}

double ConditionNumber(const Matrix& a) {
  const SvdResult svd = ComputeSvd(a);
  if (svd.sigma.empty()) return std::numeric_limits<double>::infinity();
  const double smax = svd.sigma.front();
  const double smin = svd.sigma.back();
  if (smin <= 0.0 || smin < smax * 1e-300)
    return std::numeric_limits<double>::infinity();
  return smax / smin;
}

Matrix RobustInverse(const Matrix& a, double cond_threshold) {
  if (a.rows() == a.cols()) {
    const double cond = ConditionNumber(a);
    if (cond <= cond_threshold) {
      if (auto inv = Inverse(a)) return *inv;
    }
  }
  PinvOptions options;
  options.singular_value_cutoff = 0.1;  // per Section 4.4.2.2
  return PseudoInverse(a, options);
}

}  // namespace ivmf
