// Dense row-major matrix of doubles.
//
// This is the scalar linear-algebra substrate underneath the interval-valued
// factorization library. It is deliberately self-contained: no external
// linear algebra dependency is used anywhere in this repository.

#ifndef IVMF_LINALG_MATRIX_H_
#define IVMF_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/check.h"

namespace ivmf {

// A dense rows x cols matrix of doubles with row-major storage.
//
// Matrix is a value type: copyable, movable, and comparable. Indices are
// 0-based throughout the library (the paper uses 1-based math notation).
class Matrix {
 public:
  // An empty 0x0 matrix.
  Matrix() = default;

  // A rows x cols matrix with every entry equal to `value` (default 0).
  Matrix(size_t rows, size_t cols, double value = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  // Builds a matrix from a nested initializer list, e.g.
  //   Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  // All rows must have the same length.
  static Matrix FromRows(
      std::initializer_list<std::initializer_list<double>> rows);

  // The n x n identity matrix.
  static Matrix Identity(size_t n);

  // A square matrix with `diag` on the diagonal and zeros elsewhere.
  static Matrix Diagonal(const std::vector<double>& diag);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Element access (0-based, bounds-checked in debug builds).
  double& operator()(size_t i, size_t j) {
    IVMF_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    IVMF_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  // Raw storage access (row-major). Useful for tight loops.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  // Pointer to the start of row i.
  double* RowPtr(size_t i) { return data_.data() + i * cols_; }
  const double* RowPtr(size_t i) const { return data_.data() + i * cols_; }

  // Copies of a single row / column as vectors.
  std::vector<double> Row(size_t i) const;
  std::vector<double> Col(size_t j) const;
  void SetRow(size_t i, const std::vector<double>& row);
  void SetCol(size_t j, const std::vector<double>& col);

  // Returns the sub-block of `count` columns starting at `first`.
  Matrix ColBlock(size_t first, size_t count) const;

  // Elementwise arithmetic. Shapes must match.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  // Matrix product `this * other` (inner dimensions must agree).
  Matrix operator*(const Matrix& other) const;

  // Elementwise (Hadamard) product / quotient. Shapes must match. The
  // quotient is guarded: a zero denominator yields zero, the convention the
  // multiplicative NMF updates rely on.
  Matrix CwiseMultiply(const Matrix& other) const;
  Matrix CwiseQuotient(const Matrix& other, double epsilon = 1e-12) const;

  Matrix Transpose() const;

  // The diagonal entries of a (not necessarily square) matrix.
  std::vector<double> DiagonalEntries() const;

  // Frobenius norm sqrt(sum of squared entries).
  double FrobeniusNorm() const;

  // Largest absolute entry.
  double MaxAbs() const;

  // Sum of all entries.
  double Sum() const;

  // Exact elementwise equality (useful in tests for copies).
  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

  // True when shapes match and all entries agree within `tol`.
  bool ApproxEquals(const Matrix& other, double tol) const;

  // Human-readable rendering (rows on separate lines), for debugging.
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// -- Free vector helpers (column vectors as std::vector<double>) ----------

// Dot product. Sizes must match.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

// Euclidean (L2) norm.
double Norm2(const std::vector<double>& v);

// Cosine similarity a.b / (|a||b|); returns 0 when either norm is 0.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace ivmf

#endif  // IVMF_LINALG_MATRIX_H_
