// SVD-based Moore–Penrose pseudo-inverse and condition number.
//
// ISVD3/ISVD4 fall back to the pseudo-inverse when the averaged factor
// matrix V_avg is non-square or ill conditioned (Section 4.4.2.2). Following
// the paper, singular values below an absolute cutoff (default 0.1) are
// dropped when forming the pseudo-inverse in that context.

#ifndef IVMF_LINALG_PINV_H_
#define IVMF_LINALG_PINV_H_

#include "linalg/matrix.h"

namespace ivmf {

struct PinvOptions {
  // Singular values <= cutoff are treated as zero. The paper's ISVD uses an
  // absolute cutoff of 0.1 for factor-matrix inversion; a non-positive value
  // selects the usual relative machine tolerance instead.
  double singular_value_cutoff = -1.0;
};

// Moore–Penrose pseudo-inverse A^+ (cols x rows) of `a` (rows x cols).
Matrix PseudoInverse(const Matrix& a, const PinvOptions& options = {});

// Spectral (2-norm) condition number sigma_max / sigma_min. Returns +inf
// when the smallest singular value is (numerically) zero.
double ConditionNumber(const Matrix& a);

// Inverts `a` with the paper's policy (Section 4.4.2.2): plain LU inverse
// when `a` is square and cond(a) <= cond_threshold, otherwise the
// pseudo-inverse with the 0.1 singular-value cutoff.
Matrix RobustInverse(const Matrix& a, double cond_threshold = 1e8);

}  // namespace ivmf

#endif  // IVMF_LINALG_PINV_H_
