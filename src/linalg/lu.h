// LU factorization with partial pivoting: linear solves, inverses and
// determinants for square matrices.
//
// ISVD3/ISVD4 invert the averaged factor matrix V_avg when it is square and
// well conditioned (Section 4.4.2.2); this module provides that inverse.

#ifndef IVMF_LINALG_LU_H_
#define IVMF_LINALG_LU_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace ivmf {

// The P*A = L*U factorization of a square matrix A.
class LuDecomposition {
 public:
  // Factorizes `a` (must be square). Singularity is detected lazily: check
  // IsSingular() before calling Solve()/Inverse().
  explicit LuDecomposition(const Matrix& a);

  // True when a pivot collapsed to (numerical) zero.
  bool IsSingular() const { return singular_; }

  // Solves A x = b for a single right-hand side. Requires !IsSingular().
  std::vector<double> Solve(const std::vector<double>& b) const;

  // Solves A X = B column-by-column. Requires !IsSingular().
  Matrix Solve(const Matrix& b) const;

  // A^{-1}. Requires !IsSingular().
  Matrix Inverse() const;

  // det(A); zero when singular.
  double Determinant() const;

 private:
  size_t n_;
  Matrix lu_;                 // packed L (unit lower) and U (upper)
  std::vector<size_t> perm_;  // row permutation
  int perm_sign_ = 1;
  bool singular_ = false;
};

// Convenience wrapper: returns A^{-1}, or std::nullopt when A is singular.
std::optional<Matrix> Inverse(const Matrix& a);

}  // namespace ivmf

#endif  // IVMF_LINALG_LU_H_
