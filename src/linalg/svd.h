// Singular value decomposition via one-sided (Hestenes) Jacobi rotations.
//
// This is the scalar SVD primitive used by ISVD0 and ISVD1 and by the
// pseudo-inverse / condition-number routines. One-sided Jacobi was chosen
// because it is simple, numerically robust, and computes singular values
// with high relative accuracy — at the matrix sizes used in the paper's
// evaluation (hundreds of rows/columns) its O(n·m²) sweeps are affordable.

#ifndef IVMF_LINALG_SVD_H_
#define IVMF_LINALG_SVD_H_

#include <cstddef>

#include "linalg/matrix.h"

namespace ivmf {

// The thin SVD of an n x m matrix M truncated to rank r:
//   M ≃ U * diag(sigma) * V^T
// with U (n x r) and V (m x r) having orthonormal columns and
// sigma sorted in non-increasing order.
struct SvdResult {
  Matrix u;                    // n x r, left singular vectors.
  std::vector<double> sigma;   // r singular values, descending.
  Matrix v;                    // m x r, right singular vectors.

  // diag(sigma) as an r x r matrix.
  Matrix SigmaMatrix() const { return Matrix::Diagonal(sigma); }

  // Reconstruction U * diag(sigma) * V^T.
  Matrix Reconstruct() const;

  // True when an iterative solver exhausted its basis before delivering the
  // requested triplet count (see EigResult::truncated). Always false for
  // the exact Jacobi solver.
  bool truncated = false;

  // Bidiagonalization steps an iterative solver spent (two operator
  // applications each); 0 for direct solvers.
  size_t iterations = 0;
};

struct SvdOptions {
  // Convergence threshold on the normalized off-diagonal column coupling.
  double tolerance = 1e-12;
  // Upper bound on the number of full Jacobi sweeps.
  int max_sweeps = 60;
};

// Computes the thin rank-r SVD of `m`. `rank` is clamped to min(n, m);
// rank == 0 means full (min(n, m)). Columns of U associated with (near-)zero
// singular values are zero vectors.
SvdResult ComputeSvd(const Matrix& m, size_t rank = 0,
                     const SvdOptions& options = {});

// Fixes the joint sign freedom of singular-vector pairs: each column j is
// flipped (in BOTH u and v, preserving u σ vᵀ) so that the entry of v(:, j)
// with the largest absolute value (first such index on ties) is positive —
// the same pivot rule CanonicalizeEigenvectorSigns uses. Every SVD in the
// library (one-sided Jacobi here, Golub–Kahan–Lanczos in lanczos_svd.h)
// applies this, so the dense and matrix-free ISVD0/ISVD1 paths produce
// identical factors whenever they agree up to sign.
void CanonicalizeSingularVectorSigns(Matrix& u, Matrix& v);

}  // namespace ivmf

#endif  // IVMF_LINALG_SVD_H_
