#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "base/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ivmf {
namespace {

double SignOf(double a, double b) { return b >= 0.0 ? std::abs(a) : -std::abs(a); }

struct EigInstruments {
  obs::Counter& solves;
  obs::Counter& iterations;
  obs::Counter& restarts;
  obs::Gauge& residual;

  static EigInstruments& Get() {
    static EigInstruments instruments{
        obs::MetricsRegistry::Global().GetCounter("lanczos.eig.solves"),
        obs::MetricsRegistry::Global().GetCounter("lanczos.eig.iterations"),
        obs::MetricsRegistry::Global().GetCounter("lanczos.eig.restarts"),
        obs::MetricsRegistry::Global().GetGauge("lanczos.eig.residual_bound")};
    return instruments;
  }
};

}  // namespace

namespace lanczos_internal {

bool WarmStartVector(const Matrix& basis, size_t dim, std::vector<double>& v) {
  if (basis.cols() == 0 || basis.rows() != dim) return false;
  // Sums accumulate in a scratch vector so `v` really is untouched on the
  // degenerate-norm failure path, as the contract promises.
  std::vector<double> sums(dim, 0.0);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t c = 0; c < basis.cols(); ++c) sums[i] += basis(i, c);
  }
  const double norm = Norm2(sums);
  if (!(norm > 1e-12)) return false;
  for (size_t i = 0; i < dim; ++i) v[i] = sums[i] / norm;
  return true;
}

}  // namespace lanczos_internal

bool TridiagonalQL(std::vector<double>& diag, std::vector<double>& off,
                   Matrix* z, int max_iterations) {
  const size_t n = diag.size();
  if (n == 0) return true;
  IVMF_CHECK(off.size() + 1 == n || (n == 1 && off.empty()));
  std::vector<double> e(n, 0.0);
  for (size_t i = 0; i + 1 < n; ++i) e[i] = off[i];

  for (size_t l = 0; l < n; ++l) {
    int iter = 0;
    size_t m;
    do {
      // Find a negligible off-diagonal element.
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(diag[m]) + std::abs(diag[m + 1]);
        if (std::abs(e[m]) <= 1e-300 ||
            std::abs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m == l) break;
      if (++iter > max_iterations) return false;

      // Implicit QL step with Wilkinson shift.
      double g = (diag[l + 1] - diag[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = diag[m] - diag[l] + e[l] / (g + SignOf(r, g));
      double s = 1.0, c = 1.0, p = 0.0;
      for (size_t i = m; i-- > l;) {
        double f = s * e[i];
        const double b = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          diag[i + 1] -= p;
          e[m] = 0.0;
          break;
        }
        s = f / r;
        c = g / r;
        g = diag[i + 1] - p;
        r = (diag[i] - g) * s + 2.0 * c * b;
        p = s * r;
        diag[i + 1] = g + p;
        g = c * r - b;
        if (z != nullptr) {
          for (size_t k = 0; k < z->rows(); ++k) {
            f = (*z)(k, i + 1);
            (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
            (*z)(k, i) = c * (*z)(k, i) - s * f;
          }
        }
      }
      if (r == 0.0 && m > l + 1) continue;
      diag[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    } while (m != l);
  }

  // Sort ascending (insertion sort moving eigenvector columns along).
  for (size_t i = 0; i + 1 < n; ++i) {
    size_t k = i;
    for (size_t j = i + 1; j < n; ++j)
      if (diag[j] < diag[k]) k = j;
    if (k != i) {
      std::swap(diag[i], diag[k]);
      if (z != nullptr) {
        for (size_t row = 0; row < z->rows(); ++row)
          std::swap((*z)(row, i), (*z)(row, k));
      }
    }
  }
  return true;
}

EigResult ComputeLanczosEig(const LinearOperator& op, size_t rank,
                            const LanczosOptions& options) {
  obs::TraceSpan span("lanczos.eig");
  EigInstruments& instruments = EigInstruments::Get();
  instruments.solves.Add(1);
  const size_t n = op.Dim();
  // rank == 0 (or an over-ask) means the full spectrum: grow the Krylov
  // basis to the whole space.
  const size_t effective_rank = (rank == 0 || rank > n) ? n : rank;

  // Krylov dimension.
  const size_t m = std::min(
      n, static_cast<size_t>(options.subspace_factor * effective_rank) +
             options.subspace_extra);

  // Lanczos basis Q (n x m) with full reorthogonalization.
  Matrix q(n, m);
  std::vector<double> alpha(m, 0.0), beta(m, 0.0);

  Rng rng(options.seed);
  std::vector<double> v(n), w(n);
  if (!lanczos_internal::WarmStartVector(options.start_basis, n, v)) {
    for (double& x : v) x = rng.Normal();
    const double norm = Norm2(v);
    for (double& x : v) x /= norm;
  }
  for (size_t i = 0; i < n; ++i) q(i, 0) = v[i];

  bool exhausted = false;
  size_t built = 0;
  double last_wnorm = 0.0;
  for (size_t j = 0; j < m; ++j) {
    built = j + 1;
    for (size_t i = 0; i < n; ++i) v[i] = q(i, j);
    op.Apply(v, w);
    if (j > 0) {
      for (size_t i = 0; i < n; ++i) w[i] -= beta[j - 1] * q(i, j - 1);
    }
    double aj = 0.0;
    for (size_t i = 0; i < n; ++i) aj += w[i] * v[i];
    alpha[j] = aj;
    for (size_t i = 0; i < n; ++i) w[i] -= aj * v[i];

    // Full reorthogonalization against the basis built so far (twice, for
    // numerical robustness — "twice is enough").
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t k = 0; k <= j; ++k) {
        double proj = 0.0;
        for (size_t i = 0; i < n; ++i) proj += w[i] * q(i, k);
        for (size_t i = 0; i < n; ++i) w[i] -= proj * q(i, k);
      }
    }

    const double wnorm = Norm2(w);
    last_wnorm = wnorm;
    if (j + 1 < m) {
      beta[j] = wnorm;
      if (wnorm <= options.tolerance) {
        // Invariant subspace found: restart with a fresh random direction
        // orthogonal to the basis (beta stays 0, so the tridiagonal problem
        // block-decouples) and keep building to the subspace cap. Two
        // reasons not to stop early: a rank-deficient operator (e.g. the
        // Gram of an all-zero endpoint) would deliver fewer eigenpairs than
        // its sibling endpoint and crash the ISVD pairing downstream, and a
        // single Krylov sequence sees each eigenvalue of a degenerate
        // cluster exactly once — only the restarted blocks capture the
        // remaining copies of duplicate eigenvalues.
        beta[j] = 0.0;
        instruments.restarts.Add(1);
        bool restarted = false;
        for (int attempt = 0; attempt < 3 && !restarted; ++attempt) {
          for (double& x : w) x = rng.Normal();
          for (int pass = 0; pass < 2; ++pass) {
            for (size_t k = 0; k <= j; ++k) {
              double proj = 0.0;
              for (size_t i = 0; i < n; ++i) proj += w[i] * q(i, k);
              for (size_t i = 0; i < n; ++i) w[i] -= proj * q(i, k);
            }
          }
          const double rnorm = Norm2(w);
          if (rnorm > options.restart_tolerance) {
            for (size_t i = 0; i < n; ++i) q(i, j + 1) = w[i] / rnorm;
            restarted = true;
          }
        }
        if (!restarted) {
          // No acceptable direction remains: the basis cannot grow, so the
          // spectrum delivered below may be shorter than requested. Recorded
          // (rather than silently broken out of) so `truncated` reaches the
          // caller.
          exhausted = true;
          break;
        }
        continue;
      }
      for (size_t i = 0; i < n; ++i) q(i, j + 1) = w[i] / wnorm;

      // Optional early exit: residual of Ritz pair i is |beta_j * z_last,i|,
      // so the coupling to the unexplored space bounds every pair at once.
      // Only meaningful once the basis can hold the requested count.
      if (options.convergence_tol > 0.0 && built >= effective_rank &&
          options.convergence_interval > 0 &&
          built % options.convergence_interval == 0) {
        std::vector<double> d(alpha.begin(),
                              alpha.begin() + static_cast<ptrdiff_t>(built));
        std::vector<double> e;
        for (size_t i = 0; i + 1 < built; ++i) e.push_back(beta[i]);
        Matrix z = Matrix::Identity(built);
        if (TridiagonalQL(d, e, &z)) {
          double theta_max = 0.0;
          for (const double t : d) theta_max = std::max(theta_max, std::abs(t));
          const double bound = options.convergence_tol * theta_max;
          bool converged = theta_max > 0.0;
          for (size_t i = 0; i < effective_rank && converged; ++i) {
            const size_t src = built - 1 - i;  // largest pairs sort last
            if (std::abs(wnorm * z(built - 1, src)) > bound) converged = false;
          }
          if (converged) break;
        }
      }
    }
  }

  // Solve the m' x m' tridiagonal eigenproblem.
  std::vector<double> diag(alpha.begin(), alpha.begin() + built);
  std::vector<double> off;
  for (size_t i = 0; i + 1 < built; ++i) off.push_back(beta[i]);
  Matrix z = Matrix::Identity(built);
  IVMF_CHECK_MSG(TridiagonalQL(diag, off, &z), "tridiagonal QL failed");

  // Take the top-`rank` (largest) Ritz pairs; TridiagonalQL sorts ascending.
  const size_t keep = std::min(effective_rank, built);
  EigResult result;
  result.truncated = exhausted && keep < effective_rank;
  result.iterations = built;
  result.eigenvalues.resize(keep);
  result.eigenvectors = Matrix(n, keep);
  for (size_t out = 0; out < keep; ++out) {
    const size_t src = built - 1 - out;  // descending order
    result.eigenvalues[out] = diag[src];
    // Ritz vector = Q * z[:, src].
    for (size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (size_t k = 0; k < built; ++k) sum += q(i, k) * z(k, src);
      result.eigenvectors(i, out) = sum;
    }
  }
  CanonicalizeEigenvectorSigns(result.eigenvectors);
  instruments.iterations.Add(built);
  if (obs::Enabled()) {
    // Ritz residual bound |beta_m * z(m-1, i)|, maximized over the returned
    // pairs — how strongly the kept spectrum still couples to the
    // unexplored space.
    double max_residual = 0.0;
    for (size_t out = 0; out < keep; ++out) {
      max_residual = std::max(
          max_residual, std::abs(last_wnorm * z(built - 1, built - 1 - out)));
    }
    instruments.residual.Set(max_residual);
  }
  return result;
}

EigResult ComputeLanczosEig(const Matrix& a, size_t rank,
                            const LanczosOptions& options) {
  IVMF_CHECK_MSG(a.rows() == a.cols(), "Lanczos needs a square matrix");
  // The dense entry point keeps its historical contract: full-spectrum
  // requests go to the (exact) Jacobi solver.
  if (rank == 0 || rank >= a.rows()) {
    return ComputeSymmetricEig(a, rank);
  }
  return ComputeLanczosEig(DenseSymmetricOperator(a), rank, options);
}

}  // namespace ivmf
