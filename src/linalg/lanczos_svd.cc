#include "linalg/lanczos_svd.h"

#include <algorithm>
#include <cmath>

#include "base/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ivmf {
namespace {

struct SvdInstruments {
  obs::Counter& solves;
  obs::Counter& iterations;
  obs::Counter& matvecs;
  obs::Counter& restarts;
  obs::Gauge& residual;

  static SvdInstruments& Get() {
    static SvdInstruments instruments{
        obs::MetricsRegistry::Global().GetCounter("lanczos.svd.solves"),
        obs::MetricsRegistry::Global().GetCounter("lanczos.svd.iterations"),
        obs::MetricsRegistry::Global().GetCounter("lanczos.svd.matvecs"),
        obs::MetricsRegistry::Global().GetCounter("lanczos.svd.restarts"),
        obs::MetricsRegistry::Global().GetGauge("lanczos.svd.residual_bound")};
    return instruments;
  }
};

// Removes the components of `w` along the first `count` columns of `basis`,
// twice ("twice is enough" — the same treatment the eigensolver uses).
void Reorthogonalize(const Matrix& basis, size_t count,
                     std::vector<double>& w) {
  const size_t dim = basis.rows();
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t k = 0; k < count; ++k) {
      double proj = 0.0;
      for (size_t i = 0; i < dim; ++i) proj += w[i] * basis(i, k);
      for (size_t i = 0; i < dim; ++i) w[i] -= proj * basis(i, k);
    }
  }
}

// Writes a random unit vector orthogonal to the first `count` columns of
// `basis` into column `count`. Returns false when the space is exhausted —
// no drawn direction survives reorthogonalization above `tolerance` — in
// which case the caller must stop growing the basis and flag the result
// truncated if the requested triplet count was not reached.
bool RestartColumn(Matrix& basis, size_t count, std::vector<double>& scratch,
                   Rng& rng, double tolerance) {
  const size_t dim = basis.rows();
  for (int attempt = 0; attempt < 3; ++attempt) {
    for (double& x : scratch) x = rng.Normal();
    Reorthogonalize(basis, count, scratch);
    const double norm = Norm2(scratch);
    if (norm > tolerance) {
      for (size_t i = 0; i < dim; ++i) basis(i, count) = scratch[i] / norm;
      return true;
    }
  }
  return false;
}

}  // namespace

SvdResult ComputeLanczosSvd(const LinearMap& a, size_t rank,
                            const LanczosOptions& options) {
  obs::TraceSpan span("lanczos.svd");
  SvdInstruments& instruments = SvdInstruments::Get();
  instruments.solves.Add(1);
  const size_t n = a.Rows();
  const size_t m = a.Cols();
  if (n == 0 || m == 0) {
    // Degenerate shape: the empty decomposition, with factors shaped to
    // match (rank 0). Mirrors the dense Jacobi SVD on 0-dimensional input.
    SvdResult empty;
    empty.u = Matrix(n, 0);
    empty.v = Matrix(m, 0);
    return empty;
  }
  const size_t full = std::min(n, m);
  const size_t effective_rank = (rank == 0 || rank > full) ? full : rank;

  // Krylov steps (one per bidiagonal column).
  const size_t steps = std::min(
      full, static_cast<size_t>(options.subspace_factor * effective_rank) +
                options.subspace_extra);

  Matrix u(n, steps);
  Matrix v(m, steps);
  std::vector<double> alpha(steps, 0.0), beta(steps, 0.0);

  Rng rng(options.seed);
  std::vector<double> left(n), right(m);
  // Warm start (streaming refreshes): previous right singular vectors span
  // approximately the current dominant row subspace, so their combination
  // makes a far better v_0 than a random row-space draw. Cold start: from
  // v_0 = Aᵀ r with random r, so the start vector lies in the row space and
  // the Krylov sequence spends no dimension on the nullspace (a plain
  // random v_0 on a wide or rank-deficient matrix wastes its first basis
  // vector on a direction A cannot see, and min(n, m) steps would no longer
  // reach the full spectrum). Falls back to a random direction when A ≈ 0 —
  // every triplet is zero then anyway.
  if (lanczos_internal::WarmStartVector(options.start_basis, m, right)) {
    for (size_t i = 0; i < m; ++i) v(i, 0) = right[i];
  } else {
    for (double& x : left) x = rng.Normal();
    a.ApplyTranspose(left, right);
    instruments.matvecs.Add(1);
    double start_norm = Norm2(right);
    if (start_norm <= options.tolerance) {
      for (double& x : right) x = rng.Normal();
      start_norm = Norm2(right);
    }
    for (size_t i = 0; i < m; ++i) v(i, 0) = right[i] / start_norm;
  }

  bool exhausted = false;
  size_t built = 0;
  double last_bnorm = 0.0;
  for (size_t j = 0; j < steps; ++j) {
    built = j + 1;

    // Left step: u_j = (A v_j - beta_{j-1} u_{j-1}) / alpha_j.
    for (size_t i = 0; i < m; ++i) right[i] = v(i, j);
    a.Apply(right, left);
    instruments.matvecs.Add(1);
    if (j > 0) {
      for (size_t i = 0; i < n; ++i) left[i] -= beta[j - 1] * u(i, j - 1);
    }
    Reorthogonalize(u, j, left);
    const double anorm = Norm2(left);
    if (anorm > options.tolerance) {
      alpha[j] = anorm;
      for (size_t i = 0; i < n; ++i) u(i, j) = left[i] / anorm;
    } else {
      // A v_j already lies in span(u_0..u_{j-1}): the left space stalled.
      // alpha_j = 0 block-decouples B; continue from a fresh direction.
      alpha[j] = 0.0;
      instruments.restarts.Add(1);
      if (!RestartColumn(u, j, left, rng, options.restart_tolerance)) {
        built = j;
        exhausted = true;
        break;
      }
    }

    // Right step: v_{j+1} = (A^T u_j - alpha_j v_j) / beta_j.
    for (size_t i = 0; i < n; ++i) left[i] = u(i, j);
    a.ApplyTranspose(left, right);
    instruments.matvecs.Add(1);
    if (alpha[j] != 0.0) {
      for (size_t i = 0; i < m; ++i) right[i] -= alpha[j] * v(i, j);
    }
    Reorthogonalize(v, j + 1, right);
    if (j + 1 < steps) {
      const double bnorm = Norm2(right);
      last_bnorm = bnorm;
      if (bnorm > options.tolerance) {
        beta[j] = bnorm;
        for (size_t i = 0; i < m; ++i) v(i, j + 1) = right[i] / bnorm;

        // Optional early exit, mirroring the eigensolver: the residual of
        // Ritz triplet i is |beta_j * p_last,i| with p_i the left singular
        // vectors of the small bidiagonal B (A v̂ = σ û exactly; only the
        // Aᵀ û relation carries the coupling to the unexplored space).
        if (options.convergence_tol > 0.0 && built >= effective_rank &&
            options.convergence_interval > 0 &&
            built % options.convergence_interval == 0) {
          Matrix b_small(built, built);
          for (size_t i = 0; i < built; ++i) {
            b_small(i, i) = alpha[i];
            if (i + 1 < built) b_small(i, i + 1) = beta[i];
          }
          const SvdResult projected = ComputeSvd(b_small);
          const double sigma_max =
              projected.sigma.empty() ? 0.0 : projected.sigma[0];
          const double bound = options.convergence_tol * sigma_max;
          bool converged = sigma_max > 0.0;
          for (size_t i = 0; i < effective_rank && converged; ++i) {
            if (std::abs(bnorm * projected.u(built - 1, i)) > bound) {
              converged = false;
            }
          }
          if (converged) break;
        }
      } else {
        // Singular-invariant subspace pair found: restart and keep building
        // to the subspace cap. Stopping at the requested count would both
        // short-change rank-deficient endpoints (whose sibling endpoint
        // delivers more triplets, crashing the ISVD pairing) and miss the
        // second copies of duplicate singular values — one Krylov sequence
        // sees each distinct value exactly once; only restarted blocks
        // reach the rest of a degenerate cluster.
        beta[j] = 0.0;
        instruments.restarts.Add(1);
        if (!RestartColumn(v, j + 1, right, rng,
                           options.restart_tolerance)) {
          exhausted = true;
          break;
        }
      }
    }
  }
  IVMF_CHECK_MSG(built > 0, "Lanczos SVD built an empty basis");

  // SVD of the small upper-bidiagonal B (built x built): A ≈ U B V^T, so
  // with B = P diag(s) Q^T the triplets of A are (U P, s, V Q).
  Matrix b(built, built);
  for (size_t i = 0; i < built; ++i) {
    b(i, i) = alpha[i];
    if (i + 1 < built) b(i, i + 1) = beta[i];
  }
  const SvdResult small = ComputeSvd(b);

  const size_t keep = std::min(effective_rank, built);
  SvdResult result;
  result.truncated = exhausted && keep < effective_rank;
  result.iterations = built;
  result.sigma.assign(small.sigma.begin(),
                      small.sigma.begin() + static_cast<ptrdiff_t>(keep));
  result.u = Matrix(n, keep);
  result.v = Matrix(m, keep);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < keep; ++c) {
      double sum = 0.0;
      for (size_t k = 0; k < built; ++k) sum += u(i, k) * small.u(k, c);
      result.u(i, c) = sum;
    }
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t c = 0; c < keep; ++c) {
      double sum = 0.0;
      for (size_t k = 0; k < built; ++k) sum += v(i, k) * small.v(k, c);
      result.v(i, c) = sum;
    }
  }
  CanonicalizeSingularVectorSigns(result.u, result.v);
  instruments.iterations.Add(built);
  if (obs::Enabled()) {
    // Ritz residual bound |beta_m * p(m-1, i)| from the last computed
    // off-diagonal coupling, maximized over the returned triplets.
    double max_residual = 0.0;
    for (size_t i = 0; i < keep; ++i) {
      max_residual =
          std::max(max_residual, std::abs(last_bnorm * small.u(built - 1, i)));
    }
    instruments.residual.Set(max_residual);
  }
  return result;
}

SvdResult ComputeLanczosSvd(const Matrix& a, size_t rank,
                            const LanczosOptions& options) {
  return ComputeLanczosSvd(DenseLinearMap(a), rank, options);
}

}  // namespace ivmf
