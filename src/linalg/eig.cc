#include "linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ivmf {

EigResult ComputeSymmetricEig(const Matrix& a, size_t rank,
                              const EigOptions& options) {
  IVMF_CHECK_MSG(a.rows() == a.cols(), "eigendecomposition needs a square matrix");
  const size_t n = a.rows();
  Matrix work = a;
  Matrix v = Matrix::Identity(n);

  // Scale-aware stopping threshold.
  const double frob = work.FrobeniusNorm();
  const double stop = options.tolerance * (frob > 0.0 ? frob : 1.0);

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    // Off-diagonal Frobenius mass; when small enough we are diagonal.
    double off = 0.0;
    for (size_t p = 0; p + 1 < n; ++p)
      for (size_t q = p + 1; q < n; ++q) off += work(p, q) * work(p, q);
    if (std::sqrt(2.0 * off) <= stop) break;

    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = work(p, q);
        if (std::abs(apq) <= stop / (static_cast<double>(n) * n)) continue;
        const double app = work(p, p);
        const double aqq = work(q, q);

        // Classical Jacobi rotation annihilating work(p, q).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        // Update rows/columns p and q of the symmetric working matrix.
        for (size_t i = 0; i < n; ++i) {
          if (i == p || i == q) continue;
          const double aip = work(i, p);
          const double aiq = work(i, q);
          work(i, p) = work(p, i) = c * aip - s * aiq;
          work(i, q) = work(q, i) = s * aip + c * aiq;
        }
        work(p, p) = app - t * apq;
        work(q, q) = aqq + t * apq;
        work(p, q) = work(q, p) = 0.0;

        // Accumulate eigenvectors.
        for (size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  std::vector<double> lambda(n);
  for (size_t i = 0; i < n; ++i) lambda[i] = work(i, i);

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t x, size_t y) { return lambda[x] > lambda[y]; });

  const size_t r = rank == 0 ? n : std::min(rank, n);
  EigResult result;
  result.eigenvalues.resize(r);
  result.eigenvectors = Matrix(n, r);
  for (size_t j = 0; j < r; ++j) {
    const size_t src = order[j];
    result.eigenvalues[j] = lambda[src];
    for (size_t i = 0; i < n; ++i) result.eigenvectors(i, j) = v(i, src);
  }
  CanonicalizeEigenvectorSigns(result.eigenvectors);
  return result;
}

void CanonicalizeEigenvectorSigns(Matrix& eigenvectors) {
  for (size_t j = 0; j < eigenvectors.cols(); ++j) {
    size_t pivot = 0;
    double best = 0.0;
    for (size_t i = 0; i < eigenvectors.rows(); ++i) {
      const double mag = std::abs(eigenvectors(i, j));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    if (eigenvectors(pivot, j) < 0.0) {
      for (size_t i = 0; i < eigenvectors.rows(); ++i)
        eigenvectors(i, j) = -eigenvectors(i, j);
    }
  }
}

}  // namespace ivmf
