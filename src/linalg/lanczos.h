// Truncated symmetric eigendecomposition via the Lanczos method with full
// reorthogonalization.
//
// ISVD2–ISVD4 only need the top-r eigenpairs of the Gram matrices; the
// cyclic Jacobi solver (linalg/eig.h) computes the full spectrum in O(n³)
// per sweep, which dominates the pipeline for large matrices. Lanczos
// builds a Krylov basis of dimension O(r) and solves a small symmetric
// tridiagonal problem instead — typically an order of magnitude faster at
// low rank while agreeing with Jacobi to ~1e-8 (see the kernels
// microbenchmark and tests/lanczos_test.cc).

#ifndef IVMF_LINALG_LANCZOS_H_
#define IVMF_LINALG_LANCZOS_H_

#include <cstdint>

#include "linalg/eig.h"
#include "linalg/linear_operator.h"
#include "linalg/matrix.h"

namespace ivmf {

struct LanczosOptions {
  // Krylov subspace dimension as a multiple of the requested rank
  // (clamped to n). Larger = more accurate interior eigenvalues.
  double subspace_factor = 3.0;
  // Extra Krylov vectors beyond factor * rank.
  size_t subspace_extra = 25;
  // Deterministic seed for the random start vector.
  uint64_t seed = 12345;
  // Convergence threshold on the tridiagonal off-diagonal.
  double tolerance = 1e-12;
};

// Computes the `rank` algebraically-largest eigenpairs of the symmetric
// matrix `a` (rank == 0 or rank >= n falls back to the full Jacobi solver).
// Results use the same conventions as ComputeSymmetricEig: eigenvalues
// descending, orthonormal eigenvector columns.
EigResult ComputeLanczosEig(const Matrix& a, size_t rank,
                            const LanczosOptions& options = {});

// Matrix-free variant: the operator is touched only through y = A x, so the
// symmetric matrix never needs to be materialized (e.g. the sparse Gram
// operator M†ᵀ(M† x)). There is no Jacobi fallback here — rank == 0 or
// rank >= Dim() grows the Krylov basis to the full dimension instead, which
// still returns the complete spectrum.
EigResult ComputeLanczosEig(const LinearOperator& op, size_t rank,
                            const LanczosOptions& options = {});

// Eigenvalues (ascending) and optionally eigenvectors of a symmetric
// tridiagonal matrix given its diagonal and sub-diagonal, via the implicit
// QL algorithm (tql2). Exposed for testing.
//
// `diag` has n entries, `off` has n-1. On return `diag` holds the
// eigenvalues ascending and, if `z` is non-null (must be an identity-like
// n x n basis on entry), its columns hold the eigenvectors.
bool TridiagonalQL(std::vector<double>& diag, std::vector<double>& off,
                   Matrix* z, int max_iterations = 50);

}  // namespace ivmf

#endif  // IVMF_LINALG_LANCZOS_H_
