// Truncated symmetric eigendecomposition via the Lanczos method with full
// reorthogonalization.
//
// ISVD2–ISVD4 only need the top-r eigenpairs of the Gram matrices; the
// cyclic Jacobi solver (linalg/eig.h) computes the full spectrum in O(n³)
// per sweep, which dominates the pipeline for large matrices. Lanczos
// builds a Krylov basis of dimension O(r) and solves a small symmetric
// tridiagonal problem instead — typically an order of magnitude faster at
// low rank while agreeing with Jacobi to ~1e-8 (see the kernels
// microbenchmark and tests/lanczos_test.cc).

#ifndef IVMF_LINALG_LANCZOS_H_
#define IVMF_LINALG_LANCZOS_H_

#include <cstdint>

#include "linalg/eig.h"
#include "linalg/linear_operator.h"
#include "linalg/matrix.h"

namespace ivmf {

struct LanczosOptions {
  // Krylov subspace dimension as a multiple of the requested rank
  // (clamped to n). Larger = more accurate interior eigenvalues.
  double subspace_factor = 3.0;
  // Extra Krylov vectors beyond factor * rank.
  size_t subspace_extra = 25;
  // Deterministic seed for the random start vector.
  uint64_t seed = 12345;
  // Convergence threshold on the tridiagonal off-diagonal.
  double tolerance = 1e-12;
  // Minimum norm of a reorthogonalized random direction accepted by the
  // invariant-subspace restart. When every restart attempt falls below it
  // the basis cannot grow further: the solver stops and flags the result
  // `truncated` if the requested count was not reached (previously the
  // spectrum was silently cut short).
  double restart_tolerance = 1e-8;
  // Warm start: columns approximating the dominant invariant subspace —
  // typically the previous step's Ritz vectors, carried across refreshes by
  // the streaming ISVD driver. When non-empty and of matching dimension the
  // Krylov start vector is the normalized column sum (equal energy in every
  // carried direction) instead of a random draw; otherwise it is ignored.
  Matrix start_basis;
  // When > 0, the small projected problem is solved every
  // `convergence_interval` steps and the iteration stops as soon as every
  // requested Ritz pair has residual bound below convergence_tol * |theta|_max.
  // 0 (the default) builds the basis to the subspace cap — the cold-start
  // behavior every batch-mode caller keeps.
  double convergence_tol = 0.0;
  size_t convergence_interval = 8;
};

// The Golub–Kahan–Lanczos SVD (linalg/lanczos_svd.h) shares the same Krylov
// policy knobs; `start_basis` there approximates the dominant *right*
// singular subspace.
using LanczosSvdOptions = LanczosOptions;

// Computes the `rank` algebraically-largest eigenpairs of the symmetric
// matrix `a` (rank == 0 or rank >= n falls back to the full Jacobi solver).
// Results use the same conventions as ComputeSymmetricEig: eigenvalues
// descending, orthonormal eigenvector columns.
EigResult ComputeLanczosEig(const Matrix& a, size_t rank,
                            const LanczosOptions& options = {});

// Matrix-free variant: the operator is touched only through y = A x, so the
// symmetric matrix never needs to be materialized (e.g. the sparse Gram
// operator M†ᵀ(M† x)). There is no Jacobi fallback here — rank == 0 or
// rank >= Dim() grows the Krylov basis to the full dimension instead, which
// still returns the complete spectrum.
EigResult ComputeLanczosEig(const LinearOperator& op, size_t rank,
                            const LanczosOptions& options = {});

namespace lanczos_internal {

// Builds the Krylov start vector from a warm-start basis: the normalized
// column sum (orthonormal columns never cancel: ||sum||² = #cols), giving
// equal energy to every carried Ritz direction. Returns false — leaving
// `v` untouched — when the basis is absent or does not match the
// dimension, so the caller falls back to its random cold start. Shared by
// the eigensolver and the Golub–Kahan–Lanczos SVD.
bool WarmStartVector(const Matrix& basis, size_t dim, std::vector<double>& v);

}  // namespace lanczos_internal

// Eigenvalues (ascending) and optionally eigenvectors of a symmetric
// tridiagonal matrix given its diagonal and sub-diagonal, via the implicit
// QL algorithm (tql2). Exposed for testing.
//
// `diag` has n entries, `off` has n-1. On return `diag` holds the
// eigenvalues ascending and, if `z` is non-null (must be an identity-like
// n x n basis on entry), its columns hold the eigenvectors.
bool TridiagonalQL(std::vector<double>& diag, std::vector<double>& off,
                   Matrix* z, int max_iterations = 50);

}  // namespace ivmf

#endif  // IVMF_LINALG_LANCZOS_H_
