#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace ivmf {
namespace {

// One-sided Jacobi on a working copy W (n x m), n >= m recommended.
// Orthogonalizes the columns of W while accumulating the rotations in V
// (m x m). On convergence W = U * diag(sigma) * I with the columns of W
// mutually orthogonal, so sigma_j = |W_j| and U_j = W_j / sigma_j, while
// M = W * V^T... more precisely M * V = W, hence M = W V^T.
void OneSidedJacobi(Matrix& w, Matrix& v, const SvdOptions& options) {
  const size_t n = w.rows();
  const size_t m = w.cols();
  v = Matrix::Identity(m);
  if (m < 2) return;

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    double max_coupling = 0.0;
    for (size_t p = 0; p + 1 < m; ++p) {
      for (size_t q = p + 1; q < m; ++q) {
        // Column inner products a = <Wp,Wp>, b = <Wq,Wq>, c = <Wp,Wq>.
        double a = 0.0, b = 0.0, c = 0.0;
        for (size_t i = 0; i < n; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          a += wp * wp;
          b += wq * wq;
          c += wp * wq;
        }
        if (a == 0.0 || b == 0.0) continue;
        const double coupling = std::abs(c) / std::sqrt(a * b);
        max_coupling = std::max(max_coupling, coupling);
        if (coupling <= options.tolerance) continue;

        // Jacobi rotation that annihilates the (p, q) coupling.
        const double zeta = (b - a) / (2.0 * c);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        for (size_t i = 0; i < n; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          w(i, p) = cs * wp - sn * wq;
          w(i, q) = sn * wp + cs * wq;
        }
        for (size_t i = 0; i < m; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = cs * vp - sn * vq;
          v(i, q) = sn * vp + cs * vq;
        }
      }
    }
    if (max_coupling <= options.tolerance) break;
  }
}

}  // namespace

void CanonicalizeSingularVectorSigns(Matrix& u, Matrix& v) {
  IVMF_CHECK(u.cols() == v.cols());
  for (size_t j = 0; j < v.cols(); ++j) {
    size_t pivot = 0;
    double best = 0.0;
    for (size_t i = 0; i < v.rows(); ++i) {
      const double mag = std::abs(v(i, j));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    if (v(pivot, j) < 0.0) {
      for (size_t i = 0; i < v.rows(); ++i) v(i, j) = -v(i, j);
      for (size_t i = 0; i < u.rows(); ++i) u(i, j) = -u(i, j);
    }
  }
}

Matrix SvdResult::Reconstruct() const {
  Matrix us = u;  // scale columns of U by sigma, then multiply by V^T
  for (size_t i = 0; i < us.rows(); ++i)
    for (size_t j = 0; j < us.cols(); ++j) us(i, j) *= sigma[j];
  return us * v.Transpose();
}

SvdResult ComputeSvd(const Matrix& m, size_t rank, const SvdOptions& options) {
  const size_t n = m.rows();
  const size_t cols = m.cols();
  IVMF_CHECK_MSG(n > 0 && cols > 0, "SVD of an empty matrix");

  // Work on the orientation with fewer columns: one-sided Jacobi cost grows
  // with the square of the column count.
  const bool transposed = cols > n;
  Matrix w = transposed ? m.Transpose() : m;
  const size_t wn = w.rows();   // >= wm
  const size_t wm = w.cols();

  Matrix v;
  OneSidedJacobi(w, v, options);

  // Singular values are the column norms of the rotated W.
  std::vector<double> sigma(wm);
  for (size_t j = 0; j < wm; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < wn; ++i) s += w(i, j) * w(i, j);
    sigma[j] = std::sqrt(s);
  }

  // Order columns by descending singular value.
  std::vector<size_t> order(wm);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return sigma[a] > sigma[b]; });

  size_t r = rank == 0 ? wm : std::min(rank, wm);

  Matrix u_out(wn, r);
  Matrix v_out(wm, r);
  std::vector<double> sigma_out(r);
  const double tiny = 1e-300;
  for (size_t j = 0; j < r; ++j) {
    const size_t src = order[j];
    sigma_out[j] = sigma[src];
    const double inv = sigma[src] > tiny ? 1.0 / sigma[src] : 0.0;
    for (size_t i = 0; i < wn; ++i) u_out(i, j) = w(i, src) * inv;
    for (size_t i = 0; i < wm; ++i) v_out(i, j) = v(i, src);
  }

  SvdResult result;
  if (transposed) {
    // m = W^T with W = U Σ V^T  =>  m = V Σ U^T.
    result.u = std::move(v_out);
    result.v = std::move(u_out);
  } else {
    result.u = std::move(u_out);
    result.v = std::move(v_out);
  }
  result.sigma = std::move(sigma_out);
  CanonicalizeSingularVectorSigns(result.u, result.v);
  return result;
}

}  // namespace ivmf
