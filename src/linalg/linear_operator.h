// Matrix-free symmetric linear operators.
//
// The Lanczos eigensolver only ever touches its input through products
// y = A x, so it can be programmed against an abstract operator instead of a
// materialized matrix (the dense_matrix / matrix_store split popularized by
// semi-external-memory graph engines). ISVD2–ISVD4 exploit this to
// eigendecompose the Gram matrix A† = M†ᵀ M† without ever forming the m x m
// matrix: the operator applies M†ᵀ(M† x) in O(nnz) per Lanczos step.

#ifndef IVMF_LINALG_LINEAR_OPERATOR_H_
#define IVMF_LINALG_LINEAR_OPERATOR_H_

#include <cstddef>
#include <vector>

#include "base/check.h"
#include "base/parallel.h"
#include "linalg/matrix.h"

namespace ivmf {

// A symmetric linear operator on R^n, defined solely by its action
// y = A x. Implementations must be safe to Apply concurrently from
// different operator instances (ComputeGramEig runs the lower/upper
// endpoint solves on two threads, one operator each).
//
// Aliasing contract (interface-wide, for LinearMap too): `y` must be a
// distinct vector from `x` — implementations stream the input while
// writing the output in blocked (possibly vectorized or parallel) order,
// so an in-place call would read half-written data. The sparse kernels
// assert this (see sparse/sparse_kernels.h); the dense adapters below
// check it too.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  // Dimension n of the (square, symmetric) operator.
  virtual size_t Dim() const = 0;

  // y = A x. `x` has Dim() entries; `y` is resized to Dim(). `y` must not
  // alias `x`.
  virtual void Apply(const std::vector<double>& x,
                     std::vector<double>& y) const = 0;
};

// A general (rectangular) linear map A: R^Cols() -> R^Rows(), defined by its
// forward and transpose actions. This is the operator the Golub–Kahan–
// Lanczos bidiagonalization SVD (linalg/lanczos_svd.h) is programmed
// against: ISVD0/ISVD1 decompose the endpoint (or midpoint) matrices of a
// sparse interval matrix without ever materializing them, touching the data
// only through y = A x and y = Aᵀ x.
class LinearMap {
 public:
  virtual ~LinearMap() = default;

  virtual size_t Rows() const = 0;
  virtual size_t Cols() const = 0;

  // y = A x. `x` has Cols() entries; `y` is resized to Rows().
  virtual void Apply(const std::vector<double>& x,
                     std::vector<double>& y) const = 0;

  // y = Aᵀ x. `x` has Rows() entries; `y` is resized to Cols().
  virtual void ApplyTranspose(const std::vector<double>& x,
                              std::vector<double>& y) const = 0;
};

// Adapter exposing a dense Matrix as a LinearMap. Both actions stream the
// row-major storage in row order (the transpose apply as a scatter-free
// accumulation over rows), so no transposed copy is ever built.
class DenseLinearMap final : public LinearMap {
 public:
  // Wraps `a` by reference; the matrix must outlive the map.
  explicit DenseLinearMap(const Matrix& a) : a_(a) {}

  size_t Rows() const override { return a_.rows(); }
  size_t Cols() const override { return a_.cols(); }

  void Apply(const std::vector<double>& x,
             std::vector<double>& y) const override {
    IVMF_CHECK(x.size() == a_.cols());
    IVMF_CHECK_MSG(&y != &x, "Apply output must not alias the input");
    y.resize(a_.rows());
    for (size_t i = 0; i < a_.rows(); ++i) {
      const double* row = a_.RowPtr(i);
      double sum = 0.0;
      for (size_t j = 0; j < a_.cols(); ++j) sum += row[j] * x[j];
      y[i] = sum;
    }
  }

  void ApplyTranspose(const std::vector<double>& x,
                      std::vector<double>& y) const override {
    IVMF_CHECK(x.size() == a_.rows());
    IVMF_CHECK_MSG(&y != &x, "ApplyTranspose output must not alias the input");
    y.assign(a_.cols(), 0.0);
    for (size_t i = 0; i < a_.rows(); ++i) {
      const double xi = x[i];
      if (xi == 0.0) continue;
      const double* row = a_.RowPtr(i);
      for (size_t j = 0; j < a_.cols(); ++j) y[j] += row[j] * xi;
    }
  }

 private:
  const Matrix& a_;
};

// Adapter exposing a dense symmetric Matrix as a LinearOperator. Rows are
// processed in parallel for large matrices; results are bit-identical to
// the serial loop because each row writes a disjoint output entry.
class DenseSymmetricOperator final : public LinearOperator {
 public:
  // Wraps `a` by reference; the matrix must outlive the operator.
  explicit DenseSymmetricOperator(const Matrix& a) : a_(a) {
    IVMF_CHECK_MSG(a.rows() == a.cols(),
                   "DenseSymmetricOperator needs a square matrix");
  }

  size_t Dim() const override { return a_.rows(); }

  void Apply(const std::vector<double>& x,
             std::vector<double>& y) const override {
    const size_t n = a_.rows();
    IVMF_CHECK(x.size() == n);
    IVMF_CHECK_MSG(&y != &x, "Apply output must not alias the input");
    y.resize(n);
    ParallelFor(
        0, n,
        [&](size_t i) {
          const double* row = a_.RowPtr(i);
          double sum = 0.0;
          for (size_t j = 0; j < n; ++j) sum += row[j] * x[j];
          y[i] = sum;
        },
        /*max_threads=*/0, /*min_items_per_thread=*/256);
  }

 private:
  const Matrix& a_;
};

}  // namespace ivmf

#endif  // IVMF_LINALG_LINEAR_OPERATOR_H_
