// Truncated SVD via Golub–Kahan–Lanczos bidiagonalization with full
// reorthogonalization.
//
// ISVD0 and ISVD1 need the top-r singular triplets of the endpoint (or
// midpoint) matrices. The one-sided Jacobi solver (linalg/svd.h) computes
// the full decomposition of a materialized matrix; this solver instead
// touches the matrix only through the forward and transpose applies of a
// LinearMap, building a pair of Krylov bases U (n x k) and V (m x k) joined
// by a small upper-bidiagonal matrix B with A V ≈ U B. The SVD of B then
// lifts to singular triplets of A, so the sparse ISVD path never
// materializes an endpoint matrix — each step costs two O(nnz) operator
// applications.
//
// Breakdown handling mirrors the symmetric Lanczos eigensolver
// (linalg/lanczos.h): when a new basis vector vanishes (rank-deficient
// operators — e.g. the all-zero lower endpoint of [0, x] interval data, or
// exactly low-rank matrices), the corresponding bidiagonal entry is zeroed
// and the basis restarts with a fresh random direction orthogonal to what
// was built, continuing to the subspace cap — so the caller always receives
// the requested triplet count, and duplicate singular values (which a
// single Krylov sequence sees only once) are picked up by the restarted
// blocks. The decoupling is exact: a breakdown certifies the built subspace
// pair is singular-invariant, so restarted directions never couple back
// into it. Should the restart itself fail (no acceptable direction above
// LanczosOptions::restart_tolerance), the result is marked `truncated`
// instead of silently delivering fewer triplets.
//
// Streaming refreshes pass LanczosOptions::start_basis (the previous
// step's right singular vectors) to warm-start the bidiagonalization and
// convergence_tol to stop as soon as the requested triplets' residuals are
// below tolerance; see core/streaming_isvd.h for the driver.

#ifndef IVMF_LINALG_LANCZOS_SVD_H_
#define IVMF_LINALG_LANCZOS_SVD_H_

#include "linalg/lanczos.h"
#include "linalg/linear_operator.h"
#include "linalg/svd.h"

namespace ivmf {

// Computes the `rank` largest singular triplets of the rectangular operator
// `a` (rank == 0 or rank >= min(Rows, Cols) grows the Krylov bases to the
// full dimension, returning the complete decomposition). Results use the
// same conventions as ComputeSvd: sigma descending, orthonormal U/V columns,
// singular-vector signs canonicalized by CanonicalizeSingularVectorSigns.
// LanczosOptions carries the shared Krylov policy (subspace size as a
// multiple of the rank, deterministic start-vector seed, breakdown
// tolerance).
SvdResult ComputeLanczosSvd(const LinearMap& a, size_t rank,
                            const LanczosOptions& options = {});

// Dense convenience overload (used by tests and small-matrix callers).
SvdResult ComputeLanczosSvd(const Matrix& a, size_t rank,
                            const LanczosOptions& options = {});

}  // namespace ivmf

#endif  // IVMF_LINALG_LANCZOS_SVD_H_
