#include "linalg/matrix.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "base/parallel.h"

namespace ivmf {

Matrix Matrix::FromRows(
    std::initializer_list<std::initializer_list<double>> rows) {
  const size_t n = rows.size();
  const size_t m = n == 0 ? 0 : rows.begin()->size();
  Matrix result(n, m);
  size_t i = 0;
  for (const auto& row : rows) {
    IVMF_CHECK_MSG(row.size() == m, "all rows must have the same length");
    size_t j = 0;
    for (double v : row) result(i, j++) = v;
    ++i;
  }
  return result;
}

Matrix Matrix::Identity(size_t n) {
  Matrix result(n, n);
  for (size_t i = 0; i < n; ++i) result(i, i) = 1.0;
  return result;
}

Matrix Matrix::Diagonal(const std::vector<double>& diag) {
  Matrix result(diag.size(), diag.size());
  for (size_t i = 0; i < diag.size(); ++i) result(i, i) = diag[i];
  return result;
}

std::vector<double> Matrix::Row(size_t i) const {
  IVMF_CHECK(i < rows_);
  return std::vector<double>(RowPtr(i), RowPtr(i) + cols_);
}

std::vector<double> Matrix::Col(size_t j) const {
  IVMF_CHECK(j < cols_);
  std::vector<double> col(rows_);
  for (size_t i = 0; i < rows_; ++i) col[i] = (*this)(i, j);
  return col;
}

void Matrix::SetRow(size_t i, const std::vector<double>& row) {
  IVMF_CHECK(i < rows_ && row.size() == cols_);
  std::memcpy(RowPtr(i), row.data(), cols_ * sizeof(double));
}

void Matrix::SetCol(size_t j, const std::vector<double>& col) {
  IVMF_CHECK(j < cols_ && col.size() == rows_);
  for (size_t i = 0; i < rows_; ++i) (*this)(i, j) = col[i];
}

Matrix Matrix::ColBlock(size_t first, size_t count) const {
  IVMF_CHECK(first + count <= cols_);
  Matrix result(rows_, count);
  for (size_t i = 0; i < rows_; ++i) {
    std::memcpy(result.RowPtr(i), RowPtr(i) + first, count * sizeof(double));
  }
  return result;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  IVMF_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t k = 0; k < data_.size(); ++k) data_[k] += other.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  IVMF_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::operator*(const Matrix& other) const {
  IVMF_CHECK_MSG(cols_ == other.rows_, "matrix product dimension mismatch");
  Matrix result(rows_, other.cols_);
  // i-k-j loop order walks both operands row-major (cache friendly); output
  // rows are independent, so they parallelize directly. The threshold keeps
  // small products serial (thread launch would dominate).
  auto compute_row = [&](size_t i) {
    const double* a_row = RowPtr(i);
    double* out_row = result.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double a_ik = a_row[k];
      if (a_ik == 0.0) continue;
      const double* b_row = other.RowPtr(k);
      for (size_t j = 0; j < other.cols_; ++j) out_row[j] += a_ik * b_row[j];
    }
  };
  const size_t flops = rows_ * cols_ * other.cols_;
  if (flops >= 4u << 20) {
    ParallelFor(0, rows_, compute_row, /*max_threads=*/0,
                /*min_items_per_thread=*/8);
  } else {
    for (size_t i = 0; i < rows_; ++i) compute_row(i);
  }
  return result;
}

Matrix Matrix::CwiseMultiply(const Matrix& other) const {
  IVMF_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix result(rows_, cols_);
  for (size_t k = 0; k < data_.size(); ++k)
    result.data_[k] = data_[k] * other.data_[k];
  return result;
}

Matrix Matrix::CwiseQuotient(const Matrix& other, double epsilon) const {
  IVMF_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix result(rows_, cols_);
  for (size_t k = 0; k < data_.size(); ++k) {
    const double denom = other.data_[k];
    result.data_[k] =
        std::abs(denom) < epsilon ? 0.0 : data_[k] / denom;
  }
  return result;
}

Matrix Matrix::Transpose() const {
  Matrix result(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) result(j, i) = (*this)(i, j);
  return result;
}

std::vector<double> Matrix::DiagonalEntries() const {
  const size_t n = rows_ < cols_ ? rows_ : cols_;
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = (*this)(i, i);
  return diag;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

double Matrix::Sum() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t k = 0; k < data_.size(); ++k) {
    if (std::abs(data_[k] - other.data_[k]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < rows_; ++i) {
    out += "[ ";
    for (size_t j = 0; j < cols_; ++j) {
      std::snprintf(buf, sizeof(buf), "%.*g ", precision, (*this)(i, j));
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  IVMF_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  const double na = Norm2(a);
  const double nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

}  // namespace ivmf
