#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ivmf {
namespace {

// Dense simplex tableau.
//
// Layout: rows 0..m-1 are constraints, row m is the objective (reduced
// costs, stored negated so that a positive entry means "improving").
// Columns 0..total_vars-1 are variables, column total_vars is the RHS.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols) : t_(rows, cols) {}
  double& At(size_t i, size_t j) { return t_(i, j); }
  double At(size_t i, size_t j) const { return t_(i, j); }
  size_t rows() const { return t_.rows(); }
  size_t cols() const { return t_.cols(); }

  void Pivot(size_t pivot_row, size_t pivot_col) {
    const double pivot = t_(pivot_row, pivot_col);
    const double inv = 1.0 / pivot;
    for (size_t j = 0; j < t_.cols(); ++j) t_(pivot_row, j) *= inv;
    for (size_t i = 0; i < t_.rows(); ++i) {
      if (i == pivot_row) continue;
      const double factor = t_(i, pivot_col);
      if (factor == 0.0) continue;
      for (size_t j = 0; j < t_.cols(); ++j)
        t_(i, j) -= factor * t_(pivot_row, j);
    }
  }

 private:
  Matrix t_;
};

// Runs simplex iterations on `tab` for a maximization problem whose
// objective row is the last row (entries are negated reduced costs: we pivot
// on columns with a *negative* objective-row entry). `basis[i]` tracks the
// basic variable of constraint row i.
LpStatus Iterate(Tableau& tab, std::vector<size_t>& basis,
                 const SimplexOptions& options, size_t num_pivot_cols) {
  const size_t m = tab.rows() - 1;
  const size_t rhs = tab.cols() - 1;
  size_t iterations = 0;
  const size_t bland_after = options.max_iterations / 2;

  while (true) {
    if (++iterations > options.max_iterations) return LpStatus::kIterationLimit;
    const bool use_bland = iterations > bland_after;

    // Entering variable: most negative objective entry (Dantzig), or the
    // first negative one (Bland) once we suspect cycling.
    size_t enter = rhs;
    double best = -options.tolerance;
    for (size_t j = 0; j < num_pivot_cols; ++j) {
      const double rc = tab.At(m, j);
      if (rc < best) {
        enter = j;
        best = rc;
        if (use_bland) break;
      }
    }
    if (enter == rhs) return LpStatus::kOptimal;

    // Leaving variable: min-ratio test (ties: smallest basis index — Bland).
    size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < m; ++i) {
      const double a = tab.At(i, enter);
      if (a <= options.tolerance) continue;
      const double ratio = tab.At(i, rhs) / a;
      if (ratio < best_ratio - options.tolerance ||
          (ratio < best_ratio + options.tolerance && leave != m &&
           basis[i] < basis[leave])) {
        best_ratio = ratio;
        leave = i;
      }
    }
    if (leave == m) return LpStatus::kUnbounded;

    tab.Pivot(leave, enter);
    basis[leave] = enter;
  }
}

}  // namespace

LpSolution SolveLp(const LpProblem& problem, const SimplexOptions& options) {
  const size_t m = problem.a.rows();
  const size_t n = problem.a.cols();
  IVMF_CHECK(problem.b.size() == m && problem.types.size() == m &&
             problem.c.size() == n);

  // Normalize rows so every RHS is non-negative.
  Matrix a = problem.a;
  std::vector<double> b = problem.b;
  std::vector<LpConstraintType> types = problem.types;
  for (size_t i = 0; i < m; ++i) {
    if (b[i] < 0.0) {
      b[i] = -b[i];
      for (size_t j = 0; j < n; ++j) a(i, j) = -a(i, j);
      if (types[i] == LpConstraintType::kLessEqual) {
        types[i] = LpConstraintType::kGreaterEqual;
      } else if (types[i] == LpConstraintType::kGreaterEqual) {
        types[i] = LpConstraintType::kLessEqual;
      }
    }
  }

  // Count auxiliary variables.
  size_t num_slack = 0, num_artificial = 0;
  for (const auto type : types) {
    if (type == LpConstraintType::kLessEqual) {
      ++num_slack;
    } else if (type == LpConstraintType::kGreaterEqual) {
      ++num_slack;       // surplus
      ++num_artificial;
    } else {
      ++num_artificial;
    }
  }

  const size_t total = n + num_slack + num_artificial;
  const size_t rhs_col = total;
  Tableau tab(m + 1, total + 1);
  std::vector<size_t> basis(m);

  size_t slack_at = n;
  size_t artificial_at = n + num_slack;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) tab.At(i, j) = a(i, j);
    tab.At(i, rhs_col) = b[i];
    switch (types[i]) {
      case LpConstraintType::kLessEqual:
        tab.At(i, slack_at) = 1.0;
        basis[i] = slack_at++;
        break;
      case LpConstraintType::kGreaterEqual:
        tab.At(i, slack_at) = -1.0;
        ++slack_at;
        tab.At(i, artificial_at) = 1.0;
        basis[i] = artificial_at++;
        break;
      case LpConstraintType::kEqual:
        tab.At(i, artificial_at) = 1.0;
        basis[i] = artificial_at++;
        break;
    }
  }

  LpSolution solution;

  // ---- Phase 1: maximize -(sum of artificials). --------------------------
  if (num_artificial > 0) {
    // Objective row: +1 for each artificial (we store negated reduced
    // costs, maximizing -sum(artificials) means coefficients c_j = -1).
    for (size_t j = n + num_slack; j < total; ++j) tab.At(m, j) = 1.0;
    // Price out the artificial basis (their rows currently carry them).
    for (size_t i = 0; i < m; ++i) {
      if (basis[i] >= n + num_slack) {
        for (size_t j = 0; j <= total; ++j)
          tab.At(m, j) -= tab.At(i, j);
      }
    }
    const LpStatus phase1 = Iterate(tab, basis, options, total);
    if (phase1 == LpStatus::kIterationLimit) {
      solution.status = phase1;
      return solution;
    }
    // Infeasible when artificials keep positive value.
    if (-tab.At(m, rhs_col) > 1e-7) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Drive remaining (zero-valued) artificials out of the basis.
    for (size_t i = 0; i < m; ++i) {
      if (basis[i] < n + num_slack) continue;
      size_t pivot_col = total;
      for (size_t j = 0; j < n + num_slack; ++j) {
        if (std::abs(tab.At(i, j)) > options.tolerance) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col != total) {
        tab.Pivot(i, pivot_col);
        basis[i] = pivot_col;
      }
      // A fully-zero row is redundant; its artificial stays basic at zero,
      // which is harmless for phase 2 as artificial columns are frozen out.
    }
  }

  // ---- Phase 2: the real objective. ---------------------------------------
  for (size_t j = 0; j <= total; ++j) tab.At(m, j) = 0.0;
  for (size_t j = 0; j < n; ++j) tab.At(m, j) = -problem.c[j];
  // Price out the current basis.
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] < n) {
      const double coef = tab.At(m, basis[i]);
      if (coef != 0.0) {
        for (size_t j = 0; j <= total; ++j)
          tab.At(m, j) -= coef * tab.At(i, j);
      }
    }
  }
  // Phase 2 never pivots on artificial columns.
  const LpStatus phase2 = Iterate(tab, basis, options, n + num_slack);
  if (phase2 != LpStatus::kOptimal) {
    solution.status = phase2;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.x.assign(n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] < n) solution.x[basis[i]] = tab.At(i, rhs_col);
  }
  solution.objective = tab.At(m, rhs_col);
  return solution;
}

}  // namespace ivmf
