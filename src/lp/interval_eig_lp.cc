#include "lp/interval_eig_lp.h"

#include <algorithm>
#include <cmath>

#include "linalg/eig.h"
#include "lp/simplex.h"

namespace ivmf {

IntervalEigLpResult ComputeIntervalEigLp(const IntervalMatrix& a, size_t rank,
                                         const IntervalEigLpOptions& options) {
  IVMF_CHECK_MSG(a.rows() == a.cols(),
                 "interval eigendecomposition needs a square matrix");
  const size_t n = a.rows();

  // Midpoint / radius split: A† = A_c +/- R with R >= 0 elementwise.
  const Matrix a_c = a.Mid();
  Matrix radius = a.Span();
  radius *= 0.5;

  // Midpoint spectrum.
  const EigResult mid_eig = ComputeSymmetricEig(a_c, rank);
  const size_t r = mid_eig.eigenvalues.size();

  // Weyl perturbation bound: |λ_i(A) - λ_i(A_c)| <= ||E||_2 <= ||R||_F for
  // every symmetric E with |E| <= R elementwise.
  const double rho = radius.FrobeniusNorm();

  IntervalEigLpResult result;
  result.eigenvalues.resize(r);
  result.eigenvectors = IntervalMatrix(n, r);

  const double box = options.box_halfwidth;

  for (size_t j = 0; j < r; ++j) {
    const double lambda = mid_eig.eigenvalues[j];
    result.eigenvalues[j] = Interval(lambda - rho, lambda + rho);

    const std::vector<double> v_hat = mid_eig.eigenvectors.Col(j);

    // Residual bounds r_i = (R |v̂|)_i + ρ |v̂_i| + slack.
    std::vector<double> res(n);
    for (size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (size_t k = 0; k < n; ++k) s += radius(i, k) * std::abs(v_hat[k]);
      res[i] = s + rho * std::abs(v_hat[i]) + options.residual_slack;
    }

    // Anchor the component with the largest magnitude to remove the scale /
    // sign ambiguity of eigenvectors.
    size_t anchor = 0;
    for (size_t i = 1; i < n; ++i)
      if (std::abs(v_hat[i]) > std::abs(v_hat[anchor])) anchor = i;

    // Variables y_k = x_k + box >= 0 (so x ∈ [-box, box] via y <= 2*box).
    // Constraint rows:
    //   for each i:  -r_i <= Σ_k C(i,k) x_k <= r_i  with C = A_c - λ̂ I
    //   anchor:      x_anchor = v̂_anchor
    //   box:         y_k <= 2*box.
    const size_t rows = 2 * n + 1 + n;
    LpProblem lp;
    lp.a = Matrix(rows, n);
    lp.b.assign(rows, 0.0);
    lp.types.assign(rows, LpConstraintType::kLessEqual);
    lp.c.assign(n, 0.0);

    for (size_t i = 0; i < n; ++i) {
      double row_shift = 0.0;  // Σ_k C(i,k) * box (from the y substitution)
      for (size_t k = 0; k < n; ++k) {
        const double cik = a_c(i, k) - (i == k ? lambda : 0.0);
        lp.a(2 * i, k) = cik;
        lp.a(2 * i + 1, k) = cik;
        row_shift += cik * box;
      }
      lp.b[2 * i] = res[i] + row_shift;
      lp.types[2 * i] = LpConstraintType::kLessEqual;
      lp.b[2 * i + 1] = -res[i] + row_shift;
      lp.types[2 * i + 1] = LpConstraintType::kGreaterEqual;
    }
    const size_t anchor_row = 2 * n;
    lp.a(anchor_row, anchor) = 1.0;
    lp.b[anchor_row] = v_hat[anchor] + box;
    lp.types[anchor_row] = LpConstraintType::kEqual;
    for (size_t k = 0; k < n; ++k) {
      lp.a(anchor_row + 1 + k, k) = 1.0;
      lp.b[anchor_row + 1 + k] = 2.0 * box;
      lp.types[anchor_row + 1 + k] = LpConstraintType::kLessEqual;
    }

    // Two LP solves per component: maximize +x_k and -x_k.
    for (size_t k = 0; k < n; ++k) {
      double lo = -box, hi = box;  // fallback: the full box
      if (k == anchor) {
        lo = hi = v_hat[anchor];
      } else {
        lp.c.assign(n, 0.0);
        lp.c[k] = 1.0;
        const LpSolution up = SolveLp(lp);
        lp.c[k] = -1.0;
        const LpSolution down = SolveLp(lp);
        if (up.status == LpStatus::kOptimal &&
            down.status == LpStatus::kOptimal) {
          hi = up.x[k] - box;
          lo = down.x[k] - box;
        } else {
          ++result.lp_failures;
        }
      }
      result.eigenvectors.Set(k, j, Interval::FromUnordered(lo, hi));
    }
  }
  return result;
}

}  // namespace ivmf
