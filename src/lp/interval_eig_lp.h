// Linear-programming based interval eigendecomposition, in the style of the
// bounding approaches of Deif [33] and Seif–Hashem [35] that the paper's
// evaluation uses as the "LP class" of competitors.
//
// Given a symmetric interval matrix A† = [A_*, A^*]:
//  * eigenvalue intervals come from the midpoint spectrum +/- a symmetric
//    perturbation bound (Weyl's inequality with the radius matrix norm);
//  * eigenvector component intervals come from per-component LPs that
//    maximize / minimize x_k subject to the linearized residual constraints
//    |(A_c - λ̂ I) x| <= R|v̂| + ρ|v̂| around the midpoint eigenpair, an
//    anchoring (normalization) constraint, and box constraints.
//
// As the paper observes, these bounds are only informative when interval
// radii are very small; with sizable intervals the boxes blow up and the
// decomposition accuracy collapses — which is exactly the behaviour the
// benchmark harness demonstrates.

#ifndef IVMF_LP_INTERVAL_EIG_LP_H_
#define IVMF_LP_INTERVAL_EIG_LP_H_

#include <cstddef>
#include <vector>

#include "interval/interval.h"
#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf {

struct IntervalEigLpOptions {
  // Half-width of the variable box around the midpoint eigenvector
  // components (unit vectors have |x_k| <= 1; 2.0 leaves perturbation room).
  double box_halfwidth = 2.0;
  // Extra slack added to every residual bound for numerical safety.
  double residual_slack = 1e-9;
};

struct IntervalEigLpResult {
  // r interval eigenvalues, descending by midpoint.
  std::vector<Interval> eigenvalues;
  // n x r interval eigenvectors (column j pairs with eigenvalues[j]).
  IntervalMatrix eigenvectors;
  // Number of LP solves that failed (fell back to the box bound).
  size_t lp_failures = 0;
};

// Computes interval bounds for the top-`rank` eigenpairs of the symmetric
// interval matrix `a` (rank == 0 means all). `a` must be square.
IntervalEigLpResult ComputeIntervalEigLp(const IntervalMatrix& a, size_t rank,
                                         const IntervalEigLpOptions& options = {});

}  // namespace ivmf

#endif  // IVMF_LP_INTERVAL_EIG_LP_H_
