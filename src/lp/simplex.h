// A dense two-phase primal simplex solver.
//
// This is the LP substrate behind the linear-programming-based interval
// eigendecomposition competitor ([33] Deif, [35] Seif–Hashem) that the
// paper's evaluation compares against (the "LPa/LPb/LPc" rows of Figures 6,
// 7 and 9). The instances are small and dense, so a tableau simplex with a
// Bland anti-cycling fallback is exact and sufficient.

#ifndef IVMF_LP_SIMPLEX_H_
#define IVMF_LP_SIMPLEX_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace ivmf {

enum class LpConstraintType { kLessEqual, kGreaterEqual, kEqual };

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;       // value of c·x at the optimum
  std::vector<double> x;        // primal solution (original variables only)
};

// An LP in the form
//   maximize    c · x
//   subject to  a[i] · x  (<=, >=, =)  b[i]   for every row i
//               x >= 0.
// Free variables must be handled by the caller (e.g. by shifting).
struct LpProblem {
  Matrix a;                              // m x n constraint matrix
  std::vector<double> b;                 // m right-hand sides
  std::vector<LpConstraintType> types;   // m constraint senses
  std::vector<double> c;                 // n objective coefficients
};

struct SimplexOptions {
  double tolerance = 1e-9;
  // Hard cap on pivots per phase; generously above the expected basis count.
  size_t max_iterations = 20000;
};

// Solves the LP with the two-phase primal simplex method.
LpSolution SolveLp(const LpProblem& problem, const SimplexOptions& options = {});

}  // namespace ivmf

#endif  // IVMF_LP_SIMPLEX_H_
