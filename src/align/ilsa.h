// Interval-valued latent semantic alignment (ILSA, Section 3.3).
//
// Given the min-side and max-side factor matrices V_* and V^* obtained by
// decomposing M_* and M^* independently, ILSA finds the pairing of columns
// that maximizes the summed |cosine| similarity and the per-pair direction
// (sign) fix so that each aligned pair points the same way.
//
// Convention (matching Algorithms 8–11): the max-side columns stay in place;
// `mapping[j]` names the min-side column that pairs with max-side column j,
// and `flip[j]` says whether that min-side column must be multiplied by -1.
// Callers permute all min-side matrices (U_*, Σ_*, V_*) by `mapping`.

#ifndef IVMF_ALIGN_ILSA_H_
#define IVMF_ALIGN_ILSA_H_

#include <cstddef>
#include <vector>

#include "align/assignment.h"
#include "linalg/matrix.h"

namespace ivmf {

// Which solver pairs the min/max latent vectors.
enum class AlignMatcher {
  kHungarian,       // Problem 2: optimal linear assignment (default).
  kGreedy,          // supplementary Algorithm 6 (argmax + conflict fixing).
  kStableMarriage,  // Problem 1: Gale–Shapley stable matching.
};

struct IlsaOptions {
  AlignMatcher matcher = AlignMatcher::kHungarian;
  // When true (paper behaviour), pairs with negative cosine get the
  // min-side column flipped so both vectors point the same direction.
  bool fix_directions = true;
};

struct IlsaResult {
  // mapping[j] = min-side column index paired with max-side column j.
  std::vector<size_t> mapping;
  // flip[j] = true when the paired min-side column must be negated.
  std::vector<bool> flip;
  // |cos| similarity of each aligned pair, in max-side column order.
  std::vector<double> pair_similarity;
  // Sum of pair_similarity (the Problem-2 objective value).
  double total_similarity = 0.0;
};

// Pairwise |cosine| similarities: entry (i, j) = |cos(v_min[:,i], v_max[:,j])|.
Matrix PairwiseAbsCosine(const Matrix& v_min, const Matrix& v_max);

// Runs ILSA on two equally-shaped factor matrices (columns are the latent
// vectors). Requires v_min and v_max to have the same shape.
IlsaResult ComputeIlsa(const Matrix& v_min, const Matrix& v_max,
                       const IlsaOptions& options = {});

// Applies an ILSA result to a min-side matrix whose *columns* are latent
// vectors: returns m with columns permuted by `mapping` and flipped where
// `flip` is set. (Used for U_* and V_*.)
Matrix ApplyIlsaToColumns(const Matrix& m, const IlsaResult& ilsa);

// Applies an ILSA result to the min-side singular values: returns
// sigma[mapping[j]] for each j (no sign change; singular values stay >= 0).
std::vector<double> ApplyIlsaToDiagonal(const std::vector<double>& sigma,
                                        const IlsaResult& ilsa);

// Per-pair cosine similarity cos(v_min[:,j], v_max[:,j]) of equally indexed
// columns — the quantity plotted in Figures 3 and 5.
std::vector<double> ColumnwiseCosine(const Matrix& v_min, const Matrix& v_max);

}  // namespace ivmf

#endif  // IVMF_ALIGN_ILSA_H_
