#include "align/assignment.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

namespace ivmf {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::vector<size_t> SolveAssignmentMin(const Matrix& cost) {
  IVMF_CHECK_MSG(cost.rows() == cost.cols(),
                 "assignment needs a square cost matrix");
  const size_t n = cost.rows();
  if (n == 0) return {};

  // Potential-based Hungarian algorithm (1-indexed sentinels at index 0).
  // After termination, way/p encode the optimal matching: p[j] = row
  // assigned to column j.
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0), way(n + 1, 0);

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      const size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path.
    do {
      const size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<size_t> match(n);
  for (size_t j = 1; j <= n; ++j) match[j - 1] = p[j] - 1;
  return match;
}

std::vector<size_t> SolveAssignmentMax(const Matrix& weight) {
  // Negate and solve the min-cost problem.
  Matrix cost(weight.rows(), weight.cols());
  for (size_t i = 0; i < weight.rows(); ++i)
    for (size_t j = 0; j < weight.cols(); ++j) cost(i, j) = -weight(i, j);
  return SolveAssignmentMin(cost);
}

std::vector<size_t> SolveAssignmentGreedy(const Matrix& weight) {
  IVMF_CHECK(weight.rows() == weight.cols());
  const size_t n = weight.rows();
  constexpr size_t kUnset = static_cast<size_t>(-1);

  // Step 1: every column claims its best row.
  std::vector<size_t> match(n, kUnset);
  for (size_t j = 0; j < n; ++j) {
    size_t best = 0;
    for (size_t i = 1; i < n; ++i)
      if (weight(i, j) > weight(best, j)) best = i;
    match[j] = best;
  }

  // Step 2: rows claimed multiple times keep their best column; losing
  // columns are released.
  std::vector<size_t> owner(n, kUnset);  // owner[row] = winning column
  for (size_t j = 0; j < n; ++j) {
    const size_t row = match[j];
    if (owner[row] == kUnset || weight(row, j) > weight(row, owner[row])) {
      owner[row] = j;
    }
  }
  std::vector<size_t> losers;
  for (size_t j = 0; j < n; ++j) {
    if (owner[match[j]] != j) {
      match[j] = kUnset;
      losers.push_back(j);
    }
  }

  // Step 3: losers take the best still-unclaimed row, in descending order of
  // their best achievable weight (a deterministic tie-break on index).
  std::vector<char> row_taken(n, 0);
  for (size_t j = 0; j < n; ++j)
    if (match[j] != kUnset) row_taken[match[j]] = 1;
  // Repeatedly give the next loser its best spare row. Rows freed never
  // reappear, so a single pass per loser suffices.
  for (size_t j : losers) {
    size_t best = kUnset;
    for (size_t i = 0; i < n; ++i) {
      if (row_taken[i]) continue;
      if (best == kUnset || weight(i, j) > weight(best, j)) best = i;
    }
    IVMF_CHECK(best != kUnset);
    match[j] = best;
    row_taken[best] = 1;
  }
  return match;
}

std::vector<size_t> SolveStableMarriage(const Matrix& weight) {
  IVMF_CHECK(weight.rows() == weight.cols());
  const size_t n = weight.rows();
  constexpr size_t kUnset = static_cast<size_t>(-1);
  if (n == 0) return {};

  // Rows propose to columns in descending weight order.
  std::vector<std::vector<size_t>> prefs(n);
  for (size_t i = 0; i < n; ++i) {
    prefs[i].resize(n);
    std::iota(prefs[i].begin(), prefs[i].end(), 0);
    std::stable_sort(prefs[i].begin(), prefs[i].end(), [&](size_t a, size_t b) {
      return weight(i, a) > weight(i, b);
    });
  }

  std::vector<size_t> next_proposal(n, 0);   // per row
  std::vector<size_t> engaged_row(n, kUnset);  // per column
  std::queue<size_t> free_rows;
  for (size_t i = 0; i < n; ++i) free_rows.push(i);

  while (!free_rows.empty()) {
    const size_t i = free_rows.front();
    free_rows.pop();
    IVMF_CHECK(next_proposal[i] < n);
    const size_t j = prefs[i][next_proposal[i]++];
    const size_t current = engaged_row[j];
    if (current == kUnset) {
      engaged_row[j] = i;
    } else if (weight(i, j) > weight(current, j)) {
      engaged_row[j] = i;
      free_rows.push(current);
    } else {
      free_rows.push(i);
    }
  }
  return engaged_row;
}

double AssignmentWeight(const Matrix& weight,
                        const std::vector<size_t>& match) {
  double total = 0.0;
  for (size_t j = 0; j < match.size(); ++j) total += weight(match[j], j);
  return total;
}

}  // namespace ivmf
