// Solvers for the matching problems behind interval latent-semantic
// alignment (Section 3.3):
//   * Problem 2 (optimal min-max vector alignment) is a linear assignment
//     problem — solved exactly by the Hungarian algorithm in O(r^3);
//   * Problem 1 (stable min-max vector alignment) is a stable-marriage
//     instance — solved by Gale–Shapley in O(r^2);
//   * the supplementary material's Algorithm 6 uses a greedy argmax matcher
//     with conflict resolution, reproduced here as well.

#ifndef IVMF_ALIGN_ASSIGNMENT_H_
#define IVMF_ALIGN_ASSIGNMENT_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace ivmf {

// Solves the max-weight perfect assignment on a square weight matrix:
// returns `match` with match[col] = row such that sum_j weight(match[j], j)
// is maximal. Hungarian (Kuhn–Munkres) algorithm, O(n^3).
std::vector<size_t> SolveAssignmentMax(const Matrix& weight);

// Min-cost variant: minimizes sum_j cost(match[j], j).
std::vector<size_t> SolveAssignmentMin(const Matrix& cost);

// The greedy matcher of supplementary Algorithm 6 (procedure MAPPING): each
// column j first claims its argmax row; rows claimed by several columns keep
// their best column and the losers are reassigned to the best unclaimed
// rows. Deterministic; not necessarily optimal.
std::vector<size_t> SolveAssignmentGreedy(const Matrix& weight);

// Gale–Shapley stable matching where both sides rank partners by `weight`
// (rows propose). Returns match[col] = row. The result is stable: no
// (row, col) pair prefers each other to their assigned partners.
std::vector<size_t> SolveStableMarriage(const Matrix& weight);

// Total weight of an assignment (match[col] = row).
double AssignmentWeight(const Matrix& weight, const std::vector<size_t>& match);

}  // namespace ivmf

#endif  // IVMF_ALIGN_ASSIGNMENT_H_
