#include "align/ilsa.h"

#include <cmath>

namespace ivmf {

Matrix PairwiseAbsCosine(const Matrix& v_min, const Matrix& v_max) {
  IVMF_CHECK(v_min.rows() == v_max.rows() && v_min.cols() == v_max.cols());
  const size_t r = v_min.cols();
  const size_t n = v_min.rows();

  // Precompute column norms once.
  std::vector<double> norm_min(r, 0.0), norm_max(r, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < r; ++j) {
      norm_min[j] += v_min(i, j) * v_min(i, j);
      norm_max[j] += v_max(i, j) * v_max(i, j);
    }
  }
  for (size_t j = 0; j < r; ++j) {
    norm_min[j] = std::sqrt(norm_min[j]);
    norm_max[j] = std::sqrt(norm_max[j]);
  }

  Matrix sim(r, r);
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < r; ++j) {
      double dot = 0.0;
      for (size_t k = 0; k < n; ++k) dot += v_min(k, i) * v_max(k, j);
      const double denom = norm_min[i] * norm_max[j];
      sim(i, j) = denom > 0.0 ? std::abs(dot) / denom : 0.0;
    }
  }
  return sim;
}

IlsaResult ComputeIlsa(const Matrix& v_min, const Matrix& v_max,
                       const IlsaOptions& options) {
  IVMF_CHECK(v_min.rows() == v_max.rows() && v_min.cols() == v_max.cols());
  const size_t r = v_min.cols();
  const Matrix sim = PairwiseAbsCosine(v_min, v_max);

  IlsaResult result;
  switch (options.matcher) {
    case AlignMatcher::kHungarian:
      result.mapping = SolveAssignmentMax(sim);
      break;
    case AlignMatcher::kGreedy:
      result.mapping = SolveAssignmentGreedy(sim);
      break;
    case AlignMatcher::kStableMarriage:
      result.mapping = SolveStableMarriage(sim);
      break;
  }

  result.flip.assign(r, false);
  result.pair_similarity.resize(r);
  result.total_similarity = 0.0;
  for (size_t j = 0; j < r; ++j) {
    const size_t i = result.mapping[j];
    result.pair_similarity[j] = sim(i, j);
    result.total_similarity += sim(i, j);
    if (options.fix_directions) {
      // Signed cosine decides the direction fix.
      double dot = 0.0;
      for (size_t k = 0; k < v_min.rows(); ++k)
        dot += v_min(k, i) * v_max(k, j);
      result.flip[j] = dot < 0.0;
    }
  }
  return result;
}

Matrix ApplyIlsaToColumns(const Matrix& m, const IlsaResult& ilsa) {
  IVMF_CHECK(m.cols() == ilsa.mapping.size());
  Matrix result(m.rows(), m.cols());
  for (size_t j = 0; j < m.cols(); ++j) {
    const size_t src = ilsa.mapping[j];
    const double sign = ilsa.flip[j] ? -1.0 : 1.0;
    for (size_t i = 0; i < m.rows(); ++i) result(i, j) = sign * m(i, src);
  }
  return result;
}

std::vector<double> ApplyIlsaToDiagonal(const std::vector<double>& sigma,
                                        const IlsaResult& ilsa) {
  IVMF_CHECK(sigma.size() == ilsa.mapping.size());
  std::vector<double> result(sigma.size());
  for (size_t j = 0; j < sigma.size(); ++j) result[j] = sigma[ilsa.mapping[j]];
  return result;
}

std::vector<double> ColumnwiseCosine(const Matrix& v_min, const Matrix& v_max) {
  IVMF_CHECK(v_min.rows() == v_max.rows() && v_min.cols() == v_max.cols());
  std::vector<double> cosines(v_min.cols());
  for (size_t j = 0; j < v_min.cols(); ++j) {
    cosines[j] = CosineSimilarity(v_min.Col(j), v_max.Col(j));
  }
  return cosines;
}

}  // namespace ivmf
