// Matrix-free operators over sparse interval matrices.
//
// ISVD2–ISVD4 eigendecompose the endpoint matrices of the interval Gram
// A† = M†ᵀ M†, built per the paper's Algorithm 1 as the elementwise min/max
// of the four products M_αᵀ M_β (α, β ∈ {*, ^*}). Two regimes:
//
//  - Entrywise non-negative M† (all the paper's recommender constructions):
//    the four products are monotone in the entries, so the min/max collapse
//    to M_*ᵀ M_* and M^*ᵀ M^*. Each is a fixed bilinear form, and
//    SparseGramOperator applies y = M_eᵀ (M_e x) in O(nnz) per Lanczos step
//    through two CSR passes — the Gram matrix is never materialized.
//
//  - Signed M†: the minimizing product varies per Gram entry (it depends on
//    full column inner products), so the Algorithm-1 endpoints are
//    elementwise min/max of four bilinear forms — not themselves bilinear,
//    and therefore not applicable as a fixed matrix-free operator.
//    DenseGramEndpoints instead accumulates the four products directly from
//    the sparse rows (two extra products beyond the non-negative case,
//    O(sum of row_nnz²) work, min(n, m)² memory) and takes the elementwise
//    min/max — exactly the matrices the dense IntervalMatMul route builds,
//    without ever densifying M† itself.
//
// ISVD0/ISVD1 need no Gram at all: SparseEndpointMap exposes an endpoint
// (or the midpoint) matrix as a rectangular LinearMap for the Golub–Kahan–
// Lanczos SVD, again O(nnz) per step.

#ifndef IVMF_SPARSE_SPARSE_GRAM_OPERATOR_H_
#define IVMF_SPARSE_SPARSE_GRAM_OPERATOR_H_

#include <vector>

#include "interval/interval_matrix.h"
#include "linalg/linear_operator.h"
#include "sparse/sparse_interval_matrix.h"

namespace ivmf {

// The symmetric operator x -> M_eᵀ (M_e x) of dimension m.cols().
// Valid as an Algorithm-1 Gram endpoint only for entrywise non-negative
// matrices (see the file comment); callers with signed data use
// DenseGramEndpoints.
//
// Holds `m` and `mt` (the precomputed m.Transpose()) by reference; both must
// outlive the operator. Two operators (one per endpoint) can share the same
// pair and be applied concurrently — Apply only touches per-instance
// scratch.
class SparseGramOperator final : public LinearOperator {
 public:
  SparseGramOperator(const SparseIntervalMatrix& m,
                     const SparseIntervalMatrix& mt,
                     SparseIntervalMatrix::Endpoint endpoint)
      : m_(m), mt_(mt), endpoint_(endpoint) {
    IVMF_CHECK_MSG(mt.rows() == m.cols() && mt.cols() == m.rows(),
                   "mt must be the transpose of m");
  }

  size_t Dim() const override { return m_.cols(); }

  void Apply(const std::vector<double>& x,
             std::vector<double>& y) const override {
    // On the AVX2 backend the one-pass fused Gram kernel halves memory
    // traffic (the row feeds its dot and its scatter back-to-back while
    // cache-hot). Other backends keep the literal two-pass composition —
    // the scalar path stays the reference semantics the differential tests
    // pin the fused kernels against.
    if (spk::Resolve(m_.ResolvedKernel()) == spk::Backend::kAvx2) {
      m_.GramMultiply(endpoint_, x, y);
      return;
    }
    m_.Multiply(endpoint_, x, scratch_);     // scratch = M_e x   (n)
    mt_.Multiply(endpoint_, scratch_, y);    // y = M_eᵀ scratch  (m)
  }

  // Both endpoint Gram actions on one vector, fused over the shared
  // pattern: y_lo = M_*ᵀ(M_* x) and y_hi = M^*ᵀ(M^* x) in two pattern
  // passes instead of four (MultiplyBoth shares the forward gather,
  // MultiplyPair shares the transposed pattern walk). This is the building
  // block for refresh paths that track both endpoint spectra of the same
  // probe — algebraically identical to Apply with each endpoint operator.
  // x, y_lo, y_hi must be three distinct vectors (see the kernel aliasing
  // contract in sparse_kernels.h).
  void ApplyBoth(const std::vector<double>& x, std::vector<double>& y_lo,
                 std::vector<double>& y_hi) const {
    // Same fused-on-AVX2 policy as Apply: one pattern pass instead of two.
    if (spk::Resolve(m_.ResolvedKernel()) == spk::Backend::kAvx2) {
      m_.GramMultiplyBoth(x, y_lo, y_hi);
      return;
    }
    m_.MultiplyBoth(x, scratch_, scratch_hi_);
    mt_.MultiplyPair(scratch_, scratch_hi_, y_lo, y_hi);
  }

  // The dense endpoint Gram matrix M_eᵀ M_e, accumulated row-by-row from the
  // sparse pattern in O(sum of row_nnz²) — the bridge to the exact Jacobi
  // solver for small Gram dimensions (non-negative matrices only; for signed
  // data the per-endpoint product is not an Algorithm-1 endpoint).
  static Matrix DenseGram(const SparseIntervalMatrix& m,
                          SparseIntervalMatrix::Endpoint endpoint);

  // The Algorithm-1 interval Gram endpoints of an arbitrary-signed matrix:
  // lower/upper are the elementwise min/max over the four products
  // M_αᵀ M_β, accumulated from the sparse rows without densifying M†. For
  // non-negative input this coincides with {DenseGram(lower),
  // DenseGram(upper)} and with the dense IntervalMatMul(M†ᵀ, M†) route.
  static IntervalMatrix DenseGramEndpoints(const SparseIntervalMatrix& m);

 private:
  const SparseIntervalMatrix& m_;
  const SparseIntervalMatrix& mt_;
  SparseIntervalMatrix::Endpoint endpoint_;
  mutable std::vector<double> scratch_;
  mutable std::vector<double> scratch_hi_;  // upper chain of ApplyBoth
};

// An endpoint (or the midpoint) matrix of a sparse interval matrix as a
// rectangular LinearMap — the input to the Golub–Kahan–Lanczos SVD behind
// the sparse ISVD0/ISVD1. Holds `m` and `mt` (the precomputed
// m.Transpose()) by reference; both must outlive the map. No sign
// assumption: endpoint matrices are consumed directly, so signed data works
// unchanged.
class SparseEndpointMap final : public LinearMap {
 public:
  enum class Part { kLower, kUpper, kMid };

  SparseEndpointMap(const SparseIntervalMatrix& m,
                    const SparseIntervalMatrix& mt, Part part)
      : m_(m), mt_(mt), part_(part) {
    IVMF_CHECK_MSG(mt.rows() == m.cols() && mt.cols() == m.rows(),
                   "mt must be the transpose of m");
  }

  size_t Rows() const override { return m_.rows(); }
  size_t Cols() const override { return m_.cols(); }

  void Apply(const std::vector<double>& x,
             std::vector<double>& y) const override {
    Multiply(m_, x, y);
  }

  void ApplyTranspose(const std::vector<double>& x,
                      std::vector<double>& y) const override {
    Multiply(mt_, x, y);
  }

 private:
  void Multiply(const SparseIntervalMatrix& m, const std::vector<double>& x,
                std::vector<double>& y) const {
    switch (part_) {
      case Part::kLower:
        m.Multiply(SparseIntervalMatrix::Endpoint::kLower, x, y);
        break;
      case Part::kUpper:
        m.Multiply(SparseIntervalMatrix::Endpoint::kUpper, x, y);
        break;
      case Part::kMid:
        m.MultiplyMid(x, y);
        break;
    }
  }

  const SparseIntervalMatrix& m_;
  const SparseIntervalMatrix& mt_;
  Part part_;
};

}  // namespace ivmf

#endif  // IVMF_SPARSE_SPARSE_GRAM_OPERATOR_H_
