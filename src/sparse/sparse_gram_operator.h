// Matrix-free Gram operators over sparse interval matrices.
//
// ISVD2–ISVD4 eigendecompose the endpoint matrices of the interval Gram
// A† = M†ᵀ M†. For entrywise non-negative M† those endpoints are exactly
// M_*ᵀ M_* and M^*ᵀ M^* (Algorithm 1's four endpoint products collapse),
// so the Lanczos solver never needs the m x m Gram matrix: each step
// applies y = M_eᵀ (M_e x) in O(nnz) through two CSR passes. The transpose
// is materialized once (it shares the sparsity pattern between endpoints)
// so both passes stream rows in order.

#ifndef IVMF_SPARSE_SPARSE_GRAM_OPERATOR_H_
#define IVMF_SPARSE_SPARSE_GRAM_OPERATOR_H_

#include <vector>

#include "linalg/linear_operator.h"
#include "sparse/sparse_interval_matrix.h"

namespace ivmf {

// The symmetric operator x -> M_eᵀ (M_e x) of dimension m.cols().
//
// Holds `m` and `mt` (the precomputed m.Transpose()) by reference; both must
// outlive the operator. Two operators (one per endpoint) can share the same
// pair and be applied concurrently — Apply only touches per-instance
// scratch.
class SparseGramOperator final : public LinearOperator {
 public:
  SparseGramOperator(const SparseIntervalMatrix& m,
                     const SparseIntervalMatrix& mt,
                     SparseIntervalMatrix::Endpoint endpoint)
      : m_(m), mt_(mt), endpoint_(endpoint) {
    IVMF_CHECK_MSG(mt.rows() == m.cols() && mt.cols() == m.rows(),
                   "mt must be the transpose of m");
  }

  size_t Dim() const override { return m_.cols(); }

  void Apply(const std::vector<double>& x,
             std::vector<double>& y) const override {
    m_.Multiply(endpoint_, x, scratch_);     // scratch = M_e x   (n)
    mt_.Multiply(endpoint_, scratch_, y);    // y = M_eᵀ scratch  (m)
  }

  // The dense endpoint Gram matrix M_eᵀ M_e, accumulated row-by-row from the
  // sparse pattern in O(sum of row_nnz²) — the bridge to the exact Jacobi
  // solver for small Gram dimensions.
  static Matrix DenseGram(const SparseIntervalMatrix& m,
                          SparseIntervalMatrix::Endpoint endpoint);

 private:
  const SparseIntervalMatrix& m_;
  const SparseIntervalMatrix& mt_;
  SparseIntervalMatrix::Endpoint endpoint_;
  mutable std::vector<double> scratch_;
};

}  // namespace ivmf

#endif  // IVMF_SPARSE_SPARSE_GRAM_OPERATOR_H_
