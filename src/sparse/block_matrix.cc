#include "sparse/block_matrix.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <utility>

#include "base/check.h"
#include "base/parallel.h"
#include "obs/metrics.h"

namespace ivmf {

namespace {

// Per-kernel counters for the sharded dispatch, tagged like the monolithic
// sparse.matvec family but with the shard-task count alongside rows/nnz —
// the per-shard matvec accounting the observability layer scrapes.
struct ShardedKernelCounters {
  obs::Counter& calls;
  obs::Counter& shards;
  obs::Counter& rows;
  obs::Counter& nnz;

  explicit ShardedKernelCounters(const char* kernel)
      : calls(obs::MetricsRegistry::Global().GetCounter(
            "sparse.sharded.matvec.calls", {{"kernel", kernel}})),
        shards(obs::MetricsRegistry::Global().GetCounter(
            "sparse.sharded.matvec.shards", {{"kernel", kernel}})),
        rows(obs::MetricsRegistry::Global().GetCounter(
            "sparse.sharded.matvec.rows", {{"kernel", kernel}})),
        nnz(obs::MetricsRegistry::Global().GetCounter(
            "sparse.sharded.matvec.nnz", {{"kernel", kernel}})) {}

  void Count(size_t num_shards, size_t rows_processed, size_t nnz_processed) {
    calls.Add(1);
    shards.Add(num_shards);
    rows.Add(rows_processed);
    nnz.Add(nnz_processed);
  }
};

// Column of packed entry k, whichever index width the view carries.
inline size_t ColAt(const spk::PackedCsrView& view, size_t k) {
  return view.col16 != nullptr ? static_cast<size_t>(view.col16[k])
                               : static_cast<size_t>(view.col32[k]);
}

void EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    IVMF_CHECK_MSG(false, "cannot create the shard store directory");
  }
}

}  // namespace

ShardedSparseIntervalMatrix::~ShardedSparseIntervalMatrix() {
  if (owns_store_ && !store_dir_.empty()) {
    shards_.clear();  // unmap before unlinking
    RemoveStoreDir(store_dir_);
  }
}

ShardedSparseIntervalMatrix::ShardedSparseIntervalMatrix(
    ShardedSparseIntervalMatrix&& other) noexcept {
  *this = std::move(other);
}

ShardedSparseIntervalMatrix& ShardedSparseIntervalMatrix::operator=(
    ShardedSparseIntervalMatrix&& other) noexcept {
  if (this == &other) return *this;
  if (owns_store_ && !store_dir_.empty()) {
    shards_.clear();
    RemoveStoreDir(store_dir_);
  }
  rows_ = other.rows_;
  cols_ = other.cols_;
  nnz_ = other.nnz_;
  shard_rows_ = other.shard_rows_;
  shards_ = std::move(other.shards_);
  base_ = std::move(other.base_);
  resolved_ = other.resolved_;
  csr_variant_ = other.csr_variant_;
  mmap_backed_ = other.mmap_backed_;
  store_dir_ = std::move(other.store_dir_);
  owns_store_ = other.owns_store_;
  drop_residency_ = other.drop_residency_;
  other.rows_ = other.cols_ = other.nnz_ = other.shard_rows_ = 0;
  other.shards_.clear();
  other.mmap_backed_ = false;
  other.store_dir_.clear();
  other.owns_store_ = false;
  other.drop_residency_ = false;
  return *this;
}

ShardedSparseIntervalMatrix::SegRef ShardedSparseIntervalMatrix::Seg(
    size_t s) const {
  const Shard& sh = shards_[s];
  SegRef seg;
  if (base_ != nullptr) {
    seg.view = base_->PackedView();
    seg.lo = base_->lo_.data();
    seg.hi = base_->hi_.data();
    seg.row_begin = sh.row_begin;
    seg.row_end = sh.row_begin + sh.rows;
    seg.offset = 0;
  } else if (sh.mapped.valid()) {
    seg.view = {sh.rows, cols_, sh.mapped.row_ptr(), nullptr, sh.mapped.col()};
    seg.lo = sh.mapped.lo();
    seg.hi = sh.mapped.hi();
    seg.row_begin = 0;
    seg.row_end = sh.rows;
    seg.offset = sh.row_begin;
    seg.mapped = &sh.mapped;
  } else {
    seg.view = {sh.rows, cols_, sh.row_ptr.data(), nullptr, sh.col.data()};
    seg.lo = sh.lo.data();
    seg.hi = sh.hi.data();
    seg.row_begin = 0;
    seg.row_end = sh.rows;
    seg.offset = sh.row_begin;
    seg.sell = sh.sell.get();
  }
  return seg;
}

void ShardedSparseIntervalMatrix::MaybeDropResidency(const SegRef& seg) const {
  if (drop_residency_ && seg.mapped != nullptr) seg.mapped->DropResidency();
}

void ShardedSparseIntervalMatrix::ResolveBackend(spk::Backend request) {
  if (request == spk::Backend::kAuto) {
    const spk::Backend env = spk::EnvBackend();
    if (env != spk::Backend::kAuto) {
      request = env;
    } else if (rows_ > 0 && nnz_ > 0) {
      // The same row-length statistics pass as the monolithic
      // ResolvedKernel, run over the shard-local offset arrays.
      const double mean =
          static_cast<double>(nnz_) / static_cast<double>(rows_);
      double var = 0.0;
      for (const Shard& sh : shards_) {
        const size_t* rp;
        size_t begin = 0;
        if (base_ != nullptr) {
          rp = base_->row_ptr_.data();
          begin = sh.row_begin;
        } else if (sh.mapped.valid()) {
          rp = sh.mapped.row_ptr();
        } else {
          rp = sh.row_ptr.data();
        }
        for (size_t r = 0; r < sh.rows; ++r) {
          const double d =
              static_cast<double>(rp[begin + r + 1] - rp[begin + r]) - mean;
          var += d * d;
        }
      }
      const double cv =
          mean > 0.0 ? std::sqrt(var / static_cast<double>(rows_)) / mean
                     : 0.0;
      request = spk::ChooseAutoBackend(mean, cv, spk::Avx2Supported());
    }
  }
  resolved_ = spk::Resolve(request);
  csr_variant_ = spk::CsrVariant(resolved_);
}

void ShardedSparseIntervalMatrix::BuildSellSidecars() {
  if (resolved_ != spk::Backend::kSell) return;
  // SELL packs are built for memory-owned shards only: a mapped segment's
  // arrays live in the page cache (packing would defeat the budget), and a
  // view shard would duplicate the base's own sidecar machinery.
  for (Shard& sh : shards_) {
    if (base_ != nullptr || sh.mapped.valid() || sh.rows == 0) continue;
    std::vector<size_t> col(sh.col.begin(), sh.col.end());
    sh.sell = std::make_shared<const SellPack>(sh.rows, cols_, sh.row_ptr,
                                               col, sh.lo, sh.hi);
  }
}

ShardedSparseIntervalMatrix ShardedSparseIntervalMatrix::FromCsr(
    const SparseIntervalMatrix& m, size_t shard_rows, BackingPolicy policy) {
  IVMF_CHECK_MSG(shard_rows > 0, "shard_rows must be positive");
  IVMF_CHECK_MSG(m.cols() <= size_t{0xffffffff},
                 "packed shard indices require cols <= 2^32");
  ShardedSparseIntervalMatrix out;
  out.rows_ = m.rows();
  out.cols_ = m.cols();
  out.nnz_ = m.nnz();
  out.shard_rows_ = shard_rows;
  const size_t num_shards =
      out.rows_ == 0 ? 0 : (out.rows_ + shard_rows - 1) / shard_rows;

  const std::vector<size_t>& row_ptr = m.row_ptr();
  const std::vector<size_t>& col_idx = m.col_idx();

  bool mmap = policy.kind == BackingPolicy::Kind::kMmap;
  if (policy.kind == BackingPolicy::Kind::kAuto && policy.budget_bytes > 0) {
    size_t estimate = 0;
    for (size_t k = 0; k < num_shards; ++k) {
      const size_t rb = k * shard_rows;
      const size_t re = std::min(out.rows_, rb + shard_rows);
      estimate += ShardFileBytes(re - rb, row_ptr[re] - row_ptr[rb]);
    }
    mmap = estimate > policy.budget_bytes;
  }
  if (mmap) {
    out.mmap_backed_ = true;
    out.owns_store_ = policy.store_dir.empty();
    out.drop_residency_ = policy.budget_bytes > 0;
    if (out.owns_store_) {
      std::string error;
      out.store_dir_ = CreateTempStoreDir(&error);
      IVMF_CHECK_MSG(!out.store_dir_.empty(),
                     "cannot create a temporary shard store");
    } else {
      out.store_dir_ = policy.store_dir;
      EnsureDir(out.store_dir_);
    }
  }

  out.shards_.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    const size_t rb = k * shard_rows;
    const size_t re = std::min(out.rows_, rb + shard_rows);
    const size_t base = row_ptr[rb];
    const size_t snnz = row_ptr[re] - base;

    std::vector<size_t> local_ptr(re - rb + 1);
    for (size_t r = 0; r <= re - rb; ++r) local_ptr[r] = row_ptr[rb + r] - base;
    std::vector<uint32_t> col(snnz);
    for (size_t i = 0; i < snnz; ++i) {
      col[i] = static_cast<uint32_t>(col_idx[base + i]);
    }
    std::vector<double> lo(m.lower_values().begin() + base,
                           m.lower_values().begin() + base + snnz);
    std::vector<double> hi(m.upper_values().begin() + base,
                           m.upper_values().begin() + base + snnz);

    Shard sh;
    sh.row_begin = rb;
    sh.rows = re - rb;
    sh.nnz = snnz;
    if (mmap) {
      const std::string path = out.store_dir_ + "/" + ShardFileName(k);
      std::string error;
      IVMF_CHECK_MSG(WriteShardFile(path, sh.rows, out.cols_, local_ptr.data(),
                                    col.data(), lo.data(), hi.data(), &error),
                     "shard segment write failed");
      IVMF_CHECK_MSG(MapShardFile(path, &sh.mapped, &error),
                     "shard segment map failed");
      sh.mapped.AdviseSequential();
      // Map-time validation faulted the segment in; budgets want it gone.
      if (out.drop_residency_) sh.mapped.DropResidency();
    } else {
      sh.row_ptr = std::move(local_ptr);
      sh.col = std::move(col);
      sh.lo = std::move(lo);
      sh.hi = std::move(hi);
    }
    out.shards_.push_back(std::move(sh));
  }

  out.ResolveBackend(m.kernel());
  out.BuildSellSidecars();
  return out;
}

ShardedSparseIntervalMatrix ShardedSparseIntervalMatrix::FromTriplets(
    size_t rows, size_t cols, std::vector<IntervalTriplet> triplets,
    size_t shard_rows, BackingPolicy policy, DuplicatePolicy duplicates) {
  return FromCsr(SparseIntervalMatrix::FromTriplets(rows, cols,
                                                    std::move(triplets),
                                                    duplicates),
                 shard_rows, policy);
}

ShardedSparseIntervalMatrix ShardedSparseIntervalMatrix::View(
    std::shared_ptr<const SparseIntervalMatrix> base, size_t shard_rows) {
  IVMF_CHECK(base != nullptr);
  IVMF_CHECK_MSG(shard_rows > 0, "shard_rows must be positive");
  ShardedSparseIntervalMatrix out;
  out.rows_ = base->rows();
  out.cols_ = base->cols();
  out.nnz_ = base->nnz();
  out.shard_rows_ = shard_rows;
  const size_t num_shards =
      out.rows_ == 0 ? 0 : (out.rows_ + shard_rows - 1) / shard_rows;
  out.shards_.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    const size_t rb = k * shard_rows;
    const size_t re = std::min(out.rows_, rb + shard_rows);
    Shard sh;
    sh.row_begin = rb;
    sh.rows = re - rb;
    sh.nnz = base->row_ptr()[re] - base->row_ptr()[rb];
    out.shards_.push_back(std::move(sh));
  }
  const spk::Backend request = base->ResolvedKernel();
  out.base_ = std::move(base);
  out.ResolveBackend(request);
  return out;
}

bool ShardedSparseIntervalMatrix::OpenStore(const std::string& dir,
                                            ShardedSparseIntervalMatrix* out,
                                            std::string* error) {
  IVMF_CHECK(out != nullptr && error != nullptr);
  ShardedSparseIntervalMatrix m;
  m.store_dir_ = dir;
  m.mmap_backed_ = true;
  size_t row_begin = 0;
  for (size_t k = 0;; ++k) {
    const std::string path = dir + "/" + ShardFileName(k);
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) break;  // first gap ends the store
    MappedSegment seg;
    if (!MapShardFile(path, &seg, error)) return false;
    if (k == 0) {
      m.cols_ = seg.cols();
      if (m.cols_ > size_t{0xffffffff}) {
        *error = path + ": column count exceeds the packed-index range";
        return false;
      }
    } else if (seg.cols() != m.cols_) {
      *error = path + ": shard column count differs from shard 0";
      return false;
    }
    seg.AdviseSequential();
    Shard sh;
    sh.row_begin = row_begin;
    sh.rows = seg.rows();
    sh.nnz = seg.nnz();
    row_begin += seg.rows();
    m.nnz_ += seg.nnz();
    sh.mapped = std::move(seg);
    m.shards_.push_back(std::move(sh));
  }
  if (m.shards_.empty()) {
    *error = dir + ": no " + ShardFileName(0) + " (not a shard store)";
    return false;
  }
  const size_t sr = m.shards_.front().rows;
  for (size_t k = 0; k + 1 < m.shards_.size(); ++k) {
    if (m.shards_[k].rows != sr) {
      *error = dir + ": interior shards must share one row count";
      return false;
    }
  }
  if (m.shards_.size() > 1 && (sr == 0 || m.shards_.back().rows > sr)) {
    *error = dir + ": trailing shard larger than the shard row count";
    return false;
  }
  m.rows_ = row_begin;
  m.shard_rows_ = sr > 0 ? sr : 1;
  m.ResolveBackend(spk::Backend::kAuto);
  *out = std::move(m);
  return true;
}

// -- Builder -----------------------------------------------------------------

ShardedSparseIntervalMatrix::Builder::Builder(size_t rows, size_t cols,
                                              size_t shard_rows,
                                              BackingPolicy policy) {
  IVMF_CHECK_MSG(shard_rows > 0, "shard_rows must be positive");
  IVMF_CHECK_MSG(cols <= size_t{0xffffffff},
                 "packed shard indices require cols <= 2^32");
  m_.rows_ = rows;
  m_.cols_ = cols;
  m_.shard_rows_ = shard_rows;
  // kAuto resolves pessimistically to mmap: a streaming builder cannot know
  // the final store size up front, and the caller asking for a budget is
  // asking not to hold the matrix in memory.
  mmap_ = policy.kind != BackingPolicy::Kind::kMemory;
  if (mmap_) {
    m_.mmap_backed_ = true;
    m_.owns_store_ = policy.store_dir.empty();
    m_.drop_residency_ = policy.budget_bytes > 0;
    if (m_.owns_store_) {
      std::string error;
      m_.store_dir_ = CreateTempStoreDir(&error);
      IVMF_CHECK_MSG(!m_.store_dir_.empty(),
                     "cannot create a temporary shard store");
    } else {
      m_.store_dir_ = policy.store_dir;
      EnsureDir(m_.store_dir_);
    }
  }
  row_ptr_.assign(1, 0);
}

void ShardedSparseIntervalMatrix::Builder::Append(size_t row, size_t col,
                                                  const Interval& value) {
  IVMF_CHECK_MSG(!finished_, "Append after Finish");
  IVMF_CHECK_MSG(row < m_.rows_ && col < m_.cols_,
                 "builder entry outside the matrix shape");
  IVMF_CHECK_MSG(!row_open_ || row > next_row_ ||
                     (row == next_row_ && col > last_col_),
                 "builder entries must arrive in ascending (row, col) order");
  while (row >=
         flushed_rows_ + std::min(m_.shard_rows_, m_.rows_ - flushed_rows_)) {
    FlushShard();
  }
  const size_t local = row - flushed_rows_;
  while (row_ptr_.size() < local + 1) row_ptr_.push_back(col_.size());
  col_.push_back(static_cast<uint32_t>(col));
  lo_.push_back(value.lo);
  hi_.push_back(value.hi);
  if (row_ptr_.size() == local + 1) {
    row_ptr_.push_back(col_.size());
  } else {
    row_ptr_[local + 1] = col_.size();
  }
  row_open_ = true;
  next_row_ = row;
  last_col_ = col;
}

void ShardedSparseIntervalMatrix::Builder::FlushShard() {
  const size_t begin = flushed_rows_;
  const size_t n = std::min(m_.shard_rows_, m_.rows_ - begin);
  while (row_ptr_.size() < n + 1) row_ptr_.push_back(col_.size());

  Shard sh;
  sh.row_begin = begin;
  sh.rows = n;
  sh.nnz = col_.size();
  if (mmap_) {
    const std::string path =
        m_.store_dir_ + "/" + ShardFileName(m_.shards_.size());
    std::string error;
    IVMF_CHECK_MSG(WriteShardFile(path, n, m_.cols_, row_ptr_.data(),
                                  col_.data(), lo_.data(), hi_.data(), &error),
                   "shard segment write failed");
    IVMF_CHECK_MSG(MapShardFile(path, &sh.mapped, &error),
                   "shard segment map failed");
    sh.mapped.AdviseSequential();
    // Map-time validation faulted the whole segment in; under a budget the
    // builder's resident set must stay one shard, not the growing store.
    if (m_.drop_residency_) sh.mapped.DropResidency();
    row_ptr_.clear();
    col_.clear();
    lo_.clear();
    hi_.clear();
  } else {
    sh.row_ptr = std::move(row_ptr_);
    sh.col = std::move(col_);
    sh.lo = std::move(lo_);
    sh.hi = std::move(hi_);
    row_ptr_ = {};
    col_ = {};
    lo_ = {};
    hi_ = {};
  }
  row_ptr_.push_back(0);
  m_.nnz_ += sh.nnz;
  m_.shards_.push_back(std::move(sh));
  flushed_rows_ += n;
}

ShardedSparseIntervalMatrix ShardedSparseIntervalMatrix::Builder::Finish() {
  IVMF_CHECK_MSG(!finished_, "Finish called twice");
  finished_ = true;
  while (flushed_rows_ < m_.rows_) FlushShard();
  m_.ResolveBackend(spk::Backend::kAuto);
  m_.BuildSellSidecars();
  return std::move(m_);
}

// -- Element access & structure ----------------------------------------------

Interval ShardedSparseIntervalMatrix::At(size_t i, size_t j) const {
  IVMF_DCHECK(i < rows_ && j < cols_);
  if (base_ != nullptr) return base_->At(i, j);
  if (shards_.empty()) return Interval();
  const size_t s = std::min(i / shard_rows_, shards_.size() - 1);
  const Shard& sh = shards_[s];
  const size_t r = i - sh.row_begin;
  const size_t* rp = sh.mapped.valid() ? sh.mapped.row_ptr()
                                       : sh.row_ptr.data();
  const uint32_t* col = sh.mapped.valid() ? sh.mapped.col() : sh.col.data();
  const double* lo = sh.mapped.valid() ? sh.mapped.lo() : sh.lo.data();
  const double* hi = sh.mapped.valid() ? sh.mapped.hi() : sh.hi.data();
  const uint32_t* begin = col + rp[r];
  const uint32_t* end = col + rp[r + 1];
  const uint32_t* it =
      std::lower_bound(begin, end, static_cast<uint32_t>(j));
  if (it == end || *it != j) return Interval();
  const size_t k = static_cast<size_t>(it - col);
  return Interval(lo[k], hi[k]);
}

SparseIntervalMatrix ShardedSparseIntervalMatrix::ToCsr() const {
  if (base_ != nullptr) return *base_;
  std::vector<size_t> row_ptr(rows_ + 1, 0);
  std::vector<size_t> col_idx;
  std::vector<double> lo;
  std::vector<double> hi;
  col_idx.reserve(nnz_);
  lo.reserve(nnz_);
  hi.reserve(nnz_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    const SegRef seg = Seg(s);
    for (size_t i = seg.row_begin; i < seg.row_end; ++i) {
      row_ptr[i + seg.offset + 1] =
          seg.view.row_ptr[i + 1] - seg.view.row_ptr[i];
      for (size_t k = seg.view.row_ptr[i]; k < seg.view.row_ptr[i + 1]; ++k) {
        col_idx.push_back(ColAt(seg.view, k));
        lo.push_back(seg.lo[k]);
        hi.push_back(seg.hi[k]);
      }
    }
  }
  for (size_t i = 0; i < rows_; ++i) row_ptr[i + 1] += row_ptr[i];
  return SparseIntervalMatrix::FromCsr(rows_, cols_, std::move(row_ptr),
                                       std::move(col_idx), std::move(lo),
                                       std::move(hi));
}

bool ShardedSparseIntervalMatrix::IsProper() const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    const SegRef seg = Seg(s);
    const size_t begin = seg.view.row_ptr[seg.row_begin];
    const size_t end = seg.view.row_ptr[seg.row_end];
    for (size_t k = begin; k < end; ++k) {
      if (seg.lo[k] > seg.hi[k]) return false;
    }
    MaybeDropResidency(seg);
  }
  return true;
}

bool ShardedSparseIntervalMatrix::IsNonNegative(double tol) const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    const SegRef seg = Seg(s);
    const size_t begin = seg.view.row_ptr[seg.row_begin];
    const size_t end = seg.view.row_ptr[seg.row_end];
    for (size_t k = begin; k < end; ++k) {
      if (seg.lo[k] < -tol) return false;
    }
    MaybeDropResidency(seg);
  }
  return true;
}

// -- Forward kernels (row-parallel over shards) ------------------------------

void ShardedSparseIntervalMatrix::Multiply(Endpoint e,
                                           const std::vector<double>& x,
                                           std::vector<double>& y) const {
  IVMF_CHECK(x.size() == cols_);
  IVMF_CHECK_MSG(&y != &x, "kernel output must not alias the input");
  static ShardedKernelCounters counters("multiply");
  counters.Count(shards_.size(), rows_, nnz_);
  y.resize(rows_);
  ParallelFor(0, shards_.size(), [&](size_t s) {
    const SegRef seg = Seg(s);
    const double* v = e == Endpoint::kLower ? seg.lo : seg.hi;
    if (seg.sell != nullptr) {
      seg.sell->MatVec(e == Endpoint::kUpper, x.data(), y.data() + seg.offset);
    } else if (csr_variant_ == spk::Backend::kAvx2) {
      spk::MatVecPackedAvx2(seg.view, v, x.data(), y.data() + seg.offset,
                            seg.row_begin, seg.row_end);
    } else {
      spk::MatVecPackedScalar(seg.view, v, x.data(), y.data() + seg.offset,
                              seg.row_begin, seg.row_end);
    }
    MaybeDropResidency(seg);
  });
}

void ShardedSparseIntervalMatrix::MultiplyMid(const std::vector<double>& x,
                                              std::vector<double>& y) const {
  IVMF_CHECK(x.size() == cols_);
  IVMF_CHECK_MSG(&y != &x, "kernel output must not alias the input");
  static ShardedKernelCounters counters("multiply_mid");
  counters.Count(shards_.size(), rows_, nnz_);
  y.resize(rows_);
  ParallelFor(0, shards_.size(), [&](size_t s) {
    const SegRef seg = Seg(s);
    if (seg.sell != nullptr) {
      seg.sell->MatVecMid(x.data(), y.data() + seg.offset);
    } else if (csr_variant_ == spk::Backend::kAvx2) {
      spk::MatVecMidPackedAvx2(seg.view, seg.lo, seg.hi, x.data(),
                               y.data() + seg.offset, seg.row_begin,
                               seg.row_end);
    } else {
      spk::MatVecMidPackedScalar(seg.view, seg.lo, seg.hi, x.data(),
                                 y.data() + seg.offset, seg.row_begin,
                                 seg.row_end);
    }
    MaybeDropResidency(seg);
  });
}

void ShardedSparseIntervalMatrix::MultiplyBoth(const std::vector<double>& x,
                                               std::vector<double>& y_lo,
                                               std::vector<double>& y_hi)
    const {
  IVMF_CHECK(x.size() == cols_);
  IVMF_CHECK_MSG(&y_lo != &x && &y_hi != &x,
                 "kernel output must not alias the input");
  IVMF_CHECK_MSG(&y_lo != &y_hi, "endpoint outputs must be distinct");
  static ShardedKernelCounters counters("multiply_both");
  counters.Count(shards_.size(), rows_, nnz_);
  y_lo.resize(rows_);
  y_hi.resize(rows_);
  ParallelFor(0, shards_.size(), [&](size_t s) {
    const SegRef seg = Seg(s);
    if (seg.sell != nullptr) {
      seg.sell->MatVecBoth(x.data(), y_lo.data() + seg.offset,
                           y_hi.data() + seg.offset);
    } else if (csr_variant_ == spk::Backend::kAvx2) {
      spk::MatVecBothPackedAvx2(seg.view, seg.lo, seg.hi, x.data(),
                                y_lo.data() + seg.offset,
                                y_hi.data() + seg.offset, seg.row_begin,
                                seg.row_end);
    } else {
      spk::MatVecBothPackedScalar(seg.view, seg.lo, seg.hi, x.data(),
                                  y_lo.data() + seg.offset,
                                  y_hi.data() + seg.offset, seg.row_begin,
                                  seg.row_end);
    }
    MaybeDropResidency(seg);
  });
}

Matrix ShardedSparseIntervalMatrix::MultiplyDense(Endpoint e,
                                                  const Matrix& b) const {
  IVMF_CHECK_MSG(b.rows() == cols_, "sparse x dense dimension mismatch");
  Matrix c(rows_, b.cols());
  if (b.cols() == 0 || rows_ == 0) return c;
  static ShardedKernelCounters counters("multiply_dense");
  counters.Count(shards_.size(), rows_, nnz_);
  const size_t bcols = b.cols();
  ParallelFor(0, shards_.size(), [&](size_t s) {
    const SegRef seg = Seg(s);
    const double* v = e == Endpoint::kLower ? seg.lo : seg.hi;
    spk::MatDensePackedScalar(seg.view, v, b.data(), bcols,
                              c.data() + seg.offset * bcols, seg.row_begin,
                              seg.row_end);
    MaybeDropResidency(seg);
  });
  return c;
}

IntervalMatrix ShardedSparseIntervalMatrix::IntervalMultiplyDense(
    const Matrix& b) const {
  IVMF_CHECK_MSG(b.rows() == cols_, "sparse x dense dimension mismatch");
  Matrix p_lo(rows_, b.cols());
  Matrix p_hi(rows_, b.cols());
  if (b.cols() > 0 && rows_ > 0) {
    static ShardedKernelCounters counters("multiply_dense_both");
    counters.Count(shards_.size(), rows_, nnz_);
    const size_t bcols = b.cols();
    ParallelFor(0, shards_.size(), [&](size_t s) {
      const SegRef seg = Seg(s);
      spk::MatDenseBothPackedScalar(seg.view, seg.lo, seg.hi, b.data(), bcols,
                                    p_lo.data() + seg.offset * bcols,
                                    p_hi.data() + seg.offset * bcols,
                                    seg.row_begin, seg.row_end);
      MaybeDropResidency(seg);
    });
  }
  Matrix lo(p_lo.rows(), p_lo.cols());
  Matrix hi(p_lo.rows(), p_lo.cols());
  for (size_t i = 0; i < lo.rows(); ++i) {
    for (size_t j = 0; j < lo.cols(); ++j) {
      lo(i, j) = std::min(p_lo(i, j), p_hi(i, j));
      hi(i, j) = std::max(p_lo(i, j), p_hi(i, j));
    }
  }
  return IntervalMatrix(std::move(lo), std::move(hi));
}

// -- Scatter reductions (group-partitioned partials) -------------------------

template <typename ScatterFn>
void ShardedSparseIntervalMatrix::ReduceOverShards(
    size_t acc_len, ScatterFn&& scatter, std::vector<double>* out0,
    std::vector<double>* out1) const {
  const size_t num_shards = shards_.size();
  // The same deterministic partition math as the monolithic reduction
  // kernels (kMinRowsPerThread = 2048, column reduce at 4096), except that
  // work splits on shard boundaries: each group owns a contiguous shard
  // range and scatters it sequentially into private accumulators.
  constexpr size_t kMinRowsPerThread = 2048;
  size_t groups = SuggestedThreads(rows_);
  const size_t cap = (rows_ + kMinRowsPerThread - 1) / kMinRowsPerThread;
  if (groups > cap) groups = cap;
  if (groups > num_shards) groups = num_shards;

  if (groups <= 1) {
    out0->assign(acc_len, 0.0);
    if (out1 != nullptr) out1->assign(acc_len, 0.0);
    for (size_t s = 0; s < num_shards; ++s) {
      const SegRef seg = Seg(s);
      scatter(seg, out0->data(), out1 != nullptr ? out1->data() : nullptr);
      MaybeDropResidency(seg);
    }
    return;
  }

  const size_t per_group = (num_shards + groups - 1) / groups;
  std::vector<std::vector<double>> parts0(groups);
  std::vector<std::vector<double>> parts1(out1 != nullptr ? groups : 0);
  ParallelFor(
      0, groups,
      [&](size_t g) {
        parts0[g].assign(acc_len, 0.0);
        double* p1 = nullptr;
        if (out1 != nullptr) {
          parts1[g].assign(acc_len, 0.0);
          p1 = parts1[g].data();
        }
        const size_t s_begin = g * per_group;
        const size_t s_end = std::min(num_shards, s_begin + per_group);
        for (size_t s = s_begin; s < s_end; ++s) {
          const SegRef seg = Seg(s);
          scatter(seg, parts0[g].data(), p1);
          MaybeDropResidency(seg);
        }
      },
      /*max_threads=*/groups);
  out0->resize(acc_len);
  if (out1 != nullptr) out1->resize(acc_len);
  ParallelFor(
      0, acc_len,
      [&](size_t j) {
        double sum0 = 0.0;
        for (size_t g = 0; g < groups; ++g) sum0 += parts0[g][j];
        (*out0)[j] = sum0;
        if (out1 != nullptr) {
          double sum1 = 0.0;
          for (size_t g = 0; g < groups; ++g) sum1 += parts1[g][j];
          (*out1)[j] = sum1;
        }
      },
      /*max_threads=*/0, /*min_items_per_thread=*/4096);
}

void ShardedSparseIntervalMatrix::MultiplyTranspose(
    Endpoint e, const std::vector<double>& x, std::vector<double>& y) const {
  IVMF_CHECK(x.size() == rows_);
  IVMF_CHECK_MSG(&y != &x, "kernel output must not alias the input");
  static ShardedKernelCounters counters("multiply_transpose");
  counters.Count(shards_.size(), rows_, nnz_);
  ReduceOverShards(
      cols_,
      [&](const SegRef& seg, double* p0, double* /*p1*/) {
        const double* v = e == Endpoint::kLower ? seg.lo : seg.hi;
        spk::MatVecTPackedScalar(seg.view, v, x.data() + seg.offset, p0,
                                 seg.row_begin, seg.row_end);
      },
      &y, nullptr);
}

void ShardedSparseIntervalMatrix::MultiplyTransposeMid(
    const std::vector<double>& x, std::vector<double>& y) const {
  IVMF_CHECK(x.size() == rows_);
  IVMF_CHECK_MSG(&y != &x, "kernel output must not alias the input");
  static ShardedKernelCounters counters("multiply_transpose_mid");
  counters.Count(shards_.size(), rows_, nnz_);
  ReduceOverShards(
      cols_,
      [&](const SegRef& seg, double* p0, double* /*p1*/) {
        spk::MatVecTMidPackedScalar(seg.view, seg.lo, seg.hi,
                                    x.data() + seg.offset, p0, seg.row_begin,
                                    seg.row_end);
      },
      &y, nullptr);
}

void ShardedSparseIntervalMatrix::GramMultiply(Endpoint e,
                                               const std::vector<double>& x,
                                               std::vector<double>& y) const {
  IVMF_CHECK(x.size() == cols_);
  IVMF_CHECK_MSG(&y != &x, "kernel output must not alias the input");
  static ShardedKernelCounters counters("gram_fused");
  counters.Count(shards_.size(), rows_, nnz_);
  const bool avx2 = csr_variant_ == spk::Backend::kAvx2;
  ReduceOverShards(
      cols_,
      [&](const SegRef& seg, double* p0, double* /*p1*/) {
        const double* v = e == Endpoint::kLower ? seg.lo : seg.hi;
        if (avx2) {
          spk::GramFusedPackedAvx2(seg.view, v, x.data(), p0, seg.row_begin,
                                   seg.row_end);
        } else {
          spk::GramFusedPackedScalar(seg.view, v, x.data(), p0, seg.row_begin,
                                     seg.row_end);
        }
      },
      &y, nullptr);
}

void ShardedSparseIntervalMatrix::GramMultiplyBoth(
    const std::vector<double>& x, std::vector<double>& y_lo,
    std::vector<double>& y_hi) const {
  IVMF_CHECK(x.size() == cols_);
  IVMF_CHECK_MSG(&y_lo != &x && &y_hi != &x,
                 "kernel output must not alias the input");
  IVMF_CHECK_MSG(&y_lo != &y_hi, "endpoint outputs must be distinct");
  static ShardedKernelCounters counters("gram_fused_both");
  counters.Count(shards_.size(), rows_, nnz_);
  const bool avx2 = csr_variant_ == spk::Backend::kAvx2;
  ReduceOverShards(
      cols_,
      [&](const SegRef& seg, double* p0, double* p1) {
        if (avx2) {
          spk::GramFusedBothPackedAvx2(seg.view, seg.lo, seg.hi, x.data(), p0,
                                       p1, seg.row_begin, seg.row_end);
        } else {
          spk::GramFusedBothPackedScalar(seg.view, seg.lo, seg.hi, x.data(),
                                         p0, p1, seg.row_begin, seg.row_end);
        }
      },
      &y_lo, &y_hi);
}

IntervalMatrix ShardedSparseIntervalMatrix::IntervalMultiplyDenseTranspose(
    const Matrix& b) const {
  IVMF_CHECK_MSG(b.rows() == rows_, "sparse x dense dimension mismatch");
  const size_t bcols = b.cols();
  Matrix lo(cols_, bcols);
  Matrix hi(cols_, bcols);
  if (bcols == 0 || rows_ == 0 || cols_ == 0) {
    return IntervalMatrix(std::move(lo), std::move(hi));
  }
  static ShardedKernelCounters counters("multiply_dense_t_both");
  counters.Count(shards_.size(), rows_, nnz_);
  std::vector<double> acc_lo;
  std::vector<double> acc_hi;
  ReduceOverShards(
      cols_ * bcols,
      [&](const SegRef& seg, double* p0, double* p1) {
        spk::MatDenseTBothPackedScalar(seg.view, seg.lo, seg.hi,
                                       b.data() + seg.offset * bcols, bcols,
                                       p0, p1, seg.row_begin, seg.row_end);
      },
      &acc_lo, &acc_hi);
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = 0; j < bcols; ++j) {
      const double a = acc_lo[i * bcols + j];
      const double c = acc_hi[i * bcols + j];
      lo(i, j) = std::min(a, c);
      hi(i, j) = std::max(a, c);
    }
  }
  return IntervalMatrix(std::move(lo), std::move(hi));
}

// -- Dense Gram statics (bit-identical to the monolithic accumulation) -------

Matrix ShardedSparseIntervalMatrix::DenseGram(
    const ShardedSparseIntervalMatrix& m, Endpoint e) {
  Matrix gram(m.cols_, m.cols_);
  // Shards partition rows in ascending global order and each shard walks
  // its rows ascending, so the accumulation order is exactly the monolithic
  // SparseGramOperator::DenseGram loop — results are bit-identical.
  for (size_t s = 0; s < m.shards_.size(); ++s) {
    const SegRef seg = m.Seg(s);
    const double* v = e == Endpoint::kLower ? seg.lo : seg.hi;
    const size_t* rp = seg.view.row_ptr;
    for (size_t i = seg.row_begin; i < seg.row_end; ++i) {
      for (size_t a = rp[i]; a < rp[i + 1]; ++a) {
        const size_t ja = ColAt(seg.view, a);
        const double va = v[a];
        for (size_t b = a; b < rp[i + 1]; ++b) {
          gram(ja, ColAt(seg.view, b)) += va * v[b];
        }
      }
    }
    m.MaybeDropResidency(seg);
  }
  for (size_t i = 0; i < gram.rows(); ++i) {
    for (size_t j = 0; j < i; ++j) gram(i, j) = gram(j, i);
  }
  return gram;
}

IntervalMatrix ShardedSparseIntervalMatrix::DenseGramEndpoints(
    const ShardedSparseIntervalMatrix& m) {
  const size_t dim = m.cols_;
  Matrix g_ll(dim, dim);
  Matrix g_hh(dim, dim);
  Matrix g_lh(dim, dim);
  // Same shard-sequential ascending-row walk as DenseGram above: identical
  // addition order to SparseGramOperator::DenseGramEndpoints.
  for (size_t s = 0; s < m.shards_.size(); ++s) {
    const SegRef seg = m.Seg(s);
    const size_t* rp = seg.view.row_ptr;
    for (size_t i = seg.row_begin; i < seg.row_end; ++i) {
      for (size_t a = rp[i]; a < rp[i + 1]; ++a) {
        const size_t ja = ColAt(seg.view, a);
        for (size_t b = a; b < rp[i + 1]; ++b) {
          const size_t jb = ColAt(seg.view, b);
          g_ll(ja, jb) += seg.lo[a] * seg.lo[b];
          g_hh(ja, jb) += seg.hi[a] * seg.hi[b];
        }
        for (size_t b = rp[i]; b < rp[i + 1]; ++b) {
          g_lh(ja, ColAt(seg.view, b)) += seg.lo[a] * seg.hi[b];
        }
      }
    }
    m.MaybeDropResidency(seg);
  }
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < i; ++j) {
      g_ll(i, j) = g_ll(j, i);
      g_hh(i, j) = g_hh(j, i);
    }
  }

  Matrix gram_lo(dim, dim);
  Matrix gram_hi(dim, dim);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      const double v1 = g_ll(i, j);
      const double v2 = g_lh(i, j);  // M_*ᵀ M^*
      const double v3 = g_lh(j, i);  // M^*ᵀ M_*
      const double v4 = g_hh(i, j);
      gram_lo(i, j) = std::min(std::min(v1, v2), std::min(v3, v4));
      gram_hi(i, j) = std::max(std::max(v1, v2), std::max(v3, v4));
    }
  }
  return IntervalMatrix(std::move(gram_lo), std::move(gram_hi));
}

}  // namespace ivmf
