// Sparse-kernel backends: scalar reference, AVX2, and SELL-C-4 row-block
// kernels behind one dispatch point.
//
// The CSR loops in SparseIntervalMatrix dominate the Lanczos hot path of
// every matrix-free decomposition (bench_fig10_sparse_scale), so they are
// worth vectorizing — but vectorized kernels silently corrupt results when
// they are wrong, so every variant here is pinned against the scalar
// reference by tests/sparse_kernel_diff_test.cc and the fuzz suite, and
// bench --check refuses to time a kernel whose answers diverge.
//
// Three backends:
//   kScalar  the reference loops (also the portable fallback everywhere)
//   kAvx2    register-blocked CSR rows, 4-wide FMA gathers. The forward
//            matvec family and the fused Gram kernel run over a packed
//            16/32-bit column-index sidecar (built lazily per matrix) with
//            software prefetch — the matvec is memory-bound, so halving
//            index bytes is worth more than any amount of ILP. Compiled in
//            a dedicated -mavx2 translation unit and reached only after a
//            runtime cpuid check, so the same binary runs on machines
//            without AVX2
//   kSell    SELL-C-sigma padded storage (C = 4 rows per chunk, rows sorted
//            by length within a sigma-row window): the matvec becomes a
//            vertical 4-lane FMA per slice with no per-row remainder, using
//            32-bit column indices to halve index bandwidth. Kernels the
//            SELL layout does not cover (transpose, sparse x dense, pair)
//            fall back to the dispatched CSR variant — the CSR arrays stay
//            resident either way.
//
// Selection: per-matrix SparseIntervalMatrix::set_kernel() wins, then the
// IVMF_SPARSE_KERNEL environment variable (scalar|avx2|sell|auto), then
// auto = AVX2 when the CPU has it, scalar otherwise. Requesting avx2 on a
// machine (or build) without it degrades to scalar, never aborts.
//
// Aliasing contract (checked with IVMF_CHECK at the public entry points):
// no output buffer may alias an input buffer, and distinct output buffers
// of one call (y_lo / y_hi) may not alias each other. The kernels read
// inputs while writing outputs in blocked order, so aliasing would return
// garbage rather than the in-place result a caller might hope for. Inputs
// must be finite: SELL padding multiplies 0 by x[0], which poisons lane
// sums if x carries an Inf/NaN into a padded slot.
//
// Numerical contract: every variant computes each output entry from exactly
// the same terms as the scalar loop; only the association order differs
// (lane/accumulator blocking). Results therefore agree with the reference
// to a few ULP per accumulated term — the differential suite pins
// |diff| <= 1e-12 * max(1, |ref|) — and each variant is bit-stable across
// calls on the same machine.

#ifndef IVMF_SPARSE_SPARSE_KERNELS_H_
#define IVMF_SPARSE_SPARSE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ivmf::spk {

// -- Backend selection -------------------------------------------------------

enum class Backend {
  kAuto,    // resolve from IVMF_SPARSE_KERNEL, then cpuid
  kScalar,  // reference CSR loops
  kAvx2,    // vectorized CSR rows (degrades to kScalar without AVX2)
  kSell,    // SELL-C-4 padded storage for matvec-shaped kernels
};

// True when the AVX2 translation unit was compiled into this binary
// (x86 toolchain, IVMF_DISABLE_AVX2 not set).
bool Avx2Compiled();

// True when the AVX2 kernels are both compiled in and supported by the
// running CPU (cpuid: AVX2 + FMA). Cached after the first call.
bool Avx2Supported();

// Parses "scalar" / "avx2" / "sell" / "auto". Returns false (and leaves
// *out untouched) for anything else.
bool ParseBackend(std::string_view name, Backend* out);

// Lower-case name of a backend, e.g. for bench JSON fields and log lines.
const char* BackendName(Backend backend);

// The process-wide default from IVMF_SPARSE_KERNEL (kAuto when unset; an
// unrecognized value warns once on stderr and acts as kAuto). Read once and
// cached.
Backend EnvBackend();

// Collapses a per-matrix request to the backend that will actually run:
// kAuto defers to EnvBackend(), then auto/avx2 resolve to kAvx2 iff
// Avx2Supported() (else kScalar). kSell is a storage choice and resolves to
// itself; its inner chunk kernel independently uses AVX2 when available.
Backend Resolve(Backend request);

// The CSR variant standing in for `backend` on kernels the SELL layout does
// not implement (transpose, dense, pair): kSell maps to kAvx2/kScalar by
// cpuid, everything else resolves as usual.
Backend CsrVariant(Backend backend);

// Row-statistics auto-selection (the per-matrix refinement of kAuto): picks
// the storage backend from the matrix's row-length distribution.
// `mean_row_nnz` is nnz / rows, `cv` the coefficient of variation
// (stddev / mean) of row lengths. SELL-C-4 only pays off on
// short-row / irregular patterns — its padding and permutation overhead
// loses to packed CSR once rows are long enough to amortize the gather
// loop — so this returns kSell for short mean rows (or moderately short,
// highly irregular ones) when AVX2 is available, and the packed-CSR AVX2
// path (or scalar) otherwise. Pure function of its arguments, pinned by
// tests/sparse_kernel_heuristic_test.cc; thresholds chosen so the
// long-row CF bench matrices (mean >= ~12.5) keep the packed-CSR path
// that PR 8's baselines were recorded with.
inline constexpr double kSellMeanRowThreshold = 12.0;
inline constexpr double kSellIrregularMeanRowThreshold = 24.0;
inline constexpr double kSellIrregularCvThreshold = 1.5;
Backend ChooseAutoBackend(double mean_row_nnz, double cv,
                          bool avx2_supported);

// -- CSR kernels -------------------------------------------------------------
//
// All CSR kernels operate on rows [row_begin, row_end) of a shared view, so
// callers can partition row blocks across threads. Entry k of row i lives
// at row_ptr[i] <= k < row_ptr[i + 1] with column col_idx[k]. The *Avx2
// variants are always declared; without AVX2 in the build they forward to
// the scalar reference.

struct CsrView {
  size_t rows = 0;
  size_t cols = 0;
  const size_t* row_ptr = nullptr;
  const size_t* col_idx = nullptr;
};

// y[i] = sum_k v[k] * x[col_idx[k]] over row i.
void MatVecScalar(const CsrView& a, const double* v, const double* x,
                  double* y, size_t row_begin, size_t row_end);
void MatVecAvx2(const CsrView& a, const double* v, const double* x, double* y,
                size_t row_begin, size_t row_end);

// y[i] = sum_k 0.5 * (lo[k] + hi[k]) * x[col_idx[k]] — the fused midpoint
// action over the shared pattern.
void MatVecMidScalar(const CsrView& a, const double* lo, const double* hi,
                     const double* x, double* y, size_t row_begin,
                     size_t row_end);
void MatVecMidAvx2(const CsrView& a, const double* lo, const double* hi,
                   const double* x, double* y, size_t row_begin,
                   size_t row_end);

// Fused endpoint pair on one input: y_lo = A_* x and y_hi = A^* x in a
// single pattern pass (one gather feeds both FMA streams).
void MatVecBothScalar(const CsrView& a, const double* lo, const double* hi,
                      const double* x, double* y_lo, double* y_hi,
                      size_t row_begin, size_t row_end);
void MatVecBothAvx2(const CsrView& a, const double* lo, const double* hi,
                    const double* x, double* y_lo, double* y_hi,
                    size_t row_begin, size_t row_end);

// Fused endpoint pair on two inputs: y_lo = A_* x_lo and y_hi = A^* x_hi in
// a single pattern pass (the second Gram stage of ApplyBoth, where each
// endpoint chain carries its own vector).
void MatVecPairScalar(const CsrView& a, const double* lo, const double* hi,
                      const double* x_lo, const double* x_hi, double* y_lo,
                      double* y_hi, size_t row_begin, size_t row_end);
void MatVecPairAvx2(const CsrView& a, const double* lo, const double* hi,
                    const double* x_lo, const double* x_hi, double* y_lo,
                    double* y_hi, size_t row_begin, size_t row_end);

// y[col_idx[k]] += v[k] * x[i] over rows [row_begin, row_end): the
// transpose action as a scatter. Accumulates — the caller zero-fills y (or
// reduces per-thread partials). AVX2 has no scatter instruction, so the
// vectorized variant register-blocks the multiply four entries at a time
// (columns within a row are unique, so the four scalar stores never
// collide) — a modest but honest win over the reference loop.
void MatVecTScalar(const CsrView& a, const double* v, const double* x,
                   double* y, size_t row_begin, size_t row_end);
void MatVecTAvx2(const CsrView& a, const double* v, const double* x,
                 double* y, size_t row_begin, size_t row_end);

// C = A_e B for row-major dense b (a.cols x bcols); row i of C is
// accumulated in place (caller zero-fills). Vectorizes across the dense
// columns, so it needs no gathers at all.
void MatDenseScalar(const CsrView& a, const double* v, const double* b,
                    size_t bcols, double* c, size_t row_begin,
                    size_t row_end);
void MatDenseAvx2(const CsrView& a, const double* v, const double* b,
                  size_t bcols, double* c, size_t row_begin, size_t row_end);

// Fused endpoint pair of dense products: c_lo = A_* B and c_hi = A^* B in
// one pattern pass (the kernel under IntervalMultiplyDense).
void MatDenseBothScalar(const CsrView& a, const double* lo, const double* hi,
                        const double* b, size_t bcols, double* c_lo,
                        double* c_hi, size_t row_begin, size_t row_end);
void MatDenseBothAvx2(const CsrView& a, const double* lo, const double* hi,
                      const double* b, size_t bcols, double* c_lo,
                      double* c_hi, size_t row_begin, size_t row_end);

// -- Packed-index CSR kernels (the AVX2 fast path) ---------------------------
//
// The 20k x 5k matvec is memory-bound: with size_t column indices the CSR
// stream costs 16 bytes per nonzero and the scalar loop already saturates a
// core's bandwidth, capping any same-layout speedup near 1.4x. The packed
// view replaces the index stream with 16-bit (cols < 2^16) or 32-bit
// (cols < 2^32) copies built once per matrix, cutting the stream to
// 10-12 bytes per nonzero; combined with software prefetch of both streams
// this is where the vectorized forward family gets its >= 2x. Exactly one
// of col16 / col32 is non-null. Row extents still come from row_ptr.

struct PackedCsrView {
  size_t rows = 0;
  size_t cols = 0;
  const size_t* row_ptr = nullptr;
  const uint16_t* col16 = nullptr;  // set when cols fits in 16 bits
  const uint32_t* col32 = nullptr;  // set otherwise (cols always < 2^32)
};

// Packed-index scalar kernels: the portable reference loops over the
// 16/32-bit sidecar, with the identical per-row association as the
// size_t-index scalar family (so a caller switching index width never
// changes results bitwise). These are the kernels a shard whose only
// column stream is packed (an mmap'd segment stores u32 indices, never
// size_t) runs when the resolved backend is kScalar — calling the
// *PackedAvx2 symbols there would execute real AVX2 code on AVX2 builds.
// The transpose / dense members exist only in packed-scalar form: AVX2 has
// no packed transpose-scatter or dense-block kernel, so sharded dispatch
// uses these for every backend.
void MatVecPackedScalar(const PackedCsrView& a, const double* v,
                        const double* x, double* y, size_t row_begin,
                        size_t row_end);
void MatVecMidPackedScalar(const PackedCsrView& a, const double* lo,
                           const double* hi, const double* x, double* y,
                           size_t row_begin, size_t row_end);
void MatVecBothPackedScalar(const PackedCsrView& a, const double* lo,
                            const double* hi, const double* x, double* y_lo,
                            double* y_hi, size_t row_begin, size_t row_end);
void MatVecPairPackedScalar(const PackedCsrView& a, const double* lo,
                            const double* hi, const double* x_lo,
                            const double* x_hi, double* y_lo, double* y_hi,
                            size_t row_begin, size_t row_end);
// y[col[k]] += v[k] * x[i] scatter over the packed indices (accumulates;
// caller zero-fills or reduces partials), mirroring MatVecTScalar.
void MatVecTPackedScalar(const PackedCsrView& a, const double* v,
                         const double* x, double* y, size_t row_begin,
                         size_t row_end);
// y[col[k]] += 0.5 * (lo[k] + hi[k]) * x[i] — the midpoint transpose
// scatter (the ApplyTranspose of a sharded midpoint map, which has no
// materialized transpose to run forward).
void MatVecTMidPackedScalar(const PackedCsrView& a, const double* lo,
                            const double* hi, const double* x, double* y,
                            size_t row_begin, size_t row_end);
// c_lo += A_*ᵀ B and c_hi += A^*ᵀ B for row-major b (a.rows x bcols):
// the transposed dense product as a row-scatter, one pattern pass feeding
// both endpoint accumulations. c_lo/c_hi are a.cols x bcols, caller
// zero-fills (or reduces partials).
void MatDenseTBothPackedScalar(const PackedCsrView& a, const double* lo,
                               const double* hi, const double* b,
                               size_t bcols, double* c_lo, double* c_hi,
                               size_t row_begin, size_t row_end);
// Packed-index counterparts of MatDenseScalar / MatDenseBothScalar
// (accumulate into row-major c; caller zero-fills).
void MatDensePackedScalar(const PackedCsrView& a, const double* v,
                          const double* b, size_t bcols, double* c,
                          size_t row_begin, size_t row_end);
void MatDenseBothPackedScalar(const PackedCsrView& a, const double* lo,
                              const double* hi, const double* b, size_t bcols,
                              double* c_lo, double* c_hi, size_t row_begin,
                              size_t row_end);
void GramFusedPackedScalar(const PackedCsrView& a, const double* v,
                           const double* x, double* y, size_t row_begin,
                           size_t row_end);
void GramFusedBothPackedScalar(const PackedCsrView& a, const double* lo,
                               const double* hi, const double* x,
                               double* y_lo, double* y_hi, size_t row_begin,
                               size_t row_end);

// Packed-index counterparts of the forward CSR family above; same
// semantics, same aliasing and numerical contracts. Without AVX2 in the
// build they run portable blocked-scalar loops over the packed indices.
void MatVecPackedAvx2(const PackedCsrView& a, const double* v,
                      const double* x, double* y, size_t row_begin,
                      size_t row_end);
void MatVecMidPackedAvx2(const PackedCsrView& a, const double* lo,
                         const double* hi, const double* x, double* y,
                         size_t row_begin, size_t row_end);
void MatVecBothPackedAvx2(const PackedCsrView& a, const double* lo,
                          const double* hi, const double* x, double* y_lo,
                          double* y_hi, size_t row_begin, size_t row_end);
void MatVecPairPackedAvx2(const PackedCsrView& a, const double* lo,
                          const double* hi, const double* x_lo,
                          const double* x_hi, double* y_lo, double* y_hi,
                          size_t row_begin, size_t row_end);

// -- Fused normal-equations (Gram) kernels -----------------------------------
//
// y += A_eᵀ (A_e x) over rows [row_begin, row_end) in ONE pass over the
// pattern: per row, s = <row, x> (gather dot), then y[col] += s * v
// (scatter). The two-pass composition A_eᵀ(A_e x) streams the nonzeros
// twice (forward matrix, then the materialized transpose); the fused form
// streams them once, which roughly halves the memory traffic of a Lanczos
// Gram step. Accumulates into y — the caller zero-fills (or reduces
// per-thread partials). Summation order differs from the two-pass
// composition (per-row rank-1 updates instead of transpose-row dots), still
// within the 1e-12 differential bound.
void GramFusedScalar(const CsrView& a, const double* v, const double* x,
                     double* y, size_t row_begin, size_t row_end);
void GramFusedPackedAvx2(const PackedCsrView& a, const double* v,
                         const double* x, double* y, size_t row_begin,
                         size_t row_end);

// Fused both-endpoint Gram pass: y_lo += A_*ᵀ(A_* x), y_hi += A^*ᵀ(A^* x),
// sharing one pattern walk and one x gather per slot.
void GramFusedBothScalar(const CsrView& a, const double* lo, const double* hi,
                         const double* x, double* y_lo, double* y_hi,
                         size_t row_begin, size_t row_end);
void GramFusedBothPackedAvx2(const PackedCsrView& a, const double* lo,
                             const double* hi, const double* x, double* y_lo,
                             double* y_hi, size_t row_begin, size_t row_end);

// -- SELL-C-4 chunk kernels --------------------------------------------------
//
// Chunk c covers four consecutive rows of the length-sorted permutation;
// slice s of chunk c stores lanes 0..3 contiguously at
// col[chunk_ptr[c] + 4 * s + lane]. Padded lanes carry column 0 / value 0,
// and their perm entry is kSellPadRow. Kernels write whole chunks
// [chunk_begin, chunk_end), scattering each real lane sum to
// y[perm[4 * c + lane]].

inline constexpr size_t kSellC = 4;
inline constexpr size_t kSellPadRow = static_cast<size_t>(-1);

struct SellView {
  size_t chunks = 0;
  const size_t* chunk_ptr = nullptr;  // chunks + 1 offsets into col/values
  const uint32_t* col = nullptr;      // padded 32-bit column indices
  const size_t* perm = nullptr;       // 4 * chunks source rows (or pad)
};

void SellMatVecScalar(const SellView& s, const double* v, const double* x,
                      double* y, size_t chunk_begin, size_t chunk_end);
void SellMatVecAvx2(const SellView& s, const double* v, const double* x,
                    double* y, size_t chunk_begin, size_t chunk_end);

void SellMatVecMidScalar(const SellView& s, const double* lo,
                         const double* hi, const double* x, double* y,
                         size_t chunk_begin, size_t chunk_end);
void SellMatVecMidAvx2(const SellView& s, const double* lo, const double* hi,
                       const double* x, double* y, size_t chunk_begin,
                       size_t chunk_end);

void SellMatVecBothScalar(const SellView& s, const double* lo,
                          const double* hi, const double* x, double* y_lo,
                          double* y_hi, size_t chunk_begin, size_t chunk_end);
void SellMatVecBothAvx2(const SellView& s, const double* lo, const double* hi,
                        const double* x, double* y_lo, double* y_hi,
                        size_t chunk_begin, size_t chunk_end);

}  // namespace ivmf::spk

#endif  // IVMF_SPARSE_SPARSE_KERNELS_H_
