// On-disk segment files for block-row shards, and their mmap'd views.
//
// One file per shard ("shard_<k>.ivsh") holds an independent CSR segment:
// a fixed header, the shard-local (base-0) row offsets, the packed 32-bit
// column indices, and the two endpoint value arrays. The layout is exactly
// what the packed-index kernels consume — after mmap, row_ptr/col/lo/hi
// point straight into the mapping and a shard matvec runs zero-copy off
// the page cache. That is the entire out-of-core story: the kernels never
// learn whether their arrays came from a vector or a file, and the OS
// (helped by madvise) decides which shard's pages are resident.
//
// Alignment: every array in the file starts on an 8-byte boundary (the
// column block is padded), so the mapped pointers satisfy the natural
// alignment of u64/f64 loads. The header is validated on open — magic,
// sizes, file length — so a truncated or foreign file fails cleanly
// instead of faulting mid-decompose.
//
// Residency accounting: file-backed pages count toward RSS while resident.
// MappedSegment::DropResidency (madvise MADV_DONTNEED) returns a shard's
// pages to the kernel after a streaming pass — the page cache may retain
// them, so a re-fault is cheap, but the process' RSS stays near the
// working-set budget instead of growing to the whole store. The global
// mapped-bytes gauge (sparse.shard.mapped.bytes, mirrored by
// MappedBytesTotal) is what the bench JSON reports next to peak RSS.

#ifndef IVMF_SPARSE_SHARD_STORE_H_
#define IVMF_SPARSE_SHARD_STORE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace ivmf {

// How a ShardedSparseIntervalMatrix backs its shard segments.
struct BackingPolicy {
  enum class Kind {
    kMemory,  // heap-owned segment buffers (the in-core default)
    kMmap,    // segment files under store_dir, mmap'd read-only
    kAuto,    // kMemory unless the estimated store exceeds budget_bytes
  };

  Kind kind = Kind::kMemory;
  // kAuto: switch to mmap when the estimated segment bytes exceed this.
  // kMmap: when > 0, drop shard residency after streaming passes so peak
  // RSS tracks the budget rather than the store size.
  size_t budget_bytes = 0;
  // Directory for segment files (kMmap/kAuto). Empty = a fresh mkdtemp
  // directory owned (and removed) by the matrix; non-empty directories
  // persist, which is what OpenStore and the crash-consistency smoke use.
  std::string store_dir;

  static BackingPolicy Memory() { return {}; }
  static BackingPolicy Mmap(std::string dir = {}) {
    BackingPolicy p;
    p.kind = Kind::kMmap;
    p.store_dir = std::move(dir);
    return p;
  }
  static BackingPolicy Auto(size_t budget_bytes, std::string dir = {}) {
    BackingPolicy p;
    p.kind = Kind::kAuto;
    p.budget_bytes = budget_bytes;
    p.store_dir = std::move(dir);
    return p;
  }
};

// A read-only mmap of one shard segment file. Movable; unmaps on
// destruction. All pointers reference the mapping and die with it.
class MappedSegment {
 public:
  MappedSegment() = default;
  ~MappedSegment();
  MappedSegment(MappedSegment&& other) noexcept;
  MappedSegment& operator=(MappedSegment&& other) noexcept;
  MappedSegment(const MappedSegment&) = delete;
  MappedSegment& operator=(const MappedSegment&) = delete;

  bool valid() const { return base_ != nullptr; }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return nnz_; }
  size_t bytes() const { return bytes_; }

  // Shard-local (base-0) offsets, rows() + 1 entries. Stored as u64 and
  // exposed as size_t (static_asserted 64-bit) for the kernel views.
  const size_t* row_ptr() const { return row_ptr_; }
  const uint32_t* col() const { return col_; }
  const double* lo() const { return lo_; }
  const double* hi() const { return hi_; }

  // Hints the kernel that the mapping will be read front to back (streaming
  // matvec passes); readahead then keeps the faulting thread fed.
  void AdviseSequential() const;
  // Returns the mapping's resident pages to the kernel (MADV_DONTNEED on a
  // file-backed read-only mapping drops them without I/O; re-access
  // re-faults from the page cache or disk).
  void DropResidency() const;

 private:
  friend bool MapShardFile(const std::string& path, MappedSegment* out,
                           std::string* error);

  void Release();

  void* base_ = nullptr;
  size_t bytes_ = 0;
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t nnz_ = 0;
  const size_t* row_ptr_ = nullptr;
  const uint32_t* col_ = nullptr;
  const double* lo_ = nullptr;
  const double* hi_ = nullptr;
};

// "shard_<index>.ivsh".
std::string ShardFileName(size_t index);

// Exact on-disk size of a segment with the given shape (header + aligned
// arrays) — what BackingPolicy::kAuto sums to compare against its budget.
size_t ShardFileBytes(size_t rows, size_t nnz);

// Writes one segment file atomically (temp file + rename). `row_ptr` is
// shard-local base-0 with rows + 1 entries; nnz = row_ptr[rows]. Returns
// false and sets *error on I/O failure.
bool WriteShardFile(const std::string& path, size_t rows, size_t cols,
                    const size_t* row_ptr, const uint32_t* col,
                    const double* lo, const double* hi, std::string* error);

// Maps a segment file read-only and validates its header (magic, version,
// array extents against the file length). Returns false and sets *error on
// open/validate failure; *out is untouched on failure.
bool MapShardFile(const std::string& path, MappedSegment* out,
                  std::string* error);

// Creates a fresh private directory for a temporary shard store (mkdtemp
// under TMPDIR or /tmp). Empty string on failure.
std::string CreateTempStoreDir(std::string* error);

// Removes a store directory and the shard files inside it (temp-store
// cleanup). Non-shard files are left alone and keep the directory alive.
void RemoveStoreDir(const std::string& dir);

// Total bytes currently mmap'd across all live MappedSegments — the
// "bytes_mapped" half of the bench memory record.
size_t MappedBytesTotal();

}  // namespace ivmf

#endif  // IVMF_SPARSE_SHARD_STORE_H_
