#include "sparse/sparse_gram_operator.h"

namespace ivmf {

Matrix SparseGramOperator::DenseGram(const SparseIntervalMatrix& m,
                                     SparseIntervalMatrix::Endpoint endpoint) {
  const std::vector<double>& v = m.values(endpoint);
  const std::vector<size_t>& row_ptr = m.row_ptr();
  const std::vector<size_t>& col_idx = m.col_idx();
  Matrix gram(m.cols(), m.cols());
  // C += rowᵀ row for every sparse row: each row contributes the outer
  // product of its nonzeros. Only the upper triangle is accumulated, then
  // mirrored.
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t a = row_ptr[i]; a < row_ptr[i + 1]; ++a) {
      const size_t ja = col_idx[a];
      const double va = v[a];
      for (size_t b = a; b < row_ptr[i + 1]; ++b) {
        gram(ja, col_idx[b]) += va * v[b];
      }
    }
  }
  for (size_t i = 0; i < gram.rows(); ++i) {
    for (size_t j = 0; j < i; ++j) gram(i, j) = gram(j, i);
  }
  return gram;
}

}  // namespace ivmf
