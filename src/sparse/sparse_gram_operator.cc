#include "sparse/sparse_gram_operator.h"

#include <algorithm>
#include <utility>

namespace ivmf {

Matrix SparseGramOperator::DenseGram(const SparseIntervalMatrix& m,
                                     SparseIntervalMatrix::Endpoint endpoint) {
  const std::vector<double>& v = m.values(endpoint);
  const std::vector<size_t>& row_ptr = m.row_ptr();
  const std::vector<size_t>& col_idx = m.col_idx();
  Matrix gram(m.cols(), m.cols());
  // C += rowᵀ row for every sparse row: each row contributes the outer
  // product of its nonzeros. Only the upper triangle is accumulated, then
  // mirrored.
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t a = row_ptr[i]; a < row_ptr[i + 1]; ++a) {
      const size_t ja = col_idx[a];
      const double va = v[a];
      for (size_t b = a; b < row_ptr[i + 1]; ++b) {
        gram(ja, col_idx[b]) += va * v[b];
      }
    }
  }
  for (size_t i = 0; i < gram.rows(); ++i) {
    for (size_t j = 0; j < i; ++j) gram(i, j) = gram(j, i);
  }
  return gram;
}

IntervalMatrix SparseGramOperator::DenseGramEndpoints(
    const SparseIntervalMatrix& m) {
  const std::vector<double>& lo = m.lower_values();
  const std::vector<double>& hi = m.upper_values();
  const std::vector<size_t>& row_ptr = m.row_ptr();
  const std::vector<size_t>& col_idx = m.col_idx();
  const size_t dim = m.cols();

  // Accumulate the four products; G_lh(i, j) = Σ_k M_*(k, i) M^*(k, j) is
  // the only asymmetric one (G_hl is its transpose), so three accumulators
  // suffice. Summation runs over rows k in ascending order, matching the
  // dense matmul term order, so the result agrees with IntervalMatMul to
  // roundoff-free identity on shared entries.
  Matrix g_ll(dim, dim);
  Matrix g_hh(dim, dim);
  Matrix g_lh(dim, dim);
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t a = row_ptr[i]; a < row_ptr[i + 1]; ++a) {
      const size_t ja = col_idx[a];
      for (size_t b = a; b < row_ptr[i + 1]; ++b) {
        const size_t jb = col_idx[b];
        g_ll(ja, jb) += lo[a] * lo[b];
        g_hh(ja, jb) += hi[a] * hi[b];
      }
      for (size_t b = row_ptr[i]; b < row_ptr[i + 1]; ++b) {
        g_lh(ja, col_idx[b]) += lo[a] * hi[b];
      }
    }
  }
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < i; ++j) {
      g_ll(i, j) = g_ll(j, i);
      g_hh(i, j) = g_hh(j, i);
    }
  }

  Matrix gram_lo(dim, dim);
  Matrix gram_hi(dim, dim);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      const double v1 = g_ll(i, j);
      const double v2 = g_lh(i, j);   // M_*ᵀ M^*
      const double v3 = g_lh(j, i);   // M^*ᵀ M_*
      const double v4 = g_hh(i, j);
      gram_lo(i, j) = std::min(std::min(v1, v2), std::min(v3, v4));
      gram_hi(i, j) = std::max(std::max(v1, v2), std::max(v3, v4));
    }
  }
  return IntervalMatrix(std::move(gram_lo), std::move(gram_hi));
}

}  // namespace ivmf
