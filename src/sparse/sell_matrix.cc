#include "sparse/sell_matrix.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "base/check.h"
#include "base/parallel.h"

namespace ivmf {

using spk::kSellC;
using spk::kSellPadRow;

SellPack::SellPack(size_t rows, size_t cols,
                   const std::vector<size_t>& row_ptr,
                   const std::vector<size_t>& col_idx,
                   const std::vector<double>& lo,
                   const std::vector<double>& hi, size_t sigma)
    : rows_(rows), cols_(cols), nnz_(col_idx.size()) {
  IVMF_CHECK_MSG(cols <= std::numeric_limits<uint32_t>::max(),
                 "SELL pack uses 32-bit column indices");
  use_avx2_ = spk::Avx2Supported();

  // Sort rows by descending length within sigma-row windows; the chunk
  // grouping then pads each chunk only to its local maximum.
  std::vector<size_t> order(rows);
  std::iota(order.begin(), order.end(), 0);
  const auto row_len = [&](size_t r) { return row_ptr[r + 1] - row_ptr[r]; };
  if (sigma > kSellC) {
    for (size_t w = 0; w < rows; w += sigma) {
      const size_t w_end = std::min(rows, w + sigma);
      std::stable_sort(order.begin() + static_cast<ptrdiff_t>(w),
                       order.begin() + static_cast<ptrdiff_t>(w_end),
                       [&](size_t a, size_t b) { return row_len(a) > row_len(b); });
    }
  }

  const size_t chunks = (rows + kSellC - 1) / kSellC;
  chunk_ptr_.assign(chunks + 1, 0);
  perm_.assign(chunks * kSellC, kSellPadRow);
  for (size_t c = 0; c < chunks; ++c) {
    size_t max_len = 0;
    for (size_t l = 0; l < kSellC; ++l) {
      const size_t p = c * kSellC + l;
      if (p >= rows) break;
      perm_[p] = order[p];
      max_len = std::max(max_len, row_len(order[p]));
    }
    chunk_ptr_[c + 1] = chunk_ptr_[c] + max_len * kSellC;
  }

  // Scatter entries slice-major; padded slots keep column 0 / value 0 so a
  // gather stays in bounds and contributes an exact zero term.
  col_.assign(chunk_ptr_[chunks], 0);
  lo_.assign(chunk_ptr_[chunks], 0.0);
  hi_.assign(chunk_ptr_[chunks], 0.0);
  for (size_t c = 0; c < chunks; ++c) {
    for (size_t l = 0; l < kSellC; ++l) {
      const size_t r = perm_[c * kSellC + l];
      if (r == kSellPadRow) continue;
      const size_t len = row_len(r);
      for (size_t s = 0; s < len; ++s) {
        const size_t dst = chunk_ptr_[c] + s * kSellC + l;
        const size_t src = row_ptr[r] + s;
        col_[dst] = static_cast<uint32_t>(col_idx[src]);
        lo_[dst] = lo[src];
        hi_[dst] = hi[src];
      }
    }
  }
}

template <typename ChunkFn>
void SellPack::ForChunkBlocks(ChunkFn&& fn) const {
  // 64 chunks = 256 rows per task, matching the CSR kernels' row blocking.
  constexpr size_t kChunkBlock = 64;
  const size_t n = chunks();
  const size_t blocks = (n + kChunkBlock - 1) / kChunkBlock;
  ParallelFor(
      0, blocks,
      [&](size_t b) {
        const size_t begin = b * kChunkBlock;
        fn(begin, std::min(n, begin + kChunkBlock));
      },
      /*max_threads=*/0, /*min_items_per_thread=*/2);
}

void SellPack::MatVec(bool upper, const double* x, double* y) const {
  const double* v = upper ? hi_.data() : lo_.data();
  const spk::SellView view = View();
  ForChunkBlocks([&](size_t begin, size_t end) {
    if (use_avx2_) {
      spk::SellMatVecAvx2(view, v, x, y, begin, end);
    } else {
      spk::SellMatVecScalar(view, v, x, y, begin, end);
    }
  });
}

void SellPack::MatVecMid(const double* x, double* y) const {
  const spk::SellView view = View();
  ForChunkBlocks([&](size_t begin, size_t end) {
    if (use_avx2_) {
      spk::SellMatVecMidAvx2(view, lo_.data(), hi_.data(), x, y, begin, end);
    } else {
      spk::SellMatVecMidScalar(view, lo_.data(), hi_.data(), x, y, begin, end);
    }
  });
}

void SellPack::MatVecBoth(const double* x, double* y_lo, double* y_hi) const {
  const spk::SellView view = View();
  ForChunkBlocks([&](size_t begin, size_t end) {
    if (use_avx2_) {
      spk::SellMatVecBothAvx2(view, lo_.data(), hi_.data(), x, y_lo, y_hi,
                              begin, end);
    } else {
      spk::SellMatVecBothScalar(view, lo_.data(), hi_.data(), x, y_lo, y_hi,
                                begin, end);
    }
  });
}

}  // namespace ivmf
