#include "sparse/sparse_interval_matrix.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "base/parallel.h"
#include "obs/metrics.h"

namespace ivmf {

namespace {

// One counter triple per (kernel, variant). The references are
// function-local statics at each call site, so the registry mutex is
// touched once per kernel for the process lifetime; the per-call cost is
// three relaxed adds.
struct KernelCounters {
  obs::Counter& calls;
  obs::Counter& rows;
  obs::Counter& nnz;

  KernelCounters(const char* kernel, const char* variant)
      : calls(obs::MetricsRegistry::Global().GetCounter(
            "sparse.matvec.calls",
            {{"kernel", kernel}, {"variant", variant}})),
        rows(obs::MetricsRegistry::Global().GetCounter(
            "sparse.matvec.rows", {{"kernel", kernel}, {"variant", variant}})),
        nnz(obs::MetricsRegistry::Global().GetCounter(
            "sparse.matvec.nnz", {{"kernel", kernel}, {"variant", variant}})) {
  }

  void Count(size_t rows_processed, size_t nnz_processed) {
    calls.Add(1);
    rows.Add(rows_processed);
    nnz.Add(nnz_processed);
  }
};

// The counter triples of one kernel across the three dispatchable variants,
// indexed by the backend that actually runs a call.
struct VariantCounters {
  KernelCounters scalar;
  KernelCounters avx2;
  KernelCounters sell;

  explicit VariantCounters(const char* kernel)
      : scalar(kernel, "scalar"), avx2(kernel, "avx2"), sell(kernel, "sell") {}

  KernelCounters& For(spk::Backend resolved) {
    switch (resolved) {
      case spk::Backend::kAvx2:
        return avx2;
      case spk::Backend::kSell:
        return sell;
      default:
        return scalar;
    }
  }
};

// Partitions rows [0, rows) into fixed-size blocks handed to fn(begin, end)
// — possibly in parallel, with at least `min_rows` rows per worker. The
// blocking (not the thread count) fixes each kernel's association order,
// so results are bit-stable across calls.
template <typename Fn>
void ForRowBlocks(size_t rows, size_t min_rows, Fn&& fn) {
  constexpr size_t kRowBlock = 256;
  const size_t blocks = (rows + kRowBlock - 1) / kRowBlock;
  const size_t min_blocks = (min_rows + kRowBlock - 1) / kRowBlock;
  ParallelFor(
      0, blocks,
      [&](size_t b) {
        const size_t begin = b * kRowBlock;
        fn(begin, std::min(rows, begin + kRowBlock));
      },
      /*max_threads=*/0,
      /*min_items_per_thread=*/min_blocks > 0 ? min_blocks : 1);
}

}  // namespace

SparseIntervalMatrix SparseIntervalMatrix::FromTriplets(
    size_t rows, size_t cols, std::vector<IntervalTriplet> triplets,
    DuplicatePolicy duplicates) {
  for (const IntervalTriplet& t : triplets) {
    IVMF_CHECK_MSG(t.row < rows && t.col < cols,
                   "triplet index outside the matrix shape");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const IntervalTriplet& a, const IntervalTriplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseIntervalMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.lo_.reserve(triplets.size());
  m.hi_.reserve(triplets.size());

  for (size_t k = 0; k < triplets.size(); ++k) {
    const IntervalTriplet& t = triplets[k];
    if (!m.col_idx_.empty() && k > 0 && triplets[k - 1].row == t.row &&
        triplets[k - 1].col == t.col) {
      IVMF_CHECK_MSG(duplicates == DuplicatePolicy::kMergeHull,
                     "duplicate cell in triplets (DuplicatePolicy::kReject)");
      // Duplicate coordinate: merge to the interval hull.
      m.lo_.back() = std::min(m.lo_.back(), t.value.lo);
      m.hi_.back() = std::max(m.hi_.back(), t.value.hi);
      continue;
    }
    m.col_idx_.push_back(t.col);
    m.lo_.push_back(t.value.lo);
    m.hi_.push_back(t.value.hi);
    ++m.row_ptr_[t.row + 1];
  }
  for (size_t i = 0; i < rows; ++i) m.row_ptr_[i + 1] += m.row_ptr_[i];
  return m;
}

SparseIntervalMatrix SparseIntervalMatrix::FromCsr(
    size_t rows, size_t cols, std::vector<size_t> row_ptr,
    std::vector<size_t> col_idx, std::vector<double> lo,
    std::vector<double> hi) {
  IVMF_CHECK_MSG(row_ptr.size() == rows + 1, "row_ptr must have rows + 1 offsets");
  IVMF_CHECK_MSG(row_ptr.front() == 0 && row_ptr.back() == col_idx.size(),
                 "row_ptr must span exactly the entry arrays");
  IVMF_CHECK_MSG(lo.size() == col_idx.size() && hi.size() == col_idx.size(),
                 "endpoint arrays must match the pattern size");
  for (size_t i = 0; i < rows; ++i) {
    IVMF_CHECK_MSG(row_ptr[i] <= row_ptr[i + 1], "row_ptr must be monotone");
    for (size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      IVMF_CHECK_MSG(col_idx[k] < cols, "column index outside the shape");
      IVMF_CHECK_MSG(k == row_ptr[i] || col_idx[k - 1] < col_idx[k],
                     "columns must be ascending and unique within a row");
    }
  }
  SparseIntervalMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.lo_ = std::move(lo);
  m.hi_ = std::move(hi);
  return m;
}

SparseIntervalMatrix SparseIntervalMatrix::FromDense(
    const IntervalMatrix& dense, double tol) {
  SparseIntervalMatrix m;
  m.rows_ = dense.rows();
  m.cols_ = dense.cols();
  m.row_ptr_.assign(m.rows_ + 1, 0);
  for (size_t i = 0; i < m.rows_; ++i) {
    for (size_t j = 0; j < m.cols_; ++j) {
      const double lo = dense.lower()(i, j);
      const double hi = dense.upper()(i, j);
      if (std::abs(lo) <= tol && std::abs(hi) <= tol) continue;
      m.col_idx_.push_back(j);
      m.lo_.push_back(lo);
      m.hi_.push_back(hi);
      ++m.row_ptr_[i + 1];
    }
  }
  for (size_t i = 0; i < m.rows_; ++i) m.row_ptr_[i + 1] += m.row_ptr_[i];
  return m;
}

double SparseIntervalMatrix::FillFraction() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

Interval SparseIntervalMatrix::At(size_t i, size_t j) const {
  IVMF_DCHECK(i < rows_ && j < cols_);
  const auto begin = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[i]);
  const auto end = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return Interval();
  const size_t k = static_cast<size_t>(it - col_idx_.begin());
  return Interval(lo_[k], hi_[k]);
}

IntervalMatrix SparseIntervalMatrix::ToDense() const {
  IntervalMatrix dense(rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      dense.Set(i, col_idx_[k], Interval(lo_[k], hi_[k]));
    }
  }
  return dense;
}

std::vector<IntervalTriplet> SparseIntervalMatrix::ToTriplets() const {
  std::vector<IntervalTriplet> triplets;
  triplets.reserve(nnz());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      triplets.push_back({i, col_idx_[k], Interval(lo_[k], hi_[k])});
    }
  }
  return triplets;
}

SparseIntervalMatrix SparseIntervalMatrix::Transpose() const {
  SparseIntervalMatrix t;
  t.kernel_ = kernel_;  // backend selection follows the matrix
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  t.col_idx_.resize(nnz());
  t.lo_.resize(nnz());
  t.hi_.resize(nnz());

  // Counting sort by column: histogram, prefix-sum, scatter.
  for (size_t k = 0; k < col_idx_.size(); ++k) ++t.row_ptr_[col_idx_[k] + 1];
  for (size_t j = 0; j < cols_; ++j) t.row_ptr_[j + 1] += t.row_ptr_[j];
  std::vector<size_t> next(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const size_t dst = next[col_idx_[k]]++;
      t.col_idx_[dst] = i;
      t.lo_[dst] = lo_[k];
      t.hi_[dst] = hi_[k];
    }
  }
  return t;
}

bool SparseIntervalMatrix::IsProper() const {
  for (size_t k = 0; k < lo_.size(); ++k) {
    if (lo_[k] > hi_[k]) return false;
  }
  return true;
}

bool SparseIntervalMatrix::IsNonNegative(double tol) const {
  for (const double lo : lo_) {
    if (lo < -tol) return false;
  }
  return true;
}

spk::Backend SparseIntervalMatrix::ResolvedKernel() const {
  if (kernel_ != spk::Backend::kAuto) return kernel_;
  if (spk::EnvBackend() != spk::Backend::kAuto) return kernel_;
  if (rows_ == 0 || nnz() == 0) return kernel_;
  AutoSlot* slot = auto_.get();
  std::call_once(slot->once, [&] {
    const double mean =
        static_cast<double>(nnz()) / static_cast<double>(rows_);
    double var = 0.0;
    for (size_t i = 0; i < rows_; ++i) {
      const double d =
          static_cast<double>(row_ptr_[i + 1] - row_ptr_[i]) - mean;
      var += d * d;
    }
    const double cv =
        mean > 0.0
            ? std::sqrt(var / static_cast<double>(rows_)) / mean
            : 0.0;
    slot->backend = spk::ChooseAutoBackend(mean, cv, spk::Avx2Supported());
  });
  return slot->backend;
}

const SellPack& SparseIntervalMatrix::EnsureSell() const {
  SellSlot* slot = sell_.get();
  std::call_once(slot->once, [&] {
    slot->pack =
        std::make_unique<const SellPack>(rows_, cols_, row_ptr_, col_idx_,
                                         lo_, hi_);
  });
  return *slot->pack;
}

spk::PackedCsrView SparseIntervalMatrix::PackedView() const {
  PackedSlot* slot = packed_.get();
  // Column indices are < cols_, so they fit u16 exactly when cols_ <= 2^16.
  const bool narrow = cols_ <= (size_t{1} << 16);
  std::call_once(slot->once, [&] {
    if (narrow) {
      slot->col16.resize(col_idx_.size());
      for (size_t k = 0; k < col_idx_.size(); ++k) {
        slot->col16[k] = static_cast<uint16_t>(col_idx_[k]);
      }
    } else {
      slot->col32.resize(col_idx_.size());
      for (size_t k = 0; k < col_idx_.size(); ++k) {
        slot->col32[k] = static_cast<uint32_t>(col_idx_[k]);
      }
    }
  });
  spk::PackedCsrView view;
  view.rows = rows_;
  view.cols = cols_;
  view.row_ptr = row_ptr_.data();
  if (narrow) {
    view.col16 = slot->col16.data();
  } else {
    view.col32 = slot->col32.data();
  }
  return view;
}

void SparseIntervalMatrix::Multiply(Endpoint e, const std::vector<double>& x,
                                    std::vector<double>& y) const {
  IVMF_CHECK(x.size() == cols_);
  IVMF_CHECK_MSG(&y != &x, "kernel output must not alias the input");
  const spk::Backend backend = spk::Resolve(ResolvedKernel());
  static VariantCounters counters("multiply");
  counters.For(backend).Count(rows_, nnz());
  const std::vector<double>& v = values(e);
  y.resize(rows_);
  if (backend == spk::Backend::kSell) {
    EnsureSell().MatVec(e == Endpoint::kUpper, x.data(), y.data());
    return;
  }
  // The AVX2 variant runs over the narrow-index sidecar: at 16 bytes/nnz
  // the plain CSR stream saturates single-core bandwidth before the gathers
  // do, so the win comes from shrinking the stream, not just the blocking.
  const spk::CsrView view = View();
  const bool avx2 = backend == spk::Backend::kAvx2;
  const spk::PackedCsrView packed =
      avx2 ? PackedView() : spk::PackedCsrView{};
  ForRowBlocks(rows_, 512, [&](size_t begin, size_t end) {
    if (avx2) {
      spk::MatVecPackedAvx2(packed, v.data(), x.data(), y.data(), begin, end);
    } else {
      spk::MatVecScalar(view, v.data(), x.data(), y.data(), begin, end);
    }
  });
}

void SparseIntervalMatrix::MultiplyMid(const std::vector<double>& x,
                                       std::vector<double>& y) const {
  IVMF_CHECK(x.size() == cols_);
  IVMF_CHECK_MSG(&y != &x, "kernel output must not alias the input");
  const spk::Backend backend = spk::Resolve(ResolvedKernel());
  static VariantCounters counters("multiply_mid");
  counters.For(backend).Count(rows_, nnz());
  y.resize(rows_);
  if (backend == spk::Backend::kSell) {
    EnsureSell().MatVecMid(x.data(), y.data());
    return;
  }
  const spk::CsrView view = View();
  const bool avx2 = backend == spk::Backend::kAvx2;
  const spk::PackedCsrView packed =
      avx2 ? PackedView() : spk::PackedCsrView{};
  ForRowBlocks(rows_, 512, [&](size_t begin, size_t end) {
    if (avx2) {
      spk::MatVecMidPackedAvx2(packed, lo_.data(), hi_.data(), x.data(),
                               y.data(), begin, end);
    } else {
      spk::MatVecMidScalar(view, lo_.data(), hi_.data(), x.data(), y.data(),
                           begin, end);
    }
  });
}

void SparseIntervalMatrix::MultiplyBoth(const std::vector<double>& x,
                                        std::vector<double>& y_lo,
                                        std::vector<double>& y_hi) const {
  IVMF_CHECK(x.size() == cols_);
  IVMF_CHECK_MSG(&y_lo != &x && &y_hi != &x,
                 "kernel output must not alias the input");
  IVMF_CHECK_MSG(&y_lo != &y_hi, "endpoint outputs must be distinct");
  const spk::Backend backend = spk::Resolve(ResolvedKernel());
  static VariantCounters counters("multiply_both");
  counters.For(backend).Count(rows_, nnz());
  y_lo.resize(rows_);
  y_hi.resize(rows_);
  if (backend == spk::Backend::kSell) {
    EnsureSell().MatVecBoth(x.data(), y_lo.data(), y_hi.data());
    return;
  }
  const spk::CsrView view = View();
  const bool avx2 = backend == spk::Backend::kAvx2;
  const spk::PackedCsrView packed =
      avx2 ? PackedView() : spk::PackedCsrView{};
  ForRowBlocks(rows_, 512, [&](size_t begin, size_t end) {
    if (avx2) {
      spk::MatVecBothPackedAvx2(packed, lo_.data(), hi_.data(), x.data(),
                                y_lo.data(), y_hi.data(), begin, end);
    } else {
      spk::MatVecBothScalar(view, lo_.data(), hi_.data(), x.data(),
                            y_lo.data(), y_hi.data(), begin, end);
    }
  });
}

void SparseIntervalMatrix::MultiplyPair(const std::vector<double>& x_lo,
                                        const std::vector<double>& x_hi,
                                        std::vector<double>& y_lo,
                                        std::vector<double>& y_hi) const {
  IVMF_CHECK(x_lo.size() == cols_ && x_hi.size() == cols_);
  IVMF_CHECK_MSG(&y_lo != &x_lo && &y_lo != &x_hi && &y_hi != &x_lo &&
                     &y_hi != &x_hi,
                 "kernel output must not alias an input");
  IVMF_CHECK_MSG(&y_lo != &y_hi, "endpoint outputs must be distinct");
  // SELL does not cover the two-input pair; use the dispatched CSR variant.
  const spk::Backend backend = spk::CsrVariant(ResolvedKernel());
  static VariantCounters counters("multiply_pair");
  counters.For(backend).Count(rows_, nnz());
  y_lo.resize(rows_);
  y_hi.resize(rows_);
  const spk::CsrView view = View();
  const bool avx2 = backend == spk::Backend::kAvx2;
  const spk::PackedCsrView packed =
      avx2 ? PackedView() : spk::PackedCsrView{};
  ForRowBlocks(rows_, 512, [&](size_t begin, size_t end) {
    if (avx2) {
      spk::MatVecPairPackedAvx2(packed, lo_.data(), hi_.data(), x_lo.data(),
                                x_hi.data(), y_lo.data(), y_hi.data(), begin,
                                end);
    } else {
      spk::MatVecPairScalar(view, lo_.data(), hi_.data(), x_lo.data(),
                            x_hi.data(), y_lo.data(), y_hi.data(), begin,
                            end);
    }
  });
}

void SparseIntervalMatrix::MultiplyTranspose(Endpoint e,
                                             const std::vector<double>& x,
                                             std::vector<double>& y) const {
  IVMF_CHECK(x.size() == rows_);
  IVMF_CHECK_MSG(&y != &x, "kernel output must not alias the input");
  // SELL stores the forward pattern only; the scatter falls back to the
  // dispatched CSR variant (AVX2 register-blocks the multiply — no scatter
  // instruction exists pre-AVX512, so stores stay scalar).
  const spk::Backend backend = spk::CsrVariant(ResolvedKernel());
  static VariantCounters counters("multiply_transpose");
  counters.For(backend).Count(rows_, nnz());
  const std::vector<double>& v = values(e);
  const spk::CsrView view = View();
  const auto scatter = [&](double* out, size_t begin, size_t end) {
    if (backend == spk::Backend::kAvx2) {
      spk::MatVecTAvx2(view, v.data(), x.data(), out, begin, end);
    } else {
      spk::MatVecTScalar(view, v.data(), x.data(), out, begin, end);
    }
  };

  // Each worker scatters its block of rows into a private accumulator, then
  // the accumulators reduce column-parallel in fixed block order. The
  // partitioning depends only on the shape and hardware concurrency, so
  // repeated calls are bit-identical.
  constexpr size_t kMinRowsPerThread = 2048;
  size_t threads = SuggestedThreads(rows_);
  const size_t cap = (rows_ + kMinRowsPerThread - 1) / kMinRowsPerThread;
  if (threads > cap) threads = cap;
  if (threads <= 1) {
    y.assign(cols_, 0.0);
    scatter(y.data(), 0, rows_);
    return;
  }

  std::vector<std::vector<double>> partials(threads);
  const size_t chunk = (rows_ + threads - 1) / threads;
  ParallelFor(
      0, threads,
      [&](size_t t) {
        std::vector<double>& part = partials[t];
        part.assign(cols_, 0.0);
        const size_t row_begin = t * chunk;
        const size_t row_end = std::min(rows_, row_begin + chunk);
        scatter(part.data(), row_begin, row_end);
      },
      /*max_threads=*/threads);
  y.resize(cols_);
  ParallelFor(
      0, cols_,
      [&](size_t j) {
        double sum = 0.0;
        for (size_t t = 0; t < partials.size(); ++t) sum += partials[t][j];
        y[j] = sum;
      },
      /*max_threads=*/0, /*min_items_per_thread=*/4096);
}

void SparseIntervalMatrix::GramMultiply(Endpoint e,
                                        const std::vector<double>& x,
                                        std::vector<double>& y) const {
  IVMF_CHECK(x.size() == cols_);
  IVMF_CHECK_MSG(&y != &x, "kernel output must not alias the input");
  // One pass over the pattern: each row's dot against x scatters back scaled
  // by the row values while the row is cache-hot — half the memory traffic
  // of Multiply + MultiplyTranspose. SELL stores forward-matvec kernels
  // only, so the fused form uses the dispatched CSR variant.
  const spk::Backend backend = spk::CsrVariant(ResolvedKernel());
  static VariantCounters counters("gram_fused");
  counters.For(backend).Count(rows_, nnz());
  const std::vector<double>& v = values(e);
  const spk::CsrView view = View();
  const bool avx2 = backend == spk::Backend::kAvx2;
  const spk::PackedCsrView packed =
      avx2 ? PackedView() : spk::PackedCsrView{};
  const auto fused = [&](double* out, size_t begin, size_t end) {
    if (avx2) {
      spk::GramFusedPackedAvx2(packed, v.data(), x.data(), out, begin, end);
    } else {
      spk::GramFusedScalar(view, v.data(), x.data(), out, begin, end);
    }
  };

  // Same deterministic partition + reduction scheme as MultiplyTranspose:
  // the scatter accumulates, so workers need private output accumulators.
  constexpr size_t kMinRowsPerThread = 2048;
  size_t threads = SuggestedThreads(rows_);
  const size_t cap = (rows_ + kMinRowsPerThread - 1) / kMinRowsPerThread;
  if (threads > cap) threads = cap;
  if (threads <= 1) {
    y.assign(cols_, 0.0);
    fused(y.data(), 0, rows_);
    return;
  }

  std::vector<std::vector<double>> partials(threads);
  const size_t chunk = (rows_ + threads - 1) / threads;
  ParallelFor(
      0, threads,
      [&](size_t t) {
        std::vector<double>& part = partials[t];
        part.assign(cols_, 0.0);
        const size_t row_begin = t * chunk;
        const size_t row_end = std::min(rows_, row_begin + chunk);
        fused(part.data(), row_begin, row_end);
      },
      /*max_threads=*/threads);
  y.resize(cols_);
  ParallelFor(
      0, cols_,
      [&](size_t j) {
        double sum = 0.0;
        for (size_t t = 0; t < partials.size(); ++t) sum += partials[t][j];
        y[j] = sum;
      },
      /*max_threads=*/0, /*min_items_per_thread=*/4096);
}

void SparseIntervalMatrix::GramMultiplyBoth(const std::vector<double>& x,
                                            std::vector<double>& y_lo,
                                            std::vector<double>& y_hi) const {
  IVMF_CHECK(x.size() == cols_);
  IVMF_CHECK_MSG(&y_lo != &x && &y_hi != &x,
                 "kernel output must not alias the input");
  IVMF_CHECK_MSG(&y_lo != &y_hi, "endpoint outputs must be distinct");
  const spk::Backend backend = spk::CsrVariant(ResolvedKernel());
  static VariantCounters counters("gram_fused_both");
  counters.For(backend).Count(rows_, nnz());
  const spk::CsrView view = View();
  const bool avx2 = backend == spk::Backend::kAvx2;
  const spk::PackedCsrView packed =
      avx2 ? PackedView() : spk::PackedCsrView{};
  const auto fused = [&](double* out_lo, double* out_hi, size_t begin,
                         size_t end) {
    if (avx2) {
      spk::GramFusedBothPackedAvx2(packed, lo_.data(), hi_.data(), x.data(),
                                   out_lo, out_hi, begin, end);
    } else {
      spk::GramFusedBothScalar(view, lo_.data(), hi_.data(), x.data(), out_lo,
                               out_hi, begin, end);
    }
  };

  constexpr size_t kMinRowsPerThread = 2048;
  size_t threads = SuggestedThreads(rows_);
  const size_t cap = (rows_ + kMinRowsPerThread - 1) / kMinRowsPerThread;
  if (threads > cap) threads = cap;
  if (threads <= 1) {
    y_lo.assign(cols_, 0.0);
    y_hi.assign(cols_, 0.0);
    fused(y_lo.data(), y_hi.data(), 0, rows_);
    return;
  }

  std::vector<std::vector<double>> partials_lo(threads);
  std::vector<std::vector<double>> partials_hi(threads);
  const size_t chunk = (rows_ + threads - 1) / threads;
  ParallelFor(
      0, threads,
      [&](size_t t) {
        partials_lo[t].assign(cols_, 0.0);
        partials_hi[t].assign(cols_, 0.0);
        const size_t row_begin = t * chunk;
        const size_t row_end = std::min(rows_, row_begin + chunk);
        fused(partials_lo[t].data(), partials_hi[t].data(), row_begin,
              row_end);
      },
      /*max_threads=*/threads);
  y_lo.resize(cols_);
  y_hi.resize(cols_);
  ParallelFor(
      0, cols_,
      [&](size_t j) {
        double sum_lo = 0.0;
        double sum_hi = 0.0;
        for (size_t t = 0; t < partials_lo.size(); ++t) {
          sum_lo += partials_lo[t][j];
          sum_hi += partials_hi[t][j];
        }
        y_lo[j] = sum_lo;
        y_hi[j] = sum_hi;
      },
      /*max_threads=*/0, /*min_items_per_thread=*/4096);
}

Matrix SparseIntervalMatrix::MultiplyDense(Endpoint e, const Matrix& b) const {
  IVMF_CHECK_MSG(b.rows() == cols_, "sparse x dense dimension mismatch");
  // Guard the degenerate operand before touching storage: a zero-column B
  // has no data, so the kernels must not be handed its (null) base pointer.
  if (b.cols() == 0 || rows_ == 0) return Matrix(rows_, b.cols());
  // SELL stores matvec-shaped kernels only; dense products use the
  // dispatched CSR variant (vectorized across the dense columns).
  const spk::Backend backend = spk::CsrVariant(ResolvedKernel());
  static VariantCounters counters("multiply_dense");
  counters.For(backend).Count(rows_, nnz());
  const std::vector<double>& v = values(e);
  const spk::CsrView view = View();
  Matrix c(rows_, b.cols());
  ForRowBlocks(rows_, 64, [&](size_t begin, size_t end) {
    if (backend == spk::Backend::kAvx2) {
      spk::MatDenseAvx2(view, v.data(), b.data(), b.cols(), c.data(), begin,
                        end);
    } else {
      spk::MatDenseScalar(view, v.data(), b.data(), b.cols(), c.data(), begin,
                          end);
    }
  });
  return c;
}

IntervalMatrix SparseIntervalMatrix::IntervalMultiplyDense(
    const Matrix& b) const {
  IVMF_CHECK_MSG(b.rows() == cols_, "sparse x dense dimension mismatch");
  // Same construction as the dense IntervalMatMul(A†, scalar B): elementwise
  // min / max over the two full endpoint products — computed fused, one
  // pattern pass feeding both endpoint accumulations.
  Matrix p_lo(rows_, b.cols());
  Matrix p_hi(rows_, b.cols());
  if (b.cols() > 0 && rows_ > 0) {
    const spk::Backend backend = spk::CsrVariant(ResolvedKernel());
    static VariantCounters counters("multiply_dense_both");
    counters.For(backend).Count(rows_, nnz());
    const spk::CsrView view = View();
    ForRowBlocks(rows_, 64, [&](size_t begin, size_t end) {
      if (backend == spk::Backend::kAvx2) {
        spk::MatDenseBothAvx2(view, lo_.data(), hi_.data(), b.data(),
                              b.cols(), p_lo.data(), p_hi.data(), begin, end);
      } else {
        spk::MatDenseBothScalar(view, lo_.data(), hi_.data(), b.data(),
                                b.cols(), p_lo.data(), p_hi.data(), begin,
                                end);
      }
    });
  }
  Matrix lo(p_lo.rows(), p_lo.cols());
  Matrix hi(p_lo.rows(), p_lo.cols());
  for (size_t i = 0; i < lo.rows(); ++i) {
    for (size_t j = 0; j < lo.cols(); ++j) {
      lo(i, j) = std::min(p_lo(i, j), p_hi(i, j));
      hi(i, j) = std::max(p_lo(i, j), p_hi(i, j));
    }
  }
  return IntervalMatrix(std::move(lo), std::move(hi));
}

std::vector<double> SparseIntervalMatrix::RowNorms(Endpoint e) const {
  const std::vector<double>& v = values(e);
  std::vector<double> norms(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) sum += v[k] * v[k];
    norms[i] = std::sqrt(sum);
  }
  return norms;
}

std::vector<double> SparseIntervalMatrix::ColNorms(Endpoint e) const {
  const std::vector<double>& v = values(e);
  std::vector<double> sums(cols_, 0.0);
  for (size_t k = 0; k < col_idx_.size(); ++k) {
    sums[col_idx_[k]] += v[k] * v[k];
  }
  for (double& s : sums) s = std::sqrt(s);
  return sums;
}

}  // namespace ivmf
