#include "sparse/sparse_interval_matrix.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "base/parallel.h"
#include "obs/metrics.h"

namespace ivmf {

namespace {

// One counter triple per kernel variant. The references are function-local
// statics at each call site, so the registry mutex is touched once per
// kernel for the process lifetime; the per-call cost is three relaxed adds.
struct KernelCounters {
  obs::Counter& calls;
  obs::Counter& rows;
  obs::Counter& nnz;

  explicit KernelCounters(const char* kernel)
      : calls(obs::MetricsRegistry::Global().GetCounter(
            "sparse.matvec.calls", {{"kernel", kernel}})),
        rows(obs::MetricsRegistry::Global().GetCounter(
            "sparse.matvec.rows", {{"kernel", kernel}})),
        nnz(obs::MetricsRegistry::Global().GetCounter(
            "sparse.matvec.nnz", {{"kernel", kernel}})) {}

  void Count(size_t rows_processed, size_t nnz_processed) {
    calls.Add(1);
    rows.Add(rows_processed);
    nnz.Add(nnz_processed);
  }
};

}  // namespace

SparseIntervalMatrix SparseIntervalMatrix::FromTriplets(
    size_t rows, size_t cols, std::vector<IntervalTriplet> triplets,
    DuplicatePolicy duplicates) {
  for (const IntervalTriplet& t : triplets) {
    IVMF_CHECK_MSG(t.row < rows && t.col < cols,
                   "triplet index outside the matrix shape");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const IntervalTriplet& a, const IntervalTriplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseIntervalMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.lo_.reserve(triplets.size());
  m.hi_.reserve(triplets.size());

  for (size_t k = 0; k < triplets.size(); ++k) {
    const IntervalTriplet& t = triplets[k];
    if (!m.col_idx_.empty() && k > 0 && triplets[k - 1].row == t.row &&
        triplets[k - 1].col == t.col) {
      IVMF_CHECK_MSG(duplicates == DuplicatePolicy::kMergeHull,
                     "duplicate cell in triplets (DuplicatePolicy::kReject)");
      // Duplicate coordinate: merge to the interval hull.
      m.lo_.back() = std::min(m.lo_.back(), t.value.lo);
      m.hi_.back() = std::max(m.hi_.back(), t.value.hi);
      continue;
    }
    m.col_idx_.push_back(t.col);
    m.lo_.push_back(t.value.lo);
    m.hi_.push_back(t.value.hi);
    ++m.row_ptr_[t.row + 1];
  }
  for (size_t i = 0; i < rows; ++i) m.row_ptr_[i + 1] += m.row_ptr_[i];
  return m;
}

SparseIntervalMatrix SparseIntervalMatrix::FromCsr(
    size_t rows, size_t cols, std::vector<size_t> row_ptr,
    std::vector<size_t> col_idx, std::vector<double> lo,
    std::vector<double> hi) {
  IVMF_CHECK_MSG(row_ptr.size() == rows + 1, "row_ptr must have rows + 1 offsets");
  IVMF_CHECK_MSG(row_ptr.front() == 0 && row_ptr.back() == col_idx.size(),
                 "row_ptr must span exactly the entry arrays");
  IVMF_CHECK_MSG(lo.size() == col_idx.size() && hi.size() == col_idx.size(),
                 "endpoint arrays must match the pattern size");
  for (size_t i = 0; i < rows; ++i) {
    IVMF_CHECK_MSG(row_ptr[i] <= row_ptr[i + 1], "row_ptr must be monotone");
    for (size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      IVMF_CHECK_MSG(col_idx[k] < cols, "column index outside the shape");
      IVMF_CHECK_MSG(k == row_ptr[i] || col_idx[k - 1] < col_idx[k],
                     "columns must be ascending and unique within a row");
    }
  }
  SparseIntervalMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.lo_ = std::move(lo);
  m.hi_ = std::move(hi);
  return m;
}

SparseIntervalMatrix SparseIntervalMatrix::FromDense(
    const IntervalMatrix& dense, double tol) {
  SparseIntervalMatrix m;
  m.rows_ = dense.rows();
  m.cols_ = dense.cols();
  m.row_ptr_.assign(m.rows_ + 1, 0);
  for (size_t i = 0; i < m.rows_; ++i) {
    for (size_t j = 0; j < m.cols_; ++j) {
      const double lo = dense.lower()(i, j);
      const double hi = dense.upper()(i, j);
      if (std::abs(lo) <= tol && std::abs(hi) <= tol) continue;
      m.col_idx_.push_back(j);
      m.lo_.push_back(lo);
      m.hi_.push_back(hi);
      ++m.row_ptr_[i + 1];
    }
  }
  for (size_t i = 0; i < m.rows_; ++i) m.row_ptr_[i + 1] += m.row_ptr_[i];
  return m;
}

double SparseIntervalMatrix::FillFraction() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

Interval SparseIntervalMatrix::At(size_t i, size_t j) const {
  IVMF_DCHECK(i < rows_ && j < cols_);
  const auto begin = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[i]);
  const auto end = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return Interval();
  const size_t k = static_cast<size_t>(it - col_idx_.begin());
  return Interval(lo_[k], hi_[k]);
}

IntervalMatrix SparseIntervalMatrix::ToDense() const {
  IntervalMatrix dense(rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      dense.Set(i, col_idx_[k], Interval(lo_[k], hi_[k]));
    }
  }
  return dense;
}

std::vector<IntervalTriplet> SparseIntervalMatrix::ToTriplets() const {
  std::vector<IntervalTriplet> triplets;
  triplets.reserve(nnz());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      triplets.push_back({i, col_idx_[k], Interval(lo_[k], hi_[k])});
    }
  }
  return triplets;
}

SparseIntervalMatrix SparseIntervalMatrix::Transpose() const {
  SparseIntervalMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  t.col_idx_.resize(nnz());
  t.lo_.resize(nnz());
  t.hi_.resize(nnz());

  // Counting sort by column: histogram, prefix-sum, scatter.
  for (size_t k = 0; k < col_idx_.size(); ++k) ++t.row_ptr_[col_idx_[k] + 1];
  for (size_t j = 0; j < cols_; ++j) t.row_ptr_[j + 1] += t.row_ptr_[j];
  std::vector<size_t> next(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const size_t dst = next[col_idx_[k]]++;
      t.col_idx_[dst] = i;
      t.lo_[dst] = lo_[k];
      t.hi_[dst] = hi_[k];
    }
  }
  return t;
}

bool SparseIntervalMatrix::IsProper() const {
  for (size_t k = 0; k < lo_.size(); ++k) {
    if (lo_[k] > hi_[k]) return false;
  }
  return true;
}

bool SparseIntervalMatrix::IsNonNegative(double tol) const {
  for (const double lo : lo_) {
    if (lo < -tol) return false;
  }
  return true;
}

void SparseIntervalMatrix::Multiply(Endpoint e, const std::vector<double>& x,
                                    std::vector<double>& y) const {
  IVMF_CHECK(x.size() == cols_);
  static KernelCounters counters("multiply");
  counters.Count(rows_, nnz());
  const std::vector<double>& v = values(e);
  y.resize(rows_);
  ParallelFor(
      0, rows_,
      [&](size_t i) {
        double sum = 0.0;
        for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
          sum += v[k] * x[col_idx_[k]];
        }
        y[i] = sum;
      },
      /*max_threads=*/0, /*min_items_per_thread=*/512);
}

void SparseIntervalMatrix::MultiplyMid(const std::vector<double>& x,
                                       std::vector<double>& y) const {
  IVMF_CHECK(x.size() == cols_);
  static KernelCounters counters("multiply_mid");
  counters.Count(rows_, nnz());
  y.resize(rows_);
  ParallelFor(
      0, rows_,
      [&](size_t i) {
        double sum = 0.0;
        for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
          sum += 0.5 * (lo_[k] + hi_[k]) * x[col_idx_[k]];
        }
        y[i] = sum;
      },
      /*max_threads=*/0, /*min_items_per_thread=*/512);
}

void SparseIntervalMatrix::MultiplyTranspose(Endpoint e,
                                             const std::vector<double>& x,
                                             std::vector<double>& y) const {
  IVMF_CHECK(x.size() == rows_);
  static KernelCounters counters("multiply_transpose");
  counters.Count(rows_, nnz());
  const std::vector<double>& v = values(e);

  // Each worker scatters its block of rows into a private accumulator, then
  // the accumulators reduce column-parallel in fixed block order. The
  // partitioning depends only on the shape and hardware concurrency, so
  // repeated calls are bit-identical.
  constexpr size_t kMinRowsPerThread = 2048;
  size_t threads = SuggestedThreads(rows_);
  const size_t cap = (rows_ + kMinRowsPerThread - 1) / kMinRowsPerThread;
  if (threads > cap) threads = cap;
  if (threads <= 1) {
    y.assign(cols_, 0.0);
    for (size_t i = 0; i < rows_; ++i) {
      const double xi = x[i];
      if (xi == 0.0) continue;
      for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        y[col_idx_[k]] += v[k] * xi;
      }
    }
    return;
  }

  std::vector<std::vector<double>> partials(threads);
  const size_t chunk = (rows_ + threads - 1) / threads;
  ParallelFor(
      0, threads,
      [&](size_t t) {
        std::vector<double>& part = partials[t];
        part.assign(cols_, 0.0);
        const size_t row_begin = t * chunk;
        const size_t row_end = std::min(rows_, row_begin + chunk);
        for (size_t i = row_begin; i < row_end; ++i) {
          const double xi = x[i];
          if (xi == 0.0) continue;
          for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
            part[col_idx_[k]] += v[k] * xi;
          }
        }
      },
      /*max_threads=*/threads);
  y.resize(cols_);
  ParallelFor(
      0, cols_,
      [&](size_t j) {
        double sum = 0.0;
        for (size_t t = 0; t < partials.size(); ++t) sum += partials[t][j];
        y[j] = sum;
      },
      /*max_threads=*/0, /*min_items_per_thread=*/4096);
}

Matrix SparseIntervalMatrix::MultiplyDense(Endpoint e, const Matrix& b) const {
  IVMF_CHECK_MSG(b.rows() == cols_, "sparse x dense dimension mismatch");
  static KernelCounters counters("multiply_dense");
  counters.Count(rows_, nnz());
  const std::vector<double>& v = values(e);
  Matrix c(rows_, b.cols());
  ParallelFor(
      0, rows_,
      [&](size_t i) {
        double* out = c.RowPtr(i);
        for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
          const double* brow = b.RowPtr(col_idx_[k]);
          const double value = v[k];
          for (size_t j = 0; j < b.cols(); ++j) out[j] += value * brow[j];
        }
      },
      /*max_threads=*/0, /*min_items_per_thread=*/64);
  return c;
}

IntervalMatrix SparseIntervalMatrix::IntervalMultiplyDense(
    const Matrix& b) const {
  // Same construction as the dense IntervalMatMul(A†, scalar B): elementwise
  // min / max over the two full endpoint products.
  const Matrix p_lo = MultiplyDense(Endpoint::kLower, b);
  const Matrix p_hi = MultiplyDense(Endpoint::kUpper, b);
  Matrix lo(p_lo.rows(), p_lo.cols());
  Matrix hi(p_lo.rows(), p_lo.cols());
  for (size_t i = 0; i < lo.rows(); ++i) {
    for (size_t j = 0; j < lo.cols(); ++j) {
      lo(i, j) = std::min(p_lo(i, j), p_hi(i, j));
      hi(i, j) = std::max(p_lo(i, j), p_hi(i, j));
    }
  }
  return IntervalMatrix(std::move(lo), std::move(hi));
}

std::vector<double> SparseIntervalMatrix::RowNorms(Endpoint e) const {
  const std::vector<double>& v = values(e);
  std::vector<double> norms(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) sum += v[k] * v[k];
    norms[i] = std::sqrt(sum);
  }
  return norms;
}

std::vector<double> SparseIntervalMatrix::ColNorms(Endpoint e) const {
  const std::vector<double>& v = values(e);
  std::vector<double> sums(cols_, 0.0);
  for (size_t k = 0; k < col_idx_.size(); ++k) {
    sums[col_idx_[k]] += v[k] * v[k];
  }
  for (double& s : sums) s = std::sqrt(s);
  return sums;
}

}  // namespace ivmf
