// Delta-log-plus-compaction storage for growing sparse interval matrices.
//
// The paper's recommender workloads (Section 6.1.3, Figure 10) model rating
// matrices that grow continuously as users rate items. Rebuilding the CSR
// matrix from triplets on every change costs O(nnz log nnz) per rating;
// DynamicSparseIntervalMatrix instead keeps an immutable compacted CSR base
// plus a sorted delta log of arriving / updated cells (the LSM-style
// delta-over-base layout of write-optimized KV stores), so an upsert is
// O(log delta) and the full matrix is only re-materialized when a consumer
// asks for a Snapshot — a single linear merge. When the log grows past a
// threshold relative to the base it is compacted into a fresh base, keeping
// both the merge cost and the log memory bounded.
//
// The shape is fixed at construction: streaming adds and revises cells, it
// does not grow the user/item universe (allocate headroom up front for
// that). Cell semantics are last-write-wins — an upsert replaces the cell's
// interval outright, matching a user revising their rating; callers that
// want hull-merge semantics for repeated observations build the hull before
// upserting (see DuplicatePolicy in sparse_interval_matrix.h for where each
// convention applies).

#ifndef IVMF_SPARSE_DYNAMIC_SPARSE_INTERVAL_MATRIX_H_
#define IVMF_SPARSE_DYNAMIC_SPARSE_INTERVAL_MATRIX_H_

#include <cstddef>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "sparse/sparse_interval_matrix.h"

namespace ivmf {

class DynamicSparseIntervalMatrix {
 public:
  // An empty 0 x 0 matrix (no cell can ever be upserted).
  DynamicSparseIntervalMatrix() = default;

  // An empty rows x cols matrix awaiting arrivals.
  DynamicSparseIntervalMatrix(size_t rows, size_t cols);

  // Starts from an existing compacted matrix (e.g. the historical ratings
  // loaded from triplets) with an empty delta log.
  explicit DynamicSparseIntervalMatrix(SparseIntervalMatrix base);

  size_t rows() const { return base_.rows(); }
  size_t cols() const { return base_.cols(); }

  size_t base_nnz() const { return base_.nnz(); }
  size_t delta_size() const { return delta_.size(); }
  // Distinct explicit cells across base and log (overlaps counted once).
  size_t nnz() const { return base_.nnz() + delta_.size() - overlap_; }

  // Log size relative to the base, the compaction trigger quantity: an
  // empty base with a non-empty log counts as fraction 1.
  double DeltaFraction() const;

  // Effective value of cell (i, j): the log wins over the base; absent
  // cells are the scalar zero interval, as in the compacted form.
  Interval At(size_t i, size_t j) const;

  // Sets cell (i, j) to `value` (insert or in-place revision), returning
  // the previous effective value. O(log delta) plus one O(log row_nnz)
  // base probe for cells not yet in the log.
  Interval Upsert(size_t i, size_t j, Interval value);

  // Upserts every triplet in order (so a duplicated cell inside the batch
  // resolves to the last occurrence, consistent with Upsert).
  void ApplyBatch(const std::vector<IntervalTriplet>& batch);

  // The compacted base (no log entries applied).
  const SparseIntervalMatrix& base() const { return base_; }

  // Materializes the full current matrix: one linear merge of the base rows
  // with the row-major log, O(nnz + delta). The result is a standalone CSR
  // matrix — the decomposition input.
  SparseIntervalMatrix Snapshot() const;

  // Frozen-view handoff for concurrent consumers (the serving layer): the
  // current matrix as an immutable shared CSR snapshot. The merge cost is
  // paid at most once per mutation epoch — repeated calls between mutations
  // return the SAME shared matrix (pointer-equal), so publishing a snapshot
  // per refresh is O(1) when nothing changed and one linear merge otherwise.
  // Writer-side API like every other mutator-adjacent method: the returned
  // view is safe to read from any thread, but SharedSnapshot() itself must
  // be called from the (single) mutating thread.
  std::shared_ptr<const SparseIntervalMatrix> SharedSnapshot();

  // Folds the log into the base (base becomes Snapshot(), log empties).
  void Compact();

  // Compacts when the log exceeds `max_delta_fraction` of the base nnz
  // (so the default 0.25 keeps merge overhead within ~25% of a base scan).
  // Returns true when a compaction ran.
  bool MaybeCompact(double max_delta_fraction);

 private:
  // Whether the base stores cell (i, j) explicitly (even as [0, 0]).
  bool BaseHasCell(size_t i, size_t j) const;

  SparseIntervalMatrix base_;
  // Row-major-ordered log: last-write-wins per cell, merged over the base.
  std::map<std::pair<size_t, size_t>, Interval> delta_;
  // Log entries that shadow an explicit base cell (revisions, not arrivals).
  size_t overlap_ = 0;
  // SharedSnapshot cache; reset by every mutation (Upsert / Compact).
  std::shared_ptr<const SparseIntervalMatrix> frozen_;
};

}  // namespace ivmf

#endif  // IVMF_SPARSE_DYNAMIC_SPARSE_INTERVAL_MATRIX_H_
