#include "sparse/sparse_kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/log.h"

namespace ivmf::spk {

// -- Backend selection -------------------------------------------------------

bool Avx2Compiled() {
#ifdef IVMF_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

bool Avx2Supported() {
#if defined(IVMF_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

bool ParseBackend(std::string_view name, Backend* out) {
  if (name == "scalar") {
    *out = Backend::kScalar;
  } else if (name == "avx2") {
    *out = Backend::kAvx2;
  } else if (name == "sell") {
    *out = Backend::kSell;
  } else if (name == "auto") {
    *out = Backend::kAuto;
  } else {
    return false;
  }
  return true;
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kAuto:
      return "auto";
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kSell:
      return "sell";
  }
  return "unknown";
}

Backend EnvBackend() {
  static const Backend env = [] {
    const char* value = std::getenv("IVMF_SPARSE_KERNEL");
    if (value == nullptr || value[0] == '\0') return Backend::kAuto;
    Backend parsed = Backend::kAuto;
    if (!ParseBackend(value, &parsed)) {
      obs::LogWarn("sparse", "unknown IVMF_SPARSE_KERNEL value; using auto",
                   {{"value", value}, {"want", "scalar|avx2|sell|auto"}});
    }
    return parsed;
  }();
  return env;
}

Backend Resolve(Backend request) {
  if (request == Backend::kAuto) request = EnvBackend();
  switch (request) {
    case Backend::kScalar:
      return Backend::kScalar;
    case Backend::kSell:
      return Backend::kSell;
    case Backend::kAuto:
    case Backend::kAvx2:
      return Avx2Supported() ? Backend::kAvx2 : Backend::kScalar;
  }
  return Backend::kScalar;
}

Backend CsrVariant(Backend backend) {
  const Backend resolved = Resolve(backend);
  if (resolved == Backend::kSell) {
    return Avx2Supported() ? Backend::kAvx2 : Backend::kScalar;
  }
  return resolved;
}

Backend ChooseAutoBackend(double mean_row_nnz, double cv,
                          bool avx2_supported) {
  if (!avx2_supported) return Backend::kScalar;
  if (mean_row_nnz < kSellMeanRowThreshold) return Backend::kSell;
  if (mean_row_nnz < kSellIrregularMeanRowThreshold &&
      cv > kSellIrregularCvThreshold) {
    return Backend::kSell;
  }
  return Backend::kAvx2;
}

// -- CSR reference kernels ---------------------------------------------------

void MatVecScalar(const CsrView& a, const double* v, const double* x,
                  double* y, size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double sum = 0.0;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      sum += v[k] * x[a.col_idx[k]];
    }
    y[i] = sum;
  }
}

void MatVecMidScalar(const CsrView& a, const double* lo, const double* hi,
                     const double* x, double* y, size_t row_begin,
                     size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double sum = 0.0;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      sum += 0.5 * (lo[k] + hi[k]) * x[a.col_idx[k]];
    }
    y[i] = sum;
  }
}

void MatVecBothScalar(const CsrView& a, const double* lo, const double* hi,
                      const double* x, double* y_lo, double* y_hi,
                      size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double sum_lo = 0.0;
    double sum_hi = 0.0;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const double xk = x[a.col_idx[k]];
      sum_lo += lo[k] * xk;
      sum_hi += hi[k] * xk;
    }
    y_lo[i] = sum_lo;
    y_hi[i] = sum_hi;
  }
}

void MatVecPairScalar(const CsrView& a, const double* lo, const double* hi,
                      const double* x_lo, const double* x_hi, double* y_lo,
                      double* y_hi, size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double sum_lo = 0.0;
    double sum_hi = 0.0;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const size_t j = a.col_idx[k];
      sum_lo += lo[k] * x_lo[j];
      sum_hi += hi[k] * x_hi[j];
    }
    y_lo[i] = sum_lo;
    y_hi[i] = sum_hi;
  }
}

void MatVecTScalar(const CsrView& a, const double* v, const double* x,
                   double* y, size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      y[a.col_idx[k]] += v[k] * xi;
    }
  }
}

void MatDenseScalar(const CsrView& a, const double* v, const double* b,
                    size_t bcols, double* c, size_t row_begin,
                    size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double* out = c + i * bcols;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const double* brow = b + a.col_idx[k] * bcols;
      const double value = v[k];
      for (size_t j = 0; j < bcols; ++j) out[j] += value * brow[j];
    }
  }
}

void MatDenseBothScalar(const CsrView& a, const double* lo, const double* hi,
                        const double* b, size_t bcols, double* c_lo,
                        double* c_hi, size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double* out_lo = c_lo + i * bcols;
    double* out_hi = c_hi + i * bcols;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const double* brow = b + a.col_idx[k] * bcols;
      const double vlo = lo[k];
      const double vhi = hi[k];
      for (size_t j = 0; j < bcols; ++j) {
        out_lo[j] += vlo * brow[j];
        out_hi[j] += vhi * brow[j];
      }
    }
  }
}

// -- Fused Gram reference kernels --------------------------------------------
//
// One pass over the pattern per Gram apply: the row dot and the scaled
// scatter share the cached row data. The scalar form is the differential
// reference for the packed AVX2 kernels and the portable fallback for
// direct calls on no-AVX2 builds.

void GramFusedScalar(const CsrView& a, const double* v, const double* x,
                     double* y, size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t begin = a.row_ptr[i];
    const size_t end = a.row_ptr[i + 1];
    double s = 0.0;
    for (size_t k = begin; k < end; ++k) s += v[k] * x[a.col_idx[k]];
    if (s == 0.0) continue;
    for (size_t k = begin; k < end; ++k) y[a.col_idx[k]] += s * v[k];
  }
}

void GramFusedBothScalar(const CsrView& a, const double* lo, const double* hi,
                         const double* x, double* y_lo, double* y_hi,
                         size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t begin = a.row_ptr[i];
    const size_t end = a.row_ptr[i + 1];
    double s_lo = 0.0;
    double s_hi = 0.0;
    for (size_t k = begin; k < end; ++k) {
      const double xk = x[a.col_idx[k]];
      s_lo += lo[k] * xk;
      s_hi += hi[k] * xk;
    }
    if (s_lo == 0.0 && s_hi == 0.0) continue;
    for (size_t k = begin; k < end; ++k) {
      y_lo[a.col_idx[k]] += s_lo * lo[k];
      y_hi[a.col_idx[k]] += s_hi * hi[k];
    }
  }
}

// -- SELL reference (blocked-scalar) kernels ---------------------------------
//
// The portable fallback keeps the SELL blocking: four lane accumulators per
// chunk, vertical adds across slices. This is what a no-AVX2 build (or CPU)
// runs when the SELL backend is selected.

void SellMatVecScalar(const SellView& s, const double* v, const double* x,
                      double* y, size_t chunk_begin, size_t chunk_end) {
  for (size_t c = chunk_begin; c < chunk_end; ++c) {
    double acc[kSellC] = {0.0, 0.0, 0.0, 0.0};
    for (size_t k = s.chunk_ptr[c]; k < s.chunk_ptr[c + 1]; k += kSellC) {
      for (size_t l = 0; l < kSellC; ++l) {
        acc[l] += v[k + l] * x[s.col[k + l]];
      }
    }
    const size_t* perm = s.perm + kSellC * c;
    for (size_t l = 0; l < kSellC; ++l) {
      if (perm[l] != kSellPadRow) y[perm[l]] = acc[l];
    }
  }
}

void SellMatVecMidScalar(const SellView& s, const double* lo,
                         const double* hi, const double* x, double* y,
                         size_t chunk_begin, size_t chunk_end) {
  for (size_t c = chunk_begin; c < chunk_end; ++c) {
    double acc[kSellC] = {0.0, 0.0, 0.0, 0.0};
    for (size_t k = s.chunk_ptr[c]; k < s.chunk_ptr[c + 1]; k += kSellC) {
      for (size_t l = 0; l < kSellC; ++l) {
        acc[l] += 0.5 * (lo[k + l] + hi[k + l]) * x[s.col[k + l]];
      }
    }
    const size_t* perm = s.perm + kSellC * c;
    for (size_t l = 0; l < kSellC; ++l) {
      if (perm[l] != kSellPadRow) y[perm[l]] = acc[l];
    }
  }
}

void SellMatVecBothScalar(const SellView& s, const double* lo,
                          const double* hi, const double* x, double* y_lo,
                          double* y_hi, size_t chunk_begin,
                          size_t chunk_end) {
  for (size_t c = chunk_begin; c < chunk_end; ++c) {
    double acc_lo[kSellC] = {0.0, 0.0, 0.0, 0.0};
    double acc_hi[kSellC] = {0.0, 0.0, 0.0, 0.0};
    for (size_t k = s.chunk_ptr[c]; k < s.chunk_ptr[c + 1]; k += kSellC) {
      for (size_t l = 0; l < kSellC; ++l) {
        const double xk = x[s.col[k + l]];
        acc_lo[l] += lo[k + l] * xk;
        acc_hi[l] += hi[k + l] * xk;
      }
    }
    const size_t* perm = s.perm + kSellC * c;
    for (size_t l = 0; l < kSellC; ++l) {
      if (perm[l] != kSellPadRow) {
        y_lo[perm[l]] = acc_lo[l];
        y_hi[perm[l]] = acc_hi[l];
      }
    }
  }
}

// -- Packed-index scalar kernels ---------------------------------------------
//
// One templated body per kernel, instantiated for the u16 and u32 sidecars.
// Per-row association is identical to the size_t-index scalar loops, so a
// caller that switches index width gets bit-identical results. Always
// compiled: sharded segments carry only packed indices, so these are the
// scalar reference for shard dispatch on every build, and the no-AVX2
// *PackedAvx2 stubs below forward here.

namespace {

template <typename IdxT>
void PackedMatVec(const PackedCsrView& a, const IdxT* idx, const double* v,
                  const double* x, double* y, size_t row_begin,
                  size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double sum = 0.0;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      sum += v[k] * x[idx[k]];
    }
    y[i] = sum;
  }
}

template <typename IdxT>
void PackedMatVecMid(const PackedCsrView& a, const IdxT* idx, const double* lo,
                     const double* hi, const double* x, double* y,
                     size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double sum = 0.0;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      sum += 0.5 * (lo[k] + hi[k]) * x[idx[k]];
    }
    y[i] = sum;
  }
}

template <typename IdxT>
void PackedMatVecBoth(const PackedCsrView& a, const IdxT* idx,
                      const double* lo, const double* hi, const double* x,
                      double* y_lo, double* y_hi, size_t row_begin,
                      size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double sum_lo = 0.0;
    double sum_hi = 0.0;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const double xk = x[idx[k]];
      sum_lo += lo[k] * xk;
      sum_hi += hi[k] * xk;
    }
    y_lo[i] = sum_lo;
    y_hi[i] = sum_hi;
  }
}

template <typename IdxT>
void PackedMatVecPair(const PackedCsrView& a, const IdxT* idx,
                      const double* lo, const double* hi, const double* x_lo,
                      const double* x_hi, double* y_lo, double* y_hi,
                      size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double sum_lo = 0.0;
    double sum_hi = 0.0;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const size_t j = idx[k];
      sum_lo += lo[k] * x_lo[j];
      sum_hi += hi[k] * x_hi[j];
    }
    y_lo[i] = sum_lo;
    y_hi[i] = sum_hi;
  }
}

template <typename IdxT>
void PackedMatVecT(const PackedCsrView& a, const IdxT* idx, const double* v,
                   const double* x, double* y, size_t row_begin,
                   size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      y[idx[k]] += v[k] * xi;
    }
  }
}

template <typename IdxT>
void PackedMatVecTMid(const PackedCsrView& a, const IdxT* idx,
                      const double* lo, const double* hi, const double* x,
                      double* y, size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      y[idx[k]] += 0.5 * (lo[k] + hi[k]) * xi;
    }
  }
}

template <typename IdxT>
void PackedMatDenseTBoth(const PackedCsrView& a, const IdxT* idx,
                         const double* lo, const double* hi, const double* b,
                         size_t bcols, double* c_lo, double* c_hi,
                         size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const double* brow = b + i * bcols;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      double* out_lo = c_lo + idx[k] * bcols;
      double* out_hi = c_hi + idx[k] * bcols;
      const double vlo = lo[k];
      const double vhi = hi[k];
      for (size_t j = 0; j < bcols; ++j) {
        out_lo[j] += vlo * brow[j];
        out_hi[j] += vhi * brow[j];
      }
    }
  }
}

template <typename IdxT>
void PackedMatDense(const PackedCsrView& a, const IdxT* idx, const double* v,
                    const double* b, size_t bcols, double* c, size_t row_begin,
                    size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double* out = c + i * bcols;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const double* brow = b + idx[k] * bcols;
      const double value = v[k];
      for (size_t j = 0; j < bcols; ++j) out[j] += value * brow[j];
    }
  }
}

template <typename IdxT>
void PackedMatDenseBoth(const PackedCsrView& a, const IdxT* idx,
                        const double* lo, const double* hi, const double* b,
                        size_t bcols, double* c_lo, double* c_hi,
                        size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double* out_lo = c_lo + i * bcols;
    double* out_hi = c_hi + i * bcols;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const double* brow = b + idx[k] * bcols;
      const double vlo = lo[k];
      const double vhi = hi[k];
      for (size_t j = 0; j < bcols; ++j) {
        out_lo[j] += vlo * brow[j];
        out_hi[j] += vhi * brow[j];
      }
    }
  }
}

template <typename IdxT>
void PackedGramFused(const PackedCsrView& a, const IdxT* idx, const double* v,
                     const double* x, double* y, size_t row_begin,
                     size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t begin = a.row_ptr[i];
    const size_t end = a.row_ptr[i + 1];
    double s = 0.0;
    for (size_t k = begin; k < end; ++k) s += v[k] * x[idx[k]];
    if (s == 0.0) continue;
    for (size_t k = begin; k < end; ++k) y[idx[k]] += s * v[k];
  }
}

template <typename IdxT>
void PackedGramFusedBoth(const PackedCsrView& a, const IdxT* idx,
                         const double* lo, const double* hi, const double* x,
                         double* y_lo, double* y_hi, size_t row_begin,
                         size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t begin = a.row_ptr[i];
    const size_t end = a.row_ptr[i + 1];
    double s_lo = 0.0;
    double s_hi = 0.0;
    for (size_t k = begin; k < end; ++k) {
      const double xk = x[idx[k]];
      s_lo += lo[k] * xk;
      s_hi += hi[k] * xk;
    }
    if (s_lo == 0.0 && s_hi == 0.0) continue;
    for (size_t k = begin; k < end; ++k) {
      y_lo[idx[k]] += s_lo * lo[k];
      y_hi[idx[k]] += s_hi * hi[k];
    }
  }
}

}  // namespace

void MatVecPackedScalar(const PackedCsrView& a, const double* v,
                        const double* x, double* y, size_t row_begin,
                        size_t row_end) {
  if (a.col16 != nullptr) {
    PackedMatVec(a, a.col16, v, x, y, row_begin, row_end);
  } else {
    PackedMatVec(a, a.col32, v, x, y, row_begin, row_end);
  }
}

void MatVecMidPackedScalar(const PackedCsrView& a, const double* lo,
                           const double* hi, const double* x, double* y,
                           size_t row_begin, size_t row_end) {
  if (a.col16 != nullptr) {
    PackedMatVecMid(a, a.col16, lo, hi, x, y, row_begin, row_end);
  } else {
    PackedMatVecMid(a, a.col32, lo, hi, x, y, row_begin, row_end);
  }
}

void MatVecBothPackedScalar(const PackedCsrView& a, const double* lo,
                            const double* hi, const double* x, double* y_lo,
                            double* y_hi, size_t row_begin, size_t row_end) {
  if (a.col16 != nullptr) {
    PackedMatVecBoth(a, a.col16, lo, hi, x, y_lo, y_hi, row_begin, row_end);
  } else {
    PackedMatVecBoth(a, a.col32, lo, hi, x, y_lo, y_hi, row_begin, row_end);
  }
}

void MatVecPairPackedScalar(const PackedCsrView& a, const double* lo,
                            const double* hi, const double* x_lo,
                            const double* x_hi, double* y_lo, double* y_hi,
                            size_t row_begin, size_t row_end) {
  if (a.col16 != nullptr) {
    PackedMatVecPair(a, a.col16, lo, hi, x_lo, x_hi, y_lo, y_hi, row_begin,
                     row_end);
  } else {
    PackedMatVecPair(a, a.col32, lo, hi, x_lo, x_hi, y_lo, y_hi, row_begin,
                     row_end);
  }
}

void MatVecTPackedScalar(const PackedCsrView& a, const double* v,
                         const double* x, double* y, size_t row_begin,
                         size_t row_end) {
  if (a.col16 != nullptr) {
    PackedMatVecT(a, a.col16, v, x, y, row_begin, row_end);
  } else {
    PackedMatVecT(a, a.col32, v, x, y, row_begin, row_end);
  }
}

void MatVecTMidPackedScalar(const PackedCsrView& a, const double* lo,
                            const double* hi, const double* x, double* y,
                            size_t row_begin, size_t row_end) {
  if (a.col16 != nullptr) {
    PackedMatVecTMid(a, a.col16, lo, hi, x, y, row_begin, row_end);
  } else {
    PackedMatVecTMid(a, a.col32, lo, hi, x, y, row_begin, row_end);
  }
}

void MatDenseTBothPackedScalar(const PackedCsrView& a, const double* lo,
                               const double* hi, const double* b,
                               size_t bcols, double* c_lo, double* c_hi,
                               size_t row_begin, size_t row_end) {
  if (a.col16 != nullptr) {
    PackedMatDenseTBoth(a, a.col16, lo, hi, b, bcols, c_lo, c_hi, row_begin,
                        row_end);
  } else {
    PackedMatDenseTBoth(a, a.col32, lo, hi, b, bcols, c_lo, c_hi, row_begin,
                        row_end);
  }
}

void MatDensePackedScalar(const PackedCsrView& a, const double* v,
                          const double* b, size_t bcols, double* c,
                          size_t row_begin, size_t row_end) {
  if (a.col16 != nullptr) {
    PackedMatDense(a, a.col16, v, b, bcols, c, row_begin, row_end);
  } else {
    PackedMatDense(a, a.col32, v, b, bcols, c, row_begin, row_end);
  }
}

void MatDenseBothPackedScalar(const PackedCsrView& a, const double* lo,
                              const double* hi, const double* b, size_t bcols,
                              double* c_lo, double* c_hi, size_t row_begin,
                              size_t row_end) {
  if (a.col16 != nullptr) {
    PackedMatDenseBoth(a, a.col16, lo, hi, b, bcols, c_lo, c_hi, row_begin,
                       row_end);
  } else {
    PackedMatDenseBoth(a, a.col32, lo, hi, b, bcols, c_lo, c_hi, row_begin,
                       row_end);
  }
}

void GramFusedPackedScalar(const PackedCsrView& a, const double* v,
                           const double* x, double* y, size_t row_begin,
                           size_t row_end) {
  if (a.col16 != nullptr) {
    PackedGramFused(a, a.col16, v, x, y, row_begin, row_end);
  } else {
    PackedGramFused(a, a.col32, v, x, y, row_begin, row_end);
  }
}

void GramFusedBothPackedScalar(const PackedCsrView& a, const double* lo,
                               const double* hi, const double* x,
                               double* y_lo, double* y_hi, size_t row_begin,
                               size_t row_end) {
  if (a.col16 != nullptr) {
    PackedGramFusedBoth(a, a.col16, lo, hi, x, y_lo, y_hi, row_begin,
                        row_end);
  } else {
    PackedGramFusedBoth(a, a.col32, lo, hi, x, y_lo, y_hi, row_begin,
                        row_end);
  }
}

// -- AVX2 forwarding stubs ---------------------------------------------------
//
// Without the AVX2 translation unit (non-x86 target or
// -DIVMF_DISABLE_AVX2=ON) the *Avx2 symbols still exist so call sites need
// no #ifdefs; Resolve() never selects them, but direct calls (the
// differential tests exercise every declared variant) behave as the
// reference.

#ifndef IVMF_HAVE_AVX2

void MatVecAvx2(const CsrView& a, const double* v, const double* x, double* y,
                size_t row_begin, size_t row_end) {
  MatVecScalar(a, v, x, y, row_begin, row_end);
}

void MatVecMidAvx2(const CsrView& a, const double* lo, const double* hi,
                   const double* x, double* y, size_t row_begin,
                   size_t row_end) {
  MatVecMidScalar(a, lo, hi, x, y, row_begin, row_end);
}

void MatVecBothAvx2(const CsrView& a, const double* lo, const double* hi,
                    const double* x, double* y_lo, double* y_hi,
                    size_t row_begin, size_t row_end) {
  MatVecBothScalar(a, lo, hi, x, y_lo, y_hi, row_begin, row_end);
}

void MatVecPairAvx2(const CsrView& a, const double* lo, const double* hi,
                    const double* x_lo, const double* x_hi, double* y_lo,
                    double* y_hi, size_t row_begin, size_t row_end) {
  MatVecPairScalar(a, lo, hi, x_lo, x_hi, y_lo, y_hi, row_begin, row_end);
}

void MatVecTAvx2(const CsrView& a, const double* v, const double* x,
                 double* y, size_t row_begin, size_t row_end) {
  MatVecTScalar(a, v, x, y, row_begin, row_end);
}

void MatDenseAvx2(const CsrView& a, const double* v, const double* b,
                  size_t bcols, double* c, size_t row_begin, size_t row_end) {
  MatDenseScalar(a, v, b, bcols, c, row_begin, row_end);
}

void MatDenseBothAvx2(const CsrView& a, const double* lo, const double* hi,
                      const double* b, size_t bcols, double* c_lo,
                      double* c_hi, size_t row_begin, size_t row_end) {
  MatDenseBothScalar(a, lo, hi, b, bcols, c_lo, c_hi, row_begin, row_end);
}

void SellMatVecAvx2(const SellView& s, const double* v, const double* x,
                    double* y, size_t chunk_begin, size_t chunk_end) {
  SellMatVecScalar(s, v, x, y, chunk_begin, chunk_end);
}

void SellMatVecMidAvx2(const SellView& s, const double* lo, const double* hi,
                       const double* x, double* y, size_t chunk_begin,
                       size_t chunk_end) {
  SellMatVecMidScalar(s, lo, hi, x, y, chunk_begin, chunk_end);
}

void SellMatVecBothAvx2(const SellView& s, const double* lo, const double* hi,
                        const double* x, double* y_lo, double* y_hi,
                        size_t chunk_begin, size_t chunk_end) {
  SellMatVecBothScalar(s, lo, hi, x, y_lo, y_hi, chunk_begin, chunk_end);
}

void MatVecPackedAvx2(const PackedCsrView& a, const double* v,
                      const double* x, double* y, size_t row_begin,
                      size_t row_end) {
  MatVecPackedScalar(a, v, x, y, row_begin, row_end);
}

void MatVecMidPackedAvx2(const PackedCsrView& a, const double* lo,
                         const double* hi, const double* x, double* y,
                         size_t row_begin, size_t row_end) {
  MatVecMidPackedScalar(a, lo, hi, x, y, row_begin, row_end);
}

void MatVecBothPackedAvx2(const PackedCsrView& a, const double* lo,
                          const double* hi, const double* x, double* y_lo,
                          double* y_hi, size_t row_begin, size_t row_end) {
  MatVecBothPackedScalar(a, lo, hi, x, y_lo, y_hi, row_begin, row_end);
}

void MatVecPairPackedAvx2(const PackedCsrView& a, const double* lo,
                          const double* hi, const double* x_lo,
                          const double* x_hi, double* y_lo, double* y_hi,
                          size_t row_begin, size_t row_end) {
  MatVecPairPackedScalar(a, lo, hi, x_lo, x_hi, y_lo, y_hi, row_begin,
                         row_end);
}

void GramFusedPackedAvx2(const PackedCsrView& a, const double* v,
                         const double* x, double* y, size_t row_begin,
                         size_t row_end) {
  GramFusedPackedScalar(a, v, x, y, row_begin, row_end);
}

void GramFusedBothPackedAvx2(const PackedCsrView& a, const double* lo,
                             const double* hi, const double* x, double* y_lo,
                             double* y_hi, size_t row_begin, size_t row_end) {
  GramFusedBothPackedScalar(a, lo, hi, x, y_lo, y_hi, row_begin, row_end);
}

#endif  // !IVMF_HAVE_AVX2

}  // namespace ivmf::spk
