// AVX2 definitions of the sparse kernels (see sparse_kernels.h).
//
// This is the only translation unit compiled with -mavx2 -mfma; everything
// here is reached exclusively through spk::Resolve()/Avx2Supported(), i.e.
// after a runtime cpuid check, so the rest of the library stays portable.
// Without IVMF_HAVE_AVX2 (non-x86 target or -DIVMF_DISABLE_AVX2=ON) the
// file compiles to nothing and sparse_kernels.cc provides scalar-forwarding
// definitions instead.
//
// Layout of the row kernels: two (or four, for the cheap single-stream
// matvec) independent 4-lane FMA accumulators per row hide the FMA latency
// the scalar loop's single `sum` chain serializes on; the dense operand is
// fetched with 64-bit index gathers (the CSR column array is size_t).
// Remainder entries (< 4 per row, plus the odd block) run scalar. Each
// output entry sums exactly the same terms as the reference kernel, just in
// blocked association order.

#ifdef IVMF_HAVE_AVX2

#include <immintrin.h>

#include "sparse/sparse_kernels.h"

namespace ivmf::spk {

namespace {

inline double HSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d swap = _mm_unpackhi_pd(sum2, sum2);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, swap));
}

inline __m256i LoadIdx(const size_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

}  // namespace

void MatVecAvx2(const CsrView& a, const double* v, const double* x, double* y,
                size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t end = a.row_ptr[i + 1];
    size_t k = a.row_ptr[i];
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (; k + 8 <= end; k += 8) {
      const __m256d x0 = _mm256_i64gather_pd(x, LoadIdx(a.col_idx + k), 8);
      const __m256d x1 = _mm256_i64gather_pd(x, LoadIdx(a.col_idx + k + 4), 8);
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(v + k), x0, acc0);
      acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(v + k + 4), x1, acc1);
    }
    if (k + 4 <= end) {
      const __m256d x0 = _mm256_i64gather_pd(x, LoadIdx(a.col_idx + k), 8);
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(v + k), x0, acc0);
      k += 4;
    }
    double sum = HSum(_mm256_add_pd(acc0, acc1));
    for (; k < end; ++k) sum += v[k] * x[a.col_idx[k]];
    y[i] = sum;
  }
}

void MatVecMidAvx2(const CsrView& a, const double* lo, const double* hi,
                   const double* x, double* y, size_t row_begin,
                   size_t row_end) {
  const __m256d half = _mm256_set1_pd(0.5);
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t end = a.row_ptr[i + 1];
    size_t k = a.row_ptr[i];
    __m256d acc = _mm256_setzero_pd();
    for (; k + 4 <= end; k += 4) {
      const __m256d mid = _mm256_mul_pd(
          half, _mm256_add_pd(_mm256_loadu_pd(lo + k), _mm256_loadu_pd(hi + k)));
      const __m256d xv = _mm256_i64gather_pd(x, LoadIdx(a.col_idx + k), 8);
      acc = _mm256_fmadd_pd(mid, xv, acc);
    }
    double sum = HSum(acc);
    for (; k < end; ++k) sum += 0.5 * (lo[k] + hi[k]) * x[a.col_idx[k]];
    y[i] = sum;
  }
}

void MatVecBothAvx2(const CsrView& a, const double* lo, const double* hi,
                    const double* x, double* y_lo, double* y_hi,
                    size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t end = a.row_ptr[i + 1];
    size_t k = a.row_ptr[i];
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    for (; k + 4 <= end; k += 4) {
      const __m256d xv = _mm256_i64gather_pd(x, LoadIdx(a.col_idx + k), 8);
      acc_lo = _mm256_fmadd_pd(_mm256_loadu_pd(lo + k), xv, acc_lo);
      acc_hi = _mm256_fmadd_pd(_mm256_loadu_pd(hi + k), xv, acc_hi);
    }
    double sum_lo = HSum(acc_lo);
    double sum_hi = HSum(acc_hi);
    for (; k < end; ++k) {
      const double xk = x[a.col_idx[k]];
      sum_lo += lo[k] * xk;
      sum_hi += hi[k] * xk;
    }
    y_lo[i] = sum_lo;
    y_hi[i] = sum_hi;
  }
}

void MatVecPairAvx2(const CsrView& a, const double* lo, const double* hi,
                    const double* x_lo, const double* x_hi, double* y_lo,
                    double* y_hi, size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t end = a.row_ptr[i + 1];
    size_t k = a.row_ptr[i];
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    for (; k + 4 <= end; k += 4) {
      const __m256i idx = LoadIdx(a.col_idx + k);
      acc_lo = _mm256_fmadd_pd(_mm256_loadu_pd(lo + k),
                               _mm256_i64gather_pd(x_lo, idx, 8), acc_lo);
      acc_hi = _mm256_fmadd_pd(_mm256_loadu_pd(hi + k),
                               _mm256_i64gather_pd(x_hi, idx, 8), acc_hi);
    }
    double sum_lo = HSum(acc_lo);
    double sum_hi = HSum(acc_hi);
    for (; k < end; ++k) {
      const size_t j = a.col_idx[k];
      sum_lo += lo[k] * x_lo[j];
      sum_hi += hi[k] * x_hi[j];
    }
    y_lo[i] = sum_lo;
    y_hi[i] = sum_hi;
  }
}

void MatVecTAvx2(const CsrView& a, const double* v, const double* x,
                 double* y, size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const __m256d xv = _mm256_set1_pd(xi);
    const size_t end = a.row_ptr[i + 1];
    size_t k = a.row_ptr[i];
    // No scatter in AVX2: vectorize the multiply, store lanes individually.
    // Columns are unique within a row, so the four stores never collide.
    for (; k + 4 <= end; k += 4) {
      alignas(32) double prod[4];
      _mm256_store_pd(prod, _mm256_mul_pd(_mm256_loadu_pd(v + k), xv));
      y[a.col_idx[k]] += prod[0];
      y[a.col_idx[k + 1]] += prod[1];
      y[a.col_idx[k + 2]] += prod[2];
      y[a.col_idx[k + 3]] += prod[3];
    }
    for (; k < end; ++k) y[a.col_idx[k]] += v[k] * xi;
  }
}

void MatDenseAvx2(const CsrView& a, const double* v, const double* b,
                  size_t bcols, double* c, size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double* out = c + i * bcols;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const double* brow = b + a.col_idx[k] * bcols;
      const __m256d vv = _mm256_set1_pd(v[k]);
      size_t j = 0;
      for (; j + 4 <= bcols; j += 4) {
        _mm256_storeu_pd(out + j,
                         _mm256_fmadd_pd(vv, _mm256_loadu_pd(brow + j),
                                         _mm256_loadu_pd(out + j)));
      }
      const double value = v[k];
      for (; j < bcols; ++j) out[j] += value * brow[j];
    }
  }
}

void MatDenseBothAvx2(const CsrView& a, const double* lo, const double* hi,
                      const double* b, size_t bcols, double* c_lo,
                      double* c_hi, size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double* out_lo = c_lo + i * bcols;
    double* out_hi = c_hi + i * bcols;
    for (size_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const double* brow = b + a.col_idx[k] * bcols;
      const __m256d vlo = _mm256_set1_pd(lo[k]);
      const __m256d vhi = _mm256_set1_pd(hi[k]);
      size_t j = 0;
      for (; j + 4 <= bcols; j += 4) {
        const __m256d bv = _mm256_loadu_pd(brow + j);
        _mm256_storeu_pd(
            out_lo + j, _mm256_fmadd_pd(vlo, bv, _mm256_loadu_pd(out_lo + j)));
        _mm256_storeu_pd(
            out_hi + j, _mm256_fmadd_pd(vhi, bv, _mm256_loadu_pd(out_hi + j)));
      }
      for (; j < bcols; ++j) {
        out_lo[j] += lo[k] * brow[j];
        out_hi[j] += hi[k] * brow[j];
      }
    }
  }
}

// -- Packed-index CSR kernels ------------------------------------------------
//
// The forward family over the 16/32-bit column sidecar. The matvec streams
// are prefetched explicitly: the value stream consumes two cache lines per
// 16-entry block, so it gets two prefetches ~3 KiB ahead; the narrower
// index stream gets one at the matching byte distance. The hardware
// prefetcher alone leaves ~20% of this machine's bandwidth on the table at
// 20k x 5k — measured, not speculative.

namespace {

// Type-specific pieces: how to widen 4/8 packed indices to the i32 lanes
// _mm256_i32gather_pd consumes, and how far ahead (in elements) the index
// stream prefetch should run to stay ~4 KiB in front.
template <typename IdxT>
struct IdxOps;

template <>
struct IdxOps<uint16_t> {
  static constexpr size_t kPrefetchAhead = 2048;
  static inline __m128i Load4(const uint16_t* p) {
    return _mm_cvtepu16_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
  }
  static inline __m256i Load8(const uint16_t* p) {
    return _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
};

template <>
struct IdxOps<uint32_t> {
  static constexpr size_t kPrefetchAhead = 1024;
  static inline __m128i Load4(const uint32_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static inline __m256i Load8(const uint32_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
};

// Value-stream prefetch distance in doubles (4 KiB — tuned on the target
// box; shorter distances leave the line-fill buffers idle between row
// blocks and cost ~2x on the 20k x 5k CF shape).
constexpr size_t kValAhead = 512;

template <typename IdxT>
void MatVecPackedImpl(const PackedCsrView& a, const IdxT* idx, const double* v,
                      const double* x, double* y, size_t row_begin,
                      size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t end = a.row_ptr[i + 1];
    size_t k = a.row_ptr[i];
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd();
    // Main loop covers 32 nnz per iteration so the value-stream prefetches
    // hit every cache line exactly once (4 lines of doubles + 1 line of
    // packed indices per trip).
    for (; k + 32 <= end; k += 32) {
      __builtin_prefetch(v + k + kValAhead);
      __builtin_prefetch(v + k + kValAhead + 8);
      __builtin_prefetch(v + k + kValAhead + 16);
      __builtin_prefetch(v + k + kValAhead + 24);
      __builtin_prefetch(idx + k + IdxOps<IdxT>::kPrefetchAhead);
      for (size_t u = 0; u < 32; u += 16) {
        const __m256i j0 = IdxOps<IdxT>::Load8(idx + k + u);
        const __m256i j1 = IdxOps<IdxT>::Load8(idx + k + u + 8);
        acc0 = _mm256_fmadd_pd(
            _mm256_loadu_pd(v + k + u),
            _mm256_i32gather_pd(x, _mm256_castsi256_si128(j0), 8), acc0);
        acc1 = _mm256_fmadd_pd(
            _mm256_loadu_pd(v + k + u + 4),
            _mm256_i32gather_pd(x, _mm256_extracti128_si256(j0, 1), 8), acc1);
        acc2 = _mm256_fmadd_pd(
            _mm256_loadu_pd(v + k + u + 8),
            _mm256_i32gather_pd(x, _mm256_castsi256_si128(j1), 8), acc2);
        acc3 = _mm256_fmadd_pd(
            _mm256_loadu_pd(v + k + u + 12),
            _mm256_i32gather_pd(x, _mm256_extracti128_si256(j1, 1), 8), acc3);
      }
    }
    for (; k + 4 <= end; k += 4) {
      acc0 = _mm256_fmadd_pd(
          _mm256_loadu_pd(v + k),
          _mm256_i32gather_pd(x, IdxOps<IdxT>::Load4(idx + k), 8), acc0);
    }
    double sum = HSum(_mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                    _mm256_add_pd(acc2, acc3)));
    for (; k < end; ++k) sum += v[k] * x[idx[k]];
    y[i] = sum;
  }
}

template <typename IdxT>
void MatVecMidPackedImpl(const PackedCsrView& a, const IdxT* idx,
                         const double* lo, const double* hi, const double* x,
                         double* y, size_t row_begin, size_t row_end) {
  const __m256d half = _mm256_set1_pd(0.5);
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t end = a.row_ptr[i + 1];
    size_t k = a.row_ptr[i];
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (; k + 8 <= end; k += 8) {
      __builtin_prefetch(lo + k + kValAhead);
      __builtin_prefetch(hi + k + kValAhead);
      __builtin_prefetch(idx + k + IdxOps<IdxT>::kPrefetchAhead);
      const __m256i j = IdxOps<IdxT>::Load8(idx + k);
      const __m256d m0 = _mm256_mul_pd(
          half,
          _mm256_add_pd(_mm256_loadu_pd(lo + k), _mm256_loadu_pd(hi + k)));
      const __m256d m1 =
          _mm256_mul_pd(half, _mm256_add_pd(_mm256_loadu_pd(lo + k + 4),
                                            _mm256_loadu_pd(hi + k + 4)));
      acc0 = _mm256_fmadd_pd(
          m0, _mm256_i32gather_pd(x, _mm256_castsi256_si128(j), 8), acc0);
      acc1 = _mm256_fmadd_pd(
          m1, _mm256_i32gather_pd(x, _mm256_extracti128_si256(j, 1), 8), acc1);
    }
    for (; k + 4 <= end; k += 4) {
      const __m256d mid = _mm256_mul_pd(
          half,
          _mm256_add_pd(_mm256_loadu_pd(lo + k), _mm256_loadu_pd(hi + k)));
      acc0 = _mm256_fmadd_pd(
          mid, _mm256_i32gather_pd(x, IdxOps<IdxT>::Load4(idx + k), 8), acc0);
    }
    double sum = HSum(_mm256_add_pd(acc0, acc1));
    for (; k < end; ++k) sum += 0.5 * (lo[k] + hi[k]) * x[idx[k]];
    y[i] = sum;
  }
}

template <typename IdxT>
void MatVecBothPackedImpl(const PackedCsrView& a, const IdxT* idx,
                          const double* lo, const double* hi, const double* x,
                          double* y_lo, double* y_hi, size_t row_begin,
                          size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t end = a.row_ptr[i + 1];
    size_t k = a.row_ptr[i];
    __m256d lo0 = _mm256_setzero_pd(), lo1 = _mm256_setzero_pd();
    __m256d hi0 = _mm256_setzero_pd(), hi1 = _mm256_setzero_pd();
    for (; k + 8 <= end; k += 8) {
      __builtin_prefetch(lo + k + kValAhead);
      __builtin_prefetch(hi + k + kValAhead);
      __builtin_prefetch(idx + k + IdxOps<IdxT>::kPrefetchAhead);
      const __m256i j = IdxOps<IdxT>::Load8(idx + k);
      const __m256d x0 = _mm256_i32gather_pd(x, _mm256_castsi256_si128(j), 8);
      const __m256d x1 =
          _mm256_i32gather_pd(x, _mm256_extracti128_si256(j, 1), 8);
      lo0 = _mm256_fmadd_pd(_mm256_loadu_pd(lo + k), x0, lo0);
      hi0 = _mm256_fmadd_pd(_mm256_loadu_pd(hi + k), x0, hi0);
      lo1 = _mm256_fmadd_pd(_mm256_loadu_pd(lo + k + 4), x1, lo1);
      hi1 = _mm256_fmadd_pd(_mm256_loadu_pd(hi + k + 4), x1, hi1);
    }
    for (; k + 4 <= end; k += 4) {
      const __m256d xv =
          _mm256_i32gather_pd(x, IdxOps<IdxT>::Load4(idx + k), 8);
      lo0 = _mm256_fmadd_pd(_mm256_loadu_pd(lo + k), xv, lo0);
      hi0 = _mm256_fmadd_pd(_mm256_loadu_pd(hi + k), xv, hi0);
    }
    double sum_lo = HSum(_mm256_add_pd(lo0, lo1));
    double sum_hi = HSum(_mm256_add_pd(hi0, hi1));
    for (; k < end; ++k) {
      const double xk = x[idx[k]];
      sum_lo += lo[k] * xk;
      sum_hi += hi[k] * xk;
    }
    y_lo[i] = sum_lo;
    y_hi[i] = sum_hi;
  }
}

template <typename IdxT>
void MatVecPairPackedImpl(const PackedCsrView& a, const IdxT* idx,
                          const double* lo, const double* hi,
                          const double* x_lo, const double* x_hi,
                          double* y_lo, double* y_hi, size_t row_begin,
                          size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t end = a.row_ptr[i + 1];
    size_t k = a.row_ptr[i];
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    for (; k + 4 <= end; k += 4) {
      __builtin_prefetch(lo + k + kValAhead);
      __builtin_prefetch(hi + k + kValAhead);
      __builtin_prefetch(idx + k + IdxOps<IdxT>::kPrefetchAhead);
      const __m128i j = IdxOps<IdxT>::Load4(idx + k);
      acc_lo = _mm256_fmadd_pd(_mm256_loadu_pd(lo + k),
                               _mm256_i32gather_pd(x_lo, j, 8), acc_lo);
      acc_hi = _mm256_fmadd_pd(_mm256_loadu_pd(hi + k),
                               _mm256_i32gather_pd(x_hi, j, 8), acc_hi);
    }
    double sum_lo = HSum(acc_lo);
    double sum_hi = HSum(acc_hi);
    for (; k < end; ++k) {
      const size_t j = idx[k];
      sum_lo += lo[k] * x_lo[j];
      sum_hi += hi[k] * x_hi[j];
    }
    y_lo[i] = sum_lo;
    y_hi[i] = sum_hi;
  }
}

template <typename IdxT>
void GramFusedPackedImpl(const PackedCsrView& a, const IdxT* idx,
                         const double* v, const double* x, double* y,
                         size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t end = a.row_ptr[i + 1];
    const size_t begin = a.row_ptr[i];
    size_t k = begin;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd();
    // Same 32-wide dot structure as MatVecPackedImpl: one prefetch per
    // cache line of the value stream per trip.
    for (; k + 32 <= end; k += 32) {
      __builtin_prefetch(v + k + kValAhead);
      __builtin_prefetch(v + k + kValAhead + 8);
      __builtin_prefetch(v + k + kValAhead + 16);
      __builtin_prefetch(v + k + kValAhead + 24);
      __builtin_prefetch(idx + k + IdxOps<IdxT>::kPrefetchAhead);
      for (size_t u = 0; u < 32; u += 16) {
        const __m256i j0 = IdxOps<IdxT>::Load8(idx + k + u);
        const __m256i j1 = IdxOps<IdxT>::Load8(idx + k + u + 8);
        acc0 = _mm256_fmadd_pd(
            _mm256_loadu_pd(v + k + u),
            _mm256_i32gather_pd(x, _mm256_castsi256_si128(j0), 8), acc0);
        acc1 = _mm256_fmadd_pd(
            _mm256_loadu_pd(v + k + u + 4),
            _mm256_i32gather_pd(x, _mm256_extracti128_si256(j0, 1), 8), acc1);
        acc2 = _mm256_fmadd_pd(
            _mm256_loadu_pd(v + k + u + 8),
            _mm256_i32gather_pd(x, _mm256_castsi256_si128(j1), 8), acc2);
        acc3 = _mm256_fmadd_pd(
            _mm256_loadu_pd(v + k + u + 12),
            _mm256_i32gather_pd(x, _mm256_extracti128_si256(j1, 1), 8), acc3);
      }
    }
    for (; k + 4 <= end; k += 4) {
      acc0 = _mm256_fmadd_pd(
          _mm256_loadu_pd(v + k),
          _mm256_i32gather_pd(x, IdxOps<IdxT>::Load4(idx + k), 8), acc0);
    }
    double s = HSum(_mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                  _mm256_add_pd(acc2, acc3)));
    for (; k < end; ++k) s += v[k] * x[idx[k]];
    if (s == 0.0) continue;  // empty rows (and exact cancellations) scatter 0
    // Scatter phase: the row's values/indices are L1-hot from the dot.
    const __m256d sv = _mm256_set1_pd(s);
    k = begin;
    for (; k + 4 <= end; k += 4) {
      alignas(32) double prod[4];
      _mm256_store_pd(prod, _mm256_mul_pd(sv, _mm256_loadu_pd(v + k)));
      y[idx[k]] += prod[0];
      y[idx[k + 1]] += prod[1];
      y[idx[k + 2]] += prod[2];
      y[idx[k + 3]] += prod[3];
    }
    for (; k < end; ++k) y[idx[k]] += s * v[k];
  }
}

template <typename IdxT>
void GramFusedBothPackedImpl(const PackedCsrView& a, const IdxT* idx,
                             const double* lo, const double* hi,
                             const double* x, double* y_lo, double* y_hi,
                             size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t end = a.row_ptr[i + 1];
    const size_t begin = a.row_ptr[i];
    size_t k = begin;
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    for (; k + 4 <= end; k += 4) {
      __builtin_prefetch(lo + k + kValAhead);
      __builtin_prefetch(hi + k + kValAhead);
      __builtin_prefetch(idx + k + IdxOps<IdxT>::kPrefetchAhead);
      const __m256d xv =
          _mm256_i32gather_pd(x, IdxOps<IdxT>::Load4(idx + k), 8);
      acc_lo = _mm256_fmadd_pd(_mm256_loadu_pd(lo + k), xv, acc_lo);
      acc_hi = _mm256_fmadd_pd(_mm256_loadu_pd(hi + k), xv, acc_hi);
    }
    double s_lo = HSum(acc_lo);
    double s_hi = HSum(acc_hi);
    for (; k < end; ++k) {
      const double xk = x[idx[k]];
      s_lo += lo[k] * xk;
      s_hi += hi[k] * xk;
    }
    if (s_lo == 0.0 && s_hi == 0.0) continue;
    const __m256d sv_lo = _mm256_set1_pd(s_lo);
    const __m256d sv_hi = _mm256_set1_pd(s_hi);
    k = begin;
    for (; k + 4 <= end; k += 4) {
      alignas(32) double p_lo[4], p_hi[4];
      _mm256_store_pd(p_lo, _mm256_mul_pd(sv_lo, _mm256_loadu_pd(lo + k)));
      _mm256_store_pd(p_hi, _mm256_mul_pd(sv_hi, _mm256_loadu_pd(hi + k)));
      for (size_t l = 0; l < 4; ++l) {
        y_lo[idx[k + l]] += p_lo[l];
        y_hi[idx[k + l]] += p_hi[l];
      }
    }
    for (; k < end; ++k) {
      y_lo[idx[k]] += s_lo * lo[k];
      y_hi[idx[k]] += s_hi * hi[k];
    }
  }
}

}  // namespace

void MatVecPackedAvx2(const PackedCsrView& a, const double* v,
                      const double* x, double* y, size_t row_begin,
                      size_t row_end) {
  if (a.col16 != nullptr) {
    MatVecPackedImpl(a, a.col16, v, x, y, row_begin, row_end);
  } else {
    MatVecPackedImpl(a, a.col32, v, x, y, row_begin, row_end);
  }
}

void MatVecMidPackedAvx2(const PackedCsrView& a, const double* lo,
                         const double* hi, const double* x, double* y,
                         size_t row_begin, size_t row_end) {
  if (a.col16 != nullptr) {
    MatVecMidPackedImpl(a, a.col16, lo, hi, x, y, row_begin, row_end);
  } else {
    MatVecMidPackedImpl(a, a.col32, lo, hi, x, y, row_begin, row_end);
  }
}

void MatVecBothPackedAvx2(const PackedCsrView& a, const double* lo,
                          const double* hi, const double* x, double* y_lo,
                          double* y_hi, size_t row_begin, size_t row_end) {
  if (a.col16 != nullptr) {
    MatVecBothPackedImpl(a, a.col16, lo, hi, x, y_lo, y_hi, row_begin,
                         row_end);
  } else {
    MatVecBothPackedImpl(a, a.col32, lo, hi, x, y_lo, y_hi, row_begin,
                         row_end);
  }
}

void MatVecPairPackedAvx2(const PackedCsrView& a, const double* lo,
                          const double* hi, const double* x_lo,
                          const double* x_hi, double* y_lo, double* y_hi,
                          size_t row_begin, size_t row_end) {
  if (a.col16 != nullptr) {
    MatVecPairPackedImpl(a, a.col16, lo, hi, x_lo, x_hi, y_lo, y_hi,
                         row_begin, row_end);
  } else {
    MatVecPairPackedImpl(a, a.col32, lo, hi, x_lo, x_hi, y_lo, y_hi,
                         row_begin, row_end);
  }
}

void GramFusedPackedAvx2(const PackedCsrView& a, const double* v,
                         const double* x, double* y, size_t row_begin,
                         size_t row_end) {
  if (a.col16 != nullptr) {
    GramFusedPackedImpl(a, a.col16, v, x, y, row_begin, row_end);
  } else {
    GramFusedPackedImpl(a, a.col32, v, x, y, row_begin, row_end);
  }
}

void GramFusedBothPackedAvx2(const PackedCsrView& a, const double* lo,
                             const double* hi, const double* x, double* y_lo,
                             double* y_hi, size_t row_begin, size_t row_end) {
  if (a.col16 != nullptr) {
    GramFusedBothPackedImpl(a, a.col16, lo, hi, x, y_lo, y_hi, row_begin,
                            row_end);
  } else {
    GramFusedBothPackedImpl(a, a.col32, lo, hi, x, y_lo, y_hi, row_begin,
                            row_end);
  }
}

// -- SELL-C-4 chunk kernels --------------------------------------------------
//
// One __m256d accumulator carries the four lane sums of a chunk; each slice
// is one 32-bit-index gather + FMA with no per-row remainder handling at
// all (padding was baked into the layout).

void SellMatVecAvx2(const SellView& s, const double* v, const double* x,
                    double* y, size_t chunk_begin, size_t chunk_end) {
  for (size_t c = chunk_begin; c < chunk_end; ++c) {
    const size_t end = s.chunk_ptr[c + 1];
    __m256d acc = _mm256_setzero_pd();
    for (size_t k = s.chunk_ptr[c]; k < end; k += kSellC) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(s.col + k));
      acc = _mm256_fmadd_pd(_mm256_loadu_pd(v + k),
                            _mm256_i32gather_pd(x, idx, 8), acc);
    }
    alignas(32) double lanes[kSellC];
    _mm256_store_pd(lanes, acc);
    const size_t* perm = s.perm + kSellC * c;
    for (size_t l = 0; l < kSellC; ++l) {
      if (perm[l] != kSellPadRow) y[perm[l]] = lanes[l];
    }
  }
}

void SellMatVecMidAvx2(const SellView& s, const double* lo, const double* hi,
                       const double* x, double* y, size_t chunk_begin,
                       size_t chunk_end) {
  const __m256d half = _mm256_set1_pd(0.5);
  for (size_t c = chunk_begin; c < chunk_end; ++c) {
    const size_t end = s.chunk_ptr[c + 1];
    __m256d acc = _mm256_setzero_pd();
    for (size_t k = s.chunk_ptr[c]; k < end; k += kSellC) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(s.col + k));
      const __m256d mid = _mm256_mul_pd(
          half, _mm256_add_pd(_mm256_loadu_pd(lo + k), _mm256_loadu_pd(hi + k)));
      acc = _mm256_fmadd_pd(mid, _mm256_i32gather_pd(x, idx, 8), acc);
    }
    alignas(32) double lanes[kSellC];
    _mm256_store_pd(lanes, acc);
    const size_t* perm = s.perm + kSellC * c;
    for (size_t l = 0; l < kSellC; ++l) {
      if (perm[l] != kSellPadRow) y[perm[l]] = lanes[l];
    }
  }
}

void SellMatVecBothAvx2(const SellView& s, const double* lo, const double* hi,
                        const double* x, double* y_lo, double* y_hi,
                        size_t chunk_begin, size_t chunk_end) {
  for (size_t c = chunk_begin; c < chunk_end; ++c) {
    const size_t end = s.chunk_ptr[c + 1];
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    for (size_t k = s.chunk_ptr[c]; k < end; k += kSellC) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(s.col + k));
      const __m256d xv = _mm256_i32gather_pd(x, idx, 8);
      acc_lo = _mm256_fmadd_pd(_mm256_loadu_pd(lo + k), xv, acc_lo);
      acc_hi = _mm256_fmadd_pd(_mm256_loadu_pd(hi + k), xv, acc_hi);
    }
    alignas(32) double lanes_lo[kSellC];
    alignas(32) double lanes_hi[kSellC];
    _mm256_store_pd(lanes_lo, acc_lo);
    _mm256_store_pd(lanes_hi, acc_hi);
    const size_t* perm = s.perm + kSellC * c;
    for (size_t l = 0; l < kSellC; ++l) {
      if (perm[l] != kSellPadRow) {
        y_lo[perm[l]] = lanes_lo[l];
        y_hi[perm[l]] = lanes_hi[l];
      }
    }
  }
}

}  // namespace ivmf::spk

#endif  // IVMF_HAVE_AVX2
