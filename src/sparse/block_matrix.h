// Block-row sharded sparse interval matrices: the out-of-core store.
//
// A ShardedSparseIntervalMatrix splits the row range into fixed-size
// shards, each an independent CSR segment with its own packed 32-bit
// column-index sidecar (and a SELL pack when the row statistics pick that
// backend). Every kernel of the monolithic SparseIntervalMatrix exists
// here with identical semantics, executed shard-parallel on the shared
// ThreadPool:
//
//  - Forward kernels (Multiply / MultiplyMid / MultiplyBoth / MultiplyDense
//    / IntervalMultiplyDense) write disjoint row ranges, one task per
//    shard; each output entry is computed by the same per-row loop as the
//    monolithic kernel, so forward results are bit-identical to the
//    monolithic matrix under the same resolved backend.
//  - Reduction kernels (MultiplyTranspose / GramMultiply / GramMultiplyBoth
//    / IntervalMultiplyDenseTranspose) give each shard group a private
//    cols-sized accumulator — the Gram apply is literally the block sum
//    A†ᵀA† = Σ_s M_sᵀ M_s — and reduce the partials column-parallel in
//    fixed group order, the same deterministic scheme the monolithic
//    kernels use (equal to the serial result up to roundoff, bit-stable
//    across calls on a fixed machine).
//
// Backing (BackingPolicy): shards own heap buffers (kMemory), or mmap
// segment files written through shard_store.h (kMmap) — the out-of-core
// path, where a Lanczos decomposition streams shard files through the page
// cache and (with a budget set) drops each shard's residency after every
// pass, keeping peak RSS near one working set instead of the whole store.
// kAuto picks per matrix by comparing the estimated store bytes against a
// budget. A third, zero-copy mode (View) shards an existing in-memory
// SparseIntervalMatrix by reference for serving snapshots — no data is
// copied, only the row partition and the dispatch change.
//
// The ShardedGramOperator / ShardedEndpointMap adapters at the bottom
// plug the sharded kernels into the unchanged Lanczos drivers: the sparse
// ISVD strategies run out-of-core through exactly the solver code the
// in-memory path uses. Note the Gram side is always MᵀM here (cols²
// scratch): the alternative MMᵀ side would materialize a transposed
// store, which is exactly what out-of-core operation cannot afford.

#ifndef IVMF_SPARSE_BLOCK_MATRIX_H_
#define IVMF_SPARSE_BLOCK_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "interval/interval_matrix.h"
#include "linalg/linear_operator.h"
#include "sparse/shard_store.h"
#include "sparse/sell_matrix.h"
#include "sparse/sparse_gram_operator.h"
#include "sparse/sparse_interval_matrix.h"

namespace ivmf {

class ShardedSparseIntervalMatrix {
 public:
  using Endpoint = SparseIntervalMatrix::Endpoint;

  // An empty 0 x 0 matrix with no shards.
  ShardedSparseIntervalMatrix() = default;
  ~ShardedSparseIntervalMatrix();

  // Movable, not copyable (shards may hold mmap handles / a temp store).
  ShardedSparseIntervalMatrix(ShardedSparseIntervalMatrix&&) noexcept;
  ShardedSparseIntervalMatrix& operator=(
      ShardedSparseIntervalMatrix&&) noexcept;
  ShardedSparseIntervalMatrix(const ShardedSparseIntervalMatrix&) = delete;
  ShardedSparseIntervalMatrix& operator=(const ShardedSparseIntervalMatrix&) =
      delete;

  // Builds from triplets (same semantics as the monolithic FromTriplets,
  // including DuplicatePolicy), then segments into ceil(rows / shard_rows)
  // shards under `policy`.
  static ShardedSparseIntervalMatrix FromTriplets(
      size_t rows, size_t cols, std::vector<IntervalTriplet> triplets,
      size_t shard_rows, BackingPolicy policy = BackingPolicy::Memory(),
      DuplicatePolicy duplicates = DuplicatePolicy::kMergeHull);

  // Segments an existing CSR matrix. The source is only read.
  static ShardedSparseIntervalMatrix FromCsr(
      const SparseIntervalMatrix& m, size_t shard_rows,
      BackingPolicy policy = BackingPolicy::Memory());

  // Zero-copy row partition over an in-memory matrix: shards reference the
  // base's CSR arrays and packed sidecar directly. This is what serving
  // snapshots freeze — the partition and shard-parallel dispatch without
  // duplicating the store. The base is held alive by the shared_ptr.
  static ShardedSparseIntervalMatrix View(
      std::shared_ptr<const SparseIntervalMatrix> base, size_t shard_rows);

  // Re-opens a persisted mmap store directory (shard_0.ivsh, shard_1.ivsh,
  // ...) written by a previous process — the crash-consistency /
  // reopen path. All shards but the last must share one row count.
  // Returns false and sets *error if the directory holds no valid store.
  static bool OpenStore(const std::string& dir,
                        ShardedSparseIntervalMatrix* out, std::string* error);

  // Row-streaming construction: appends entries in ascending (row, col)
  // order and flushes one shard at a time, so building an N-shard mmap
  // store holds at most one shard's arrays in memory — the out-of-core
  // ingest path. BackingPolicy::kAuto resolves to kMmap here (the builder
  // cannot know the final size up front). Defined after the class.
  class Builder;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return nnz_; }
  size_t shard_rows() const { return shard_rows_; }
  size_t num_shards() const { return shards_.size(); }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  // True when shards are mmap segment files rather than heap buffers.
  bool mmap_backed() const { return mmap_backed_; }
  // The segment directory ("" for memory/view backing). Temp directories
  // (empty BackingPolicy::store_dir) are removed by the destructor;
  // explicit directories persist for OpenStore.
  const std::string& store_dir() const { return store_dir_; }

  // The concrete backend the shard kernels dispatch on (resolved at
  // construction from the request / environment / row statistics; never
  // kAuto). SELL applies to memory-backed shards only — mapped and
  // view-backed shards run the packed-CSR variant.
  spk::Backend resolved_kernel() const { return resolved_; }

  // Entry lookup by shard + binary search within the row.
  Interval At(size_t i, size_t j) const;

  // Materializes a monolithic CSR copy (tests, small matrices).
  SparseIntervalMatrix ToCsr() const;

  bool IsProper() const;
  bool IsNonNegative(double tol = 0.0) const;

  // -- Kernels (monolithic semantics, shard-parallel execution) --------------
  // Aliasing contract as in SparseIntervalMatrix: outputs must not alias
  // inputs or each other.

  // y = A_e x (y resized to rows()); one pool task per shard.
  void Multiply(Endpoint e, const std::vector<double>& x,
                std::vector<double>& y) const;

  // y = ((A_* + A^*) / 2) x.
  void MultiplyMid(const std::vector<double>& x, std::vector<double>& y) const;

  // y_lo = A_* x, y_hi = A^* x in one pattern pass per shard.
  void MultiplyBoth(const std::vector<double>& x, std::vector<double>& y_lo,
                    std::vector<double>& y_hi) const;

  // y = A_eᵀ x via per-group scatter partials + fixed-order reduction.
  void MultiplyTranspose(Endpoint e, const std::vector<double>& x,
                         std::vector<double>& y) const;

  // y = ((A_* + A^*) / 2)ᵀ x — the midpoint transpose (a sharded store has
  // no materialized transpose to run forward).
  void MultiplyTransposeMid(const std::vector<double>& x,
                            std::vector<double>& y) const;

  // y = A_eᵀ (A_e x) = Σ_s M_sᵀ (M_s x): fused one-pass Gram per shard
  // into group partials, reduced in fixed order. Never materializes a
  // transpose — this is the operator under the out-of-core ISVD2-4.
  void GramMultiply(Endpoint e, const std::vector<double>& x,
                    std::vector<double>& y) const;

  // Both endpoint Gram actions fused over one pattern pass per shard.
  void GramMultiplyBoth(const std::vector<double>& x,
                        std::vector<double>& y_lo,
                        std::vector<double>& y_hi) const;

  // C = A_e B for dense B (cols() x k), row-parallel over shards.
  Matrix MultiplyDense(Endpoint e, const Matrix& b) const;

  // C† = A† B, elementwise min/max of the fused endpoint products.
  IntervalMatrix IntervalMultiplyDense(const Matrix& b) const;

  // C† = A†ᵀ B for dense B (rows() x k): the transposed interval product
  // (what the monolithic path computes as Transpose().IntervalMultiplyDense)
  // via per-group scatter partials — again with no materialized transpose.
  IntervalMatrix IntervalMultiplyDenseTranspose(const Matrix& b) const;

  // The dense Gram / Algorithm-1 interval Gram endpoints, accumulated
  // shard-sequentially in ascending row order — the identical addition
  // order as the monolithic SparseGramOperator statics, so results are
  // bit-identical. (The signed route stays dense by design; see ROADMAP
  // "operator-form signed Gram".)
  static Matrix DenseGram(const ShardedSparseIntervalMatrix& m, Endpoint e);
  static IntervalMatrix DenseGramEndpoints(
      const ShardedSparseIntervalMatrix& m);

 private:
  friend class Builder;

  // One block-row segment. Exactly one of three states: owned arrays
  // (memory backing), a mapped segment (mmap backing), or neither (view
  // backing — the base matrix's arrays are referenced through base_).
  struct Shard {
    size_t row_begin = 0;
    size_t rows = 0;
    size_t nnz = 0;
    std::vector<size_t> row_ptr;  // local base-0 offsets (owned shards)
    std::vector<uint32_t> col;    // global columns, packed (owned shards)
    std::vector<double> lo;
    std::vector<double> hi;
    MappedSegment mapped;
    std::shared_ptr<const SellPack> sell;  // owned shards on kSell only
  };

  // Kernel-facing description of one shard: a packed view plus the row
  // range to run and the offset translating view rows to global rows.
  struct SegRef {
    spk::PackedCsrView view;
    const double* lo = nullptr;
    const double* hi = nullptr;
    size_t row_begin = 0;  // range within `view`
    size_t row_end = 0;
    size_t offset = 0;  // global row of view-row row_begin, minus row_begin
    const SellPack* sell = nullptr;
    const MappedSegment* mapped = nullptr;
  };
  SegRef Seg(size_t s) const;

  // Fixes resolved_ / csr_variant_ from the request, the environment, and
  // (for a still-kAuto request) the matrix's own row-length statistics.
  void ResolveBackend(spk::Backend request);
  void BuildSellSidecars();
  void MaybeDropResidency(const SegRef& seg) const;

  // Shared scaffolding of the scatter-reduction kernels: partitions shards
  // into deterministic contiguous groups, hands each group zero-filled
  // acc_len-sized accumulators (one, or two when out1 != nullptr) to fill
  // shard-sequentially, then reduces group partials in fixed order.
  template <typename ScatterFn>
  void ReduceOverShards(size_t acc_len, ScatterFn&& scatter,
                        std::vector<double>* out0,
                        std::vector<double>* out1) const;

  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t nnz_ = 0;
  size_t shard_rows_ = 0;
  std::vector<Shard> shards_;
  std::shared_ptr<const SparseIntervalMatrix> base_;  // view backing only
  spk::Backend resolved_ = spk::Backend::kScalar;
  spk::Backend csr_variant_ = spk::Backend::kScalar;  // kAvx2 or kScalar
  bool mmap_backed_ = false;
  std::string store_dir_;
  bool owns_store_ = false;
  bool drop_residency_ = false;
};

class ShardedSparseIntervalMatrix::Builder {
 public:
  Builder(size_t rows, size_t cols, size_t shard_rows, BackingPolicy policy);

  // Entries must arrive in strictly ascending (row, col) order; rows may
  // be skipped (they are empty).
  void Append(size_t row, size_t col, const Interval& value);

  // Flushes the tail shard and returns the matrix. The builder is spent.
  ShardedSparseIntervalMatrix Finish();

 private:
  // Seals the currently filling shard (padding trailing empty rows) and
  // appends it to the matrix — to a segment file under mmap backing.
  void FlushShard();

  ShardedSparseIntervalMatrix m_;
  std::vector<size_t> row_ptr_;  // current shard, local base-0
  std::vector<uint32_t> col_;
  std::vector<double> lo_;
  std::vector<double> hi_;
  size_t next_row_ = 0;      // global row of the last appended entry
  size_t flushed_rows_ = 0;  // rows already flushed into shards
  size_t last_col_ = 0;
  bool row_open_ = false;
  bool finished_ = false;
  bool mmap_ = false;
};

// The symmetric operator x -> M_eᵀ (M_e x) over a sharded store — the
// LinearOperator ComputeLanczosEig consumes, making ISVD2-4 out-of-core
// without touching the solver. Gram side is MᵀM by construction.
class ShardedGramOperator final : public LinearOperator {
 public:
  ShardedGramOperator(const ShardedSparseIntervalMatrix& m,
                      ShardedSparseIntervalMatrix::Endpoint endpoint)
      : m_(m), endpoint_(endpoint) {}

  size_t Dim() const override { return m_.cols(); }

  void Apply(const std::vector<double>& x,
             std::vector<double>& y) const override {
    m_.GramMultiply(endpoint_, x, y);
  }

 private:
  const ShardedSparseIntervalMatrix& m_;
  ShardedSparseIntervalMatrix::Endpoint endpoint_;
};

// An endpoint (or midpoint) matrix of a sharded store as a rectangular
// LinearMap — the input to the Golub-Kahan-Lanczos SVD behind ISVD0/1.
// ApplyTranspose runs the scatter reduction (no transposed store exists).
class ShardedEndpointMap final : public LinearMap {
 public:
  using Part = SparseEndpointMap::Part;

  ShardedEndpointMap(const ShardedSparseIntervalMatrix& m, Part part)
      : m_(m), part_(part) {}

  size_t Rows() const override { return m_.rows(); }
  size_t Cols() const override { return m_.cols(); }

  void Apply(const std::vector<double>& x,
             std::vector<double>& y) const override {
    switch (part_) {
      case Part::kLower:
        m_.Multiply(ShardedSparseIntervalMatrix::Endpoint::kLower, x, y);
        break;
      case Part::kUpper:
        m_.Multiply(ShardedSparseIntervalMatrix::Endpoint::kUpper, x, y);
        break;
      case Part::kMid:
        m_.MultiplyMid(x, y);
        break;
    }
  }

  void ApplyTranspose(const std::vector<double>& x,
                      std::vector<double>& y) const override {
    switch (part_) {
      case Part::kLower:
        m_.MultiplyTranspose(ShardedSparseIntervalMatrix::Endpoint::kLower, x,
                             y);
        break;
      case Part::kUpper:
        m_.MultiplyTranspose(ShardedSparseIntervalMatrix::Endpoint::kUpper, x,
                             y);
        break;
      case Part::kMid:
        m_.MultiplyTransposeMid(x, y);
        break;
    }
  }

 private:
  const ShardedSparseIntervalMatrix& m_;
  Part part_;
};

}  // namespace ivmf

#endif  // IVMF_SPARSE_BLOCK_MATRIX_H_
