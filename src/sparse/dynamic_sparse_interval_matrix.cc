#include "sparse/dynamic_sparse_interval_matrix.h"

#include <algorithm>

#include "base/check.h"

namespace ivmf {

DynamicSparseIntervalMatrix::DynamicSparseIntervalMatrix(size_t rows,
                                                         size_t cols)
    : base_(SparseIntervalMatrix::FromTriplets(rows, cols, {})) {}

DynamicSparseIntervalMatrix::DynamicSparseIntervalMatrix(
    SparseIntervalMatrix base)
    : base_(std::move(base)) {}

double DynamicSparseIntervalMatrix::DeltaFraction() const {
  if (delta_.empty()) return 0.0;
  if (base_.nnz() == 0) return 1.0;
  return static_cast<double>(delta_.size()) /
         static_cast<double>(base_.nnz());
}

Interval DynamicSparseIntervalMatrix::At(size_t i, size_t j) const {
  IVMF_CHECK_MSG(i < rows() && j < cols(), "cell outside the matrix shape");
  const auto it = delta_.find({i, j});
  if (it != delta_.end()) return it->second;
  return base_.At(i, j);
}

bool DynamicSparseIntervalMatrix::BaseHasCell(size_t i, size_t j) const {
  const std::vector<size_t>& col_idx = base_.col_idx();
  const auto begin =
      col_idx.begin() + static_cast<ptrdiff_t>(base_.row_ptr()[i]);
  const auto end =
      col_idx.begin() + static_cast<ptrdiff_t>(base_.row_ptr()[i + 1]);
  return std::binary_search(begin, end, j);
}

Interval DynamicSparseIntervalMatrix::Upsert(size_t i, size_t j,
                                             Interval value) {
  IVMF_CHECK_MSG(i < rows() && j < cols(), "cell outside the matrix shape");
  frozen_.reset();  // any mutation starts a new SharedSnapshot epoch
  const std::pair<size_t, size_t> key(i, j);
  const auto it = delta_.find(key);
  if (it != delta_.end()) {
    // Revising a logged cell: the base overlap relation is unchanged.
    const Interval previous = it->second;
    it->second = value;
    return previous;
  }
  const bool in_base = BaseHasCell(i, j);
  const Interval previous = in_base ? base_.At(i, j) : Interval();
  delta_.emplace(key, value);
  if (in_base) ++overlap_;
  return previous;
}

std::shared_ptr<const SparseIntervalMatrix>
DynamicSparseIntervalMatrix::SharedSnapshot() {
  if (frozen_ == nullptr) {
    frozen_ = std::make_shared<const SparseIntervalMatrix>(Snapshot());
  }
  return frozen_;
}

void DynamicSparseIntervalMatrix::ApplyBatch(
    const std::vector<IntervalTriplet>& batch) {
  for (const IntervalTriplet& t : batch) Upsert(t.row, t.col, t.value);
}

SparseIntervalMatrix DynamicSparseIntervalMatrix::Snapshot() const {
  if (delta_.empty()) return base_;

  const size_t n = rows();
  std::vector<size_t> row_ptr(n + 1, 0);
  std::vector<size_t> col_idx;
  std::vector<double> lo, hi;
  col_idx.reserve(nnz());
  lo.reserve(nnz());
  hi.reserve(nnz());

  const std::vector<size_t>& b_ptr = base_.row_ptr();
  const std::vector<size_t>& b_col = base_.col_idx();
  const std::vector<double>& b_lo = base_.lower_values();
  const std::vector<double>& b_hi = base_.upper_values();

  auto d_it = delta_.begin();
  for (size_t i = 0; i < n; ++i) {
    size_t k = b_ptr[i];
    const size_t k_end = b_ptr[i + 1];
    // Two-pointer merge of the base row and the log's row range; the log
    // wins on a shared column.
    while (k < k_end || (d_it != delta_.end() && d_it->first.first == i)) {
      const bool have_delta =
          d_it != delta_.end() && d_it->first.first == i;
      if (!have_delta || (k < k_end && b_col[k] < d_it->first.second)) {
        col_idx.push_back(b_col[k]);
        lo.push_back(b_lo[k]);
        hi.push_back(b_hi[k]);
        ++k;
      } else {
        if (k < k_end && b_col[k] == d_it->first.second) ++k;  // shadowed
        col_idx.push_back(d_it->first.second);
        lo.push_back(d_it->second.lo);
        hi.push_back(d_it->second.hi);
        ++d_it;
      }
    }
    row_ptr[i + 1] = col_idx.size();
  }
  SparseIntervalMatrix merged = SparseIntervalMatrix::FromCsr(
      n, cols(), std::move(row_ptr), std::move(col_idx), std::move(lo),
      std::move(hi));
  // Snapshots inherit the base's kernel backend, so a per-matrix selection
  // survives the streaming refresh path (StreamingIsvd, ServingEngine).
  merged.set_kernel(base_.kernel());
  return merged;
}

void DynamicSparseIntervalMatrix::Compact() {
  // Compaction does not change the matrix content, so an existing frozen
  // view stays valid — and when one exists with an empty log it already IS
  // the compacted form, making the fold a shared-copy adoption.
  if (delta_.empty()) return;
  if (frozen_ != nullptr) {
    base_ = *frozen_;
  } else {
    base_ = Snapshot();
  }
  delta_.clear();
  overlap_ = 0;
}

bool DynamicSparseIntervalMatrix::MaybeCompact(double max_delta_fraction) {
  if (delta_.empty()) return false;
  if (DeltaFraction() <= max_delta_fraction) return false;
  Compact();
  return true;
}

}  // namespace ivmf
