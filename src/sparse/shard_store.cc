#include "sparse/shard_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "base/check.h"
#include "obs/metrics.h"

namespace ivmf {

// The mapped u64 offset array is reinterpreted as size_t for the kernel
// views; both must be 8 bytes for the file format to be host-compatible.
static_assert(sizeof(size_t) == 8, "shard store requires a 64-bit host");

namespace {

constexpr char kMagic[8] = {'I', 'V', 'S', 'H', 'A', 'R', 'D', '1'};

struct ShardHeader {
  char magic[8];
  uint64_t rows;
  uint64_t cols;
  uint64_t nnz;
  uint64_t reserved;
};
static_assert(sizeof(ShardHeader) == 40, "header layout is part of the format");

size_t AlignUp8(size_t n) { return (n + 7) & ~size_t{7}; }

struct StoreInstruments {
  obs::Counter& files_written;
  obs::Counter& bytes_written;
  obs::Counter& files_mapped;
  obs::Counter& residency_drops;
  obs::Gauge& mapped_bytes;

  static StoreInstruments& Get() {
    static StoreInstruments* instruments = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return new StoreInstruments{
          registry.GetCounter("sparse.shard.files.written"),
          registry.GetCounter("sparse.shard.bytes.written"),
          registry.GetCounter("sparse.shard.files.mapped"),
          registry.GetCounter("sparse.shard.residency.drops"),
          registry.GetGauge("sparse.shard.mapped.bytes"),
      };
    }();
    return *instruments;
  }
};

std::atomic<size_t> g_mapped_bytes{0};

void AddMappedBytes(size_t bytes) {
  const size_t now =
      g_mapped_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  StoreInstruments::Get().mapped_bytes.Set(static_cast<double>(now));
}

void SubMappedBytes(size_t bytes) {
  const size_t now =
      g_mapped_bytes.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  StoreInstruments::Get().mapped_bytes.Set(static_cast<double>(now));
}

bool WriteAll(int fd, const void* data, size_t bytes, std::string* error) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::write(fd, p, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("write failed: ") + std::strerror(errno);
      return false;
    }
    p += n;
    bytes -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

MappedSegment::~MappedSegment() { Release(); }

MappedSegment::MappedSegment(MappedSegment&& other) noexcept {
  *this = std::move(other);
}

MappedSegment& MappedSegment::operator=(MappedSegment&& other) noexcept {
  if (this == &other) return *this;
  Release();
  base_ = other.base_;
  bytes_ = other.bytes_;
  rows_ = other.rows_;
  cols_ = other.cols_;
  nnz_ = other.nnz_;
  row_ptr_ = other.row_ptr_;
  col_ = other.col_;
  lo_ = other.lo_;
  hi_ = other.hi_;
  other.base_ = nullptr;
  other.bytes_ = 0;
  other.row_ptr_ = nullptr;
  other.col_ = nullptr;
  other.lo_ = nullptr;
  other.hi_ = nullptr;
  return *this;
}

void MappedSegment::Release() {
  if (base_ == nullptr) return;
  ::munmap(base_, bytes_);
  SubMappedBytes(bytes_);
  base_ = nullptr;
  bytes_ = 0;
}

void MappedSegment::AdviseSequential() const {
  if (base_ != nullptr) ::madvise(base_, bytes_, MADV_SEQUENTIAL);
}

void MappedSegment::DropResidency() const {
  if (base_ == nullptr) return;
  ::madvise(base_, bytes_, MADV_DONTNEED);
  StoreInstruments::Get().residency_drops.Add();
}

std::string ShardFileName(size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%zu.ivsh", index);
  return buf;
}

size_t ShardFileBytes(size_t rows, size_t nnz) {
  return sizeof(ShardHeader) + (rows + 1) * sizeof(uint64_t) +
         AlignUp8(nnz * sizeof(uint32_t)) + 2 * nnz * sizeof(double);
}

bool WriteShardFile(const std::string& path, size_t rows, size_t cols,
                    const size_t* row_ptr, const uint32_t* col,
                    const double* lo, const double* hi, std::string* error) {
  IVMF_CHECK(error != nullptr);
  const size_t nnz = row_ptr[rows];
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    *error = "open(" + tmp + ") failed: " + std::strerror(errno);
    return false;
  }

  ShardHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.rows = rows;
  header.cols = cols;
  header.nnz = nnz;

  const uint64_t pad = 0;
  const size_t col_bytes = nnz * sizeof(uint32_t);
  const size_t col_pad = AlignUp8(col_bytes) - col_bytes;
  bool ok = WriteAll(fd, &header, sizeof(header), error) &&
            WriteAll(fd, row_ptr, (rows + 1) * sizeof(uint64_t), error) &&
            WriteAll(fd, col, col_bytes, error) &&
            (col_pad == 0 || WriteAll(fd, &pad, col_pad, error)) &&
            WriteAll(fd, lo, nnz * sizeof(double), error) &&
            WriteAll(fd, hi, nnz * sizeof(double), error);
  if (ok && ::fsync(fd) != 0) {
    *error = "fsync failed: " + std::string(std::strerror(errno));
    ok = false;
  }
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "rename to " + path + " failed: " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  auto& instruments = StoreInstruments::Get();
  instruments.files_written.Add();
  instruments.bytes_written.Add(ShardFileBytes(rows, nnz));
  return true;
}

bool MapShardFile(const std::string& path, MappedSegment* out,
                  std::string* error) {
  IVMF_CHECK(out != nullptr && error != nullptr);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    *error = "open(" + path + ") failed: " + std::strerror(errno);
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    *error = "fstat(" + path + ") failed: " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  const size_t file_bytes = static_cast<size_t>(st.st_size);
  if (file_bytes < sizeof(ShardHeader)) {
    *error = path + ": file shorter than the shard header";
    ::close(fd);
    return false;
  }
  void* base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    *error = "mmap(" + path + ") failed: " + std::strerror(errno);
    return false;
  }

  const auto fail = [&](const std::string& why) {
    ::munmap(base, file_bytes);
    *error = path + ": " + why;
    return false;
  };

  ShardHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic (not a shard segment file)");
  }
  const size_t rows = header.rows;
  const size_t nnz = header.nnz;
  if (file_bytes != ShardFileBytes(rows, nnz)) {
    return fail("file length does not match the header shape (truncated?)");
  }

  const char* p = static_cast<const char*>(base) + sizeof(ShardHeader);
  const auto* row_ptr = reinterpret_cast<const uint64_t*>(p);
  p += (rows + 1) * sizeof(uint64_t);
  const auto* col = reinterpret_cast<const uint32_t*>(p);
  p += AlignUp8(nnz * sizeof(uint32_t));
  const auto* lo = reinterpret_cast<const double*>(p);
  p += nnz * sizeof(double);
  const auto* hi = reinterpret_cast<const double*>(p);

  if (row_ptr[0] != 0 || row_ptr[rows] != nnz) {
    return fail("row offsets do not span the entry arrays");
  }
  for (size_t i = 0; i < rows; ++i) {
    if (row_ptr[i] > row_ptr[i + 1]) return fail("row offsets not monotone");
  }
  for (size_t k = 0; k < nnz; ++k) {
    if (col[k] >= header.cols) return fail("column index outside the shape");
  }

  out->Release();
  out->base_ = base;
  out->bytes_ = file_bytes;
  out->rows_ = rows;
  out->cols_ = header.cols;
  out->nnz_ = nnz;
  out->row_ptr_ = reinterpret_cast<const size_t*>(row_ptr);
  out->col_ = col;
  out->lo_ = lo;
  out->hi_ = hi;
  AddMappedBytes(file_bytes);
  StoreInstruments::Get().files_mapped.Add();
  return true;
}

std::string CreateTempStoreDir(std::string* error) {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string pattern =
      std::string(tmpdir != nullptr && tmpdir[0] != '\0' ? tmpdir : "/tmp") +
      "/ivmf_shards_XXXXXX";
  std::vector<char> buf(pattern.begin(), pattern.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    if (error != nullptr) {
      *error = "mkdtemp(" + pattern + ") failed: " + std::strerror(errno);
    }
    return {};
  }
  return buf.data();
}

void RemoveStoreDir(const std::string& dir) {
  if (dir.empty()) return;
  // Shard files are dense-numbered from 0; stop at the first gap and let
  // rmdir fail harmlessly if anything else lives in the directory.
  for (size_t k = 0;; ++k) {
    const std::string path = dir + "/" + ShardFileName(k);
    if (::unlink(path.c_str()) != 0) break;
  }
  ::rmdir(dir.c_str());
}

size_t MappedBytesTotal() {
  return g_mapped_bytes.load(std::memory_order_relaxed);
}

}  // namespace ivmf
