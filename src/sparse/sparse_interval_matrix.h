// CSR-backed sparse interval-valued matrices.
//
// The paper's recommender workloads (Section 6.1.3, Figure 10) operate on
// rating matrices that are ~85% empty; the dense IntervalMatrix pair wastes
// both memory and flops there. SparseIntervalMatrix stores one compressed
// sparsity pattern shared by the two endpoint value arrays — structurally
// a CSR matrix whose values are [lo, hi] pairs — plus the endpoint kernels
// (sparse x vector, sparse x dense, row/column norms) the matrix-free ISVD
// path is built from. All absent entries are the scalar zero interval
// [0, 0], exactly like the unobserved cells of the dense constructions.

#ifndef IVMF_SPARSE_SPARSE_INTERVAL_MATRIX_H_
#define IVMF_SPARSE_SPARSE_INTERVAL_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "interval/interval.h"
#include "interval/interval_matrix.h"
#include "linalg/matrix.h"
#include "sparse/sell_matrix.h"
#include "sparse/sparse_kernels.h"

namespace ivmf {

// One explicit entry of a sparse interval matrix (0-based indices).
struct IntervalTriplet {
  size_t row = 0;
  size_t col = 0;
  Interval value;
};

// What to do when two triplets name the same (row, col) cell.
//
// The library-wide convention (decided with the streaming subsystem, which
// made the question unavoidable): *in-memory* construction merges duplicate
// observations to their interval hull — the natural semantics when several
// measurements of one quantity arrive as intervals — while the *serialized*
// triplet format treats a duplicated cell as corruption, because a written
// stream is sorted and unique, so a duplicate always means the file lied
// about its entry count. Both entry points take this enum so either side
// can opt into the other behavior; io/triplets.h documents the reader side.
enum class DuplicatePolicy {
  kMergeHull,  // duplicates collapse to [min lo, max hi]
  kReject,     // duplicates are a precondition violation
};

class SparseIntervalMatrix {
 public:
  // Which endpoint value array a kernel reads: M_* (lower) or M^* (upper).
  enum class Endpoint { kLower, kUpper };

  // An empty 0 x 0 matrix.
  SparseIntervalMatrix() = default;

  // Builds a rows x cols matrix from explicit entries. Triplets may arrive
  // in any order; duplicates at the same (row, col) follow `duplicates` —
  // by default they merge to their interval hull (see DuplicatePolicy for
  // the rationale), while kReject makes a duplicated cell a checked
  // precondition violation, matching the strict triplet reader. Indices
  // must lie inside the shape.
  static SparseIntervalMatrix FromTriplets(
      size_t rows, size_t cols, std::vector<IntervalTriplet> triplets,
      DuplicatePolicy duplicates = DuplicatePolicy::kMergeHull);

  // Compresses a dense interval matrix, dropping entries whose endpoints are
  // both within `tol` of zero.
  static SparseIntervalMatrix FromDense(const IntervalMatrix& dense,
                                        double tol = 0.0);

  // Adopts prebuilt CSR arrays without the FromTriplets sort: `row_ptr` has
  // rows + 1 monotone offsets, `col_idx` ascending unique columns per row,
  // `lo`/`hi` the endpoint values. The O(nnz) structural invariants are
  // checked. This is the fast path for producers that already emit
  // row-major order (DynamicSparseIntervalMatrix::Snapshot's delta-log
  // merge).
  static SparseIntervalMatrix FromCsr(size_t rows, size_t cols,
                                      std::vector<size_t> row_ptr,
                                      std::vector<size_t> col_idx,
                                      std::vector<double> lo,
                                      std::vector<double> hi);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return col_idx_.size(); }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  // nnz / (rows * cols); 0 for an empty shape.
  double FillFraction() const;

  // Entry lookup by binary search within the row: O(log row_nnz). Absent
  // entries are the scalar zero interval.
  Interval At(size_t i, size_t j) const;

  // Materializes the dense endpoint pair (absent entries become [0, 0]).
  IntervalMatrix ToDense() const;

  // Explicit entries in row-major order.
  std::vector<IntervalTriplet> ToTriplets() const;

  // CSR of the transpose. O(nnz); the two endpoint arrays share the single
  // transposed pattern, like the forward matrix.
  SparseIntervalMatrix Transpose() const;

  // True when every stored entry satisfies lo <= hi.
  bool IsProper() const;

  // True when every stored lower endpoint is >= -tol. Entrywise
  // non-negativity is the precondition under which the Algorithm-1 interval
  // Gram endpoints coincide with M_*ᵀM_* and M^*ᵀM^* (see
  // IntervalMatMulExact's doc) — the matrix-free ISVD path relies on it.
  bool IsNonNegative(double tol = 0.0) const;

  // -- Kernel backend selection ----------------------------------------------
  // Every kernel below dispatches through one of the backends in
  // sparse_kernels.h: the scalar reference loops, AVX2 register-blocked CSR
  // rows (runtime cpuid, portable fallback), or a SELL-C-4 padded layout
  // built lazily as an immutable sidecar the first time a SELL kernel runs
  // (kernels the SELL layout does not cover — transpose, dense, pair — use
  // the dispatched CSR variant). The default kAuto defers to the
  // IVMF_SPARSE_KERNEL environment variable (scalar|avx2|sell|auto), then
  // to cpuid, so call sites never change: Lanczos eig/SVD, StreamingIsvd,
  // and the serving refresh path all pick the backend up through here.
  // Transpose() propagates the selection; the obs matvec counters tag each
  // call with the variant that actually ran.
  //
  // When both the per-matrix request and IVMF_SPARSE_KERNEL are kAuto, the
  // matrix refines the choice from its own row-length statistics
  // (spk::ChooseAutoBackend): short-row / irregular patterns get the SELL
  // layout, long-row CF shapes keep packed CSR. The statistics pass is
  // O(rows), runs once, and is cached alongside the SELL/packed sidecars.

  void set_kernel(spk::Backend backend) { kernel_ = backend; }
  spk::Backend kernel() const { return kernel_; }

  // The backend request after per-matrix auto-refinement: kernel() itself
  // unless that is kAuto with no environment override, in which case the
  // row-statistics choice (a concrete backend). Every kernel below
  // dispatches on spk::Resolve / spk::CsrVariant of this.
  spk::Backend ResolvedKernel() const;

  // -- Kernels ---------------------------------------------------------------
  // All kernels are deterministic for a fixed machine and backend.
  // Row-partitioned kernels (Multiply, MultiplyDense, MultiplyMid,
  // MultiplyBoth, MultiplyPair) compute every output entry from exactly the
  // serial loop's terms — vectorized variants reassociate within a row by a
  // fixed lane blocking, so they agree with the scalar reference to
  // roundoff and are bit-stable across calls. MultiplyTranspose reduces
  // per-thread partial accumulators, so its summation order differs from the
  // serial scatter by a fixed blocking (bit-stable across calls, equal to
  // the serial result up to roundoff).
  //
  // Aliasing contract (checked): output vectors may not alias input vectors
  // or each other — the kernels stream inputs while writing outputs in
  // blocked order, so in-place calls would read half-written data. Inputs
  // must be finite (SELL padding multiplies 0 by x[0]; an Inf/NaN there
  // would poison a padded lane).

  // y = A_e x (y resized to rows()). Parallelized over rows.
  void Multiply(Endpoint e, const std::vector<double>& x,
                std::vector<double>& y) const;

  // y_lo = A_* x and y_hi = A^* x fused over the shared pattern in one
  // pass (one gather feeds both endpoint accumulators); y_lo/y_hi resized
  // to rows(). The fused endpoint path under SparseGramOperator::ApplyBoth
  // and IntervalMultiplyDense.
  void MultiplyBoth(const std::vector<double>& x, std::vector<double>& y_lo,
                    std::vector<double>& y_hi) const;

  // y_lo = A_* x_lo and y_hi = A^* x_hi in one pattern pass — the second
  // Gram stage of ApplyBoth, where each endpoint chain carries its own
  // vector. Outputs resized to rows().
  void MultiplyPair(const std::vector<double>& x_lo,
                    const std::vector<double>& x_hi,
                    std::vector<double>& y_lo,
                    std::vector<double>& y_hi) const;

  // y = ((A_* + A^*) / 2) x — the midpoint-matrix action fused over the
  // shared pattern (y resized to rows()). Parallelized over rows. Backs the
  // matrix-free sparse ISVD0, which decomposes the midpoint matrix without
  // materializing it.
  void MultiplyMid(const std::vector<double>& x, std::vector<double>& y) const;

  // y = A_eᵀ x (y resized to cols()). Parallelized with per-thread partial
  // accumulators over row blocks followed by a column-parallel reduction;
  // iterative solvers that apply the transpose many times may still prefer
  // holding a Transpose() and calling Multiply on it (streaming reads beat
  // the scatter).
  void MultiplyTranspose(Endpoint e, const std::vector<double>& x,
                         std::vector<double>& y) const;

  // C = A_e * B for dense B (cols() x k). Parallelized over rows. A
  // zero-column B yields a rows() x 0 result without touching any storage.
  Matrix MultiplyDense(Endpoint e, const Matrix& b) const;

  // C† = A† * B for a dense scalar B, matching the dense mixed-operand
  // IntervalMatMul exactly: C_lo / C_hi are the elementwise min / max of the
  // two full endpoint products A_* B and A^* B.
  IntervalMatrix IntervalMultiplyDense(const Matrix& b) const;

  // y = A_eᵀ (A_e x) in a single pass over the pattern (y resized to
  // cols()): each row's dot against x and its scaled scatter into y share
  // the row data while it is cache-hot, halving memory traffic versus the
  // Multiply + MultiplyTranspose composition. Same value as that
  // composition up to roundoff (summation into y is grouped by row, and
  // per-thread partials reduce like MultiplyTranspose); bit-stable across
  // calls. SparseGramOperator::Apply routes through here when the AVX2
  // backend is resolved.
  void GramMultiply(Endpoint e, const std::vector<double>& x,
                    std::vector<double>& y) const;

  // y_lo = A_*ᵀ(A_* x) and y_hi = A^*ᵀ(A^* x) fused over the shared
  // pattern in one pass — the one-pass form of MultiplyBoth + MultiplyPair.
  // Outputs resized to cols(). Backs SparseGramOperator::ApplyBoth on the
  // AVX2 backend.
  void GramMultiplyBoth(const std::vector<double>& x,
                        std::vector<double>& y_lo,
                        std::vector<double>& y_hi) const;

  // Euclidean norms of the rows / columns of the endpoint matrix A_e.
  std::vector<double> RowNorms(Endpoint e) const;
  std::vector<double> ColNorms(Endpoint e) const;

  // -- Raw CSR access (pattern shared by both endpoint arrays) ---------------

  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& lower_values() const { return lo_; }
  const std::vector<double>& upper_values() const { return hi_; }
  const std::vector<double>& values(Endpoint e) const {
    return e == Endpoint::kLower ? lo_ : hi_;
  }

 private:
  // The block-row sharded facade builds zero-copy shard views over this
  // matrix's CSR arrays and packed sidecar (sparse/block_matrix.h).
  friend class ShardedSparseIntervalMatrix;

  // Lazily-built SELL sidecar, shared by copies (the padded pack depends
  // only on the immutable CSR arrays, which copies share by value).
  struct SellSlot {
    std::once_flag once;
    std::unique_ptr<const SellPack> pack;
  };

  // Cached row-statistics auto-selection (ResolvedKernel), shared by copies
  // like the sidecars: the statistics depend only on the immutable pattern.
  struct AutoSlot {
    std::once_flag once;
    spk::Backend backend = spk::Backend::kAuto;
  };

  // Lazily-built narrow column-index sidecar for the AVX2 kernels: u16 when
  // cols() fits (the common CF shape), u32 otherwise. Exactly one of the
  // two vectors is populated. Shared by copies like the SELL pack.
  struct PackedSlot {
    std::once_flag once;
    std::vector<uint16_t> col16;
    std::vector<uint32_t> col32;
  };

  // The CSR view over this matrix's arrays, for the spk kernels.
  spk::CsrView View() const {
    return {rows_, cols_, row_ptr_.data(), col_idx_.data()};
  }

  const SellPack& EnsureSell() const;

  // The packed view over this matrix's arrays (builds the sidecar on first
  // use).
  spk::PackedCsrView PackedView() const;

  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> row_ptr_;  // rows() + 1 offsets into col_idx_/lo_/hi_
  std::vector<size_t> col_idx_;  // nnz column indices, ascending per row
  std::vector<double> lo_;       // nnz lower endpoints
  std::vector<double> hi_;       // nnz upper endpoints
  spk::Backend kernel_ = spk::Backend::kAuto;
  mutable std::shared_ptr<SellSlot> sell_ = std::make_shared<SellSlot>();
  mutable std::shared_ptr<PackedSlot> packed_ = std::make_shared<PackedSlot>();
  mutable std::shared_ptr<AutoSlot> auto_ = std::make_shared<AutoSlot>();
};

}  // namespace ivmf

#endif  // IVMF_SPARSE_SPARSE_INTERVAL_MATRIX_H_
