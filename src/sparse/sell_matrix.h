// SELL-C-sigma padded storage for sparse interval matrices.
//
// The CSR matvec pays a per-row remainder and a horizontal reduction per
// row; on short rows (a 5%-fill ratings matrix averages a few hundred
// nonzeros, but the tail of the row-length distribution is long) that
// overhead dominates. SELL-C-sigma (Kreutzer et al.) fixes it structurally:
// rows are sorted by length inside windows of sigma rows (keeping the
// permutation local, so the output scatter stays cache-friendly), grouped
// into chunks of C consecutive rows, and each chunk is padded to its
// longest row and stored slice-major — slice s holds entry s of all C rows
// contiguously. A matvec then runs one vertical C-lane FMA per slice with
// no remainder logic, and the sigma-window sort keeps padding low on
// skewed row lengths.
//
// This pack uses C = 4 (one AVX2 register of doubles, one lane per row)
// and 32-bit column indices — half the index bandwidth of the size_t CSR
// arrays, which matters because the 20k x 5k matvec streams values+indices
// from memory. Both endpoint arrays share the single padded pattern,
// mirroring the CSR side.
//
// SellPack is an immutable sidecar built from CSR arrays (see
// SparseIntervalMatrix::set_kernel; the CSR arrays stay resident for the
// kernels SELL does not cover). Supported kernels: MatVec, MatVecMid,
// MatVecBoth. Padded lanes multiply value 0 by x[0], so inputs must be
// finite (see the contract in sparse_kernels.h).

#ifndef IVMF_SPARSE_SELL_MATRIX_H_
#define IVMF_SPARSE_SELL_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sparse/sparse_kernels.h"

namespace ivmf {

class SellPack {
 public:
  // Packs the CSR arrays (see SparseIntervalMatrix for their invariants)
  // into SELL-4-sigma form. `sigma` is the row-sorting window, rounded up
  // to a multiple of the chunk height; sigma <= C disables sorting.
  SellPack(size_t rows, size_t cols, const std::vector<size_t>& row_ptr,
           const std::vector<size_t>& col_idx, const std::vector<double>& lo,
           const std::vector<double>& hi, size_t sigma = 4096);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t chunks() const { return chunk_ptr_.size() - 1; }

  // Stored slots including padding; padded_entries() = slots - nnz. The
  // ratio is worth watching on adversarial row-length distributions — the
  // fuzz suite constructs all-nnz-in-one-row matrices where padding would
  // explode without the sigma sort.
  size_t padded_slots() const { return col_.size(); }
  size_t padded_entries() const { return col_.size() - nnz_; }

  // y = A_e x (y has rows() entries, fully overwritten). `upper` selects
  // the endpoint array. Chunk-parallel; deterministic for a fixed machine.
  void MatVec(bool upper, const double* x, double* y) const;

  // y = ((A_* + A^*) / 2) x fused over the shared padded pattern.
  void MatVecMid(const double* x, double* y) const;

  // y_lo = A_* x and y_hi = A^* x in one pattern pass.
  void MatVecBoth(const double* x, double* y_lo, double* y_hi) const;

 private:
  spk::SellView View() const {
    return {chunks(), chunk_ptr_.data(), col_.data(), perm_.data()};
  }

  template <typename ChunkFn>
  void ForChunkBlocks(ChunkFn&& fn) const;

  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t nnz_ = 0;
  bool use_avx2_ = false;           // cpuid decision, cached at build
  std::vector<size_t> chunk_ptr_;   // chunks + 1 offsets into col_/lo_/hi_
  std::vector<uint32_t> col_;       // padded columns, slice-major per chunk
  std::vector<double> lo_;          // padded lower endpoints
  std::vector<double> hi_;          // padded upper endpoints
  std::vector<size_t> perm_;        // 4 * chunks source rows (kSellPadRow pads)
};

}  // namespace ivmf

#endif  // IVMF_SPARSE_SELL_MATRIX_H_
