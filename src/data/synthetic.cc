#include "data/synthetic.h"

namespace ivmf {

IntervalMatrix GenerateUniformIntervalMatrix(const SyntheticConfig& config,
                                             Rng& rng) {
  IVMF_CHECK(config.rows > 0 && config.cols > 0);
  IVMF_CHECK(config.zero_fraction >= 0.0 && config.zero_fraction <= 1.0);
  IVMF_CHECK(config.interval_density >= 0.0 && config.interval_density <= 1.0);
  IVMF_CHECK(config.interval_intensity >= 0.0);
  IVMF_CHECK(config.value_min <= config.value_max);

  IntervalMatrix m(config.rows, config.cols);
  for (size_t i = 0; i < config.rows; ++i) {
    for (size_t j = 0; j < config.cols; ++j) {
      if (rng.Bernoulli(config.zero_fraction)) continue;  // stays [0, 0]
      const double value = rng.Uniform(config.value_min, config.value_max);
      double span = 0.0;
      if (rng.Bernoulli(config.interval_density)) {
        span = rng.Uniform(0.0, config.interval_intensity * value);
      }
      m.Set(i, j, Interval(value, value + span));
    }
  }
  return m;
}

}  // namespace ivmf
