// Synthetic uniform interval-valued matrices (Table 1 of the paper).
//
// Cells are drawn uniformly at random; a `zero_fraction` share of cells is
// zeroed ("matrix density"); an `interval_density` share of the non-zero
// cells is replaced by an interval whose span is uniform in
// [0, interval_intensity * cell value] — the cell's scalar value becomes the
// interval minimum, exactly as described in Section 6.1.1.

#ifndef IVMF_DATA_SYNTHETIC_H_
#define IVMF_DATA_SYNTHETIC_H_

#include <cstdint>

#include "base/rng.h"
#include "interval/interval_matrix.h"

namespace ivmf {

struct SyntheticConfig {
  // Matrix dimension (Table 1 default in bold: 40 x 250).
  size_t rows = 40;
  size_t cols = 250;
  // "Matrix density": fraction of cells forced to zero (0%, 50%, 90%).
  double zero_fraction = 0.0;
  // Fraction of non-zero cells carrying an interval (default 100%).
  double interval_density = 1.0;
  // Interval span is uniform in [0, intensity * value] (default 100%).
  double interval_intensity = 1.0;
  // Base scalar values are uniform in [value_min, value_max].
  double value_min = 0.1;
  double value_max = 1.0;
};

// Generates one random interval matrix with the given configuration.
IntervalMatrix GenerateUniformIntervalMatrix(const SyntheticConfig& config,
                                             Rng& rng);

// The paper's default configuration (bold values of Table 1).
inline SyntheticConfig DefaultSyntheticConfig() { return SyntheticConfig{}; }

}  // namespace ivmf

#endif  // IVMF_DATA_SYNTHETIC_H_
