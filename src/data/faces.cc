#include "data/faces.h"

#include <algorithm>
#include <cmath>

#include "base/rng.h"

namespace ivmf {
namespace {

struct Blob {
  double cx, cy;      // center in [0, 1] x [0, 1]
  double sigma;       // width
  double amplitude;   // signed intensity
};

// Renders blobs onto a width x height canvas, clamped to [0, 1].
void RenderFace(const std::vector<Blob>& blobs, size_t width, size_t height,
                double pixel_noise, Rng& rng, double* out) {
  for (size_t y = 0; y < height; ++y) {
    for (size_t x = 0; x < width; ++x) {
      const double px = (x + 0.5) / static_cast<double>(width);
      const double py = (y + 0.5) / static_cast<double>(height);
      double value = 0.45;  // background skin tone
      for (const Blob& b : blobs) {
        const double dx = px - b.cx;
        const double dy = py - b.cy;
        value += b.amplitude *
                 std::exp(-(dx * dx + dy * dy) / (2.0 * b.sigma * b.sigma));
      }
      value += pixel_noise * rng.Normal();
      out[y * width + x] = std::clamp(value, 0.0, 1.0);
    }
  }
}

}  // namespace

IntervalMatrix BuildNeighborhoodIntervals(const Matrix& images, size_t width,
                                          size_t height, size_t radius,
                                          double alpha) {
  IVMF_CHECK(images.cols() == width * height);
  IntervalMatrix result(images.rows(), images.cols());
  const long r = static_cast<long>(radius);

  for (size_t img = 0; img < images.rows(); ++img) {
    const double* pix = images.RowPtr(img);
    for (long y = 0; y < static_cast<long>(height); ++y) {
      for (long x = 0; x < static_cast<long>(width); ++x) {
        // S_ij^(r): the pixels within Chebyshev distance r (clipped at the
        // image border).
        double sum = 0.0, sumsq = 0.0;
        size_t count = 0;
        for (long dy = -r; dy <= r; ++dy) {
          const long ny = y + dy;
          if (ny < 0 || ny >= static_cast<long>(height)) continue;
          for (long dx = -r; dx <= r; ++dx) {
            const long nx = x + dx;
            if (nx < 0 || nx >= static_cast<long>(width)) continue;
            const double v = pix[ny * static_cast<long>(width) + nx];
            sum += v;
            sumsq += v * v;
            ++count;
          }
        }
        const double mean = sum / static_cast<double>(count);
        const double var =
            std::max(0.0, sumsq / static_cast<double>(count) - mean * mean);
        const double delta = alpha * std::sqrt(var);
        const size_t j = static_cast<size_t>(y) * width + static_cast<size_t>(x);
        const double center = pix[j];
        result.Set(img, j, Interval(center - delta, center + delta));
      }
    }
  }
  return result;
}

FaceCorpus GenerateFaceCorpus(const FaceCorpusConfig& config) {
  IVMF_CHECK(config.num_individuals > 0 && config.images_per_individual > 0);
  Rng rng(config.seed);

  const size_t num_images = config.num_individuals * config.images_per_individual;
  const size_t num_pixels = config.width * config.height;

  FaceCorpus corpus;
  corpus.width = config.width;
  corpus.height = config.height;
  corpus.images = Matrix(num_images, num_pixels);
  corpus.labels.resize(num_images);

  size_t row = 0;
  for (size_t person = 0; person < config.num_individuals; ++person) {
    // The individual's signature: a fixed set of blobs.
    std::vector<Blob> signature(config.blobs_per_face);
    for (Blob& b : signature) {
      b.cx = rng.Uniform(0.15, 0.85);
      b.cy = rng.Uniform(0.15, 0.85);
      b.sigma = rng.Uniform(0.06, 0.2);
      b.amplitude = rng.Uniform(0.15, 0.45) * (rng.Bernoulli(0.5) ? 1.0 : -1.0);
    }
    for (size_t shot = 0; shot < config.images_per_individual; ++shot) {
      // Per-image pose variation: jitter the blob centers and widths.
      std::vector<Blob> jittered = signature;
      for (Blob& b : jittered) {
        b.cx += config.jitter * rng.Normal();
        b.cy += config.jitter * rng.Normal();
        b.sigma *= 1.0 + 0.1 * config.jitter * rng.Normal();
      }
      RenderFace(jittered, config.width, config.height, config.pixel_noise,
                 rng, corpus.images.RowPtr(row));
      corpus.labels[row] = static_cast<int>(person);
      ++row;
    }
  }

  corpus.intervals = BuildNeighborhoodIntervals(
      corpus.images, config.width, config.height, config.neighborhood_radius,
      config.interval_alpha);
  return corpus;
}

}  // namespace ivmf
