// Data summarization into interval-valued matrices — the paper's first
// motivating scenario (Section 1.1, "Summarized data"): several scalar
// observations are grouped and collapsed into a single interval observation
// spanning the group's min..max value range.

#ifndef IVMF_DATA_SUMMARIZE_H_
#define IVMF_DATA_SUMMARIZE_H_

#include <cstddef>
#include <vector>

#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf {

// Collapses consecutive groups of `group_size` rows of `m` into one interval
// row each: cell (g, j) = [min, max] over the group's column-j values. The
// final group may be smaller when rows % group_size != 0.
IntervalMatrix SummarizeRows(const Matrix& m, size_t group_size);

// Same, but with an explicit group id per row (e.g. cluster assignments).
// Group ids must be in [0, num_groups); empty groups become zero rows.
IntervalMatrix SummarizeRowsByGroup(const Matrix& m,
                                    const std::vector<int>& group_of_row,
                                    size_t num_groups);

// Mean/stddev summarization alternative: cell (g, j) = mean ± alpha * std
// over the group (a common alternative to min/max ranges).
IntervalMatrix SummarizeRowsMeanStd(const Matrix& m, size_t group_size,
                                    double alpha);

}  // namespace ivmf

#endif  // IVMF_DATA_SUMMARIZE_H_
