#include "data/anonymize.h"

#include <algorithm>
#include <cmath>

namespace ivmf {

AnonymizationMix HighPrivacyMix() { return {0.10, 0.20, 0.30, 0.40}; }
AnonymizationMix MediumPrivacyMix() { return {0.25, 0.25, 0.25, 0.25}; }
AnonymizationMix LowPrivacyMix() { return {0.40, 0.30, 0.20, 0.10}; }

Interval GeneralizeValue(double x, double domain_lo, double domain_hi,
                         size_t bins) {
  IVMF_CHECK(bins > 0);
  if (domain_hi <= domain_lo) return Interval::Scalar(x);
  const double width = (domain_hi - domain_lo) / static_cast<double>(bins);
  double idx = std::floor((x - domain_lo) / width);
  idx = std::clamp(idx, 0.0, static_cast<double>(bins - 1));
  const double lo = domain_lo + idx * width;
  return Interval(lo, lo + width);
}

IntervalMatrix AnonymizeMatrix(const Matrix& m, const AnonymizationMix& mix,
                               Rng& rng) {
  // Domain of the published attribute.
  double lo = m(0, 0), hi = m(0, 0);
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      lo = std::min(lo, m(i, j));
      hi = std::max(hi, m(i, j));
    }
  }

  const double cum1 = mix.l1;
  const double cum2 = cum1 + mix.l2;
  const double cum3 = cum2 + mix.l3;

  IntervalMatrix result(m.rows(), m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      const double draw = rng.Uniform();
      size_t level = 3;
      if (draw < cum1) {
        level = 0;
      } else if (draw < cum2) {
        level = 1;
      } else if (draw < cum3) {
        level = 2;
      }
      result.Set(i, j,
                 GeneralizeValue(m(i, j), lo, hi, kGeneralizationBins[level]));
    }
  }
  return result;
}

}  // namespace ivmf
