// Privacy-preserving anonymization through value generalization
// (Section 6.1.1, "anonymized matrices"; in the style of recoding /
// generalization techniques such as Sweeney's k-anonymity [8]).
//
// Each scalar cell is replaced by the generalization bin that contains it:
// the data domain is split into L equal-width bins and the cell value is
// published only as its bin's [low, high) range. Four levels are used, from
// L1 (100 bins, least anonymized) to L4 (5 bins, most anonymized); a data
// set is anonymized with a *mixture* of levels (high / medium / low privacy
// mixes of the paper).

#ifndef IVMF_DATA_ANONYMIZE_H_
#define IVMF_DATA_ANONYMIZE_H_

#include <array>
#include <cstdint>

#include "base/rng.h"
#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf {

// Number of generalization bins per level (paper Section 6.1.1).
inline constexpr std::array<size_t, 4> kGeneralizationBins = {100, 50, 20, 5};

// Fractions of cells anonymized at levels L1..L4 (must sum to ~1).
struct AnonymizationMix {
  double l1 = 0.25;
  double l2 = 0.25;
  double l3 = 0.25;
  double l4 = 0.25;
};

// The three mixtures evaluated in Figure 7.
AnonymizationMix HighPrivacyMix();    // L1:10% L2:20% L3:30% L4:40%
AnonymizationMix MediumPrivacyMix();  // 25% each
AnonymizationMix LowPrivacyMix();     // L1:40% L2:30% L3:20% L4:10%

// Replaces the value `x` with its generalization interval for a domain
// [domain_lo, domain_hi] split into `bins` equal-width bins.
Interval GeneralizeValue(double x, double domain_lo, double domain_hi,
                         size_t bins);

// Anonymizes every cell of `m`: each cell independently draws a
// generalization level from `mix` and is replaced by its bin interval. The
// domain is the [min, max] value range of `m`.
IntervalMatrix AnonymizeMatrix(const Matrix& m, const AnonymizationMix& mix,
                               Rng& rng);

}  // namespace ivmf

#endif  // IVMF_DATA_ANONYMIZE_H_
