// Synthetic rating data (substitutes for MovieLens-100K and the Ciao /
// Epinions category-rating datasets of Section 6.1.3; see DESIGN.md).
//
// Ratings come from a latent-factor model whose item vectors cluster around
// per-genre prototypes, so the induced user-genre matrices carry low-rank
// structure just like the real data. Interval constructions follow the
// supplementary material: user-genre min/max ranges (F.2 eq. 4) and
// collaborative-filtering intervals X ± α · std(S_ij) where S_ij collects
// all ratings in the same row or column (F.2 eq. 5–7).

#ifndef IVMF_DATA_RATINGS_H_
#define IVMF_DATA_RATINGS_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "interval/interval_matrix.h"
#include "linalg/matrix.h"
#include "sparse/sparse_interval_matrix.h"

namespace ivmf {

struct RatingsConfig {
  size_t num_users = 300;
  size_t num_items = 500;
  size_t num_genres = 19;   // MovieLens-100K has 19 genres
  size_t latent_rank = 8;
  double fill = 0.15;       // fraction of observed (user, item) pairs
  double rating_min = 1.0;
  double rating_max = 5.0;
  uint64_t seed = 23;
};

struct RatingsData {
  Matrix ratings;               // n x m; 0 where unobserved
  Matrix mask;                  // n x m; 1 observed, 0 missing
  std::vector<int> item_genre;  // genre id per item
  size_t num_genres = 0;
  double rating_min = 1.0;
  double rating_max = 5.0;
};

// One observed rating (0-based user / item indices).
struct RatingTriplet {
  size_t user = 0;
  size_t item = 0;
  double rating = 0.0;
};

// Triplet-form rating data: only the observed entries are stored, so
// generation scales to sizes whose dense n x m matrices would not fit (the
// production-scale recommender sweeps in bench/fig10_sparse_scale.cc).
struct SparseRatingsData {
  size_t num_users = 0;
  size_t num_items = 0;
  std::vector<RatingTriplet> triplets;  // unordered (generation order)
  std::vector<int> item_genre;          // genre id per item
  size_t num_genres = 0;
  double rating_min = 1.0;
  double rating_max = 5.0;
};

// Generates observed ratings as triplets from the latent-factor model.
// Draws the exact same random sequence as GenerateRatings, so for the same
// config the two agree entry-for-entry.
SparseRatingsData GenerateSparseRatings(const RatingsConfig& config);

// Materializes the dense ratings + mask pair from triplet data.
RatingsData DensifyRatings(const SparseRatingsData& data);

// Generates a sparse integer-rating matrix from the latent-factor model.
// (Implemented as GenerateSparseRatings + DensifyRatings.)
RatingsData GenerateRatings(const RatingsConfig& config);

// User-genre interval matrix (F.2 eq. 4): cell (u, g) spans the min..max of
// user u's ratings on genre-g items; users with no rating in a genre get
// the scalar zero interval.
IntervalMatrix UserGenreIntervalMatrix(const RatingsData& data);

// Collaborative-filtering interval matrix (F.2 eq. 5–7): every observed
// rating X_ij becomes [X_ij - δ, X_ij + δ] with δ = alpha * std(S_ij),
// S_ij being all observed ratings in row i or column j. Unobserved cells
// stay [0, 0]; use the mask to ignore them.
IntervalMatrix CfIntervalMatrix(const RatingsData& data, double alpha);

// Sparse form of the same construction, built in O(nnz) straight from the
// triplets: observed cells become the [X - δ, X + δ] intervals, unobserved
// cells are absent (the CSR zero interval). For identical rating data the
// result densifies to exactly CfIntervalMatrix's output.
SparseIntervalMatrix SparseCfIntervalMatrix(const SparseRatingsData& data,
                                            double alpha);

// Random split of the observed entries into train / test masks.
struct CfSplit {
  Matrix train_mask;
  Matrix test_mask;
};
CfSplit SplitRatings(const RatingsData& data, double test_fraction, Rng& rng);

// Root-mean-square error of predictions over the entries selected by mask.
double MaskedRmse(const Matrix& truth, const Matrix& predictions,
                  const Matrix& mask);

// -- Ciao / Epinions style user-category range matrices --------------------

struct CategoryRangeConfig {
  size_t num_users = 700;       // Ciao-scale (the real set has 7K users)
  size_t num_categories = 28;   // Ciao: 28, Epinions: 27
  size_t latent_rank = 6;
  double matrix_density = 0.27;   // fraction of non-empty cells (paper ~0.26)
  double interval_density = 0.45; // fraction of non-empty cells with a range
  double mean_span = 2.3;         // average range width (paper ~2.2-2.4 of 4)
  double rating_min = 1.0;
  double rating_max = 5.0;
  uint64_t seed = 29;
};

// A user x category matrix of rating ranges: empty cells are [0, 0],
// scalar cells [b, b], ranged cells [b - w/2, b + w/2] clamped to the
// rating scale.
IntervalMatrix GenerateCategoryRangeMatrix(const CategoryRangeConfig& config);

}  // namespace ivmf

#endif  // IVMF_DATA_RATINGS_H_
