#include "data/ratings.h"

#include <algorithm>
#include <cmath>

namespace ivmf {

SparseRatingsData GenerateSparseRatings(const RatingsConfig& config) {
  IVMF_CHECK(config.num_users > 0 && config.num_items > 0 &&
             config.num_genres > 0 && config.latent_rank > 0);
  Rng rng(config.seed);

  // Genre prototypes in latent space; item vectors cluster around them.
  Matrix genre_centers(config.num_genres, config.latent_rank);
  for (size_t g = 0; g < config.num_genres; ++g)
    for (size_t k = 0; k < config.latent_rank; ++k)
      genre_centers(g, k) = rng.Normal();

  Matrix user_factors(config.num_users, config.latent_rank);
  for (size_t i = 0; i < config.num_users; ++i)
    for (size_t k = 0; k < config.latent_rank; ++k)
      user_factors(i, k) = rng.Normal();

  SparseRatingsData data;
  data.num_users = config.num_users;
  data.num_items = config.num_items;
  data.num_genres = config.num_genres;
  data.rating_min = config.rating_min;
  data.rating_max = config.rating_max;
  data.item_genre.resize(config.num_items);
  data.triplets.reserve(static_cast<size_t>(
      config.fill * static_cast<double>(config.num_users) *
      static_cast<double>(config.num_items)));

  const double mid = 0.5 * (config.rating_min + config.rating_max);
  const double half_range = 0.5 * (config.rating_max - config.rating_min);
  const double scale =
      half_range / std::sqrt(static_cast<double>(config.latent_rank));

  for (size_t j = 0; j < config.num_items; ++j) {
    const size_t genre = rng.UniformIndex(config.num_genres);
    data.item_genre[j] = static_cast<int>(genre);
    std::vector<double> item(config.latent_rank);
    for (size_t k = 0; k < config.latent_rank; ++k)
      item[k] = genre_centers(genre, k) + 0.4 * rng.Normal();

    for (size_t i = 0; i < config.num_users; ++i) {
      if (!rng.Bernoulli(config.fill)) continue;
      double dot = 0.0;
      for (size_t k = 0; k < config.latent_rank; ++k)
        dot += user_factors(i, k) * item[k];
      // Map the latent affinity onto the star scale and round.
      double rating = mid + scale * std::tanh(0.8 * dot) * 1.2;
      rating += 0.3 * rng.Normal();
      rating = std::round(rating);
      rating = std::clamp(rating, config.rating_min, config.rating_max);
      data.triplets.push_back({i, j, rating});
    }
  }
  return data;
}

RatingsData DensifyRatings(const SparseRatingsData& data) {
  RatingsData dense;
  dense.num_genres = data.num_genres;
  dense.rating_min = data.rating_min;
  dense.rating_max = data.rating_max;
  dense.item_genre = data.item_genre;
  dense.ratings = Matrix(data.num_users, data.num_items);
  dense.mask = Matrix(data.num_users, data.num_items);
  for (const RatingTriplet& t : data.triplets) {
    dense.ratings(t.user, t.item) = t.rating;
    dense.mask(t.user, t.item) = 1.0;
  }
  return dense;
}

RatingsData GenerateRatings(const RatingsConfig& config) {
  return DensifyRatings(GenerateSparseRatings(config));
}

IntervalMatrix UserGenreIntervalMatrix(const RatingsData& data) {
  const size_t n = data.ratings.rows();
  const size_t g = data.num_genres;
  IntervalMatrix result(n, g);
  // Track whether a (user, genre) cell has seen any rating.
  Matrix seen(n, g);

  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < data.ratings.cols(); ++j) {
      if (data.mask(i, j) == 0.0) continue;
      const size_t genre = static_cast<size_t>(data.item_genre[j]);
      const double rating = data.ratings(i, j);
      if (seen(i, genre) == 0.0) {
        result.Set(i, genre, Interval::Scalar(rating));
        seen(i, genre) = 1.0;
      } else {
        Interval cur = result.At(i, genre);
        cur.lo = std::min(cur.lo, rating);
        cur.hi = std::max(cur.hi, rating);
        result.Set(i, genre, cur);
      }
    }
  }
  return result;
}

IntervalMatrix CfIntervalMatrix(const RatingsData& data, double alpha) {
  const size_t n = data.ratings.rows();
  const size_t m = data.ratings.cols();

  // Aggregates per row and per column over observed entries.
  std::vector<double> row_sum(n, 0.0), row_sumsq(n, 0.0);
  std::vector<double> col_sum(m, 0.0), col_sumsq(m, 0.0);
  std::vector<size_t> row_count(n, 0), col_count(m, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (data.mask(i, j) == 0.0) continue;
      const double x = data.ratings(i, j);
      row_sum[i] += x;
      row_sumsq[i] += x * x;
      ++row_count[i];
      col_sum[j] += x;
      col_sumsq[j] += x * x;
      ++col_count[j];
    }
  }

  IntervalMatrix result(n, m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (data.mask(i, j) == 0.0) continue;
      const double x = data.ratings(i, j);
      // S_ij = row i ∪ column j observations; the shared entry (i, j) is
      // counted once.
      const double count =
          static_cast<double>(row_count[i] + col_count[j] - 1);
      const double sum = row_sum[i] + col_sum[j] - x;
      const double sumsq = row_sumsq[i] + col_sumsq[j] - x * x;
      const double mean = sum / count;
      const double var = std::max(0.0, sumsq / count - mean * mean);
      const double delta = alpha * std::sqrt(var);
      result.Set(i, j, Interval(x - delta, x + delta));
    }
  }
  return result;
}

SparseIntervalMatrix SparseCfIntervalMatrix(const SparseRatingsData& data,
                                            double alpha) {
  const size_t n = data.num_users;
  const size_t m = data.num_items;

  // Row-major order reproduces the dense CfIntervalMatrix's accumulation
  // order exactly, so the two constructions agree bit-for-bit.
  std::vector<RatingTriplet> sorted = data.triplets;
  std::sort(sorted.begin(), sorted.end(),
            [](const RatingTriplet& a, const RatingTriplet& b) {
              return a.user != b.user ? a.user < b.user : a.item < b.item;
            });

  std::vector<double> row_sum(n, 0.0), row_sumsq(n, 0.0);
  std::vector<double> col_sum(m, 0.0), col_sumsq(m, 0.0);
  std::vector<size_t> row_count(n, 0), col_count(m, 0);
  for (const RatingTriplet& t : sorted) {
    const double x = t.rating;
    row_sum[t.user] += x;
    row_sumsq[t.user] += x * x;
    ++row_count[t.user];
    col_sum[t.item] += x;
    col_sumsq[t.item] += x * x;
    ++col_count[t.item];
  }

  std::vector<IntervalTriplet> cells;
  cells.reserve(sorted.size());
  for (const RatingTriplet& t : sorted) {
    const double x = t.rating;
    // S_ij = row i ∪ column j observations; the shared entry (i, j) is
    // counted once.
    const double count =
        static_cast<double>(row_count[t.user] + col_count[t.item] - 1);
    const double sum = row_sum[t.user] + col_sum[t.item] - x;
    const double sumsq = row_sumsq[t.user] + col_sumsq[t.item] - x * x;
    const double mean = sum / count;
    const double var = std::max(0.0, sumsq / count - mean * mean);
    const double delta = alpha * std::sqrt(var);
    cells.push_back({t.user, t.item, Interval(x - delta, x + delta)});
  }
  return SparseIntervalMatrix::FromTriplets(n, m, std::move(cells));
}

CfSplit SplitRatings(const RatingsData& data, double test_fraction, Rng& rng) {
  IVMF_CHECK(test_fraction >= 0.0 && test_fraction < 1.0);
  CfSplit split;
  split.train_mask = Matrix(data.mask.rows(), data.mask.cols());
  split.test_mask = Matrix(data.mask.rows(), data.mask.cols());
  for (size_t i = 0; i < data.mask.rows(); ++i) {
    for (size_t j = 0; j < data.mask.cols(); ++j) {
      if (data.mask(i, j) == 0.0) continue;
      if (rng.Bernoulli(test_fraction)) {
        split.test_mask(i, j) = 1.0;
      } else {
        split.train_mask(i, j) = 1.0;
      }
    }
  }
  return split;
}

double MaskedRmse(const Matrix& truth, const Matrix& predictions,
                  const Matrix& mask) {
  IVMF_CHECK(truth.rows() == predictions.rows() &&
             truth.cols() == predictions.cols() &&
             truth.rows() == mask.rows() && truth.cols() == mask.cols());
  double sum = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < truth.rows(); ++i) {
    for (size_t j = 0; j < truth.cols(); ++j) {
      if (mask(i, j) == 0.0) continue;
      const double diff = truth(i, j) - predictions(i, j);
      sum += diff * diff;
      ++count;
    }
  }
  return count > 0 ? std::sqrt(sum / static_cast<double>(count)) : 0.0;
}

IntervalMatrix GenerateCategoryRangeMatrix(const CategoryRangeConfig& config) {
  IVMF_CHECK(config.num_users > 0 && config.num_categories > 0);
  Rng rng(config.seed);

  // Latent model for the base (center) rating of each user-category cell.
  Matrix user_factors(config.num_users, config.latent_rank);
  Matrix cat_factors(config.num_categories, config.latent_rank);
  for (size_t i = 0; i < config.num_users; ++i)
    for (size_t k = 0; k < config.latent_rank; ++k)
      user_factors(i, k) = rng.Normal();
  for (size_t c = 0; c < config.num_categories; ++c)
    for (size_t k = 0; k < config.latent_rank; ++k)
      cat_factors(c, k) = rng.Normal();

  const double mid = 0.5 * (config.rating_min + config.rating_max);
  const double half_range = 0.5 * (config.rating_max - config.rating_min);
  const double scale =
      half_range / std::sqrt(static_cast<double>(config.latent_rank));

  IntervalMatrix result(config.num_users, config.num_categories);
  for (size_t i = 0; i < config.num_users; ++i) {
    for (size_t c = 0; c < config.num_categories; ++c) {
      if (!rng.Bernoulli(config.matrix_density)) continue;  // empty cell
      double dot = 0.0;
      for (size_t k = 0; k < config.latent_rank; ++k)
        dot += user_factors(i, k) * cat_factors(c, k);
      double base = mid + scale * std::tanh(0.8 * dot);
      base = std::clamp(base, config.rating_min, config.rating_max);
      if (rng.Bernoulli(config.interval_density)) {
        // A range of ratings within the category: width around mean_span.
        const double span =
            std::max(0.0, config.mean_span + 0.8 * rng.Normal());
        const double lo =
            std::max(config.rating_min, base - 0.5 * span);
        const double hi = std::min(config.rating_max, base + 0.5 * span);
        result.Set(i, c, Interval(lo, hi));
      } else {
        result.Set(i, c, Interval::Scalar(std::round(base)));
      }
    }
  }
  return result;
}

}  // namespace ivmf
