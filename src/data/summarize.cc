#include "data/summarize.h"

#include <algorithm>
#include <cmath>

namespace ivmf {

IntervalMatrix SummarizeRows(const Matrix& m, size_t group_size) {
  IVMF_CHECK_MSG(group_size > 0, "group size must be positive");
  const size_t groups = (m.rows() + group_size - 1) / group_size;
  std::vector<int> group_of_row(m.rows());
  for (size_t i = 0; i < m.rows(); ++i)
    group_of_row[i] = static_cast<int>(i / group_size);
  return SummarizeRowsByGroup(m, group_of_row, groups);
}

IntervalMatrix SummarizeRowsByGroup(const Matrix& m,
                                    const std::vector<int>& group_of_row,
                                    size_t num_groups) {
  IVMF_CHECK(group_of_row.size() == m.rows());
  IVMF_CHECK(num_groups > 0);
  IntervalMatrix result(num_groups, m.cols());
  std::vector<char> seen(num_groups, 0);

  for (size_t i = 0; i < m.rows(); ++i) {
    const int g = group_of_row[i];
    IVMF_CHECK(g >= 0 && static_cast<size_t>(g) < num_groups);
    for (size_t j = 0; j < m.cols(); ++j) {
      const double v = m(i, j);
      if (!seen[g]) {
        result.mutable_lower()(g, j) = v;
        result.mutable_upper()(g, j) = v;
      } else {
        result.mutable_lower()(g, j) =
            std::min(result.lower()(g, j), v);
        result.mutable_upper()(g, j) =
            std::max(result.upper()(g, j), v);
      }
    }
    seen[g] = 1;
  }
  return result;
}

IntervalMatrix SummarizeRowsMeanStd(const Matrix& m, size_t group_size,
                                    double alpha) {
  IVMF_CHECK_MSG(group_size > 0, "group size must be positive");
  const size_t groups = (m.rows() + group_size - 1) / group_size;
  IntervalMatrix result(groups, m.cols());

  for (size_t g = 0; g < groups; ++g) {
    const size_t begin = g * group_size;
    const size_t end = std::min(m.rows(), begin + group_size);
    const double count = static_cast<double>(end - begin);
    for (size_t j = 0; j < m.cols(); ++j) {
      double sum = 0.0, sumsq = 0.0;
      for (size_t i = begin; i < end; ++i) {
        sum += m(i, j);
        sumsq += m(i, j) * m(i, j);
      }
      const double mean = sum / count;
      const double var = std::max(0.0, sumsq / count - mean * mean);
      const double delta = alpha * std::sqrt(var);
      result.Set(g, j, Interval(mean - delta, mean + delta));
    }
  }
  return result;
}

}  // namespace ivmf
