// Synthetic ORL-style face corpus (substitute for the ORL face dataset,
// Section 6.1.2 — see DESIGN.md for the substitution rationale).
//
// Each "individual" has a stable signature built from a handful of Gaussian
// intensity blobs; each of their images jitters the blob positions and adds
// pixel noise, mimicking the minute pose/expression variation in multiple
// facial images of one person. The interval construction follows the
// supplementary material (F.1) exactly: for every pixel, the interval is
// the pixel value +/- alpha times the standard deviation of the pixels in
// its (2r+1) x (2r+1) spatial neighborhood.

#ifndef IVMF_DATA_FACES_H_
#define IVMF_DATA_FACES_H_

#include <cstdint>
#include <vector>

#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf {

struct FaceCorpusConfig {
  size_t num_individuals = 40;       // ORL: 40
  size_t images_per_individual = 10; // ORL: 10
  size_t width = 16;                 // pixels per side (ORL: 32)
  size_t height = 16;
  size_t blobs_per_face = 6;         // Gaussian blobs forming a signature
  double jitter = 0.06;              // per-image blob-center displacement
  double pixel_noise = 0.02;         // additive Gaussian pixel noise
  // Interval construction (supplementary F.1).
  size_t neighborhood_radius = 1;    // the r of S_ij^(r)
  double interval_alpha = 1.0;       // the α of δ = α · std(S_ij^(r))
  uint64_t seed = 17;
};

struct FaceCorpus {
  // One image per row, pixels in row-major order; values in [0, 1].
  Matrix images;              // (individuals * images) x (width * height)
  std::vector<int> labels;    // individual id per image row
  IntervalMatrix intervals;   // F.1 intervals, same shape as `images`
  size_t width = 0;
  size_t height = 0;
};

// Generates the corpus deterministically from config.seed.
FaceCorpus GenerateFaceCorpus(const FaceCorpusConfig& config);

// The F.1 interval construction on its own: given a row-major image matrix
// (one image per row), returns [X - δ, X + δ] with
// δ_ij = alpha * std(S_ij^(radius)).
IntervalMatrix BuildNeighborhoodIntervals(const Matrix& images, size_t width,
                                          size_t height, size_t radius,
                                          double alpha);

}  // namespace ivmf

#endif  // IVMF_DATA_FACES_H_
