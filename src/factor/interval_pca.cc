#include "factor/interval_pca.h"

#include <algorithm>
#include <cmath>

#include "linalg/eig.h"

namespace ivmf {

double IntervalPcaResult::ExplainedRatio(size_t k) const {
  double total = 0.0, head = 0.0;
  for (size_t i = 0; i < explained_variance.size(); ++i) {
    total += std::max(0.0, explained_variance[i]);
    if (i < k) head += std::max(0.0, explained_variance[i]);
  }
  return total > 0.0 ? head / total : 0.0;
}

IntervalPcaResult ComputeIntervalPca(const IntervalMatrix& m, size_t rank,
                                     const IntervalPcaOptions& options) {
  IVMF_CHECK_MSG(m.rows() >= 2, "PCA needs at least two observations");
  const size_t n = m.rows();
  const size_t d = m.cols();
  const size_t r = (rank == 0 || rank > d) ? d : rank;

  const Matrix mid = m.Mid();

  IntervalPcaResult result;
  result.mean.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < d; ++j) result.mean[j] += mid(i, j);
  for (double& v : result.mean) v /= static_cast<double>(n);

  // Midpoint covariance (sample, 1/(n-1)).
  Matrix centered = mid;
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < d; ++j) centered(i, j) -= result.mean[j];
  Matrix cov = centered.Transpose() * centered;
  cov *= 1.0 / static_cast<double>(n - 1);

  if (options.method == IntervalPcaMethod::kMidpointRadius) {
    // A uniform random value on [lo, hi] has variance span²/12; averaging
    // the per-observation contributions adds to the covariance diagonal.
    for (size_t j = 0; j < d; ++j) {
      double extra = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double span = m.upper()(i, j) - m.lower()(i, j);
        extra += span * span / 12.0;
      }
      cov(j, j) += extra / static_cast<double>(n);
    }
  }

  const EigResult eig = ComputeSymmetricEig(cov, r);
  result.components = eig.eigenvectors;
  result.explained_variance = eig.eigenvalues;

  // Interval scores: project the centered interval rows onto the scalar
  // axes. Centering shifts both endpoints by the same mean vector.
  Matrix lo = m.lower();
  Matrix hi = m.upper();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      lo(i, j) -= result.mean[j];
      hi(i, j) -= result.mean[j];
    }
  }
  result.scores =
      IntervalMatMul(IntervalMatrix(std::move(lo), std::move(hi)),
                     result.components);
  return result;
}

IntervalMatrix IntervalPcaReconstruct(const IntervalPcaResult& pca) {
  IntervalMatrix recon =
      IntervalMatMul(pca.scores, pca.components.Transpose());
  Matrix lo = recon.lower();
  Matrix hi = recon.upper();
  for (size_t i = 0; i < lo.rows(); ++i) {
    for (size_t j = 0; j < lo.cols(); ++j) {
      lo(i, j) += pca.mean[j];
      hi(i, j) += pca.mean[j];
    }
  }
  return IntervalMatrix(std::move(lo), std::move(hi));
}

}  // namespace ivmf
