// Probabilistic matrix factorization (PMF, Section 2.2.3), the
// interval-valued I-PMF of [9] (Section 5), and the paper's proposed
// semantically-aligned AI-PMF which runs ILSA on the min/max latent factors
// during training (Algorithm 15).

#ifndef IVMF_FACTOR_PMF_H_
#define IVMF_FACTOR_PMF_H_

#include <cstdint>
#include <vector>

#include "align/ilsa.h"
#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf {

struct PmfOptions {
  size_t epochs = 120;
  double learning_rate = 0.002;
  double lambda_u = 0.02;   // = sigma² / sigma_U²
  double lambda_v = 0.02;   // = sigma² / sigma_V²
  uint64_t seed = 11;
  double init_scale = 0.1;
  // AI-PMF: run ILSA after every epoch (true, the "each gradient descent
  // iteration" reading of Section 5) or only once after training.
  bool align_every_epoch = true;
  IlsaOptions ilsa;
};

struct PmfResult {
  Matrix u;  // n x r
  Matrix v;  // m x r
  // Masked squared-error loss (with regularizers) per epoch.
  std::vector<double> loss_history;

  Matrix Reconstruct() const { return u * v.Transpose(); }
};

// Scalar PMF by full-batch gradient descent. `mask` has 1 for observed
// entries and 0 for missing ones (the indicator I_ij of the paper); pass an
// all-ones matrix for fully observed data.
PmfResult ComputePmf(const Matrix& m, const Matrix& mask, size_t rank,
                     const PmfOptions& options = {});

struct IntervalPmfResult {
  Matrix u;     // n x r scalar factor
  Matrix v_lo;  // m x r minimum latent factor
  Matrix v_hi;  // m x r maximum latent factor
  std::vector<double> loss_history;

  // Interval reconstruction [U V_*ᵀ, U V^*ᵀ] with average replacement.
  IntervalMatrix Reconstruct() const {
    return IntervalMatrix(u * v_lo.Transpose(), u * v_hi.Transpose())
        .AverageReplaced();
  }

  // Scalar predictions: the midpoints of the interval reconstruction.
  Matrix PredictMid() const { return Reconstruct().Mid(); }
};

// I-PMF [9]: gradient descent on
//   ||I ∘ (M_* - U V_*ᵀ)||² + ||I ∘ (M^* - U V^*ᵀ)||²
//     + λ_U ||U||² + λ_V (||V_*||² + ||V^*||²).
IntervalPmfResult ComputeIntervalPmf(const IntervalMatrix& m,
                                     const Matrix& mask, size_t rank,
                                     const PmfOptions& options = {});

// AI-PMF (the paper's proposal): I-PMF plus interval latent semantic
// alignment of (V_*, V^*) during training.
IntervalPmfResult ComputeAlignedIntervalPmf(const IntervalMatrix& m,
                                            const Matrix& mask, size_t rank,
                                            const PmfOptions& options = {});

}  // namespace ivmf

#endif  // IVMF_FACTOR_PMF_H_
