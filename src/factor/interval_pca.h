// Interval-valued principal component analysis baselines (Section 2.3 of
// the paper cites this family of symbolic-data methods [27]–[30]).
//
// Two classical schemes are provided:
//
//  * Centers PCA (C-PCA): PCA of the interval midpoints; interval
//    observations are then projected onto the scalar principal axes with
//    interval arithmetic, producing interval-valued scores.
//
//  * Midpoint–Radius PCA (MR-PCA, in the spirit of Billard &
//    Le-Rademacher's symbolic covariance): each interval is treated as a
//    uniform distribution over [lo, hi], so its variance contributes
//    span²/12 to the diagonal of the covariance matrix in addition to the
//    midpoint covariance. The principal axes therefore respond to the
//    *sizes* of the intervals, not only their centers.
//
// Both serve as comparison baselines for the ISVD latent spaces and power
// the data-summarization example.

#ifndef IVMF_FACTOR_INTERVAL_PCA_H_
#define IVMF_FACTOR_INTERVAL_PCA_H_

#include <cstddef>
#include <vector>

#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf {

enum class IntervalPcaMethod {
  kCenters,         // covariance of midpoints only
  kMidpointRadius,  // midpoint covariance + span²/12 diagonal term
};

struct IntervalPcaResult {
  // Column means of the midpoint matrix (centering vector).
  std::vector<double> mean;
  // m x r principal axes (orthonormal columns, descending eigenvalue).
  Matrix components;
  // r eigenvalues of the (symbolic) covariance, descending.
  std::vector<double> explained_variance;
  // n x r interval-valued scores: projections of the centered interval
  // rows onto the axes via interval arithmetic.
  IntervalMatrix scores;

  // Fraction of total variance captured by the first k components.
  double ExplainedRatio(size_t k) const;
};

struct IntervalPcaOptions {
  IntervalPcaMethod method = IntervalPcaMethod::kMidpointRadius;
};

// Computes rank-r interval PCA of the rows of `m` (observations x
// features). rank == 0 means all components.
IntervalPcaResult ComputeIntervalPca(const IntervalMatrix& m, size_t rank,
                                     const IntervalPcaOptions& options = {});

// Reconstructs the interval observations from the scores:
//   X̃† = scores† * componentsᵀ + mean
// using interval arithmetic (scalar components, interval scores).
IntervalMatrix IntervalPcaReconstruct(const IntervalPcaResult& pca);

}  // namespace ivmf

#endif  // IVMF_FACTOR_INTERVAL_PCA_H_
