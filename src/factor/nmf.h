// Non-negative matrix factorization (Lee–Seung multiplicative updates,
// Section 2.2.2) and its interval-valued extension I-NMF of Shen et al. [9],
// which factorizes an interval matrix into a scalar non-negative U and an
// interval-valued non-negative V† = [V_*, V^*].
//
// Both are evaluation baselines for the ORL face tasks (Figure 8).

#ifndef IVMF_FACTOR_NMF_H_
#define IVMF_FACTOR_NMF_H_

#include <cstdint>
#include <vector>

#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf {

struct NmfOptions {
  size_t max_iterations = 200;
  // Stop early when the relative loss improvement drops below this.
  double tolerance = 1e-6;
  uint64_t seed = 7;
  // Guard added to denominators of the multiplicative updates.
  double epsilon = 1e-12;
};

struct NmfResult {
  Matrix u;  // n x r, non-negative
  Matrix v;  // m x r, non-negative
  // L_NMF = ||M - U Vᵀ||_F² after every iteration (monotone non-increasing).
  std::vector<double> loss_history;

  Matrix Reconstruct() const { return u * v.Transpose(); }
};

// Factorizes a non-negative matrix `m` at the given rank.
NmfResult ComputeNmf(const Matrix& m, size_t rank,
                     const NmfOptions& options = {});

struct IntervalNmfResult {
  Matrix u;     // n x r scalar factor
  Matrix v_lo;  // m x r minimum factor
  Matrix v_hi;  // m x r maximum factor
  // L_I-NMF = ||M_* - U V_*ᵀ||² + ||M^* - U V^*ᵀ||² per iteration.
  std::vector<double> loss_history;

  IntervalMatrix Reconstruct() const {
    return IntervalMatrix(u * v_lo.Transpose(), u * v_hi.Transpose())
        .AverageReplaced();
  }
};

// I-NMF [9]: multiplicative updates minimizing
//   ||M_* - U V_*ᵀ||² + ||M^* - U V^*ᵀ||²
// over non-negative U, V_*, V^*. `m` must be elementwise non-negative.
IntervalNmfResult ComputeIntervalNmf(const IntervalMatrix& m, size_t rank,
                                     const NmfOptions& options = {});

// AI-NMF (this library's extension of the paper's Section-5 idea to NMF):
// I-NMF with interval latent semantic alignment of (V_*, V^*) interleaved
// into the multiplicative updates every `align_every` iterations. For
// non-negative factors all pairwise cosines are non-negative, so alignment
// reduces to a pure column re-pairing — factors stay non-negative.
IntervalNmfResult ComputeAlignedIntervalNmf(const IntervalMatrix& m,
                                            size_t rank,
                                            const NmfOptions& options = {},
                                            size_t align_every = 1);

}  // namespace ivmf

#endif  // IVMF_FACTOR_NMF_H_
