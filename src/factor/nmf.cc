#include "factor/nmf.h"

#include <cmath>

#include "align/ilsa.h"
#include "base/rng.h"

namespace ivmf {
namespace {

// Random non-negative initialization scaled so U Vᵀ has roughly the data's
// mean magnitude.
Matrix RandomFactor(size_t rows, size_t cols, double scale, Rng& rng) {
  Matrix f(rows, cols);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j) f(i, j) = scale * (0.1 + rng.Uniform());
  return f;
}

double SquaredError(const Matrix& m, const Matrix& u, const Matrix& v) {
  const Matrix diff = m - u * v.Transpose();
  const double norm = diff.FrobeniusNorm();
  return norm * norm;
}

double InitScale(const Matrix& m, size_t rank) {
  const double mean = m.Sum() / static_cast<double>(m.size());
  const double base = mean > 0.0 ? mean : 1.0;
  return std::sqrt(base / static_cast<double>(rank));
}

}  // namespace

NmfResult ComputeNmf(const Matrix& m, size_t rank, const NmfOptions& options) {
  IVMF_CHECK_MSG(rank > 0, "NMF rank must be positive");
  Rng rng(options.seed);
  const double scale = InitScale(m, rank);

  NmfResult result;
  result.u = RandomFactor(m.rows(), rank, scale, rng);
  result.v = RandomFactor(m.cols(), rank, scale, rng);

  double prev_loss = SquaredError(m, result.u, result.v);
  result.loss_history.push_back(prev_loss);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // U <- U ∘ (M V) / (U VᵀV)
    {
      const Matrix numer = m * result.v;
      const Matrix denom =
          result.u * (result.v.Transpose() * result.v);
      result.u = result.u.CwiseMultiply(
          numer.CwiseQuotient(denom, options.epsilon));
    }
    // V <- V ∘ (Mᵀ U) / (V UᵀU)
    {
      const Matrix numer = m.Transpose() * result.u;
      const Matrix denom =
          result.v * (result.u.Transpose() * result.u);
      result.v = result.v.CwiseMultiply(
          numer.CwiseQuotient(denom, options.epsilon));
    }

    const double loss = SquaredError(m, result.u, result.v);
    result.loss_history.push_back(loss);
    if (prev_loss > 0.0 &&
        (prev_loss - loss) / prev_loss < options.tolerance) {
      break;
    }
    prev_loss = loss;
  }
  return result;
}

namespace {

// Shared implementation for I-NMF and AI-NMF. `align_every` == 0 disables
// alignment (plain I-NMF).
IntervalNmfResult RunIntervalNmf(const IntervalMatrix& m, size_t rank,
                                 const NmfOptions& options,
                                 size_t align_every);

}  // namespace

IntervalNmfResult ComputeIntervalNmf(const IntervalMatrix& m, size_t rank,
                                     const NmfOptions& options) {
  return RunIntervalNmf(m, rank, options, /*align_every=*/0);
}

IntervalNmfResult ComputeAlignedIntervalNmf(const IntervalMatrix& m,
                                            size_t rank,
                                            const NmfOptions& options,
                                            size_t align_every) {
  IVMF_CHECK_MSG(align_every > 0, "align_every must be positive for AI-NMF");
  return RunIntervalNmf(m, rank, options, align_every);
}

namespace {

IntervalNmfResult RunIntervalNmf(const IntervalMatrix& m, size_t rank,
                                 const NmfOptions& options,
                                 size_t align_every) {
  IVMF_CHECK_MSG(rank > 0, "I-NMF rank must be positive");
  Rng rng(options.seed);
  const double scale = InitScale(m.upper(), rank);

  IntervalNmfResult result;
  result.u = RandomFactor(m.rows(), rank, scale, rng);
  result.v_lo = RandomFactor(m.cols(), rank, scale, rng);
  result.v_hi = RandomFactor(m.cols(), rank, scale, rng);

  auto loss = [&]() {
    return SquaredError(m.lower(), result.u, result.v_lo) +
           SquaredError(m.upper(), result.u, result.v_hi);
  };
  double prev_loss = loss();
  result.loss_history.push_back(prev_loss);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Multiplicative update for the shared scalar factor U. The gradient of
    // L_I-NMF wrt U splits into min- and max-side parts, giving
    //   U <- U ∘ (M_* V_* + M^* V^*) / (U (V_*ᵀV_* + V^*ᵀV^*)).
    {
      const Matrix numer = m.lower() * result.v_lo + m.upper() * result.v_hi;
      const Matrix denom =
          result.u * (result.v_lo.Transpose() * result.v_lo +
                      result.v_hi.Transpose() * result.v_hi);
      result.u = result.u.CwiseMultiply(
          numer.CwiseQuotient(denom, options.epsilon));
    }
    // V_* <- V_* ∘ (M_*ᵀ U) / (V_* UᵀU)   (paper's V_*ᵀ update, transposed)
    {
      const Matrix utu = result.u.Transpose() * result.u;
      const Matrix numer_lo = m.lower().Transpose() * result.u;
      result.v_lo = result.v_lo.CwiseMultiply(
          numer_lo.CwiseQuotient(result.v_lo * utu, options.epsilon));
      const Matrix numer_hi = m.upper().Transpose() * result.u;
      result.v_hi = result.v_hi.CwiseMultiply(
          numer_hi.CwiseQuotient(result.v_hi * utu, options.epsilon));
    }

    const double current = loss();
    result.loss_history.push_back(current);
    const bool converged =
        prev_loss > 0.0 &&
        (prev_loss - current) / prev_loss < options.tolerance;
    prev_loss = current;

    // AI-NMF: re-pair the min-side latent columns against the max side.
    // Non-negative factors have non-negative cosines, so no sign flips
    // occur and non-negativity is preserved. Convergence is measured on the
    // pre-alignment loss so re-pairing jumps do not stop training early.
    if (align_every > 0 && (iter + 1) % align_every == 0) {
      const IlsaResult ilsa = ComputeIlsa(result.v_lo, result.v_hi);
      result.v_lo = ApplyIlsaToColumns(result.v_lo, ilsa);
      prev_loss = loss();
    }
    if (converged) break;
  }
  return result;
}

}  // namespace

}  // namespace ivmf
