#include "factor/pmf.h"

#include <algorithm>
#include <cmath>

#include "base/rng.h"

namespace ivmf {
namespace {

Matrix RandomFactor(size_t rows, size_t cols, double scale, Rng& rng) {
  Matrix f(rows, cols);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j) f(i, j) = scale * rng.Normal();
  return f;
}

// Masked residual E = mask ∘ (U Vᵀ - M).
Matrix MaskedResidual(const Matrix& m, const Matrix& mask, const Matrix& u,
                      const Matrix& v) {
  Matrix e = u * v.Transpose();
  e -= m;
  return e.CwiseMultiply(mask);
}

double SquaredFrob(const Matrix& m) {
  const double f = m.FrobeniusNorm();
  return f * f;
}

}  // namespace

PmfResult ComputePmf(const Matrix& m, const Matrix& mask, size_t rank,
                     const PmfOptions& options) {
  IVMF_CHECK(m.rows() == mask.rows() && m.cols() == mask.cols());
  IVMF_CHECK_MSG(rank > 0, "PMF rank must be positive");
  Rng rng(options.seed);

  PmfResult result;
  result.u = RandomFactor(m.rows(), rank, options.init_scale, rng);
  result.v = RandomFactor(m.cols(), rank, options.init_scale, rng);

  auto loss = [&]() {
    const Matrix e = MaskedResidual(m, mask, result.u, result.v);
    return SquaredFrob(e) + options.lambda_u * SquaredFrob(result.u) +
           options.lambda_v * SquaredFrob(result.v);
  };

  double lr = options.learning_rate;
  double prev_loss = loss();
  result.loss_history.push_back(prev_loss);

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    const Matrix e = MaskedResidual(m, mask, result.u, result.v);
    // ∂L/∂U = E V + λ_U U ;  ∂L/∂V = Eᵀ U + λ_V V  (Section 2.2.3).
    const Matrix grad_u = e * result.v + options.lambda_u * result.u;
    const Matrix grad_v = e.Transpose() * result.u + options.lambda_v * result.v;
    result.u -= lr * grad_u;
    result.v -= lr * grad_v;

    const double current = loss();
    result.loss_history.push_back(current);
    // Bold-driver step-size control keeps full-batch descent stable.
    if (current > prev_loss) {
      lr *= 0.5;
    } else {
      lr = std::min(lr * 1.05, options.learning_rate * 10.0);
    }
    prev_loss = current;
  }
  return result;
}

namespace {

IntervalPmfResult RunIntervalPmf(const IntervalMatrix& m, const Matrix& mask,
                                 size_t rank, const PmfOptions& options,
                                 bool align) {
  IVMF_CHECK(m.rows() == mask.rows() && m.cols() == mask.cols());
  IVMF_CHECK_MSG(rank > 0, "I-PMF rank must be positive");
  Rng rng(options.seed);

  IntervalPmfResult result;
  result.u = RandomFactor(m.rows(), rank, options.init_scale, rng);
  result.v_lo = RandomFactor(m.cols(), rank, options.init_scale, rng);
  result.v_hi = RandomFactor(m.cols(), rank, options.init_scale, rng);

  auto loss = [&]() {
    const Matrix e_lo = MaskedResidual(m.lower(), mask, result.u, result.v_lo);
    const Matrix e_hi = MaskedResidual(m.upper(), mask, result.u, result.v_hi);
    return SquaredFrob(e_lo) + SquaredFrob(e_hi) +
           options.lambda_u * SquaredFrob(result.u) +
           options.lambda_v *
               (SquaredFrob(result.v_lo) + SquaredFrob(result.v_hi));
  };

  double lr = options.learning_rate;
  double prev_loss = loss();
  result.loss_history.push_back(prev_loss);

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    const Matrix e_lo = MaskedResidual(m.lower(), mask, result.u, result.v_lo);
    const Matrix e_hi = MaskedResidual(m.upper(), mask, result.u, result.v_hi);
    // Section 5: ∂L/∂U couples both endpoint residuals through the shared U.
    const Matrix grad_u = e_lo * result.v_lo + e_hi * result.v_hi +
                          options.lambda_u * result.u;
    const Matrix grad_v_lo =
        e_lo.Transpose() * result.u + options.lambda_v * result.v_lo;
    const Matrix grad_v_hi =
        e_hi.Transpose() * result.u + options.lambda_v * result.v_hi;
    result.u -= lr * grad_u;
    result.v_lo -= lr * grad_v_lo;
    result.v_hi -= lr * grad_v_hi;

    // Step-size control is measured before any alignment so alignment jumps
    // do not masquerade as divergence.
    const double current = loss();
    if (current > prev_loss) {
      lr *= 0.5;
    } else {
      lr = std::min(lr * 1.05, options.learning_rate * 10.0);
    }
    prev_loss = current;

    if (align && options.align_every_epoch) {
      // AI-PMF: re-pair and re-orient the min-side latent vectors against
      // the max side (Algorithm 15).
      const IlsaResult ilsa = ComputeIlsa(result.v_lo, result.v_hi, options.ilsa);
      result.v_lo = ApplyIlsaToColumns(result.v_lo, ilsa);
      prev_loss = loss();
    }
    result.loss_history.push_back(prev_loss);
  }

  if (align && !options.align_every_epoch) {
    const IlsaResult ilsa = ComputeIlsa(result.v_lo, result.v_hi, options.ilsa);
    result.v_lo = ApplyIlsaToColumns(result.v_lo, ilsa);
    result.loss_history.push_back(loss());
  }
  return result;
}

}  // namespace

IntervalPmfResult ComputeIntervalPmf(const IntervalMatrix& m,
                                     const Matrix& mask, size_t rank,
                                     const PmfOptions& options) {
  return RunIntervalPmf(m, mask, rank, options, /*align=*/false);
}

IntervalPmfResult ComputeAlignedIntervalPmf(const IntervalMatrix& m,
                                            const Matrix& mask, size_t rank,
                                            const PmfOptions& options) {
  return RunIntervalPmf(m, mask, rank, options, /*align=*/true);
}

}  // namespace ivmf
