#include "eval/knn.h"

#include <limits>

namespace ivmf {

Matrix ConcatenateEndpoints(const IntervalMatrix& m) {
  Matrix out(m.rows(), 2 * m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      out(i, j) = m.lower()(i, j);
      out(i, m.cols() + j) = m.upper()(i, j);
    }
  }
  return out;
}

double RowDistanceSquared(const Matrix& a, size_t row_a, const Matrix& b,
                          size_t row_b) {
  IVMF_CHECK(a.cols() == b.cols());
  const double* pa = a.RowPtr(row_a);
  const double* pb = b.RowPtr(row_b);
  double sum = 0.0;
  for (size_t j = 0; j < a.cols(); ++j) {
    const double d = pa[j] - pb[j];
    sum += d * d;
  }
  return sum;
}

std::vector<int> Classify1Nn(const Matrix& train,
                             const std::vector<int>& labels,
                             const Matrix& test) {
  IVMF_CHECK(train.rows() == labels.size());
  IVMF_CHECK(train.cols() == test.cols());
  std::vector<int> predicted(test.rows());
  for (size_t t = 0; t < test.rows(); ++t) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_row = 0;
    for (size_t i = 0; i < train.rows(); ++i) {
      const double d = RowDistanceSquared(test, t, train, i);
      if (d < best) {
        best = d;
        best_row = i;
      }
    }
    predicted[t] = labels[best_row];
  }
  return predicted;
}

std::vector<int> Classify1NnInterval(const IntervalMatrix& train,
                                     const std::vector<int>& labels,
                                     const IntervalMatrix& test) {
  return Classify1Nn(ConcatenateEndpoints(train), labels,
                     ConcatenateEndpoints(test));
}

}  // namespace ivmf
