// Lloyd's k-means with k-means++ seeding, for the clustering-based
// classification experiments (Section 6.4.3, Table 3). The interval variant
// clusters in the doubled (lower|upper) endpoint space, which realizes the
// paper's interval Euclidean distance.

#ifndef IVMF_EVAL_KMEANS_H_
#define IVMF_EVAL_KMEANS_H_

#include <cstdint>
#include <vector>

#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf {

struct KMeansOptions {
  size_t k = 2;
  size_t max_iterations = 60;
  size_t restarts = 3;  // best-of-N restarts by inertia
  uint64_t seed = 31;
};

struct KMeansResult {
  std::vector<int> assignments;  // cluster id per point (row)
  Matrix centroids;              // k x dims
  double inertia = 0.0;          // sum of squared distances to centroids
  size_t iterations = 0;
};

// Clusters the rows of `points`.
KMeansResult KMeans(const Matrix& points, const KMeansOptions& options);

// Interval-valued clustering via the doubled endpoint representation.
KMeansResult KMeansInterval(const IntervalMatrix& points,
                            const KMeansOptions& options);

}  // namespace ivmf

#endif  // IVMF_EVAL_KMEANS_H_
