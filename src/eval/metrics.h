// Classification / clustering quality metrics used in the evaluation
// (Section 6): F1 score for 1-NN face identification and normalized mutual
// information (NMI) for clustering-based classification.

#ifndef IVMF_EVAL_METRICS_H_
#define IVMF_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace ivmf {

// Fraction of positions where the labels agree.
double Accuracy(const std::vector<int>& truth, const std::vector<int>& predicted);

// Macro-averaged F1: per-class F1 scores averaged with equal class weight.
// Classes are the distinct values appearing in `truth`.
double MacroF1(const std::vector<int>& truth, const std::vector<int>& predicted);

// Micro-averaged F1 (equals accuracy for single-label classification).
double MicroF1(const std::vector<int>& truth, const std::vector<int>& predicted);

// Normalized mutual information I(A;B) / sqrt(H(A) H(B)) between two
// labelings; in [0, 1], with 1 for identical partitions. Entropy uses
// natural logarithms.
double NormalizedMutualInformation(const std::vector<int>& a,
                                   const std::vector<int>& b);

// Adjusted Rand index between two labelings: 1 for identical partitions,
// ~0 expected for independent random partitions (can be negative).
double AdjustedRandIndex(const std::vector<int>& a, const std::vector<int>& b);

// Per-class precision / recall / F1 and support.
struct ClassReport {
  int label = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t support = 0;  // number of truth samples with this label
};

// One ClassReport per distinct truth label, ordered by label.
std::vector<ClassReport> PerClassReport(const std::vector<int>& truth,
                                        const std::vector<int>& predicted);

// Dense confusion counts: entry (i, j) = #samples with truth label
// `labels[i]` predicted as `labels[j]`, where `labels` is the sorted union
// of labels appearing in either vector.
struct ConfusionMatrix {
  std::vector<int> labels;
  std::vector<std::vector<size_t>> counts;
};

ConfusionMatrix BuildConfusionMatrix(const std::vector<int>& truth,
                                     const std::vector<int>& predicted);

}  // namespace ivmf

#endif  // IVMF_EVAL_METRICS_H_
