// 1-nearest-neighbour classification with scalar and interval-valued
// Euclidean distances (Section 6.1.2, "NN-Classification").
//
// The interval Euclidean distance of the paper,
//   dist(a†, b†) = sqrt(Σ_d (a_*d - b_*d)² + (a^*d - b^*d)²),
// is exactly the scalar Euclidean distance in the doubled representation
// that concatenates the lower and upper endpoint coordinates; the helper
// ConcatenateEndpoints exposes that equivalence (k-means reuses it too).

#ifndef IVMF_EVAL_KNN_H_
#define IVMF_EVAL_KNN_H_

#include <vector>

#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf {

// Rows of `m` as points in R^{2m}: [lower row | upper row].
Matrix ConcatenateEndpoints(const IntervalMatrix& m);

// Squared Euclidean distance between two rows of (possibly different)
// matrices with equal column counts.
double RowDistanceSquared(const Matrix& a, size_t row_a, const Matrix& b,
                          size_t row_b);

// Classifies every row of `test` by its nearest `train` row's label.
std::vector<int> Classify1Nn(const Matrix& train, const std::vector<int>& labels,
                             const Matrix& test);

// Interval-valued variant using the paper's interval Euclidean distance.
std::vector<int> Classify1NnInterval(const IntervalMatrix& train,
                                     const std::vector<int>& labels,
                                     const IntervalMatrix& test);

}  // namespace ivmf

#endif  // IVMF_EVAL_KNN_H_
