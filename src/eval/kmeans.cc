#include "eval/kmeans.h"

#include <cmath>
#include <limits>

#include "base/rng.h"
#include "eval/knn.h"

namespace ivmf {
namespace {

// k-means++ seeding: each next center is drawn with probability
// proportional to the squared distance from the nearest chosen center.
Matrix SeedCentroids(const Matrix& points, size_t k, Rng& rng) {
  const size_t n = points.rows();
  Matrix centroids(k, points.cols());
  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());

  size_t first = static_cast<size_t>(rng.UniformIndex(n));
  centroids.SetRow(0, points.Row(first));

  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = RowDistanceSquared(points, i, centroids, c - 1);
      if (d < dist2[i]) dist2[i] = d;
      total += dist2[i];
    }
    size_t chosen = n - 1;
    if (total > 0.0) {
      double draw = rng.Uniform() * total;
      for (size_t i = 0; i < n; ++i) {
        draw -= dist2[i];
        if (draw <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<size_t>(rng.UniformIndex(n));
    }
    centroids.SetRow(c, points.Row(chosen));
  }
  return centroids;
}

KMeansResult RunOnce(const Matrix& points, const KMeansOptions& options,
                     Rng& rng) {
  const size_t n = points.rows();
  const size_t dims = points.cols();
  const size_t k = options.k;

  KMeansResult result;
  result.centroids = SeedCentroids(points, k, rng);
  result.assignments.assign(n, -1);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double d = RowDistanceSquared(points, i, result.centroids, c);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      if (result.assignments[i] != best_c) {
        result.assignments[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Update step.
    Matrix sums(k, dims);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(result.assignments[i]);
      ++counts[c];
      const double* row = points.RowPtr(i);
      double* acc = sums.RowPtr(c);
      for (size_t d = 0; d < dims; ++d) acc[d] += row[d];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Reseed an empty cluster at a random point.
        result.centroids.SetRow(
            c, points.Row(static_cast<size_t>(rng.UniformIndex(n))));
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t d = 0; d < dims; ++d)
        result.centroids(c, d) = sums(c, d) * inv;
    }
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia += RowDistanceSquared(
        points, i, result.centroids,
        static_cast<size_t>(result.assignments[i]));
  }
  return result;
}

}  // namespace

KMeansResult KMeans(const Matrix& points, const KMeansOptions& options) {
  IVMF_CHECK_MSG(options.k > 0 && options.k <= points.rows(),
                 "k must be in [1, #points]");
  Rng rng(options.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  const size_t restarts = options.restarts > 0 ? options.restarts : 1;
  for (size_t attempt = 0; attempt < restarts; ++attempt) {
    KMeansResult candidate = RunOnce(points, options, rng);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  return best;
}

KMeansResult KMeansInterval(const IntervalMatrix& points,
                            const KMeansOptions& options) {
  return KMeans(ConcatenateEndpoints(points), options);
}

}  // namespace ivmf
