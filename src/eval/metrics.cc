#include "eval/metrics.h"

#include <cmath>
#include <map>

#include "base/check.h"

namespace ivmf {
namespace {

// Contingency counts between two labelings.
struct Contingency {
  std::map<int, size_t> a_counts;
  std::map<int, size_t> b_counts;
  std::map<std::pair<int, int>, size_t> joint;
  size_t total = 0;
};

Contingency BuildContingency(const std::vector<int>& a,
                             const std::vector<int>& b) {
  IVMF_CHECK(a.size() == b.size());
  Contingency c;
  c.total = a.size();
  for (size_t i = 0; i < a.size(); ++i) {
    ++c.a_counts[a[i]];
    ++c.b_counts[b[i]];
    ++c.joint[{a[i], b[i]}];
  }
  return c;
}

double Entropy(const std::map<int, size_t>& counts, size_t total) {
  double h = 0.0;
  for (const auto& [label, count] : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted) {
  IVMF_CHECK(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i)
    if (truth[i] == predicted[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

double MacroF1(const std::vector<int>& truth,
               const std::vector<int>& predicted) {
  IVMF_CHECK(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;

  std::map<int, size_t> tp, fp, fn;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) {
      ++tp[truth[i]];
    } else {
      ++fn[truth[i]];
      ++fp[predicted[i]];
    }
  }

  // Classes = the label set of the ground truth.
  std::map<int, size_t> classes;
  for (int label : truth) ++classes[label];

  double f1_sum = 0.0;
  for (const auto& [label, unused] : classes) {
    const double tp_c = static_cast<double>(tp[label]);
    const double fp_c = static_cast<double>(fp[label]);
    const double fn_c = static_cast<double>(fn[label]);
    const double denom = 2.0 * tp_c + fp_c + fn_c;
    f1_sum += denom > 0.0 ? 2.0 * tp_c / denom : 0.0;
  }
  return f1_sum / static_cast<double>(classes.size());
}

double MicroF1(const std::vector<int>& truth,
               const std::vector<int>& predicted) {
  // With exactly one predicted label per sample, micro-F1 == accuracy.
  return Accuracy(truth, predicted);
}

double NormalizedMutualInformation(const std::vector<int>& a,
                                   const std::vector<int>& b) {
  const Contingency c = BuildContingency(a, b);
  if (c.total == 0) return 0.0;
  const double n = static_cast<double>(c.total);

  double mi = 0.0;
  for (const auto& [pair, count] : c.joint) {
    const double pxy = static_cast<double>(count) / n;
    const double px =
        static_cast<double>(c.a_counts.at(pair.first)) / n;
    const double py =
        static_cast<double>(c.b_counts.at(pair.second)) / n;
    if (pxy > 0.0) mi += pxy * std::log(pxy / (px * py));
  }

  const double ha = Entropy(c.a_counts, c.total);
  const double hb = Entropy(c.b_counts, c.total);
  if (ha <= 0.0 || hb <= 0.0) {
    // A constant labeling carries no information; define NMI as 1 only when
    // both are constant (identical partitions), else 0.
    return (ha <= 0.0 && hb <= 0.0) ? 1.0 : 0.0;
  }
  const double nmi = mi / std::sqrt(ha * hb);
  // Clamp rounding noise.
  return nmi < 0.0 ? 0.0 : (nmi > 1.0 ? 1.0 : nmi);
}

double AdjustedRandIndex(const std::vector<int>& a,
                         const std::vector<int>& b) {
  const Contingency c = BuildContingency(a, b);
  if (c.total < 2) return 1.0;
  auto choose2 = [](size_t k) {
    return 0.5 * static_cast<double>(k) * static_cast<double>(k - 1);
  };

  double sum_joint = 0.0;
  for (const auto& [pair, count] : c.joint) sum_joint += choose2(count);
  double sum_a = 0.0, sum_b = 0.0;
  for (const auto& [label, count] : c.a_counts) sum_a += choose2(count);
  for (const auto& [label, count] : c.b_counts) sum_b += choose2(count);

  const double total_pairs = choose2(c.total);
  const double expected = sum_a * sum_b / total_pairs;
  const double max_index = 0.5 * (sum_a + sum_b);
  const double denom = max_index - expected;
  if (denom == 0.0) return 1.0;  // both partitions trivial
  return (sum_joint - expected) / denom;
}

std::vector<ClassReport> PerClassReport(const std::vector<int>& truth,
                                        const std::vector<int>& predicted) {
  IVMF_CHECK(truth.size() == predicted.size());
  std::map<int, size_t> tp, fp, fn, support;
  for (size_t i = 0; i < truth.size(); ++i) {
    ++support[truth[i]];
    if (truth[i] == predicted[i]) {
      ++tp[truth[i]];
    } else {
      ++fn[truth[i]];
      ++fp[predicted[i]];
    }
  }
  std::vector<ClassReport> reports;
  for (const auto& [label, count] : support) {
    ClassReport report;
    report.label = label;
    report.support = count;
    const double tp_c = static_cast<double>(tp[label]);
    const double fp_c = static_cast<double>(fp[label]);
    const double fn_c = static_cast<double>(fn[label]);
    report.precision = (tp_c + fp_c) > 0.0 ? tp_c / (tp_c + fp_c) : 0.0;
    report.recall = (tp_c + fn_c) > 0.0 ? tp_c / (tp_c + fn_c) : 0.0;
    const double pr = report.precision + report.recall;
    report.f1 = pr > 0.0 ? 2.0 * report.precision * report.recall / pr : 0.0;
    reports.push_back(report);
  }
  return reports;
}

ConfusionMatrix BuildConfusionMatrix(const std::vector<int>& truth,
                                     const std::vector<int>& predicted) {
  IVMF_CHECK(truth.size() == predicted.size());
  std::map<int, size_t> index;
  for (int label : truth) index.emplace(label, 0);
  for (int label : predicted) index.emplace(label, 0);

  ConfusionMatrix cm;
  for (auto& [label, idx] : index) {
    idx = cm.labels.size();
    cm.labels.push_back(label);
  }
  cm.counts.assign(cm.labels.size(),
                   std::vector<size_t>(cm.labels.size(), 0));
  for (size_t i = 0; i < truth.size(); ++i) {
    ++cm.counts[index[truth[i]]][index[predicted[i]]];
  }
  return cm;
}

}  // namespace ivmf
