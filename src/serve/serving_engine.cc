#include "serve/serving_engine.h"

#include <utility>

#include "base/check.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ivmf {

namespace {

struct EngineInstruments {
  obs::Gauge& queue_cells;
  obs::Counter& epochs;
  obs::Counter& cells;
  obs::Histogram& batch_cells;
  obs::Histogram& refresh_seconds;

  static EngineInstruments& Get() {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    static EngineInstruments instruments{
        registry.GetGauge("serving.queue.cells"),
        registry.GetCounter("serving.epochs.published"),
        registry.GetCounter("serving.cells.applied"),
        registry.GetHistogram("serving.batch.cells"),
        registry.GetHistogram("serving.refresh.seconds")};
    return instruments;
  }
};

}  // namespace

ServingEngine::ServingEngine(int strategy, size_t rank,
                             SparseIntervalMatrix base,
                             ServingEngineOptions options)
    : options_(std::move(options)),
      streaming_(strategy, rank, std::move(base), options_.streaming) {
  PublishCurrent();  // epoch 1: the construction-time cold decomposition
}

ServingEngine::~ServingEngine() {
  if (writer_running()) StopWriter();
}

void ServingEngine::PublishCurrent() {
  auto snapshot = std::make_shared<const ServingSnapshot>(
      streaming_.refresh_count(), streaming_.result(),
      streaming_.matrix_snapshot(), streaming_.sharded_snapshot());
  registry_.Publish(snapshot);
  epoch_.store(snapshot->epoch(), std::memory_order_release);
  EngineInstruments::Get().epochs.Add(1);
  obs::LogDebug("serve", "published snapshot",
                {{"epoch", snapshot->epoch()}});
  if (options_.on_publish) options_.on_publish(snapshot);
}

void ServingEngine::Submit(std::vector<IntervalTriplet> batch) {
  if (batch.empty()) return;
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_cells_ += batch.size();
    depth = pending_cells_;
    pending_.push_back(std::move(batch));
  }
  EngineInstruments::Get().queue_cells.Set(static_cast<double>(depth));
  cv_.notify_one();
}

size_t ServingEngine::pending_cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_cells_;
}

std::vector<std::vector<IntervalTriplet>> ServingEngine::Drain() {
  std::vector<std::vector<IntervalTriplet>> drained;
  std::lock_guard<std::mutex> lock(mu_);
  drained.swap(pending_);
  pending_cells_ = 0;
  return drained;
}

size_t ServingEngine::Step() {
  obs::TraceSpan span("serving.step");
  EngineInstruments& instruments = EngineInstruments::Get();
  const std::vector<std::vector<IntervalTriplet>> drained = Drain();
  instruments.queue_cells.Set(0.0);
  size_t cells = 0;
  for (const std::vector<IntervalTriplet>& batch : drained) {
    streaming_.ApplyBatch(batch);
    cells += batch.size();
  }
  if (cells == 0) return 0;  // nothing new: keep the current epoch
  // Coalesced batch: how many submitted cells one refresh absorbed.
  instruments.batch_cells.Record(static_cast<double>(cells));

  {
    obs::ScopedTimer timer(instruments.refresh_seconds);
    streaming_.Refresh();
  }
  PublishCurrent();
  cells_applied_.fetch_add(cells, std::memory_order_relaxed);
  instruments.cells.Add(cells);
  return cells;
}

void ServingEngine::StartWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    IVMF_CHECK_MSG(!running_, "writer thread already running");
    running_ = true;
    stop_ = false;
  }
  writer_ = std::thread([this] { WriterLoop(); });
  obs::LogInfo("serve", "writer thread started", {{"epoch", epoch()}});
}

void ServingEngine::StopWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    IVMF_CHECK_MSG(running_, "no writer thread to stop");
    stop_ = true;
  }
  cv_.notify_one();
  writer_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  Step();  // flush anything submitted during shutdown
  obs::LogInfo("serve", "writer thread stopped",
               {{"epoch", epoch()},
                {"cells_applied", cells_applied()}});
}

bool ServingEngine::writer_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void ServingEngine::WriterLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (stop_) return;  // StopWriter flushes the remainder
    }
    // Drain + refresh + publish outside the lock: submitters never wait on
    // the decomposition.
    Step();
  }
}

}  // namespace ivmf
