// An immutable, shareable view of one decomposition epoch — the unit the
// serving layer publishes and readers query.
//
// A ServingSnapshot pairs the factors of one StreamingIsvd refresh with the
// frozen CSR matrix that refresh decomposed (StreamingIsvd::matrix_snapshot,
// handed off as a shared view by DynamicSparseIntervalMatrix), stamped with
// the refresh's epoch. Everything inside is deep-immutable after
// construction, so any number of reader threads may call Predict / TopK /
// Observed concurrently with no synchronization while the writer builds and
// publishes the next epoch; a reader that still holds an old snapshot keeps
// it alive through the shared_ptr until its last query finishes (RCU-style
// grace period by reference count).
//
// Predict reproduces IsvdResult::Reconstruct entry-by-entry — same
// reconstruction rule per decomposition target (supplementary Algorithms
// 12–14), O(rank) per cell instead of materializing the n x m matrix — so a
// served prediction is exactly the reconstruction of the published epoch.

#ifndef IVMF_SERVE_SERVING_SNAPSHOT_H_
#define IVMF_SERVE_SERVING_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/isvd.h"
#include "sparse/block_matrix.h"
#include "sparse/sparse_interval_matrix.h"

namespace ivmf {

class ServingSnapshot {
 public:
  // One item with its predicted score, as returned by TopK.
  struct ScoredItem {
    size_t item = 0;
    Interval score;  // predicted interval; ranking is by midpoint
  };

  // Takes ownership of the factors and shares the frozen matrix view.
  // `matrix` must be non-null and its shape must cover the factor rows
  // (users x items); `result` must be the decomposition of `*matrix`.
  // `sharded` optionally carries the block-row sharded view the refresh
  // decomposed through (StreamingIsvdOptions::shard_rows > 0); it shares
  // the same CSR arrays as `matrix` and must match its shape when present.
  ServingSnapshot(
      uint64_t epoch, IsvdResult result,
      std::shared_ptr<const SparseIntervalMatrix> matrix,
      std::shared_ptr<const ShardedSparseIntervalMatrix> sharded = nullptr);

  uint64_t epoch() const { return epoch_; }
  size_t users() const { return matrix_->rows(); }
  size_t items() const { return matrix_->cols(); }
  size_t rank() const { return result_.rank(); }
  const IsvdResult& result() const { return result_; }
  const SparseIntervalMatrix& matrix() const { return *matrix_; }
  const std::shared_ptr<const SparseIntervalMatrix>& shared_matrix() const {
    return matrix_;
  }

  // The frozen sharded view of this epoch, when the streaming core
  // decomposed through one (null otherwise). Deep-immutable like everything
  // else in the snapshot; introspection and batch scoring paths can run its
  // shard-parallel kernels against exactly the published matrix.
  const std::shared_ptr<const ShardedSparseIntervalMatrix>& shared_sharded()
      const {
    return sharded_;
  }
  bool has_sharded() const { return sharded_ != nullptr; }

  // Predicted interval [lo, hi] for one (user, item) cell: the entry of the
  // reconstruction M̃† = U† Σ† V†ᵀ under the result's target rule. Equal to
  // result().Reconstruct().At(user, item) without the O(n·m·r) rebuild.
  Interval Predict(size_t user, size_t item) const;

  // The rating actually observed for the cell in this epoch's matrix
  // ([0, 0] when the cell is absent — the CSR convention).
  Interval Observed(size_t user, size_t item) const {
    return matrix_->At(user, item);
  }

  // The k items with the highest predicted midpoint score for `user`,
  // descending; ties broken by ascending item index so the ranking is
  // deterministic. With `exclude_observed` items the user already rated
  // (explicit cells of the frozen matrix) are skipped — the classic
  // recommend-something-new query, and the reason the snapshot carries the
  // matrix view alongside the factors. Returns fewer than k items when the
  // candidate set is smaller.
  std::vector<ScoredItem> TopK(size_t user, size_t k,
                               bool exclude_observed = false) const;

 private:
  uint64_t epoch_;
  IsvdResult result_;
  std::shared_ptr<const SparseIntervalMatrix> matrix_;
  std::shared_ptr<const ShardedSparseIntervalMatrix> sharded_;
};

}  // namespace ivmf

#endif  // IVMF_SERVE_SERVING_SNAPSHOT_H_
