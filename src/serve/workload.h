// YCSB-style workload machinery for the serving layer: key-popularity
// generators (zipfian / uniform) and the multi-threaded read/update driver
// the fig11 harness and the ivmf_serve CLI share. Per-op latencies land in
// obs::Histogram (nearest-rank percentiles, YCSB convention) — one per
// thread, merged into the report after the run.
//
// The zipfian generator is the classic YCSB construction (Gray et al.'s
// "Quickly generating billion-record synthetic databases" rejection-free
// formula): key i of n is drawn with probability proportional to
// 1/(i+1)^theta, so low indices are the hot users. Everything here draws
// from the library Rng, so a workload is reproducible from its seed —
// op-for-op per thread; only the interleaving across threads is scheduled
// by the OS.

#ifndef IVMF_SERVE_WORKLOAD_H_
#define IVMF_SERVE_WORKLOAD_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/check.h"
#include "base/rng.h"
#include "obs/metrics.h"
#include "serve/serving_engine.h"

namespace ivmf {

// -- Key generators ----------------------------------------------------------

// Bounded zipfian over [0, n): P(i) = (1/(i+1)^theta) / zeta(n, theta).
// theta in [0, 1); theta -> 0 degenerates to uniform, YCSB's default skew
// is 0.99. Construction is O(n) (the zeta sum); Next() is O(1).
class ZipfianGenerator {
 public:
  ZipfianGenerator(size_t n, double theta, uint64_t seed)
      : n_(n), theta_(theta), rng_(seed) {
    IVMF_CHECK_MSG(n > 0, "zipfian needs a non-empty key space");
    IVMF_CHECK_MSG(theta >= 0.0 && theta < 1.0,
                   "zipfian theta must lie in [0, 1)");
    zetan_ = Zeta(n_, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    const double zeta2 = Zeta(std::min<size_t>(n_, 2), theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
    if (!std::isfinite(eta_)) eta_ = 1.0;  // n == 1: every draw is key 0
  }

  // Next key in [0, n), deterministic in the seed.
  size_t Next() {
    const double u = rng_.Uniform();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const size_t key = static_cast<size_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return key < n_ ? key : n_ - 1;
  }

  size_t n() const { return n_; }
  double theta() const { return theta_; }

  // The generalized harmonic number H_{n,theta} = sum_{i=1..n} i^-theta.
  static double Zeta(size_t n, double theta) {
    double sum = 0.0;
    for (size_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  // P(Next() == key) under the ideal distribution, for skew assertions.
  double TheoreticalFrequency(size_t key) const {
    return 1.0 / std::pow(static_cast<double>(key + 1), theta_) / zetan_;
  }

 private:
  size_t n_;
  double theta_;
  double zetan_, alpha_, eta_;
  Rng rng_;
};

// Uniform over [0, n), same interface.
class UniformKeyGenerator {
 public:
  UniformKeyGenerator(size_t n, uint64_t seed) : n_(n), rng_(seed) {
    IVMF_CHECK_MSG(n > 0, "uniform generator needs a non-empty key space");
  }
  size_t Next() { return static_cast<size_t>(rng_.UniformIndex(n_)); }
  size_t n() const { return n_; }

 private:
  size_t n_;
  Rng rng_;
};

// -- The read/update driver --------------------------------------------------

enum class KeyDistribution { kZipfian, kUniform };

struct ServingWorkloadOptions {
  size_t readers = 4;             // client threads issuing ops
  double duration_seconds = 2.0;  // wall-clock run length per thread
  // Op mix: predict + topk + update fractions; updates take the remainder
  // (read_fraction + topk_fraction must not exceed 1).
  double read_fraction = 0.90;  // point predictions
  double topk_fraction = 0.05;  // top-k ranking scans
  size_t top_k = 10;
  KeyDistribution user_distribution = KeyDistribution::kZipfian;
  double zipf_theta = 0.99;  // YCSB default skew
  uint64_t seed = 1234;
  // Updates write [x - radius, x + radius] with x uniform on the scale.
  double rating_min = 1.0;
  double rating_max = 5.0;
  double rating_radius = 0.25;
};

struct ServingWorkloadReport {
  double seconds = 0.0;  // configured duration (per-thread wall clock)
  size_t predict_ops = 0;
  size_t topk_ops = 0;
  size_t update_ops = 0;
  obs::Histogram predict_latency;
  obs::Histogram topk_latency;
  obs::Histogram update_latency;
  uint64_t first_epoch = 0;          // epoch current when the run started
  uint64_t last_epoch = 0;           // epoch current when the run ended
  uint64_t snapshots_published = 0;  // publications during the run
  // Monotonicity violations observed by readers (a reader acquiring an
  // epoch older than one it already saw). The publication contract makes
  // this impossible; anything non-zero is a bug.
  size_t epoch_regressions = 0;
  // Fold of served predictions, so the reads cannot be optimized away.
  double checksum = 0.0;

  size_t total_ops() const { return predict_ops + topk_ops + update_ops; }
  double throughput() const {  // ops / second, all threads combined
    return seconds > 0.0 ? static_cast<double>(total_ops()) / seconds : 0.0;
  }
};

// Runs the YCSB-style loop against a live engine: starts the engine's
// background writer, spins up `readers` client threads issuing the
// configured mix against zipfian- or uniform-popular users for the duration,
// stops the writer, and returns the merged report. The engine must not have
// its writer running already.
ServingWorkloadReport RunServingWorkload(
    ServingEngine& engine, const ServingWorkloadOptions& options);

}  // namespace ivmf

#endif  // IVMF_SERVE_WORKLOAD_H_
