#include "serve/serving_snapshot.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace ivmf {

ServingSnapshot::ServingSnapshot(
    uint64_t epoch, IsvdResult result,
    std::shared_ptr<const SparseIntervalMatrix> matrix,
    std::shared_ptr<const ShardedSparseIntervalMatrix> sharded)
    : epoch_(epoch),
      result_(std::move(result)),
      matrix_(std::move(matrix)),
      sharded_(std::move(sharded)) {
  IVMF_CHECK_MSG(matrix_ != nullptr,
                 "ServingSnapshot needs the frozen matrix view");
  IVMF_CHECK_MSG(result_.u.rows() == matrix_->rows() &&
                     result_.v.rows() == matrix_->cols(),
                 "factor shapes do not match the matrix view");
  IVMF_CHECK_MSG(sharded_ == nullptr ||
                     (sharded_->rows() == matrix_->rows() &&
                      sharded_->cols() == matrix_->cols()),
                 "sharded view shape does not match the matrix view");
}

Interval ServingSnapshot::Predict(size_t user, size_t item) const {
  IVMF_CHECK_MSG(user < users() && item < items(),
                 "prediction outside the matrix shape");
  const size_t r = result_.rank();
  switch (result_.target) {
    case DecompositionTarget::kA: {
      // Algorithm 12 per cell. Σ† is diagonal, so the first interval
      // matmul collapses per-entry to u†(i,k) ⊗ σ†(k); the second follows
      // Algorithm 1's endpoint-product rule, which takes min/max over the
      // four FULL row-column sums (not per-term — per-term would give a
      // different, wider interval whenever factor signs are mixed).
      double t1 = 0.0, t2 = 0.0, t3 = 0.0, t4 = 0.0;
      for (size_t k = 0; k < r; ++k) {
        const Interval us = result_.u.At(user, k) * result_.sigma[k];
        const double vlo = result_.v.lower()(item, k);
        const double vhi = result_.v.upper()(item, k);
        t1 += us.lo * vlo;
        t2 += us.lo * vhi;
        t3 += us.hi * vlo;
        t4 += us.hi * vhi;
      }
      return Interval(std::min(std::min(t1, t2), std::min(t3, t4)),
                      std::max(std::max(t1, t2), std::max(t3, t4)));
    }
    case DecompositionTarget::kB: {
      // Algorithm 13 per cell: scalar factors against the two core
      // endpoints, then average replacement of a misordered pair.
      const Matrix& u = result_.ScalarU();
      const Matrix& v = result_.ScalarV();
      double lo = 0.0, hi = 0.0;
      for (size_t k = 0; k < r; ++k) {
        const double uv = u(user, k) * v(item, k);
        lo += uv * result_.sigma[k].lo;
        hi += uv * result_.sigma[k].hi;
      }
      if (lo > hi) {
        const double mid = 0.5 * (lo + hi);
        return Interval::Scalar(mid);
      }
      return Interval(lo, hi);
    }
    case DecompositionTarget::kC: {
      // Algorithm 14 per cell: fully scalar.
      const Matrix& u = result_.ScalarU();
      const Matrix& v = result_.ScalarV();
      double mid = 0.0;
      for (size_t k = 0; k < r; ++k) {
        mid += u(user, k) * result_.sigma[k].lo * v(item, k);
      }
      return Interval::Scalar(mid);
    }
  }
  IVMF_CHECK_MSG(false, "unknown decomposition target");
  return {};
}

std::vector<ServingSnapshot::ScoredItem> ServingSnapshot::TopK(
    size_t user, size_t k, bool exclude_observed) const {
  IVMF_CHECK_MSG(user < users(), "user outside the matrix shape");
  const std::vector<size_t>& row_ptr = matrix_->row_ptr();
  const std::vector<size_t>& col_idx = matrix_->col_idx();
  const auto row_begin =
      col_idx.begin() + static_cast<ptrdiff_t>(row_ptr[user]);
  const auto row_end =
      col_idx.begin() + static_cast<ptrdiff_t>(row_ptr[user + 1]);

  std::vector<ScoredItem> scored;
  scored.reserve(items());
  for (size_t j = 0; j < items(); ++j) {
    if (exclude_observed && std::binary_search(row_begin, row_end, j)) {
      continue;
    }
    scored.push_back({j, Predict(user, j)});
  }
  const size_t take = std::min(k, scored.size());
  const auto by_midpoint_desc = [](const ScoredItem& a, const ScoredItem& b) {
    const double ma = a.score.Mid(), mb = b.score.Mid();
    if (ma != mb) return ma > mb;
    return a.item < b.item;
  };
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<ptrdiff_t>(take),
                    scored.end(), by_midpoint_desc);
  scored.resize(take);
  return scored;
}

}  // namespace ivmf
