// Epoch publication point between the single writer and many readers.
//
// The registry holds one shared_ptr to the current ServingSnapshot. The
// writer swaps in a fresh snapshot per refresh (Publish, release ordering);
// readers grab the current one (Acquire, acquire ordering) and then work
// entirely on the immutable snapshot — the RCU pattern with the grace
// period implemented by shared_ptr reference counting: an epoch is
// reclaimed exactly when the last reader drops it, so there is no
// use-after-free window and no torn state (the only shared mutable datum is
// the control-block-managed pointer itself).
//
// The read path never waits on the writer's refresh work: the exchanged
// state is one pointer, swapped after the (expensive) snapshot construction
// completes off to the side. The C++17 atomic shared_ptr free functions
// used here are lock-free on the pointer where the ABI supports it and
// otherwise back onto a tiny spinlock pool around the two-word copy —
// either way the reader's critical path is a refcount increment, never the
// decomposition.
//
// Contract: snapshots are published with strictly increasing epochs (one
// writer), so any reader re-acquiring observes epochs monotonically —
// asserted here and stress-tested under TSan in tests/serving_stress_test.

#ifndef IVMF_SERVE_SNAPSHOT_REGISTRY_H_
#define IVMF_SERVE_SNAPSHOT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "base/check.h"
#include "serve/serving_snapshot.h"

namespace ivmf {

class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  // Current snapshot, or nullptr before the first publication. Safe from
  // any thread; the returned reference keeps the epoch alive for as long as
  // the caller holds it.
  std::shared_ptr<const ServingSnapshot> Acquire() const {
    return std::atomic_load_explicit(&current_, std::memory_order_acquire);
  }

  // Swaps in a new epoch. Writer-side API (one publishing thread); the
  // epoch must strictly exceed the currently published one.
  void Publish(std::shared_ptr<const ServingSnapshot> snapshot) {
    IVMF_CHECK_MSG(snapshot != nullptr, "cannot publish a null snapshot");
    const std::shared_ptr<const ServingSnapshot> previous = Acquire();
    IVMF_CHECK_MSG(previous == nullptr ||
                       snapshot->epoch() > previous->epoch(),
                   "published epochs must be strictly increasing");
    std::atomic_store_explicit(&current_, std::move(snapshot),
                               std::memory_order_release);
    published_.fetch_add(1, std::memory_order_relaxed);
  }

  // Number of Publish calls so far.
  uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const ServingSnapshot> current_;
  std::atomic<uint64_t> published_{0};
};

}  // namespace ivmf

#endif  // IVMF_SERVE_SNAPSHOT_REGISTRY_H_
