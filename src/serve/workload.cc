#include "serve/workload.h"

#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "base/check.h"
#include "base/stopwatch.h"

namespace ivmf {

namespace {

// Per-thread outcome, merged into the report after the join — readers never
// share mutable state with each other.
struct ThreadOutcome {
  size_t predict_ops = 0;
  size_t topk_ops = 0;
  size_t update_ops = 0;
  obs::Histogram predict_latency;
  obs::Histogram topk_latency;
  obs::Histogram update_latency;
  size_t epoch_regressions = 0;
  double checksum = 0.0;
};

}  // namespace

ServingWorkloadReport RunServingWorkload(
    ServingEngine& engine, const ServingWorkloadOptions& options) {
  IVMF_CHECK_MSG(options.readers > 0, "workload needs at least one reader");
  IVMF_CHECK_MSG(options.duration_seconds > 0.0,
                 "workload duration must be positive");
  IVMF_CHECK_MSG(options.read_fraction >= 0.0 &&
                     options.topk_fraction >= 0.0 &&
                     options.read_fraction + options.topk_fraction <= 1.0,
                 "op mix fractions must be non-negative and sum to <= 1");
  IVMF_CHECK_MSG(!engine.writer_running(),
                 "the workload drives the engine's own writer thread");

  const std::shared_ptr<const ServingSnapshot> initial = engine.Acquire();
  const size_t users = initial->users();
  const size_t items = initial->items();

  ServingWorkloadReport report;
  report.seconds = options.duration_seconds;
  report.first_epoch = engine.epoch();
  const uint64_t published_before = engine.registry().published();

  // Op counters tick live (one relaxed fetch_add per op) so the periodic
  // stats line sees progress during the run; the latency histograms stay
  // thread-local and merge once after the join.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& predict_counter =
      registry.GetCounter("serve.ops", {{"op", "predict"}});
  obs::Counter& topk_counter =
      registry.GetCounter("serve.ops", {{"op", "topk"}});
  obs::Counter& update_counter =
      registry.GetCounter("serve.ops", {{"op", "update"}});

  std::vector<ThreadOutcome> outcomes(options.readers);
  engine.StartWriter();
  {
    std::vector<std::thread> threads;
    threads.reserve(options.readers);
    for (size_t tid = 0; tid < options.readers; ++tid) {
      threads.emplace_back([&, tid] {
        ThreadOutcome& out = outcomes[tid];
        // Independent per-thread streams: one seed stride for the op/value
        // draws, another for key popularity.
        const uint64_t thread_seed =
            options.seed + 0x9E3779B97F4A7C15ULL * (tid + 1);
        Rng rng(thread_seed);
        ZipfianGenerator zipf(users, options.zipf_theta, thread_seed ^ 0x5A);
        UniformKeyGenerator uniform(users, thread_seed ^ 0xA5);
        const bool zipfian =
            options.user_distribution == KeyDistribution::kZipfian;

        uint64_t last_epoch = 0;
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration<double>(options.duration_seconds);
        Stopwatch op_clock;
        while (std::chrono::steady_clock::now() < deadline) {
          const double which = rng.Uniform();
          const size_t user = zipfian ? zipf.Next() : uniform.Next();

          op_clock.Restart();
          const std::shared_ptr<const ServingSnapshot> snapshot =
              engine.Acquire();
          if (snapshot->epoch() < last_epoch) ++out.epoch_regressions;
          last_epoch = snapshot->epoch();

          if (which < options.read_fraction) {
            const size_t item = static_cast<size_t>(rng.UniformIndex(items));
            const Interval predicted = snapshot->Predict(user, item);
            out.checksum += predicted.lo + predicted.hi;
            out.predict_latency.Record(op_clock.Seconds());
            ++out.predict_ops;
            predict_counter.Add(1);
          } else if (which < options.read_fraction + options.topk_fraction) {
            const std::vector<ServingSnapshot::ScoredItem> top =
                snapshot->TopK(user, options.top_k);
            if (!top.empty()) out.checksum += top.front().score.Mid();
            out.topk_latency.Record(op_clock.Seconds());
            ++out.topk_ops;
            topk_counter.Add(1);
          } else {
            const size_t item = static_cast<size_t>(rng.UniformIndex(items));
            const double mid =
                rng.Uniform(options.rating_min, options.rating_max);
            engine.Submit({{user, item,
                            Interval(mid - options.rating_radius,
                                     mid + options.rating_radius)}});
            out.update_latency.Record(op_clock.Seconds());
            ++out.update_ops;
            update_counter.Add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  engine.StopWriter();

  for (const ThreadOutcome& out : outcomes) {
    report.predict_ops += out.predict_ops;
    report.topk_ops += out.topk_ops;
    report.update_ops += out.update_ops;
    report.predict_latency.Merge(out.predict_latency);
    report.topk_latency.Merge(out.topk_latency);
    report.update_latency.Merge(out.update_latency);
    report.epoch_regressions += out.epoch_regressions;
    report.checksum += out.checksum;
  }
  report.last_epoch = engine.epoch();
  report.snapshots_published =
      engine.registry().published() - published_before;

  // Fold the latency distributions into the process-wide registry so
  // --metrics-json snapshots see the same histograms the report does.
  // Merging the quiesced per-run histograms once here keeps the per-op hot
  // path free of histogram-bucket traffic (counters above tick live).
  if (obs::Enabled()) {
    registry.GetHistogram("serve.predict.seconds")
        .Merge(report.predict_latency);
    registry.GetHistogram("serve.topk.seconds").Merge(report.topk_latency);
    registry.GetHistogram("serve.update.seconds").Merge(report.update_latency);
  }
  return report;
}

}  // namespace ivmf
