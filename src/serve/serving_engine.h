// The writer side of the serving layer: one StreamingIsvd driven behind a
// SnapshotRegistry.
//
// ServingEngine owns the streaming decomposition and the publication point.
// Ratings arrive from any thread through Submit (a mutex-guarded pending
// queue — the only lock in the subsystem, held for a vector push, never
// across a refresh). A single writer — either the caller invoking Step() or
// the built-in background thread (StartWriter) — drains the queue, applies
// the cells to the delta log, refreshes the decomposition (warm-started
// with cold fallback, exactly the batch semantics), and publishes a fresh
// immutable ServingSnapshot. Readers meanwhile Acquire() whatever epoch is
// current and never block on the writer.
//
// Staleness is bounded by one refresh: the background writer wakes as soon
// as work is pending, drains EVERYTHING submitted so far into one refresh
// (so bursts coalesce instead of queueing refreshes), and publishes before
// sleeping again. A prediction served at any instant is therefore at most
// one in-flight refresh behind the submitted stream.

#ifndef IVMF_SERVE_SERVING_ENGINE_H_
#define IVMF_SERVE_SERVING_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/streaming_isvd.h"
#include "serve/snapshot_registry.h"

namespace ivmf {

struct ServingEngineOptions {
  // Streaming refresh policy (warm bounds, compaction threshold, solver).
  StreamingIsvdOptions streaming;
  // Observation hook, invoked on the publishing thread immediately after
  // every publication (including the initial epoch) with the snapshot just
  // published. Used by tests to retain the epoch history and by harnesses
  // for logging; must be thread-compatible with running on the writer.
  std::function<void(const std::shared_ptr<const ServingSnapshot>&)>
      on_publish;
};

class ServingEngine {
 public:
  // Runs the initial cold decomposition of `base` and publishes epoch 1,
  // so Acquire() never returns null.
  ServingEngine(int strategy, size_t rank, SparseIntervalMatrix base,
                ServingEngineOptions options = {});

  // Stops the background writer (flushing pending work) if running.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  // -- Reader API (any thread, never blocks on refreshes) -------------------

  std::shared_ptr<const ServingSnapshot> Acquire() const {
    return registry_.Acquire();
  }
  const SnapshotRegistry& registry() const { return registry_; }

  // Last published epoch (== refresh count of the streaming core).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // -- Ingest API (any thread) ----------------------------------------------

  // Enqueues arriving / revised cells (last-write-wins per cell, applied in
  // submission order). Wakes the background writer when one is running.
  void Submit(std::vector<IntervalTriplet> batch);

  // Cells submitted but not yet applied by a refresh.
  size_t pending_cells() const;

  // Cells applied across all refreshes so far.
  size_t cells_applied() const {
    return cells_applied_.load(std::memory_order_relaxed);
  }

  // -- Writer API (one thread; exclusive with the background writer) --------

  // Drains the pending queue; when any cells were drained, applies them,
  // refreshes, and publishes the next epoch. Returns the number of cells
  // applied (0 = nothing pending, no refresh, no publication).
  size_t Step();

  // Starts / stops the built-in writer thread. StopWriter flushes pending
  // work with a final Step() before returning; it is called by the
  // destructor when still running.
  void StartWriter();
  void StopWriter();
  bool writer_running() const;

 private:
  void PublishCurrent();
  void WriterLoop();
  std::vector<std::vector<IntervalTriplet>> Drain();

  ServingEngineOptions options_;
  StreamingIsvd streaming_;  // writer-thread-only after construction
  SnapshotRegistry registry_;

  mutable std::mutex mu_;  // guards pending_, pending_cells_, stop_, running_
  std::condition_variable cv_;
  std::vector<std::vector<IntervalTriplet>> pending_;
  size_t pending_cells_ = 0;
  bool stop_ = false;
  bool running_ = false;
  std::thread writer_;

  std::atomic<uint64_t> epoch_{0};
  std::atomic<size_t> cells_applied_{0};
};

}  // namespace ivmf

#endif  // IVMF_SERVE_SERVING_ENGINE_H_
