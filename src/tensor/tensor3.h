// Dense 3-way tensors and the multilinear-algebra primitives under CP
// decomposition (mode-n unfolding, Khatri–Rao product).
//
// This extends the library towards the authors' stated follow-up direction
// (decomposition of imprecise *tensors*): interval-valued CP lives in
// tensor/cp.h and reuses ILSA exactly like ISVD does for matrices.

#ifndef IVMF_TENSOR_TENSOR3_H_
#define IVMF_TENSOR_TENSOR3_H_

#include <cstddef>
#include <vector>

#include "base/check.h"
#include "linalg/matrix.h"

namespace ivmf {

// A dense I x J x K tensor of doubles (first index fastest conceptually;
// storage is row-major over (i, j, k)).
class Tensor3 {
 public:
  Tensor3() = default;
  Tensor3(size_t i, size_t j, size_t k)
      : dim_{i, j, k}, data_(i * j * k, 0.0) {}

  size_t dim(int mode) const {
    IVMF_DCHECK(mode >= 0 && mode < 3);
    return dim_[mode];
  }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t i, size_t j, size_t k) {
    IVMF_DCHECK(i < dim_[0] && j < dim_[1] && k < dim_[2]);
    return data_[(i * dim_[1] + j) * dim_[2] + k];
  }
  double operator()(size_t i, size_t j, size_t k) const {
    IVMF_DCHECK(i < dim_[0] && j < dim_[1] && k < dim_[2]);
    return data_[(i * dim_[1] + j) * dim_[2] + k];
  }

  // Mode-n unfolding (Kolda & Bader convention): mode 0 gives an
  // I x (J*K) matrix with x_{ijk} in column j + k*J; mode 1 gives
  // J x (I*K) with column i + k*I; mode 2 gives K x (I*J) with column
  // i + j*I.
  Matrix Unfold(int mode) const;

  // Inverse of Unfold for the same convention.
  static Tensor3 Fold(const Matrix& unfolded, int mode, size_t i, size_t j,
                      size_t k);

  // Rank-R CP construction: X = Σ_r lambda_r a_r ∘ b_r ∘ c_r with
  // a_r/b_r/c_r the r-th columns of A (I x R), B (J x R), C (K x R).
  static Tensor3 FromCp(const Matrix& a, const Matrix& b, const Matrix& c,
                        const std::vector<double>& lambda);

  Tensor3& operator-=(const Tensor3& other);
  Tensor3& operator+=(const Tensor3& other);

  double FrobeniusNorm() const;
  double MaxAbs() const;

  bool ApproxEquals(const Tensor3& other, double tol) const;

 private:
  size_t dim_[3] = {0, 0, 0};
  std::vector<double> data_;
};

// Khatri–Rao (column-wise Kronecker) product: A (I x R) ⊙ B (J x R) is the
// (I*J) x R matrix whose r-th column is kron(A[:,r], B[:,r]) with B's index
// varying fastest — matching the unfolding convention above so that
// X(0) = A diag(λ) (C ⊙ B)ᵀ.
Matrix KhatriRao(const Matrix& a, const Matrix& b);

}  // namespace ivmf

#endif  // IVMF_TENSOR_TENSOR3_H_
