#include "tensor/cp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "align/assignment.h"
#include "align/ilsa.h"
#include "base/rng.h"
#include "interval/interval_ops.h"
#include "linalg/pinv.h"

namespace ivmf {
namespace {

Matrix RandomFactor(size_t rows, size_t cols, Rng& rng) {
  Matrix f(rows, cols);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j) f(i, j) = rng.Normal();
  return f;
}

// One ALS update for a single mode:
//   F ← X(mode) * KhatriRao(G, H) * pinv(GᵀG ∘ HᵀH).
Matrix AlsUpdate(const Matrix& unfolded, const Matrix& g, const Matrix& h) {
  const Matrix gram =
      (g.Transpose() * g).CwiseMultiply(h.Transpose() * h);
  return unfolded * KhatriRao(g, h) * PseudoInverse(gram);
}

double Fit(const Tensor3& x, const CpResult& result, double x_norm) {
  Tensor3 residual = result.Reconstruct();
  residual -= x;
  if (x_norm == 0.0) return residual.FrobeniusNorm() == 0.0 ? 1.0 : 0.0;
  return 1.0 - residual.FrobeniusNorm() / x_norm;
}

}  // namespace

Tensor3 IntervalTensor3::Mid() const {
  Tensor3 out(lower.dim(0), lower.dim(1), lower.dim(2));
  for (size_t i = 0; i < lower.dim(0); ++i)
    for (size_t j = 0; j < lower.dim(1); ++j)
      for (size_t k = 0; k < lower.dim(2); ++k)
        out(i, j, k) = 0.5 * (lower(i, j, k) + upper(i, j, k));
  return out;
}

CpResult ComputeCpAls(const Tensor3& x, size_t rank, const CpOptions& options) {
  IVMF_CHECK_MSG(rank > 0, "CP rank must be positive");
  Rng rng(options.seed);

  CpResult result;
  result.a = RandomFactor(x.dim(0), rank, rng);
  result.b = RandomFactor(x.dim(1), rank, rng);
  result.c = RandomFactor(x.dim(2), rank, rng);
  result.lambda.assign(rank, 1.0);

  const Matrix x0 = x.Unfold(0);
  const Matrix x1 = x.Unfold(1);
  const Matrix x2 = x.Unfold(2);
  const double x_norm = x.FrobeniusNorm();

  // Scale lambda into A for the iteration; re-extract at the end.
  auto absorb_lambda = [&](Matrix& f) {
    for (size_t i = 0; i < f.rows(); ++i)
      for (size_t t = 0; t < rank; ++t) f(i, t) *= result.lambda[t];
    result.lambda.assign(rank, 1.0);
  };
  absorb_lambda(result.a);

  double prev_fit = -1.0;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Unfolding convention: X(0) = A (C ⊙ B)ᵀ, X(1) = B (C ⊙ A)ᵀ,
    // X(2) = C (B ⊙ A)ᵀ.
    result.a = AlsUpdate(x0, result.c, result.b);
    result.b = AlsUpdate(x1, result.c, result.a);
    result.c = AlsUpdate(x2, result.b, result.a);

    // Normalize B and C columns; keep the scale in A (cheap and keeps the
    // Fit computation meaningful every iteration).
    NormalizeColumnsL2(result.b);
    NormalizeColumnsL2(result.c);

    const double fit = Fit(x, result, x_norm);
    result.fit_history.push_back(fit);
    if (prev_fit >= 0.0 && std::abs(fit - prev_fit) < options.tolerance) break;
    prev_fit = fit;
  }

  // Final normalization: unit columns everywhere, weights in lambda,
  // components sorted by descending |lambda| with non-negative lambda
  // (sign pushed into A).
  std::vector<double> norms_a = NormalizeColumnsL2(result.a);
  for (size_t t = 0; t < rank; ++t) result.lambda[t] = norms_a[t];

  std::vector<size_t> order(rank);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t p, size_t q) {
    return result.lambda[p] > result.lambda[q];
  });
  CpResult sorted = result;
  for (size_t t = 0; t < rank; ++t) {
    const size_t src = order[t];
    sorted.lambda[t] = result.lambda[src];
    for (size_t i = 0; i < result.a.rows(); ++i)
      sorted.a(i, t) = result.a(i, src);
    for (size_t i = 0; i < result.b.rows(); ++i)
      sorted.b(i, t) = result.b(i, src);
    for (size_t i = 0; i < result.c.rows(); ++i)
      sorted.c(i, t) = result.c(i, src);
  }
  sorted.fit_history = result.fit_history;
  return sorted;
}

IntervalCpResult ComputeAlignedIntervalCp(const IntervalTensor3& x,
                                          size_t rank,
                                          const CpOptions& options,
                                          bool align) {
  IntervalCpResult result;
  result.lower = ComputeCpAls(x.lower, rank, options);
  result.upper = ComputeCpAls(x.upper, rank, options);
  result.component_similarity.assign(rank, 0.0);

  // Per-component similarity across all three modes: the product of the
  // |cos| agreements. A rank-one component only matches when all of its
  // factors do.
  const Matrix sim_a =
      PairwiseAbsCosine(result.lower.a, result.upper.a);
  const Matrix sim_b =
      PairwiseAbsCosine(result.lower.b, result.upper.b);
  const Matrix sim_c =
      PairwiseAbsCosine(result.lower.c, result.upper.c);
  Matrix sim(rank, rank);
  for (size_t p = 0; p < rank; ++p)
    for (size_t q = 0; q < rank; ++q)
      sim(p, q) = sim_a(p, q) * sim_b(p, q) * sim_c(p, q);

  std::vector<size_t> mapping(rank);
  if (align) {
    mapping = SolveAssignmentMax(sim);
  } else {
    std::iota(mapping.begin(), mapping.end(), 0);
  }

  // Permute the min side to pair with the max side.
  CpResult aligned = result.lower;
  for (size_t t = 0; t < rank; ++t) {
    const size_t src = mapping[t];
    result.component_similarity[t] = sim(src, t);
    aligned.lambda[t] = result.lower.lambda[src];
    for (size_t i = 0; i < aligned.a.rows(); ++i)
      aligned.a(i, t) = result.lower.a(i, src);
    for (size_t i = 0; i < aligned.b.rows(); ++i)
      aligned.b(i, t) = result.lower.b(i, src);
    for (size_t i = 0; i < aligned.c.rows(); ++i)
      aligned.c(i, t) = result.lower.c(i, src);
  }
  result.lower = std::move(aligned);
  return result;
}

}  // namespace ivmf
