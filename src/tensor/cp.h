// CP (CANDECOMP/PARAFAC) decomposition by alternating least squares, and
// its interval-valued, ILSA-aligned extension.
//
// AI-CP generalizes the paper's recipe from matrices to 3-way tensors:
// decompose the endpoint tensors X_* and X^* independently with CP-ALS,
// then align the rank-one components of the min side to the max side via
// the interval latent semantic alignment machinery (Hungarian matching on
// a per-component similarity that multiplies the |cos| agreement of all
// three factor modes).

#ifndef IVMF_TENSOR_CP_H_
#define IVMF_TENSOR_CP_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "tensor/tensor3.h"

namespace ivmf {

struct CpOptions {
  size_t max_iterations = 100;
  // Stop when relative fit improvement drops below this.
  double tolerance = 1e-8;
  uint64_t seed = 77;
};

struct CpResult {
  Matrix a;                    // I x R (unit columns)
  Matrix b;                    // J x R (unit columns)
  Matrix c;                    // K x R (unit columns)
  std::vector<double> lambda;  // R component weights, descending
  // Fit = 1 - ||X - X̂||_F / ||X||_F per iteration (non-decreasing up to
  // numerical noise).
  std::vector<double> fit_history;

  Tensor3 Reconstruct() const { return Tensor3::FromCp(a, b, c, lambda); }
};

// Rank-R CP-ALS of a dense 3-way tensor.
CpResult ComputeCpAls(const Tensor3& x, size_t rank,
                      const CpOptions& options = {});

// A pair of endpoint tensors [X_*, X^*].
struct IntervalTensor3 {
  Tensor3 lower;
  Tensor3 upper;

  static IntervalTensor3 FromScalar(const Tensor3& t) { return {t, t}; }
  Tensor3 Mid() const;
};

struct IntervalCpResult {
  CpResult lower;  // aligned to `upper` component order
  CpResult upper;
  // |cos|-product similarity of each aligned component pair (diagnostic).
  std::vector<double> component_similarity;
};

// AI-CP: CP-ALS on both endpoint tensors plus Hungarian alignment of the
// min-side components to the max side. Set align = false for the unaligned
// baseline (the tensor analog of "ISVD1 without ILSA").
IntervalCpResult ComputeAlignedIntervalCp(const IntervalTensor3& x,
                                          size_t rank,
                                          const CpOptions& options = {},
                                          bool align = true);

}  // namespace ivmf

#endif  // IVMF_TENSOR_CP_H_
