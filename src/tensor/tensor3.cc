#include "tensor/tensor3.h"

#include <cmath>

namespace ivmf {

Matrix Tensor3::Unfold(int mode) const {
  IVMF_CHECK(mode >= 0 && mode < 3);
  const size_t i_dim = dim_[0], j_dim = dim_[1], k_dim = dim_[2];
  switch (mode) {
    case 0: {
      Matrix out(i_dim, j_dim * k_dim);
      for (size_t i = 0; i < i_dim; ++i)
        for (size_t j = 0; j < j_dim; ++j)
          for (size_t k = 0; k < k_dim; ++k)
            out(i, j + k * j_dim) = (*this)(i, j, k);
      return out;
    }
    case 1: {
      Matrix out(j_dim, i_dim * k_dim);
      for (size_t i = 0; i < i_dim; ++i)
        for (size_t j = 0; j < j_dim; ++j)
          for (size_t k = 0; k < k_dim; ++k)
            out(j, i + k * i_dim) = (*this)(i, j, k);
      return out;
    }
    default: {
      Matrix out(k_dim, i_dim * j_dim);
      for (size_t i = 0; i < i_dim; ++i)
        for (size_t j = 0; j < j_dim; ++j)
          for (size_t k = 0; k < k_dim; ++k)
            out(k, i + j * i_dim) = (*this)(i, j, k);
      return out;
    }
  }
}

Tensor3 Tensor3::Fold(const Matrix& unfolded, int mode, size_t i_dim,
                      size_t j_dim, size_t k_dim) {
  Tensor3 out(i_dim, j_dim, k_dim);
  switch (mode) {
    case 0:
      IVMF_CHECK(unfolded.rows() == i_dim &&
                 unfolded.cols() == j_dim * k_dim);
      for (size_t i = 0; i < i_dim; ++i)
        for (size_t j = 0; j < j_dim; ++j)
          for (size_t k = 0; k < k_dim; ++k)
            out(i, j, k) = unfolded(i, j + k * j_dim);
      break;
    case 1:
      IVMF_CHECK(unfolded.rows() == j_dim &&
                 unfolded.cols() == i_dim * k_dim);
      for (size_t i = 0; i < i_dim; ++i)
        for (size_t j = 0; j < j_dim; ++j)
          for (size_t k = 0; k < k_dim; ++k)
            out(i, j, k) = unfolded(j, i + k * i_dim);
      break;
    default:
      IVMF_CHECK(unfolded.rows() == k_dim &&
                 unfolded.cols() == i_dim * j_dim);
      for (size_t i = 0; i < i_dim; ++i)
        for (size_t j = 0; j < j_dim; ++j)
          for (size_t k = 0; k < k_dim; ++k)
            out(i, j, k) = unfolded(k, i + j * i_dim);
      break;
  }
  return out;
}

Tensor3 Tensor3::FromCp(const Matrix& a, const Matrix& b, const Matrix& c,
                        const std::vector<double>& lambda) {
  const size_t r = a.cols();
  IVMF_CHECK(b.cols() == r && c.cols() == r && lambda.size() == r);
  Tensor3 out(a.rows(), b.rows(), c.rows());
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < b.rows(); ++j)
      for (size_t k = 0; k < c.rows(); ++k) {
        double sum = 0.0;
        for (size_t t = 0; t < r; ++t)
          sum += lambda[t] * a(i, t) * b(j, t) * c(k, t);
        out(i, j, k) = sum;
      }
  return out;
}

Tensor3& Tensor3::operator-=(const Tensor3& other) {
  IVMF_CHECK(dim_[0] == other.dim_[0] && dim_[1] == other.dim_[1] &&
             dim_[2] == other.dim_[2]);
  for (size_t t = 0; t < data_.size(); ++t) data_[t] -= other.data_[t];
  return *this;
}

Tensor3& Tensor3::operator+=(const Tensor3& other) {
  IVMF_CHECK(dim_[0] == other.dim_[0] && dim_[1] == other.dim_[1] &&
             dim_[2] == other.dim_[2]);
  for (size_t t = 0; t < data_.size(); ++t) data_[t] += other.data_[t];
  return *this;
}

double Tensor3::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Tensor3::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

bool Tensor3::ApproxEquals(const Tensor3& other, double tol) const {
  if (dim_[0] != other.dim_[0] || dim_[1] != other.dim_[1] ||
      dim_[2] != other.dim_[2]) {
    return false;
  }
  for (size_t t = 0; t < data_.size(); ++t)
    if (std::abs(data_[t] - other.data_[t]) > tol) return false;
  return true;
}

Matrix KhatriRao(const Matrix& a, const Matrix& b) {
  IVMF_CHECK_MSG(a.cols() == b.cols(), "Khatri-Rao needs equal column counts");
  const size_t r = a.cols();
  Matrix out(a.rows() * b.rows(), r);
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < b.rows(); ++j)
      for (size_t t = 0; t < r; ++t)
        out(i * b.rows() + j, t) = a(i, t) * b(j, t);
  return out;
}

}  // namespace ivmf
