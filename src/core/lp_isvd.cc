#include "core/lp_isvd.h"

#include <cmath>
#include <utility>

#include "base/stopwatch.h"
#include "core/isvd_internal.h"
#include "interval/interval_ops.h"
#include "linalg/pinv.h"

namespace ivmf {

IsvdResult LpIsvd(const IntervalMatrix& m, size_t rank,
                  const IsvdOptions& options,
                  const IntervalEigLpOptions& lp_options) {
  const bool transposed = (options.gram_side == GramSide::kMMt) ||
                          (options.gram_side == GramSide::kAuto &&
                           m.cols() > m.rows());
  const IntervalMatrix work = transposed ? m.Transpose() : m;
  const size_t full = std::min(work.rows(), work.cols());
  const size_t r = (rank == 0 || rank > full) ? full : rank;

  PhaseTimings timings;
  Stopwatch sw;
  const IntervalMatrix gram = IntervalMatMul(work.Transpose(), work);
  timings.preprocess = sw.Seconds();

  // LP-bounded interval eigenpairs of A† (this is the expensive part:
  // two LP solves per eigenvector component).
  sw.Restart();
  const IntervalEigLpResult eig = ComputeIntervalEigLp(gram, r, lp_options);
  timings.decompose = sw.Seconds();

  // Σ† = sqrt of the non-negative part of the eigenvalue intervals.
  std::vector<Interval> sigma(r);
  for (size_t j = 0; j < r; ++j) {
    const double lo = eig.eigenvalues[j].lo > 0.0
                          ? std::sqrt(eig.eigenvalues[j].lo)
                          : 0.0;
    const double hi = eig.eigenvalues[j].hi > 0.0
                          ? std::sqrt(eig.eigenvalues[j].hi)
                          : 0.0;
    sigma[j] = Interval(lo, hi);
  }

  // U† recovery mirrors ISVD3 (Section 4.4.2).
  sw.Restart();
  const IntervalMatrix& v = eig.eigenvectors;
  const Matrix v_avg = v.Mid();
  const Matrix vt_inv =
      RobustInverse(v_avg.Transpose(), options.cond_threshold);
  const Matrix sigma_inv = Matrix::Diagonal(InverseIntervalDiagonal(sigma));
  IntervalMatrix u = IntervalMatMul(work, vt_inv * sigma_inv);
  timings.solve = sw.Seconds();

  IsvdResult result = isvd_internal::BuildResult(
      std::move(u), std::move(sigma), v, options.target, timings);
  if (transposed) std::swap(result.u, result.v);
  return result;
}

}  // namespace ivmf
