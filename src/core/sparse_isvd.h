// Matrix-free ISVD over sparse interval matrices.
//
// Overloads of the full ISVD0–ISVD4 strategy family (core/isvd.h) that take
// a CSR SparseIntervalMatrix and never materialize the dense endpoint
// matrices:
//
//  - ISVD0/ISVD1 decompose the midpoint / endpoint matrices through the
//    Golub–Kahan–Lanczos bidiagonalization SVD (linalg/lanczos_svd.h) over
//    SparseEndpointMap, O(nnz) per step, any sign.
//  - ISVD2–ISVD4 eigendecompose the Algorithm-1 interval Gram endpoints.
//    For entrywise non-negative matrices the endpoints collapse to M_*ᵀM_*
//    and M^*ᵀM^*, and on the Lanczos route the eigensolver touches them
//    only through x -> M_eᵀ(M_e x), O(nnz) per step — not even the m x m
//    Gram is formed. For signed matrices the Algorithm-1 endpoints are
//    elementwise min/max over four products and have no fixed operator
//    form, so SparseGramOperator::DenseGramEndpoints accumulates them from
//    the sparse rows (min(n, m)² memory, never densifying M†) before the
//    eigensolve — exactly matching the dense IntervalMatMul route.
//
// The downstream solve/align/recompute phases run on the small n x r /
// m x r factors exactly as in the dense path, with sparse x dense kernels
// substituted for the dense products.
//
// Solver awareness (ISVD2–ISVD4):
//   EigSolver::kLanczos  matrix-free on non-negative input (the scalable
//                        route; GramEig.gram is left empty). Signed input
//                        runs Lanczos on the materialized endpoints.
//   EigSolver::kJacobi   accumulates the dense endpoint Grams from the
//                        sparse rows (m x m memory, exact full spectrum) —
//                        useful for narrow matrices such as user-genre.
//   EigSolver::kAuto     Lanczos when 4 * rank < gram dimension, else
//                        Jacobi, mirroring the dense heuristic.
// GramSide::kAuto picks the smaller Gram dimension, like the dense path.
// ISVD0/ISVD1 always run the bidiagonalization SVD (it IS the sparse
// route); eig_solver does not apply to them.

#ifndef IVMF_CORE_SPARSE_ISVD_H_
#define IVMF_CORE_SPARSE_ISVD_H_

#include "core/isvd.h"
#include "sparse/block_matrix.h"
#include "sparse/sparse_interval_matrix.h"

namespace ivmf {

// ISVD0 (midpoint SVD) without materializing the midpoint matrix: the
// Golub–Kahan–Lanczos solver applies ((M_* + M^*) / 2) x fused over the
// shared CSR pattern. The result is always scalar (target c), like the
// dense overload.
IsvdResult Isvd0(const SparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});

// ISVD1 (endpoint SVDs + ILSA) with both endpoint decompositions running
// matrix-free; the alignment and target construction mirror the dense
// overload on the small factors.
IsvdResult Isvd1(const SparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});

// Gram eigendecomposition without forming dense endpoint matrices. On the
// non-negative Lanczos route `GramEig.gram` stays empty (it would be the
// dense m x m matrix this path exists to avoid); the Jacobi route and the
// signed four-product route fill it, so rank sweeps via TruncateGramEig
// keep working.
GramEig ComputeGramEig(const SparseIntervalMatrix& m, size_t rank,
                       const IsvdOptions& options = {});

// ISVD2–ISVD4 on a sparse matrix, reusing a precomputed GramEig.
IsvdResult Isvd2(const SparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options);
IsvdResult Isvd3(const SparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options);
IsvdResult Isvd4(const SparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options);

// Convenience one-shot forms.
IsvdResult Isvd2(const SparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});
IsvdResult Isvd3(const SparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});
IsvdResult Isvd4(const SparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});

// Dispatch by strategy index 0..4 — the whole family has a sparse
// formulation.
IsvdResult RunIsvd(int strategy, const SparseIntervalMatrix& m, size_t rank,
                   const IsvdOptions& options = {});

// -- Sharded (block-row) overloads -------------------------------------------
//
// The same strategy family over a ShardedSparseIntervalMatrix: identical
// semantics through the unchanged Lanczos drivers, with every O(nnz) pass
// running shard-parallel — and streaming mmap'd segment files when the
// store is disk-backed, which is the out-of-core decompose path
// (bench/fig10_outofcore). Two differences from the monolithic overloads:
//  - GramSide is always kMtM: the sharded operators never materialize a
//    transposed store (transpose actions run as shard scatter reductions),
//    so options.gram_side is ignored.
//  - Results match the monolithic route to the kernels' 1e-12 differential
//    bound (reduction grouping differs), except the signed Gram-endpoint
//    accumulation, which is bit-identical by construction.

IsvdResult Isvd0(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});
IsvdResult Isvd1(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});

GramEig ComputeGramEig(const ShardedSparseIntervalMatrix& m, size_t rank,
                       const IsvdOptions& options = {});

IsvdResult Isvd2(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options);
IsvdResult Isvd3(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options);
IsvdResult Isvd4(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options);

IsvdResult Isvd2(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});
IsvdResult Isvd3(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});
IsvdResult Isvd4(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});

IsvdResult RunIsvd(int strategy, const ShardedSparseIntervalMatrix& m,
                   size_t rank, const IsvdOptions& options = {});

}  // namespace ivmf

#endif  // IVMF_CORE_SPARSE_ISVD_H_
