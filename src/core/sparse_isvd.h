// Matrix-free ISVD over sparse interval matrices.
//
// Overloads of the ISVD2–ISVD4 pipeline (core/isvd.h) that take a CSR
// SparseIntervalMatrix and never materialize either the dense endpoint
// matrices or — on the Lanczos route — the m x m interval Gram matrix
// A† = M†ᵀ M†. Instead the eigensolver touches the Gram endpoints only
// through the operator x -> M_eᵀ(M_e x), which costs O(nnz) per step
// (sparse/sparse_gram_operator.h). The downstream solve/align/recompute
// phases run on the small n x r / m x r factors exactly as in the dense
// path, with sparse x dense kernels substituted for the dense products.
//
// Precondition: the matrix must be entrywise non-negative (true for all the
// paper's recommender constructions, whose entries are rating intervals or
// empty cells). That is what makes the Algorithm-1 interval Gram endpoints
// equal M_*ᵀM_* and M^*ᵀM^*, so the matrix-free route reproduces the dense
// ComputeGramEig results. Violations abort via IVMF_CHECK.
//
// Solver awareness:
//   EigSolver::kLanczos  matrix-free (the scalable route; GramEig.gram is
//                        left empty).
//   EigSolver::kJacobi   accumulates the dense endpoint Grams from the
//                        sparse rows (m x m memory, exact full spectrum) —
//                        useful for narrow matrices such as user-genre.
//   EigSolver::kAuto     Lanczos when 4 * rank < gram dimension, else
//                        Jacobi, mirroring the dense heuristic.
// GramSide::kAuto picks the smaller Gram dimension, like the dense path.

#ifndef IVMF_CORE_SPARSE_ISVD_H_
#define IVMF_CORE_SPARSE_ISVD_H_

#include "core/isvd.h"
#include "sparse/sparse_interval_matrix.h"

namespace ivmf {

// Gram eigendecomposition without forming dense endpoint matrices. On the
// Lanczos route `GramEig.gram` stays empty (it would be the dense m x m
// matrix this path exists to avoid); the Jacobi route fills it so rank
// sweeps via TruncateGramEig keep working.
GramEig ComputeGramEig(const SparseIntervalMatrix& m, size_t rank,
                       const IsvdOptions& options = {});

// ISVD2–ISVD4 on a sparse matrix, reusing a precomputed GramEig.
IsvdResult Isvd2(const SparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options);
IsvdResult Isvd3(const SparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options);
IsvdResult Isvd4(const SparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options);

// Convenience one-shot forms.
IsvdResult Isvd2(const SparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});
IsvdResult Isvd3(const SparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});
IsvdResult Isvd4(const SparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});

// Dispatch by strategy index. Only the Gram-based strategies 2–4 have a
// sparse formulation (ISVD0/ISVD1 need full SVDs of dense endpoints);
// strategies 0–1 abort.
IsvdResult RunIsvd(int strategy, const SparseIntervalMatrix& m, size_t rank,
                   const IsvdOptions& options = {});

}  // namespace ivmf

#endif  // IVMF_CORE_SPARSE_ISVD_H_
