#include "core/isvd.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "base/parallel.h"
#include "base/stopwatch.h"
#include "core/isvd_internal.h"
#include "interval/interval_ops.h"
#include "linalg/pinv.h"

namespace ivmf {
namespace {

size_t ClampRank(const IntervalMatrix& m, size_t rank) {
  return isvd_internal::ClampRank(m.rows(), m.cols(), rank);
}

// U = M * V * diag(1/sigma): the SVD identity U = M (Vᵀ)⁻¹ Σ⁻¹ specialised
// to V with orthonormal columns (where pinv(Vᵀ) = V). Columns with zero
// singular value become zero vectors.
Matrix RecoverLeftFactor(const Matrix& m, const Matrix& v,
                         const std::vector<double>& sigma) {
  Matrix u = m * v;  // n x r
  isvd_internal::ScaleColumnsByInverseSigma(u, sigma);
  return u;
}

GramSide ResolveSide(const IntervalMatrix& m, GramSide side) {
  if (side != GramSide::kAuto) return side;
  return m.cols() <= m.rows() ? GramSide::kMtM : GramSide::kMMt;
}

void SwapFactors(IsvdResult& result) {
  std::swap(result.u, result.v);
}

}  // namespace

namespace isvd_internal {

size_t ClampRank(size_t rows, size_t cols, size_t rank) {
  const size_t full = std::min(rows, cols);
  if (rank == 0 || rank > full) return full;
  return rank;
}

std::vector<double> SqrtClamped(const std::vector<double>& eigenvalues) {
  std::vector<double> sigma(eigenvalues.size());
  for (size_t i = 0; i < eigenvalues.size(); ++i)
    sigma[i] = eigenvalues[i] > 0.0 ? std::sqrt(eigenvalues[i]) : 0.0;
  return sigma;
}

std::vector<Interval> MakeIntervalDiag(const std::vector<double>& lo,
                                       const std::vector<double>& hi) {
  IVMF_CHECK(lo.size() == hi.size());
  std::vector<Interval> diag(lo.size());
  for (size_t i = 0; i < lo.size(); ++i) diag[i] = Interval(lo[i], hi[i]);
  return diag;
}

void AlignMinSide(const IlsaResult& ilsa, Matrix* u_lo, Matrix* v_lo,
                  std::vector<double>* s_lo) {
  if (u_lo != nullptr) *u_lo = ApplyIlsaToColumns(*u_lo, ilsa);
  if (v_lo != nullptr) *v_lo = ApplyIlsaToColumns(*v_lo, ilsa);
  if (s_lo != nullptr) *s_lo = ApplyIlsaToDiagonal(*s_lo, ilsa);
}

void ScaleColumnsByInverseSigma(Matrix& u, const std::vector<double>& sigma) {
  for (size_t j = 0; j < u.cols(); ++j) {
    const double inv = sigma[j] > 1e-300 ? 1.0 / sigma[j] : 0.0;
    for (size_t i = 0; i < u.rows(); ++i) u(i, j) *= inv;
  }
}

IsvdResult BuildResult(IntervalMatrix u, std::vector<Interval> sigma,
                       IntervalMatrix v, DecompositionTarget target,
                       PhaseTimings timings) {
  Stopwatch sw;
  u = u.AverageReplaced();
  v = v.AverageReplaced();
  AverageReplaceVector(sigma);

  IsvdResult result;
  result.target = target;
  if (target == DecompositionTarget::kA) {
    result.u = std::move(u);
    result.sigma = std::move(sigma);
    result.v = std::move(v);
  } else {
    // Targets b and c: average the factor endpoints, renormalize columns in
    // L2, and push the norm products into the core (Sections 3.4.2–3.4.3).
    Matrix u_avg = u.Mid();
    Matrix v_avg = v.Mid();
    const std::vector<double> u_norms = NormalizeColumnsL2(u_avg);
    const std::vector<double> v_norms = NormalizeColumnsL2(v_avg);
    result.u = IntervalMatrix::FromScalar(u_avg);
    result.v = IntervalMatrix::FromScalar(v_avg);
    result.sigma.resize(sigma.size());
    for (size_t j = 0; j < sigma.size(); ++j) {
      const double rho = u_norms[j] * v_norms[j];
      if (target == DecompositionTarget::kB) {
        result.sigma[j] = Interval(sigma[j].lo * rho, sigma[j].hi * rho);
      } else {
        result.sigma[j] = Interval::Scalar(sigma[j].Mid() * rho);
      }
    }
  }
  timings.renormalize += sw.Seconds();
  result.timings = timings;
  return result;
}

}  // namespace isvd_internal

namespace {
using isvd_internal::AlignMinSide;
using isvd_internal::BuildResult;
using isvd_internal::MakeIntervalDiag;
using isvd_internal::SqrtClamped;
}  // namespace

PhaseTimings& PhaseTimings::operator+=(const PhaseTimings& other) {
  preprocess += other.preprocess;
  decompose += other.decompose;
  align += other.align;
  solve += other.solve;
  recompute += other.recompute;
  renormalize += other.renormalize;
  return *this;
}

Matrix IsvdResult::SigmaLower() const {
  std::vector<double> d(sigma.size());
  for (size_t i = 0; i < sigma.size(); ++i) d[i] = sigma[i].lo;
  return Matrix::Diagonal(d);
}

Matrix IsvdResult::SigmaUpper() const {
  std::vector<double> d(sigma.size());
  for (size_t i = 0; i < sigma.size(); ++i) d[i] = sigma[i].hi;
  return Matrix::Diagonal(d);
}

IntervalMatrix IsvdResult::Reconstruct() const {
  switch (target) {
    case DecompositionTarget::kA: {
      // Algorithm 12: full interval-algebra recombination.
      const IntervalMatrix sigma_int(SigmaLower(), SigmaUpper());
      return IntervalMatMul(IntervalMatMul(u, sigma_int), v.Transpose());
    }
    case DecompositionTarget::kB: {
      // Algorithm 13: scalar factors with the two core endpoints, then
      // average replacement of misordered entries.
      const Matrix& su = ScalarU();
      const Matrix vt = ScalarV().Transpose();
      const Matrix lo = su * SigmaLower() * vt;
      const Matrix hi = su * SigmaUpper() * vt;
      return IntervalMatrix(lo, hi).AverageReplaced();
    }
    case DecompositionTarget::kC: {
      // Algorithm 14: fully scalar reconstruction.
      const Matrix mid = ScalarU() * SigmaLower() * ScalarV().Transpose();
      return IntervalMatrix::FromScalar(mid);
    }
  }
  IVMF_CHECK_MSG(false, "unknown decomposition target");
  return {};
}

// ---------------------------------------------------------------------------
// ISVD0 — average and decompose (Section 4.1).
// ---------------------------------------------------------------------------

IsvdResult Isvd0(const IntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  const size_t r = ClampRank(m, rank);
  PhaseTimings timings;

  Stopwatch sw;
  const Matrix m_avg = m.Mid();
  timings.preprocess = sw.Seconds();

  sw.Restart();
  const SvdResult svd = ComputeSvd(m_avg, r, options.svd);
  timings.decompose = sw.Seconds();

  IsvdResult result;
  result.target = DecompositionTarget::kC;  // ISVD0 is inherently scalar.
  result.u = IntervalMatrix::FromScalar(svd.u);
  result.v = IntervalMatrix::FromScalar(svd.v);
  result.sigma.resize(r);
  for (size_t j = 0; j < r; ++j)
    result.sigma[j] = Interval::Scalar(svd.sigma[j]);
  result.timings = timings;
  return result;
}

// ---------------------------------------------------------------------------
// ISVD1 — decompose and align (Section 4.2).
// ---------------------------------------------------------------------------

IsvdResult Isvd1(const IntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  const size_t r = ClampRank(m, rank);
  PhaseTimings timings;

  Stopwatch sw;
  SvdResult lo, hi;
  // Independent endpoint decompositions run on two threads.
  ParallelFor(0, 2, [&](size_t side) {
    if (side == 0) {
      lo = ComputeSvd(m.lower(), r, options.svd);
    } else {
      hi = ComputeSvd(m.upper(), r, options.svd);
    }
  });
  timings.decompose = sw.Seconds();

  sw.Restart();
  const IlsaResult ilsa = ComputeIlsa(lo.v, hi.v, options.ilsa);
  Matrix u_lo = lo.u;
  Matrix v_lo = lo.v;
  std::vector<double> s_lo = lo.sigma;
  AlignMinSide(ilsa, &u_lo, &v_lo, &s_lo);
  timings.align = sw.Seconds();

  return BuildResult(IntervalMatrix(std::move(u_lo), hi.u),
                     MakeIntervalDiag(s_lo, hi.sigma),
                     IntervalMatrix(std::move(v_lo), hi.v), options.target,
                     timings);
}

// ---------------------------------------------------------------------------
// Shared Gram-eigendecomposition for ISVD2–ISVD4 (Section 4.3.1).
// ---------------------------------------------------------------------------

GramEig ComputeGramEig(const IntervalMatrix& m, size_t rank,
                       const IsvdOptions& options) {
  const GramSide side = ResolveSide(m, options.gram_side);
  const IntervalMatrix& input = m;
  GramEig result;
  result.transposed = (side == GramSide::kMMt);
  const IntervalMatrix work = result.transposed ? input.Transpose() : input;
  const size_t r = ClampRank(work, rank);

  Stopwatch sw;
  // A† = M†ᵀ M† via interval matrix multiplication (Algorithm 1). The
  // endpoint matrices of A† are symmetric because the min/max of the four
  // endpoint products is invariant under transposition.
  result.gram = IntervalMatMul(work.Transpose(), work);
  result.preprocess_seconds = sw.Seconds();

  // Solver choice: Lanczos pays off when only a small leading subspace is
  // needed; Jacobi computes the full spectrum.
  bool use_lanczos = options.eig_solver == EigSolver::kLanczos;
  if (options.eig_solver == EigSolver::kAuto) {
    use_lanczos = 4 * r < result.gram.rows();
  }

  // The two endpoint eigendecompositions are independent; run them on two
  // threads (ParallelFor keeps the serial path when only one core exists).
  sw.Restart();
  ParallelFor(0, 2, [&](size_t side) {
    const Matrix& endpoint =
        side == 0 ? result.gram.lower() : result.gram.upper();
    LanczosOptions lanczos = options.lanczos;
    const Matrix& warm =
        side == 0 ? options.warm_basis_lo : options.warm_basis_hi;
    if (warm.cols() > 0) lanczos.start_basis = warm;
    EigResult& out = side == 0 ? result.lo : result.hi;
    out = use_lanczos ? ComputeLanczosEig(endpoint, r, lanczos)
                      : ComputeSymmetricEig(endpoint, r, options.eig);
  });
  result.iterations = result.lo.iterations + result.hi.iterations;
  IVMF_CHECK_MSG(!result.lo.truncated && !result.hi.truncated,
                 "Lanczos truncated a Gram endpoint spectrum "
                 "(restart exhausted; see LanczosOptions::restart_tolerance)");
  result.decompose_seconds = sw.Seconds();
  return result;
}

GramEig TruncateGramEig(const GramEig& full, size_t rank) {
  GramEig out;
  out.gram = full.gram;
  out.transposed = full.transposed;
  out.preprocess_seconds = full.preprocess_seconds;
  out.decompose_seconds = full.decompose_seconds;
  out.iterations = full.iterations;
  const size_t keep_lo = std::min(rank, full.lo.eigenvalues.size());
  const size_t keep_hi = std::min(rank, full.hi.eigenvalues.size());
  out.lo.eigenvalues.assign(full.lo.eigenvalues.begin(),
                            full.lo.eigenvalues.begin() + keep_lo);
  out.hi.eigenvalues.assign(full.hi.eigenvalues.begin(),
                            full.hi.eigenvalues.begin() + keep_hi);
  out.lo.eigenvectors = full.lo.eigenvectors.ColBlock(0, keep_lo);
  out.hi.eigenvectors = full.hi.eigenvectors.ColBlock(0, keep_hi);
  return out;
}

// ---------------------------------------------------------------------------
// ISVD2 — decompose, solve, align (Section 4.3).
// ---------------------------------------------------------------------------

IsvdResult Isvd2(const IntervalMatrix& m, size_t rank, const GramEig& gram,
                 const IsvdOptions& options) {
  (void)rank;  // rank is baked into `gram`
  const IntervalMatrix work = gram.transposed ? m.Transpose() : m;
  PhaseTimings timings;
  timings.preprocess = gram.preprocess_seconds;
  timings.decompose = gram.decompose_seconds;

  Matrix v_lo = gram.lo.eigenvectors;
  Matrix v_hi = gram.hi.eigenvectors;
  std::vector<double> s_lo = SqrtClamped(gram.lo.eigenvalues);
  std::vector<double> s_hi = SqrtClamped(gram.hi.eigenvalues);

  // Recover the left factors from the SVD identity (Section 4.3.2).
  Stopwatch sw;
  Matrix u_lo = RecoverLeftFactor(work.lower(), v_lo, s_lo);
  Matrix u_hi = RecoverLeftFactor(work.upper(), v_hi, s_hi);
  timings.solve = sw.Seconds();

  sw.Restart();
  const IlsaResult ilsa = ComputeIlsa(v_lo, v_hi, options.ilsa);
  AlignMinSide(ilsa, &u_lo, &v_lo, &s_lo);
  timings.align = sw.Seconds();

  IsvdResult result = BuildResult(IntervalMatrix(std::move(u_lo), std::move(u_hi)),
                                  MakeIntervalDiag(s_lo, s_hi),
                                  IntervalMatrix(std::move(v_lo), std::move(v_hi)),
                                  options.target, timings);
  result.iterations = gram.iterations;
  if (gram.transposed) SwapFactors(result);
  return result;
}

IsvdResult Isvd2(const IntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  return Isvd2(m, rank, ComputeGramEig(m, rank, options), options);
}

// ---------------------------------------------------------------------------
// ISVD3 — decompose, align, solve (Section 4.4).
// ---------------------------------------------------------------------------

namespace {

// The common ISVD3/ISVD4 front half: align the eigen-side factors and solve
// for the interval-valued left factor U† = M† (V†ᵀ)⁻¹ Σ†⁻¹.
struct SolvedLeft {
  IntervalMatrix u;             // interval left factor
  IntervalMatrix v;             // aligned eigen-side factor
  std::vector<Interval> sigma;  // aligned interval core diagonal
  Matrix sigma_inv;             // scalar optimal inverse of Σ† (Algorithm 4)
  PhaseTimings timings;
};

SolvedLeft SolveLeftFactor(const IntervalMatrix& work, const GramEig& gram,
                           const IsvdOptions& options) {
  SolvedLeft out;
  out.timings.preprocess = gram.preprocess_seconds;
  out.timings.decompose = gram.decompose_seconds;

  Matrix v_lo = gram.lo.eigenvectors;
  const Matrix& v_hi = gram.hi.eigenvectors;
  std::vector<double> s_lo = SqrtClamped(gram.lo.eigenvalues);
  const std::vector<double> s_hi = SqrtClamped(gram.hi.eigenvalues);

  Stopwatch sw;
  const IlsaResult ilsa = ComputeIlsa(v_lo, v_hi, options.ilsa);
  AlignMinSide(ilsa, /*u_lo=*/nullptr, &v_lo, &s_lo);
  out.timings.align = sw.Seconds();

  out.v = IntervalMatrix(std::move(v_lo), v_hi);
  out.sigma = MakeIntervalDiag(s_lo, s_hi);

  // Solve U† = M† ((V†)ᵀ)⁻¹ (Σ†)⁻¹ (Section 4.4.2). (V†ᵀ)⁻¹ is
  // approximated through the averaged factor (Section 4.4.2.2): plain
  // inverse when square and well-conditioned, else the Moore–Penrose
  // pseudo-inverse with the paper's 0.1 singular-value cutoff.
  sw.Restart();
  const Matrix v_avg = out.v.Mid();
  const Matrix vt_inv = RobustInverse(v_avg.Transpose(),
                                      options.cond_threshold);  // m x r
  out.sigma_inv = Matrix::Diagonal(InverseIntervalDiagonal(out.sigma));
  out.u = IntervalMatMul(work, vt_inv * out.sigma_inv);
  out.timings.solve = sw.Seconds();
  return out;
}

}  // namespace

IsvdResult Isvd3(const IntervalMatrix& m, size_t rank, const GramEig& gram,
                 const IsvdOptions& options) {
  (void)rank;  // rank is baked into `gram`
  const IntervalMatrix work = gram.transposed ? m.Transpose() : m;
  SolvedLeft solved = SolveLeftFactor(work, gram, options);
  IsvdResult result =
      BuildResult(std::move(solved.u), std::move(solved.sigma),
                  std::move(solved.v), options.target, solved.timings);
  result.iterations = gram.iterations;
  if (gram.transposed) SwapFactors(result);
  return result;
}

IsvdResult Isvd3(const IntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  return Isvd3(m, rank, ComputeGramEig(m, rank, options), options);
}

// ---------------------------------------------------------------------------
// ISVD4 — decompose, align, solve, recompute (Section 4.5).
// ---------------------------------------------------------------------------

IsvdResult Isvd4(const IntervalMatrix& m, size_t rank, const GramEig& gram,
                 const IsvdOptions& options) {
  (void)rank;
  const IntervalMatrix work = gram.transposed ? m.Transpose() : m;
  SolvedLeft solved = SolveLeftFactor(work, gram, options);

  // Recompute V† from the solved U† (Section 4.5.1):
  // V† = (Σ†⁻¹ (U†ᵀ)⁻¹ M†)ᵀ, with (U†ᵀ)⁻¹ approximated via the averaged
  // factor exactly like the V inversion above.
  Stopwatch sw;
  const Matrix u_avg = solved.u.Mid();                      // n x r
  const Matrix u_inv = RobustInverse(u_avg, options.cond_threshold);  // r x n
  const IntervalMatrix v_recomputed =
      IntervalMatMul(solved.sigma_inv * u_inv, work).Transpose();  // m x r
  solved.timings.recompute = sw.Seconds();

  IsvdResult result =
      BuildResult(std::move(solved.u), std::move(solved.sigma), v_recomputed,
                  options.target, solved.timings);
  result.iterations = gram.iterations;
  if (gram.transposed) SwapFactors(result);
  return result;
}

IsvdResult Isvd4(const IntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  return Isvd4(m, rank, ComputeGramEig(m, rank, options), options);
}

// ---------------------------------------------------------------------------

IsvdResult RunIsvd(int strategy, const IntervalMatrix& m, size_t rank,
                   const IsvdOptions& options) {
  switch (strategy) {
    case 0:
      return Isvd0(m, rank, options);
    case 1:
      return Isvd1(m, rank, options);
    case 2:
      return Isvd2(m, rank, options);
    case 3:
      return Isvd3(m, rank, options);
    case 4:
      return Isvd4(m, rank, options);
    default:
      IVMF_CHECK_MSG(false, "ISVD strategy must be 0..4");
      return {};
  }
}

std::string IsvdName(int strategy, DecompositionTarget target) {
  std::string name = "ISVD" + std::to_string(strategy);
  if (strategy == 0) return name;  // ISVD0 is target-c by construction
  switch (target) {
    case DecompositionTarget::kA:
      return name + "-a";
    case DecompositionTarget::kB:
      return name + "-b";
    case DecompositionTarget::kC:
      return name + "-c";
  }
  return name;
}

}  // namespace ivmf
