// Streaming interval SVD: incremental decomposition refreshes for rating
// matrices that grow as users rate items (the paper's Section 6.1.3
// workload, made online).
//
// Every batch-mode pipeline stage rebuilds the CSR matrix from triplets and
// re-runs the full decomposition per change. StreamingIsvd instead owns a
// DynamicSparseIntervalMatrix (delta log over a compacted CSR base — O(log)
// upserts, threshold-triggered compaction) and refreshes the decomposition
// incrementally for every strategy 0–4: each refresh snapshots the matrix
// with one linear merge and warm-starts the Krylov solvers from the
// previous step's Ritz vectors with a convergence-based early exit, so a
// small batch of arrivals costs a handful of O(nnz) operator applications
// instead of a full cold decomposition.
//
// The incremental path is a heuristic accelerator, never a semantic change:
// when the accumulated changes are too large for the previous subspace to
// be a useful guess — the delta log exceeds `warm_delta_bound` of the
// matrix, or the Frobenius mass of the changed cells exceeds
// `warm_drift_bound` relative to the leading singular value (a Weyl-type
// perturbation proxy) — the refresh silently falls back to a full cold
// recompute, identical to the batch pipeline. Warm results agree with
// from-scratch decomposition to the convergence tolerance (property-tested
// at 1e-8; see tests/streaming_isvd_test.cc).

#ifndef IVMF_CORE_STREAMING_ISVD_H_
#define IVMF_CORE_STREAMING_ISVD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/isvd.h"
#include "core/sparse_isvd.h"
#include "sparse/dynamic_sparse_interval_matrix.h"

namespace ivmf {

struct StreamingIsvdOptions {
  // Strategy-family options for each refresh. Defaults differ from batch
  // IsvdOptions where streaming demands it: the Lanczos eigensolver (warm
  // starts have no effect on Jacobi) and the auto Gram side.
  IsvdOptions isvd;
  // Delta-log compaction trigger (see DynamicSparseIntervalMatrix).
  double compact_threshold = 0.25;
  // Warm-refresh eligibility bounds; beyond either, the refresh recomputes
  // cold. Delta bound is changed-cells / nnz at the previous refresh; drift
  // bound is ||ΔM||_F / σ₁ of the previous result. The Frobenius mass is a
  // guaranteed over-estimate of the spectral perturbation (Weyl), and for
  // scattered cell updates a large one — the mass spreads across many
  // directions — so the default tolerates mass up to σ₁ itself and exists
  // to catch concentrated rewrites (one user's row replaced wholesale),
  // which genuinely rotate the subspace.
  double warm_delta_bound = 0.10;
  double warm_drift_bound = 1.0;
  // Krylov early-exit tolerance used by warm refreshes (Ritz residual
  // relative to the leading Ritz value). Cold refreshes build the full
  // Krylov cap, exactly like the batch pipeline.
  double convergence_tol = 1e-11;
  // Krylov cap for warm refreshes (cold refreshes keep the solver defaults,
  // 3.0 / 25). The warm start already concentrates the start vector on the
  // wanted subspace, so on resolvable spectra the early exit stops well
  // inside either cap, and on bulk-dominated spectra (recommender matrices
  // past the signal rank — see bench/fig10_streaming.cc) the trailing Ritz
  // values are start-dependent O(bulk-width) approximations at ANY
  // affordable cap, so the extra cold-cap steps buy no real accuracy —
  // the reduced cap is where the warm refresh's iteration savings are
  // guaranteed rather than spectrum-dependent.
  double warm_subspace_factor = 2.0;
  size_t warm_subspace_extra = 15;
  // Master switch: false forces every refresh cold (useful for A/B
  // measurement; the bench uses it as the recompute baseline).
  bool warm_start = true;
  // When > 0, every refresh decomposes through a block-row sharded view
  // (ShardedSparseIntervalMatrix::View over the frozen snapshot — zero-copy,
  // the partition and shard-parallel dispatch without duplicating the CSR
  // store) and sharded_snapshot() exposes that view for the serving layer.
  // The sharded route always resolves GramSide::kMtM; see sparse_isvd.h.
  size_t shard_rows = 0;

  StreamingIsvdOptions() {
    isvd.eig_solver = EigSolver::kLanczos;
    isvd.gram_side = GramSide::kAuto;
  }
};

// What one Refresh() did, for logging / benches.
struct StreamingRefreshStats {
  bool warm = false;       // warm incremental refresh vs full recompute
  size_t delta_cells = 0;  // upserts applied since the previous refresh
  size_t iterations = 0;   // Krylov steps spent (IsvdResult::iterations)
  double seconds = 0.0;    // wall clock of the refresh
  double snapshot_seconds = 0.0;   // compact + frozen-view share
  double decompose_seconds = 0.0;  // RunIsvd share
};

class StreamingIsvd {
 public:
  // Takes the historical matrix (may be empty but must carry the final
  // shape — streaming revises cells, it does not grow the universe) and
  // runs the initial cold decomposition, so result() is always valid.
  StreamingIsvd(int strategy, size_t rank, SparseIntervalMatrix base,
                const StreamingIsvdOptions& options = {});

  // Applies a batch of arriving / revised ratings to the delta log
  // (last-write-wins per cell) and compacts when past the threshold. Does
  // not refresh the decomposition — call Refresh() when the consumer needs
  // current factors, typically once per batch or on a period.
  void ApplyBatch(const std::vector<IntervalTriplet>& batch);

  // Re-decomposes the current matrix — warm-started and early-exiting when
  // the accumulated change is within bounds, cold otherwise — and returns
  // the new result. last_stats() describes what happened.
  const IsvdResult& Refresh();

  int strategy() const { return strategy_; }
  size_t rank() const { return rank_; }
  const DynamicSparseIntervalMatrix& matrix() const { return matrix_; }
  const IsvdResult& result() const { return result_; }
  const StreamingRefreshStats& last_stats() const { return stats_; }

  // Snapshot export hook for the serving layer: the immutable shared CSR
  // view that result() was computed from — the exact matrix object the last
  // Refresh() decomposed, so (matrix_snapshot(), result()) is always an
  // internally consistent pair regardless of ApplyBatch calls made since.
  // The view is safe to read from any thread; the accessor itself follows
  // the class's single-writer contract (Refresh replaces it).
  const std::shared_ptr<const SparseIntervalMatrix>& matrix_snapshot() const {
    return snapshot_;
  }

  // The sharded view the last Refresh() decomposed when options.shard_rows
  // is set (null otherwise). Shares the CSR arrays of matrix_snapshot(), so
  // the triple (matrix_snapshot(), sharded_snapshot(), result()) is always
  // consistent; same thread-safety contract as matrix_snapshot().
  const std::shared_ptr<const ShardedSparseIntervalMatrix>& sharded_snapshot()
      const {
    return sharded_snapshot_;
  }

  // Refreshes completed so far (>= 1: construction runs the first one).
  // The serving layer stamps this as the published epoch.
  uint64_t refresh_count() const { return refresh_count_; }

 private:
  bool WarmEligible() const;
  void CaptureWarmBases();

  int strategy_;
  size_t rank_;
  StreamingIsvdOptions options_;
  DynamicSparseIntervalMatrix matrix_;
  IsvdResult result_;
  std::shared_ptr<const SparseIntervalMatrix> snapshot_;
  std::shared_ptr<const ShardedSparseIntervalMatrix> sharded_snapshot_;
  uint64_t refresh_count_ = 0;
  StreamingRefreshStats stats_;
  // Previous refresh's Ritz bases for the lower / upper endpoint solves.
  Matrix warm_lo_;
  Matrix warm_hi_;
  // Change accounting since the last refresh.
  double drift_sq_ = 0.0;
  size_t cells_since_refresh_ = 0;
  size_t last_refresh_nnz_ = 0;
  bool have_result_ = false;
};

}  // namespace ivmf

#endif  // IVMF_CORE_STREAMING_ISVD_H_
