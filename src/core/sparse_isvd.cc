#include "core/sparse_isvd.h"

#include <utility>
#include <vector>

#include "base/parallel.h"
#include "base/stopwatch.h"
#include "core/isvd_internal.h"
#include "interval/interval_ops.h"
#include "linalg/lanczos.h"
#include "linalg/lanczos_svd.h"
#include "linalg/pinv.h"
#include "sparse/block_matrix.h"
#include "sparse/sparse_gram_operator.h"

namespace ivmf {
namespace {

using isvd_internal::AlignMinSide;
using isvd_internal::BuildResult;
using isvd_internal::MakeIntervalDiag;
using isvd_internal::ScaleColumnsByInverseSigma;
using isvd_internal::SqrtClamped;

using Endpoint = SparseIntervalMatrix::Endpoint;

GramSide ResolveSide(const SparseIntervalMatrix& m, GramSide side) {
  if (side != GramSide::kAuto) return side;
  return m.cols() <= m.rows() ? GramSide::kMtM : GramSide::kMMt;
}

// Per-endpoint Krylov options: the shared policy plus the endpoint's
// warm-start basis (when the streaming driver carried one).
LanczosOptions SideLanczos(const IsvdOptions& options, bool upper) {
  LanczosOptions lanczos = options.lanczos;
  const Matrix& warm = upper ? options.warm_basis_hi : options.warm_basis_lo;
  if (warm.cols() > 0) lanczos.start_basis = warm;
  return lanczos;
}

// Degenerate 0 x m / n x 0 shapes: the empty decomposition, factors shaped
// to match. The dense path never hits this (dense constructions always have
// cells); the sparse entry points guard it so CLI / streaming callers fed an
// empty matrix get a well-formed rank-0 result instead of an abort.
// Templated over the matrix type: the monolithic CSR and the sharded store
// share these helpers (both expose rows/cols/MultiplyDense/...).
template <typename SparseMat>
bool DegenerateShape(const SparseMat& m) {
  return m.rows() == 0 || m.cols() == 0;
}

template <typename SparseMat>
IsvdResult EmptyResult(const SparseMat& m, DecompositionTarget target) {
  IsvdResult result;
  result.target = target;
  result.u = IntervalMatrix(m.rows(), 0);
  result.v = IntervalMatrix(m.cols(), 0);
  return result;
}

// Sparse counterpart of the SVD identity U = M V Σ⁻¹.
template <typename SparseMat>
Matrix RecoverLeftFactor(const SparseMat& m, Endpoint e, const Matrix& v,
                         const std::vector<double>& sigma) {
  Matrix u = m.MultiplyDense(e, v);  // n x r
  ScaleColumnsByInverseSigma(u, sigma);
  return u;
}

void SwapFactors(IsvdResult& result) { std::swap(result.u, result.v); }

// Binds the working matrix (M† or M†ᵀ) without copying the CSR arrays in
// the common non-transposed case; `storage` only materializes on the kMMt
// route.
const SparseIntervalMatrix& BindWork(const SparseIntervalMatrix& m,
                                     bool transposed,
                                     SparseIntervalMatrix& storage) {
  if (!transposed) return m;
  storage = m.Transpose();
  return storage;
}

// The shared ISVD3/ISVD4 front half on the sparse path (mirrors the dense
// SolveLeftFactor in core/isvd.cc).
struct SolvedLeft {
  IntervalMatrix u;
  IntervalMatrix v;
  std::vector<Interval> sigma;
  Matrix sigma_inv;
  PhaseTimings timings;
};

template <typename SparseMat>
SolvedLeft SolveLeftFactor(const SparseMat& work, const GramEig& gram,
                           const IsvdOptions& options) {
  SolvedLeft out;
  out.timings.preprocess = gram.preprocess_seconds;
  out.timings.decompose = gram.decompose_seconds;

  Matrix v_lo = gram.lo.eigenvectors;
  const Matrix& v_hi = gram.hi.eigenvectors;
  std::vector<double> s_lo = SqrtClamped(gram.lo.eigenvalues);
  const std::vector<double> s_hi = SqrtClamped(gram.hi.eigenvalues);

  Stopwatch sw;
  const IlsaResult ilsa = ComputeIlsa(v_lo, v_hi, options.ilsa);
  AlignMinSide(ilsa, /*u_lo=*/nullptr, &v_lo, &s_lo);
  out.timings.align = sw.Seconds();

  out.v = IntervalMatrix(std::move(v_lo), v_hi);
  out.sigma = MakeIntervalDiag(s_lo, s_hi);

  // U† = M† ((V†)ᵀ)⁻¹ (Σ†)⁻¹ (Section 4.4.2): the inverses act on the small
  // averaged r-column factor; the only O(nnz) work is the final sparse
  // interval product.
  sw.Restart();
  const Matrix v_avg = out.v.Mid();
  const Matrix vt_inv =
      RobustInverse(v_avg.Transpose(), options.cond_threshold);  // m x r
  out.sigma_inv = Matrix::Diagonal(InverseIntervalDiagonal(out.sigma));
  out.u = work.IntervalMultiplyDense(vt_inv * out.sigma_inv);
  out.timings.solve = sw.Seconds();
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// ISVD0 — average and decompose (Section 4.1), matrix-free.
// ---------------------------------------------------------------------------

IsvdResult Isvd0(const SparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  if (DegenerateShape(m)) return EmptyResult(m, DecompositionTarget::kC);
  const size_t r = isvd_internal::ClampRank(m.rows(), m.cols(), rank);
  PhaseTimings timings;

  Stopwatch sw;
  const SparseIntervalMatrix mt = m.Transpose();
  timings.preprocess = sw.Seconds();

  sw.Restart();
  const SparseEndpointMap mid(m, mt, SparseEndpointMap::Part::kMid);
  // ISVD0's single midpoint solve reads the lo warm-basis slot.
  const SvdResult svd = ComputeLanczosSvd(mid, r, SideLanczos(options, false));
  timings.decompose = sw.Seconds();
  IVMF_CHECK_MSG(!svd.truncated,
                 "Lanczos SVD truncated the midpoint spectrum "
                 "(restart exhausted; see LanczosOptions::restart_tolerance)");

  IsvdResult result;
  result.iterations = svd.iterations;
  result.target = DecompositionTarget::kC;  // ISVD0 is inherently scalar.
  result.u = IntervalMatrix::FromScalar(svd.u);
  result.v = IntervalMatrix::FromScalar(svd.v);
  result.sigma.resize(svd.sigma.size());
  for (size_t j = 0; j < svd.sigma.size(); ++j)
    result.sigma[j] = Interval::Scalar(svd.sigma[j]);
  result.timings = timings;
  return result;
}

// ---------------------------------------------------------------------------
// ISVD1 — decompose and align (Section 4.2), matrix-free.
// ---------------------------------------------------------------------------

IsvdResult Isvd1(const SparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  if (DegenerateShape(m)) return EmptyResult(m, options.target);
  const size_t r = isvd_internal::ClampRank(m.rows(), m.cols(), rank);
  PhaseTimings timings;

  Stopwatch sw;
  const SparseIntervalMatrix mt = m.Transpose();
  timings.preprocess = sw.Seconds();

  // Independent endpoint decompositions run on two threads, sharing the
  // transposed pattern. SparseEndpointMap consumes the endpoint values
  // directly, so signed matrices need no special casing here.
  sw.Restart();
  SvdResult lo, hi;
  ParallelFor(0, 2, [&](size_t side) {
    const SparseEndpointMap map(m, mt,
                                side == 0 ? SparseEndpointMap::Part::kLower
                                          : SparseEndpointMap::Part::kUpper);
    (side == 0 ? lo : hi) =
        ComputeLanczosSvd(map, r, SideLanczos(options, side == 1));
  });
  timings.decompose = sw.Seconds();
  // Truncation would break the lo/hi pairing below (mismatched triplet
  // counts) with an opaque shape error; fail with the cause instead.
  IVMF_CHECK_MSG(!lo.truncated && !hi.truncated,
                 "Lanczos SVD truncated an endpoint spectrum "
                 "(restart exhausted; see LanczosOptions::restart_tolerance)");

  sw.Restart();
  const IlsaResult ilsa = ComputeIlsa(lo.v, hi.v, options.ilsa);
  Matrix u_lo = lo.u;
  Matrix v_lo = lo.v;
  std::vector<double> s_lo = lo.sigma;
  AlignMinSide(ilsa, &u_lo, &v_lo, &s_lo);
  timings.align = sw.Seconds();

  IsvdResult result = BuildResult(IntervalMatrix(std::move(u_lo), hi.u),
                                  MakeIntervalDiag(s_lo, hi.sigma),
                                  IntervalMatrix(std::move(v_lo), hi.v),
                                  options.target, timings);
  result.iterations = lo.iterations + hi.iterations;
  return result;
}

// ---------------------------------------------------------------------------
// Shared Gram eigendecomposition for ISVD2–ISVD4.
// ---------------------------------------------------------------------------

GramEig ComputeGramEig(const SparseIntervalMatrix& m, size_t rank,
                       const IsvdOptions& options) {
  GramEig result;
  if (DegenerateShape(m)) return result;  // rank-0 eigendecomposition
  result.transposed = (ResolveSide(m, options.gram_side) == GramSide::kMMt);
  SparseIntervalMatrix work_storage;
  const SparseIntervalMatrix& work =
      BindWork(m, result.transposed, work_storage);
  const size_t r = isvd_internal::ClampRank(work.rows(), work.cols(), rank);

  bool use_lanczos = options.eig_solver != EigSolver::kJacobi;
  if (options.eig_solver == EigSolver::kAuto) {
    use_lanczos = 4 * r < work.cols();
  }

  if (!m.IsNonNegative()) {
    // Signed route: the Algorithm-1 Gram endpoints are elementwise min/max
    // over four products and have no operator form, so they are accumulated
    // from the sparse rows (never densifying M†) and handed to the same
    // solver choice the dense path makes — the results are term-for-term
    // identical to IntervalMatMul(M†ᵀ, M†) + eig.
    Stopwatch sw;
    result.gram = SparseGramOperator::DenseGramEndpoints(work);
    result.preprocess_seconds = sw.Seconds();

    sw.Restart();
    ParallelFor(0, 2, [&](size_t side) {
      const Matrix& endpoint =
          side == 0 ? result.gram.lower() : result.gram.upper();
      EigResult& out = side == 0 ? result.lo : result.hi;
      out = use_lanczos
                ? ComputeLanczosEig(endpoint, r, SideLanczos(options, side == 1))
                : ComputeSymmetricEig(endpoint, r, options.eig);
    });
    result.iterations = result.lo.iterations + result.hi.iterations;
    IVMF_CHECK_MSG(!result.lo.truncated && !result.hi.truncated,
                   "Lanczos truncated a Gram endpoint spectrum "
                   "(restart exhausted; see LanczosOptions::restart_tolerance)");
    result.decompose_seconds = sw.Seconds();
    return result;
  }

  if (!use_lanczos) {
    // Exact route for narrow matrices: accumulate the dense endpoint Grams
    // from the sparse rows, then Jacobi. For entrywise non-negative input
    // these are exactly the Algorithm-1 interval Gram endpoints.
    Stopwatch sw;
    Matrix gram_lo = SparseGramOperator::DenseGram(work, Endpoint::kLower);
    Matrix gram_hi = SparseGramOperator::DenseGram(work, Endpoint::kUpper);
    result.gram = IntervalMatrix(std::move(gram_lo), std::move(gram_hi));
    result.preprocess_seconds = sw.Seconds();

    sw.Restart();
    ParallelFor(0, 2, [&](size_t side) {
      const Matrix& endpoint =
          side == 0 ? result.gram.lower() : result.gram.upper();
      EigResult& out = side == 0 ? result.lo : result.hi;
      out = ComputeSymmetricEig(endpoint, r, options.eig);
    });
    result.decompose_seconds = sw.Seconds();
    return result;
  }

  // Matrix-free route: the Gram matrix is never formed. Building the shared
  // transpose once is the whole preprocess phase.
  Stopwatch sw;
  const SparseIntervalMatrix work_t = work.Transpose();
  result.preprocess_seconds = sw.Seconds();

  sw.Restart();
  ParallelFor(0, 2, [&](size_t side) {
    const Endpoint e = side == 0 ? Endpoint::kLower : Endpoint::kUpper;
    const SparseGramOperator op(work, work_t, e);
    EigResult& out = side == 0 ? result.lo : result.hi;
    out = ComputeLanczosEig(op, r, SideLanczos(options, side == 1));
  });
  result.iterations = result.lo.iterations + result.hi.iterations;
  IVMF_CHECK_MSG(!result.lo.truncated && !result.hi.truncated,
                 "Lanczos truncated a Gram endpoint spectrum "
                 "(restart exhausted; see LanczosOptions::restart_tolerance)");
  result.decompose_seconds = sw.Seconds();
  return result;
}

IsvdResult Isvd2(const SparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options) {
  if (DegenerateShape(m)) return EmptyResult(m, options.target);
  (void)rank;  // rank is baked into `gram`
  SparseIntervalMatrix work_storage;
  const SparseIntervalMatrix& work = BindWork(m, gram.transposed, work_storage);
  PhaseTimings timings;
  timings.preprocess = gram.preprocess_seconds;
  timings.decompose = gram.decompose_seconds;

  Matrix v_lo = gram.lo.eigenvectors;
  Matrix v_hi = gram.hi.eigenvectors;
  std::vector<double> s_lo = SqrtClamped(gram.lo.eigenvalues);
  std::vector<double> s_hi = SqrtClamped(gram.hi.eigenvalues);

  Stopwatch sw;
  Matrix u_lo = RecoverLeftFactor(work, Endpoint::kLower, v_lo, s_lo);
  Matrix u_hi = RecoverLeftFactor(work, Endpoint::kUpper, v_hi, s_hi);
  timings.solve = sw.Seconds();

  sw.Restart();
  const IlsaResult ilsa = ComputeIlsa(v_lo, v_hi, options.ilsa);
  AlignMinSide(ilsa, &u_lo, &v_lo, &s_lo);
  timings.align = sw.Seconds();

  IsvdResult result =
      BuildResult(IntervalMatrix(std::move(u_lo), std::move(u_hi)),
                  MakeIntervalDiag(s_lo, s_hi),
                  IntervalMatrix(std::move(v_lo), std::move(v_hi)),
                  options.target, timings);
  result.iterations = gram.iterations;
  if (gram.transposed) SwapFactors(result);
  return result;
}

IsvdResult Isvd3(const SparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options) {
  if (DegenerateShape(m)) return EmptyResult(m, options.target);
  (void)rank;
  SparseIntervalMatrix work_storage;
  const SparseIntervalMatrix& work = BindWork(m, gram.transposed, work_storage);
  SolvedLeft solved = SolveLeftFactor(work, gram, options);
  IsvdResult result =
      BuildResult(std::move(solved.u), std::move(solved.sigma),
                  std::move(solved.v), options.target, solved.timings);
  result.iterations = gram.iterations;
  if (gram.transposed) SwapFactors(result);
  return result;
}

IsvdResult Isvd4(const SparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options) {
  if (DegenerateShape(m)) return EmptyResult(m, options.target);
  (void)rank;
  SparseIntervalMatrix work_storage;
  const SparseIntervalMatrix& work = BindWork(m, gram.transposed, work_storage);
  SolvedLeft solved = SolveLeftFactor(work, gram, options);

  // Recompute V† from the solved U† (Section 4.5.1). The scalar prefix
  // S = Σ†⁻¹ (U†ᵀ)⁻¹ is r x n, so V† = (S M†)ᵀ is evaluated as
  // M†ᵀ Sᵀ — one sparse interval product on the transposed matrix, matching
  // the dense mixed-product semantics. On the kMMt route workᵀ is just `m`
  // again, so no transpose needs building at all.
  Stopwatch sw;
  const Matrix u_avg = solved.u.Mid();  // n x r
  const Matrix u_inv = RobustInverse(u_avg, options.cond_threshold);  // r x n
  const Matrix s_t = (solved.sigma_inv * u_inv).Transpose();          // n x r
  SparseIntervalMatrix work_t_storage;
  const SparseIntervalMatrix& work_t =
      BindWork(m, !gram.transposed, work_t_storage);
  const IntervalMatrix v_recomputed = work_t.IntervalMultiplyDense(s_t);
  solved.timings.recompute = sw.Seconds();

  IsvdResult result =
      BuildResult(std::move(solved.u), std::move(solved.sigma), v_recomputed,
                  options.target, solved.timings);
  result.iterations = gram.iterations;
  if (gram.transposed) SwapFactors(result);
  return result;
}

IsvdResult Isvd2(const SparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  return Isvd2(m, rank, ComputeGramEig(m, rank, options), options);
}

IsvdResult Isvd3(const SparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  return Isvd3(m, rank, ComputeGramEig(m, rank, options), options);
}

IsvdResult Isvd4(const SparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  return Isvd4(m, rank, ComputeGramEig(m, rank, options), options);
}

IsvdResult RunIsvd(int strategy, const SparseIntervalMatrix& m, size_t rank,
                   const IsvdOptions& options) {
  switch (strategy) {
    case 0:
      return Isvd0(m, rank, options);
    case 1:
      return Isvd1(m, rank, options);
    case 2:
      return Isvd2(m, rank, options);
    case 3:
      return Isvd3(m, rank, options);
    case 4:
      return Isvd4(m, rank, options);
    default:
      IVMF_CHECK_MSG(false, "ISVD strategy must be 0..4");
      return {};
  }
}

// ---------------------------------------------------------------------------
// Sharded (block-row) overloads — the out-of-core route.
//
// These mirror the monolithic functions above through the unchanged Lanczos
// drivers; all O(nnz) work runs through the shard-parallel kernels, which
// stream mmap'd segments when the store is disk-backed. One structural
// difference: the sharded route always eigendecomposes MᵀM (ShardedGramOp-
// erator is M_eᵀ(M_e x) by construction) and never materializes a transposed
// store — the transpose actions run as shard scatter reductions instead —
// so GramSide::kMMt / kAuto collapse to kMtM here. Wide matrices that would
// have preferred MMᵀ pay a cols² scratch; an out-of-core store cannot
// afford a second copy of itself.
// ---------------------------------------------------------------------------

IsvdResult Isvd0(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  if (DegenerateShape(m)) return EmptyResult(m, DecompositionTarget::kC);
  const size_t r = isvd_internal::ClampRank(m.rows(), m.cols(), rank);
  PhaseTimings timings;  // no transpose to build: preprocess stays zero

  Stopwatch sw;
  const ShardedEndpointMap mid(m, ShardedEndpointMap::Part::kMid);
  const SvdResult svd = ComputeLanczosSvd(mid, r, SideLanczos(options, false));
  timings.decompose = sw.Seconds();
  IVMF_CHECK_MSG(!svd.truncated,
                 "Lanczos SVD truncated the midpoint spectrum "
                 "(restart exhausted; see LanczosOptions::restart_tolerance)");

  IsvdResult result;
  result.iterations = svd.iterations;
  result.target = DecompositionTarget::kC;  // ISVD0 is inherently scalar.
  result.u = IntervalMatrix::FromScalar(svd.u);
  result.v = IntervalMatrix::FromScalar(svd.v);
  result.sigma.resize(svd.sigma.size());
  for (size_t j = 0; j < svd.sigma.size(); ++j)
    result.sigma[j] = Interval::Scalar(svd.sigma[j]);
  result.timings = timings;
  return result;
}

IsvdResult Isvd1(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  if (DegenerateShape(m)) return EmptyResult(m, options.target);
  const size_t r = isvd_internal::ClampRank(m.rows(), m.cols(), rank);
  PhaseTimings timings;

  Stopwatch sw;
  SvdResult lo, hi;
  ParallelFor(0, 2, [&](size_t side) {
    const ShardedEndpointMap map(m, side == 0
                                        ? ShardedEndpointMap::Part::kLower
                                        : ShardedEndpointMap::Part::kUpper);
    (side == 0 ? lo : hi) =
        ComputeLanczosSvd(map, r, SideLanczos(options, side == 1));
  });
  timings.decompose = sw.Seconds();
  IVMF_CHECK_MSG(!lo.truncated && !hi.truncated,
                 "Lanczos SVD truncated an endpoint spectrum "
                 "(restart exhausted; see LanczosOptions::restart_tolerance)");

  sw.Restart();
  const IlsaResult ilsa = ComputeIlsa(lo.v, hi.v, options.ilsa);
  Matrix u_lo = lo.u;
  Matrix v_lo = lo.v;
  std::vector<double> s_lo = lo.sigma;
  AlignMinSide(ilsa, &u_lo, &v_lo, &s_lo);
  timings.align = sw.Seconds();

  IsvdResult result = BuildResult(IntervalMatrix(std::move(u_lo), hi.u),
                                  MakeIntervalDiag(s_lo, hi.sigma),
                                  IntervalMatrix(std::move(v_lo), hi.v),
                                  options.target, timings);
  result.iterations = lo.iterations + hi.iterations;
  return result;
}

GramEig ComputeGramEig(const ShardedSparseIntervalMatrix& m, size_t rank,
                       const IsvdOptions& options) {
  GramEig result;
  if (DegenerateShape(m)) return result;
  result.transposed = false;  // always MᵀM on the sharded route (see above)
  const size_t r = isvd_internal::ClampRank(m.rows(), m.cols(), rank);

  bool use_lanczos = options.eig_solver != EigSolver::kJacobi;
  if (options.eig_solver == EigSolver::kAuto) {
    use_lanczos = 4 * r < m.cols();
  }

  if (!m.IsNonNegative()) {
    // Signed route: shard-sequential accumulation in the same addition
    // order as the monolithic DenseGramEndpoints — bit-identical Grams.
    Stopwatch sw;
    result.gram = ShardedSparseIntervalMatrix::DenseGramEndpoints(m);
    result.preprocess_seconds = sw.Seconds();

    sw.Restart();
    ParallelFor(0, 2, [&](size_t side) {
      const Matrix& endpoint =
          side == 0 ? result.gram.lower() : result.gram.upper();
      EigResult& out = side == 0 ? result.lo : result.hi;
      out = use_lanczos
                ? ComputeLanczosEig(endpoint, r,
                                    SideLanczos(options, side == 1))
                : ComputeSymmetricEig(endpoint, r, options.eig);
    });
    result.iterations = result.lo.iterations + result.hi.iterations;
    IVMF_CHECK_MSG(!result.lo.truncated && !result.hi.truncated,
                   "Lanczos truncated a Gram endpoint spectrum "
                   "(restart exhausted; see LanczosOptions::restart_tolerance)");
    result.decompose_seconds = sw.Seconds();
    return result;
  }

  if (!use_lanczos) {
    Stopwatch sw;
    Matrix gram_lo =
        ShardedSparseIntervalMatrix::DenseGram(m, Endpoint::kLower);
    Matrix gram_hi =
        ShardedSparseIntervalMatrix::DenseGram(m, Endpoint::kUpper);
    result.gram = IntervalMatrix(std::move(gram_lo), std::move(gram_hi));
    result.preprocess_seconds = sw.Seconds();

    sw.Restart();
    ParallelFor(0, 2, [&](size_t side) {
      const Matrix& endpoint =
          side == 0 ? result.gram.lower() : result.gram.upper();
      EigResult& out = side == 0 ? result.lo : result.hi;
      out = ComputeSymmetricEig(endpoint, r, options.eig);
    });
    result.decompose_seconds = sw.Seconds();
    return result;
  }

  // Matrix-free route: no transpose, no Gram — each Lanczos step is one
  // fused shard-parallel pass over the store. There is no preprocess phase
  // to charge; it is all decompose time.
  Stopwatch sw;
  ParallelFor(0, 2, [&](size_t side) {
    const Endpoint e = side == 0 ? Endpoint::kLower : Endpoint::kUpper;
    const ShardedGramOperator op(m, e);
    EigResult& out = side == 0 ? result.lo : result.hi;
    out = ComputeLanczosEig(op, r, SideLanczos(options, side == 1));
  });
  result.iterations = result.lo.iterations + result.hi.iterations;
  IVMF_CHECK_MSG(!result.lo.truncated && !result.hi.truncated,
                 "Lanczos truncated a Gram endpoint spectrum "
                 "(restart exhausted; see LanczosOptions::restart_tolerance)");
  result.decompose_seconds = sw.Seconds();
  return result;
}

IsvdResult Isvd2(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options) {
  if (DegenerateShape(m)) return EmptyResult(m, options.target);
  (void)rank;  // rank is baked into `gram`
  PhaseTimings timings;
  timings.preprocess = gram.preprocess_seconds;
  timings.decompose = gram.decompose_seconds;

  Matrix v_lo = gram.lo.eigenvectors;
  Matrix v_hi = gram.hi.eigenvectors;
  std::vector<double> s_lo = SqrtClamped(gram.lo.eigenvalues);
  std::vector<double> s_hi = SqrtClamped(gram.hi.eigenvalues);

  Stopwatch sw;
  Matrix u_lo = RecoverLeftFactor(m, Endpoint::kLower, v_lo, s_lo);
  Matrix u_hi = RecoverLeftFactor(m, Endpoint::kUpper, v_hi, s_hi);
  timings.solve = sw.Seconds();

  sw.Restart();
  const IlsaResult ilsa = ComputeIlsa(v_lo, v_hi, options.ilsa);
  AlignMinSide(ilsa, &u_lo, &v_lo, &s_lo);
  timings.align = sw.Seconds();

  IsvdResult result =
      BuildResult(IntervalMatrix(std::move(u_lo), std::move(u_hi)),
                  MakeIntervalDiag(s_lo, s_hi),
                  IntervalMatrix(std::move(v_lo), std::move(v_hi)),
                  options.target, timings);
  result.iterations = gram.iterations;
  return result;
}

IsvdResult Isvd3(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options) {
  if (DegenerateShape(m)) return EmptyResult(m, options.target);
  (void)rank;
  SolvedLeft solved = SolveLeftFactor(m, gram, options);
  IsvdResult result =
      BuildResult(std::move(solved.u), std::move(solved.sigma),
                  std::move(solved.v), options.target, solved.timings);
  result.iterations = gram.iterations;
  return result;
}

IsvdResult Isvd4(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const GramEig& gram, const IsvdOptions& options) {
  if (DegenerateShape(m)) return EmptyResult(m, options.target);
  (void)rank;
  SolvedLeft solved = SolveLeftFactor(m, gram, options);

  // Recompute V† = M†ᵀ Sᵀ (Section 4.5.1). The monolithic path builds the
  // transposed CSR and runs a forward interval product; a sharded store has
  // no transpose to build, so the transposed product runs directly as a
  // shard scatter reduction.
  Stopwatch sw;
  const Matrix u_avg = solved.u.Mid();  // n x r
  const Matrix u_inv = RobustInverse(u_avg, options.cond_threshold);  // r x n
  const Matrix s_t = (solved.sigma_inv * u_inv).Transpose();          // n x r
  const IntervalMatrix v_recomputed = m.IntervalMultiplyDenseTranspose(s_t);
  solved.timings.recompute = sw.Seconds();

  IsvdResult result =
      BuildResult(std::move(solved.u), std::move(solved.sigma), v_recomputed,
                  options.target, solved.timings);
  result.iterations = gram.iterations;
  return result;
}

IsvdResult Isvd2(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  return Isvd2(m, rank, ComputeGramEig(m, rank, options), options);
}

IsvdResult Isvd3(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  return Isvd3(m, rank, ComputeGramEig(m, rank, options), options);
}

IsvdResult Isvd4(const ShardedSparseIntervalMatrix& m, size_t rank,
                 const IsvdOptions& options) {
  return Isvd4(m, rank, ComputeGramEig(m, rank, options), options);
}

IsvdResult RunIsvd(int strategy, const ShardedSparseIntervalMatrix& m,
                   size_t rank, const IsvdOptions& options) {
  switch (strategy) {
    case 0:
      return Isvd0(m, rank, options);
    case 1:
      return Isvd1(m, rank, options);
    case 2:
      return Isvd2(m, rank, options);
    case 3:
      return Isvd3(m, rank, options);
    case 4:
      return Isvd4(m, rank, options);
    default:
      IVMF_CHECK_MSG(false, "ISVD strategy must be 0..4");
      return {};
  }
}

}  // namespace ivmf
