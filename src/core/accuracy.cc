#include "core/accuracy.h"

#include <algorithm>
#include <limits>

namespace ivmf {

double HarmonicMean(double a, double b) {
  const double sum = a + b;
  if (sum <= 0.0) return 0.0;
  return 2.0 * a * b / sum;
}

double RelativeFrobenius(const Matrix& a, const Matrix& b) {
  IVMF_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  const Matrix diff = a - b;
  const double denom = a.FrobeniusNorm();
  const double num = diff.FrobeniusNorm();
  if (denom == 0.0) {
    return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return num / denom;
}

AccuracyReport DecompositionAccuracy(const IntervalMatrix& original,
                                     const IntervalMatrix& reconstructed) {
  AccuracyReport report;
  report.delta_min = RelativeFrobenius(original.lower(), reconstructed.lower());
  report.delta_max = RelativeFrobenius(original.upper(), reconstructed.upper());
  report.theta_min = std::max(0.0, 1.0 - report.delta_min);
  report.theta_max = std::max(0.0, 1.0 - report.delta_max);
  report.harmonic_mean = HarmonicMean(report.theta_min, report.theta_max);
  return report;
}

}  // namespace ivmf
