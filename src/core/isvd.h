// Interval singular value decomposition (ISVD) — Sections 3 and 4 of
// "Matrix Factorization with Interval-Valued Data".
//
// Five decomposition strategies are provided (Figure 4 of the paper):
//   ISVD0  average & decompose               (naive baseline, Section 4.1)
//   ISVD1  decompose & align                 (Section 4.2)
//   ISVD2  decompose, solve, align           (Section 4.3)
//   ISVD3  decompose, align, solve           (Section 4.4)
//   ISVD4  decompose, align, solve, recompute (Section 4.5)
// each under three decomposition targets (Section 3.4):
//   target a  interval-valued U†, Σ†, V†
//   target b  scalar U, V with interval-valued core Σ†
//   target c  scalar U, Σ, V.

#ifndef IVMF_CORE_ISVD_H_
#define IVMF_CORE_ISVD_H_

#include <cstddef>
#include <string>
#include <vector>

#include "align/ilsa.h"
#include "interval/interval.h"
#include "interval/interval_matrix.h"
#include "linalg/eig.h"
#include "linalg/lanczos.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"

namespace ivmf {

// Which matrices stay interval-valued in the output (Section 3.4).
enum class DecompositionTarget {
  kA,  // interval U†, Σ†, V†
  kB,  // scalar U, V; interval Σ†
  kC,  // scalar U, Σ, V
};

// Which Gram matrix ISVD2–ISVD4 eigendecompose. The paper's pseudocode
// always forms A† = M†ᵀ M† (m x m); kMMt works on the transpose instead
// (equivalent mathematics, alignment happens on the U side) and kAuto picks
// the smaller side for speed.
enum class GramSide { kMtM, kMMt, kAuto };

// Which symmetric eigensolver backs ISVD2–ISVD4. Jacobi computes the full
// spectrum (exact, O(n³) per sweep); Lanczos computes only the requested
// top-r pairs and is much faster at low rank. kAuto switches to Lanczos
// when rank is small relative to the Gram dimension.
enum class EigSolver { kJacobi, kLanczos, kAuto };

struct IsvdOptions {
  DecompositionTarget target = DecompositionTarget::kB;
  IlsaOptions ilsa;
  GramSide gram_side = GramSide::kMtM;
  EigSolver eig_solver = EigSolver::kJacobi;
  // Condition-number threshold above which V_avg (U_avg) inversion falls
  // back to the Moore–Penrose pseudo-inverse (Section 4.4.2.2).
  double cond_threshold = 1e8;
  SvdOptions svd;
  EigOptions eig;
  // Krylov policy for the Lanczos solvers (the sparse matrix-free path and
  // the dense eig_solver = kLanczos route): subspace sizing, seed,
  // restart/convergence tolerances. `lanczos.start_basis` is overridden per
  // endpoint by the warm bases below when they are non-empty.
  LanczosOptions lanczos;
  // Per-endpoint warm-start bases for streaming refreshes: the previous
  // step's Ritz vectors of the lower / upper endpoint solve (Gram
  // eigenvectors for ISVD2–4, right singular vectors for ISVD1; ISVD0's
  // single midpoint solve reads the lo slot). Empty = cold start. Carried
  // by core/streaming_isvd.h; batch callers leave them empty.
  Matrix warm_basis_lo;
  Matrix warm_basis_hi;
};

// Wall-clock seconds spent in each pipeline phase (Figure 6b).
struct PhaseTimings {
  double preprocess = 0.0;   // Gram products / midpoint averaging
  double decompose = 0.0;    // SVD / eigendecomposition calls
  double align = 0.0;        // ILSA + permutation / sign fixes
  double solve = 0.0;        // recovery of the non-eigen factor
  double recompute = 0.0;    // ISVD4's V† recomputation
  double renormalize = 0.0;  // target construction & average replacement

  double Total() const {
    return preprocess + decompose + align + solve + recompute + renormalize;
  }
  PhaseTimings& operator+=(const PhaseTimings& other);
};

// The result of an interval-valued decomposition M† ≃ U† Σ† V†ᵀ.
//
// Representation is uniform across targets: scalar factors are stored as
// degenerate interval matrices (lower == upper). For target b, `u`/`v` are
// degenerate and `sigma` is interval-valued; for target c everything is
// degenerate.
struct IsvdResult {
  DecompositionTarget target = DecompositionTarget::kB;
  IntervalMatrix u;             // n x r
  std::vector<Interval> sigma;  // r diagonal core entries
  IntervalMatrix v;             // m x r
  PhaseTimings timings;
  // Krylov steps summed over the iterative solver calls that produced this
  // result (0 on the direct Jacobi routes). Exposes warm-start savings to
  // the streaming driver and benches.
  size_t iterations = 0;

  size_t rank() const { return sigma.size(); }

  // Scalar views (valid for targets b / c where factors are degenerate; for
  // target a these return the lower endpoint matrices).
  const Matrix& ScalarU() const { return u.lower(); }
  const Matrix& ScalarV() const { return v.lower(); }

  // diag(sigma) endpoints as r x r scalar matrices.
  Matrix SigmaLower() const;
  Matrix SigmaUpper() const;

  // Rebuilds M̃† = U† Σ† V†ᵀ per the target's reconstruction rule
  // (supplementary Algorithms 12–14).
  IntervalMatrix Reconstruct() const;
};

// -- Decomposition strategies ----------------------------------------------

// ISVD0 (Section 4.1): decompose the midpoint matrix. The result is always
// scalar (decomposition target c).
IsvdResult Isvd0(const IntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});

// ISVD1 (Section 4.2): SVD of M_* and M^* independently, then ILSA.
IsvdResult Isvd1(const IntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});

// Shared precomputation for ISVD2–ISVD4: the interval Gram matrix
// A† = M†ᵀ M† (Algorithm 1) and the eigendecompositions of its endpoint
// matrices. Computing it once lets callers evaluate several strategies on
// the same input without repeating the dominant O(m^3) work.
struct GramEig {
  IntervalMatrix gram;       // m x m interval Gram matrix (possibly of M†ᵀ)
  EigResult lo;              // eig of gram.lower()
  EigResult hi;              // eig of gram.upper()
  bool transposed = false;   // true when computed on M†ᵀ (kMMt route)
  double preprocess_seconds = 0.0;
  double decompose_seconds = 0.0;
  size_t iterations = 0;     // Krylov steps summed over the endpoint solves
};

GramEig ComputeGramEig(const IntervalMatrix& m, size_t rank,
                       const IsvdOptions& options = {});

// Slices a GramEig down to a smaller rank (keeps the top-r eigenpairs), so
// rank sweeps pay for the eigendecomposition once:
//   GramEig full = ComputeGramEig(m, 0, options);
//   for (size_t r : ranks) result = Isvd4(m, r, TruncateGramEig(full, r), ...);
GramEig TruncateGramEig(const GramEig& full, size_t rank);

// ISVD2 (Section 4.3): eigendecompose A_*, A^*, solve for U_*, U^*, align.
IsvdResult Isvd2(const IntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});
IsvdResult Isvd2(const IntervalMatrix& m, size_t rank, const GramEig& gram,
                 const IsvdOptions& options);

// ISVD3 (Section 4.4): eigendecompose, align V†/Σ†, then solve for U† via
// interval-valued inversion.
IsvdResult Isvd3(const IntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});
IsvdResult Isvd3(const IntervalMatrix& m, size_t rank, const GramEig& gram,
                 const IsvdOptions& options);

// ISVD4 (Section 4.5): ISVD3 plus recomputation of V† from the solved U†.
IsvdResult Isvd4(const IntervalMatrix& m, size_t rank,
                 const IsvdOptions& options = {});
IsvdResult Isvd4(const IntervalMatrix& m, size_t rank, const GramEig& gram,
                 const IsvdOptions& options);

// Dispatch by strategy index 0..4 (handy for benchmark sweeps).
IsvdResult RunIsvd(int strategy, const IntervalMatrix& m, size_t rank,
                   const IsvdOptions& options = {});

// "ISVD1-b"-style label for reports.
std::string IsvdName(int strategy, DecompositionTarget target);

}  // namespace ivmf

#endif  // IVMF_CORE_ISVD_H_
