// Decomposition accuracy (Definition 5 of the paper): relative Frobenius
// reconstruction errors of the interval endpoints, converted to accuracies
// and combined with the harmonic mean (the "Θ_HM" / "H-mean" reported in
// every accuracy table of the evaluation).

#ifndef IVMF_CORE_ACCURACY_H_
#define IVMF_CORE_ACCURACY_H_

#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf {

struct AccuracyReport {
  double delta_min = 0.0;  // ||M_* - M̃_*||_F / ||M_*||_F
  double delta_max = 0.0;  // ||M^* - M̃^*||_F / ||M^*||_F
  double theta_min = 0.0;  // max(0, 1 - delta_min)
  double theta_max = 0.0;  // max(0, 1 - delta_max)
  double harmonic_mean = 0.0;
};

// Harmonic mean 2ab / (a + b); zero when a + b == 0.
double HarmonicMean(double a, double b);

// Relative Frobenius distance ||a - b||_F / ||a||_F (0/0 counts as 0).
double RelativeFrobenius(const Matrix& a, const Matrix& b);

// Definition 5 applied to an original interval matrix and a reconstruction
// (which may be degenerate for scalar decompositions).
AccuracyReport DecompositionAccuracy(const IntervalMatrix& original,
                                     const IntervalMatrix& reconstructed);

}  // namespace ivmf

#endif  // IVMF_CORE_ACCURACY_H_
