// The LP-based interval SVD competitor ("LPa/LPb/LPc" in Figures 6, 7, 9).
//
// This assembles a full interval decomposition out of the
// linear-programming interval eigendecomposition of [33]/[35]
// (src/lp/interval_eig_lp.h): the interval eigenpairs of A† = M†ᵀM†
// provide V† and Σ†, and U† is recovered exactly as in ISVD3. No latent
// semantic alignment is involved — the bounds come from a single midpoint
// decomposition, which is the essential difference from the ISVD family.

#ifndef IVMF_CORE_LP_ISVD_H_
#define IVMF_CORE_LP_ISVD_H_

#include "core/isvd.h"
#include "lp/interval_eig_lp.h"

namespace ivmf {

// Runs the LP competitor at the given rank and decomposition target.
// The per-component LP solves make this O(m) LPs of m variables each —
// dramatically slower than any ISVD strategy, as the paper reports.
IsvdResult LpIsvd(const IntervalMatrix& m, size_t rank,
                  const IsvdOptions& options = {},
                  const IntervalEigLpOptions& lp_options = {});

}  // namespace ivmf

#endif  // IVMF_CORE_LP_ISVD_H_
