#include "core/streaming_isvd.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "base/check.h"
#include "base/stopwatch.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ivmf {

namespace {

struct RefreshInstruments {
  obs::Counter& warm;
  obs::Counter& cold;
  obs::Gauge& delta_fraction;
  obs::Gauge& drift_ratio;
  obs::Histogram& warm_seconds;
  obs::Histogram& cold_seconds;
  obs::Histogram& snapshot_seconds;
  obs::Histogram& decompose_seconds;

  static RefreshInstruments& Get() {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    static RefreshInstruments instruments{
        registry.GetCounter("streaming.refresh.count", {{"mode", "warm"}}),
        registry.GetCounter("streaming.refresh.count", {{"mode", "cold"}}),
        registry.GetGauge("streaming.refresh.delta_fraction"),
        registry.GetGauge("streaming.refresh.drift_ratio"),
        registry.GetHistogram("streaming.refresh.seconds", {{"mode", "warm"}}),
        registry.GetHistogram("streaming.refresh.seconds", {{"mode", "cold"}}),
        registry.GetHistogram("streaming.refresh.snapshot.seconds"),
        registry.GetHistogram("streaming.refresh.decompose.seconds")};
    return instruments;
  }
};

}  // namespace

StreamingIsvd::StreamingIsvd(int strategy, size_t rank,
                             SparseIntervalMatrix base,
                             const StreamingIsvdOptions& options)
    : strategy_(strategy),
      rank_(rank),
      options_(options),
      matrix_(std::move(base)) {
  IVMF_CHECK_MSG(strategy >= 0 && strategy <= 4,
                 "streaming ISVD strategy must be 0..4");
  Refresh();  // initial cold decomposition
}

void StreamingIsvd::ApplyBatch(const std::vector<IntervalTriplet>& batch) {
  for (const IntervalTriplet& t : batch) {
    const Interval previous = matrix_.Upsert(t.row, t.col, t.value);
    const double d_lo = t.value.lo - previous.lo;
    const double d_hi = t.value.hi - previous.hi;
    // Frobenius mass of the change, averaged over the two endpoint
    // matrices — the perturbation-size proxy WarmEligible compares against
    // the spectrum (Weyl: |σ_i(M + ΔM) - σ_i(M)| <= ||ΔM||₂ <= ||ΔM||_F).
    drift_sq_ += 0.5 * (d_lo * d_lo + d_hi * d_hi);
    ++cells_since_refresh_;
  }
  matrix_.MaybeCompact(options_.compact_threshold);
}

bool StreamingIsvd::WarmEligible() const {
  if (!options_.warm_start || !have_result_) return false;
  if (warm_lo_.cols() == 0) return false;  // rank-0 previous result
  const double fraction =
      static_cast<double>(cells_since_refresh_) /
      static_cast<double>(std::max<size_t>(1, last_refresh_nnz_));
  if (fraction > options_.warm_delta_bound) return false;
  // Previous leading singular value anchors the drift scale; a previously
  // zero spectrum has no subspace worth reusing.
  const double sigma_1 = result_.sigma.empty() ? 0.0 : result_.sigma[0].hi;
  if (!(sigma_1 > 0.0)) return cells_since_refresh_ == 0;
  return std::sqrt(drift_sq_) <= options_.warm_drift_bound * sigma_1;
}

void StreamingIsvd::CaptureWarmBases() {
  switch (strategy_) {
    case 0:
      // Single midpoint solve; both slots carry the right singular basis.
      warm_lo_ = result_.v.lower();
      warm_hi_ = warm_lo_;
      break;
    case 1:
      // Per-endpoint SVDs warm-start from their right singular bases.
      warm_lo_ = result_.v.lower();
      warm_hi_ = result_.v.upper();
      break;
    default: {
      // ISVD2–4 eigendecompose the Gram of the resolved side; its Ritz
      // vectors surface as V (kMtM) or, after the factor swap, U (kMMt).
      // Alignment permutations / sign flips and the target-b/c column
      // renormalization only reshuffle and rescale columns, so the captured
      // factor still spans the dominant subspace — all a warm start needs.
      GramSide side = options_.isvd.gram_side;
      if (options_.shard_rows > 0) {
        // The sharded route never materializes a transposed store, so it
        // always resolves kMtM (sparse_isvd.h) — the Ritz basis is V.
        side = GramSide::kMtM;
      } else if (side == GramSide::kAuto) {
        side = matrix_.cols() <= matrix_.rows() ? GramSide::kMtM
                                                : GramSide::kMMt;
      }
      const IntervalMatrix& factor =
          side == GramSide::kMMt ? result_.u : result_.v;
      warm_lo_ = factor.lower();
      warm_hi_ = factor.upper();
      break;
    }
  }
}

const IsvdResult& StreamingIsvd::Refresh() {
  obs::TraceSpan span("streaming.refresh");
  RefreshInstruments& instruments = RefreshInstruments::Get();
  Stopwatch sw;
  const bool warm = WarmEligible();
  (warm ? instruments.warm : instruments.cold).Add(1);
  if (!warm && have_result_ && options_.warm_start) {
    // A warm-capable refresh fell back to cold — say why, with the
    // quantities WarmEligible weighed.
    const double sigma_1 = result_.sigma.empty() ? 0.0 : result_.sigma[0].hi;
    obs::LogDebug("stream", "warm start declined; cold refresh",
                  {{"delta_cells", cells_since_refresh_},
                   {"base_nnz", last_refresh_nnz_},
                   {"drift", std::sqrt(drift_sq_)},
                   {"sigma_1", sigma_1}});
  }
  if (obs::Enabled()) {
    instruments.delta_fraction.Set(
        static_cast<double>(cells_since_refresh_) /
        static_cast<double>(std::max<size_t>(1, last_refresh_nnz_)));
    const double sigma_1 =
        (have_result_ && !result_.sigma.empty()) ? result_.sigma[0].hi : 0.0;
    instruments.drift_ratio.Set(
        sigma_1 > 0.0 ? std::sqrt(drift_sq_) / sigma_1 : 0.0);
  }

  Stopwatch phase;
  matrix_.MaybeCompact(options_.compact_threshold);
  // Decompose the shared frozen view. The merge (or, with an empty log, the
  // base copy) is paid once per mutation epoch; holding the view in
  // snapshot_ keeps (matrix_snapshot(), result()) a consistent pair for the
  // serving layer even while later ApplyBatch calls mutate matrix_.
  {
    obs::TraceSpan snapshot_span("streaming.snapshot");
    snapshot_ = matrix_.SharedSnapshot();
    if (options_.shard_rows > 0) {
      // Zero-copy block-row partition over the frozen view; the serving
      // layer freezes this alongside the factors.
      sharded_snapshot_ = std::make_shared<const ShardedSparseIntervalMatrix>(
          ShardedSparseIntervalMatrix::View(snapshot_, options_.shard_rows));
    }
  }
  const SparseIntervalMatrix& snapshot = *snapshot_;
  stats_.snapshot_seconds = phase.Seconds();
  instruments.snapshot_seconds.Record(stats_.snapshot_seconds);

  IsvdOptions isvd_options = options_.isvd;
  if (warm) {
    isvd_options.lanczos.convergence_tol = options_.convergence_tol;
    isvd_options.lanczos.subspace_factor = options_.warm_subspace_factor;
    isvd_options.lanczos.subspace_extra = options_.warm_subspace_extra;
    isvd_options.warm_basis_lo = warm_lo_;
    isvd_options.warm_basis_hi = warm_hi_;
  }
  phase.Restart();
  {
    obs::TraceSpan decompose_span("streaming.decompose");
    result_ = sharded_snapshot_
                  ? RunIsvd(strategy_, *sharded_snapshot_, rank_, isvd_options)
                  : RunIsvd(strategy_, snapshot, rank_, isvd_options);
  }
  stats_.decompose_seconds = phase.Seconds();
  instruments.decompose_seconds.Record(stats_.decompose_seconds);
  have_result_ = true;
  ++refresh_count_;
  CaptureWarmBases();

  stats_.warm = warm;
  stats_.delta_cells = cells_since_refresh_;
  stats_.iterations = result_.iterations;
  stats_.seconds = sw.Seconds();
  (warm ? instruments.warm_seconds : instruments.cold_seconds)
      .Record(stats_.seconds);
  cells_since_refresh_ = 0;
  drift_sq_ = 0.0;
  last_refresh_nnz_ = snapshot.nnz();
  return result_;
}

}  // namespace ivmf
