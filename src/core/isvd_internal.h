// Internal helpers shared between the ISVD strategies and the LP competitor.
// Not part of the public API.

#ifndef IVMF_CORE_ISVD_INTERNAL_H_
#define IVMF_CORE_ISVD_INTERNAL_H_

#include <vector>

#include "core/isvd.h"

namespace ivmf::isvd_internal {

// Section 3.4 — builds the final result for the requested decomposition
// target: average replacement (Algorithms 2–3) followed by the per-target
// construction (interval factors, or renormalized scalar factors with the
// column norms folded into the core). Adds its own time to
// timings.renormalize.
IsvdResult BuildResult(IntervalMatrix u, std::vector<Interval> sigma,
                       IntervalMatrix v, DecompositionTarget target,
                       PhaseTimings timings);

}  // namespace ivmf::isvd_internal

#endif  // IVMF_CORE_ISVD_INTERNAL_H_
