// Internal helpers shared between the ISVD strategies (dense and sparse
// paths) and the LP competitor. Not part of the public API.

#ifndef IVMF_CORE_ISVD_INTERNAL_H_
#define IVMF_CORE_ISVD_INTERNAL_H_

#include <vector>

#include "core/isvd.h"

namespace ivmf::isvd_internal {

// Section 3.4 — builds the final result for the requested decomposition
// target: average replacement (Algorithms 2–3) followed by the per-target
// construction (interval factors, or renormalized scalar factors with the
// column norms folded into the core). Adds its own time to
// timings.renormalize.
IsvdResult BuildResult(IntervalMatrix u, std::vector<Interval> sigma,
                       IntervalMatrix v, DecompositionTarget target,
                       PhaseTimings timings);

// Effective rank: 0 (or an over-ask) means full rank min(rows, cols).
size_t ClampRank(size_t rows, size_t cols, size_t rank);

// Singular values from Gram-matrix eigenvalues: sqrt of the non-negative
// part (tiny negative eigenvalues appear from rounding).
std::vector<double> SqrtClamped(const std::vector<double>& eigenvalues);

// Pairs per-entry endpoints into an interval diagonal.
std::vector<Interval> MakeIntervalDiag(const std::vector<double>& lo,
                                       const std::vector<double>& hi);

// Applies ILSA (computed on the V pair) to all min-side matrices, per
// Algorithms 8–9: permute columns of U_*, V_* and entries of sigma_*, and
// flip the direction of misaligned U_*/V_* columns. Null arguments are
// skipped.
void AlignMinSide(const IlsaResult& ilsa, Matrix* u_lo, Matrix* v_lo,
                  std::vector<double>* s_lo);

// In-place column scaling by 1 / sigma_j; zero singular values produce zero
// columns (the second half of the SVD identity U = M V Σ⁻¹).
void ScaleColumnsByInverseSigma(Matrix& u, const std::vector<double>& sigma);

}  // namespace ivmf::isvd_internal

#endif  // IVMF_CORE_ISVD_INTERNAL_H_
