#include "base/rng.h"

#include <cmath>

namespace ivmf {

double Rng::Sqrt(double x) { return std::sqrt(x); }
double Rng::Log(double x) { return std::log(x); }

}  // namespace ivmf
