// A small monotonic stopwatch used for per-phase execution-time breakdowns
// (Figure 6b of the paper) and benchmark harnesses.

#ifndef IVMF_BASE_STOPWATCH_H_
#define IVMF_BASE_STOPWATCH_H_

#include <chrono>

namespace ivmf {

// Measures wall-clock time on the steady (monotonic) clock.
//
// Usage:
//   Stopwatch sw;                 // starts running
//   ... work ...
//   double s = sw.Seconds();      // elapsed so far
//   sw.Restart();                 // reset to zero and keep running
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Resets the elapsed time to zero.
  void Restart() { start_ = Clock::now(); }

  // Elapsed wall-clock seconds since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ivmf

#endif  // IVMF_BASE_STOPWATCH_H_
