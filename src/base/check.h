// Invariant-checking macros used across the ivmf library.
//
// The library does not use exceptions (per the project style); programming
// errors and violated preconditions abort with a diagnostic instead.

#ifndef IVMF_BASE_CHECK_H_
#define IVMF_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ivmf::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const char* message) {
  std::fprintf(stderr, "[ivmf] CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, (message != nullptr && message[0] != '\0') ? " — " : "",
               message != nullptr ? message : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace ivmf::internal

// Aborts with a diagnostic when `condition` is false. Always enabled.
#define IVMF_CHECK(condition)                                             \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::ivmf::internal::CheckFailed(__FILE__, __LINE__, #condition, "");  \
    }                                                                     \
  } while (false)

// Like IVMF_CHECK but with an explanatory message (a C string literal).
#define IVMF_CHECK_MSG(condition, message)                                    \
  do {                                                                        \
    if (!(condition)) {                                                       \
      ::ivmf::internal::CheckFailed(__FILE__, __LINE__, #condition, message); \
    }                                                                         \
  } while (false)

// Debug-only check; compiled out in NDEBUG builds. Use in hot loops.
#ifdef NDEBUG
#define IVMF_DCHECK(condition) \
  do {                         \
  } while (false)
#else
#define IVMF_DCHECK(condition) IVMF_CHECK(condition)
#endif

#endif  // IVMF_BASE_CHECK_H_
