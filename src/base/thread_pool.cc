#include "base/thread_pool.h"

#include "obs/metrics.h"

namespace ivmf {
namespace {

struct PoolInstruments {
  obs::Gauge& queue_depth;
  obs::Counter& worker_tasks;
  obs::Counter& helper_tasks;
  obs::Counter& regions;

  static PoolInstruments& Get() {
    static PoolInstruments* instruments = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return new PoolInstruments{
          registry.GetGauge("pool.queue.depth"),
          registry.GetCounter("pool.tasks.executed",
                              {{"executor", "worker"}}),
          registry.GetCounter("pool.tasks.executed",
                              {{"executor", "helper"}}),
          registry.GetCounter("pool.regions.submitted"),
      };
    }();
    return *instruments;
  }
};

}  // namespace

ThreadPool& ThreadPool::Shared() {
  // Leaked (never destroyed) so worker threads can't outlive their pool
  // during static destruction; LSan sees it through this pointer.
  static ThreadPool* pool = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return new ThreadPool(hw >= 2 ? hw - 1 : 0);
  }();
  return *pool;
}

ThreadPool::ThreadPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t t = 0; t < workers; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::FinishIndex(Region* region) {
  // Read n before the increment: once done reaches n the submitter may
  // destroy the (stack-allocated) region, so no member may be touched
  // after the fetch_add that completes it.
  const size_t n = region->n;
  // acq_rel: the submitter's acquire load of done must see this task's
  // writes once it observes done == n.
  if (region->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
    // Taking mu_ before notifying closes the lost-wakeup window: a waiter
    // holds mu_ from predicate check until it blocks, so the increment
    // above cannot slip into that gap unnoticed.
    { std::lock_guard<std::mutex> lk(mu_); }
    done_cv_.notify_all();
  }
}

bool ThreadPool::RunOneLocked(std::unique_lock<std::mutex>& lk, bool helper) {
  if (queue_.empty()) return false;
  Region* region = queue_.front();
  const size_t index = region->next++;
  if (region->next >= region->n) {
    queue_.pop_front();
    PoolInstruments::Get().queue_depth.Set(static_cast<double>(queue_.size()));
  }
  lk.unlock();
  region->fn(region->ctx, index);
  (helper ? PoolInstruments::Get().helper_tasks
          : PoolInstruments::Get().worker_tasks)
      .Add();
  FinishIndex(region);
  lk.lock();
  return true;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    RunOneLocked(lk, /*helper=*/false);
  }
}

void ThreadPool::Run(size_t n, TaskFn fn, void* ctx) {
  if (n == 0) return;
  if (threads_.empty()) {
    // No workers (single-core, or a serial test pool): run inline in index
    // order, same as the old ParallelFor serial fallback.
    for (size_t i = 0; i < n; ++i) fn(ctx, i);
    return;
  }

  Region region{fn, ctx, n};
  {
    std::unique_lock<std::mutex> lk(mu_);
    queue_.push_back(&region);
    auto& instruments = PoolInstruments::Get();
    instruments.queue_depth.Set(static_cast<double>(queue_.size()));
    instruments.regions.Add();
  }
  if (n > 1) {
    work_cv_.notify_all();
  } else {
    work_cv_.notify_one();
  }

  // Participate: claim work (from this region or any other queued region —
  // helping keeps nested Run calls deadlock-free) until our region's tasks
  // have all *completed*, not merely been claimed.
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (region.done.load(std::memory_order_acquire) >= n) return;
    if (RunOneLocked(lk, /*helper=*/true)) continue;
    done_cv_.wait(lk, [this, &region, n] {
      return region.done.load(std::memory_order_acquire) >= n ||
             !queue_.empty();
    });
  }
}

}  // namespace ivmf
