// Deterministic pseudo-random number generation for experiments.
//
// All data generators and randomized algorithms in this library draw from
// Xoshiro256++ seeded through SplitMix64, so every experiment in the
// benchmark harness is reproducible from a single 64-bit seed.

#ifndef IVMF_BASE_RNG_H_
#define IVMF_BASE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ivmf {

// SplitMix64: used to expand a single 64-bit seed into a full generator
// state. Reference: Sebastiano Vigna, http://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256++ 1.0, a fast all-purpose generator with 256 bits of state.
// Reference: David Blackman and Sebastiano Vigna,
// http://prng.di.unimi.it/xoshiro256plusplus.c
class Rng {
 public:
  // Seeds the state deterministically from a single 64-bit value.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  // Next raw 64-bit output.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double Uniform() {
    // Use the top 53 bits for a dyadic rational in [0,1).
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformIndex(uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (0ULL - n) % n;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Standard normal via Marsaglia polar method.
  double Normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = Sqrt(-2.0 * Log(s) / s);
    cached_ = v * factor;
    have_cached_ = true;
    return u * factor;
  }

  // Normal with given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  // Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  // In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformIndex(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child stream (e.g. one per trial).
  Rng Fork() { return Rng(NextU64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  // Tiny local wrappers keep <cmath> out of this header's public surface.
  static double Sqrt(double x);
  static double Log(double x);

  uint64_t state_[4];
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace ivmf

#endif  // IVMF_BASE_RNG_H_
