// Minimal "--name=value" command-line flag parsing, shared by the tools in
// tools/ and the bench harnesses (bench/bench_util.h re-exports these under
// ivmf::bench). One copy, so flag syntax cannot drift between binaries:
// values are everything after the first '=', bool flags are bare "--name",
// flags may repeat (first match wins except RepeatedFlag), and unknown
// arguments are ignored — tools validate the flags they consume.

#ifndef IVMF_BASE_FLAGS_H_
#define IVMF_BASE_FLAGS_H_

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace ivmf {

// Returns the value of "--name=V" if present, else `fallback`.
inline std::string StringFlag(int argc, char** argv, const char* name,
                              const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

// Every value of a repeatable "--name=V" flag, in argument order.
inline std::vector<std::string> RepeatedFlag(int argc, char** argv,
                                             const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  std::vector<std::string> values;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      values.emplace_back(argv[i] + prefix.size());
    }
  }
  return values;
}

inline int IntFlag(int argc, char** argv, const char* name, int fallback) {
  const std::string value = StringFlag(argc, argv, name, "");
  return value.empty() ? fallback : std::atoi(value.c_str());
}

inline double DoubleFlag(int argc, char** argv, const char* name,
                         double fallback) {
  const std::string value = StringFlag(argc, argv, name, "");
  return value.empty() ? fallback : std::atof(value.c_str());
}

// True when the bare flag "--name" appears.
inline bool BoolFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace ivmf

#endif  // IVMF_BASE_FLAGS_H_
