// A reusable worker pool behind ParallelFor and the shard-parallel kernels.
//
// The original ParallelFor spawned std::thread workers per call — fine for
// a handful of dense Gram builds, but the sharded sparse kernels issue a
// parallel region per Lanczos step (hundreds per decomposition), and the
// serving layer runs kernel regions concurrently with workload reader
// threads. Spawn-per-call then costs a clone()+join per region and, worse,
// oversubscribes the machine whenever two subsystems open regions at once
// (a refresh during a bench run used to run 2 x hardware_concurrency
// kernel threads). This pool fixes both: one process-wide set of
// hardware_concurrency - 1 workers executes every region, and submitting
// threads participate in their own region, so the executor count stays at
// hardware concurrency no matter how many subsystems submit.
//
// Scheduling model: a region is an indexed task set {fn(ctx, 0), ...,
// fn(ctx, n - 1)}. Regions queue FIFO; workers (and waiting submitters)
// claim indices from the front region under the pool mutex and execute them
// unlocked. A submitter that runs out of claimable work HELPS: it executes
// indices of any queued region (its own or another submitter's) while its
// region is unfinished. That makes nested submission deadlock-free — a task
// that itself opens a region (e.g. the two-endpoint eigensolve wrapping
// kernel-parallel shard reductions) drains inner work on the thread that
// would otherwise block — and keeps the pool at full throughput when
// regions from different subsystems overlap.
//
// Determinism: the pool only executes; callers fix the index -> work-range
// mapping (ParallelFor's static chunk partition is unchanged), so which
// OS thread runs an index never affects results.
//
// Observability: pool.queue.depth gauge (regions currently queued),
// pool.tasks.executed counter, tagged by executor (worker vs helper).

#ifndef IVMF_BASE_THREAD_POOL_H_
#define IVMF_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace ivmf {

class ThreadPool {
 public:
  // One task body: fn(ctx, index). A plain function pointer + context (not
  // std::function) so submitting a region never allocates.
  using TaskFn = void (*)(void* ctx, size_t index);

  // The process-wide pool: hardware_concurrency - 1 workers (0 workers on a
  // single-core machine — every region then runs serially on the submitter,
  // matching the old ParallelFor fallback). Leaked like
  // MetricsRegistry::Global so worker threads never race static
  // destruction at exit.
  static ThreadPool& Shared();

  // A private pool, for tests. `workers` may be 0 (serial execution).
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return threads_.size(); }

  // Executes fn(ctx, i) for every i in [0, n) and returns when all n calls
  // have completed. The calling thread participates (and helps other queued
  // regions while waiting), so progress is guaranteed even from inside a
  // pool task. Calls for distinct i may run concurrently; fn must tolerate
  // that (disjoint writes), exactly like the old ParallelFor contract.
  void Run(size_t n, TaskFn fn, void* ctx);

 private:
  struct Region {
    TaskFn fn;
    void* ctx;
    size_t n;
    size_t next = 0;  // next unclaimed index; guarded by mu_
    std::atomic<size_t> done{0};
  };

  void WorkerLoop();
  // Claims and runs one index from the front region. Returns false when the
  // queue was empty. Expects `lk` held; releases it around the task body.
  bool RunOneLocked(std::unique_lock<std::mutex>& lk, bool helper);
  void FinishIndex(Region* region);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stop
  std::condition_variable done_cv_;  // submitters: region done or new work
  std::deque<Region*> queue_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

}  // namespace ivmf

#endif  // IVMF_BASE_THREAD_POOL_H_
