// Minimal data-parallel helper used by the heavier kernels (dense products,
// Gram construction, per-shard reductions) and by benchmark trial loops.
//
// ParallelFor statically partitions [begin, end) across at most
// `max_threads` chunks (hardware concurrency by default) and executes the
// chunks on the process-wide ThreadPool — the calling thread runs chunks
// too, so total executor count never exceeds hardware concurrency even when
// several subsystems (serving refresh, bench workload) open regions at
// once. Determinism: the partitioning depends only on the range and thread
// count, and callers write to disjoint outputs, so results are
// bit-identical to the serial execution regardless of which pool thread
// runs which chunk.

#ifndef IVMF_BASE_PARALLEL_H_
#define IVMF_BASE_PARALLEL_H_

#include <cstddef>
#include <thread>

#include "base/thread_pool.h"

namespace ivmf {

// Number of worker threads to use for a range of `n` items given the
// hardware concurrency `hw` (0 = unknown, as hardware_concurrency() is
// allowed to report): at least 1, never more threads than items, and capped
// by min(max_threads, hw) where each is known. When hw is unknown an
// explicit max_threads is trusted as-is — clamping it to the hw fallback of
// 1 would silently serialize a caller that asked for parallelism — and only
// the no-preference case (max_threads == 0) degrades to a single thread.
// Split out from SuggestedThreads so the hw == 0 edge is unit-testable.
inline size_t SuggestedThreadsWithHardware(size_t n, size_t max_threads,
                                           size_t hw) {
  if (n == 0) return 1;
  if (max_threads == 0) {
    max_threads = hw == 0 ? 1 : hw;
  } else if (hw != 0 && max_threads > hw) {
    max_threads = hw;
  }
  return n < max_threads ? n : max_threads;
}

// Number of worker threads to use for a range of `n` items: at least 1,
// at most hardware concurrency, and never more threads than items.
inline size_t SuggestedThreads(size_t n, size_t max_threads = 0) {
  return SuggestedThreadsWithHardware(n, max_threads,
                                      std::thread::hardware_concurrency());
}

// Applies fn(i) for every i in [begin, end), possibly concurrently.
// `fn` must be safe to call concurrently for distinct i (writes to
// disjoint data). Falls back to a serial loop for small ranges. Safe to
// call from inside another ParallelFor body: the pool's help-while-wait
// submission makes nested regions drain on the submitting thread instead
// of deadlocking.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, Fn&& fn, size_t max_threads = 0,
                 size_t min_items_per_thread = 1) {
  if (end <= begin) return;
  const size_t n = end - begin;
  size_t threads = SuggestedThreads(n, max_threads);
  if (min_items_per_thread > 1) {
    const size_t cap = (n + min_items_per_thread - 1) / min_items_per_thread;
    if (threads > cap) threads = cap;
  }
  if (threads <= 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Same chunk partition the spawn-per-call version used; chunk index t
  // covers [begin + t*chunk, min(begin + (t+1)*chunk, end)).
  const size_t chunk = (n + threads - 1) / threads;
  struct Ctx {
    Fn& fn;
    size_t begin;
    size_t end;
    size_t chunk;
  } ctx{fn, begin, end, chunk};
  ThreadPool::Shared().Run(
      threads,
      [](void* raw, size_t t) {
        Ctx& c = *static_cast<Ctx*>(raw);
        const size_t lo = c.begin + t * c.chunk;
        const size_t hi = lo + c.chunk < c.end ? lo + c.chunk : c.end;
        for (size_t i = lo; i < hi; ++i) c.fn(i);
      },
      &ctx);
}

}  // namespace ivmf

#endif  // IVMF_BASE_PARALLEL_H_
