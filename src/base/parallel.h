// Minimal data-parallel helper used by the heavier kernels (dense products,
// Gram construction) and by benchmark trial loops.
//
// ParallelFor statically partitions [begin, end) across at most
// `max_threads` std::thread workers (hardware concurrency by default).
// Determinism: the partitioning depends only on the range and thread count,
// and callers write to disjoint outputs, so results are bit-identical to
// the serial execution.

#ifndef IVMF_BASE_PARALLEL_H_
#define IVMF_BASE_PARALLEL_H_

#include <cstddef>
#include <thread>
#include <vector>

namespace ivmf {

// Number of worker threads to use for a range of `n` items given the
// hardware concurrency `hw` (0 = unknown, as hardware_concurrency() is
// allowed to report): at least 1, never more threads than items, and capped
// by min(max_threads, hw) where each is known. When hw is unknown an
// explicit max_threads is trusted as-is — clamping it to the hw fallback of
// 1 would silently serialize a caller that asked for parallelism — and only
// the no-preference case (max_threads == 0) degrades to a single thread.
// Split out from SuggestedThreads so the hw == 0 edge is unit-testable.
inline size_t SuggestedThreadsWithHardware(size_t n, size_t max_threads,
                                           size_t hw) {
  if (n == 0) return 1;
  if (max_threads == 0) {
    max_threads = hw == 0 ? 1 : hw;
  } else if (hw != 0 && max_threads > hw) {
    max_threads = hw;
  }
  return n < max_threads ? n : max_threads;
}

// Number of worker threads to use for a range of `n` items: at least 1,
// at most hardware concurrency, and never more threads than items.
inline size_t SuggestedThreads(size_t n, size_t max_threads = 0) {
  return SuggestedThreadsWithHardware(n, max_threads,
                                      std::thread::hardware_concurrency());
}

// Applies fn(i) for every i in [begin, end), possibly concurrently.
// `fn` must be safe to call concurrently for distinct i (writes to
// disjoint data). Falls back to a serial loop for small ranges.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, Fn&& fn, size_t max_threads = 0,
                 size_t min_items_per_thread = 1) {
  if (end <= begin) return;
  const size_t n = end - begin;
  size_t threads = SuggestedThreads(n, max_threads);
  if (min_items_per_thread > 1) {
    const size_t cap = (n + min_items_per_thread - 1) / min_items_per_thread;
    if (threads > cap) threads = cap;
  }
  if (threads <= 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t chunk = (n + threads - 1) / threads;
  for (size_t t = 0; t < threads; ++t) {
    const size_t lo = begin + t * chunk;
    const size_t hi = lo + chunk < end ? lo + chunk : end;
    if (lo >= hi) break;
    workers.emplace_back([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (std::thread& w : workers) w.join();
}

}  // namespace ivmf

#endif  // IVMF_BASE_PARALLEL_H_
