// Scalar interval type and Sunaga interval algebra (Section 2.1, Defs 1–3).

#ifndef IVMF_INTERVAL_INTERVAL_H_
#define IVMF_INTERVAL_INTERVAL_H_

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace ivmf {

// A closed interval [lo, hi]. Definition 1 of the paper: an interval
// a† = [a_*, a^*] with a_* <= a^*; when a_* == a^* the interval is scalar.
//
// Some intermediate ISVD matrices deliberately hold *misordered* pairs
// (lo > hi) before the average-replacement step; use FromUnordered() or the
// raw constructor for those, and Normalized()/IsProper() to repair/inspect.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  constexpr Interval() = default;
  constexpr Interval(double lo_in, double hi_in) : lo(lo_in), hi(hi_in) {}

  // A degenerate (scalar) interval [x, x].
  static constexpr Interval Scalar(double x) { return Interval(x, x); }

  // Builds the interval spanned by two unordered endpoints.
  static constexpr Interval FromUnordered(double a, double b) {
    return a <= b ? Interval(a, b) : Interval(b, a);
  }

  // Definition 2: span(a†) = a^* - a_*.
  constexpr double Span() const { return hi - lo; }

  // Interval midpoint (a_* + a^*) / 2.
  constexpr double Mid() const { return 0.5 * (lo + hi); }

  // Half-width of the interval.
  constexpr double Radius() const { return 0.5 * (hi - lo); }

  // True when the endpoints are ordered (a valid interval).
  constexpr bool IsProper() const { return lo <= hi; }

  // True when the interval degenerates to a scalar (within tol).
  bool IsScalar(double tol = 0.0) const { return std::abs(hi - lo) <= tol; }

  // True when lo <= x <= hi.
  constexpr bool Contains(double x) const { return lo <= x && x <= hi; }

  // True when `other` lies fully inside this interval.
  constexpr bool Contains(const Interval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }

  // Orders the endpoints if needed.
  constexpr Interval Normalized() const { return FromUnordered(lo, hi); }

  friend constexpr bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

// Definition 3 — interval addition: [a,b] + [c,d] = [a+c, b+d].
constexpr Interval operator+(const Interval& a, const Interval& b) {
  return Interval(a.lo + b.lo, a.hi + b.hi);
}

// Definition 3 — interval subtraction: [a,b] - [c,d] = [a-d, b-c].
constexpr Interval operator-(const Interval& a, const Interval& b) {
  return Interval(a.lo - b.hi, a.hi - b.lo);
}

// Unary negation: -[a,b] = [-b,-a].
constexpr Interval operator-(const Interval& a) {
  return Interval(-a.hi, -a.lo);
}

// Definition 3 — interval multiplication: the min/max over the four
// endpoint products.
inline Interval operator*(const Interval& a, const Interval& b) {
  const double p1 = a.lo * b.lo;
  const double p2 = a.lo * b.hi;
  const double p3 = a.hi * b.lo;
  const double p4 = a.hi * b.hi;
  return Interval(std::min(std::min(p1, p2), std::min(p3, p4)),
                  std::max(std::max(p1, p2), std::max(p3, p4)));
}

// Scalar x interval multiplication (a special case of Definition 3 with
// span(s * b) == |s| * span(b)).
inline Interval operator*(double s, const Interval& b) {
  return Interval::Scalar(s) * b;
}
inline Interval operator*(const Interval& a, double s) {
  return a * Interval::Scalar(s);
}

inline Interval& operator+=(Interval& a, const Interval& b) {
  a = a + b;
  return a;
}
inline Interval& operator-=(Interval& a, const Interval& b) {
  a = a - b;
  return a;
}

}  // namespace ivmf

#endif  // IVMF_INTERVAL_INTERVAL_H_
