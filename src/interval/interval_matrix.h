// Interval-valued matrices: a pair of dense min/max matrices M† = [M_*, M^*].

#ifndef IVMF_INTERVAL_INTERVAL_MATRIX_H_
#define IVMF_INTERVAL_INTERVAL_MATRIX_H_

#include <cstddef>
#include <utility>

#include "interval/interval.h"
#include "linalg/matrix.h"

namespace ivmf {

// An n x m matrix whose entries are intervals, stored as two dense scalar
// matrices holding the minimum and maximum endpoints.
//
// Intermediate factor matrices in ISVD may temporarily contain misordered
// entries (lower > upper); IsProper() reports whether all entries are valid
// intervals and AverageReplaced() repairs them per Algorithms 2–3.
class IntervalMatrix {
 public:
  IntervalMatrix() = default;

  // An n x m interval matrix of scalar zeros.
  IntervalMatrix(size_t rows, size_t cols)
      : lower_(rows, cols), upper_(rows, cols) {}

  // Wraps explicit endpoint matrices (shapes must match; ordering is NOT
  // enforced — see class comment).
  IntervalMatrix(Matrix lower, Matrix upper)
      : lower_(std::move(lower)), upper_(std::move(upper)) {
    IVMF_CHECK(lower_.rows() == upper_.rows() &&
               lower_.cols() == upper_.cols());
  }

  // A degenerate interval matrix [M, M] from a scalar matrix.
  static IntervalMatrix FromScalar(const Matrix& m) {
    return IntervalMatrix(m, m);
  }

  size_t rows() const { return lower_.rows(); }
  size_t cols() const { return lower_.cols(); }
  bool empty() const { return lower_.empty(); }

  const Matrix& lower() const { return lower_; }
  const Matrix& upper() const { return upper_; }
  Matrix& mutable_lower() { return lower_; }
  Matrix& mutable_upper() { return upper_; }

  Interval At(size_t i, size_t j) const {
    return Interval(lower_(i, j), upper_(i, j));
  }
  void Set(size_t i, size_t j, const Interval& v) {
    lower_(i, j) = v.lo;
    upper_(i, j) = v.hi;
  }

  // Elementwise midpoint matrix (M_* + M^*) / 2 — the ISVD0 input.
  Matrix Mid() const;

  // Elementwise span matrix M^* - M_*.
  Matrix Span() const;

  // True when every entry satisfies lower <= upper.
  bool IsProper() const;

  // Largest violation max(0, lower - upper) over all entries.
  double MaxMisorder() const;

  // Algorithm 3 (average replacement): entries with lower > upper are
  // replaced by their average in both endpoint matrices.
  IntervalMatrix AverageReplaced() const;

  IntervalMatrix Transpose() const {
    return IntervalMatrix(lower_.Transpose(), upper_.Transpose());
  }

  // Interval matrix addition / subtraction (Sunaga algebra, elementwise).
  IntervalMatrix operator+(const IntervalMatrix& other) const;
  IntervalMatrix operator-(const IntervalMatrix& other) const;

  // True when the scalar matrix `m` lies elementwise inside the intervals.
  bool ContainsMatrix(const Matrix& m, double tol = 0.0) const;

  // True when shapes match and both endpoint matrices agree within tol.
  bool ApproxEquals(const IntervalMatrix& other, double tol) const {
    return lower_.ApproxEquals(other.lower_, tol) &&
           upper_.ApproxEquals(other.upper_, tol);
  }

 private:
  Matrix lower_;
  Matrix upper_;
};

// Interval-valued matrix product per the paper's Algorithm 1: form the four
// endpoint products A_*B_*, A_*B^*, A^*B_*, A^*B^* and take the elementwise
// min / max. This is the construction used throughout ISVD.
IntervalMatrix IntervalMatMul(const IntervalMatrix& a, const IntervalMatrix& b);

// Exact Sunaga interval matrix product: every scalar multiply-add in the
// inner product is replaced by its interval counterpart, giving the interval
// hull of all possible products. Always contains the Algorithm-1 result;
// the two coincide for elementwise non-negative operands.
IntervalMatrix IntervalMatMulExact(const IntervalMatrix& a,
                                   const IntervalMatrix& b);

// Mixed products with scalar operands.
IntervalMatrix IntervalMatMul(const Matrix& a, const IntervalMatrix& b);
IntervalMatrix IntervalMatMul(const IntervalMatrix& a, const Matrix& b);

}  // namespace ivmf

#endif  // IVMF_INTERVAL_INTERVAL_MATRIX_H_
