// Supporting interval/matrix operations used by the ISVD pipeline:
// the optimal interval diagonal-core inverse (Section 4.4.2.1, Algorithm 4),
// vector average replacement (Algorithm 2) and L2 column normalization
// (Algorithm 5).

#ifndef IVMF_INTERVAL_INTERVAL_OPS_H_
#define IVMF_INTERVAL_INTERVAL_OPS_H_

#include <vector>

#include "interval/interval.h"
#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf {

// Algorithm 2: repairs misordered interval entries of a vector (pairs with
// lo > hi collapse to their average).
void AverageReplaceVector(std::vector<Interval>& v);

// Section 4.4.2.1 / Algorithm 4 — the optimal scalar inverse of a
// non-negative interval-valued diagonal core matrix Σ†.
//
// For each diagonal interval [s_*, s^*] the minimizer of the identity
// deviation ε is the *scalar* σ = 2 / (s_* + s^*); zero intervals invert to
// zero and half-zero intervals to 2 / s (the derivation in the paper).
// Returns the r x r scalar diagonal inverse.
Matrix InverseIntervalDiagonal(const IntervalMatrix& sigma);

// Convenience overload on the diagonal intervals themselves.
std::vector<double> InverseIntervalDiagonal(const std::vector<Interval>& diag);

// The per-entry identity deviation ε_i = (s^* - s_*) / (s^* + s_*) achieved
// by the optimal inverse above; useful for diagnostics and tests.
std::vector<double> IntervalDiagonalEpsilons(const std::vector<Interval>& diag);

// Algorithm 5 — L2 column normalization. Divides every column of `m` by its
// Euclidean norm (columns with zero norm are left unchanged) and returns the
// vector of original column norms.
std::vector<double> NormalizeColumnsL2(Matrix& m);

// -- Interval matrix statistics (diagnostics used by benches/examples) ------

// Mean span over all entries.
double MeanSpan(const IntervalMatrix& m);

// Fraction of entries of `m` whose interval contains the corresponding
// entry of the scalar matrix `x` (within `tol`).
double ContainmentFraction(const IntervalMatrix& m, const Matrix& x,
                           double tol = 0.0);

// Fraction of entries with non-zero span (the "interval density" of a
// matrix in the paper's Table 1 terminology).
double IntervalDensity(const IntervalMatrix& m, double tol = 0.0);

}  // namespace ivmf

#endif  // IVMF_INTERVAL_INTERVAL_OPS_H_
