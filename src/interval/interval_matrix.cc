#include "interval/interval_matrix.h"

#include <algorithm>
#include <cmath>

namespace ivmf {

Matrix IntervalMatrix::Mid() const {
  Matrix result(rows(), cols());
  for (size_t i = 0; i < rows(); ++i)
    for (size_t j = 0; j < cols(); ++j)
      result(i, j) = 0.5 * (lower_(i, j) + upper_(i, j));
  return result;
}

Matrix IntervalMatrix::Span() const {
  Matrix result(rows(), cols());
  for (size_t i = 0; i < rows(); ++i)
    for (size_t j = 0; j < cols(); ++j)
      result(i, j) = upper_(i, j) - lower_(i, j);
  return result;
}

bool IntervalMatrix::IsProper() const {
  for (size_t i = 0; i < rows(); ++i)
    for (size_t j = 0; j < cols(); ++j)
      if (lower_(i, j) > upper_(i, j)) return false;
  return true;
}

double IntervalMatrix::MaxMisorder() const {
  double worst = 0.0;
  for (size_t i = 0; i < rows(); ++i)
    for (size_t j = 0; j < cols(); ++j)
      worst = std::max(worst, lower_(i, j) - upper_(i, j));
  return worst;
}

IntervalMatrix IntervalMatrix::AverageReplaced() const {
  IntervalMatrix result = *this;
  for (size_t i = 0; i < rows(); ++i) {
    for (size_t j = 0; j < cols(); ++j) {
      if (result.lower_(i, j) > result.upper_(i, j)) {
        const double avg = 0.5 * (result.lower_(i, j) + result.upper_(i, j));
        result.lower_(i, j) = avg;
        result.upper_(i, j) = avg;
      }
    }
  }
  return result;
}

IntervalMatrix IntervalMatrix::operator+(const IntervalMatrix& other) const {
  return IntervalMatrix(lower_ + other.lower_, upper_ + other.upper_);
}

IntervalMatrix IntervalMatrix::operator-(const IntervalMatrix& other) const {
  // [a,b] - [c,d] = [a-d, b-c], elementwise.
  return IntervalMatrix(lower_ - other.upper_, upper_ - other.lower_);
}

bool IntervalMatrix::ContainsMatrix(const Matrix& m, double tol) const {
  if (m.rows() != rows() || m.cols() != cols()) return false;
  for (size_t i = 0; i < rows(); ++i)
    for (size_t j = 0; j < cols(); ++j)
      if (m(i, j) < lower_(i, j) - tol || m(i, j) > upper_(i, j) + tol)
        return false;
  return true;
}

IntervalMatrix IntervalMatMul(const IntervalMatrix& a,
                              const IntervalMatrix& b) {
  IVMF_CHECK_MSG(a.cols() == b.rows(), "interval product dimension mismatch");
  // Algorithm 1: T1 = A_* B_*, T2 = A_* B^*, T3 = A^* B_*, T4 = A^* B^*.
  const Matrix t1 = a.lower() * b.lower();
  const Matrix t2 = a.lower() * b.upper();
  const Matrix t3 = a.upper() * b.lower();
  const Matrix t4 = a.upper() * b.upper();
  Matrix lo(t1.rows(), t1.cols());
  Matrix hi(t1.rows(), t1.cols());
  for (size_t i = 0; i < t1.rows(); ++i) {
    for (size_t j = 0; j < t1.cols(); ++j) {
      const double v1 = t1(i, j), v2 = t2(i, j), v3 = t3(i, j), v4 = t4(i, j);
      lo(i, j) = std::min(std::min(v1, v2), std::min(v3, v4));
      hi(i, j) = std::max(std::max(v1, v2), std::max(v3, v4));
    }
  }
  return IntervalMatrix(std::move(lo), std::move(hi));
}

IntervalMatrix IntervalMatMulExact(const IntervalMatrix& a,
                                   const IntervalMatrix& b) {
  IVMF_CHECK_MSG(a.cols() == b.rows(), "interval product dimension mismatch");
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.cols();
  IntervalMatrix result(n, m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      Interval acc;
      for (size_t t = 0; t < k; ++t) acc += a.At(i, t) * b.At(t, j);
      result.Set(i, j, acc);
    }
  }
  return result;
}

IntervalMatrix IntervalMatMul(const Matrix& a, const IntervalMatrix& b) {
  return IntervalMatMul(IntervalMatrix::FromScalar(a), b);
}

IntervalMatrix IntervalMatMul(const IntervalMatrix& a, const Matrix& b) {
  return IntervalMatMul(a, IntervalMatrix::FromScalar(b));
}

}  // namespace ivmf
