#include "interval/interval_ops.h"

#include <cmath>

namespace ivmf {

void AverageReplaceVector(std::vector<Interval>& v) {
  for (Interval& x : v) {
    if (x.lo > x.hi) {
      const double avg = x.Mid();
      x.lo = avg;
      x.hi = avg;
    }
  }
}

std::vector<double> InverseIntervalDiagonal(const std::vector<Interval>& diag) {
  std::vector<double> inv(diag.size());
  for (size_t i = 0; i < diag.size(); ++i) {
    const double lo = diag[i].lo;
    const double hi = diag[i].hi;
    IVMF_DCHECK(lo >= 0.0 && hi >= 0.0);
    if (lo == 0.0 && hi == 0.0) {
      inv[i] = 0.0;
    } else if (lo == 0.0) {
      inv[i] = 2.0 / hi;
    } else if (hi == 0.0) {
      inv[i] = 2.0 / lo;
    } else {
      inv[i] = 2.0 / (lo + hi);
    }
  }
  return inv;
}

Matrix InverseIntervalDiagonal(const IntervalMatrix& sigma) {
  IVMF_CHECK_MSG(sigma.rows() == sigma.cols(),
                 "core matrix inverse needs a square diagonal matrix");
  std::vector<Interval> diag(sigma.rows());
  for (size_t i = 0; i < sigma.rows(); ++i) diag[i] = sigma.At(i, i);
  return Matrix::Diagonal(InverseIntervalDiagonal(diag));
}

std::vector<double> IntervalDiagonalEpsilons(
    const std::vector<Interval>& diag) {
  std::vector<double> eps(diag.size());
  for (size_t i = 0; i < diag.size(); ++i) {
    const double lo = diag[i].lo;
    const double hi = diag[i].hi;
    eps[i] = (lo + hi) > 0.0 ? (hi - lo) / (hi + lo) : 0.0;
  }
  return eps;
}

double MeanSpan(const IntervalMatrix& m) {
  if (m.empty()) return 0.0;
  return m.Span().Sum() / static_cast<double>(m.rows() * m.cols());
}

double ContainmentFraction(const IntervalMatrix& m, const Matrix& x,
                           double tol) {
  IVMF_CHECK(m.rows() == x.rows() && m.cols() == x.cols());
  if (m.empty()) return 1.0;
  size_t contained = 0;
  for (size_t i = 0; i < m.rows(); ++i)
    for (size_t j = 0; j < m.cols(); ++j)
      if (x(i, j) >= m.lower()(i, j) - tol && x(i, j) <= m.upper()(i, j) + tol)
        ++contained;
  return static_cast<double>(contained) /
         static_cast<double>(m.rows() * m.cols());
}

double IntervalDensity(const IntervalMatrix& m, double tol) {
  if (m.empty()) return 0.0;
  size_t with_span = 0;
  for (size_t i = 0; i < m.rows(); ++i)
    for (size_t j = 0; j < m.cols(); ++j)
      if (m.upper()(i, j) - m.lower()(i, j) > tol) ++with_span;
  return static_cast<double>(with_span) /
         static_cast<double>(m.rows() * m.cols());
}

std::vector<double> NormalizeColumnsL2(Matrix& m) {
  std::vector<double> norms(m.cols());
  for (size_t j = 0; j < m.cols(); ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < m.rows(); ++i) sum += m(i, j) * m(i, j);
    const double norm = std::sqrt(sum);
    norms[j] = norm;
    if (norm > 0.0) {
      const double inv = 1.0 / norm;
      for (size_t i = 0; i < m.rows(); ++i) m(i, j) *= inv;
    }
  }
  return norms;
}

}  // namespace ivmf
