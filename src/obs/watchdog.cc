#include "obs/watchdog.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace ivmf::obs {

namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct WatchdogInstruments {
  Counter& beats;
  Gauge& heartbeat_seconds;
  Gauge& age_seconds;

  static WatchdogInstruments& Get() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static WatchdogInstruments instruments{
        registry.GetCounter("watchdog.beats"),
        registry.GetGauge("watchdog.heartbeat.seconds"),
        registry.GetGauge("watchdog.age.seconds")};
    return instruments;
  }
};

}  // namespace

const char* WatchdogHealthName(Watchdog::Health health) {
  return health == Watchdog::Health::kOk ? "ok" : "stalled";
}

Watchdog::Watchdog(WatchdogOptions options)
    : options_(std::move(options)), last_beat_(Now()) {}

double Watchdog::Now() const {
  return options_.clock ? options_.clock() : SteadySeconds();
}

void Watchdog::Beat() {
  const double now = Now();
  last_beat_.store(now, std::memory_order_relaxed);
  beats_.fetch_add(1, std::memory_order_relaxed);
  WatchdogInstruments& instruments = WatchdogInstruments::Get();
  instruments.beats.Add(1);
  instruments.heartbeat_seconds.Set(now);
}

double Watchdog::SecondsSinceBeat() const {
  const double age = Now() - last_beat_.load(std::memory_order_relaxed);
  return age > 0.0 ? age : 0.0;
}

Watchdog::Health Watchdog::health() const {
  const double age = SecondsSinceBeat();
  WatchdogInstruments::Get().age_seconds.Set(age);
  if (age <= options_.stall_seconds) return Health::kOk;
  if (options_.busy && !options_.busy()) return Health::kOk;
  return Health::kStalled;
}

std::string Watchdog::StatusJson() const {
  const Health current = health();
  char buffer[64];
  std::string out = "{\"status\":\"";
  out += WatchdogHealthName(current);
  out += "\",\"seconds_since_heartbeat\":";
  std::snprintf(buffer, sizeof(buffer), "%.6f", SecondsSinceBeat());
  out += buffer;
  out += ",\"stall_threshold_seconds\":";
  std::snprintf(buffer, sizeof(buffer), "%.6f", options_.stall_seconds);
  out += buffer;
  out += ",\"beats\":" + std::to_string(beats()) + "}";
  return out;
}

}  // namespace ivmf::obs
