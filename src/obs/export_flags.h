// One shared implementation of the observability command-line surface so it
// cannot drift between binaries: every tool and bench that offers
// --metrics-json / --trace / --http_port / --stall_seconds routes through
// here (bench/bench_util.h re-exports the metrics part for the harnesses).
//
//   --metrics-json=PATH   dump the full MetricsRegistry snapshot as JSON at
//                         exit
//   --trace=PATH          start span collection now, write the Chrome
//                         trace_event file at exit
//   --http_port=N         serve /metrics, /metrics.json, /tracez, /logz,
//                         /healthz while running (0 = ephemeral port,
//                         printed at startup); absent = no server
//   --stall_seconds=S     /healthz stall threshold (with --http_port)
//
// Usage in a tool:
//   ObsCliOptions obs_options = ParseObsCliOptions(argc, argv);
//   StartObsCollection(obs_options);          // before the workload
//   ... run, optionally StartHttpExporter ...
//   if (!WriteObsOutputs(obs_options)) return 1;   // after the workload

#ifndef IVMF_OBS_EXPORT_FLAGS_H_
#define IVMF_OBS_EXPORT_FLAGS_H_

#include <string>

namespace ivmf::obs {

struct ObsCliOptions {
  std::string metrics_json_path;  // empty = no snapshot dump
  std::string trace_path;         // empty = no tracing
  bool http_requested = false;
  int http_port = 0;
  double stall_seconds = 10.0;
};

ObsCliOptions ParseObsCliOptions(int argc, char** argv);

// Starts span collection when --trace was given. Call before the workload.
void StartObsCollection(const ObsCliOptions& options);

// Writes whatever --metrics-json / --trace requested. Failures are logged;
// returns false when a requested output could not be written.
bool WriteObsOutputs(const ObsCliOptions& options);

// Writes one string to a file; shared by the flag outputs above and the
// direct callers in bench_util. Returns false on I/O failure.
bool WriteStringToFile(const std::string& path, const std::string& contents);

}  // namespace ivmf::obs

#endif  // IVMF_OBS_EXPORT_FLAGS_H_
