#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace ivmf::obs {

namespace internal {
std::atomic<bool> g_tracing{false};
}  // namespace internal

// -- TraceRing ---------------------------------------------------------------

void TraceRing::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() < capacity_) {
    events_.push_back(event);
    return;
  }
  events_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRing::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(next_ + i) % events_.size()]);
  }
  return out;
}

size_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

// -- TraceCollector ----------------------------------------------------------

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

namespace {
uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

void TraceCollector::Start(size_t ring_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  base_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  // Bump the epoch before flipping tracing on so threads holding a cached
  // ring from the previous epoch re-register instead of writing into a ring
  // the clear above already dropped.
  epoch_.fetch_add(1, std::memory_order_release);
  internal::g_tracing.store(true, std::memory_order_relaxed);
}

void TraceCollector::Stop() {
  internal::g_tracing.store(false, std::memory_order_relaxed);
}

size_t TraceCollector::total_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const RegisteredRing& entry : rings_) total += entry.ring->dropped();
  return total;
}

TraceRing& TraceCollector::ThreadRing() {
  struct Cache {
    uint64_t epoch = 0;
    std::shared_ptr<TraceRing> ring;
  };
  thread_local Cache cache;
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (cache.ring == nullptr || cache.epoch != epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    cache.ring = std::make_shared<TraceRing>(capacity_);
    cache.epoch = epoch_.load(std::memory_order_relaxed);
    rings_.push_back({static_cast<int>(rings_.size() + 1), cache.ring});
  }
  return *cache.ring;
}

std::string TraceCollector::ChromeTraceJson() const {
  // Snapshot the ring set under the lock, then read each ring through its
  // own mutex (Events()) without holding ours.
  std::vector<RegisteredRing> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings = rings_;
  }

  struct Span {
    const TraceEvent* event;
    size_t seq;
  };

  std::string out = "{\"traceEvents\":[";
  bool first_event = true;
  auto append_event = [&](const char* name, char phase, int tid,
                          uint64_t ts_ns) {
    if (!first_event) out += ',';
    first_event = false;
    char buf[64];
    out += "{\"name\":\"";
    out += JsonEscape(name == nullptr ? "" : name);
    out += "\",\"cat\":\"ivmf\",\"ph\":\"";
    out += phase;
    out += "\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%d", tid);
    out += buf;
    out += ",\"ts\":";
    // trace_event timestamps are microseconds; keep sub-µs detail as the
    // fractional part.
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(ts_ns) / 1000.0);
    out += buf;
    out += '}';
  };

  std::vector<std::vector<TraceEvent>> per_ring_events;
  per_ring_events.reserve(rings.size());
  for (const RegisteredRing& entry : rings) {
    per_ring_events.push_back(entry.ring->Events());
  }

  for (size_t r = 0; r < rings.size(); ++r) {
    const std::vector<TraceEvent>& events = per_ring_events[r];
    const int tid = rings[r].tid;
    std::vector<Span> spans;
    spans.reserve(events.size());
    for (size_t i = 0; i < events.size(); ++i) spans.push_back({&events[i], i});
    // Nesting order: outer spans (earlier start, later end) come first; seq
    // breaks ties so zero-duration siblings keep their recording order.
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      const uint64_t a_end = a.event->start_ns + a.event->duration_ns;
      const uint64_t b_end = b.event->start_ns + b.event->duration_ns;
      if (a.event->start_ns != b.event->start_ns) {
        return a.event->start_ns < b.event->start_ns;
      }
      if (a_end != b_end) return a_end > b_end;
      return a.seq < b.seq;
    });
    // Replay the call stack: before opening a span, close every open span
    // that ended at or before its start.
    std::vector<const TraceEvent*> stack;
    for (const Span& span : spans) {
      while (!stack.empty() &&
             stack.back()->start_ns + stack.back()->duration_ns <=
                 span.event->start_ns) {
        append_event(stack.back()->name, 'E', tid,
                     stack.back()->start_ns + stack.back()->duration_ns);
        stack.pop_back();
      }
      append_event(span.event->name, 'B', tid, span.event->start_ns);
      stack.push_back(span.event);
    }
    while (!stack.empty()) {
      append_event(stack.back()->name, 'E', tid,
                   stack.back()->start_ns + stack.back()->duration_ns);
      stack.pop_back();
    }
  }

  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceCollector::WriteChromeTrace(const std::string& path) const {
  const std::string json = ChromeTraceJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = written == json.size() && std::fclose(file) == 0;
  if (!ok && written != json.size()) std::fclose(file);
  return ok;
}

// -- TraceSpan ---------------------------------------------------------------

uint64_t TraceSpan::NowNs() { return SteadyNowNs(); }

void TraceSpan::Finish() {
  const uint64_t end_ns = NowNs();
  TraceCollector& collector = TraceCollector::Global();
  const uint64_t base = collector.base_ns_.load(std::memory_order_relaxed);
  // A span that straddled Start() has a pre-rebase timestamp; clamp it to
  // the epoch origin rather than emitting a wrapped unsigned difference.
  const uint64_t start = start_ns_ > base ? start_ns_ - base : 0;
  const uint64_t end = end_ns > base ? end_ns - base : 0;
  collector.ThreadRing().Record(
      TraceEvent{name_, start, end > start ? end - start : 0});
}

}  // namespace ivmf::obs
