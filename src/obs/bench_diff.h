// Perf-regression comparison of two BENCH_*.json files, the library behind
// tools/ivmf_bench_diff.cc and the CI perf gate.
//
// Every bench in bench/ emits a flat JSON array of records (one per
// measured row; see bench_util.h JsonWriter). This module parses that
// shape, pairs baseline records with candidate records by their identity
// fields (workload shape: bench, name, strategy, users, ... — everything
// that describes WHAT ran), and compares the measurement fields
// (everything that describes HOW FAST it ran) under a relative noise
// tolerance with a per-metric direction:
//
//   lower is better    *seconds*, *_ns, *_us (latencies, wall clock)
//   higher is better   *per_second, *throughput*, speedup, warm_hit_rate
//
// Other numeric fields (counters like matvecs or krylov_iterations, and
// max_* extremes, which are single-sample scheduler noise) carry no
// direction — a change is reported informationally, never a failure,
// because more iterations with less wall clock is not a regression.
//
// Tiny absolute times are noise-dominated regardless of relative
// tolerance, so comparisons where both sides sit below `min_seconds`
// (after unit normalization) are skipped.

#ifndef IVMF_OBS_BENCH_DIFF_H_
#define IVMF_OBS_BENCH_DIFF_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ivmf::obs {

// One scalar from a flat bench record. Strings and booleans identify the
// row; numbers are candidates for comparison.
struct BenchValue {
  enum class Kind { kNumber, kString, kBool, kNull };
  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string text;
  bool boolean = false;
};

using BenchRecord = std::map<std::string, BenchValue>;

// Parses a JSON array of flat objects (string / number / bool / null
// values only — the JsonWriter shape). Returns nullopt and fills *error on
// malformed input or nested structure.
std::optional<std::vector<BenchRecord>> ParseBenchRecords(
    const std::string& json, std::string* error);

// Reads and parses one BENCH_*.json file.
std::optional<std::vector<BenchRecord>> LoadBenchRecords(
    const std::string& path, std::string* error);

struct BenchDiffOptions {
  // Relative slack before a directed metric counts as a regression:
  // lower-is-better fails when candidate > baseline * (1 + tolerance),
  // higher-is-better when candidate < baseline / (1 + tolerance).
  double tolerance = 0.5;
  // Time measurements where BOTH sides are under this many seconds are
  // skipped (sub-millisecond timings are scheduler noise).
  double min_seconds = 1e-3;
  // Fail when a baseline record has no candidate with the same identity
  // (default: report informationally — CI gates run reduced configs).
  bool require_all = false;
};

enum class DiffStatus {
  kOk,          // within tolerance (or improved)
  kRegression,  // directed metric moved past the tolerance
  kSkipped,     // below the noise floor
  kInfo,        // undirected metric changed (never a failure)
};

struct MetricDiff {
  std::string record_key;  // identity, "k=v ..." joined
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  double ratio = 0.0;  // candidate / baseline (0 when baseline == 0)
  DiffStatus status = DiffStatus::kOk;
};

struct BenchDiffReport {
  std::vector<MetricDiff> diffs;
  std::vector<std::string> missing_records;  // identities absent in candidate
  size_t compared_records = 0;

  bool HasRegression() const;
  size_t regressions() const;
};

// Identity string for one record: its string/bool fields plus the integer
// shape fields, "k=v" joined in key order.
std::string BenchRecordKey(const BenchRecord& record);

// True when `metric` is compared with a direction; *lower_is_better set.
bool MetricDirection(const std::string& metric, bool* lower_is_better);

BenchDiffReport DiffBenchRecords(const std::vector<BenchRecord>& baseline,
                                 const std::vector<BenchRecord>& candidate,
                                 const BenchDiffOptions& options = {});

}  // namespace ivmf::obs

#endif  // IVMF_OBS_BENCH_DIFF_H_
