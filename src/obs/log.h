// Structured leveled logging: one JSON object per line on stderr plus a
// fixed-capacity in-memory ring that the /logz introspection endpoint
// serves, replacing the ad-hoc fprintf diagnostics the tools and subsystems
// used to scatter.
//
// A log call renders eagerly into a LogRecord — level, steady-clock
// timestamp, component, message, and an ordered list of key/value fields —
// and hands it to both sinks:
//
//   stderr   {"ts":12.345678,"level":"info","component":"serve",
//             "msg":"epoch published","epoch":17}
//            (one line, RFC 8259 — parseable by any log shipper; disable
//            with SetLogStderr(false) when a harness owns stderr)
//   ring     overwrite-oldest buffer of the most recent records, exported
//            as a JSON array by LogRing::ToJson() for /logz
//
// Levels follow the usual ladder (debug < info < warn < error); records
// below the minimum level are dropped before rendering. The minimum
// defaults to info and can be set programmatically (SetMinLogLevel) or by
// launching with IVMF_LOG=debug|info|warn|error|off.
//
// Field values are rendered at the call site via the LogField constructor
// overloads (string, integer, double, bool), so the record is just strings
// and the sink never needs a variant. Logging is thread-safe: the ring
// takes one mutex per record, stderr lines are written with a single
// fwrite so concurrent writers cannot interleave mid-line. Log sites sit
// on cold paths (errors, refresh summaries, startup banners) — never in
// per-row kernels.

#ifndef IVMF_OBS_LOG_H_
#define IVMF_OBS_LOG_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ivmf::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

// "debug" / "info" / "warn" / "error".
const char* LogLevelName(LogLevel level);
// Parses a level name (as accepted by IVMF_LOG); false on no match.
bool ParseLogLevel(std::string_view text, LogLevel* out);

// Records below this level are dropped. IVMF_LOG=off maps to a minimum
// above every level, muting the logger entirely.
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);
// Whether records are mirrored to stderr (default true). The ring always
// records — tests and /logz read it regardless of the stderr sink.
void SetLogStderr(bool enabled);

// One key/value pair, value pre-rendered at the call site. `quoted`
// distinguishes JSON strings from bare numbers/booleans.
struct LogField {
  LogField(std::string k, const char* v)
      : key(std::move(k)), value(v), quoted(true) {}
  LogField(std::string k, std::string_view v)
      : key(std::move(k)), value(v), quoted(true) {}
  LogField(std::string k, const std::string& v)
      : key(std::move(k)), value(v), quoted(true) {}
  LogField(std::string k, double v);
  LogField(std::string k, int v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  LogField(std::string k, long v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  LogField(std::string k, long long v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  LogField(std::string k, unsigned v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  LogField(std::string k, unsigned long v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  LogField(std::string k, unsigned long long v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  LogField(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false"), quoted(false) {}

  std::string key;
  std::string value;
  bool quoted;
};

struct LogRecord {
  double ts_seconds = 0.0;  // steady clock, relative to process start
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
  std::vector<LogField> fields;

  // The record as one JSON object (no trailing newline).
  std::string ToJson() const;
};

// Overwrite-oldest buffer of the most recent records.
class LogRing {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  static LogRing& Global();

  explicit LogRing(size_t capacity = kDefaultCapacity);

  void Record(LogRecord record);

  // Retained records oldest-first.
  std::vector<LogRecord> Records() const;
  // {"dropped": N, "records": [...]} — the /logz payload.
  std::string ToJson() const;

  size_t capacity() const { return capacity_; }
  // Records overwritten since construction / the last Clear().
  size_t dropped() const;
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<LogRecord> records_;
  size_t dropped_ = 0;
};

// Renders and emits one record to the global ring and (when enabled)
// stderr. Below-minimum levels return immediately.
void Log(LogLevel level, std::string_view component, std::string_view message,
         std::vector<LogField> fields = {});

inline void LogDebug(std::string_view component, std::string_view message,
                     std::vector<LogField> fields = {}) {
  Log(LogLevel::kDebug, component, message, std::move(fields));
}
inline void LogInfo(std::string_view component, std::string_view message,
                    std::vector<LogField> fields = {}) {
  Log(LogLevel::kInfo, component, message, std::move(fields));
}
inline void LogWarn(std::string_view component, std::string_view message,
                    std::vector<LogField> fields = {}) {
  Log(LogLevel::kWarn, component, message, std::move(fields));
}
inline void LogError(std::string_view component, std::string_view message,
                     std::vector<LogField> fields = {}) {
  Log(LogLevel::kError, component, message, std::move(fields));
}

}  // namespace ivmf::obs

#endif  // IVMF_OBS_LOG_H_
