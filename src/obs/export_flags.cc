#include "obs/export_flags.h"

#include <cstdio>
#include <cstdlib>

#include "base/flags.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ivmf::obs {

ObsCliOptions ParseObsCliOptions(int argc, char** argv) {
  ObsCliOptions options;
  options.metrics_json_path = StringFlag(argc, argv, "metrics-json", "");
  options.trace_path = StringFlag(argc, argv, "trace", "");
  const std::string port = StringFlag(argc, argv, "http_port", "");
  if (!port.empty()) {
    options.http_requested = true;
    options.http_port = std::atoi(port.c_str());
  }
  options.stall_seconds = DoubleFlag(argc, argv, "stall_seconds", 10.0);
  return options;
}

void StartObsCollection(const ObsCliOptions& options) {
  if (!options.trace_path.empty()) TraceCollector::Global().Start();
}

bool WriteStringToFile(const std::string& path, const std::string& contents) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const bool ok =
      std::fwrite(contents.data(), 1, contents.size(), out) == contents.size();
  return (std::fclose(out) == 0) && ok;
}

bool WriteObsOutputs(const ObsCliOptions& options) {
  bool ok = true;
  if (!options.metrics_json_path.empty()) {
    const std::string json = MetricsRegistry::Global().Snapshot().ToJson();
    if (WriteStringToFile(options.metrics_json_path, json)) {
      LogInfo("obs", "wrote metrics snapshot",
              {{"path", options.metrics_json_path}});
    } else {
      LogError("obs", "failed writing metrics snapshot",
               {{"path", options.metrics_json_path}});
      ok = false;
    }
  }
  if (!options.trace_path.empty()) {
    TraceCollector& collector = TraceCollector::Global();
    collector.Stop();
    if (collector.WriteChromeTrace(options.trace_path)) {
      LogInfo("obs", "wrote chrome trace",
              {{"path", options.trace_path},
               {"dropped_spans", collector.total_dropped()}});
    } else {
      LogError("obs", "failed writing trace", {{"path", options.trace_path}});
      ok = false;
    }
  }
  return ok;
}

}  // namespace ivmf::obs
