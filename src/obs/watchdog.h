// Liveness watchdog behind the /healthz endpoint: a heartbeat timestamp,
// a stall threshold, and an optional busy probe.
//
// The watched component calls Beat() whenever it makes observable progress
// — the serving layer beats on every snapshot publication — and health
// degrades from ok to stalled when no beat lands for `stall_seconds`.
// Because a quiet system is not a stuck one (the serving writer sleeps
// until ratings arrive), an optional `busy` probe gates the verdict: when
// the probe says there is no work in flight, a stale heartbeat keeps
// reporting ok. With the probe wired to "pending cells > 0", stalled means
// exactly what an operator wants it to mean: work is queued and the writer
// has not published for a full threshold.
//
// The clock is injectable (seconds, monotonic) so tests drive stall
// transitions deterministically; the default reads the process steady
// clock. Beat() and health() are safe from any thread.
//
// Every Beat() bumps the `watchdog.beats` counter and refreshes the
// `watchdog.heartbeat.seconds` gauge (beat time on the process clock);
// health() keeps the `watchdog.age.seconds` gauge current, so a scrape of
// /metrics carries the same liveness signal /healthz serves.

#ifndef IVMF_OBS_WATCHDOG_H_
#define IVMF_OBS_WATCHDOG_H_

#include <atomic>
#include <functional>
#include <string>

namespace ivmf::obs {

struct WatchdogOptions {
  // No beat for this long (while busy) => stalled.
  double stall_seconds = 10.0;
  // Monotonic clock in seconds; tests substitute a fake. Null uses the
  // process steady clock.
  std::function<double()> clock;
  // When set and returning false, the component is idle and a stale
  // heartbeat is not a stall. Null means always busy (strict mode).
  std::function<bool()> busy;
};

class Watchdog {
 public:
  enum class Health { kOk, kStalled };

  explicit Watchdog(WatchdogOptions options = {});

  // Records progress now. Construction counts as the first beat, so a
  // freshly started component is healthy until a full threshold passes.
  void Beat();

  Health health() const;
  double SecondsSinceBeat() const;
  uint64_t beats() const { return beats_.load(std::memory_order_relaxed); }
  double stall_seconds() const { return options_.stall_seconds; }

  // {"status":"ok"|"stalled","seconds_since_heartbeat":...,
  //  "stall_threshold_seconds":...,"beats":...} — the /healthz payload.
  std::string StatusJson() const;

 private:
  double Now() const;

  WatchdogOptions options_;
  std::atomic<double> last_beat_;
  std::atomic<uint64_t> beats_{0};
};

const char* WatchdogHealthName(Watchdog::Health health);

}  // namespace ivmf::obs

#endif  // IVMF_OBS_WATCHDOG_H_
