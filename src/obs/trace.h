// Span tracing: RAII spans recorded into per-thread ring buffers and
// exported as Chrome trace_event JSON (load the file in chrome://tracing or
// https://ui.perfetto.dev to see where refresh time goes).
//
// A TraceSpan stamps the steady clock at construction and, at destruction,
// appends one completed span (name, start, duration) to its thread's ring.
// Rings are fixed-capacity and overwrite their oldest spans, so a long run
// keeps the most recent window instead of growing without bound; because
// spans on one thread nest like the call stack, any subset of them still
// nests properly and the export below stays well-formed after wraparound.
//
// Collection is off by default: until TraceCollector::Start() runs, a span
// constructor performs a single relaxed load and nothing else — the same
// disabled-path guarantee the metrics instruments make. Rings take one
// uncontended mutex per completed span (owner thread vs. exporter only),
// which is noise at span granularity (refreshes, solves, drains — never
// per-row work).
//
// The exported JSON uses balanced "B"/"E" (duration begin/end) event pairs
// per thread, reconstructed from the completed spans, so the file is valid
// for any consumer that replays stack semantics.

#ifndef IVMF_OBS_TRACE_H_
#define IVMF_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ivmf::obs {

namespace internal {
extern std::atomic<bool> g_tracing;
}  // namespace internal

// True between TraceCollector::Start() and Stop(); one relaxed load.
inline bool TracingActive() {
  return internal::g_tracing.load(std::memory_order_relaxed);
}

// One completed span. `name` must point at storage outliving the collector
// (string literals in practice — every in-tree span site uses one).
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;  // steady clock, relative to collection start
  uint64_t duration_ns = 0;
};

// Fixed-capacity overwrite-oldest span buffer owned by one writer thread.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity) : capacity_(capacity) {
    events_.reserve(capacity);
  }

  void Record(const TraceEvent& event);

  // Retained spans, oldest first (recording order == span-end order).
  std::vector<TraceEvent> Events() const;

  size_t dropped() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;  // ring storage
  size_t next_ = 0;                 // overwrite cursor once full
  size_t dropped_ = 0;
};

// Process-wide collection point for every thread's ring.
class TraceCollector {
 public:
  static TraceCollector& Global();

  // Begins a fresh collection epoch: clears previously collected spans,
  // re-bases timestamps at "now", and flips spans on. `ring_capacity` is
  // per thread (spans, not bytes).
  void Start(size_t ring_capacity = 1 << 14);

  // Flips spans off. Collected spans stay readable until the next Start().
  void Stop();

  // Chrome trace_event JSON of everything collected: one "B"/"E" pair per
  // span, per-thread, nesting-ordered. Returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;
  std::string ChromeTraceJson() const;

  // Spans overwritten because rings wrapped, summed over threads.
  size_t total_dropped() const;

  // The calling thread's ring for the current epoch (registering it first
  // if needed). Span destructors use this; callers never need it directly.
  TraceRing& ThreadRing();

 private:
  TraceCollector() = default;

  struct RegisteredRing {
    int tid;
    std::shared_ptr<TraceRing> ring;
  };

  mutable std::mutex mu_;  // guards rings_/capacity_; epoch_ is atomic
  std::vector<RegisteredRing> rings_;
  size_t capacity_ = 1 << 14;
  std::atomic<uint64_t> epoch_{0};  // bumped by Start() to invalidate caches
  std::atomic<uint64_t> base_ns_{0};

  friend class TraceSpan;
};

// RAII span. Construct with a string literal; the span covers the object's
// lifetime. Inactive collection => one relaxed load in the constructor and
// one in the destructor.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!TracingActive()) return;
    name_ = name;
    start_ns_ = NowNs();
  }
  ~TraceSpan() {
    if (name_ == nullptr || !TracingActive()) return;
    Finish();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static uint64_t NowNs();
  void Finish();

  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace ivmf::obs

#endif  // IVMF_OBS_TRACE_H_
