#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace ivmf::obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

// One connection's lifecycle: accumulate the request until the blank line,
// then drain the rendered response and close.
struct Connection {
  int fd = -1;
  std::string request;
  std::string response;
  size_t written = 0;
  bool responding = false;
};

// "GET /metrics HTTP/1.1" -> method and path (query string stripped).
// False when the request line is not even shaped like HTTP.
bool ParseRequestLine(const std::string& request, std::string* method,
                      std::string* path) {
  const size_t line_end = request.find("\r\n");
  const std::string line =
      request.substr(0, line_end == std::string::npos ? request.find('\n')
                                                      : line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  *method = line.substr(0, sp1);
  *path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path->find('?');
  if (query != std::string::npos) path->resize(query);
  return !method->empty() && !path->empty() && (*path)[0] == '/';
}

std::string RenderResponse(const HttpExporter::Response& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace

HttpExporter::HttpExporter(HttpExporterOptions options)
    : options_(std::move(options)) {}

HttpExporter::~HttpExporter() { Stop(); }

bool HttpExporter::Start() {
  if (running()) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    LogError("http", "socket() failed", {{"errno", errno}});
    return false;
  }
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    LogError("http", "bad bind address", {{"address", options_.bind_address}});
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, options_.max_connections) != 0) {
    LogError("http", "bind/listen failed",
             {{"address", options_.bind_address},
              {"port", static_cast<unsigned>(options_.port)},
              {"errno", errno}});
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  } else {
    port_.store(options_.port, std::memory_order_release);
  }

  if (::pipe(wake_fds_) != 0 || !SetNonBlocking(listen_fd_) ||
      !SetNonBlocking(wake_fds_[0])) {
    LogError("http", "pipe/nonblock setup failed", {{"errno", errno}});
    ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : wake_fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    return false;
  }

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  LogInfo("http", "exporter listening",
          {{"address", options_.bind_address},
           {"port", static_cast<unsigned>(port())}});
  return true;
}

void HttpExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake the poll loop; it observes running_ == false and exits.
  const char byte = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_fds_) {
    ::close(fd);
    fd = -1;
  }
}

HttpExporter::Response HttpExporter::Handle(const std::string& method,
                                            const std::string& path) const {
  Response response;
  if (method != "GET") {
    response.status = 405;
    response.body = "method not allowed\n";
    return response;
  }
  if (path == "/metrics") {
    response.body = MetricsRegistry::Global().Snapshot().ToPrometheusText();
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/metrics.json") {
    response.body = MetricsRegistry::Global().Snapshot().ToJson();
    response.content_type = "application/json";
  } else if (path == "/tracez") {
    response.body = TraceCollector::Global().ChromeTraceJson();
    response.content_type = "application/json";
  } else if (path == "/logz") {
    response.body = LogRing::Global().ToJson();
    response.content_type = "application/json";
  } else if (path == "/healthz") {
    if (options_.watchdog == nullptr) {
      response.body = "{\"status\":\"ok\"}";
    } else {
      if (options_.watchdog->health() != Watchdog::Health::kOk) {
        response.status = 503;
      }
      response.body = options_.watchdog->StatusJson();
    }
    response.content_type = "application/json";
  } else if (path == "/") {
    response.body =
        "ivmf introspection endpoints:\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  metrics snapshot as JSON\n"
        "  /tracez        Chrome trace_event snapshot\n"
        "  /logz          structured log ring\n"
        "  /healthz       liveness (200 ok / 503 stalled)\n";
  } else {
    response.status = 404;
    response.body = "not found\n";
  }
  return response;
}

void HttpExporter::Loop() {
  std::vector<Connection> connections;

  while (running_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({wake_fds_[0], POLLIN, 0});
    const bool accepting =
        connections.size() < static_cast<size_t>(options_.max_connections);
    fds.push_back({accepting ? listen_fd_ : -1, POLLIN, 0});
    for (const Connection& connection : connections) {
      fds.push_back({connection.fd,
                     static_cast<short>(connection.responding ? POLLOUT
                                                              : POLLIN),
                     0});
    }

    if (::poll(fds.data(), fds.size(), /*timeout_ms=*/1000) < 0) {
      if (errno == EINTR) continue;
      LogError("http", "poll failed", {{"errno", errno}});
      break;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }

    // Connections mirrored in this iteration's pollfd set; ones accepted
    // below have no revents yet and wait for the next poll round.
    const size_t tracked = connections.size();

    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) break;
        if (!SetNonBlocking(client) ||
            connections.size() >=
                static_cast<size_t>(options_.max_connections)) {
          ::close(client);
          continue;
        }
        Connection connection;
        connection.fd = client;
        connections.push_back(std::move(connection));
      }
    }

    // fds[2 + i] mirrors connections[i] for i < tracked; iterate backwards
    // so erase is index-stable.
    for (size_t i = tracked; i-- > 0;) {
      Connection& connection = connections[i];
      const short revents = fds[2 + i].revents;
      bool close_connection = false;

      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          !connection.responding) {
        close_connection = true;
      } else if (!connection.responding && (revents & POLLIN) != 0) {
        char buffer[2048];
        bool peer_closed = false;
        for (;;) {
          const ssize_t n = ::read(connection.fd, buffer, sizeof(buffer));
          if (n > 0) {
            connection.request.append(buffer, static_cast<size_t>(n));
            if (connection.request.size() > kMaxRequestBytes) break;
            continue;
          }
          if (n == 0) peer_closed = true;
          break;
        }
        const bool complete =
            connection.request.find("\r\n\r\n") != std::string::npos ||
            connection.request.find("\n\n") != std::string::npos;
        if (peer_closed && !complete) close_connection = true;
        if (connection.request.size() > kMaxRequestBytes) {
          connection.response = RenderResponse(
              {400, "text/plain; charset=utf-8", "request too large\n"});
          connection.responding = true;
        } else if (complete) {
          std::string method, path;
          Response response;
          if (ParseRequestLine(connection.request, &method, &path)) {
            response = Handle(method, path);
          } else {
            response = {400, "text/plain; charset=utf-8", "bad request\n"};
          }
          connection.response = RenderResponse(response);
          connection.responding = true;
        }
      }

      if (connection.responding && !close_connection) {
        while (connection.written < connection.response.size()) {
          const ssize_t n = ::write(
              connection.fd, connection.response.data() + connection.written,
              connection.response.size() - connection.written);
          if (n > 0) {
            connection.written += static_cast<size_t>(n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          close_connection = true;  // peer vanished mid-response
          break;
        }
        if (connection.written == connection.response.size()) {
          close_connection = true;  // Connection: close — done
        }
      }

      if (close_connection) {
        ::close(connection.fd);
        connections.erase(connections.begin() +
                          static_cast<ptrdiff_t>(i));
      }
    }
  }

  for (const Connection& connection : connections) ::close(connection.fd);
}

}  // namespace ivmf::obs
