#include "obs/bench_diff.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ivmf::obs {

namespace {

// -- Flat-record JSON parsing -------------------------------------------------
//
// A deliberately narrow parser: the JsonWriter emits arrays of one-level
// objects with scalar values, and that is all this accepts. Structure it
// does not understand is an error, not a silent skip — a perf gate must
// not pass because it failed to read its input.

struct Cursor {
  const std::string& text;
  size_t pos = 0;
  std::string* error;

  bool Fail(const std::string& why) {
    if (error != nullptr && error->empty()) {
      *error = why + " at offset " + std::to_string(pos);
    }
    return false;
  }
  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  char Peek() {
    SkipWs();
    return pos < text.size() ? text[pos] : '\0';
  }
};

bool ParseJsonString(Cursor& cur, std::string* out) {
  if (!cur.Consume('"')) return cur.Fail("expected string");
  out->clear();
  while (cur.pos < cur.text.size()) {
    const char c = cur.text[cur.pos];
    if (c == '"') {
      ++cur.pos;
      return true;
    }
    if (c == '\\') {
      ++cur.pos;
      if (cur.pos >= cur.text.size()) return cur.Fail("truncated escape");
      const char e = cur.text[cur.pos];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (cur.pos + 4 >= cur.text.size()) {
            return cur.Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 1; i <= 4; ++i) {
            const char h = cur.text[cur.pos + static_cast<size_t>(i)];
            if (std::isxdigit(static_cast<unsigned char>(h)) == 0) {
              return cur.Fail("bad \\u escape");
            }
            code = code * 16 +
                   static_cast<unsigned>(
                       std::isdigit(static_cast<unsigned char>(h))
                           ? h - '0'
                           : std::tolower(static_cast<unsigned char>(h)) -
                                 'a' + 10);
          }
          // Bench records are ASCII; anything else keeps a placeholder.
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          cur.pos += 4;
          break;
        }
        default:
          return cur.Fail("bad escape character");
      }
      ++cur.pos;
      continue;
    }
    out->push_back(c);
    ++cur.pos;
  }
  return cur.Fail("unterminated string");
}

bool ParseScalar(Cursor& cur, BenchValue* out) {
  const char c = cur.Peek();
  if (c == '"') {
    out->kind = BenchValue::Kind::kString;
    return ParseJsonString(cur, &out->text);
  }
  if (c == 't' || c == 'f') {
    const bool value = c == 't';
    const char* literal = value ? "true" : "false";
    const size_t len = std::strlen(literal);
    if (cur.text.compare(cur.pos, len, literal) != 0) {
      return cur.Fail("bad literal");
    }
    cur.pos += len;
    out->kind = BenchValue::Kind::kBool;
    out->boolean = value;
    return true;
  }
  if (c == 'n') {
    if (cur.text.compare(cur.pos, 4, "null") != 0) {
      return cur.Fail("bad literal");
    }
    cur.pos += 4;
    out->kind = BenchValue::Kind::kNull;
    return true;
  }
  if (c == '{' || c == '[') {
    return cur.Fail("nested structure in flat bench record");
  }
  char* end = nullptr;
  const double value = std::strtod(cur.text.c_str() + cur.pos, &end);
  if (end == cur.text.c_str() + cur.pos) return cur.Fail("expected value");
  cur.pos = static_cast<size_t>(end - cur.text.c_str());
  out->kind = BenchValue::Kind::kNumber;
  out->number = value;
  return true;
}

bool ParseRecord(Cursor& cur, BenchRecord* out) {
  if (!cur.Consume('{')) return cur.Fail("expected '{'");
  if (cur.Peek() == '}') {
    ++cur.pos;
    return true;
  }
  for (;;) {
    std::string key;
    cur.SkipWs();
    if (!ParseJsonString(cur, &key)) return false;
    if (!cur.Consume(':')) return cur.Fail("expected ':'");
    BenchValue value;
    if (!ParseScalar(cur, &value)) return false;
    (*out)[key] = std::move(value);
    if (cur.Consume('}')) return true;
    if (!cur.Consume(',')) return cur.Fail("expected ',' or '}'");
  }
}

}  // namespace

std::optional<std::vector<BenchRecord>> ParseBenchRecords(
    const std::string& json, std::string* error) {
  Cursor cur{json, 0, error};
  std::vector<BenchRecord> records;
  if (!cur.Consume('[')) {
    cur.Fail("expected top-level array");
    return std::nullopt;
  }
  if (cur.Consume(']')) {
    cur.SkipWs();
    if (cur.pos != json.size()) {
      cur.Fail("trailing characters");
      return std::nullopt;
    }
    return records;
  }
  for (;;) {
    BenchRecord record;
    if (!ParseRecord(cur, &record)) return std::nullopt;
    records.push_back(std::move(record));
    if (cur.Consume(']')) break;
    if (!cur.Consume(',')) {
      cur.Fail("expected ',' or ']'");
      return std::nullopt;
    }
  }
  cur.SkipWs();
  if (cur.pos != json.size()) {
    cur.Fail("trailing characters");
    return std::nullopt;
  }
  return records;
}

std::optional<std::vector<BenchRecord>> LoadBenchRecords(
    const std::string& path, std::string* error) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(in);
  return ParseBenchRecords(contents, error);
}

// -- Comparison ---------------------------------------------------------------

namespace {

// Numeric fields that describe the workload shape rather than a
// measurement; together with every string field they form the record
// identity. Outcome-ish fields (kernel, warm) are deliberately NOT
// identity: a kernel falling back to scalar should surface as a metric
// change on the same row, not as a missing record.
const char* const kNumericIdentityFields[] = {
    "users", "items", "rank", "strategy", "batch", "readers", "topk",
};

bool IsNumericIdentity(const std::string& key) {
  for (const char* field : kNumericIdentityFields) {
    if (key == field) return true;
  }
  return false;
}

bool IsStringIdentity(const std::string& key) {
  return key == "bench" || key == "name" || key == "op";
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

// Seconds-equivalent of a time metric for the noise floor; nullopt for
// non-time metrics (no floor applies).
std::optional<double> AsSeconds(const std::string& metric, double value) {
  if (EndsWith(metric, "_ns")) return value * 1e-9;
  if (EndsWith(metric, "_us")) return value * 1e-6;
  if (EndsWith(metric, "_ms")) return value * 1e-3;
  if (metric.find("seconds") != std::string::npos) return value;
  return std::nullopt;
}

std::string FormatValue(const BenchValue& value) {
  switch (value.kind) {
    case BenchValue::Kind::kString:
      return value.text;
    case BenchValue::Kind::kBool:
      return value.boolean ? "true" : "false";
    case BenchValue::Kind::kNull:
      return "null";
    case BenchValue::Kind::kNumber: {
      char buffer[48];
      // Integral shape values print bare so keys read "users=2000".
      if (value.number == static_cast<double>(
                              static_cast<long long>(value.number))) {
        std::snprintf(buffer, sizeof(buffer), "%lld",
                      static_cast<long long>(value.number));
      } else {
        std::snprintf(buffer, sizeof(buffer), "%.9g", value.number);
      }
      return buffer;
    }
  }
  return "";
}

}  // namespace

std::string BenchRecordKey(const BenchRecord& record) {
  std::string key;
  for (const auto& [field, value] : record) {
    const bool identity =
        (value.kind == BenchValue::Kind::kString && IsStringIdentity(field)) ||
        (value.kind == BenchValue::Kind::kNumber && IsNumericIdentity(field));
    if (!identity) continue;
    if (!key.empty()) key += ' ';
    key += field + "=" + FormatValue(value);
  }
  return key;
}

bool MetricDirection(const std::string& metric, bool* lower_is_better) {
  // A max is one extreme sample — pure scheduling noise on a shared CI
  // runner — so it carries no direction even when it is a time.
  if (metric == "max" || metric.rfind("max_", 0) == 0) return false;
  if (EndsWith(metric, "per_second") ||
      metric.find("throughput") != std::string::npos || metric == "speedup" ||
      metric == "warm_hit_rate") {
    *lower_is_better = false;
    return true;
  }
  if (metric.find("seconds") != std::string::npos || EndsWith(metric, "_ns") ||
      EndsWith(metric, "_us") || EndsWith(metric, "_ms")) {
    *lower_is_better = true;
    return true;
  }
  // Memory footprint (bench_util's WriteMemoryFields record): growth is a
  // regression exactly like time.
  if (metric == "peak_rss_bytes" || metric == "mapped_bytes" ||
      EndsWith(metric, "_rss_bytes") || EndsWith(metric, "mapped_bytes")) {
    *lower_is_better = true;
    return true;
  }
  return false;
}

bool BenchDiffReport::HasRegression() const { return regressions() > 0; }

size_t BenchDiffReport::regressions() const {
  size_t count = 0;
  for (const MetricDiff& diff : diffs) {
    if (diff.status == DiffStatus::kRegression) ++count;
  }
  return count;
}

BenchDiffReport DiffBenchRecords(const std::vector<BenchRecord>& baseline,
                                 const std::vector<BenchRecord>& candidate,
                                 const BenchDiffOptions& options) {
  BenchDiffReport report;

  // Pair by identity; duplicate identities (repeated trials) pair in file
  // order.
  std::map<std::string, std::vector<const BenchRecord*>> candidates;
  for (const BenchRecord& record : candidate) {
    candidates[BenchRecordKey(record)].push_back(&record);
  }
  std::map<std::string, size_t> used;

  for (const BenchRecord& base : baseline) {
    const std::string key = BenchRecordKey(base);
    auto it = candidates.find(key);
    const size_t index = used[key]++;
    if (it == candidates.end() || index >= it->second.size()) {
      report.missing_records.push_back(key);
      continue;
    }
    const BenchRecord& cand = *it->second[index];
    ++report.compared_records;

    for (const auto& [metric, base_value] : base) {
      if (base_value.kind != BenchValue::Kind::kNumber) continue;
      if (IsNumericIdentity(metric)) continue;
      const auto cand_it = cand.find(metric);
      if (cand_it == cand.end() ||
          cand_it->second.kind != BenchValue::Kind::kNumber) {
        continue;  // compare the overlap only
      }
      const double base_number = base_value.number;
      const double cand_number = cand_it->second.number;

      MetricDiff diff;
      diff.record_key = key;
      diff.metric = metric;
      diff.baseline = base_number;
      diff.candidate = cand_number;
      diff.ratio = base_number != 0.0 ? cand_number / base_number : 0.0;

      bool lower_is_better = false;
      if (!MetricDirection(metric, &lower_is_better)) {
        if (base_number != cand_number) {
          diff.status = DiffStatus::kInfo;
          report.diffs.push_back(diff);
        }
        continue;
      }

      // Noise floor: a timing where both sides are tiny carries no signal.
      const std::optional<double> base_seconds = AsSeconds(metric, base_number);
      const std::optional<double> cand_seconds = AsSeconds(metric, cand_number);
      if (base_seconds.has_value() && cand_seconds.has_value() &&
          *base_seconds < options.min_seconds &&
          *cand_seconds < options.min_seconds) {
        diff.status = DiffStatus::kSkipped;
        report.diffs.push_back(diff);
        continue;
      }
      if (base_number <= 0.0) {
        // No meaningful relative comparison against a zero baseline.
        diff.status = DiffStatus::kSkipped;
        report.diffs.push_back(diff);
        continue;
      }

      const bool regressed =
          lower_is_better
              ? cand_number > base_number * (1.0 + options.tolerance)
              : cand_number < base_number / (1.0 + options.tolerance);
      diff.status = regressed ? DiffStatus::kRegression : DiffStatus::kOk;
      report.diffs.push_back(diff);
    }
  }

  if (options.require_all && !report.missing_records.empty()) {
    for (const std::string& key : report.missing_records) {
      MetricDiff diff;
      diff.record_key = key;
      diff.metric = "<record missing in candidate>";
      diff.status = DiffStatus::kRegression;
      report.diffs.push_back(diff);
    }
  }

  return report;
}

}  // namespace ivmf::obs
