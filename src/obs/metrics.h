// Process-wide observability: named, tagged instruments behind a single
// registry, built so the instrumented hot paths (Lanczos iterations, sparse
// matvec kernels, streaming refreshes, the serving loop) pay near nothing.
//
// Three instrument kinds:
//   Counter    monotone relaxed-atomic event count (matvecs, iterations)
//   Gauge      last-written double (queue depth, convergence residual)
//   Histogram  lock-free log-bucketed value distribution with nearest-rank
//              percentiles (latencies, batch sizes)
//
// Every mutation first takes one relaxed load of the process-wide enable
// flag (obs::Enabled); with observability off, that load IS the entire cost
// of an instrumented call site. The flag defaults to on — an enabled
// counter bump is one relaxed fetch_add, invisible next to the O(nnz) work
// it counts — and can be cleared either programmatically (SetEnabled) or by
// launching with IVMF_OBS=0/off/false in the environment (how benches
// measure their own instrumentation overhead).
//
// Instruments are created through MetricsRegistry::Global() and live for
// the process: a returned reference never dangles, so hot paths cache it in
// a function-local static and touch the registry mutex exactly once.
// Identity is name + tag set; the same key always returns the same
// instrument. Naming scheme (see README "Observability"): dotted lowercase
// "<subsystem>.<object>.<measure>", units spelled out in the final segment
// (".seconds", ".cells"), variants as tags rather than name suffixes, e.g.
//   sparse.matvec.calls{kernel=multiply}
//   streaming.refresh.seconds{mode=warm}
//
// All instruments are safe for concurrent mutation from any thread and are
// exercised under ThreadSanitizer (tests/obs_concurrency_test.cc).

#ifndef IVMF_OBS_METRICS_H_
#define IVMF_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/stopwatch.h"

namespace ivmf::obs {

namespace internal {
// Constant-initialized so Enabled() needs no static-init guard; metrics.cc
// applies the IVMF_OBS environment override during dynamic initialization.
extern std::atomic<bool> g_enabled;
}  // namespace internal

// The process-wide master switch. Disabled => every instrument mutation
// returns after this one relaxed load.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

// -- Instruments -------------------------------------------------------------

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!Enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written double value (Set) with an accumulate variant (Add).
class Gauge {
 public:
  void Set(double v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(double d);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Lock-free log-bucketed histogram over positive doubles.
//
// Buckets split each power-of-two octave of the value range into
// kSubBuckets linear sub-buckets, so a bucket's representative (its center)
// is within kMaxRelativeError of every value it absorbed. Percentile()
// keeps the nearest-rank convention of the old LatencyRecorder — the
// ceil(p/100 * count)-th smallest sample — but answers from the buckets, so
// interior percentiles carry the bucket's relative error while p = 0 and
// p = 100 return the exactly-tracked min / max. Values <= 0 (or below the
// tiny-value floor) land in a dedicated underflow bucket whose
// representative is the tracked minimum.
//
// Record is wait-free: one bucket fetch_add plus CAS loops on the exact
// sum / min / max cells. Readers (Percentile, count, sum) use relaxed loads
// and may observe a mid-update mixture under concurrency; aggregate after
// the writers quiesce when exact totals matter, exactly like the per-thread
// recorder + merge pattern the workload driver uses.
class Histogram {
 public:
  static constexpr size_t kSubBuckets = 32;
  static constexpr int kMinExponent = -64;  // ~5e-20: below => underflow
  static constexpr int kMaxExponent = 64;   // ~1.8e19: above => overflow
  static constexpr size_t kBuckets =
      static_cast<size_t>(kMaxExponent - kMinExponent) * kSubBuckets + 2;
  // Bucket width / bucket lower edge = 1/kSubBuckets; the center therefore
  // sits within half of that of any absorbed value.
  static constexpr double kMaxRelativeError = 0.5 / kSubBuckets;

  Histogram();
  // Copying snapshots the source with relaxed loads — meant for report
  // structs after the writers quiesced, not for racing an active writer.
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Record(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  // Exact sum of recorded values (same role as LatencyRecorder::total()).
  double total() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty

  // Nearest-rank percentile, p in [0, 100]; 0 with no samples. p = 0 maps
  // to the exact minimum, p = 100 to the exact maximum; interior ranks
  // return their bucket's representative (clamped into [min, max]).
  double Percentile(double p) const;

  // Adds `other`'s samples into this histogram (bucket-count addition).
  void Merge(const Histogram& other);

  void Reset();

 private:
  static size_t BucketIndex(double v);
  double BucketRepresentative(size_t index) const;

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// RAII wall-clock timer recording its lifetime (seconds) into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) : histogram_(histogram) {}
  ~ScopedTimer() { histogram_.Record(clock_.Seconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  Stopwatch clock_;
};

// -- Registry ----------------------------------------------------------------

// Tag set attached to an instrument's identity, e.g. {{"kernel", "multiply"}}.
using TagSet = std::vector<std::pair<std::string, std::string>>;

// Canonical instrument key: `name` alone, or "name{k1=v1,k2=v2}" with the
// tags sorted by key. Snapshot maps are indexed by this string.
std::string MetricKey(std::string_view name, const TagSet& tags);

// Point-in-time aggregation of every registered instrument, decoupled from
// the live atomics so exporters and benches can diff two snapshots.
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;    // key -> value
  std::map<std::string, double> gauges;        // key -> value
  std::map<std::string, HistogramStats> histograms;

  // Value of one counter key (0 when absent).
  uint64_t CounterValue(std::string_view key) const;
  // Sum over every counter whose key starts with `name_prefix` — the usual
  // way to total a tagged family, e.g. CounterSum("sparse.matvec.calls").
  uint64_t CounterSum(std::string_view name_prefix) const;

  // One JSON object {"counters": {...}, "gauges": {...},
  // "histograms": {key: {count, sum, min, max, p50, p95, p99}}}.
  std::string ToJson() const;
  // Prometheus-style text exposition (names sanitized to [a-z0-9_], tags as
  // labels, histograms as summaries with quantile labels).
  std::string ToPrometheusText() const;
};

// The process-wide instrument registry. GetX creates on first use and
// returns the same instrument for the same name + tags forever after;
// requesting an existing key as a different kind is a checked error.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name, const TagSet& tags = {});
  Gauge& GetGauge(std::string_view name, const TagSet& tags = {});
  Histogram& GetHistogram(std::string_view name, const TagSet& tags = {});

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered instrument (instruments stay registered and
  // all cached references stay valid). Intended for tests and for benches
  // that want per-phase deltas without snapshot arithmetic.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry;
  Entry& GetEntry(std::string_view name, const TagSet& tags, Kind kind);

  mutable std::mutex mu_;  // guards the index; instruments mutate lock-free
  std::map<std::string, std::unique_ptr<Entry>, std::less<>> entries_;
};

// Escapes a string for inclusion inside JSON double quotes (", \, and
// control characters). Shared by the snapshot/trace exporters and the bench
// JsonWriter so no caller hand-rolls escaping again.
std::string JsonEscape(std::string_view s);

}  // namespace ivmf::obs

#endif  // IVMF_OBS_METRICS_H_
