#include "obs/log.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "base/stopwatch.h"
#include "obs/metrics.h"

namespace ivmf::obs {

namespace {

// Matches the LogLevel ladder; 4 mutes everything (IVMF_LOG=off).
constexpr int kLevelOff = 4;

std::atomic<int>& MinLevelCell() {
  static std::atomic<int> cell = [] {
    int level = static_cast<int>(LogLevel::kInfo);
    const char* env = std::getenv("IVMF_LOG");
    if (env != nullptr && env[0] != '\0') {
      LogLevel parsed;
      if (ParseLogLevel(env, &parsed)) {
        level = static_cast<int>(parsed);
      } else if (std::strcmp(env, "off") == 0 ||
                 std::strcmp(env, "0") == 0 ||
                 std::strcmp(env, "false") == 0) {
        level = kLevelOff;
      }
    }
    return std::atomic<int>(level);
  }();
  return cell;
}

std::atomic<bool>& StderrCell() {
  static std::atomic<bool> cell{true};
  return cell;
}

// Process-relative timestamps: cheap, monotonic, and immune to wall-clock
// steps. Log shippers that need absolute time stamp at ingest.
double ProcessSeconds() {
  static const Stopwatch* start = new Stopwatch();  // never destroyed
  return start->Seconds();
}

void AppendJsonDouble(std::string& out, double v) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.6f", v);
  out += buffer;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn" || text == "warning") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(MinLevelCell().load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  MinLevelCell().store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogStderr(bool enabled) {
  StderrCell().store(enabled, std::memory_order_relaxed);
}

LogField::LogField(std::string k, double v) : key(std::move(k)) {
  if (std::isfinite(v)) {
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.9g", v);
    value = buffer;
    quoted = false;
  } else {
    // JSON has no NaN/Inf literals.
    value = "null";
    quoted = false;
  }
}

std::string LogRecord::ToJson() const {
  std::string out = "{\"ts\":";
  AppendJsonDouble(out, ts_seconds);
  out += ",\"level\":\"";
  out += LogLevelName(level);
  out += "\",\"component\":\"";
  out += JsonEscape(component);
  out += "\",\"msg\":\"";
  out += JsonEscape(message);
  out += '"';
  for (const LogField& field : fields) {
    out += ",\"";
    out += JsonEscape(field.key);
    out += "\":";
    if (field.quoted) {
      out += '"';
      out += JsonEscape(field.value);
      out += '"';
    } else {
      out += field.value;
    }
  }
  out += '}';
  return out;
}

// -- LogRing -----------------------------------------------------------------

LogRing& LogRing::Global() {
  static LogRing* ring = new LogRing();  // never destroyed
  return *ring;
}

LogRing::LogRing(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void LogRing::Record(LogRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() == capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(std::move(record));
}

std::vector<LogRecord> LogRing::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {records_.begin(), records_.end()};
}

std::string LogRing::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"dropped\":" + std::to_string(dropped_) +
                    ",\"records\":[";
  bool first = true;
  for (const LogRecord& record : records_) {
    if (!first) out += ',';
    first = false;
    out += record.ToJson();
  }
  out += "]}";
  return out;
}

size_t LogRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void LogRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  dropped_ = 0;
}

// -- Emission ----------------------------------------------------------------

void Log(LogLevel level, std::string_view component, std::string_view message,
         std::vector<LogField> fields) {
  if (static_cast<int>(level) <
      MinLevelCell().load(std::memory_order_relaxed)) {
    return;
  }
  LogRecord record;
  record.ts_seconds = ProcessSeconds();
  record.level = level;
  record.component = std::string(component);
  record.message = std::string(message);
  record.fields = std::move(fields);
  if (StderrCell().load(std::memory_order_relaxed)) {
    // One fwrite per line: concurrent writers cannot interleave mid-line.
    std::string line = record.ToJson();
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
  LogRing::Global().Record(std::move(record));
}

}  // namespace ivmf::obs
