// Live introspection over HTTP: a small, dependency-free, single-threaded
// poll-based HTTP/1.1 server that makes the in-process observability state
// scrapeable while the system runs, instead of dumpable only at exit.
//
// Endpoints:
//   /metrics        Prometheus text exposition (MetricsSnapshot::
//                   ToPrometheusText) — point a Prometheus scraper at it
//   /metrics.json   the same snapshot as JSON (ToJson)
//   /tracez         current Chrome trace_event snapshot of the collected
//                   spans (TraceCollector::ChromeTraceJson); empty trace
//                   when collection never started
//   /logz           the structured log ring (LogRing::ToJson)
//   /healthz        200 {"status":"ok"} / 503 {"status":"stalled"} from
//                   the attached Watchdog; always ok when none is attached
//
// One background thread runs a poll(2) loop over the listener and every
// open connection — no thread per connection, no locking beyond what the
// exporters themselves take (the registry snapshot mutex, trace/log ring
// mutexes), so concurrent scrapes and metric writers compose safely (the
// round-trip is exercised under TSan by tests/obs_http_test.cc).
// Responses carry Connection: close and the socket closes after each
// response: at scrape granularity (one request per poll interval per
// scraper) connection reuse buys nothing and a state machine per request
// keeps the server small. Requests are parsed just enough to route: the
// method must be GET (405 otherwise), unknown paths 404, oversized or
// malformed requests 400, and everything is written with non-blocking I/O
// so one slow scraper cannot wedge the loop.
//
// Binding is loopback by default. Port 0 asks the kernel for an ephemeral
// port; port() reports the bound one (tests and --http_port=0 use this).

#ifndef IVMF_OBS_HTTP_EXPORTER_H_
#define IVMF_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace ivmf::obs {

class Watchdog;

struct HttpExporterOptions {
  // TCP port to listen on; 0 binds an ephemeral port (see port()).
  uint16_t port = 0;
  // Listen address. Loopback by default: the exporter serves plaintext
  // introspection data and has no auth.
  std::string bind_address = "127.0.0.1";
  // Health source for /healthz; null reports ok unconditionally. The
  // watchdog must outlive the exporter.
  const Watchdog* watchdog = nullptr;
  // Connections answered concurrently; excess connections queue in the
  // kernel accept backlog.
  int max_connections = 16;
};

class HttpExporter {
 public:
  explicit HttpExporter(HttpExporterOptions options = {});
  // Stops the server if running.
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  // Binds, listens, and starts the poll thread. False on socket/bind
  // failure (the error is logged with component "http").
  bool Start();
  // Joins the poll thread and closes every socket. Safe to call twice.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Bound port (resolves port 0); valid after a successful Start().
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  // Routes one already-parsed request and returns the response body +
  // status. Exposed for tests; the poll loop calls it per request.
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  Response Handle(const std::string& method, const std::string& path) const;

 private:
  void Loop();

  HttpExporterOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: Stop() wakes the poll loop
  std::thread thread_;
};

}  // namespace ivmf::obs

#endif  // IVMF_OBS_HTTP_EXPORTER_H_
