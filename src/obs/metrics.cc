#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>

#include "base/check.h"

namespace ivmf::obs {

namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal

namespace {

// Applied during dynamic initialization (g_enabled itself is
// constant-initialized, so ordering against other TUs cannot misfire):
// IVMF_OBS=0/off/false launches with observability disabled.
bool ApplyEnvironmentSwitch() {
  const char* value = std::getenv("IVMF_OBS");
  if (value != nullptr &&
      (std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
       std::strcmp(value, "false") == 0)) {
    internal::g_enabled.store(false, std::memory_order_relaxed);
  }
  return true;
}
const bool g_env_applied = ApplyEnvironmentSwitch();

void AtomicAddDouble(std::atomic<double>& cell, double d) {
  double expected = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(expected, expected + d,
                                     std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>& cell, double v) {
  double expected = cell.load(std::memory_order_relaxed);
  while (v < expected && !cell.compare_exchange_weak(
                             expected, v, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& cell, double v) {
  double expected = cell.load(std::memory_order_relaxed);
  while (v > expected && !cell.compare_exchange_weak(
                             expected, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void SetEnabled(bool enabled) {
  (void)g_env_applied;
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void Gauge::Add(double d) {
  if (!Enabled()) return;
  AtomicAddDouble(value_, d);
}

// -- Histogram ---------------------------------------------------------------

Histogram::Histogram()
    : buckets_(kBuckets),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

Histogram::Histogram(const Histogram& other) : Histogram() { Merge(other); }

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  Reset();
  Merge(other);
  return *this;
}

size_t Histogram::BucketIndex(double v) {
  // Bucket 0 is the underflow bin (v <= 0, NaN, or below 2^kMinExponent);
  // the last bucket absorbs overflow (including +inf).
  if (!(v > 0.0)) return 0;
  int exp = 0;
  const double mant = std::frexp(v, &exp);  // v = mant * 2^exp, mant ∈ [0.5, 1)
  if (exp <= kMinExponent) return 0;
  if (exp > kMaxExponent) return kBuckets - 1;
  if (!std::isfinite(v)) return kBuckets - 1;
  size_t sub = static_cast<size_t>((mant - 0.5) * 2.0 *
                                   static_cast<double>(kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + static_cast<size_t>(exp - 1 - kMinExponent) * kSubBuckets + sub;
}

double Histogram::BucketRepresentative(size_t index) const {
  if (index == 0) {
    const double lo = min();
    return lo < std::ldexp(1.0, kMinExponent) ? lo : 0.0;
  }
  if (index >= kBuckets - 1) return max();
  const size_t linear = index - 1;
  const int exp = kMinExponent + 1 + static_cast<int>(linear / kSubBuckets);
  const size_t sub = linear % kSubBuckets;
  const double octave_lo = std::ldexp(0.5, exp);  // 2^(exp-1)
  const double width = octave_lo / static_cast<double>(kSubBuckets);
  return octave_lo + (static_cast<double>(sub) + 0.5) * width;
}

void Histogram::Record(double v) {
  if (!Enabled()) return;
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, v);
  AtomicMinDouble(min_, v);
  AtomicMaxDouble(max_, v);
}

double Histogram::total() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max();
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      const double value = BucketRepresentative(b);
      // Bucket centers can poke past the true extremes; clamp so reported
      // percentiles always lie inside the observed range.
      return std::min(std::max(value, min()), max());
    }
  }
  return max();  // racing writers: counts moved under us, answer the tail
}

void Histogram::Merge(const Histogram& other) {
  for (size_t b = 0; b < kBuckets; ++b) {
    const uint64_t add = other.buckets_[b].load(std::memory_order_relaxed);
    if (add != 0) buckets_[b].fetch_add(add, std::memory_order_relaxed);
  }
  const uint64_t add_count = other.count_.load(std::memory_order_relaxed);
  if (add_count != 0) count_.fetch_add(add_count, std::memory_order_relaxed);
  AtomicAddDouble(sum_, other.sum_.load(std::memory_order_relaxed));
  AtomicMinDouble(min_, other.min_.load(std::memory_order_relaxed));
  AtomicMaxDouble(max_, other.max_.load(std::memory_order_relaxed));
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// -- Registry ----------------------------------------------------------------

std::string MetricKey(std::string_view name, const TagSet& tags) {
  std::string key(name);
  if (tags.empty()) return key;
  TagSet sorted = tags;
  std::sort(sorted.begin(), sorted.end());
  key.push_back('{');
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key.push_back(',');
    key += sorted[i].first;
    key.push_back('=');
    key += sorted[i].second;
  }
  key.push_back('}');
  return key;
}

struct MetricsRegistry::Entry {
  Kind kind;
  Counter counter;
  Gauge gauge;
  Histogram histogram;

  explicit Entry(Kind k) : kind(k) {}
};

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(std::string_view name,
                                                  const TagSet& tags,
                                                  Kind kind) {
  const std::string key = MetricKey(name, tags);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    it = entries_.emplace(key, std::make_unique<Entry>(kind)).first;
  }
  IVMF_CHECK_MSG(it->second->kind == kind,
                 "metric re-requested as a different instrument kind");
  return *it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     const TagSet& tags) {
  return GetEntry(name, tags, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, const TagSet& tags) {
  return GetEntry(name, tags, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         const TagSet& tags) {
  return GetEntry(name, tags, Kind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        snapshot.counters[key] = entry->counter.value();
        break;
      case Kind::kGauge:
        snapshot.gauges[key] = entry->gauge.value();
        break;
      case Kind::kHistogram: {
        HistogramStats stats;
        const Histogram& h = entry->histogram;
        stats.count = h.count();
        stats.sum = h.total();
        stats.min = h.min();
        stats.max = h.max();
        stats.p50 = h.Percentile(50);
        stats.p95 = h.Percentile(95);
        stats.p99 = h.Percentile(99);
        snapshot.histograms[key] = stats;
        break;
      }
    }
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    entry->counter.Reset();
    entry->gauge.Reset();
    entry->histogram.Reset();
  }
}

// -- Export ------------------------------------------------------------------

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view key) const {
  const auto it = counters.find(std::string(key));
  return it == counters.end() ? 0 : it->second;
}

uint64_t MetricsSnapshot::CounterSum(std::string_view name_prefix) const {
  uint64_t sum = 0;
  for (const auto& [key, value] : counters) {
    if (key.size() >= name_prefix.size() &&
        std::string_view(key).substr(0, name_prefix.size()) == name_prefix) {
      sum += value;
    }
  }
  return sum;
}

namespace {

// JSON has no NaN/Inf literals; a non-finite gauge renders as null.
void AppendJsonNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  out += buffer;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [key, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(key) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [key, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(key) + "\": ";
    AppendJsonNumber(out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [key, stats] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(key) + "\": {\"count\": " +
           std::to_string(stats.count);
    const std::pair<const char*, double> fields[] = {
        {"sum", stats.sum}, {"min", stats.min}, {"max", stats.max},
        {"p50", stats.p50}, {"p95", stats.p95}, {"p99", stats.p99}};
    for (const auto& [label, value] : fields) {
      out += ", \"";
      out += label;
      out += "\": ";
      AppendJsonNumber(out, value);
    }
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

// Label values may hold anything; the exposition format requires \\, \",
// and \n escaped inside the quotes.
std::string PrometheusLabelEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

// Label names are restricted to [a-zA-Z_][a-zA-Z0-9_]*.
std::string PrometheusLabelName(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c))
                      ? static_cast<char>(
                            std::tolower(static_cast<unsigned char>(c)))
                      : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

// "sparse.matvec.calls{kernel=multiply}" ->
//   name "ivmf_sparse_matvec_calls", labels {kernel="multiply"}.
void SplitPrometheusKey(const std::string& key, std::string& name,
                        std::string& labels) {
  const size_t brace = key.find('{');
  const std::string base = key.substr(0, brace);
  name = "ivmf_";
  for (const char c : base) {
    name.push_back(std::isalnum(static_cast<unsigned char>(c))
                       ? static_cast<char>(
                             std::tolower(static_cast<unsigned char>(c)))
                       : '_');
  }
  labels.clear();
  if (brace == std::string::npos) return;
  // key tags are "k=v" pairs; Prometheus wants k="v" with the value escaped.
  const std::string inner = key.substr(brace + 1, key.size() - brace - 2);
  size_t pos = 0;
  while (pos < inner.size()) {
    size_t comma = inner.find(',', pos);
    if (comma == std::string::npos) comma = inner.size();
    const std::string pair = inner.substr(pos, comma - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      if (!labels.empty()) labels.push_back(',');
      labels += PrometheusLabelName(pair.substr(0, eq)) + "=\"" +
                PrometheusLabelEscape(pair.substr(eq + 1)) + "\"";
    }
    pos = comma + 1;
  }
}

bool EndsWithTotal(const std::string& name) {
  constexpr const char kSuffix[] = "_total";
  constexpr size_t kLen = sizeof(kSuffix) - 1;
  return name.size() >= kLen &&
         name.compare(name.size() - kLen, kLen, kSuffix) == 0;
}

void AppendPrometheusLine(std::string& out, const std::string& name,
                          const std::string& labels,
                          const std::string& extra_label, double value) {
  out += name;
  if (!labels.empty() || !extra_label.empty()) {
    out.push_back('{');
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out.push_back(',');
    out += extra_label;
    out.push_back('}');
  }
  char buffer[48];
  if (std::isfinite(value)) {
    std::snprintf(buffer, sizeof(buffer), " %.9g\n", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), " NaN\n");
  }
  out += buffer;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  std::string name, labels;
  // Sanitization can collapse distinct raw names onto one exposition name
  // (and counters share a family with gauges after the _total suffix only
  // by accident), so dedupe # TYPE headers with a set, not adjacency.
  std::set<std::string> typed;
  const auto type_line = [&](const char* kind) {
    if (!typed.insert(name).second) return;
    out += "# TYPE " + name + " " + kind + "\n";
  };
  for (const auto& [key, value] : counters) {
    SplitPrometheusKey(key, name, labels);
    // Prometheus counters carry the _total suffix on the sample name.
    if (!EndsWithTotal(name)) name += "_total";
    type_line("counter");
    AppendPrometheusLine(out, name, labels, "", static_cast<double>(value));
  }
  for (const auto& [key, value] : gauges) {
    SplitPrometheusKey(key, name, labels);
    type_line("gauge");
    AppendPrometheusLine(out, name, labels, "", value);
  }
  for (const auto& [key, stats] : histograms) {
    SplitPrometheusKey(key, name, labels);
    type_line("summary");
    AppendPrometheusLine(out, name, labels, "quantile=\"0.5\"", stats.p50);
    AppendPrometheusLine(out, name, labels, "quantile=\"0.95\"", stats.p95);
    AppendPrometheusLine(out, name, labels, "quantile=\"0.99\"", stats.p99);
    AppendPrometheusLine(out, name + "_sum", labels, "", stats.sum);
    AppendPrometheusLine(out, name + "_count", labels, "",
                         static_cast<double>(stats.count));
  }
  return out;
}

}  // namespace ivmf::obs
