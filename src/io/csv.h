// CSV serialization for scalar and interval-valued matrices.
//
// Scalar matrices are plain comma-separated numbers, one row per line.
// Interval matrices use `lo:hi` cells (a bare number is a scalar interval):
//
//   1.0:2.0, 3.5, 0:0.25
//   2.25:2.75, 4.0:4.0, 1
//
// Parsing is whitespace-tolerant; empty lines are skipped. All rows must
// have the same number of cells.

#ifndef IVMF_IO_CSV_H_
#define IVMF_IO_CSV_H_

#include <optional>
#include <string>

#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf {

// -- In-memory (string) forms ------------------------------------------------

// Renders a matrix as CSV text.
std::string MatrixToCsv(const Matrix& m, int precision = 12);
std::string IntervalMatrixToCsv(const IntervalMatrix& m, int precision = 12);

// Parses CSV text. Returns std::nullopt on malformed input (ragged rows,
// unparsable cells, misordered intervals).
std::optional<Matrix> MatrixFromCsv(const std::string& text);
std::optional<IntervalMatrix> IntervalMatrixFromCsv(const std::string& text);

// -- File forms ----------------------------------------------------------------

// Write / read a file; file variants return false / nullopt on I/O errors.
bool SaveMatrixCsv(const std::string& path, const Matrix& m,
                   int precision = 12);
bool SaveIntervalMatrixCsv(const std::string& path, const IntervalMatrix& m,
                           int precision = 12);
std::optional<Matrix> LoadMatrixCsv(const std::string& path);
std::optional<IntervalMatrix> LoadIntervalMatrixCsv(const std::string& path);

}  // namespace ivmf

#endif  // IVMF_IO_CSV_H_
