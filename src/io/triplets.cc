#include "io/triplets.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "io/file_util.h"

namespace ivmf {

using io_internal::FormatDouble;
using io_internal::ReadFileToString;
using io_internal::WriteStringToFile;

std::string SparseIntervalMatrixToTriplets(const SparseIntervalMatrix& m,
                                           int precision) {
  std::string out = kTripletHeader;
  out += "\n";
  out += std::to_string(m.rows()) + " " + std::to_string(m.cols()) + " " +
         std::to_string(m.nnz()) + "\n";
  const std::vector<size_t>& row_ptr = m.row_ptr();
  const std::vector<size_t>& col_idx = m.col_idx();
  const std::vector<double>& lo = m.lower_values();
  const std::vector<double>& hi = m.upper_values();
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      out += std::to_string(i + 1);
      out += " ";
      out += std::to_string(col_idx[k] + 1);
      out += " ";
      out += FormatDouble(lo[k], precision);
      out += " ";
      out += FormatDouble(hi[k], precision);
      out += "\n";
    }
  }
  return out;
}

std::optional<SparseIntervalMatrix> SparseIntervalMatrixFromTriplets(
    const std::string& text, DuplicatePolicy duplicates) {
  std::istringstream in(text);
  std::string line;

  // Header line.
  if (!std::getline(in, line)) return std::nullopt;
  if (!LooksLikeTriplets(line)) return std::nullopt;

  // Size line (after any comment lines).
  size_t rows = 0, cols = 0, nnz = 0;
  bool have_sizes = false;
  while (std::getline(in, line)) {
    const size_t content = line.find_first_not_of(" \t\r");
    if (content == std::string::npos || line[content] == '%') continue;
    std::istringstream sizes(line);
    if (!(sizes >> rows >> cols >> nnz)) return std::nullopt;
    std::string rest;
    if (sizes >> rest) return std::nullopt;  // trailing tokens
    have_sizes = true;
    break;
  }
  if (!have_sizes) return std::nullopt;

  // Sanity-bound the declared sizes BEFORE allocating anything: a corrupt
  // (or hostile) size line must produce a parse error, not an allocation
  // crash. nnz may not exceed rows * cols (evaluated overflow-free), and
  // dimensions beyond 2^27 are rejected — the CSR row pointer alone would
  // exceed a GiB; matrices that large are built through the in-memory API.
  constexpr size_t kMaxDimension = size_t{1} << 27;
  if (rows > kMaxDimension || cols > kMaxDimension) return std::nullopt;
  if (nnz > 0 && (rows == 0 || cols == 0 || (nnz - 1) / rows >= cols)) {
    return std::nullopt;
  }

  std::vector<IntervalTriplet> triplets;
  triplets.reserve(std::min(nnz, size_t{1} << 20));
  while (std::getline(in, line)) {
    const size_t content = line.find_first_not_of(" \t\r");
    if (content == std::string::npos || line[content] == '%') continue;
    std::istringstream entry(line);
    size_t i = 0, j = 0;
    double lo = 0.0, hi = 0.0;
    if (!(entry >> i >> j >> lo >> hi)) return std::nullopt;
    std::string rest;
    if (entry >> rest) return std::nullopt;  // trailing tokens
    if (i < 1 || i > rows || j < 1 || j > cols) return std::nullopt;
    if (!std::isfinite(lo) || !std::isfinite(hi)) return std::nullopt;
    if (lo > hi) return std::nullopt;
    if (triplets.size() == nnz) return std::nullopt;  // more entries than declared
    triplets.push_back({i - 1, j - 1, Interval(lo, hi)});
  }
  if (triplets.size() != nnz) return std::nullopt;
  SparseIntervalMatrix m =
      SparseIntervalMatrix::FromTriplets(rows, cols, std::move(triplets));
  // FromTriplets hulls duplicate coordinates. Under kReject a serialized
  // stream is sorted and unique, so a shrunken entry count means the file
  // double-declared a cell — reject it instead of guessing which value was
  // meant. Under kMergeHull the hull IS the requested semantics and the
  // declared nnz only counts entry lines.
  if (duplicates == DuplicatePolicy::kReject && m.nnz() != nnz) {
    return std::nullopt;
  }
  return m;
}

bool LooksLikeTriplets(const std::string& text) {
  const size_t start = text.find_first_not_of(" \t\r\n");
  if (start == std::string::npos) return false;
  return text.compare(start, sizeof(kTripletHeader) - 1, kTripletHeader) == 0;
}

bool SaveSparseIntervalTriplets(const std::string& path,
                                const SparseIntervalMatrix& m, int precision) {
  return WriteStringToFile(path, SparseIntervalMatrixToTriplets(m, precision));
}

std::optional<SparseIntervalMatrix> LoadSparseIntervalTriplets(
    const std::string& path, DuplicatePolicy duplicates) {
  const std::optional<std::string> text = ReadFileToString(path);
  if (!text) return std::nullopt;
  return SparseIntervalMatrixFromTriplets(*text, duplicates);
}

}  // namespace ivmf
