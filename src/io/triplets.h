// Triplet (coordinate) serialization for sparse interval matrices — a
// MatrixMarket-style text format:
//
//   %%ivmf interval coordinate
//   % optional comment lines
//   rows cols nnz
//   i j lo hi
//   ...
//
// Entries use 1-based indices like MatrixMarket; `lo hi` are the interval
// endpoints (write lo == hi for scalar entries). Lines starting with '%'
// are comments; entry order is arbitrary. Duplicate-cell semantics are
// unified with SparseIntervalMatrix::FromTriplets through DuplicatePolicy:
// by default each (i, j) cell may appear at most once — a serialized stream
// is sorted and unique, so a duplicated cell is inconsistent with the
// declared entry count and rejected — but callers ingesting raw observation
// logs can pass DuplicatePolicy::kMergeHull to get exactly the in-memory
// constructor's hull-merge, so the same data yields the same matrix through
// either path. This is the on-disk form for recommender-scale matrices
// whose dense CSV would be dominated by "0:0" cells.

#ifndef IVMF_IO_TRIPLETS_H_
#define IVMF_IO_TRIPLETS_H_

#include <optional>
#include <string>

#include "sparse/sparse_interval_matrix.h"

namespace ivmf {

// Magic header expected on the first line of a triplet stream.
inline constexpr char kTripletHeader[] = "%%ivmf interval coordinate";

// -- In-memory (string) forms ------------------------------------------------

// Renders the matrix in the coordinate format above.
std::string SparseIntervalMatrixToTriplets(const SparseIntervalMatrix& m,
                                           int precision = 12);

// Parses coordinate text. Returns std::nullopt on malformed input (missing
// header or size line, unparsable or non-finite entries, out-of-range
// indices, misordered intervals, wrong entry line count, declared sizes
// beyond the parser's sanity bounds). Never aborts or over-allocates on
// corrupt size declarations. Duplicate cells follow `duplicates`: kReject
// (default) treats them as malformed, kMergeHull merges them exactly like
// SparseIntervalMatrix::FromTriplets (the declared nnz then counts entry
// lines; the parsed matrix may hold fewer cells).
std::optional<SparseIntervalMatrix> SparseIntervalMatrixFromTriplets(
    const std::string& text,
    DuplicatePolicy duplicates = DuplicatePolicy::kReject);

// True when `text` starts with the triplet header (leading whitespace
// allowed) — the cheap sniff ivmf_decompose uses to tell triplet files from
// dense interval CSV.
bool LooksLikeTriplets(const std::string& text);

// -- File forms --------------------------------------------------------------

bool SaveSparseIntervalTriplets(const std::string& path,
                                const SparseIntervalMatrix& m,
                                int precision = 12);
std::optional<SparseIntervalMatrix> LoadSparseIntervalTriplets(
    const std::string& path,
    DuplicatePolicy duplicates = DuplicatePolicy::kReject);

}  // namespace ivmf

#endif  // IVMF_IO_TRIPLETS_H_
