#include "io/csv.h"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "io/file_util.h"

namespace ivmf {
namespace {

using io_internal::FormatDouble;
using io_internal::ReadFileToString;
using io_internal::WriteStringToFile;

// Splits a line into trimmed comma-separated cells.
std::vector<std::string> SplitCells(const std::string& line) {
  std::vector<std::string> cells;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  cells.push_back(current);
  for (std::string& cell : cells) {
    const size_t first = cell.find_first_not_of(" \t\r");
    const size_t last = cell.find_last_not_of(" \t\r");
    cell = (first == std::string::npos)
               ? ""
               : cell.substr(first, last - first + 1);
  }
  return cells;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

// Parses "lo:hi" or a bare number (scalar interval).
bool ParseIntervalCell(const std::string& cell, Interval* out) {
  const size_t colon = cell.find(':');
  if (colon == std::string::npos) {
    double value;
    if (!ParseDouble(cell, &value)) return false;
    *out = Interval::Scalar(value);
    return true;
  }
  double lo, hi;
  if (!ParseDouble(cell.substr(0, colon), &lo) ||
      !ParseDouble(cell.substr(colon + 1), &hi)) {
    return false;
  }
  if (lo > hi) return false;
  *out = Interval(lo, hi);
  return true;
}

// Collects non-empty lines.
std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  std::istringstream in(text);
  while (std::getline(in, current)) {
    const size_t content = current.find_first_not_of(" \t\r");
    if (content != std::string::npos) lines.push_back(current);
  }
  return lines;
}

}  // namespace

std::string MatrixToCsv(const Matrix& m, int precision) {
  std::string out;
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      if (j > 0) out += ",";
      out += FormatDouble(m(i, j), precision);
    }
    out += "\n";
  }
  return out;
}

std::string IntervalMatrixToCsv(const IntervalMatrix& m, int precision) {
  std::string out;
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      if (j > 0) out += ",";
      const Interval cell = m.At(i, j);
      out += FormatDouble(cell.lo, precision);
      out += ":";
      out += FormatDouble(cell.hi, precision);
    }
    out += "\n";
  }
  return out;
}

std::optional<Matrix> MatrixFromCsv(const std::string& text) {
  const std::vector<std::string> lines = Lines(text);
  if (lines.empty()) return Matrix();
  const size_t cols = SplitCells(lines[0]).size();
  Matrix m(lines.size(), cols);
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::vector<std::string> cells = SplitCells(lines[i]);
    if (cells.size() != cols) return std::nullopt;
    for (size_t j = 0; j < cols; ++j) {
      double value;
      if (!ParseDouble(cells[j], &value)) return std::nullopt;
      m(i, j) = value;
    }
  }
  return m;
}

std::optional<IntervalMatrix> IntervalMatrixFromCsv(const std::string& text) {
  const std::vector<std::string> lines = Lines(text);
  if (lines.empty()) return IntervalMatrix();
  const size_t cols = SplitCells(lines[0]).size();
  IntervalMatrix m(lines.size(), cols);
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::vector<std::string> cells = SplitCells(lines[i]);
    if (cells.size() != cols) return std::nullopt;
    for (size_t j = 0; j < cols; ++j) {
      Interval cell;
      if (!ParseIntervalCell(cells[j], &cell)) return std::nullopt;
      m.Set(i, j, cell);
    }
  }
  return m;
}

bool SaveMatrixCsv(const std::string& path, const Matrix& m, int precision) {
  return WriteStringToFile(path, MatrixToCsv(m, precision));
}

bool SaveIntervalMatrixCsv(const std::string& path, const IntervalMatrix& m,
                           int precision) {
  return WriteStringToFile(path, IntervalMatrixToCsv(m, precision));
}

std::optional<Matrix> LoadMatrixCsv(const std::string& path) {
  const std::optional<std::string> text = ReadFileToString(path);
  if (!text) return std::nullopt;
  return MatrixFromCsv(*text);
}

std::optional<IntervalMatrix> LoadIntervalMatrixCsv(const std::string& path) {
  const std::optional<std::string> text = ReadFileToString(path);
  if (!text) return std::nullopt;
  return IntervalMatrixFromCsv(*text);
}

}  // namespace ivmf
