// Small file / formatting helpers shared by the io/ serializers (and the
// command-line tools): whole-file reads and writes, and the %g double
// rendering every text format in this library uses.

#ifndef IVMF_IO_FILE_UTIL_H_
#define IVMF_IO_FILE_UTIL_H_

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

namespace ivmf::io_internal {

inline std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

inline std::optional<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

inline bool WriteStringToFile(const std::string& path,
                              const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace ivmf::io_internal

#endif  // IVMF_IO_FILE_UTIL_H_
