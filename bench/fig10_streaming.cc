// Figure 10, made streaming: per-batch incremental refresh vs full
// recomputation on a growing CF rating matrix.
//
// The batch pipeline answers "how fast is one decomposition"; the serving
// question is "how fast is the NEXT decomposition after a batch of ratings
// arrives". This harness builds the 20k x 5k CF interval matrix, withholds
// a slice of the observed cells as the arrival stream, and replays it in
// batches. After each batch both routes refresh the decomposition:
//
//   incremental  StreamingIsvd — delta-log upserts + snapshot merge +
//                Krylov solves warm-started from the previous Ritz basis
//                with a convergence-based early exit
//   recompute    the status quo ante — rebuild the CSR matrix from all
//                triplets and run the cold decomposition
//
// and the per-batch speedup is reported. Strategies 0–4 all stream;
// --strategy=N restricts the sweep.
//
// Honesty check: the CF spectrum is one Perron value over a flat noise
// bulk, and PAST the signal rank every truncated Krylov route — cold
// included — returns start-dependent O(bulk-width) Ritz approximations
// (cold Lanczos already differs from the exact Jacobi spectrum by O(1)
// there). So the per-batch check compares the leading (resolvable)
// singular values tightly and only reports the full-rank deviation;
// exact incremental-vs-recompute equivalence on resolvable spectra is
// pinned at 1e-8 by tests/streaming_isvd_test.cc.
//
// Usage:
//   bench_fig10_streaming [--users=20000] [--items=5000] [--rank=10]
//                         [--strategy=-1] [--fill_pct=5] [--alpha_pct=30]
//                         [--batches=3] [--batch_pct=1] [--json[=PATH]]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "base/stopwatch.h"
#include "bench_util.h"
#include "core/streaming_isvd.h"
#include "data/ratings.h"
#include "sparse/sparse_interval_matrix.h"

int main(int argc, char** argv) {
  using namespace ivmf;
  using namespace ivmf::bench;

  const size_t users = static_cast<size_t>(IntFlag(argc, argv, "users", 20000));
  const size_t items = static_cast<size_t>(IntFlag(argc, argv, "items", 5000));
  const size_t rank = static_cast<size_t>(IntFlag(argc, argv, "rank", 10));
  const int strategy_flag = IntFlag(argc, argv, "strategy", -1);
  const double fill = IntFlag(argc, argv, "fill_pct", 5) / 100.0;
  const double alpha = IntFlag(argc, argv, "alpha_pct", 30) / 100.0;
  const int batches = IntFlag(argc, argv, "batches", 3);
  const double batch_fraction = IntFlag(argc, argv, "batch_pct", 1) / 100.0;
  // The honesty check compares the leading values both routes resolve: on
  // this workload only sigma_1 towers over the noise bulk and sigma_2 sits
  // just above its edge (measured incremental-vs-recompute deviations are
  // ~1e-6 and ~1e-3 of sigma_1 respectively; from sigma_3 on, both routes
  // return bulk approximations that differ at O(bulk width) from the exact
  // spectrum too). The tolerance carries ~5x margin over the measured
  // sigma_2 deviation — this check aborts a required CI step, so it guards
  // against divergence, not against run-to-run Ritz jitter.
  const size_t check_prefix = 2;
  const double check_tol = 5e-3;  // relative to sigma_1

  std::vector<int> strategies;
  if (strategy_flag < 0) {
    strategies = {0, 1, 2, 3, 4};
  } else {
    strategies = {strategy_flag};
  }

  // One CF interval matrix; a trailing slice of its cells becomes the
  // arrival stream (the CF interval construction itself is an O(nnz)
  // preprocessing step shared by both routes, so it stays out of the
  // measurement).
  RatingsConfig config;
  config.num_users = users;
  config.num_items = items;
  config.fill = fill;
  config.seed = 404;
  const SparseRatingsData data = GenerateSparseRatings(config);
  const SparseIntervalMatrix cf = SparseCfIntervalMatrix(data, alpha);
  const std::vector<IntervalTriplet> all_cells = cf.ToTriplets();

  const size_t batch_size = static_cast<size_t>(
      batch_fraction * static_cast<double>(all_cells.size()));
  const size_t stream_size = batch_size * static_cast<size_t>(batches);
  IVMF_CHECK_MSG(batch_size > 0 && stream_size < all_cells.size(),
                 "batch/batches too large for the generated matrix");
  const size_t base_size = all_cells.size() - stream_size;

  PrintHeader("Figure 10, streaming — incremental refresh vs full "
              "recomputation per rating batch");
  std::printf("%zux%zu, nnz %zu, rank %zu, %d batches of %zu arriving "
              "cells\n\n",
              users, items, all_cells.size(), rank, batches, batch_size);
  std::printf("%5s %6s %9s %6s %7s %10s %10s %9s %10s\n", "isvd", "batch",
              "cells", "warm", "iters", "increment", "recompute", "speedup",
              "sigma diff");
  PrintRule(82);

  JsonWriter json(JsonPathFlag(argc, argv, "fig10_streaming"));

  for (const int strategy : strategies) {
    const std::vector<IntervalTriplet> base_cells(
        all_cells.begin(),
        all_cells.begin() + static_cast<ptrdiff_t>(base_size));
    Stopwatch sw;
    StreamingIsvd streaming(
        strategy, rank,
        SparseIntervalMatrix::FromTriplets(users, items, base_cells));
    std::printf("%5d %6s %9zu %6s %7zu %9.3fs %10s %9s %10s\n", strategy,
                "base", base_size, "cold", streaming.last_stats().iterations,
                sw.Seconds(), "-", "-", "-");

    std::vector<IntervalTriplet> accumulated = base_cells;
    for (int b = 0; b < batches; ++b) {
      const auto begin = all_cells.begin() +
                         static_cast<ptrdiff_t>(base_size + b * batch_size);
      const std::vector<IntervalTriplet> batch(begin,
                                               begin + batch_size);

      // Incremental route: log the arrivals, refresh warm.
      const obs::MetricsSnapshot counters_before =
          obs::MetricsRegistry::Global().Snapshot();
      sw.Restart();
      streaming.ApplyBatch(batch);
      streaming.Refresh();
      const double incremental_seconds = sw.Seconds();
      const SolverCounterDeltas solver(
          counters_before, obs::MetricsRegistry::Global().Snapshot());
      const StreamingRefreshStats& stats = streaming.last_stats();

      // Recompute route: the pre-streaming pipeline — rebuild the CSR
      // matrix from every triplet seen so far, decompose cold.
      accumulated.insert(accumulated.end(), batch.begin(), batch.end());
      sw.Restart();
      const SparseIntervalMatrix rebuilt =
          SparseIntervalMatrix::FromTriplets(users, items, accumulated);
      IsvdOptions cold;
      cold.eig_solver = EigSolver::kLanczos;
      cold.gram_side = GramSide::kAuto;
      const IsvdResult recompute = RunIsvd(strategy, rebuilt, rank, cold);
      const double recompute_seconds = sw.Seconds();

      const size_t shared_rank =
          std::min(recompute.rank(), streaming.result().rank());
      double sigma_diff = 0.0, prefix_diff = 0.0;
      for (size_t j = 0; j < shared_rank; ++j) {
        const double d = std::abs(recompute.sigma[j].hi -
                                  streaming.result().sigma[j].hi);
        sigma_diff = std::max(sigma_diff, d);
        if (j < check_prefix) prefix_diff = std::max(prefix_diff, d);
      }
      const double scale =
          recompute.sigma.empty() ? 1.0 : recompute.sigma[0].hi;
      IVMF_CHECK_MSG(prefix_diff <= check_tol * (scale > 0.0 ? scale : 1.0),
                     "incremental refresh diverged from full recompute on "
                     "the resolvable leading singular values");

      const double speedup =
          recompute_seconds /
          (incremental_seconds > 0.0 ? incremental_seconds : 1.0);
      std::printf("%5d %6d %9zu %6s %7zu %9.3fs %9.3fs %8.1fx %10.2e\n",
                  strategy, b + 1, stats.delta_cells,
                  stats.warm ? "warm" : "cold", stats.iterations,
                  incremental_seconds, recompute_seconds, speedup,
                  sigma_diff);

      json.BeginRecord();
      json.Field("bench", std::string("fig10_streaming"));
      json.Field("users", users);
      json.Field("items", items);
      json.Field("nnz", rebuilt.nnz());
      json.Field("rank", rank);
      json.Field("strategy", strategy);
      json.Field("batch", b + 1);
      json.Field("batch_cells", stats.delta_cells);
      json.Field("warm", stats.warm);
      json.Field("iterations", stats.iterations);
      json.Field("incremental_seconds", incremental_seconds);
      json.Field("recompute_seconds", recompute_seconds);
      json.Field("speedup", speedup);
      json.Field("sigma_diff", sigma_diff);
      // Counter deltas cover the incremental refresh only (the snapshot
      // pair brackets it); the recompute route's matvecs are excluded.
      solver.WriteFields(json);
      WriteMemoryFields(json);
    }
  }

  PrintRule(82);
  std::printf(
      "increment = delta-log upserts + snapshot merge + warm-started Krylov "
      "refresh;\nrecompute = CSR rebuild from all triplets + cold "
      "decomposition (the pre-streaming\npipeline). Routes agree on the "
      "resolvable leading singular values (see the file\nheader); 'sigma "
      "diff' reports the full-rank deviation, bulk-level by nature.\n");
  if (!json.Finish()) {
    std::fprintf(stderr, "error: failed writing JSON output\n");
    return 1;
  }
  return 0;
}
