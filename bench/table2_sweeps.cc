// Table 2 (a)–(e): Θ_HM of ISVD0 and the ISVD#-b family while sweeping one
// synthetic-data parameter at a time around the default configuration:
//   (a) interval density, (b) interval intensity, (c) matrix density
//   (fraction of zeros), (d) matrix shape, (e) target rank.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "base/rng.h"
#include "bench_util.h"
#include "data/synthetic.h"

namespace {

using namespace ivmf;
using namespace ivmf::bench;

// Runs the option-b family (plus ISVD0) on `config` at `rank`, averaged
// over `trials`, and prints one table row labelled `label`.
void Row(const std::string& label, const SyntheticConfig& config, size_t rank,
         int trials, uint64_t seed) {
  Rng master(seed);
  ScoreAccumulator acc;
  for (int t = 0; t < trials; ++t) {
    Rng rng = master.Fork();
    const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
    IsvdOptions options;
    const GramEig gram = ComputeGramEig(m, rank, options);
    std::vector<MethodScore> scores;
    // ISVD0 (reported as the fast alternative) + the option-b family.
    ScoreIsvdFamily(m, rank, DecompositionTarget::kC, gram, scores,
                    /*include_isvd0=*/true);
    ScoreIsvdFamily(m, rank, DecompositionTarget::kB, gram, scores,
                    /*include_isvd0=*/false);
    acc.Add(scores);
  }
  std::printf("%-16s %8.3f %9.3f %9.3f %9.3f %9.3f\n", label.c_str(),
              acc.MeanH("ISVD0"), acc.MeanH("ISVD1-b"), acc.MeanH("ISVD2-b"),
              acc.MeanH("ISVD3-b"), acc.MeanH("ISVD4-b"));
}

void TableHead(const char* title, const char* param) {
  std::printf("\n");
  PrintHeader(title);
  std::printf("%-16s %8s %9s %9s %9s %9s\n", param, "ISVD0", "ISVD1-b",
              "ISVD2-b", "ISVD3-b", "ISVD4-b");
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = IntFlag(argc, argv, "trials", 5);
  const size_t rank = static_cast<size_t>(IntFlag(argc, argv, "rank", 20));

  // (a) Varying interval densities.
  TableHead("Table 2a — varying interval density (default config otherwise)",
            "int. density");
  for (const double density : {0.10, 0.25, 0.75, 1.00}) {
    SyntheticConfig config;
    config.interval_density = density;
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%%", 100.0 * density);
    Row(label, config, rank, trials, 100 + static_cast<uint64_t>(100 * density));
  }

  // (b) Varying interval intensities.
  TableHead("Table 2b — varying interval intensity", "int. intensity");
  for (const double intensity : {0.10, 0.25, 0.75, 1.00}) {
    SyntheticConfig config;
    config.interval_intensity = intensity;
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%%", 100.0 * intensity);
    Row(label, config, rank, trials,
        200 + static_cast<uint64_t>(100 * intensity));
  }

  // (c) Varying matrix densities (fraction of zero cells).
  TableHead("Table 2c — varying matrix density (fraction of zeros)",
            "mat. density");
  for (const double zeros : {0.0, 0.5, 0.9}) {
    SyntheticConfig config;
    config.zero_fraction = zeros;
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%%", 100.0 * zeros);
    Row(label, config, rank, trials, 300 + static_cast<uint64_t>(100 * zeros));
  }

  // (d) Varying matrix configurations.
  TableHead("Table 2d — varying matrix shape", "shape");
  for (const auto& [rows, cols] :
       std::vector<std::pair<size_t, size_t>>{
           {25, 400}, {40, 250}, {250, 40}, {400, 250}, {250, 400}}) {
    SyntheticConfig config;
    config.rows = rows;
    config.cols = cols;
    char label[32];
    std::snprintf(label, sizeof(label), "%zu-by-%zu", rows, cols);
    Row(label, config, rank, trials, 400 + rows + cols);
  }

  // (e) Varying target ranks.
  TableHead("Table 2e — varying target rank (default shape 40x250)", "rank");
  for (const size_t r : {size_t{5}, size_t{10}, size_t{20}, size_t{40}}) {
    SyntheticConfig config;
    Row(std::to_string(r), config, r, trials, 500 + r);
  }

  std::printf("\nexpected shape (paper Table 2): ISVD4-b best in every row; "
              "ISVD0 competitive only at low interval density/intensity.\n");
  return 0;
}
