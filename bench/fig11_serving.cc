// Figure 11 (beyond the paper): concurrent serving of the interval
// decomposition under a YCSB-style workload.
//
// The paper's recommender evaluation (Section 6.1.3) measures how fast one
// decomposition runs; this harness measures how the decomposition SERVES —
// the "millions of users, heavy traffic" scenario made concrete. A
// ServingEngine holds a StreamingIsvd behind an epoch-published snapshot
// registry; N reader threads issue a configurable mix of point predictions
// (read), top-k ranking scans (scan), and rating updates (write) against
// zipfian- or uniform-popular users while the engine's single writer thread
// coalesces the arriving ratings into warm-started refreshes and atomically
// swaps in fresh snapshots. Reported: per-op-type p50/p95/p99 latency and
// aggregate throughput, plus how many epochs the run published.
//
// Readers never block on the refresh: a read costs one atomic shared_ptr
// acquire plus O(rank) arithmetic (O(items x rank) for top-k), so read
// latency stays flat regardless of how busy the writer is — the property
// every later scale item (sharding, SIMD kernels, per-event refresh) must
// preserve.
//
// Usage:
//   bench_fig11_serving [--users=10000] [--items=2000] [--rank=10]
//                       [--strategy=2] [--fill_pct=5] [--alpha_pct=30]
//                       [--readers=4] [--duration_ms=2000] [--read_pct=90]
//                       [--topk_pct=5] [--topk=10] [--theta_pct=99]
//                       [--uniform] [--seed=1234] [--json[=PATH]]

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/ratings.h"
#include "obs/metrics.h"
#include "serve/serving_engine.h"
#include "serve/workload.h"
#include "sparse/sparse_interval_matrix.h"

namespace {

void PrintOpRow(const char* op, size_t ops, const ivmf::obs::Histogram& lat,
                double seconds) {
  if (ops == 0) {
    std::printf("%-8s %10s\n", op, "-");
    return;
  }
  std::printf("%-8s %10zu %10.0f %9.1f %9.1f %9.1f %9.1f\n", op, ops,
              static_cast<double>(ops) / seconds, lat.Percentile(50) * 1e6,
              lat.Percentile(95) * 1e6, lat.Percentile(99) * 1e6,
              lat.Percentile(100) * 1e6);
}

void JsonOpRecord(ivmf::bench::JsonWriter& json, const char* op, size_t ops,
                  const ivmf::obs::Histogram& lat,
                  const ivmf::ServingWorkloadReport& report,
                  const ivmf::bench::SolverCounterDeltas& solver,
                  size_t users, size_t items, size_t rank, int strategy,
                  size_t readers, const char* distribution, double theta) {
  json.BeginRecord();
  json.Field("bench", "fig11_serving");
  json.Field("op", op);
  json.Field("users", users);
  json.Field("items", items);
  json.Field("rank", rank);
  json.Field("strategy", strategy);
  json.Field("readers", readers);
  json.Field("distribution", distribution);
  json.Field("theta", theta);
  json.Field("seconds", report.seconds);
  json.Field("ops", ops);
  json.Field("ops_per_second",
             report.seconds > 0.0 ? static_cast<double>(ops) / report.seconds
                                  : 0.0);
  json.Field("p50_us", lat.Percentile(50) * 1e6);
  json.Field("p95_us", lat.Percentile(95) * 1e6);
  json.Field("p99_us", lat.Percentile(99) * 1e6);
  json.Field("max_us", lat.Percentile(100) * 1e6);
  json.Field("total_throughput", report.throughput());
  json.Field("snapshots_published", report.snapshots_published);
  json.Field("first_epoch", static_cast<size_t>(report.first_epoch));
  json.Field("last_epoch", static_cast<size_t>(report.last_epoch));
  json.Field("epoch_regressions", report.epoch_regressions);
  solver.WriteFields(json);
  WriteMemoryFields(json);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ivmf;
  using namespace ivmf::bench;

  const size_t users = static_cast<size_t>(IntFlag(argc, argv, "users", 10000));
  const size_t items = static_cast<size_t>(IntFlag(argc, argv, "items", 2000));
  const size_t rank = static_cast<size_t>(IntFlag(argc, argv, "rank", 10));
  const int strategy = IntFlag(argc, argv, "strategy", 2);
  const double fill = IntFlag(argc, argv, "fill_pct", 5) / 100.0;
  const double alpha = IntFlag(argc, argv, "alpha_pct", 30) / 100.0;

  ServingWorkloadOptions workload;
  workload.readers = static_cast<size_t>(IntFlag(argc, argv, "readers", 4));
  workload.duration_seconds =
      IntFlag(argc, argv, "duration_ms", 2000) / 1000.0;
  workload.read_fraction = IntFlag(argc, argv, "read_pct", 90) / 100.0;
  workload.topk_fraction = IntFlag(argc, argv, "topk_pct", 5) / 100.0;
  workload.top_k = static_cast<size_t>(IntFlag(argc, argv, "topk", 10));
  workload.zipf_theta = IntFlag(argc, argv, "theta_pct", 99) / 100.0;
  workload.user_distribution = BoolFlag(argc, argv, "uniform")
                                   ? KeyDistribution::kUniform
                                   : KeyDistribution::kZipfian;
  workload.seed = static_cast<uint64_t>(IntFlag(argc, argv, "seed", 1234));

  // Base matrix: the synthetic CF interval construction at the configured
  // fill, exactly like the fig10 harnesses.
  RatingsConfig config;
  config.num_users = users;
  config.num_items = items;
  config.fill = fill;
  config.seed = 404;
  const SparseRatingsData data = GenerateSparseRatings(config);
  SparseIntervalMatrix base = SparseCfIntervalMatrix(data, alpha);
  const size_t base_nnz = base.nnz();

  PrintHeader("Figure 11 — YCSB-style serving: concurrent reads over "
              "epoch-published snapshots");
  std::printf(
      "%zux%zu CF matrix, nnz %zu, ISVD%d rank %zu | %zu readers, %.1fs, "
      "%s users (theta %.2f)\nmix: %.0f%% predict / %.0f%% top-%zu / "
      "%.0f%% update\n\n",
      users, items, base_nnz, strategy, rank, workload.readers,
      workload.duration_seconds,
      workload.user_distribution == KeyDistribution::kZipfian ? "zipfian"
                                                              : "uniform",
      workload.zipf_theta, workload.read_fraction * 100.0,
      workload.topk_fraction * 100.0, workload.top_k,
      (1.0 - workload.read_fraction - workload.topk_fraction) * 100.0);

  ServingEngine engine(strategy, rank, std::move(base));
  // Solver-internals delta over the workload alone: the construction-time
  // cold decomposition stays out of the warm-hit-rate denominator.
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  const ServingWorkloadReport report = RunServingWorkload(engine, workload);
  const SolverCounterDeltas solver(
      before, obs::MetricsRegistry::Global().Snapshot());

  std::printf("%-8s %10s %10s %9s %9s %9s %9s\n", "op", "ops", "ops/s",
              "p50 us", "p95 us", "p99 us", "max us");
  PrintRule(70);
  PrintOpRow("predict", report.predict_ops, report.predict_latency,
             report.seconds);
  PrintOpRow("topk", report.topk_ops, report.topk_latency, report.seconds);
  PrintOpRow("update", report.update_ops, report.update_latency,
             report.seconds);
  PrintRule(70);
  std::printf(
      "total %zu ops, %.0f ops/s | epochs %llu -> %llu (%llu published), "
      "%zu epoch regressions\n",
      report.total_ops(), report.throughput(),
      static_cast<unsigned long long>(report.first_epoch),
      static_cast<unsigned long long>(report.last_epoch),
      static_cast<unsigned long long>(report.snapshots_published),
      report.epoch_regressions);
  std::printf(
      "solver: %llu matvecs, %llu warm / %llu cold refreshes "
      "(%.0f%% warm)\n",
      static_cast<unsigned long long>(solver.matvecs),
      static_cast<unsigned long long>(solver.warm_refreshes),
      static_cast<unsigned long long>(solver.cold_refreshes),
      solver.warm_hit_rate() * 100.0);

  // A regression here means a reader saw time move backwards — the
  // publication contract is broken. Fail the bench loudly; CI runs this.
  IVMF_CHECK_MSG(report.epoch_regressions == 0,
                 "readers observed non-monotonic epochs");

  JsonWriter json(JsonPathFlag(argc, argv, "fig11_serving"));
  const char* distribution =
      workload.user_distribution == KeyDistribution::kZipfian ? "zipfian"
                                                              : "uniform";
  JsonOpRecord(json, "predict", report.predict_ops, report.predict_latency,
               report, solver, users, items, rank, strategy, workload.readers,
               distribution, workload.zipf_theta);
  JsonOpRecord(json, "topk", report.topk_ops, report.topk_latency, report,
               solver, users, items, rank, strategy, workload.readers,
               distribution, workload.zipf_theta);
  JsonOpRecord(json, "update", report.update_ops, report.update_latency,
               report, solver, users, items, rank, strategy, workload.readers,
               distribution, workload.zipf_theta);
  if (!json.Finish()) {
    std::fprintf(stderr, "error: failed writing JSON output\n");
    return 1;
  }
  return 0;
}
