// Figure 8: ORL-style face experiments —
//   (a) reconstruction RMSE vs target rank (ISVD0, ISVD4-b, ISVD4-c, NMF,
//       I-NMF),
//   (b) 1-NN classification F1 vs rank (SVD on the scalar matrix, ISVD0,
//       ISVD1..4-b) using U x Σ features and the interval Euclidean
//       distance,
//   (c) k-means clustering NMI vs rank for the same methods.
//
// The corpus is the synthetic ORL substitute (see DESIGN.md): 40
// individuals x 10 images at 16x16 px by default, with F.1 neighborhood
// intervals.

#include <cmath>
#include <cstdio>
#include <vector>

#include "base/rng.h"
#include "bench_util.h"
#include "core/isvd.h"
#include "data/faces.h"
#include "eval/kmeans.h"
#include "eval/knn.h"
#include "eval/metrics.h"
#include "factor/nmf.h"
#include "linalg/svd.h"

namespace {

using namespace ivmf;
using namespace ivmf::bench;

// RMSE of a scalar reconstruction against the midpoint image matrix.
double ReconstructionRmse(const Matrix& truth, const Matrix& approx) {
  const Matrix diff = truth - approx;
  return diff.FrobeniusNorm() /
         std::sqrt(static_cast<double>(truth.size()));
}

// Interval-valued features [U_* x Σ_*, U^* x Σ^*] (Section 6.1.2): the
// classification task uses these with the interval Euclidean distance.
IntervalMatrix IsvdIntervalFeatures(const IsvdResult& result) {
  Matrix lo = result.u.lower();
  Matrix hi = result.u.upper();
  for (size_t i = 0; i < lo.rows(); ++i) {
    for (size_t j = 0; j < lo.cols(); ++j) {
      lo(i, j) *= result.sigma[j].lo;
      hi(i, j) *= result.sigma[j].hi;
    }
  }
  return IntervalMatrix(lo, hi).AverageReplaced();
}

struct Split {
  std::vector<size_t> train_rows, test_rows;
  std::vector<int> train_labels, test_labels;
};

Split MakeSplit(const std::vector<int>& labels, Rng& rng) {
  // 50% of each individual's rows for training, per Section 6.1.2.
  Split split;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (rng.Bernoulli(0.5)) {
      split.train_rows.push_back(i);
      split.train_labels.push_back(labels[i]);
    } else {
      split.test_rows.push_back(i);
      split.test_labels.push_back(labels[i]);
    }
  }
  return split;
}

Matrix SelectRows(const Matrix& m, const std::vector<size_t>& rows) {
  Matrix out(rows.size(), m.cols());
  for (size_t i = 0; i < rows.size(); ++i) out.SetRow(i, m.Row(rows[i]));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int side = IntFlag(argc, argv, "side", 16);
  const int k_individuals = IntFlag(argc, argv, "individuals", 40);

  FaceCorpusConfig config;
  config.num_individuals = static_cast<size_t>(k_individuals);
  config.width = static_cast<size_t>(side);
  config.height = static_cast<size_t>(side);
  // Harder-than-default corpus so the method differences the paper reports
  // are visible (the default corpus saturates every classifier).
  config.jitter = 0.11;
  config.pixel_noise = 0.05;
  const FaceCorpus corpus = GenerateFaceCorpus(config);
  const IntervalMatrix& m = corpus.intervals;
  const size_t full_rank = std::min(m.rows(), m.cols());

  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.gram_side = GramSide::kAuto;
  const GramEig full = ComputeGramEig(m, 0, options);

  // ---- (a) Reconstruction ------------------------------------------------
  PrintHeader("Figure 8a — reconstruction RMSE vs target rank (lower = better)");
  std::printf("%-8s %10s %10s %10s %10s %10s\n", "rank", "ISVD0", "ISVD4-b",
              "ISVD4-c", "NMF", "I-NMF");
  const std::vector<size_t> recon_ranks = {10, std::min<size_t>(100, full_rank),
                                           std::min<size_t>(200, full_rank)};
  for (const size_t rank : recon_ranks) {
    const GramEig gram = TruncateGramEig(full, rank);
    const Matrix mid = m.Mid();

    const IsvdResult r0 = Isvd0(m, rank, options);
    const double rmse0 =
        ReconstructionRmse(mid, r0.Reconstruct().Mid());

    IsvdOptions opt_b = options;
    opt_b.target = DecompositionTarget::kB;
    const double rmse4b = ReconstructionRmse(
        mid, Isvd4(m, rank, gram, opt_b).Reconstruct().Mid());

    IsvdOptions opt_c = options;
    opt_c.target = DecompositionTarget::kC;
    const double rmse4c = ReconstructionRmse(
        mid, Isvd4(m, rank, gram, opt_c).Reconstruct().Mid());

    NmfOptions nmf_options;
    nmf_options.max_iterations = 80;
    const NmfResult nmf = ComputeNmf(corpus.images, rank, nmf_options);
    const double rmse_nmf =
        ReconstructionRmse(corpus.images, nmf.Reconstruct());

    const IntervalNmfResult inmf = ComputeIntervalNmf(m, rank, nmf_options);
    const double rmse_inmf =
        ReconstructionRmse(mid, inmf.Reconstruct().Mid());

    std::printf("%-8zu %10.4f %10.4f %10.4f %10.4f %10.4f\n", rank, rmse0,
                rmse4b, rmse4c, rmse_nmf, rmse_inmf);
  }
  PrintRule();
  std::printf("expected shape: ISVD0 / ISVD4-b / ISVD4-c best; NMF and "
              "I-NMF clearly worse (paper Fig 8a).\n\n");

  // ---- (b) NN classification + (c) clustering ----------------------------
  Rng split_rng(81);
  const Split split = MakeSplit(corpus.labels, split_rng);

  PrintHeader("Figure 8b/8c — 1-NN F1 and k-means NMI vs rank");
  std::printf("%-6s %8s %8s %8s %8s %8s %8s   |  %8s %8s %8s\n", "rank",
              "SVD", "ISVD0", "ISVD1", "ISVD2", "ISVD3", "ISVD4", "NMI:SVD",
              "NMI:I2", "NMI:I4");
  IsvdOptions opt_a = options;
  opt_a.target = DecompositionTarget::kA;  // interval features (Sec 6.1.2)

  for (const size_t rank :
       {size_t{10}, size_t{20}, size_t{30}, size_t{50}, size_t{100}}) {
    if (rank > full_rank) continue;
    const GramEig gram = TruncateGramEig(full, rank);

    // Interval-valued [U_*Σ_*, U^*Σ^*] features per ISVD strategy; the
    // scalar SVD baseline uses midpoint U x Σ features.
    std::vector<std::pair<const char*, IntervalMatrix>> feature_sets;
    {
      const SvdResult svd = ComputeSvd(m.Mid(), rank);
      Matrix f = svd.u;
      for (size_t i = 0; i < f.rows(); ++i)
        for (size_t j = 0; j < f.cols(); ++j) f(i, j) *= svd.sigma[j];
      feature_sets.emplace_back("SVD", IntervalMatrix::FromScalar(f));
    }
    feature_sets.emplace_back(
        "ISVD0", IsvdIntervalFeatures(Isvd0(m, rank, opt_a)));
    feature_sets.emplace_back(
        "ISVD1", IsvdIntervalFeatures(Isvd1(m, rank, opt_a)));
    feature_sets.emplace_back(
        "ISVD2", IsvdIntervalFeatures(Isvd2(m, rank, gram, opt_a)));
    feature_sets.emplace_back(
        "ISVD3", IsvdIntervalFeatures(Isvd3(m, rank, gram, opt_a)));
    feature_sets.emplace_back(
        "ISVD4", IsvdIntervalFeatures(Isvd4(m, rank, gram, opt_a)));

    std::printf("%-6zu", rank);
    std::vector<double> nmis;
    for (const auto& [name, features] : feature_sets) {
      const Matrix doubled = ConcatenateEndpoints(features);
      const Matrix train = SelectRows(doubled, split.train_rows);
      const Matrix test = SelectRows(doubled, split.test_rows);
      const std::vector<int> predicted =
          Classify1Nn(train, split.train_labels, test);
      std::printf(" %8.3f", MacroF1(split.test_labels, predicted));

      KMeansOptions kopts;
      kopts.k = config.num_individuals;
      kopts.restarts = 2;
      const KMeansResult clusters = KMeans(doubled, kopts);
      nmis.push_back(
          NormalizedMutualInformation(corpus.labels, clusters.assignments));
    }
    // NMI columns: SVD, ISVD2, ISVD4 (paper highlights ISVD1/2 as best).
    std::printf("   |  %8.3f %8.3f %8.3f\n", nmis[0], nmis[3], nmis[5]);
  }
  PrintRule();
  std::printf("expected shape: ISVD1/ISVD2 best classification at low rank; "
              "ISVD3/4's V-recomputation does not help U-side tasks "
              "(paper Fig 8b/8c).\n");
  return 0;
}
