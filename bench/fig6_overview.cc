// Figure 6: (a) decomposition accuracy (harmonic-mean Θ_HM) of all ISVD
// strategies under all three decomposition targets plus the LP competitors,
// and (b) the execution-time breakdown per strategy, on the default
// synthetic configuration (Table 1, bold values).
//
// LP competitors run at a reduced trial count by default because each LP
// decomposition costs thousands of simplex solves — exactly the runtime
// blow-up the paper reports (Fig 6b's 'hours' bars).

#include <cstdio>
#include <vector>

#include "base/rng.h"
#include "bench_util.h"
#include "data/synthetic.h"

int main(int argc, char** argv) {
  using namespace ivmf;
  using namespace ivmf::bench;

  const int trials = IntFlag(argc, argv, "trials", 10);
  const int lp_trials = IntFlag(argc, argv, "lp_trials", 1);
  const int rank = IntFlag(argc, argv, "rank", 20);
  const bool skip_lp = BoolFlag(argc, argv, "skip_lp");

  SyntheticConfig config;  // default 40 x 250, 100% / 100%
  Rng master(44);

  ScoreAccumulator acc;
  for (int t = 0; t < trials; ++t) {
    Rng rng = master.Fork();
    const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
    IsvdOptions options;
    const GramEig gram = ComputeGramEig(m, rank, options);
    std::vector<MethodScore> scores;
    ScoreIsvdFamily(m, rank, DecompositionTarget::kA, gram, scores);
    ScoreIsvdFamily(m, rank, DecompositionTarget::kB, gram, scores);
    ScoreIsvdFamily(m, rank, DecompositionTarget::kC, gram, scores);
    acc.Add(scores);
  }

  // LP competitors (reduced size / trials: the point is the order of
  // magnitude, which already shows at one trial).
  ScoreAccumulator lp_acc;
  if (!skip_lp) {
    Rng lp_master(45);
    for (int t = 0; t < lp_trials; ++t) {
      Rng rng = lp_master.Fork();
      const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
      std::vector<MethodScore> scores;
      for (const auto& [target, label] :
           std::vector<std::pair<DecompositionTarget, const char*>>{
               {DecompositionTarget::kA, "LPa"},
               {DecompositionTarget::kB, "LPb"},
               {DecompositionTarget::kC, "LPc"}}) {
        IsvdOptions options;
        options.target = target;
        options.gram_side = GramSide::kAuto;  // the 40-side Gram keeps the
                                              // LP count tractable
        Stopwatch sw;
        const IsvdResult result = LpIsvd(m, rank, options);
        MethodScore score;
        score.name = label;
        score.seconds = sw.Seconds();
        score.harmonic_mean =
            DecompositionAccuracy(m, result.Reconstruct()).harmonic_mean;
        score.timings = result.timings;
        scores.push_back(score);
      }
      lp_acc.Add(scores);
    }
  }

  PrintHeader("Figure 6a — Θ_HM (harmonic mean) per method, default config");
  std::printf("%-10s %12s %14s\n", "method", "H-mean", "time (s)");
  for (const std::string& name : acc.Names()) {
    std::printf("%-10s %12.3f %14.4f\n", name.c_str(), acc.MeanH(name),
                acc.MeanSeconds(name));
  }
  if (!skip_lp) {
    for (const std::string& name : lp_acc.Names()) {
      std::printf("%-10s %12.3f %14.4f   <- LP competitor\n", name.c_str(),
                  lp_acc.MeanH(name), lp_acc.MeanSeconds(name));
    }
  }
  PrintRule();
  std::printf("expected shape (paper): ISVD#-b highest, ISVD4-b best "
              "overall; LP H-mean ~0 for interval outputs with far larger "
              "runtimes.\n\n");

  PrintHeader("Figure 6b — execution time breakdown (seconds, mean/trial)");
  std::printf("%-10s %10s %10s %10s %10s %10s %10s\n", "method", "preproc",
              "decomp", "align", "solve", "recomp", "renorm");
  for (const std::string& name : acc.Names()) {
    const PhaseTimings t = acc.MeanTimings(name);
    std::printf("%-10s %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                name.c_str(), t.preprocess, t.decompose, t.align, t.solve,
                t.recompute, t.renormalize);
  }
  PrintRule();
  return 0;
}
