// Shared helpers for the experiment harnesses in bench/.
//
// Each binary regenerates one table or figure of the paper's evaluation
// (see DESIGN.md for the index). Output is plain text in the same row /
// column layout the paper uses so results can be compared side by side.

#ifndef IVMF_BENCH_BENCH_UTIL_H_
#define IVMF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "base/stopwatch.h"
#include "core/accuracy.h"
#include "core/isvd.h"
#include "core/lp_isvd.h"

namespace ivmf::bench {

// -- Minimal flag parsing ---------------------------------------------------

// Returns the integer value of "--name=V" if present, else `fallback`.
inline int IntFlag(int argc, char** argv, const char* name, int fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoi(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline bool BoolFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

// -- Strategy sweeps ----------------------------------------------------------

struct MethodScore {
  std::string name;
  double harmonic_mean = 0.0;
  double seconds = 0.0;
  PhaseTimings timings;
};

// Runs ISVD0 and ISVD1–ISVD4 under the given target on one matrix,
// reusing `gram` for strategies 2–4. Appends one MethodScore per method.
inline void ScoreIsvdFamily(const IntervalMatrix& m, size_t rank,
                            DecompositionTarget target, const GramEig& gram,
                            std::vector<MethodScore>& out,
                            bool include_isvd0 = true) {
  IsvdOptions options;
  options.target = target;
  for (int strategy = include_isvd0 ? 0 : 1; strategy <= 4; ++strategy) {
    // ISVD0 is target-c only; report it once under target c.
    if (strategy == 0 && target != DecompositionTarget::kC) continue;
    Stopwatch sw;
    IsvdResult result;
    switch (strategy) {
      case 0:
        result = Isvd0(m, rank, options);
        break;
      case 1:
        result = Isvd1(m, rank, options);
        break;
      case 2:
        result = Isvd2(m, rank, gram, options);
        break;
      case 3:
        result = Isvd3(m, rank, gram, options);
        break;
      default:
        result = Isvd4(m, rank, gram, options);
        break;
    }
    MethodScore score;
    score.name = IsvdName(strategy, target);
    score.seconds = (strategy >= 2)
                        ? sw.Seconds() + gram.preprocess_seconds +
                              gram.decompose_seconds
                        : sw.Seconds();
    score.harmonic_mean =
        DecompositionAccuracy(m, result.Reconstruct()).harmonic_mean;
    score.timings = result.timings;
    out.push_back(score);
  }
}

// Accumulates per-method means over trials.
class ScoreAccumulator {
 public:
  void Add(const std::vector<MethodScore>& scores) {
    for (const MethodScore& s : scores) {
      Entry& e = entries_[s.name];
      e.h_sum += s.harmonic_mean;
      e.sec_sum += s.seconds;
      e.timings += s.timings;
      ++e.count;
    }
    ++trials_;
  }

  double MeanH(const std::string& name) const {
    const auto it = entries_.find(name);
    if (it == entries_.end() || it->second.count == 0) return 0.0;
    return it->second.h_sum / it->second.count;
  }

  double MeanSeconds(const std::string& name) const {
    const auto it = entries_.find(name);
    if (it == entries_.end() || it->second.count == 0) return 0.0;
    return it->second.sec_sum / it->second.count;
  }

  PhaseTimings MeanTimings(const std::string& name) const {
    PhaseTimings t;
    const auto it = entries_.find(name);
    if (it == entries_.end() || it->second.count == 0) return t;
    t = it->second.timings;
    const double inv = 1.0 / it->second.count;
    t.preprocess *= inv;
    t.decompose *= inv;
    t.align *= inv;
    t.solve *= inv;
    t.recompute *= inv;
    t.renormalize *= inv;
    return t;
  }

  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    for (const auto& [name, entry] : entries_) names.push_back(name);
    return names;
  }

 private:
  struct Entry {
    double h_sum = 0.0;
    double sec_sum = 0.0;
    PhaseTimings timings;
    int count = 0;
  };
  std::map<std::string, Entry> entries_;
  int trials_ = 0;
};

// -- Formatting ---------------------------------------------------------------

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const char* title) {
  PrintRule();
  std::printf("%s\n", title);
  PrintRule();
}

}  // namespace ivmf::bench

#endif  // IVMF_BENCH_BENCH_UTIL_H_
