// Shared helpers for the experiment harnesses in bench/.
//
// Each binary regenerates one table or figure of the paper's evaluation
// (see DESIGN.md for the index). Output is plain text in the same row /
// column layout the paper uses so results can be compared side by side.

#ifndef IVMF_BENCH_BENCH_UTIL_H_
#define IVMF_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <sys/resource.h>

#include "base/check.h"
#include "base/flags.h"
#include "base/stopwatch.h"
#include "core/accuracy.h"
#include "core/isvd.h"
#include "core/lp_isvd.h"
#include "obs/export_flags.h"
#include "obs/metrics.h"
#include "sparse/shard_store.h"

namespace ivmf::bench {

// -- Minimal flag parsing ---------------------------------------------------
// One shared implementation (base/flags.h), re-exported so bench code keeps
// calling the unqualified names.

using ivmf::BoolFlag;
using ivmf::DoubleFlag;
using ivmf::IntFlag;
using ivmf::StringFlag;

// -- Machine-readable results -------------------------------------------------
//
// Every bench accepts --json=PATH (or bare --json, defaulting to
// BENCH_<bench>.json in the working directory) and emits one flat JSON
// record per measured row alongside the human-readable table, so CI can
// track the perf trajectory without scraping text.

// Resolves the --json flag to an output path; "" means disabled.
inline std::string JsonPathFlag(int argc, char** argv,
                                const char* bench_name) {
  const std::string explicit_path = StringFlag(argc, argv, "json", "");
  if (!explicit_path.empty()) return explicit_path;
  if (BoolFlag(argc, argv, "json")) {
    return std::string("BENCH_") + bench_name + ".json";
  }
  return "";
}

// Collects flat records and writes them as a JSON array. Values are
// rendered eagerly, so Field() accepts mixed types without a variant.
class JsonWriter {
 public:
  // Empty path disables the writer; every call becomes a no-op.
  explicit JsonWriter(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  void BeginRecord() {
    if (enabled()) records_.emplace_back();
  }

  void Field(const char* key, double value) {
    // NaN / Inf have no JSON representation; "null" keeps the record
    // parseable instead of poisoning the whole file.
    if (!std::isfinite(value)) {
      Raw(key, "null");
      return;
    }
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    Raw(key, buffer);
  }
  void Field(const char* key, size_t value) {
    Raw(key, std::to_string(value));
  }
  void Field(const char* key, int value) { Raw(key, std::to_string(value)); }
  void Field(const char* key, bool value) {
    Raw(key, value ? "true" : "false");
  }
  // The literal overload matters: without it a string literal would take
  // the bool overload through pointer decay.
  void Field(const char* key, const char* value) {
    Field(key, std::string(value));
  }
  void Field(const char* key, const std::string& value) {
    Raw(key, "\"" + obs::JsonEscape(value) + "\"");
  }

  // Writes the collected array; returns false on I/O failure (and is a
  // successful no-op when disabled).
  bool Finish() const {
    if (!enabled()) return true;
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) return false;
    std::fputs("[\n", out);
    for (size_t r = 0; r < records_.size(); ++r) {
      std::fputs("  {", out);
      for (size_t f = 0; f < records_[r].size(); ++f) {
        std::fprintf(out, "%s\"%s\": %s", f == 0 ? "" : ", ",
                     records_[r][f].first.c_str(),
                     records_[r][f].second.c_str());
      }
      std::fprintf(out, "}%s\n", r + 1 < records_.size() ? "," : "");
    }
    std::fputs("]\n", out);
    const bool ok = std::fclose(out) == 0;
    if (ok) std::printf("wrote %zu records to %s\n", records_.size(),
                        path_.c_str());
    return ok;
  }

 private:
  void Raw(const char* key, std::string value) {
    if (!enabled()) return;
    IVMF_CHECK_MSG(!records_.empty(),
                   "JsonWriter::Field before the first BeginRecord");
    records_.back().emplace_back(key, std::move(value));
  }

  std::string path_;
  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

// -- Memory accounting --------------------------------------------------------

// Peak resident set size of the process so far, in bytes. getrusage reports
// ru_maxrss in KiB on Linux (and bytes on some BSDs — this header targets
// the Linux convention the CI runners use). High-water mark: it never
// decreases, so per-phase deltas need a fresh process.
inline size_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
}

// The memory record every bench JSON carries: the process peak RSS and the
// bytes currently mmap'd by shard stores (0 for in-core benches). Both are
// lower-is-better for the perf gate (obs/bench_diff.cc knows the names).
inline void WriteMemoryFields(JsonWriter& json) {
  json.Field("peak_rss_bytes", PeakRssBytes());
  json.Field("mapped_bytes", MappedBytesTotal());
}

// -- Solver internals ---------------------------------------------------------

// Difference of the solver-side counters between two registry snapshots:
// what one measured phase cost in matvecs / Krylov iterations, and which
// refresh path the streaming layer took. Benches bracket a phase with
// Snapshot() calls and emit the delta next to the wall clock, so the
// BENCH_*.json perf trajectory records why a number moved, not only that
// it did.
struct SolverCounterDeltas {
  uint64_t matvecs = 0;        // sparse kernel invocations, all variants
  uint64_t matvec_nnz = 0;     // nonzeros those invocations streamed
  uint64_t iterations = 0;     // Krylov steps, eig + svd together
  uint64_t restarts = 0;       // invariant-subspace restarts
  uint64_t warm_refreshes = 0;
  uint64_t cold_refreshes = 0;

  SolverCounterDeltas() = default;
  SolverCounterDeltas(const obs::MetricsSnapshot& before,
                      const obs::MetricsSnapshot& after) {
    const auto delta = [&](const char* prefix) {
      return after.CounterSum(prefix) - before.CounterSum(prefix);
    };
    matvecs = delta("sparse.matvec.calls");
    matvec_nnz = delta("sparse.matvec.nnz");
    iterations =
        delta("lanczos.eig.iterations") + delta("lanczos.svd.iterations");
    restarts = delta("lanczos.eig.restarts") + delta("lanczos.svd.restarts");
    warm_refreshes = delta("streaming.refresh.count{mode=warm}");
    cold_refreshes = delta("streaming.refresh.count{mode=cold}");
  }

  double warm_hit_rate() const {
    const uint64_t total = warm_refreshes + cold_refreshes;
    return total > 0 ? static_cast<double>(warm_refreshes) / total : 0.0;
  }

  void WriteFields(JsonWriter& json) const {
    json.Field("matvecs", static_cast<size_t>(matvecs));
    json.Field("matvec_nnz", static_cast<size_t>(matvec_nnz));
    json.Field("krylov_iterations", static_cast<size_t>(iterations));
    json.Field("krylov_restarts", static_cast<size_t>(restarts));
    json.Field("warm_refreshes", static_cast<size_t>(warm_refreshes));
    json.Field("cold_refreshes", static_cast<size_t>(cold_refreshes));
    json.Field("warm_hit_rate", warm_hit_rate());
  }
};

// Honors an optional --metrics-json=PATH flag: dumps the full registry
// snapshot (counters, gauges, histogram percentiles) next to the bench's
// BENCH_*.json, in the same format ivmf_serve writes. Returns false only on
// I/O failure with the flag set. One parse + one writer shared with the
// tools (obs/export_flags.h) so the flag surface cannot drift.
inline bool MaybeWriteMetricsSnapshot(int argc, char** argv) {
  obs::ObsCliOptions options = obs::ParseObsCliOptions(argc, argv);
  // Benches never started span collection, so an exit-time --trace dump
  // would always be empty; only the metrics part of the surface applies.
  options.trace_path.clear();
  return obs::WriteObsOutputs(options);
}

// -- Strategy sweeps ----------------------------------------------------------

struct MethodScore {
  std::string name;
  double harmonic_mean = 0.0;
  double seconds = 0.0;
  PhaseTimings timings;
};

// Runs ISVD0 and ISVD1–ISVD4 under the given target on one matrix,
// reusing `gram` for strategies 2–4. Appends one MethodScore per method.
inline void ScoreIsvdFamily(const IntervalMatrix& m, size_t rank,
                            DecompositionTarget target, const GramEig& gram,
                            std::vector<MethodScore>& out,
                            bool include_isvd0 = true) {
  IsvdOptions options;
  options.target = target;
  for (int strategy = include_isvd0 ? 0 : 1; strategy <= 4; ++strategy) {
    // ISVD0 is target-c only; report it once under target c.
    if (strategy == 0 && target != DecompositionTarget::kC) continue;
    Stopwatch sw;
    IsvdResult result;
    switch (strategy) {
      case 0:
        result = Isvd0(m, rank, options);
        break;
      case 1:
        result = Isvd1(m, rank, options);
        break;
      case 2:
        result = Isvd2(m, rank, gram, options);
        break;
      case 3:
        result = Isvd3(m, rank, gram, options);
        break;
      default:
        result = Isvd4(m, rank, gram, options);
        break;
    }
    MethodScore score;
    score.name = IsvdName(strategy, target);
    score.seconds = (strategy >= 2)
                        ? sw.Seconds() + gram.preprocess_seconds +
                              gram.decompose_seconds
                        : sw.Seconds();
    score.harmonic_mean =
        DecompositionAccuracy(m, result.Reconstruct()).harmonic_mean;
    score.timings = result.timings;
    out.push_back(score);
  }
}

// Accumulates per-method means over trials.
class ScoreAccumulator {
 public:
  void Add(const std::vector<MethodScore>& scores) {
    for (const MethodScore& s : scores) {
      Entry& e = entries_[s.name];
      e.h_sum += s.harmonic_mean;
      e.sec_sum += s.seconds;
      e.timings += s.timings;
      ++e.count;
    }
    ++trials_;
  }

  double MeanH(const std::string& name) const {
    const auto it = entries_.find(name);
    if (it == entries_.end() || it->second.count == 0) return 0.0;
    return it->second.h_sum / it->second.count;
  }

  double MeanSeconds(const std::string& name) const {
    const auto it = entries_.find(name);
    if (it == entries_.end() || it->second.count == 0) return 0.0;
    return it->second.sec_sum / it->second.count;
  }

  PhaseTimings MeanTimings(const std::string& name) const {
    PhaseTimings t;
    const auto it = entries_.find(name);
    if (it == entries_.end() || it->second.count == 0) return t;
    t = it->second.timings;
    const double inv = 1.0 / it->second.count;
    t.preprocess *= inv;
    t.decompose *= inv;
    t.align *= inv;
    t.solve *= inv;
    t.recompute *= inv;
    t.renormalize *= inv;
    return t;
  }

  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    for (const auto& [name, entry] : entries_) names.push_back(name);
    return names;
  }

 private:
  struct Entry {
    double h_sum = 0.0;
    double sec_sum = 0.0;
    PhaseTimings timings;
    int count = 0;
  };
  std::map<std::string, Entry> entries_;
  int trials_ = 0;
};

// -- Formatting ---------------------------------------------------------------

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const char* title) {
  PrintRule();
  std::printf("%s\n", title);
  PrintRule();
}

}  // namespace ivmf::bench

#endif  // IVMF_BENCH_BENCH_UTIL_H_
