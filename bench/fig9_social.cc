// Figure 9 (a)–(c): reconstruction accuracy tables for the social-media
// datasets — Ciao-style and Epinions-style user-category rating ranges and
// a MovieLens-style user-genre interval matrix — at 100% / 50% / 5% of the
// full rank, all 13 ISVD method/target combinations with per-column ranks.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "base/rng.h"
#include "bench_util.h"
#include "data/ratings.h"

namespace {

using namespace ivmf;
using namespace ivmf::bench;

void RunDataset(const char* title, const IntervalMatrix& m) {
  const size_t full_rank = std::min(m.rows(), m.cols());
  const std::vector<size_t> ranks = {full_rank,
                                     std::max<size_t>(1, full_rank / 2),
                                     std::max<size_t>(1, full_rank / 20)};

  IsvdOptions options;
  const GramEig full = ComputeGramEig(m, 0, options);

  std::vector<ScoreAccumulator> acc(ranks.size());
  for (size_t k = 0; k < ranks.size(); ++k) {
    const GramEig gram = TruncateGramEig(full, ranks[k]);
    std::vector<MethodScore> scores;
    ScoreIsvdFamily(m, ranks[k], DecompositionTarget::kA, gram, scores);
    ScoreIsvdFamily(m, ranks[k], DecompositionTarget::kB, gram, scores);
    ScoreIsvdFamily(m, ranks[k], DecompositionTarget::kC, gram, scores);
    acc[k].Add(scores);
  }

  PrintHeader(title);
  std::printf("%-10s %16s %16s %16s\n", "method",
              ("100% rank(=" + std::to_string(ranks[0]) + ")").c_str(),
              ("50% rank(=" + std::to_string(ranks[1]) + ")").c_str(),
              ("5% rank(=" + std::to_string(ranks[2]) + ")").c_str());
  const std::vector<std::string> names = acc[0].Names();
  for (const std::string& name : names) {
    std::printf("%-10s", name.c_str());
    for (size_t k = 0; k < ranks.size(); ++k) {
      const double h = acc[k].MeanH(name);
      int order = 1;
      for (const std::string& other : names)
        if (acc[k].MeanH(other) > h + 1e-12) ++order;
      std::printf("   %8.3f (#%2d)", h, order);
    }
    std::printf("\n");
  }
  PrintRule();
}

}  // namespace

int main(int argc, char** argv) {
  const int users_scale = IntFlag(argc, argv, "users", 700);

  // (a) Ciao-style: 28 categories, density ~0.28, interval density ~0.44.
  {
    CategoryRangeConfig config;
    config.num_users = static_cast<size_t>(users_scale);
    config.num_categories = 28;
    config.matrix_density = 0.28;
    config.interval_density = 0.44;
    config.mean_span = 2.20;
    config.seed = 91;
    RunDataset("Figure 9a — Ciao-style user-category ranges",
               ivmf::GenerateCategoryRangeMatrix(config));
  }

  // (b) Epinions-style: 27 categories, density ~0.26, interval density ~0.49.
  {
    CategoryRangeConfig config;
    config.num_users = static_cast<size_t>(users_scale * 10 / 7);
    config.num_categories = 27;
    config.matrix_density = 0.26;
    config.interval_density = 0.49;
    config.mean_span = 2.44;
    config.seed = 92;
    RunDataset("Figure 9b — Epinions-style user-category ranges",
               ivmf::GenerateCategoryRangeMatrix(config));
  }

  // (c) MovieLens-style: user-genre interval matrix from synthetic ratings.
  {
    RatingsConfig config;
    config.num_users = 300;
    config.num_items = 500;
    config.num_genres = 19;
    config.seed = 93;
    const RatingsData data = ivmf::GenerateRatings(config);
    RunDataset("Figure 9c — MovieLens-style user-genre ranges (19 genres)",
               ivmf::UserGenreIntervalMatrix(data));
  }

  std::printf("expected shape (paper Fig 9): option-b best overall with "
              "ISVD3/4 leading at 100%%/50%% rank; option-a (ISVD1/2) wins "
              "only the 5%%-rank column.\n");
  return 0;
}
