// Figure 5: cosine similarities between corresponding min/max factor
// vectors (V and U) before and after ISVD4's recomputation step, averaged
// over random matrices from the default synthetic configuration.
//
// "Before" is the state after ISVD3 (aligned eigen-side V, solved U);
// "after" is ISVD4's recomputed V. U's similarity is already high before
// the recomputation (the corrective effect discussed in Section 4.5.1).

#include <cmath>
#include <cstdio>
#include <vector>

#include "align/ilsa.h"
#include "base/rng.h"
#include "bench_util.h"
#include "core/isvd.h"
#include "data/synthetic.h"

int main(int argc, char** argv) {
  using namespace ivmf;
  using namespace ivmf::bench;

  const int trials = IntFlag(argc, argv, "trials", 10);
  const int rank = IntFlag(argc, argv, "rank", 20);

  SyntheticConfig config;  // default 40 x 250
  Rng master(43);

  std::vector<double> v_before(rank, 0.0), v_after(rank, 0.0);
  std::vector<double> u_before(rank, 0.0), u_after(rank, 0.0);

  IsvdOptions options;
  options.target = DecompositionTarget::kA;

  for (int t = 0; t < trials; ++t) {
    Rng rng = master.Fork();
    const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
    const GramEig gram = ComputeGramEig(m, rank, options);
    const IsvdResult r3 = Isvd3(m, rank, gram, options);
    const IsvdResult r4 = Isvd4(m, rank, gram, options);

    const std::vector<double> v3 = ColumnwiseCosine(r3.v.lower(), r3.v.upper());
    const std::vector<double> v4 = ColumnwiseCosine(r4.v.lower(), r4.v.upper());
    const std::vector<double> u3 = ColumnwiseCosine(r3.u.lower(), r3.u.upper());
    const std::vector<double> u4 = ColumnwiseCosine(r4.u.lower(), r4.u.upper());
    for (int j = 0; j < rank; ++j) {
      // Increasing order of singular value, as in the paper's plots.
      const int src = rank - 1 - j;
      v_before[j] += std::abs(v3[src]);
      v_after[j] += std::abs(v4[src]);
      u_before[j] += std::abs(u3[src]);
      u_after[j] += std::abs(u4[src]);
    }
  }
  for (int j = 0; j < rank; ++j) {
    v_before[j] /= trials;
    v_after[j] /= trials;
    u_before[j] /= trials;
    u_after[j] /= trials;
  }

  PrintHeader(
      "Figure 5 — min/max factor cosine similarity before/after the ISVD4 "
      "V-recomputation (default config)");
  auto print_row = [&](const char* label, const std::vector<double>& row) {
    std::printf("%-26s", label);
    for (int j = 0; j < rank; ++j) std::printf("%6.2f", row[j]);
    std::printf("\n");
  };
  std::printf("%-26s", "component (asc. sigma)");
  for (int j = 0; j < rank; ++j) std::printf("%6d", j + 1);
  std::printf("\n");
  print_row("V before recomputation", v_before);
  print_row("V after  recomputation", v_after);
  print_row("U before recomputation", u_before);
  print_row("U after  recomputation", u_after);
  PrintRule();

  double v_gain = 0.0;
  for (int j = 0; j < rank; ++j) v_gain += v_after[j] - v_before[j];
  std::printf("mean V-similarity gain: %+.4f (paper: clear lift, Fig 5b)\n",
              v_gain / rank);
  std::printf("U is already well aligned before recomputation (Fig 5a).\n");
  return 0;
}
