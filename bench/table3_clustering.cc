// Table 3: clustering-based classification accuracy (NMI) and execution
// time using (i) the original scalar pixel vectors, (ii) the interval-valued
// pixel vectors, and (iii) the low-rank ISVD2-b (r = 20) representation —
// at two image resolutions.
//
// The paper's claim: interval information improves NMI over scalar vectors
// but costs much more clustering time; ISVD2-b matches the interval NMI at
// a fraction of the cost (decomposition + k-means on r-dim features).

#include <cstdio>
#include <vector>

#include "base/stopwatch.h"
#include "bench_util.h"
#include "core/isvd.h"
#include "data/faces.h"
#include "eval/kmeans.h"
#include "eval/metrics.h"

namespace {

using namespace ivmf;
using namespace ivmf::bench;

Matrix IsvdFeatures(const IsvdResult& result) {
  Matrix features = result.ScalarU();
  for (size_t i = 0; i < features.rows(); ++i)
    for (size_t j = 0; j < features.cols(); ++j)
      features(i, j) *= result.sigma[j].Mid();
  return features;
}

void RunResolution(size_t side, size_t rank) {
  FaceCorpusConfig config;
  config.width = side;
  config.height = side;
  const FaceCorpus corpus = GenerateFaceCorpus(config);

  KMeansOptions kopts;
  kopts.k = config.num_individuals;
  kopts.restarts = 2;

  // (i) scalar pixel vectors.
  Stopwatch sw;
  const KMeansResult scalar = KMeans(corpus.images, kopts);
  const double scalar_time = sw.Seconds();
  const double scalar_nmi =
      NormalizedMutualInformation(corpus.labels, scalar.assignments);

  // (ii) interval pixel vectors (doubled representation = the paper's
  // interval Euclidean distance).
  sw.Restart();
  const KMeansResult interval = KMeansInterval(corpus.intervals, kopts);
  const double interval_time = sw.Seconds();
  const double interval_nmi =
      NormalizedMutualInformation(corpus.labels, interval.assignments);

  // (iii) ISVD2-b at rank r: decomposition + k-means on the features.
  sw.Restart();
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.gram_side = GramSide::kAuto;
  const IsvdResult isvd = Isvd2(corpus.intervals, rank, options);
  const double decomp_time = sw.Seconds();
  sw.Restart();
  const KMeansResult low_rank = KMeans(IsvdFeatures(isvd), kopts);
  const double cluster_time = sw.Seconds();
  const double isvd_nmi =
      NormalizedMutualInformation(corpus.labels, low_rank.assignments);

  std::printf("%zux%-6zu %12.3f %14.3f %12.3f\n", side, side, scalar_nmi,
              interval_nmi, isvd_nmi);
  std::printf("%-9s %12.3f %14.3f %12.3f (%.3f+%.3f)\n", "  time(s)",
              scalar_time, interval_time, decomp_time + cluster_time,
              decomp_time, cluster_time);
}

}  // namespace

int main(int argc, char** argv) {
  const size_t rank = static_cast<size_t>(IntFlag(argc, argv, "rank", 20));

  PrintHeader(
      "Table 3 — clustering NMI (top) and execution time in seconds "
      "(bottom) per resolution");
  std::printf("%-9s %12s %14s %12s\n", "res.", "scalar vecs", "interval vecs",
              "ISVD2-b r=20");
  RunResolution(16, rank);
  RunResolution(32, rank);
  PrintRule();
  std::printf("expected shape (paper Table 3): interval vectors beat scalar "
              "NMI at a large time cost; ISVD2-b matches interval NMI far "
              "faster.\n");
  return 0;
}
