// Figure 7 (a)–(c): decomposition accuracy on anonymized (generalized)
// matrices at high / medium / low privacy mixtures and target ranks of
// 100%, 50% and 5% of the full rank — all 13 ISVD method/target
// combinations, ranked per column like the paper's colored tables.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "base/rng.h"
#include "bench_util.h"
#include "data/anonymize.h"

namespace {

using namespace ivmf;
using namespace ivmf::bench;

void RunPrivacyLevel(const char* title, const AnonymizationMix& mix,
                     size_t rows, size_t cols, int trials, uint64_t seed) {
  Rng master(seed);
  const size_t full_rank = std::min(rows, cols);
  const std::vector<size_t> ranks = {full_rank,
                                     std::max<size_t>(1, full_rank / 2),
                                     std::max<size_t>(1, full_rank / 20)};

  // acc[rank index]
  std::vector<ScoreAccumulator> acc(ranks.size());
  for (int t = 0; t < trials; ++t) {
    Rng rng = master.Fork();
    Matrix original(rows, cols);
    for (size_t i = 0; i < rows; ++i)
      for (size_t j = 0; j < cols; ++j) original(i, j) = rng.Uniform();
    const IntervalMatrix m = AnonymizeMatrix(original, mix, rng);

    IsvdOptions options;
    const GramEig full = ComputeGramEig(m, 0, options);
    for (size_t k = 0; k < ranks.size(); ++k) {
      const GramEig gram = TruncateGramEig(full, ranks[k]);
      std::vector<MethodScore> scores;
      ScoreIsvdFamily(m, ranks[k], DecompositionTarget::kA, gram, scores);
      ScoreIsvdFamily(m, ranks[k], DecompositionTarget::kB, gram, scores);
      ScoreIsvdFamily(m, ranks[k], DecompositionTarget::kC, gram, scores);
      acc[k].Add(scores);
    }
  }

  PrintHeader(title);
  std::printf("%-10s", "method");
  std::printf(" %16s %16s %16s\n", "100% rank", "50% rank", "5% rank");
  const std::vector<std::string> names = acc[0].Names();
  // Rank order per column (1 = best), as in the paper's tables.
  for (const std::string& name : names) {
    std::printf("%-10s", name.c_str());
    for (size_t k = 0; k < ranks.size(); ++k) {
      const double h = acc[k].MeanH(name);
      int order = 1;
      for (const std::string& other : names)
        if (acc[k].MeanH(other) > h + 1e-12) ++order;
      std::printf("   %8.3f (#%2d)", h, order);
    }
    std::printf("\n");
  }
  PrintRule();
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = IntFlag(argc, argv, "trials", 3);
  const size_t rows = static_cast<size_t>(IntFlag(argc, argv, "rows", 40));
  const size_t cols = static_cast<size_t>(IntFlag(argc, argv, "cols", 250));

  RunPrivacyLevel(
      "Figure 7a — anonymized data, high privacy [L1:10% L2:20% L3:30% L4:40%]",
      ivmf::HighPrivacyMix(), rows, cols, trials, 71);
  RunPrivacyLevel(
      "Figure 7b — anonymized data, medium privacy [25% each]",
      ivmf::MediumPrivacyMix(), rows, cols, trials, 72);
  RunPrivacyLevel(
      "Figure 7c — anonymized data, low privacy [L1:40% L2:30% L3:20% L4:10%]",
      ivmf::LowPrivacyMix(), rows, cols, trials, 73);

  std::printf("expected shape (paper Fig 7): option-b dominates, ISVD3/4-b "
              "first at 100%%/50%% rank; option-a only competitive at 5%% "
              "rank under low privacy.\n");
  return 0;
}
