// Google-benchmark microbenchmarks for the computational kernels under the
// ISVD pipeline: scalar/interval matrix products, sparse CSR matvec
// variants (with the obs matvec/nnz counters surfaced per iteration),
// one-sided Jacobi SVD, symmetric Jacobi eigendecomposition, Hungarian
// assignment, ILSA, and a full ISVD4-b decomposition.
//
// Like the fig10 benches, accepts --json[=PATH] (default
// BENCH_microbench_kernels.json) and emits one flat record per benchmark
// run next to Google Benchmark's own console output.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "align/assignment.h"
#include "align/ilsa.h"
#include "base/rng.h"
#include "bench_util.h"
#include "core/isvd.h"
#include "data/ratings.h"
#include "data/synthetic.h"
#include "interval/interval_matrix.h"
#include "linalg/eig.h"
#include "linalg/svd.h"
#include "obs/metrics.h"
#include "sparse/sparse_gram_operator.h"
#include "sparse/sparse_interval_matrix.h"
#include "sparse/sparse_kernels.h"

namespace ivmf {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng.Uniform(-1.0, 1.0);
  return m;
}

IntervalMatrix RandomInterval(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  SyntheticConfig config;
  config.rows = rows;
  config.cols = cols;
  return GenerateUniformIntervalMatrix(config, rng);
}

void BM_MatrixProduct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, n, 1);
  const Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatrixProduct)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_IntervalMatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalMatrix a = RandomInterval(n, n, 3);
  const IntervalMatrix b = RandomInterval(n, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalMatMul(a, b));
  }
}
BENCHMARK(BM_IntervalMatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_IntervalMatMulExact(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalMatrix a = RandomInterval(n, n, 3);
  const IntervalMatrix b = RandomInterval(n, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalMatMulExact(a, b));
  }
}
BENCHMARK(BM_IntervalMatMulExact)->Arg(32)->Arg(64);

void BM_Svd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix m = RandomMatrix(2 * n, n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSvd(m));
  }
}
BENCHMARK(BM_Svd)->Arg(16)->Arg(32)->Arg(64);

void BM_SymmetricEig(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix base = RandomMatrix(n, n, 6);
  const Matrix sym = base * base.Transpose();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSymmetricEig(sym));
  }
}
BENCHMARK(BM_SymmetricEig)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_Hungarian(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix w = RandomMatrix(n, n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveAssignmentMax(w));
  }
}
BENCHMARK(BM_Hungarian)->Arg(16)->Arg(64)->Arg(128);

void BM_Ilsa(benchmark::State& state) {
  const size_t r = static_cast<size_t>(state.range(0));
  const Matrix v_min = RandomMatrix(256, r, 8);
  const Matrix v_max = RandomMatrix(256, r, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeIlsa(v_min, v_max));
  }
}
BENCHMARK(BM_Ilsa)->Arg(8)->Arg(20)->Arg(40);

void BM_Isvd4FullPipeline(benchmark::State& state) {
  const size_t cols = static_cast<size_t>(state.range(0));
  const IntervalMatrix m = RandomInterval(40, cols, 10);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Isvd4(m, 10, options));
  }
}
BENCHMARK(BM_Isvd4FullPipeline)->Arg(60)->Arg(120)->Arg(250);

// -- Sparse CSR kernels -------------------------------------------------------
//
// The matvec variants under every matrix-free solve, on the same synthetic
// CF interval construction the fig10 benches use. Each benchmark brackets
// its timing loop with registry snapshots and reports the per-iteration
// matvec / nnz counter deltas, so the counters the solvers log are visible
// (and sanity-checkable) at kernel granularity.

SparseIntervalMatrix CfMatrix(size_t users,
                              spk::Backend backend = spk::Backend::kAuto) {
  RatingsConfig config;
  config.num_users = users;
  config.num_items = users / 4;
  config.fill = 0.05;
  config.seed = 404;
  SparseIntervalMatrix m =
      SparseCfIntervalMatrix(GenerateSparseRatings(config), 0.3);
  m.set_kernel(backend);
  return m;
}

// The kernel variant a matrix's forward matvec actually runs, for labels.
std::string ResolvedName(const SparseIntervalMatrix& m) {
  return spk::BackendName(spk::Resolve(m.ResolvedKernel()));
}

// Per-iteration counter deltas into the benchmark's user counters.
void ReportMatvecCounters(benchmark::State& state,
                          const obs::MetricsSnapshot& before) {
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  const double iterations = static_cast<double>(state.iterations());
  if (iterations <= 0.0) return;
  state.counters["matvecs"] =
      static_cast<double>(after.CounterSum("sparse.matvec.calls") -
                          before.CounterSum("sparse.matvec.calls")) /
      iterations;
  state.counters["nnz_streamed"] =
      static_cast<double>(after.CounterSum("sparse.matvec.nnz") -
                          before.CounterSum("sparse.matvec.nnz")) /
      iterations;
}

// The sparse matvec benchmarks run once per backend: the plain name is the
// dispatched (auto) path — what every solver call site gets — and the
// Scalar / Sell suffixes pin the portable reference and the SELL-C-sigma
// pack so the speedup is measurable from one JSON file. Labels carry the
// variant the auto path resolved to on this machine.
void SparseMultiplyBench(benchmark::State& state, spk::Backend backend) {
  const SparseIntervalMatrix m =
      CfMatrix(static_cast<size_t>(state.range(0)), backend);
  state.SetLabel(ResolvedName(m));
  std::vector<double> x(m.cols(), 1.0), y;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    m.Multiply(SparseIntervalMatrix::Endpoint::kLower, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  ReportMatvecCounters(state, before);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.nnz()));
}
void BM_SparseMultiply(benchmark::State& state) {
  SparseMultiplyBench(state, spk::Backend::kAuto);
}
void BM_SparseMultiplyScalar(benchmark::State& state) {
  SparseMultiplyBench(state, spk::Backend::kScalar);
}
void BM_SparseMultiplySell(benchmark::State& state) {
  SparseMultiplyBench(state, spk::Backend::kSell);
}
BENCHMARK(BM_SparseMultiply)->Arg(2000)->Arg(8000)->Arg(20000);
BENCHMARK(BM_SparseMultiplyScalar)->Arg(2000)->Arg(8000)->Arg(20000);
BENCHMARK(BM_SparseMultiplySell)->Arg(2000)->Arg(8000)->Arg(20000);

void BM_SparseMultiplyMid(benchmark::State& state) {
  const SparseIntervalMatrix m = CfMatrix(static_cast<size_t>(state.range(0)));
  std::vector<double> x(m.cols(), 1.0), y;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    m.MultiplyMid(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  ReportMatvecCounters(state, before);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.nnz()));
}
BENCHMARK(BM_SparseMultiplyMid)->Arg(2000)->Arg(8000)->Arg(20000);

void BM_SparseMultiplyTranspose(benchmark::State& state) {
  const SparseIntervalMatrix m = CfMatrix(static_cast<size_t>(state.range(0)));
  std::vector<double> x(m.rows(), 1.0), y;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    m.MultiplyTranspose(SparseIntervalMatrix::Endpoint::kLower, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  ReportMatvecCounters(state, before);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.nnz()));
}
BENCHMARK(BM_SparseMultiplyTranspose)->Arg(2000)->Arg(8000)->Arg(20000);

void SparseGramApplyBench(benchmark::State& state, spk::Backend backend) {
  const SparseIntervalMatrix m =
      CfMatrix(static_cast<size_t>(state.range(0)), backend);
  state.SetLabel(ResolvedName(m));
  const SparseIntervalMatrix mt = m.Transpose();
  const SparseGramOperator gram(m, mt,
                                SparseIntervalMatrix::Endpoint::kUpper);
  std::vector<double> x(gram.Dim(), 1.0), y;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    gram.Apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  ReportMatvecCounters(state, before);
  // One Gram apply streams the nonzeros twice (M_e x, then M_eᵀ ·).
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(m.nnz()));
}
void BM_SparseGramApply(benchmark::State& state) {
  SparseGramApplyBench(state, spk::Backend::kAuto);
}
void BM_SparseGramApplyScalar(benchmark::State& state) {
  SparseGramApplyBench(state, spk::Backend::kScalar);
}
void BM_SparseGramApplySell(benchmark::State& state) {
  SparseGramApplyBench(state, spk::Backend::kSell);
}
BENCHMARK(BM_SparseGramApply)->Arg(2000)->Arg(8000)->Arg(20000);
BENCHMARK(BM_SparseGramApplyScalar)->Arg(2000)->Arg(8000)->Arg(20000);
BENCHMARK(BM_SparseGramApplySell)->Arg(2000)->Arg(8000)->Arg(20000);

// Both-endpoint Gram action (the fused refresh building block), dispatched.
void BM_SparseGramApplyBoth(benchmark::State& state) {
  const SparseIntervalMatrix m = CfMatrix(static_cast<size_t>(state.range(0)));
  state.SetLabel(ResolvedName(m));
  const SparseIntervalMatrix mt = m.Transpose();
  const SparseGramOperator gram(m, mt,
                                SparseIntervalMatrix::Endpoint::kUpper);
  std::vector<double> x(gram.Dim(), 1.0), y_lo, y_hi;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    gram.ApplyBoth(x, y_lo, y_hi);
    benchmark::DoNotOptimize(y_lo.data());
    benchmark::DoNotOptimize(y_hi.data());
  }
  ReportMatvecCounters(state, before);
  // Both endpoints stream the pattern twice (forward + transpose pass).
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(m.nnz()));
}
BENCHMARK(BM_SparseGramApplyBoth)->Arg(2000)->Arg(8000)->Arg(20000);

// -- Differential self-check (--check) ---------------------------------------
//
// Compares every dispatched kernel entry point against the scalar reference
// on the benchmark's own CF construction before any timing runs. A mismatch
// fails the process, so a CI bench run cannot publish numbers from a kernel
// that diverged. Tolerance matches the differential tests: blocked + FMA
// summation vs left-to-right, |diff| <= 1e-12 * max(1, |ref|).

bool VectorsAgree(const std::vector<double>& got,
                  const std::vector<double>& want, const char* what) {
  if (got.size() != want.size()) {
    std::fprintf(stderr, "check FAILED: %s size %zu vs %zu\n", what,
                 got.size(), want.size());
    return false;
  }
  for (size_t i = 0; i < got.size(); ++i) {
    const double tol = 1e-12 * std::max(1.0, std::fabs(want[i]));
    if (std::fabs(got[i] - want[i]) > tol) {
      std::fprintf(stderr, "check FAILED: %s entry %zu: %.17g vs %.17g\n",
                   what, i, got[i], want[i]);
      return false;
    }
  }
  return true;
}

bool CheckBackendAgainstScalar(const SparseIntervalMatrix& scalar,
                               spk::Backend backend) {
  SparseIntervalMatrix m = scalar;
  m.set_kernel(backend);
  const SparseIntervalMatrix scalar_t = scalar.Transpose();
  const SparseIntervalMatrix mt = m.Transpose();
  const std::string label = spk::BackendName(backend);
  Rng rng(99);
  std::vector<double> x(m.cols()), xt(m.rows());
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  for (double& v : xt) v = rng.Uniform(-1.0, 1.0);
  Matrix b(m.cols(), 4);
  for (size_t i = 0; i < b.rows(); ++i)
    for (size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.Uniform(-1.0, 1.0);

  bool ok = true;
  std::vector<double> want, want2, got, got2;
  const auto kLower = SparseIntervalMatrix::Endpoint::kLower;
  const auto kUpper = SparseIntervalMatrix::Endpoint::kUpper;

  scalar.Multiply(kLower, x, want);
  m.Multiply(kLower, x, got);
  ok &= VectorsAgree(got, want, (label + "/multiply").c_str());
  scalar.MultiplyMid(x, want);
  m.MultiplyMid(x, got);
  ok &= VectorsAgree(got, want, (label + "/mid").c_str());
  scalar.MultiplyBoth(x, want, want2);
  m.MultiplyBoth(x, got, got2);
  ok &= VectorsAgree(got, want, (label + "/both.lo").c_str());
  ok &= VectorsAgree(got2, want2, (label + "/both.hi").c_str());
  scalar.MultiplyTranspose(kUpper, xt, want);
  m.MultiplyTranspose(kUpper, xt, got);
  ok &= VectorsAgree(got, want, (label + "/transpose").c_str());
  const Matrix dense_want = scalar.MultiplyDense(kUpper, b);
  const Matrix dense_got = m.MultiplyDense(kUpper, b);
  std::vector<double> dw(dense_want.data(),
                         dense_want.data() + dense_want.rows() * 4);
  std::vector<double> dg(dense_got.data(),
                         dense_got.data() + dense_got.rows() * 4);
  ok &= VectorsAgree(dg, dw, (label + "/dense").c_str());
  const SparseGramOperator scalar_gram(scalar, scalar_t, kLower);
  const SparseGramOperator gram(m, mt, kLower);
  scalar_gram.ApplyBoth(x, want, want2);
  gram.ApplyBoth(x, got, got2);
  ok &= VectorsAgree(got, want, (label + "/gram.lo").c_str());
  ok &= VectorsAgree(got2, want2, (label + "/gram.hi").c_str());
  return ok;
}

// Returns true when every backend reproduces the scalar reference.
bool RunKernelSelfCheck() {
  bool ok = true;
  for (size_t users : {501u, 4000u}) {
    SparseIntervalMatrix scalar = CfMatrix(users, spk::Backend::kScalar);
    for (spk::Backend backend :
         {spk::Backend::kAuto, spk::Backend::kAvx2, spk::Backend::kSell}) {
      ok &= CheckBackendAgainstScalar(scalar, backend);
    }
  }
  std::fprintf(stderr, "kernel self-check (dispatched=%s): %s\n",
               spk::BackendName(spk::Resolve(spk::Backend::kAuto)),
               ok ? "OK" : "FAILED");
  return ok;
}

}  // namespace

// -- JSON capture -------------------------------------------------------------

// Forwards to the console reporter while capturing one flat record per run,
// so --json output matches the fig10 benches' shape. Keyed by run name:
// Google Benchmark may repeat a benchmark (warmup, aggregates); the last
// report wins.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      Record record;
      record.real_time_ns = run.GetAdjustedRealTime();
      record.cpu_time_ns = run.GetAdjustedCPUTime();
      record.iterations = static_cast<size_t>(run.iterations);
      record.label = run.report_label;  // kernel variant for sparse benches
      for (const auto& [name, counter] : run.counters) {
        record.counters.emplace_back(name, counter.value);
      }
      records_[run.benchmark_name()] = record;
    }
    ConsoleReporter::ReportRuns(reports);
  }

  bool WriteJson(const std::string& path) const {
    bench::JsonWriter json(path);
    for (const auto& [name, record] : records_) {
      json.BeginRecord();
      json.Field("bench", "microbench_kernels");
      json.Field("name", name);
      json.Field("real_time_ns", record.real_time_ns);
      json.Field("cpu_time_ns", record.cpu_time_ns);
      json.Field("iterations", record.iterations);
      if (!record.label.empty()) json.Field("kernel", record.label);
      for (const auto& [counter, value] : record.counters) {
        json.Field(counter.c_str(), value);
      }
      bench::WriteMemoryFields(json);
    }
    return json.Finish();
  }

 private:
  struct Record {
    double real_time_ns = 0.0;
    double cpu_time_ns = 0.0;
    size_t iterations = 0;
    std::string label;
    std::vector<std::pair<std::string, double>> counters;
  };
  std::map<std::string, Record> records_;
};

}  // namespace ivmf

int main(int argc, char** argv) {
  // Resolve and strip --json[=PATH] and --check before Google Benchmark
  // sees the arguments (it rejects flags it does not recognize).
  const std::string json_path =
      ivmf::bench::JsonPathFlag(argc, argv, "microbench_kernels");
  bool check = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json", 6) == 0 &&
        (arg[6] == '\0' || arg[6] == '=')) {
      continue;
    }
    if (std::strcmp(arg, "--check") == 0) {
      check = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  // Differential gate: with --check, every vectorized backend must
  // reproduce the scalar reference on the bench's own construction before
  // any timing runs — a diverged kernel cannot publish numbers.
  if (check && !ivmf::RunKernelSelfCheck()) return 1;
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  ivmf::JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !reporter.WriteJson(json_path)) {
    std::fprintf(stderr, "error: failed writing JSON output\n");
    return 1;
  }
  return 0;
}
