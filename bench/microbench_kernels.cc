// Google-benchmark microbenchmarks for the computational kernels under the
// ISVD pipeline: scalar/interval matrix products, one-sided Jacobi SVD,
// symmetric Jacobi eigendecomposition, Hungarian assignment, ILSA, and a
// full ISVD4-b decomposition.

#include <benchmark/benchmark.h>

#include "align/assignment.h"
#include "align/ilsa.h"
#include "base/rng.h"
#include "core/isvd.h"
#include "data/synthetic.h"
#include "interval/interval_matrix.h"
#include "linalg/eig.h"
#include "linalg/svd.h"

namespace ivmf {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng.Uniform(-1.0, 1.0);
  return m;
}

IntervalMatrix RandomInterval(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  SyntheticConfig config;
  config.rows = rows;
  config.cols = cols;
  return GenerateUniformIntervalMatrix(config, rng);
}

void BM_MatrixProduct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, n, 1);
  const Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatrixProduct)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_IntervalMatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalMatrix a = RandomInterval(n, n, 3);
  const IntervalMatrix b = RandomInterval(n, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalMatMul(a, b));
  }
}
BENCHMARK(BM_IntervalMatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_IntervalMatMulExact(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalMatrix a = RandomInterval(n, n, 3);
  const IntervalMatrix b = RandomInterval(n, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalMatMulExact(a, b));
  }
}
BENCHMARK(BM_IntervalMatMulExact)->Arg(32)->Arg(64);

void BM_Svd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix m = RandomMatrix(2 * n, n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSvd(m));
  }
}
BENCHMARK(BM_Svd)->Arg(16)->Arg(32)->Arg(64);

void BM_SymmetricEig(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix base = RandomMatrix(n, n, 6);
  const Matrix sym = base * base.Transpose();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSymmetricEig(sym));
  }
}
BENCHMARK(BM_SymmetricEig)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_Hungarian(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix w = RandomMatrix(n, n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveAssignmentMax(w));
  }
}
BENCHMARK(BM_Hungarian)->Arg(16)->Arg(64)->Arg(128);

void BM_Ilsa(benchmark::State& state) {
  const size_t r = static_cast<size_t>(state.range(0));
  const Matrix v_min = RandomMatrix(256, r, 8);
  const Matrix v_max = RandomMatrix(256, r, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeIlsa(v_min, v_max));
  }
}
BENCHMARK(BM_Ilsa)->Arg(8)->Arg(20)->Arg(40);

void BM_Isvd4FullPipeline(benchmark::State& state) {
  const size_t cols = static_cast<size_t>(state.range(0));
  const IntervalMatrix m = RandomInterval(40, cols, 10);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Isvd4(m, 10, options));
  }
}
BENCHMARK(BM_Isvd4FullPipeline)->Arg(60)->Arg(120)->Arg(250);

}  // namespace
}  // namespace ivmf

BENCHMARK_MAIN();
