// Google-benchmark microbenchmarks for the computational kernels under the
// ISVD pipeline: scalar/interval matrix products, sparse CSR matvec
// variants (with the obs matvec/nnz counters surfaced per iteration),
// one-sided Jacobi SVD, symmetric Jacobi eigendecomposition, Hungarian
// assignment, ILSA, and a full ISVD4-b decomposition.
//
// Like the fig10 benches, accepts --json[=PATH] (default
// BENCH_microbench_kernels.json) and emits one flat record per benchmark
// run next to Google Benchmark's own console output.

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "align/assignment.h"
#include "align/ilsa.h"
#include "base/rng.h"
#include "bench_util.h"
#include "core/isvd.h"
#include "data/ratings.h"
#include "data/synthetic.h"
#include "interval/interval_matrix.h"
#include "linalg/eig.h"
#include "linalg/svd.h"
#include "obs/metrics.h"
#include "sparse/sparse_gram_operator.h"
#include "sparse/sparse_interval_matrix.h"

namespace ivmf {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng.Uniform(-1.0, 1.0);
  return m;
}

IntervalMatrix RandomInterval(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  SyntheticConfig config;
  config.rows = rows;
  config.cols = cols;
  return GenerateUniformIntervalMatrix(config, rng);
}

void BM_MatrixProduct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, n, 1);
  const Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatrixProduct)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_IntervalMatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalMatrix a = RandomInterval(n, n, 3);
  const IntervalMatrix b = RandomInterval(n, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalMatMul(a, b));
  }
}
BENCHMARK(BM_IntervalMatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_IntervalMatMulExact(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalMatrix a = RandomInterval(n, n, 3);
  const IntervalMatrix b = RandomInterval(n, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalMatMulExact(a, b));
  }
}
BENCHMARK(BM_IntervalMatMulExact)->Arg(32)->Arg(64);

void BM_Svd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix m = RandomMatrix(2 * n, n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSvd(m));
  }
}
BENCHMARK(BM_Svd)->Arg(16)->Arg(32)->Arg(64);

void BM_SymmetricEig(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix base = RandomMatrix(n, n, 6);
  const Matrix sym = base * base.Transpose();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSymmetricEig(sym));
  }
}
BENCHMARK(BM_SymmetricEig)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_Hungarian(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix w = RandomMatrix(n, n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveAssignmentMax(w));
  }
}
BENCHMARK(BM_Hungarian)->Arg(16)->Arg(64)->Arg(128);

void BM_Ilsa(benchmark::State& state) {
  const size_t r = static_cast<size_t>(state.range(0));
  const Matrix v_min = RandomMatrix(256, r, 8);
  const Matrix v_max = RandomMatrix(256, r, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeIlsa(v_min, v_max));
  }
}
BENCHMARK(BM_Ilsa)->Arg(8)->Arg(20)->Arg(40);

void BM_Isvd4FullPipeline(benchmark::State& state) {
  const size_t cols = static_cast<size_t>(state.range(0));
  const IntervalMatrix m = RandomInterval(40, cols, 10);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Isvd4(m, 10, options));
  }
}
BENCHMARK(BM_Isvd4FullPipeline)->Arg(60)->Arg(120)->Arg(250);

// -- Sparse CSR kernels -------------------------------------------------------
//
// The matvec variants under every matrix-free solve, on the same synthetic
// CF interval construction the fig10 benches use. Each benchmark brackets
// its timing loop with registry snapshots and reports the per-iteration
// matvec / nnz counter deltas, so the counters the solvers log are visible
// (and sanity-checkable) at kernel granularity.

SparseIntervalMatrix CfMatrix(size_t users) {
  RatingsConfig config;
  config.num_users = users;
  config.num_items = users / 4;
  config.fill = 0.05;
  config.seed = 404;
  return SparseCfIntervalMatrix(GenerateSparseRatings(config), 0.3);
}

// Per-iteration counter deltas into the benchmark's user counters.
void ReportMatvecCounters(benchmark::State& state,
                          const obs::MetricsSnapshot& before) {
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  const double iterations = static_cast<double>(state.iterations());
  if (iterations <= 0.0) return;
  state.counters["matvecs"] =
      static_cast<double>(after.CounterSum("sparse.matvec.calls") -
                          before.CounterSum("sparse.matvec.calls")) /
      iterations;
  state.counters["nnz_streamed"] =
      static_cast<double>(after.CounterSum("sparse.matvec.nnz") -
                          before.CounterSum("sparse.matvec.nnz")) /
      iterations;
}

void BM_SparseMultiply(benchmark::State& state) {
  const SparseIntervalMatrix m = CfMatrix(static_cast<size_t>(state.range(0)));
  std::vector<double> x(m.cols(), 1.0), y;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    m.Multiply(SparseIntervalMatrix::Endpoint::kLower, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  ReportMatvecCounters(state, before);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.nnz()));
}
BENCHMARK(BM_SparseMultiply)->Arg(2000)->Arg(8000)->Arg(20000);

void BM_SparseMultiplyMid(benchmark::State& state) {
  const SparseIntervalMatrix m = CfMatrix(static_cast<size_t>(state.range(0)));
  std::vector<double> x(m.cols(), 1.0), y;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    m.MultiplyMid(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  ReportMatvecCounters(state, before);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.nnz()));
}
BENCHMARK(BM_SparseMultiplyMid)->Arg(2000)->Arg(8000)->Arg(20000);

void BM_SparseMultiplyTranspose(benchmark::State& state) {
  const SparseIntervalMatrix m = CfMatrix(static_cast<size_t>(state.range(0)));
  std::vector<double> x(m.rows(), 1.0), y;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    m.MultiplyTranspose(SparseIntervalMatrix::Endpoint::kLower, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  ReportMatvecCounters(state, before);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.nnz()));
}
BENCHMARK(BM_SparseMultiplyTranspose)->Arg(2000)->Arg(8000)->Arg(20000);

void BM_SparseGramApply(benchmark::State& state) {
  const SparseIntervalMatrix m = CfMatrix(static_cast<size_t>(state.range(0)));
  const SparseIntervalMatrix mt = m.Transpose();
  const SparseGramOperator gram(m, mt,
                                SparseIntervalMatrix::Endpoint::kUpper);
  std::vector<double> x(gram.Dim(), 1.0), y;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    gram.Apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  ReportMatvecCounters(state, before);
  // One Gram apply streams the nonzeros twice (M_e x, then M_eᵀ ·).
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(m.nnz()));
}
BENCHMARK(BM_SparseGramApply)->Arg(2000)->Arg(8000);

}  // namespace

// -- JSON capture -------------------------------------------------------------

// Forwards to the console reporter while capturing one flat record per run,
// so --json output matches the fig10 benches' shape. Keyed by run name:
// Google Benchmark may repeat a benchmark (warmup, aggregates); the last
// report wins.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      Record record;
      record.real_time_ns = run.GetAdjustedRealTime();
      record.cpu_time_ns = run.GetAdjustedCPUTime();
      record.iterations = static_cast<size_t>(run.iterations);
      for (const auto& [name, counter] : run.counters) {
        record.counters.emplace_back(name, counter.value);
      }
      records_[run.benchmark_name()] = record;
    }
    ConsoleReporter::ReportRuns(reports);
  }

  bool WriteJson(const std::string& path) const {
    bench::JsonWriter json(path);
    for (const auto& [name, record] : records_) {
      json.BeginRecord();
      json.Field("bench", "microbench_kernels");
      json.Field("name", name);
      json.Field("real_time_ns", record.real_time_ns);
      json.Field("cpu_time_ns", record.cpu_time_ns);
      json.Field("iterations", record.iterations);
      for (const auto& [counter, value] : record.counters) {
        json.Field(counter.c_str(), value);
      }
    }
    return json.Finish();
  }

 private:
  struct Record {
    double real_time_ns = 0.0;
    double cpu_time_ns = 0.0;
    size_t iterations = 0;
    std::vector<std::pair<std::string, double>> counters;
  };
  std::map<std::string, Record> records_;
};

}  // namespace ivmf

int main(int argc, char** argv) {
  // Resolve and strip --json[=PATH] before Google Benchmark sees the
  // arguments (it rejects flags it does not recognize).
  const std::string json_path =
      ivmf::bench::JsonPathFlag(argc, argv, "microbench_kernels");
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json", 6) == 0 &&
        (arg[6] == '\0' || arg[6] == '=')) {
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  ivmf::JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !reporter.WriteJson(json_path)) {
    std::fprintf(stderr, "error: failed writing JSON output\n");
    return 1;
  }
  return 0;
}
