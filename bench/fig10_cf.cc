// Figure 10: collaborative filtering RMSE vs decomposition rank on the
// MovieLens-style interval rating matrix — PMF vs I-PMF vs AI-PMF.
//
// Ratings are split 80/20 into train/test; PMF trains on the scalar
// ratings, I-PMF/AI-PMF on the F.2 interval matrix; predictions are the
// interval-reconstruction midpoints.

#include <cstdio>
#include <vector>

#include "base/rng.h"
#include "bench_util.h"
#include "data/ratings.h"
#include "factor/pmf.h"

int main(int argc, char** argv) {
  using namespace ivmf;
  using namespace ivmf::bench;

  const int epochs = IntFlag(argc, argv, "epochs", 120);
  const double alpha = 0.3;  // interval scale coefficient (F.2)

  RatingsConfig config;
  config.num_users = 300;
  config.num_items = 500;
  config.num_genres = 19;
  config.fill = 0.15;
  config.seed = 101;
  const RatingsData data = GenerateRatings(config);
  const IntervalMatrix cf = CfIntervalMatrix(data, alpha);

  Rng split_rng(102);
  const CfSplit split = SplitRatings(data, 0.2, split_rng);

  PrintHeader("Figure 10 — collaborative filtering RMSE vs rank "
              "(lower = better)");
  std::printf("%-8s %10s %10s %10s\n", "rank", "PMF", "I-PMF", "AI-PMF");

  double pmf_sum = 0.0, ipmf_sum = 0.0, aipmf_sum = 0.0;
  int count = 0;
  for (const size_t rank :
       {size_t{5}, size_t{10}, size_t{20}, size_t{40}, size_t{60},
        size_t{80}}) {
    PmfOptions options;
    options.epochs = static_cast<size_t>(epochs);

    const PmfResult pmf =
        ComputePmf(data.ratings, split.train_mask, rank, options);
    const double rmse_pmf =
        MaskedRmse(data.ratings, pmf.Reconstruct(), split.test_mask);

    const IntervalPmfResult ipmf =
        ComputeIntervalPmf(cf, split.train_mask, rank, options);
    const double rmse_ipmf =
        MaskedRmse(data.ratings, ipmf.PredictMid(), split.test_mask);

    const IntervalPmfResult aipmf =
        ComputeAlignedIntervalPmf(cf, split.train_mask, rank, options);
    const double rmse_aipmf =
        MaskedRmse(data.ratings, aipmf.PredictMid(), split.test_mask);

    std::printf("%-8zu %10.4f %10.4f %10.4f%s\n", rank, rmse_pmf, rmse_ipmf,
                rmse_aipmf, rmse_aipmf <= rmse_ipmf ? "   (AI <= I)" : "");
    pmf_sum += rmse_pmf;
    ipmf_sum += rmse_ipmf;
    aipmf_sum += rmse_aipmf;
    ++count;
  }
  PrintRule();
  std::printf("means: PMF %.4f, I-PMF %.4f, AI-PMF %.4f\n", pmf_sum / count,
              ipmf_sum / count, aipmf_sum / count);
  std::printf("expected shape (paper Fig 10): AI-PMF always beats I-PMF; "
              "AI-PMF beats PMF at higher ranks.\n");
  return 0;
}
