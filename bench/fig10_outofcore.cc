// Out-of-core decomposition through the block-row sharded store, plus the
// sharded/monolithic equivalence and throughput check.
//
// Two phases, selectable with --mode:
//
//  outofcore  Stream-generates a CF-style interval matrix row by row into a
//             ShardedSparseIntervalMatrix::Builder with mmap backing under
//             an enforced memory budget, then runs a full sparse ISVD
//             through the mmap'd segment files. The heap never holds more
//             than one shard plus the rank-r factors, and per-shard
//             residency drops (madvise MADV_DONTNEED) keep the resident set
//             near the budget while the store itself is several times
//             larger — the CI smoke job runs this phase under a hard
//             `ulimit -d` cap and asserts peak_rss_bytes < budget from the
//             JSON.
//
//  equiv      Builds one in-memory CF matrix, decomposes its Gram apply
//             three ways — monolithic CSR, sharded single-shard, sharded
//             multi-shard — and reports the max relative difference (the
//             kernels' 1e-12 differential bound) plus applies/second for
//             each, so the record tracks both the sharded path's overhead
//             vs the monolithic kernels and its shard-parallel speedup.
//
// --mode=both (the default) runs outofcore FIRST so its peak-RSS record is
// taken before the equiv phase's in-memory matrices inflate the high-water
// mark.
//
// Usage:
//   bench_fig10_outofcore [--mode=both|outofcore|equiv] [--json[=PATH]]
//     out-of-core: [--oc_users=44000] [--oc_items=4800] [--oc_fill_pct=5]
//                  [--oc_shard_rows=1024] [--budget_mb=48] [--rank=8]
//                  [--strategy=3]
//     equivalence: [--users=20000] [--items=5000] [--fill_pct=5]
//                  [--shard_rows=2048] [--reps=20]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "base/stopwatch.h"
#include "bench_util.h"
#include "core/sparse_isvd.h"
#include "data/ratings.h"
#include "sparse/block_matrix.h"
#include "sparse/shard_store.h"
#include "sparse/sparse_interval_matrix.h"

namespace {

using namespace ivmf;
using namespace ivmf::bench;

// Deterministic per-row cell stream: row i always produces the same cells
// regardless of which rows were generated before it, so the builder phase
// needs no global triplet buffer — O(cols) per row, one shard of heap.
void GenerateRow(size_t row, size_t cols, double fill, uint64_t seed,
                 ShardedSparseIntervalMatrix::Builder& builder) {
  Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (row + 1)));
  for (size_t j = 0; j < cols; ++j) {
    if (rng.Uniform() >= fill) continue;
    const double rating = rng.Uniform(1.0, 5.0);
    const double delta = 0.25 * rng.Uniform();
    builder.Append(row, j,
                   Interval(std::max(0.0, rating - delta), rating + delta));
  }
}

// Max |a - b| relative to ||a||_inf.
double MaxRelDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double scale = 0.0;
  for (const double v : a) scale = std::max(scale, std::fabs(v));
  if (scale == 0.0) scale = 1.0;
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff = std::max(diff, std::fabs(a[i] - b[i]));
  }
  return diff / scale;
}

int RunOutOfCore(int argc, char** argv, JsonWriter& json) {
  const size_t users =
      static_cast<size_t>(IntFlag(argc, argv, "oc_users", 44000));
  const size_t items =
      static_cast<size_t>(IntFlag(argc, argv, "oc_items", 4800));
  const double fill = IntFlag(argc, argv, "oc_fill_pct", 5) / 100.0;
  const size_t shard_rows =
      static_cast<size_t>(IntFlag(argc, argv, "oc_shard_rows", 1024));
  const size_t budget_bytes =
      static_cast<size_t>(IntFlag(argc, argv, "budget_mb", 48)) << 20;
  const size_t rank = static_cast<size_t>(IntFlag(argc, argv, "rank", 8));
  const int strategy = IntFlag(argc, argv, "strategy", 3);

  std::printf("[out-of-core] %zu x %zu, fill %.2f, shard_rows %zu, budget "
              "%zu MiB\n",
              users, items, fill, shard_rows, budget_bytes >> 20);

  // Mmap backing with the budget set turns on per-shard residency drops.
  BackingPolicy policy = BackingPolicy::Mmap();
  policy.budget_bytes = budget_bytes;

  Stopwatch sw;
  ShardedSparseIntervalMatrix::Builder builder(users, items, shard_rows,
                                               policy);
  for (size_t i = 0; i < users; ++i) {
    GenerateRow(i, items, fill, /*seed=*/404, builder);
  }
  const ShardedSparseIntervalMatrix m = builder.Finish();
  const double build_seconds = sw.Seconds();
  const size_t store_bytes = MappedBytesTotal();
  std::printf("[out-of-core] built %zu shards, %zu nnz, store %.1f MiB "
              "(%.1fx budget) in %.2fs; peak RSS after build %.1f MiB\n",
              m.num_shards(), m.nnz(),
              static_cast<double>(store_bytes) / (1 << 20),
              static_cast<double>(store_bytes) /
                  static_cast<double>(budget_bytes),
              build_seconds,
              static_cast<double>(PeakRssBytes()) / (1 << 20));

  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.eig_solver = EigSolver::kLanczos;
  sw.Restart();
  const IsvdResult result = RunIsvd(strategy, m, rank, options);
  const double decompose_seconds = sw.Seconds();

  const size_t peak_rss = PeakRssBytes();
  const bool rss_within_budget = peak_rss < budget_bytes;
  std::printf("[out-of-core] ISVD%d rank %zu in %.2fs; peak RSS %.1f MiB "
              "(budget %zu MiB): %s\n",
              strategy, result.rank(), decompose_seconds,
              static_cast<double>(peak_rss) / (1 << 20), budget_bytes >> 20,
              rss_within_budget ? "within budget" : "OVER budget");

  json.BeginRecord();
  json.Field("bench", "fig10_outofcore");
  json.Field("mode", "outofcore");
  json.Field("users", users);
  json.Field("items", items);
  json.Field("nnz", m.nnz());
  json.Field("shard_rows", shard_rows);
  json.Field("num_shards", m.num_shards());
  json.Field("rank", rank);
  json.Field("strategy", strategy);
  json.Field("budget_bytes", budget_bytes);
  json.Field("store_bytes", store_bytes);
  json.Field("store_over_budget",
             static_cast<double>(store_bytes) /
                 static_cast<double>(budget_bytes));
  json.Field("build_seconds", build_seconds);
  json.Field("decompose_seconds", decompose_seconds);
  json.Field("rss_within_budget", rss_within_budget);
  WriteMemoryFields(json);
  return rss_within_budget ? 0 : 3;
}

void RunEquiv(int argc, char** argv, JsonWriter& json) {
  const size_t users = static_cast<size_t>(IntFlag(argc, argv, "users", 20000));
  const size_t items = static_cast<size_t>(IntFlag(argc, argv, "items", 5000));
  const double fill = IntFlag(argc, argv, "fill_pct", 5) / 100.0;
  const size_t shard_rows =
      static_cast<size_t>(IntFlag(argc, argv, "shard_rows", 2048));
  const int reps = IntFlag(argc, argv, "reps", 20);

  RatingsConfig config;
  config.num_users = users;
  config.num_items = items;
  config.fill = fill;
  config.seed = 404;
  const SparseIntervalMatrix cf =
      SparseCfIntervalMatrix(GenerateSparseRatings(config), 0.3);
  const ShardedSparseIntervalMatrix sharded =
      ShardedSparseIntervalMatrix::FromCsr(cf, shard_rows);
  const ShardedSparseIntervalMatrix single =
      ShardedSparseIntervalMatrix::FromCsr(cf, users);

  std::printf("\n[equiv] %zu x %zu, %zu nnz; %zu shards of %zu rows vs "
              "monolithic (%u threads)\n",
              users, items, cf.nnz(), sharded.num_shards(), shard_rows,
              std::thread::hardware_concurrency());

  Rng rng(7);
  std::vector<double> x(items);
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  std::vector<double> y_mono(items), y_shard(items), y_single(items);

  double max_diff = 0.0;
  for (const auto e :
       {SparseIntervalMatrix::Endpoint::kLower,
        SparseIntervalMatrix::Endpoint::kUpper}) {
    cf.GramMultiply(e, x, y_mono);
    sharded.GramMultiply(e, x, y_shard);
    single.GramMultiply(e, x, y_single);
    max_diff = std::max(max_diff, MaxRelDiff(y_mono, y_shard));
    max_diff = std::max(max_diff, MaxRelDiff(y_mono, y_single));
  }

  struct Variant {
    const char* name;
    double applies_per_second = 0.0;
  };
  Variant variants[3] = {{"monolithic"}, {"sharded"}, {"single_shard"}};
  const auto time_applies = [&](const auto& matrix, std::vector<double>& y) {
    Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      matrix.GramMultiply(SparseIntervalMatrix::Endpoint::kUpper, x, y);
    }
    const double seconds = sw.Seconds();
    return seconds > 0.0 ? reps / seconds : 0.0;
  };
  variants[0].applies_per_second = time_applies(cf, y_mono);
  variants[1].applies_per_second = time_applies(sharded, y_shard);
  variants[2].applies_per_second = time_applies(single, y_single);

  const double relative_throughput =
      variants[0].applies_per_second > 0.0
          ? variants[1].applies_per_second / variants[0].applies_per_second
          : 0.0;
  const double parallel_speedup =
      variants[2].applies_per_second > 0.0
          ? variants[1].applies_per_second / variants[2].applies_per_second
          : 0.0;

  std::printf("[equiv] max relative diff %.3g\n", max_diff);
  for (const Variant& v : variants) {
    std::printf("[equiv] %-12s %8.2f Gram applies/s\n", v.name,
                v.applies_per_second);
  }
  std::printf("[equiv] sharded vs monolithic %.2fx, vs single-shard %.2fx\n",
              relative_throughput, parallel_speedup);

  json.BeginRecord();
  json.Field("bench", "fig10_outofcore");
  json.Field("mode", "equiv");
  json.Field("users", users);
  json.Field("items", items);
  json.Field("nnz", cf.nnz());
  json.Field("shard_rows", shard_rows);
  json.Field("num_shards", sharded.num_shards());
  json.Field("threads",
             static_cast<size_t>(std::thread::hardware_concurrency()));
  json.Field("max_rel_diff", max_diff);
  json.Field("mono_applies_per_second", variants[0].applies_per_second);
  json.Field("sharded_applies_per_second", variants[1].applies_per_second);
  json.Field("single_shard_applies_per_second",
             variants[2].applies_per_second);
  json.Field("relative_throughput", relative_throughput);
  json.Field("parallel_speedup", parallel_speedup);
  WriteMemoryFields(json);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = StringFlag(argc, argv, "mode", "both");
  if (mode != "both" && mode != "outofcore" && mode != "equiv") {
    std::fprintf(stderr,
                 "error: unknown --mode=%s (both|outofcore|equiv)\n",
                 mode.c_str());
    return 1;
  }

  PrintHeader("Figure 10 out-of-core — block-row sharded decomposition");
  JsonWriter json(JsonPathFlag(argc, argv, "fig10_outofcore"));

  int status = 0;
  if (mode != "equiv") status = RunOutOfCore(argc, argv, json);
  if (mode != "outofcore") RunEquiv(argc, argv, json);

  if (!json.Finish()) {
    std::fprintf(stderr, "error: failed writing JSON output\n");
    return 1;
  }
  return status;
}
