// Figure 10 at production scale: collaborative-filtering interval
// decompositions on rating matrices far beyond what the dense pipeline can
// touch.
//
// Sweeps users x items (fill <= 0.05 by default) through the sparse
// matrix-free ISVD path — CSR CF-interval construction, the Golub–Kahan–
// Lanczos SVD for ISVD0/ISVD1, Lanczos on the O(nnz) Gram operator for
// ISVD2–ISVD4, sparse solve/recompute — and reports per-phase timings. By
// default every strategy 0–4 runs on every shape (all five are matrix-free
// on the non-negative CF data); --strategy=N restricts to one. For shapes
// below --dense_limit cells the dense route (materialized matrices + the
// same solvers) runs side by side and the speedup is reported; above it the
// dense route is skipped and its endpoint-matrix memory footprint alone is
// printed for scale.
//
// Usage:
//   bench_fig10_sparse_scale [--rank=10] [--strategy=-1] [--fill_pct=5]
//                            [--alpha_pct=30] [--max_cells=100000000]
//                            [--dense_limit=1500000] [--json[=PATH]]
//                            [--kernel=auto|scalar|avx2|sell]
//
// --kernel pins the sparse matvec backend for the CF matrix (default: the
// auto dispatch, i.e. whatever IVMF_SPARSE_KERNEL / cpuid resolves to);
// every record carries the variant that actually ran as "kernel".
//
// --json emits one record per (shape, strategy) row (see bench_util.h's
// JsonWriter) so CI tracks the perf trajectory.

#include <cstdio>
#include <vector>

#include "base/stopwatch.h"
#include "bench_util.h"
#include "core/sparse_isvd.h"
#include "data/ratings.h"
#include "sparse/sparse_interval_matrix.h"
#include "sparse/sparse_kernels.h"

int main(int argc, char** argv) {
  using namespace ivmf;
  using namespace ivmf::bench;

  const size_t rank = static_cast<size_t>(IntFlag(argc, argv, "rank", 10));
  const int strategy_flag = IntFlag(argc, argv, "strategy", -1);
  const double fill = IntFlag(argc, argv, "fill_pct", 5) / 100.0;
  const double alpha = IntFlag(argc, argv, "alpha_pct", 30) / 100.0;
  const double max_cells = IntFlag(argc, argv, "max_cells", 100000000);
  const double dense_limit = IntFlag(argc, argv, "dense_limit", 1500000);
  const std::string kernel_flag = StringFlag(argc, argv, "kernel", "auto");
  spk::Backend kernel = spk::Backend::kAuto;
  if (!spk::ParseBackend(kernel_flag, &kernel)) {
    std::fprintf(stderr, "error: unknown --kernel=%s (auto|scalar|avx2|sell)\n",
                 kernel_flag.c_str());
    return 1;
  }
  // The variant the forward matvec actually runs under this selection.
  const char* kernel_name = spk::BackendName(spk::Resolve(kernel));

  std::vector<int> strategies;
  if (strategy_flag < 0) {
    strategies = {0, 1, 2, 3, 4};
  } else {
    strategies = {strategy_flag};
  }

  struct Shape {
    size_t users, items;
  };
  const std::vector<Shape> shapes = {
      {1000, 250}, {2000, 500}, {5000, 1250}, {10000, 2500}, {20000, 5000}};

  PrintHeader("Figure 10 at scale — sparse matrix-free ISVD on CF interval "
              "matrices");
  std::printf("strategies 0-4%s, rank %zu, fill %.2f, alpha %.2f\n\n",
              strategy_flag < 0 ? "" : " (restricted)", rank, fill, alpha);
  std::printf("%-14s %5s %10s %7s %9s %9s %9s %9s %10s\n", "users x items",
              "isvd", "nnz", "sparse", "preproc", "decomp", "solve", "recomp",
              "dense/spd");
  PrintRule(98);

  JsonWriter json(JsonPathFlag(argc, argv, "fig10_sparse_scale"));

  for (const Shape& shape : shapes) {
    const double cells =
        static_cast<double>(shape.users) * static_cast<double>(shape.items);
    if (cells > max_cells) continue;

    RatingsConfig config;
    config.num_users = shape.users;
    config.num_items = shape.items;
    config.fill = fill;
    config.seed = 404;
    const SparseRatingsData data = GenerateSparseRatings(config);
    SparseIntervalMatrix cf = SparseCfIntervalMatrix(data, alpha);
    cf.set_kernel(kernel);

    IsvdOptions options;
    options.target = DecompositionTarget::kB;
    options.gram_side = GramSide::kAuto;
    options.eig_solver = EigSolver::kLanczos;

    // Materialized once per shape for the side-by-side dense runs.
    IntervalMatrix dense;
    if (cells <= dense_limit) dense = cf.ToDense();

    for (const int strategy : strategies) {
      const obs::MetricsSnapshot counters_before =
          obs::MetricsRegistry::Global().Snapshot();
      Stopwatch sw;
      const IsvdResult sparse_result = RunIsvd(strategy, cf, rank, options);
      const double sparse_seconds = sw.Seconds();
      const SolverCounterDeltas solver(
          counters_before, obs::MetricsRegistry::Global().Snapshot());
      const PhaseTimings& t = sparse_result.timings;

      char label[32];
      std::snprintf(label, sizeof(label), "%zux%zu", shape.users, shape.items);
      std::printf("%-14s %5d %10zu %6.2fs %8.3fs %8.3fs %8.3fs %8.3fs", label,
                  strategy, cf.nnz(), sparse_seconds, t.preprocess,
                  t.decompose, t.solve, t.recompute);

      json.BeginRecord();
      json.Field("bench", std::string("fig10_sparse_scale"));
      json.Field("users", shape.users);
      json.Field("items", shape.items);
      json.Field("nnz", cf.nnz());
      json.Field("rank", rank);
      json.Field("strategy", strategy);
      json.Field("kernel", std::string(kernel_name));
      json.Field("sparse_seconds", sparse_seconds);
      json.Field("preprocess_seconds", t.preprocess);
      json.Field("decompose_seconds", t.decompose);
      json.Field("solve_seconds", t.solve);
      json.Field("recompute_seconds", t.recompute);
      solver.WriteFields(json);
      WriteMemoryFields(json);

      if (cells <= dense_limit) {
        // Dense route: materialized endpoint matrices (+ interval Gram for
        // strategies 2-4), same rank and solver options.
        sw.Restart();
        const IsvdResult dense_result =
            RunIsvd(strategy, dense, rank, options);
        const double dense_seconds = sw.Seconds();
        (void)dense_result;
        const double speedup =
            dense_seconds / (sparse_seconds > 0.0 ? sparse_seconds : 1.0);
        json.Field("dense_seconds", dense_seconds);
        json.Field("speedup_vs_dense", speedup);
        std::printf(" %6.2fs/%4.1fx\n", dense_seconds, speedup);
      } else {
        // 2 endpoint matrices x 8 bytes; the interval Gram adds another
        // 2 x min(n, m)^2 on top for strategies 2-4.
        const double gib = 2.0 * cells * 8.0 / (1024.0 * 1024.0 * 1024.0);
        std::printf("   (dense skipped: %.1f GiB endpoints)\n", gib);
      }
    }
  }

  PrintRule(98);
  std::printf(
      "sparse path peak memory is O(nnz) + factors on non-negative data: "
      "ISVD0/1 run the\nGolub-Kahan-Lanczos SVD on the endpoint operators and "
      "ISVD2-4 never materialize the Gram.\n");
  if (!json.Finish()) {
    std::fprintf(stderr, "error: failed writing JSON output\n");
    return 1;
  }
  return 0;
}
