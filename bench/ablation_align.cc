// Ablation studies beyond the paper's tables (DESIGN.md §6):
//   1. ILSA matcher choice (Hungarian / greedy / stable marriage) inside
//      ISVD1-b and ISVD4-b — Problem 1 vs Problem 2 in practice.
//   2. Direction (sign) fixing on vs off.
//   3. Gram side (MᵀM vs MMᵀ) for ISVD2-b.

#include <cstdio>
#include <vector>

#include "base/rng.h"
#include "bench_util.h"
#include "data/synthetic.h"
#include "factor/nmf.h"

namespace {

using namespace ivmf;
using namespace ivmf::bench;

double MeanH(int strategy, const IsvdOptions& options, int trials, int rank,
             uint64_t seed) {
  Rng master(seed);
  SyntheticConfig config;
  double sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    Rng rng = master.Fork();
    const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
    const IsvdResult result = RunIsvd(strategy, m, rank, options);
    sum += DecompositionAccuracy(m, result.Reconstruct()).harmonic_mean;
  }
  return sum / trials;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = IntFlag(argc, argv, "trials", 5);
  const int rank = IntFlag(argc, argv, "rank", 20);

  PrintHeader("Ablation 1 — ILSA matcher (Θ_HM, option b, default config)");
  std::printf("%-18s %10s %10s\n", "matcher", "ISVD1-b", "ISVD4-b");
  for (const auto& [matcher, name] :
       std::vector<std::pair<AlignMatcher, const char*>>{
           {AlignMatcher::kHungarian, "hungarian (P2)"},
           {AlignMatcher::kGreedy, "greedy (Alg 6)"},
           {AlignMatcher::kStableMarriage, "stable (P1)"}}) {
    IsvdOptions options;
    options.target = DecompositionTarget::kB;
    options.ilsa.matcher = matcher;
    std::printf("%-18s %10.4f %10.4f\n", name,
                MeanH(1, options, trials, rank, 110),
                MeanH(4, options, trials, rank, 110));
  }
  PrintRule();

  PrintHeader("Ablation 2 — direction (sign) fixing in ILSA");
  std::printf("%-18s %10s %10s\n", "sign fixing", "ISVD1-b", "ISVD4-b");
  for (const bool fix : {true, false}) {
    IsvdOptions options;
    options.target = DecompositionTarget::kB;
    options.ilsa.fix_directions = fix;
    std::printf("%-18s %10.4f %10.4f\n", fix ? "on (paper)" : "off",
                MeanH(1, options, trials, rank, 111),
                MeanH(4, options, trials, rank, 111));
  }
  PrintRule();

  PrintHeader("Ablation 3 — Gram side for ISVD2-b (MᵀM vs MMᵀ)");
  std::printf("%-18s %10s\n", "gram side", "ISVD2-b");
  for (const auto& [side, name] :
       std::vector<std::pair<GramSide, const char*>>{
           {GramSide::kMtM, "MtM (paper)"},
           {GramSide::kMMt, "MMt"},
           {GramSide::kAuto, "auto"}}) {
    IsvdOptions options;
    options.target = DecompositionTarget::kB;
    options.gram_side = side;
    std::printf("%-18s %10.4f\n", name, MeanH(2, options, trials, rank, 112));
  }
  PrintRule();

  PrintHeader("Ablation 4 — eigensolver for ISVD4-b (accuracy and time)");
  std::printf("%-18s %10s %12s\n", "solver", "ISVD4-b", "time (s)");
  for (const auto& [solver, name] :
       std::vector<std::pair<EigSolver, const char*>>{
           {EigSolver::kJacobi, "jacobi (full)"},
           {EigSolver::kLanczos, "lanczos (top-r)"}}) {
    IsvdOptions options;
    options.target = DecompositionTarget::kB;
    options.eig_solver = solver;
    Stopwatch sw;
    const double h = MeanH(4, options, trials, rank, 113);
    std::printf("%-18s %10.4f %12.4f\n", name, h,
                sw.Seconds() / trials);
  }
  PrintRule();
  std::printf("Lanczos computes only the leading subspace: same accuracy, "
              "far less decomposition time at low rank.\n\n");

  // ---- Ablation 5: ILSA transplanted into NMF (AI-NMF vs I-NMF) ----------
  PrintHeader("Ablation 5 — AI-NMF vs I-NMF (Θ_HM of interval reconstruction)");
  {
    Rng master(114);
    SyntheticConfig config;
    config.rows = 40;
    config.cols = 100;
    double inmf_sum = 0.0, ainmf_sum = 0.0;
    for (int t = 0; t < trials; ++t) {
      Rng rng = master.Fork();
      const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
      NmfOptions options;
      options.max_iterations = 120;
      const auto inmf = ComputeIntervalNmf(m, rank, options);
      const auto ainmf = ComputeAlignedIntervalNmf(m, rank, options);
      inmf_sum +=
          DecompositionAccuracy(m, inmf.Reconstruct()).harmonic_mean;
      ainmf_sum +=
          DecompositionAccuracy(m, ainmf.Reconstruct()).harmonic_mean;
    }
    std::printf("%-18s %10.4f\n", "I-NMF", inmf_sum / trials);
    std::printf("%-18s %10.4f\n", "AI-NMF (ours)", ainmf_sum / trials);
  }
  PrintRule();
  std::printf("AI-NMF transplants the paper's Section-5 alignment into the "
              "NMF family (Section 5 argues ILSA generalizes beyond SVD).\n");
  return 0;
}
