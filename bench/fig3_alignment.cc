// Figure 3: cosine similarities between corresponding min/max right factor
// vectors before and after ILSA, averaged over random matrices drawn from
// the default synthetic configuration (Table 1), components ordered by
// increasing singular value (the paper's x-axis: 1 = smallest).

#include <cstdio>
#include <vector>

#include "align/ilsa.h"
#include "base/rng.h"
#include "bench_util.h"
#include "data/synthetic.h"
#include "linalg/svd.h"

int main(int argc, char** argv) {
  using namespace ivmf;
  using namespace ivmf::bench;

  const int trials = IntFlag(argc, argv, "trials", 20);
  const int rank = IntFlag(argc, argv, "rank", 20);

  SyntheticConfig config;  // default: 40 x 250, 100% density & intensity
  Rng master(42);

  std::vector<double> before(rank, 0.0), after(rank, 0.0);
  for (int t = 0; t < trials; ++t) {
    Rng rng = master.Fork();
    const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
    const SvdResult lo = ComputeSvd(m.lower(), rank);
    const SvdResult hi = ComputeSvd(m.upper(), rank);

    const std::vector<double> pre = ColumnwiseCosine(lo.v, hi.v);
    const IlsaResult ilsa = ComputeIlsa(lo.v, hi.v);
    const Matrix aligned = ApplyIlsaToColumns(lo.v, ilsa);
    const std::vector<double> post = ColumnwiseCosine(aligned, hi.v);

    // Paper plots components in increasing order of singular value: index 1
    // is the weakest component, index `rank` the strongest.
    for (int j = 0; j < rank; ++j) {
      before[j] += std::abs(pre[rank - 1 - j]);
      after[j] += std::abs(post[rank - 1 - j]);
    }
  }
  for (int j = 0; j < rank; ++j) {
    before[j] /= trials;
    after[j] /= trials;
  }

  PrintHeader(
      "Figure 3 — cos(V*[i], V^*[i]) before/after ILSA "
      "(default config, avg over trials; higher is better)");
  std::printf("%-28s", "eigenvector (by asc. sigma)");
  for (int j = 0; j < rank; ++j) std::printf("%6d", j + 1);
  std::printf("\n%-28s", "before alignment");
  for (int j = 0; j < rank; ++j) std::printf("%6.2f", before[j]);
  std::printf("\n%-28s", "after alignment");
  for (int j = 0; j < rank; ++j) std::printf("%6.2f", after[j]);
  std::printf("\n");
  PrintRule();

  double gain = 0.0;
  for (int j = 0; j < rank; ++j) gain += after[j] - before[j];
  std::printf("mean similarity gain from alignment: %+.4f\n", gain / rank);
  std::printf("(paper: alignment lifts low-rank components most — compare "
              "the left side of the rows)\n");
  return 0;
}
