// Quickstart: decompose a small interval-valued matrix with ISVD4 and
// inspect the factors, the reconstruction, and its accuracy.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/accuracy.h"
#include "core/isvd.h"
#include "interval/interval_matrix.h"

int main() {
  using namespace ivmf;

  // An interval-valued matrix: e.g. sensor readings with per-cell
  // measurement uncertainty. Entry (i, j) is the interval [lo, hi].
  IntervalMatrix m(4, 5);
  const double lo[4][5] = {{2.0, 3.1, 0.5, 1.2, 4.0},
                           {1.9, 3.0, 0.4, 1.0, 3.8},
                           {0.2, 0.5, 2.5, 2.2, 0.3},
                           {0.3, 0.6, 2.4, 2.0, 0.4}};
  const double span[4][5] = {{0.2, 0.4, 0.1, 0.3, 0.5},
                             {0.1, 0.2, 0.1, 0.2, 0.4},
                             {0.1, 0.1, 0.5, 0.4, 0.1},
                             {0.1, 0.2, 0.4, 0.5, 0.1}};
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 5; ++j)
      m.Set(i, j, Interval(lo[i][j], lo[i][j] + span[i][j]));

  std::printf("input lower endpoints:\n%s\n", m.lower().ToString().c_str());
  std::printf("input upper endpoints:\n%s\n", m.upper().ToString().c_str());

  // Decompose at rank 2 with the paper's best strategy: ISVD4 under
  // decomposition target b (scalar factors U, V + interval-valued core Σ†).
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  const IsvdResult result = Isvd4(m, /*rank=*/2, options);

  std::printf("scalar factor U (4 x 2):\n%s\n",
              result.ScalarU().ToString().c_str());
  std::printf("interval core Σ†: ");
  for (const Interval& s : result.sigma)
    std::printf("[%.3f, %.3f] ", s.lo, s.hi);
  std::printf("\nscalar factor V (5 x 2):\n%s\n",
              result.ScalarV().ToString().c_str());

  // Reconstruct and score (Definition 5 of the paper).
  const IntervalMatrix recon = result.Reconstruct();
  const AccuracyReport report = DecompositionAccuracy(m, recon);
  std::printf("reconstruction accuracy: Θ(min)=%.3f Θ(max)=%.3f "
              "Θ_HM=%.3f\n",
              report.theta_min, report.theta_max, report.harmonic_mean);

  // Compare against the naive baseline that averages intervals away.
  const IsvdResult naive = Isvd0(m, 2, options);
  const AccuracyReport naive_report =
      DecompositionAccuracy(m, naive.Reconstruct());
  std::printf("naive ISVD0 baseline:    Θ_HM=%.3f\n",
              naive_report.harmonic_mean);
  return 0;
}
