// Face identification with interval-valued pixels (Section 6.4): pixels are
// imprecise (pose jitter), so each image row becomes an interval vector via
// the neighborhood-std construction; ISVD2-b features + 1-NN identify the
// individual.

#include <cstdio>
#include <vector>

#include "base/rng.h"
#include "core/isvd.h"
#include "data/faces.h"
#include "eval/knn.h"
#include "eval/metrics.h"

int main() {
  using namespace ivmf;

  FaceCorpusConfig config;
  config.num_individuals = 20;
  config.images_per_individual = 10;
  config.width = 16;
  config.height = 16;
  const FaceCorpus corpus = GenerateFaceCorpus(config);
  std::printf("corpus: %zu individuals x %zu images at %zux%zu px\n",
              config.num_individuals, config.images_per_individual,
              config.width, config.height);

  // Decompose the interval-valued image matrix (ISVD2, option b): the
  // classification task uses the U x Σ features (Section 6.1.2).
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.gram_side = GramSide::kAuto;
  const size_t rank = 20;
  const IsvdResult result = Isvd2(corpus.intervals, rank, options);

  Matrix features = result.ScalarU();
  for (size_t i = 0; i < features.rows(); ++i)
    for (size_t j = 0; j < features.cols(); ++j)
      features(i, j) *= result.sigma[j].Mid();

  // 50/50 train/test split per individual.
  Rng rng(99);
  std::vector<size_t> train_rows, test_rows;
  std::vector<int> train_labels, test_labels;
  for (size_t i = 0; i < features.rows(); ++i) {
    if (i % 2 == 0) {
      train_rows.push_back(i);
      train_labels.push_back(corpus.labels[i]);
    } else {
      test_rows.push_back(i);
      test_labels.push_back(corpus.labels[i]);
    }
  }
  Matrix train(train_rows.size(), rank), test(test_rows.size(), rank);
  for (size_t i = 0; i < train_rows.size(); ++i)
    train.SetRow(i, features.Row(train_rows[i]));
  for (size_t i = 0; i < test_rows.size(); ++i)
    test.SetRow(i, features.Row(test_rows[i]));

  const std::vector<int> predicted = Classify1Nn(train, train_labels, test);
  std::printf("1-NN on ISVD2-b features (rank %zu): F1=%.3f accuracy=%.3f\n",
              rank, MacroF1(test_labels, predicted),
              Accuracy(test_labels, predicted));

  // Baseline: raw-pixel nearest neighbour (no decomposition).
  Matrix train_px(train_rows.size(), corpus.images.cols());
  Matrix test_px(test_rows.size(), corpus.images.cols());
  for (size_t i = 0; i < train_rows.size(); ++i)
    train_px.SetRow(i, corpus.images.Row(train_rows[i]));
  for (size_t i = 0; i < test_rows.size(); ++i)
    test_px.SetRow(i, corpus.images.Row(test_rows[i]));
  const std::vector<int> raw_predicted =
      Classify1Nn(train_px, train_labels, test_px);
  std::printf("1-NN on raw %zu-dim pixels:            F1=%.3f (features are "
              "%zu-dim)\n",
              corpus.images.cols(), MacroF1(test_labels, raw_predicted), rank);
  return 0;
}
