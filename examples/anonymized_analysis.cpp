// Analyzing anonymized data (the paper's privacy motivation, Section 6.3.2):
// a data publisher generalizes a scalar attribute table into value ranges;
// the analyst decomposes the published interval matrix and still recovers
// the dominant latent structure.

#include <cstdio>

#include "base/rng.h"
#include "core/accuracy.h"
#include "core/isvd.h"
#include "data/anonymize.h"

int main() {
  using namespace ivmf;

  // A private data set with planted rank-3 structure (e.g. user attributes
  // driven by three hidden profiles).
  Rng rng(2024);
  const size_t users = 60, attributes = 40, hidden = 3;
  Matrix profiles(users, hidden), loadings(attributes, hidden);
  for (size_t i = 0; i < users; ++i)
    for (size_t k = 0; k < hidden; ++k) profiles(i, k) = rng.Uniform();
  for (size_t j = 0; j < attributes; ++j)
    for (size_t k = 0; k < hidden; ++k) loadings(j, k) = rng.Uniform();
  const Matrix secret = profiles * loadings.Transpose();

  std::printf("private matrix: %zu users x %zu attributes, planted rank %zu\n",
              users, attributes, hidden);

  IsvdOptions options;
  options.target = DecompositionTarget::kB;

  for (const auto& [mix, label] :
       std::vector<std::pair<AnonymizationMix, const char*>>{
           {LowPrivacyMix(), "low privacy   [L1:40 L2:30 L3:20 L4:10]"},
           {MediumPrivacyMix(), "medium privacy[25 each]"},
           {HighPrivacyMix(), "high privacy  [L1:10 L2:20 L3:30 L4:40]"}}) {
    // The publisher generalizes each cell into its bin range.
    Rng publish_rng(7);
    const IntervalMatrix published = AnonymizeMatrix(secret, mix, publish_rng);

    // The analyst decomposes the published intervals at the planted rank.
    const IsvdResult result = Isvd4(published, hidden, options);
    const IntervalMatrix recon = result.Reconstruct();

    // Two questions: how well does the decomposition represent the
    // *published* intervals (Θ_HM), and how close does its midpoint come to
    // the *secret* data the analyst never saw?
    const AccuracyReport vs_published = DecompositionAccuracy(published, recon);
    const double secret_err =
        RelativeFrobenius(secret, recon.Mid());

    std::printf("%-40s Θ_HM(published)=%.3f   rel.err(secret)=%.3f   "
                "mean bin width=%.3f\n",
                label, vs_published.harmonic_mean, secret_err,
                published.Span().Sum() /
                    static_cast<double>(published.rows() * published.cols()));
  }

  std::printf("\nEven under heavy generalization the interval decomposition "
              "tracks the hidden structure — the paper's anonymized-data "
              "use case.\n");
  return 0;
}
