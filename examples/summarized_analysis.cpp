// Summarized-data analysis (the paper's first motivation, Section 1.1):
// a large scalar dataset is collapsed into interval-valued group summaries
// for interactive analysis; decomposing the small interval matrix recovers
// the same latent directions as analyzing the full data — at a fraction of
// the size.

#include <cmath>
#include <cstdio>

#include "base/rng.h"
#include "base/stopwatch.h"
#include "core/isvd.h"
#include "data/summarize.h"
#include "factor/interval_pca.h"
#include "linalg/svd.h"

int main() {
  using namespace ivmf;

  // Full data: 2000 observations x 16 features with planted rank-3
  // structure (three latent "regimes" driving all features).
  Rng rng(314);
  const size_t n = 2000, d = 16, hidden = 3;
  Matrix basis(d, hidden);
  for (size_t j = 0; j < d; ++j)
    for (size_t k = 0; k < hidden; ++k) basis(j, k) = rng.Normal();
  // Latent weights follow a slow AR(1) walk, so consecutive observations
  // are similar — the natural setting for block summarization (sensor
  // windows, daily aggregates, ...).
  Matrix full(n, d);
  double weights[3] = {rng.Normal(), rng.Normal(), rng.Normal()};
  for (size_t i = 0; i < n; ++i) {
    for (double& w : weights) w = 0.98 * w + 0.2 * rng.Normal();
    for (size_t j = 0; j < d; ++j) {
      double v = 0.0;
      for (size_t k = 0; k < hidden; ++k) v += weights[k] * basis(j, k);
      full(i, j) = v + 0.05 * rng.Normal();
    }
  }

  // Analyst's reference: top latent directions of the full data.
  Stopwatch sw;
  const SvdResult full_svd = ComputeSvd(full, hidden);
  const double full_seconds = sw.Seconds();

  // Publisher summarizes blocks of 20 observations into min..max intervals:
  // 2000 x 16 scalars become 100 x 16 intervals.
  const size_t group = 20;
  const IntervalMatrix summary = SummarizeRows(full, group);
  std::printf("full data: %zu x %zu -> summary: %zu x %zu intervals "
              "(%.0fx smaller)\n",
              n, d, summary.rows(), summary.cols(),
              static_cast<double>(n) / summary.rows());

  // Interval decomposition of the summary.
  sw.Restart();
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  const IsvdResult isvd = Isvd4(summary, hidden, options);
  const double isvd_seconds = sw.Seconds();

  // Interval PCA of the summary (midpoint-radius covariance).
  sw.Restart();
  const IntervalPcaResult pca = ComputeIntervalPca(summary, hidden);
  const double pca_seconds = sw.Seconds();

  // How well do the summary's latent directions match the full data's?
  auto alignment = [&](const Matrix& components) {
    double total = 0.0;
    for (size_t k = 0; k < hidden; ++k) {
      double best = 0.0;
      for (size_t k2 = 0; k2 < hidden; ++k2) {
        const double c = std::abs(
            CosineSimilarity(components.Col(k2), full_svd.v.Col(k)));
        best = std::max(best, c);
      }
      total += best;
    }
    return total / static_cast<double>(hidden);
  };

  std::printf("\nlatent-direction agreement with full-data SVD "
              "(mean best |cos|, 1.0 = identical):\n");
  std::printf("  ISVD4-b on summary:        %.3f   (%.4fs vs full SVD "
              "%.4fs)\n",
              alignment(isvd.ScalarV()), isvd_seconds, full_seconds);
  std::printf("  interval MR-PCA on summary: %.3f   (%.4fs)\n",
              alignment(pca.components), pca_seconds);
  std::printf("  MR-PCA explained by rank-%zu: %.1f%%\n", hidden,
              100.0 * pca.ExplainedRatio(hidden));

  std::printf("\nThe 20x smaller interval summary preserves the latent "
              "structure of the full dataset.\n");
  return 0;
}
