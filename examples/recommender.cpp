// Collaborative filtering with ambiguous ratings (Section 6.5): each rating
// becomes an interval via the F.2 construction (x ± α·std of the user's and
// item's ratings); AI-PMF trains on the intervals and predicts held-out
// ratings from the interval midpoints.

#include <cstdio>

#include "base/rng.h"
#include "data/ratings.h"
#include "factor/pmf.h"

int main() {
  using namespace ivmf;

  RatingsConfig config;
  config.num_users = 200;
  config.num_items = 300;
  config.num_genres = 12;
  config.fill = 0.2;
  const RatingsData data = GenerateRatings(config);
  std::printf("ratings: %zu users x %zu items, %.0f observed\n",
              config.num_users, config.num_items, data.mask.Sum());

  // Interval-ize the ratings (ambiguity model of the supplementary F.2).
  const IntervalMatrix cf = CfIntervalMatrix(data, /*alpha=*/0.3);

  // Hold out 20% of the observed ratings for evaluation.
  Rng rng(7);
  const CfSplit split = SplitRatings(data, 0.2, rng);

  PmfOptions options;
  options.epochs = 150;
  const size_t rank = 20;

  // Scalar PMF baseline on the raw ratings.
  const PmfResult pmf = ComputePmf(data.ratings, split.train_mask, rank, options);
  const double rmse_pmf =
      MaskedRmse(data.ratings, pmf.Reconstruct(), split.test_mask);

  // I-PMF: interval-aware, no alignment.
  const IntervalPmfResult ipmf =
      ComputeIntervalPmf(cf, split.train_mask, rank, options);
  const double rmse_ipmf =
      MaskedRmse(data.ratings, ipmf.PredictMid(), split.test_mask);

  // AI-PMF: the paper's aligned interval PMF.
  const IntervalPmfResult aipmf =
      ComputeAlignedIntervalPmf(cf, split.train_mask, rank, options);
  const double rmse_aipmf =
      MaskedRmse(data.ratings, aipmf.PredictMid(), split.test_mask);

  std::printf("held-out RMSE at rank %zu:\n", rank);
  std::printf("  PMF    %.4f  (scalar baseline)\n", rmse_pmf);
  std::printf("  I-PMF  %.4f  (interval-aware)\n", rmse_ipmf);
  std::printf("  AI-PMF %.4f  (interval-aware + latent alignment)\n",
              rmse_aipmf);

  // Show a few predictions with their uncertainty intervals.
  const IntervalMatrix recon = aipmf.Reconstruct();
  std::printf("\nsample predictions (user, item): truth -> predicted "
              "[interval]\n");
  int shown = 0;
  for (size_t i = 0; i < data.mask.rows() && shown < 5; ++i) {
    for (size_t j = 0; j < data.mask.cols() && shown < 5; ++j) {
      if (split.test_mask(i, j) == 0.0) continue;
      std::printf("  (%3zu, %3zu): %.0f -> %.2f  [%.2f, %.2f]\n", i, j,
                  data.ratings(i, j), recon.At(i, j).Mid(),
                  recon.At(i, j).lo, recon.At(i, j).hi);
      ++shown;
    }
  }
  return 0;
}
