#include "linalg/eig.h"

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::OrthonormalityError;
using ::ivmf::testing::RandomMatrix;
using ::ivmf::testing::RandomSymmetric;

TEST(EigTest, DiagonalMatrixEigenvalues) {
  const Matrix a = Matrix::Diagonal({5, 1, 3});
  const EigResult eig = ComputeSymmetricEig(a);
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_NEAR(eig.eigenvalues[0], 5.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-10);
}

TEST(EigTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  const Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  const EigResult eig = ComputeSymmetricEig(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
}

TEST(EigTest, EigenpairsSatisfyDefiningEquation) {
  Rng rng(1);
  const Matrix a = RandomSymmetric(12, rng);
  const EigResult eig = ComputeSymmetricEig(a);
  for (size_t j = 0; j < eig.eigenvalues.size(); ++j) {
    const std::vector<double> v = eig.eigenvectors.Col(j);
    // ||A v - λ v|| should vanish.
    double err = 0.0;
    for (size_t i = 0; i < a.rows(); ++i) {
      double av = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) av += a(i, k) * v[k];
      const double r = av - eig.eigenvalues[j] * v[i];
      err += r * r;
    }
    EXPECT_LT(std::sqrt(err), 1e-8);
  }
}

TEST(EigTest, EigenvectorsAreOrthonormal) {
  Rng rng(2);
  const Matrix a = RandomSymmetric(15, rng);
  const EigResult eig = ComputeSymmetricEig(a);
  EXPECT_LT(OrthonormalityError(eig.eigenvectors), 1e-9);
}

TEST(EigTest, EigenvaluesSortedDescending) {
  Rng rng(3);
  const Matrix a = RandomSymmetric(10, rng);
  const EigResult eig = ComputeSymmetricEig(a);
  for (size_t i = 1; i < eig.eigenvalues.size(); ++i)
    EXPECT_GE(eig.eigenvalues[i - 1], eig.eigenvalues[i]);
}

TEST(EigTest, TraceEqualsEigenvalueSum) {
  Rng rng(4);
  const Matrix a = RandomSymmetric(9, rng);
  const EigResult eig = ComputeSymmetricEig(a);
  double trace = 0.0, sum = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) trace += a(i, i);
  for (double l : eig.eigenvalues) sum += l;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(EigTest, TruncationKeepsLargest) {
  Rng rng(5);
  const Matrix a = RandomSymmetric(8, rng);
  const EigResult full = ComputeSymmetricEig(a);
  const EigResult top3 = ComputeSymmetricEig(a, 3);
  ASSERT_EQ(top3.eigenvalues.size(), 3u);
  for (size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(top3.eigenvalues[i], full.eigenvalues[i], 1e-9);
  EXPECT_EQ(top3.eigenvectors.cols(), 3u);
}

TEST(EigTest, GramMatrixEigenvaluesAreNonNegative) {
  Rng rng(6);
  const Matrix m = RandomMatrix(7, 10, rng);
  const Matrix gram = m.Transpose() * m;
  const EigResult eig = ComputeSymmetricEig(gram);
  for (double l : eig.eigenvalues) EXPECT_GE(l, -1e-9);
}

TEST(EigTest, GramEigenvaluesMatchSingularValuesSquared) {
  Rng rng(7);
  const Matrix m = RandomMatrix(6, 4, rng);
  const Matrix gram = m.Transpose() * m;
  const EigResult eig = ComputeSymmetricEig(gram);
  // Reconstruct gram from the eigendecomposition.
  Matrix recon(4, 4);
  for (size_t j = 0; j < eig.eigenvalues.size(); ++j)
    for (size_t a = 0; a < 4; ++a)
      for (size_t b = 0; b < 4; ++b)
        recon(a, b) += eig.eigenvalues[j] * eig.eigenvectors(a, j) *
                       eig.eigenvectors(b, j);
  EXPECT_TRUE(recon.ApproxEquals(gram, 1e-9));
}

TEST(EigTest, OneByOne) {
  const EigResult eig = ComputeSymmetricEig(Matrix::FromRows({{-4.0}}));
  ASSERT_EQ(eig.eigenvalues.size(), 1u);
  EXPECT_DOUBLE_EQ(eig.eigenvalues[0], -4.0);
  EXPECT_NEAR(std::abs(eig.eigenvectors(0, 0)), 1.0, 1e-12);
}

TEST(EigTest, ZeroMatrix) {
  const EigResult eig = ComputeSymmetricEig(Matrix(5, 5));
  for (double l : eig.eigenvalues) EXPECT_DOUBLE_EQ(l, 0.0);
  EXPECT_LT(OrthonormalityError(eig.eigenvectors), 1e-12);
}

// Property sweep over sizes.
class EigSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(EigSizeTest, DecompositionReconstructs) {
  const int n = GetParam();
  Rng rng(900 + n);
  const Matrix a = RandomSymmetric(n, rng);
  const EigResult eig = ComputeSymmetricEig(a);
  Matrix recon(n, n);
  for (size_t j = 0; j < eig.eigenvalues.size(); ++j)
    for (int p = 0; p < n; ++p)
      for (int q = 0; q < n; ++q)
        recon(p, q) += eig.eigenvalues[j] * eig.eigenvectors(p, j) *
                       eig.eigenvectors(q, j);
  EXPECT_TRUE(recon.ApproxEquals(a, 1e-8)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSizeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace ivmf
