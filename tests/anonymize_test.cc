#include "data/anonymize.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomMatrix;

TEST(GeneralizeValueTest, ValueFallsInsideItsBin) {
  for (double x : {0.0, 0.1, 0.5, 0.99, 1.0}) {
    const Interval bin = GeneralizeValue(x, 0.0, 1.0, 20);
    EXPECT_LE(bin.lo, x + 1e-12);
    EXPECT_GE(bin.hi, x - 1e-12);
  }
}

TEST(GeneralizeValueTest, BinWidthMatchesLevel) {
  const Interval bin = GeneralizeValue(0.37, 0.0, 1.0, 5);
  EXPECT_NEAR(bin.Span(), 0.2, 1e-12);
}

TEST(GeneralizeValueTest, EdgeValuesClampToValidBins) {
  const Interval top = GeneralizeValue(1.0, 0.0, 1.0, 10);
  EXPECT_NEAR(top.hi, 1.0, 1e-12);
  const Interval bottom = GeneralizeValue(0.0, 0.0, 1.0, 10);
  EXPECT_NEAR(bottom.lo, 0.0, 1e-12);
}

TEST(GeneralizeValueTest, DegenerateDomainStaysScalar) {
  const Interval bin = GeneralizeValue(3.0, 3.0, 3.0, 10);
  EXPECT_TRUE(bin.IsScalar());
}

TEST(GeneralizeValueTest, MoreBinsMeanNarrowerIntervals) {
  const double spans[] = {GeneralizeValue(0.5, 0.0, 1.0, 100).Span(),
                          GeneralizeValue(0.5, 0.0, 1.0, 50).Span(),
                          GeneralizeValue(0.5, 0.0, 1.0, 20).Span(),
                          GeneralizeValue(0.5, 0.0, 1.0, 5).Span()};
  for (int i = 1; i < 4; ++i) EXPECT_GT(spans[i], spans[i - 1]);
}

TEST(AnonymizeMatrixTest, ContainsOriginal) {
  Rng rng(1);
  const Matrix m = RandomMatrix(20, 15, rng, 0.0, 1.0);
  const IntervalMatrix anon = AnonymizeMatrix(m, MediumPrivacyMix(), rng);
  EXPECT_TRUE(anon.ContainsMatrix(m, 1e-12));
  EXPECT_TRUE(anon.IsProper());
}

TEST(AnonymizeMatrixTest, MixControlsAverageSpan) {
  Rng rng(2);
  const Matrix m = RandomMatrix(60, 60, rng, 0.0, 1.0);
  Rng rng_high(3), rng_low(3);
  const IntervalMatrix high = AnonymizeMatrix(m, HighPrivacyMix(), rng_high);
  const IntervalMatrix low = AnonymizeMatrix(m, LowPrivacyMix(), rng_low);
  // Higher privacy -> coarser bins on average -> larger total span.
  EXPECT_GT(high.Span().Sum(), low.Span().Sum());
}

TEST(AnonymizeMatrixTest, MixesAreNormalized) {
  for (const AnonymizationMix mix :
       {HighPrivacyMix(), MediumPrivacyMix(), LowPrivacyMix()}) {
    EXPECT_NEAR(mix.l1 + mix.l2 + mix.l3 + mix.l4, 1.0, 1e-12);
  }
}

TEST(AnonymizeMatrixTest, SpansComeFromKnownBinWidths) {
  Rng rng(4);
  const Matrix m = RandomMatrix(30, 30, rng, 0.0, 1.0);
  const IntervalMatrix anon = AnonymizeMatrix(m, MediumPrivacyMix(), rng);

  // Domain of the generalization = [min, max] of the input.
  double lo = m(0, 0), hi = m(0, 0);
  for (size_t i = 0; i < 30; ++i)
    for (size_t j = 0; j < 30; ++j) {
      lo = std::min(lo, m(i, j));
      hi = std::max(hi, m(i, j));
    }

  // Every span must equal domain / bins for one of the four levels.
  for (size_t i = 0; i < 30; ++i) {
    for (size_t j = 0; j < 30; ++j) {
      const double span = anon.At(i, j).Span();
      EXPECT_GT(span, 0.0);  // generalization always publishes a range
      bool matches = false;
      for (size_t bins : kGeneralizationBins) {
        if (std::abs(span - (hi - lo) / static_cast<double>(bins)) < 1e-9)
          matches = true;
      }
      EXPECT_TRUE(matches) << "span " << span << " at (" << i << "," << j << ")";
    }
  }
}

}  // namespace
}  // namespace ivmf
