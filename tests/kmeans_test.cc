#include "eval/kmeans.h"

#include <set>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace ivmf {
namespace {

// Three well-separated Gaussian blobs with ground-truth labels.
std::pair<Matrix, std::vector<int>> MakeBlobs(size_t per_cluster, Rng& rng) {
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Matrix points(3 * per_cluster, 2);
  std::vector<int> labels(3 * per_cluster);
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_cluster; ++i) {
      const size_t row = c * per_cluster + i;
      points(row, 0) = centers[c][0] + 0.5 * rng.Normal();
      points(row, 1) = centers[c][1] + 0.5 * rng.Normal();
      labels[row] = static_cast<int>(c);
    }
  }
  return {points, labels};
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  Rng rng(1);
  const auto [points, labels] = MakeBlobs(30, rng);
  KMeansOptions options;
  options.k = 3;
  const KMeansResult result = KMeans(points, options);
  EXPECT_GT(NormalizedMutualInformation(labels, result.assignments), 0.95);
}

TEST(KMeansTest, AssignmentsInRange) {
  Rng rng(2);
  const auto [points, labels] = MakeBlobs(10, rng);
  KMeansOptions options;
  options.k = 3;
  const KMeansResult result = KMeans(points, options);
  for (int a : result.assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 3);
  }
  EXPECT_EQ(result.assignments.size(), points.rows());
}

TEST(KMeansTest, InertiaIsSumOfSquaredDistances) {
  Rng rng(3);
  const auto [points, labels] = MakeBlobs(10, rng);
  KMeansOptions options;
  options.k = 3;
  const KMeansResult result = KMeans(points, options);
  double inertia = 0.0;
  for (size_t i = 0; i < points.rows(); ++i) {
    double d = 0.0;
    for (size_t j = 0; j < points.cols(); ++j) {
      const double diff =
          points(i, j) - result.centroids(result.assignments[i], j);
      d += diff * diff;
    }
    inertia += d;
  }
  EXPECT_NEAR(result.inertia, inertia, 1e-9);
}

TEST(KMeansTest, KEqualsOneGroupsEverything) {
  Rng rng(4);
  const auto [points, labels] = MakeBlobs(5, rng);
  KMeansOptions options;
  options.k = 1;
  const KMeansResult result = KMeans(points, options);
  for (int a : result.assignments) EXPECT_EQ(a, 0);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  Rng rng(5);
  Matrix points(4, 2);
  points(0, 0) = 0;
  points(1, 0) = 5;
  points(2, 0) = 10;
  points(3, 0) = 15;
  KMeansOptions options;
  options.k = 4;
  options.restarts = 5;
  const KMeansResult result = KMeans(points, options);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
  std::set<int> distinct(result.assignments.begin(), result.assignments.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(KMeansTest, MoreRestartsNeverWorsenInertia) {
  Rng rng(6);
  const auto [points, labels] = MakeBlobs(15, rng);
  KMeansOptions one;
  one.k = 3;
  one.restarts = 1;
  KMeansOptions many = one;
  many.restarts = 8;
  EXPECT_LE(KMeans(points, many).inertia, KMeans(points, one).inertia + 1e-9);
}

TEST(KMeansTest, DeterministicForSeed) {
  Rng rng(7);
  const auto [points, labels] = MakeBlobs(10, rng);
  KMeansOptions options;
  options.k = 3;
  const KMeansResult a = KMeans(points, options);
  const KMeansResult b = KMeans(points, options);
  EXPECT_EQ(a.assignments, b.assignments);
}

TEST(KMeansIntervalTest, SeparatesBySpanWhenMidpointsCoincide) {
  // Two groups share midpoints but differ in interval width; interval
  // k-means (doubled representation) separates them, scalar-on-midpoint
  // cannot.
  Rng rng(8);
  IntervalMatrix points(40, 1);
  std::vector<int> truth(40);
  for (size_t i = 0; i < 40; ++i) {
    const double mid = 5.0 + 0.05 * rng.Normal();
    const double halfspan = (i < 20) ? 0.1 : 4.0;
    points.Set(i, 0, Interval(mid - halfspan, mid + halfspan));
    truth[i] = i < 20 ? 0 : 1;
  }
  KMeansOptions options;
  options.k = 2;
  options.restarts = 5;
  const KMeansResult interval_result = KMeansInterval(points, options);
  EXPECT_GT(NormalizedMutualInformation(truth, interval_result.assignments),
            0.9);
}

TEST(KMeansIntervalTest, DegenerateMatchesScalar) {
  Rng rng(9);
  const auto [points, labels] = MakeBlobs(10, rng);
  KMeansOptions options;
  options.k = 3;
  const KMeansResult scalar = KMeans(points, options);
  const KMeansResult interval =
      KMeansInterval(IntervalMatrix::FromScalar(points), options);
  // Same data twice (doubled) -> identical partition structure.
  EXPECT_NEAR(
      NormalizedMutualInformation(scalar.assignments, interval.assignments),
      1.0, 1e-9);
}

class KMeansKSweep : public ::testing::TestWithParam<int> {};

TEST_P(KMeansKSweep, InertiaDecreasesWithK) {
  Rng rng(10);
  const auto [points, labels] = MakeBlobs(20, rng);
  KMeansOptions fewer;
  fewer.k = static_cast<size_t>(GetParam());
  fewer.restarts = 4;
  KMeansOptions more = fewer;
  more.k = fewer.k + 2;
  EXPECT_GE(KMeans(points, fewer).inertia, KMeans(points, more).inertia - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansKSweep, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace ivmf
