// Tests for AI-NMF, the alignment-extended interval NMF.

#include <gtest/gtest.h>
#include "base/rng.h"
#include "factor/nmf.h"
#include "test_util.h"

namespace ivmf {
namespace {

IntervalMatrix NonNegativeIntervalMatrix(size_t rows, size_t cols, Rng& rng) {
  Matrix lo(rows, cols), hi(rows, cols);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j) {
      lo(i, j) = rng.Uniform(0.0, 1.0);
      hi(i, j) = lo(i, j) + rng.Uniform(0.0, 0.4);
    }
  return IntervalMatrix(lo, hi);
}

TEST(AiNmfTest, FactorsStayNonNegative) {
  Rng rng(1);
  const IntervalMatrix m = NonNegativeIntervalMatrix(12, 9, rng);
  const IntervalNmfResult result = ComputeAlignedIntervalNmf(m, 4);
  for (size_t i = 0; i < result.u.rows(); ++i)
    for (size_t j = 0; j < result.u.cols(); ++j)
      EXPECT_GE(result.u(i, j), 0.0);
  for (size_t i = 0; i < result.v_lo.rows(); ++i)
    for (size_t j = 0; j < result.v_lo.cols(); ++j) {
      EXPECT_GE(result.v_lo(i, j), 0.0);
      EXPECT_GE(result.v_hi(i, j), 0.0);
    }
}

TEST(AiNmfTest, LossImprovesOverall) {
  Rng rng(2);
  const IntervalMatrix m = NonNegativeIntervalMatrix(14, 10, rng);
  const IntervalNmfResult result = ComputeAlignedIntervalNmf(m, 4);
  EXPECT_LT(result.loss_history.back(), result.loss_history.front());
}

TEST(AiNmfTest, MatchesInmfWhenAlignmentNeverFires) {
  // With align_every beyond the iteration budget the alignment step never
  // runs, so AI-NMF reduces exactly to I-NMF.
  Rng rng(3);
  const IntervalMatrix m = NonNegativeIntervalMatrix(10, 8, rng);
  NmfOptions options;
  options.max_iterations = 50;
  const IntervalNmfResult plain = ComputeIntervalNmf(m, 3, options);
  const IntervalNmfResult aligned = ComputeAlignedIntervalNmf(
      m, 3, options, /*align_every=*/options.max_iterations + 1);
  EXPECT_TRUE(plain.u.ApproxEquals(aligned.u, 1e-12));
  EXPECT_TRUE(plain.v_lo.ApproxEquals(aligned.v_lo, 1e-12));
  EXPECT_TRUE(plain.v_hi.ApproxEquals(aligned.v_hi, 1e-12));
}

TEST(AiNmfTest, AlignEveryZeroIsRejectedByIntervalNmfPath) {
  // ComputeIntervalNmf (align_every = 0) must behave exactly like before.
  Rng rng(4);
  const IntervalMatrix m = NonNegativeIntervalMatrix(8, 6, rng);
  const IntervalNmfResult result = ComputeIntervalNmf(m, 3);
  for (size_t i = 1; i < result.loss_history.size(); ++i)
    EXPECT_LE(result.loss_history[i], result.loss_history[i - 1] + 1e-9);
}

TEST(AiNmfTest, SparseAlignmentCadence) {
  Rng rng(5);
  const IntervalMatrix m = NonNegativeIntervalMatrix(10, 8, rng);
  NmfOptions options;
  options.max_iterations = 40;
  const IntervalNmfResult result =
      ComputeAlignedIntervalNmf(m, 3, options, /*align_every=*/10);
  EXPECT_LT(result.loss_history.back(), result.loss_history.front());
}

TEST(AiNmfTest, ReconstructionIsProperAndNonNegative) {
  Rng rng(6);
  const IntervalMatrix m = NonNegativeIntervalMatrix(10, 8, rng);
  const IntervalNmfResult result = ComputeAlignedIntervalNmf(m, 4);
  const IntervalMatrix recon = result.Reconstruct();
  EXPECT_TRUE(recon.IsProper());
  for (size_t i = 0; i < recon.rows(); ++i)
    for (size_t j = 0; j < recon.cols(); ++j)
      EXPECT_GE(recon.At(i, j).lo, 0.0);
}

}  // namespace
}  // namespace ivmf
