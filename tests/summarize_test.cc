#include "data/summarize.h"

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomMatrix;

TEST(SummarizeTest, GroupsOfTwoTakeMinMax) {
  const Matrix m = Matrix::FromRows({{1, 5}, {3, 2}, {7, 7}, {6, 9}});
  const IntervalMatrix s = SummarizeRows(m, 2);
  ASSERT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.At(0, 0), Interval(1, 3));
  EXPECT_EQ(s.At(0, 1), Interval(2, 5));
  EXPECT_EQ(s.At(1, 0), Interval(6, 7));
  EXPECT_EQ(s.At(1, 1), Interval(7, 9));
}

TEST(SummarizeTest, PartialFinalGroup) {
  const Matrix m = Matrix::FromRows({{1}, {2}, {3}});
  const IntervalMatrix s = SummarizeRows(m, 2);
  ASSERT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.At(0, 0), Interval(1, 2));
  EXPECT_EQ(s.At(1, 0), Interval(3, 3));  // singleton group is scalar
}

TEST(SummarizeTest, GroupSizeOneIsDegenerate) {
  Rng rng(1);
  const Matrix m = RandomMatrix(5, 3, rng);
  const IntervalMatrix s = SummarizeRows(m, 1);
  EXPECT_EQ(s.rows(), 5u);
  EXPECT_DOUBLE_EQ(s.Span().MaxAbs(), 0.0);
  EXPECT_TRUE(s.lower() == m);
}

TEST(SummarizeTest, SummaryContainsAllGroupMembers) {
  Rng rng(2);
  const Matrix m = RandomMatrix(24, 6, rng);
  const size_t group_size = 4;
  const IntervalMatrix s = SummarizeRows(m, group_size);
  for (size_t i = 0; i < m.rows(); ++i) {
    const size_t g = i / group_size;
    for (size_t j = 0; j < m.cols(); ++j) {
      EXPECT_TRUE(s.At(g, j).Contains(m(i, j)));
    }
  }
}

TEST(SummarizeTest, ByGroupHonorsArbitraryAssignment) {
  const Matrix m = Matrix::FromRows({{1}, {10}, {2}, {20}});
  const IntervalMatrix s = SummarizeRowsByGroup(m, {0, 1, 0, 1}, 2);
  EXPECT_EQ(s.At(0, 0), Interval(1, 2));
  EXPECT_EQ(s.At(1, 0), Interval(10, 20));
}

TEST(SummarizeTest, EmptyGroupStaysZero) {
  const Matrix m = Matrix::FromRows({{1}, {2}});
  const IntervalMatrix s = SummarizeRowsByGroup(m, {0, 0}, 3);
  EXPECT_EQ(s.At(1, 0), Interval(0, 0));
  EXPECT_EQ(s.At(2, 0), Interval(0, 0));
}

TEST(SummarizeTest, MeanStdCentersOnGroupMean) {
  const Matrix m = Matrix::FromRows({{1}, {3}});
  const IntervalMatrix s = SummarizeRowsMeanStd(m, 2, 1.0);
  ASSERT_EQ(s.rows(), 1u);
  // mean 2, std 1 -> [1, 3].
  EXPECT_NEAR(s.At(0, 0).lo, 1.0, 1e-12);
  EXPECT_NEAR(s.At(0, 0).hi, 3.0, 1e-12);
}

TEST(SummarizeTest, MeanStdAlphaScalesWidth) {
  Rng rng(3);
  const Matrix m = RandomMatrix(20, 4, rng);
  const IntervalMatrix narrow = SummarizeRowsMeanStd(m, 5, 0.5);
  const IntervalMatrix wide = SummarizeRowsMeanStd(m, 5, 1.0);
  EXPECT_LT((wide.Span() - narrow.Span() * 2.0).MaxAbs(), 1e-9);
}

TEST(SummarizeTest, MinMaxAlwaysContainsMeanStdForSmallAlpha) {
  // mean ± 0.5·std never exceeds min/max of the group.
  Rng rng(4);
  const Matrix m = RandomMatrix(30, 5, rng);
  const IntervalMatrix range = SummarizeRows(m, 6);
  const IntervalMatrix meanstd = SummarizeRowsMeanStd(m, 6, 0.5);
  for (size_t g = 0; g < range.rows(); ++g)
    for (size_t j = 0; j < range.cols(); ++j)
      EXPECT_TRUE(range.At(g, j).Contains(meanstd.At(g, j)))
          << "group " << g << " col " << j;
}

}  // namespace
}  // namespace ivmf
