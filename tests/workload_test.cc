// Workload-generator tests: the zipfian and uniform key generators must be
// seed-reproducible (a workload is rerunnable from its seed), the zipfian
// skew must match the configured theta against the closed-form
// distribution, and the latency histogram keeps the nearest-rank contract
// on the same 1..100 ms fixture the old LatencyRecorder was pinned against
// (interior ranks now carry the documented bucket tolerance; min / max stay
// exact). The exact-vs-bucketed comparison lives in obs_metrics_test.cc.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "serve/workload.h"

namespace ivmf {
namespace {

// -- Zipfian -----------------------------------------------------------------

TEST(ZipfianGeneratorTest, SeedReproducible) {
  ZipfianGenerator a(1000, 0.99, 42);
  ZipfianGenerator b(1000, 0.99, 42);
  ZipfianGenerator c(1000, 0.99, 43);
  bool any_differs = false;
  for (int i = 0; i < 2000; ++i) {
    const size_t key = a.Next();
    EXPECT_EQ(key, b.Next()) << "draw " << i;
    if (key != c.Next()) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "different seeds produced identical streams";
}

TEST(ZipfianGeneratorTest, DrawsStayInRange) {
  for (const size_t n : {1u, 2u, 7u, 1000u}) {
    ZipfianGenerator gen(n, 0.99, 7);
    for (int i = 0; i < 5000; ++i) {
      EXPECT_LT(gen.Next(), n);
    }
  }
}

TEST(ZipfianGeneratorTest, SingleKeyAlwaysZero) {
  ZipfianGenerator gen(1, 0.99, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.Next(), 0u);
}

TEST(ZipfianGeneratorTest, SkewMatchesThetaWithinTolerance) {
  const size_t n = 1000;
  const size_t draws = 300000;
  const double theta = 0.99;
  ZipfianGenerator gen(n, theta, 12345);
  std::vector<size_t> counts(n, 0);
  for (size_t i = 0; i < draws; ++i) ++counts[gen.Next()];

  // Keys 0 and 1 are drawn by exact closed-form thresholds in the YCSB
  // construction, so they match the ideal distribution to statistical
  // noise; keys >= 2 come from the continuous approximation, which runs a
  // few percent hot for small keys — allow 25% there.
  for (const size_t key : {0u, 1u, 2u, 5u, 10u}) {
    const double expected = gen.TheoreticalFrequency(key);
    const double observed = static_cast<double>(counts[key]) / draws;
    const double tolerance = (key <= 1 ? 0.05 : 0.25) * expected;
    EXPECT_NEAR(observed, expected, tolerance)
        << "key " << key << ": observed " << observed << " expected "
        << expected;
  }
  // The defining skew property: P(0)/P(1) = 2^theta exactly.
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
  EXPECT_NEAR(ratio, std::pow(2.0, theta), 0.15 * std::pow(2.0, theta));
  // And the head dominates: the hottest 1% of keys carry vastly more than
  // their uniform share (~39% of all draws at theta 0.99, vs 1% uniform).
  size_t head = 0;
  for (size_t key = 0; key < n / 100; ++key) head += counts[key];
  EXPECT_GT(static_cast<double>(head) / draws, 0.30);
}

TEST(ZipfianGeneratorTest, ThetaZeroIsNearUniform) {
  const size_t n = 100;
  const size_t draws = 200000;
  ZipfianGenerator gen(n, 0.0, 99);
  std::vector<size_t> counts(n, 0);
  for (size_t i = 0; i < draws; ++i) ++counts[gen.Next()];
  for (const size_t key : {0u, 25u, 50u, 99u}) {
    const double observed = static_cast<double>(counts[key]) / draws;
    EXPECT_NEAR(observed, 1.0 / n, 0.15 / n) << "key " << key;
  }
}

TEST(ZipfianGeneratorTest, TheoreticalFrequenciesSumToOne) {
  ZipfianGenerator gen(500, 0.8, 1);
  double sum = 0.0;
  for (size_t key = 0; key < 500; ++key) {
    sum += gen.TheoreticalFrequency(key);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

// -- Uniform -----------------------------------------------------------------

TEST(UniformKeyGeneratorTest, SeedReproducibleAndInRange) {
  UniformKeyGenerator a(777, 11);
  UniformKeyGenerator b(777, 11);
  for (int i = 0; i < 2000; ++i) {
    const size_t key = a.Next();
    EXPECT_EQ(key, b.Next());
    EXPECT_LT(key, 777u);
  }
}

TEST(UniformKeyGeneratorTest, MeanNearCenter) {
  const size_t n = 1000;
  const size_t draws = 200000;
  UniformKeyGenerator gen(n, 21);
  double sum = 0.0;
  for (size_t i = 0; i < draws; ++i) sum += static_cast<double>(gen.Next());
  const double mean = sum / draws;
  // Uniform on [0, n): mean (n-1)/2 = 499.5, sd of the mean ~ 0.65.
  EXPECT_NEAR(mean, (n - 1) / 2.0, 5.0);
}

// -- Percentiles -------------------------------------------------------------

TEST(LatencyHistogramTest, NearestRankPinnedFixture) {
  // 1..100 milliseconds, recorded shuffled: nearest-rank percentile p of
  // 100 samples is the p-th smallest, so Percentile(p) ~= p ms within the
  // histogram's bucket tolerance; the extremes are tracked exactly.
  std::vector<double> values;
  for (int v = 1; v <= 100; ++v) values.push_back(v * 1e-3);
  Rng rng(55);
  for (size_t i = values.size(); i > 1; --i) {
    std::swap(values[i - 1], values[rng.UniformIndex(i)]);
  }
  obs::Histogram recorder;
  for (const double v : values) recorder.Record(v);

  EXPECT_EQ(recorder.count(), 100u);
  const double tol = obs::Histogram::kMaxRelativeError;
  EXPECT_NEAR(recorder.Percentile(50), 0.050, 0.050 * tol);
  EXPECT_NEAR(recorder.Percentile(95), 0.095, 0.095 * tol);
  EXPECT_NEAR(recorder.Percentile(99), 0.099, 0.099 * tol);
  EXPECT_DOUBLE_EQ(recorder.Percentile(100), 0.100);  // exact maximum
  EXPECT_DOUBLE_EQ(recorder.Percentile(0), 0.001);    // exact minimum
  EXPECT_NEAR(recorder.Percentile(1.5), 0.002, 0.002 * tol);  // ceil(1.5) = 2
}

TEST(LatencyHistogramTest, SmallSampleCounts) {
  obs::Histogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(empty.total(), 0.0);

  obs::Histogram one;
  one.Record(0.25);
  const double tol = obs::Histogram::kMaxRelativeError;
  for (const double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_NEAR(one.Percentile(p), 0.25, 0.25 * tol);
  }

  // Three samples: p50 -> rank ceil(1.5) = 2, the middle one.
  obs::Histogram three;
  three.Record(0.3);
  three.Record(0.1);
  three.Record(0.2);
  EXPECT_NEAR(three.Percentile(50), 0.2, 0.2 * tol);
  EXPECT_DOUBLE_EQ(three.Percentile(100), 0.3);
  EXPECT_DOUBLE_EQ(three.total(), 0.6);
}

TEST(LatencyHistogramTest, MergeCombinesSamples) {
  obs::Histogram a, b;
  a.Record(0.001);
  a.Record(0.003);
  b.Record(0.002);
  b.Record(0.004);
  a.Merge(b);
  const double tol = obs::Histogram::kMaxRelativeError;
  EXPECT_EQ(a.count(), 4u);
  EXPECT_NEAR(a.Percentile(50), 0.002, 0.002 * tol);
  EXPECT_DOUBLE_EQ(a.Percentile(100), 0.004);
  EXPECT_DOUBLE_EQ(a.total(), 0.010);
  // Merge leaves the source untouched.
  EXPECT_EQ(b.count(), 2u);
}

}  // namespace
}  // namespace ivmf
