#include "tensor/cp.h"

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomMatrix;

// A planted rank-R tensor with unit factor columns and given weights.
Tensor3 PlantedTensor(size_t i, size_t j, size_t k, size_t rank,
                      std::vector<double> lambda, Rng& rng) {
  auto unit_factor = [&](size_t rows) {
    Matrix f = RandomMatrix(rows, rank, rng);
    for (size_t t = 0; t < rank; ++t) {
      double norm = 0.0;
      for (size_t r = 0; r < rows; ++r) norm += f(r, t) * f(r, t);
      norm = std::sqrt(norm);
      for (size_t r = 0; r < rows; ++r) f(r, t) /= norm;
    }
    return f;
  };
  return Tensor3::FromCp(unit_factor(i), unit_factor(j), unit_factor(k),
                         lambda);
}

TEST(CpAlsTest, RecoversPlantedRankOneTensor) {
  Rng rng(1);
  const Tensor3 x = PlantedTensor(6, 5, 4, 1, {3.0}, rng);
  const CpResult result = ComputeCpAls(x, 1);
  EXPECT_GT(result.fit_history.back(), 0.9999);
  EXPECT_NEAR(result.lambda[0], 3.0, 1e-3);
  EXPECT_TRUE(result.Reconstruct().ApproxEquals(x, 1e-3));
}

TEST(CpAlsTest, RecoversPlantedRankThreeTensor) {
  Rng rng(2);
  const Tensor3 x = PlantedTensor(8, 7, 6, 3, {5.0, 3.0, 2.0}, rng);
  CpOptions options;
  options.max_iterations = 300;
  const CpResult result = ComputeCpAls(x, 3, options);
  EXPECT_GT(result.fit_history.back(), 0.999);
  // Weights recovered in descending order.
  EXPECT_NEAR(result.lambda[0], 5.0, 0.2);
  EXPECT_NEAR(result.lambda[1], 3.0, 0.2);
  EXPECT_NEAR(result.lambda[2], 2.0, 0.2);
}

TEST(CpAlsTest, FactorColumnsAreUnitLength) {
  Rng rng(3);
  const Tensor3 x = PlantedTensor(6, 6, 6, 2, {2.0, 1.0}, rng);
  const CpResult result = ComputeCpAls(x, 2);
  for (size_t t = 0; t < 2; ++t) {
    EXPECT_NEAR(Norm2(result.a.Col(t)), 1.0, 1e-9);
    EXPECT_NEAR(Norm2(result.b.Col(t)), 1.0, 1e-9);
    EXPECT_NEAR(Norm2(result.c.Col(t)), 1.0, 1e-9);
  }
}

TEST(CpAlsTest, LambdaSortedDescending) {
  Rng rng(4);
  const Tensor3 x = PlantedTensor(7, 6, 5, 3, {1.0, 4.0, 2.5}, rng);
  const CpResult result = ComputeCpAls(x, 3, {200, 1e-9, 77});
  for (size_t t = 1; t < 3; ++t)
    EXPECT_GE(result.lambda[t - 1], result.lambda[t] - 1e-9);
}

TEST(CpAlsTest, FitImprovesOverIterations) {
  Rng rng(5);
  Tensor3 x = PlantedTensor(6, 6, 6, 2, {3.0, 1.5}, rng);
  // Add noise so the fit trajectory is non-trivial.
  for (size_t i = 0; i < 6; ++i)
    for (size_t j = 0; j < 6; ++j)
      for (size_t k = 0; k < 6; ++k) x(i, j, k) += 0.02 * rng.Normal();
  const CpResult result = ComputeCpAls(x, 2);
  EXPECT_GT(result.fit_history.back(), result.fit_history.front() - 1e-9);
  EXPECT_GT(result.fit_history.back(), 0.9);
}

TEST(IntervalCpTest, DegenerateTensorAlignsToIdentityQuality) {
  Rng rng(6);
  const Tensor3 x = PlantedTensor(6, 5, 4, 2, {3.0, 1.5}, rng);
  const IntervalCpResult result =
      ComputeAlignedIntervalCp(IntervalTensor3::FromScalar(x), 2);
  // Same tensor on both sides: components pair essentially perfectly.
  for (double s : result.component_similarity) EXPECT_GT(s, 0.99);
  for (size_t t = 0; t < 2; ++t)
    EXPECT_NEAR(result.lower.lambda[t], result.upper.lambda[t], 1e-6);
}

TEST(IntervalCpTest, AlignmentImprovesComponentPairing) {
  // Interval tensor whose endpoints share components but with weights that
  // swap the recovered order between the min and max sides — exactly the
  // misalignment ILSA fixes in the matrix case.
  Rng rng(7);
  auto unit = [&](size_t rows, size_t rank) {
    Matrix f = RandomMatrix(rows, rank, rng);
    for (size_t t = 0; t < rank; ++t) {
      double norm = Norm2(f.Col(t));
      for (size_t r = 0; r < rows; ++r) f(r, t) /= norm;
    }
    return f;
  };
  const Matrix a = unit(8, 2), b = unit(7, 2), c = unit(6, 2);
  IntervalTensor3 x;
  x.lower = Tensor3::FromCp(a, b, c, {2.0, 3.0});  // component 1 dominates
  x.upper = Tensor3::FromCp(a, b, c, {6.0, 4.0});  // component 0 dominates

  const IntervalCpResult aligned = ComputeAlignedIntervalCp(x, 2);
  const IntervalCpResult unaligned =
      ComputeAlignedIntervalCp(x, 2, {}, /*align=*/false);

  double aligned_sum = 0.0, unaligned_sum = 0.0;
  for (size_t t = 0; t < 2; ++t) {
    aligned_sum += std::abs(
        CosineSimilarity(aligned.lower.a.Col(t), aligned.upper.a.Col(t)));
    unaligned_sum += std::abs(CosineSimilarity(unaligned.lower.a.Col(t),
                                               unaligned.upper.a.Col(t)));
  }
  EXPECT_GT(aligned_sum, 1.95);          // both pairs match after alignment
  EXPECT_GT(aligned_sum, unaligned_sum); // and alignment was necessary
}

TEST(IntervalCpTest, MidIsElementwiseAverage) {
  Rng rng(8);
  IntervalTensor3 x;
  x.lower = PlantedTensor(3, 3, 3, 1, {1.0}, rng);
  x.upper = x.lower;
  x.upper(1, 1, 1) += 2.0;
  const Tensor3 mid = x.Mid();
  EXPECT_NEAR(mid(1, 1, 1), x.lower(1, 1, 1) + 1.0, 1e-12);
  EXPECT_NEAR(mid(0, 0, 0), x.lower(0, 0, 0), 1e-12);
}

class CpRankTest : public ::testing::TestWithParam<int> {};

TEST_P(CpRankTest, PlantedRankIsRecovered) {
  const int rank = GetParam();
  Rng rng(100 + rank);
  std::vector<double> lambda(rank);
  for (int t = 0; t < rank; ++t) lambda[t] = rank + 1.0 - t;
  const Tensor3 x = PlantedTensor(9, 8, 7, rank, lambda, rng);
  CpOptions options;
  options.max_iterations = 400;
  const CpResult result = ComputeCpAls(x, rank, options);
  EXPECT_GT(result.fit_history.back(), 0.995) << "rank " << rank;
}

INSTANTIATE_TEST_SUITE_P(Ranks, CpRankTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace ivmf
