// Deeper algebraic property tests for the Sunaga interval algebra and the
// interval matrix operations: sub-distributivity, inclusion monotonicity,
// span arithmetic, and soundness of matrix products under sampling.

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "interval/interval.h"
#include "interval/interval_matrix.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomIntervalMatrix;

Interval RandomInterval(Rng& rng, double lo = -3.0, double hi = 3.0) {
  return Interval::FromUnordered(rng.Uniform(lo, hi), rng.Uniform(lo, hi));
}

TEST(IntervalPropertyTest, SubDistributivity) {
  // Interval arithmetic is sub-distributive: a(b + c) ⊆ ab + ac.
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const Interval a = RandomInterval(rng);
    const Interval b = RandomInterval(rng);
    const Interval c = RandomInterval(rng);
    const Interval left = a * (b + c);
    const Interval right = a * b + a * c;
    EXPECT_LE(right.lo, left.lo + 1e-12);
    EXPECT_GE(right.hi, left.hi - 1e-12);
  }
}

TEST(IntervalPropertyTest, ScalarMultiplicationIsExactlyDistributive) {
  // For scalar a, a(b + c) = ab + ac exactly.
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const double a = rng.Uniform(-3.0, 3.0);
    const Interval b = RandomInterval(rng);
    const Interval c = RandomInterval(rng);
    const Interval left = a * (b + c);
    const Interval right = a * b + a * c;
    EXPECT_NEAR(left.lo, right.lo, 1e-12);
    EXPECT_NEAR(left.hi, right.hi, 1e-12);
  }
}

TEST(IntervalPropertyTest, AdditionSpansAdd) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const Interval a = RandomInterval(rng);
    const Interval b = RandomInterval(rng);
    EXPECT_NEAR((a + b).Span(), a.Span() + b.Span(), 1e-12);
    EXPECT_NEAR((a - b).Span(), a.Span() + b.Span(), 1e-12);
  }
}

TEST(IntervalPropertyTest, SubtractionIsNotAdditionInverse) {
  // a - a is NOT [0,0] for proper intervals — it spans ±span(a). This is
  // the dependency problem of interval arithmetic, the root cause of
  // Theorem 1 / Corollary 2.
  const Interval a(1.0, 2.0);
  const Interval diff = a - a;
  EXPECT_DOUBLE_EQ(diff.lo, -1.0);
  EXPECT_DOUBLE_EQ(diff.hi, 1.0);
  EXPECT_TRUE(diff.Contains(0.0));
}

TEST(IntervalPropertyTest, MultiplicationInclusionMonotoneBothSides) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const Interval a = RandomInterval(rng);
    const Interval b = RandomInterval(rng);
    // Shrink both by random sub-intervals.
    const double fa = rng.Uniform(0.0, 0.5);
    const double fb = rng.Uniform(0.0, 0.5);
    const Interval a_sub(a.lo + fa * a.Span(), a.hi - fa * a.Span());
    const Interval b_sub(b.lo + fb * b.Span(), b.hi - fb * b.Span());
    EXPECT_TRUE((a * b).Contains(a_sub * b_sub));
  }
}

TEST(IntervalPropertyTest, MidpointOfProductInsideProductOfMidpointsHull) {
  // mid(a)·mid(b) lies inside a×b.
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const Interval a = RandomInterval(rng);
    const Interval b = RandomInterval(rng);
    EXPECT_TRUE((a * b).Contains(a.Mid() * b.Mid()));
  }
}

TEST(IntervalMatrixPropertyTest, ExactProductSoundnessUnderSampling) {
  // For random scalar selections A ∈ A†, B ∈ B†: AB ∈ exact(A†B†).
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const IntervalMatrix a = RandomIntervalMatrix(5, 6, rng, -1.0, 1.0, 0.8);
    const IntervalMatrix b = RandomIntervalMatrix(6, 4, rng, -1.0, 1.0, 0.8);
    const IntervalMatrix exact = IntervalMatMulExact(a, b);
    Matrix sa(5, 6), sb(6, 4);
    for (size_t i = 0; i < 5; ++i)
      for (size_t j = 0; j < 6; ++j)
        sa(i, j) = rng.Uniform(a.At(i, j).lo, a.At(i, j).hi);
    for (size_t i = 0; i < 6; ++i)
      for (size_t j = 0; j < 4; ++j)
        sb(i, j) = rng.Uniform(b.At(i, j).lo, b.At(i, j).hi);
    EXPECT_TRUE(exact.ContainsMatrix(sa * sb, 1e-9));
  }
}

TEST(IntervalMatrixPropertyTest, ProductTransposeIdentity) {
  // (A† B†)ᵀ = B†ᵀ A†ᵀ holds for the Algorithm-1 product.
  Rng rng(7);
  const IntervalMatrix a = RandomIntervalMatrix(4, 6, rng, -1.0, 1.0, 0.5);
  const IntervalMatrix b = RandomIntervalMatrix(6, 3, rng, -1.0, 1.0, 0.5);
  const IntervalMatrix left = IntervalMatMul(a, b).Transpose();
  const IntervalMatrix right = IntervalMatMul(b.Transpose(), a.Transpose());
  EXPECT_TRUE(left.ApproxEquals(right, 1e-12));
}

TEST(IntervalMatrixPropertyTest, MidpointOfSumIsSumOfMidpoints) {
  Rng rng(8);
  const IntervalMatrix a = RandomIntervalMatrix(5, 5, rng);
  const IntervalMatrix b = RandomIntervalMatrix(5, 5, rng);
  EXPECT_TRUE((a + b).Mid().ApproxEquals(a.Mid() + b.Mid(), 1e-12));
}

TEST(IntervalMatrixPropertyTest, AverageReplacementIsIdempotent) {
  Rng rng(9);
  IntervalMatrix m = RandomIntervalMatrix(6, 6, rng);
  // Inject misordered entries.
  for (int k = 0; k < 8; ++k) {
    const size_t i = rng.UniformIndex(6);
    const size_t j = rng.UniformIndex(6);
    const double lo = m.lower()(i, j);
    m.mutable_lower()(i, j) = m.upper()(i, j) + 1.0;
    m.mutable_upper()(i, j) = lo;
  }
  const IntervalMatrix once = m.AverageReplaced();
  const IntervalMatrix twice = once.AverageReplaced();
  EXPECT_TRUE(once.ApproxEquals(twice, 0.0));
  EXPECT_TRUE(once.IsProper());
}

class IntervalMatMulShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(IntervalMatMulShapeTest, PaperProductInsideExactHull) {
  const auto [n, k, m] = GetParam();
  Rng rng(1000 + n * 31 + k * 7 + m);
  const IntervalMatrix a = RandomIntervalMatrix(n, k, rng, -1.0, 1.0, 1.0);
  const IntervalMatrix b = RandomIntervalMatrix(k, m, rng, -1.0, 1.0, 1.0);
  const IntervalMatrix paper = IntervalMatMul(a, b);
  const IntervalMatrix exact = IntervalMatMulExact(a, b);
  for (size_t i = 0; i < paper.rows(); ++i) {
    for (size_t j = 0; j < paper.cols(); ++j) {
      EXPECT_TRUE(exact.At(i, j).Contains(
          Interval(paper.At(i, j).lo + 1e-12, paper.At(i, j).hi - 1e-12)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IntervalMatMulShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 5, 3),
                      std::make_tuple(8, 2, 8), std::make_tuple(4, 12, 4)));

}  // namespace
}  // namespace ivmf
