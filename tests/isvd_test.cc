#include "core/isvd.h"

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "core/accuracy.h"
#include "data/synthetic.h"
#include "linalg/svd.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomIntervalMatrix;
using ::ivmf::testing::RandomMatrix;

IntervalMatrix SmallTestMatrix(uint64_t seed, size_t rows = 12,
                               size_t cols = 18) {
  Rng rng(seed);
  return RandomIntervalMatrix(rows, cols, rng, 0.2, 1.0, 0.4);
}

TEST(Isvd0Test, DegenerateInputMatchesPlainSvd) {
  Rng rng(1);
  const Matrix m = RandomMatrix(8, 10, rng, 0.0, 1.0);
  const IsvdResult result = Isvd0(IntervalMatrix::FromScalar(m), 4);
  const SvdResult svd = ComputeSvd(m, 4);
  for (size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(result.sigma[j].Mid(), svd.sigma[j], 1e-9);
  // Scalar target: factors are degenerate.
  EXPECT_TRUE(result.u.IsProper());
  EXPECT_DOUBLE_EQ(result.u.Span().MaxAbs(), 0.0);
  EXPECT_EQ(result.target, DecompositionTarget::kC);
}

TEST(Isvd0Test, FullRankDegenerateReconstructsExactly) {
  Rng rng(2);
  const Matrix m = RandomMatrix(6, 9, rng, 0.0, 1.0);
  const IsvdResult result = Isvd0(IntervalMatrix::FromScalar(m), 0);
  const IntervalMatrix recon = result.Reconstruct();
  EXPECT_TRUE(recon.lower().ApproxEquals(m, 1e-8));
}

TEST(Isvd0Test, DecomposesMidpointOfIntervals) {
  const IntervalMatrix m = SmallTestMatrix(3);
  const IsvdResult result = Isvd0(m, 0);
  const IntervalMatrix recon = result.Reconstruct();
  // Full-rank SVD of the midpoint reconstructs the midpoint.
  EXPECT_TRUE(recon.lower().ApproxEquals(m.Mid(), 1e-8));
}

TEST(Isvd0Test, TimingsArePopulated) {
  const IsvdResult result = Isvd0(SmallTestMatrix(4), 5);
  EXPECT_GE(result.timings.decompose, 0.0);
  EXPECT_GT(result.timings.Total(), 0.0);
}

class IsvdStrategyTest : public ::testing::TestWithParam<int> {};

TEST_P(IsvdStrategyTest, RankIsRespected) {
  const int strategy = GetParam();
  const IntervalMatrix m = SmallTestMatrix(5);
  const IsvdResult result = RunIsvd(strategy, m, 6);
  EXPECT_EQ(result.rank(), 6u);
  EXPECT_EQ(result.u.rows(), m.rows());
  EXPECT_EQ(result.u.cols(), 6u);
  EXPECT_EQ(result.v.rows(), m.cols());
  EXPECT_EQ(result.v.cols(), 6u);
}

TEST_P(IsvdStrategyTest, OutputsAreProperIntervals) {
  const int strategy = GetParam();
  for (const DecompositionTarget target :
       {DecompositionTarget::kA, DecompositionTarget::kB,
        DecompositionTarget::kC}) {
    IsvdOptions options;
    options.target = target;
    const IsvdResult result = RunIsvd(strategy, SmallTestMatrix(6), 5, options);
    EXPECT_TRUE(result.u.IsProper());
    EXPECT_TRUE(result.v.IsProper());
    for (const Interval& s : result.sigma) {
      EXPECT_TRUE(s.IsProper());
      EXPECT_GE(s.lo, -1e-9);  // singular values stay non-negative
    }
  }
}

TEST_P(IsvdStrategyTest, ScalarTargetsHaveDegenerateFactors) {
  const int strategy = GetParam();
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  const IsvdResult b = RunIsvd(strategy, SmallTestMatrix(7), 5, options);
  EXPECT_DOUBLE_EQ(b.u.Span().MaxAbs(), 0.0);
  EXPECT_DOUBLE_EQ(b.v.Span().MaxAbs(), 0.0);

  options.target = DecompositionTarget::kC;
  const IsvdResult c = RunIsvd(strategy, SmallTestMatrix(7), 5, options);
  for (const Interval& s : c.sigma) EXPECT_TRUE(s.IsScalar(1e-12));
}

TEST_P(IsvdStrategyTest, TargetBFactorsHaveUnitColumns) {
  const int strategy = GetParam();
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  const IsvdResult result = RunIsvd(strategy, SmallTestMatrix(8), 5, options);
  for (size_t j = 0; j < result.rank(); ++j) {
    EXPECT_NEAR(Norm2(result.ScalarU().Col(j)), 1.0, 1e-6);
    EXPECT_NEAR(Norm2(result.ScalarV().Col(j)), 1.0, 1e-6);
  }
}

TEST_P(IsvdStrategyTest, DegenerateInputGivesAccurateReconstruction) {
  // With zero-width intervals every strategy reduces to scalar SVD, so a
  // full-rank decomposition reconstructs the input (nearly) exactly.
  const int strategy = GetParam();
  Rng rng(9);
  const Matrix m = RandomMatrix(10, 8, rng, 0.1, 1.0);
  const IntervalMatrix im = IntervalMatrix::FromScalar(m);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  const IsvdResult result = RunIsvd(strategy, im, 0, options);
  const AccuracyReport report =
      DecompositionAccuracy(im, result.Reconstruct());
  EXPECT_GT(report.harmonic_mean, 0.99) << "strategy " << strategy;
}

INSTANTIATE_TEST_SUITE_P(Strategies, IsvdStrategyTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(IsvdTest, Isvd1AlignedFactorsReconstruct) {
  const IntervalMatrix m = SmallTestMatrix(10);
  IsvdOptions options;
  options.target = DecompositionTarget::kA;
  const IsvdResult result = Isvd1(m, 0, options);
  // Full-rank target-a reconstruction should track the endpoints closely
  // (alignment permutes consistently, so U_* Σ_* V_*ᵀ ≈ M_*).
  const AccuracyReport report = DecompositionAccuracy(m, result.Reconstruct());
  EXPECT_GT(report.harmonic_mean, 0.3);
}

TEST(IsvdTest, GramEigReuseMatchesDirectCall) {
  const IntervalMatrix m = SmallTestMatrix(11);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  const GramEig gram = ComputeGramEig(m, 5, options);
  const IsvdResult direct = Isvd3(m, 5, options);
  const IsvdResult reused = Isvd3(m, 5, gram, options);
  EXPECT_TRUE(reused.u.lower().ApproxEquals(direct.u.lower(), 1e-9));
  EXPECT_TRUE(reused.v.upper().ApproxEquals(direct.v.upper(), 1e-9));
  for (size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(reused.sigma[j].lo, direct.sigma[j].lo, 1e-9);
    EXPECT_NEAR(reused.sigma[j].hi, direct.sigma[j].hi, 1e-9);
  }
}

TEST(IsvdTest, GramSideTransposeConsistency) {
  // The kMMt route must produce factor shapes consistent with the input.
  const IntervalMatrix m = SmallTestMatrix(12, 6, 15);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.gram_side = GramSide::kMMt;
  const IsvdResult result = Isvd2(m, 4, options);
  EXPECT_EQ(result.u.rows(), 6u);
  EXPECT_EQ(result.v.rows(), 15u);
  EXPECT_EQ(result.rank(), 4u);
}

TEST(IsvdTest, TruncateGramEigMatchesDirectComputation) {
  const IntervalMatrix m = SmallTestMatrix(21);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  const GramEig full = ComputeGramEig(m, 0, options);
  const GramEig direct = ComputeGramEig(m, 4, options);
  const GramEig sliced = TruncateGramEig(full, 4);
  ASSERT_EQ(sliced.lo.eigenvalues.size(), 4u);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(sliced.lo.eigenvalues[j], direct.lo.eigenvalues[j], 1e-9);
    EXPECT_NEAR(sliced.hi.eigenvalues[j], direct.hi.eigenvalues[j], 1e-9);
  }
  // The downstream decomposition agrees too.
  const IsvdResult a = Isvd4(m, 4, direct, options);
  const IsvdResult b = Isvd4(m, 4, sliced, options);
  EXPECT_TRUE(a.u.lower().ApproxEquals(b.u.lower(), 1e-9));
  for (size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(a.sigma[j].hi, b.sigma[j].hi, 1e-9);
}

TEST(IsvdTest, AutoSidePicksSmallerGram) {
  const IntervalMatrix wide = SmallTestMatrix(13, 5, 20);
  IsvdOptions options;
  options.gram_side = GramSide::kAuto;
  const GramEig gram = ComputeGramEig(wide, 3, options);
  EXPECT_TRUE(gram.transposed);        // 5 < 20: use M Mᵀ
  EXPECT_EQ(gram.gram.rows(), 5u);
}

TEST(IsvdTest, Isvd4RecomputationImprovesVAlignment) {
  // Figure 5 property: after the ISVD4 recomputation step the min/max V
  // factors are more similar than ISVD3's.
  Rng rng(14);
  SyntheticConfig config;
  config.rows = 20;
  config.cols = 30;
  const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
  IsvdOptions options;
  options.target = DecompositionTarget::kA;

  const GramEig gram = ComputeGramEig(m, 10, options);
  const IsvdResult r3 = Isvd3(m, 10, gram, options);
  const IsvdResult r4 = Isvd4(m, 10, gram, options);

  auto mean_abs_cos = [](const IsvdResult& r) {
    const std::vector<double> cosines =
        ColumnwiseCosine(r.v.lower(), r.v.upper());
    double sum = 0.0;
    for (double c : cosines) sum += std::abs(c);
    return sum / static_cast<double>(cosines.size());
  };
  EXPECT_GE(mean_abs_cos(r4), mean_abs_cos(r3) - 1e-9);
}

TEST(IsvdTest, RunIsvdDispatch) {
  const IntervalMatrix m = SmallTestMatrix(15);
  const IsvdResult r0 = RunIsvd(0, m, 3);
  EXPECT_EQ(r0.target, DecompositionTarget::kC);
  const IsvdResult r4 = RunIsvd(4, m, 3);
  EXPECT_EQ(r4.rank(), 3u);
}

TEST(IsvdTest, IsvdNameFormatting) {
  EXPECT_EQ(IsvdName(0, DecompositionTarget::kB), "ISVD0");
  EXPECT_EQ(IsvdName(1, DecompositionTarget::kA), "ISVD1-a");
  EXPECT_EQ(IsvdName(3, DecompositionTarget::kB), "ISVD3-b");
  EXPECT_EQ(IsvdName(4, DecompositionTarget::kC), "ISVD4-c");
}

TEST(IsvdTest, PhaseTimingsAccumulate) {
  PhaseTimings a;
  a.decompose = 1.0;
  a.align = 0.5;
  PhaseTimings b;
  b.decompose = 2.0;
  b.solve = 0.25;
  a += b;
  EXPECT_DOUBLE_EQ(a.decompose, 3.0);
  EXPECT_DOUBLE_EQ(a.align, 0.5);
  EXPECT_DOUBLE_EQ(a.solve, 0.25);
  EXPECT_DOUBLE_EQ(a.Total(), 3.75);
}

TEST(IsvdTest, ReconstructTargetAUsesIntervalAlgebra) {
  const IntervalMatrix m = SmallTestMatrix(16);
  IsvdOptions options;
  options.target = DecompositionTarget::kA;
  const IsvdResult result = Isvd1(m, 4, options);
  const IntervalMatrix recon = result.Reconstruct();
  EXPECT_EQ(recon.rows(), m.rows());
  EXPECT_EQ(recon.cols(), m.cols());
  EXPECT_TRUE(recon.IsProper());  // interval matmul yields proper intervals
}

TEST(IsvdTest, ReconstructTargetCIsScalar) {
  IsvdOptions options;
  options.target = DecompositionTarget::kC;
  const IsvdResult result = Isvd2(SmallTestMatrix(17), 4, options);
  const IntervalMatrix recon = result.Reconstruct();
  EXPECT_DOUBLE_EQ(recon.Span().MaxAbs(), 0.0);
}

}  // namespace
}  // namespace ivmf
