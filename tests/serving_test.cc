// Serving-layer unit tests: per-cell Predict must reproduce the full
// Reconstruct for every strategy x target, TopK must match a brute-force
// ranking, the registry must hand out the latest epoch, the engine's
// drain/refresh/publish step must produce snapshots consistent with a
// from-scratch decomposition of the published matrix, and the sparse
// frozen-view handoff must cache until the next mutation.

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "core/sparse_isvd.h"
#include "serve/serving_engine.h"
#include "serve/snapshot_registry.h"
#include "serve/serving_snapshot.h"
#include "sparse/dynamic_sparse_interval_matrix.h"

namespace ivmf {
namespace {

using CellMap = std::map<std::pair<size_t, size_t>, Interval>;

std::vector<IntervalTriplet> ToTriplets(const CellMap& cells) {
  std::vector<IntervalTriplet> triplets;
  triplets.reserve(cells.size());
  for (const auto& [key, value] : cells) {
    triplets.push_back({key.first, key.second, value});
  }
  return triplets;
}

// Near-low-rank non-negative cells, like the streaming suite uses: spectra
// the decompositions resolve cleanly.
CellMap RandomBaseCells(size_t n, size_t m, size_t k, double fill, Rng& rng) {
  Matrix u(n, k), v(m, k);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < k; ++j) u(i, j) = rng.Uniform(0.1, 1.0);
  for (size_t i = 0; i < m; ++i)
    for (size_t j = 0; j < k; ++j) v(i, j) = rng.Uniform(0.1, 1.0);
  CellMap cells;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (!rng.Bernoulli(fill)) continue;
      double base = 0.0;
      for (size_t c = 0; c < k; ++c) base += u(i, c) * v(j, c);
      cells[{i, j}] = Interval(base, base + rng.Uniform(0.0, 0.2));
    }
  }
  return cells;
}

ServingSnapshot SnapshotOf(const StreamingIsvd& streaming, uint64_t epoch) {
  return ServingSnapshot(epoch, streaming.result(),
                         streaming.matrix_snapshot());
}

// ---------------------------------------------------------------------------
// ServingSnapshot
// ---------------------------------------------------------------------------

TEST(ServingSnapshotTest, PredictMatchesReconstructEveryStrategyAndTarget) {
  Rng rng(11);
  const size_t n = 20, m = 12, rank = 3;
  const CellMap cells = RandomBaseCells(n, m, 3, 0.5, rng);
  const SparseIntervalMatrix base =
      SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(cells));

  for (int strategy = 0; strategy <= 4; ++strategy) {
    for (const DecompositionTarget target :
         {DecompositionTarget::kA, DecompositionTarget::kB,
          DecompositionTarget::kC}) {
      StreamingIsvdOptions options;
      options.isvd.target = target;
      StreamingIsvd streaming(strategy, rank, base, options);
      const ServingSnapshot snapshot = SnapshotOf(streaming, 1);
      const IntervalMatrix recon = streaming.result().Reconstruct();
      SCOPED_TRACE(::testing::Message()
                   << "strategy " << strategy << " target "
                   << static_cast<int>(target));
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < m; ++j) {
          const Interval predicted = snapshot.Predict(i, j);
          const Interval expected = recon.At(i, j);
          EXPECT_NEAR(predicted.lo, expected.lo, 1e-10)
              << "cell (" << i << ", " << j << ")";
          EXPECT_NEAR(predicted.hi, expected.hi, 1e-10)
              << "cell (" << i << ", " << j << ")";
        }
      }
    }
  }
}

TEST(ServingSnapshotTest, ObservedReturnsFrozenMatrixCells) {
  Rng rng(12);
  const size_t n = 15, m = 10;
  const CellMap cells = RandomBaseCells(n, m, 2, 0.4, rng);
  StreamingIsvd streaming(
      2, 2, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(cells)));
  const ServingSnapshot snapshot = SnapshotOf(streaming, 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const auto it = cells.find({i, j});
      const Interval expected =
          it == cells.end() ? Interval() : it->second;
      EXPECT_EQ(snapshot.Observed(i, j), expected);
    }
  }
}

TEST(ServingSnapshotTest, TopKMatchesBruteForceMidpointRanking) {
  Rng rng(13);
  const size_t n = 18, m = 14, k = 5;
  const CellMap cells = RandomBaseCells(n, m, 3, 0.5, rng);
  StreamingIsvd streaming(
      3, 3, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(cells)));
  const ServingSnapshot snapshot = SnapshotOf(streaming, 1);

  for (size_t user = 0; user < n; ++user) {
    // Brute force: all items by (midpoint desc, item asc).
    std::vector<std::pair<double, size_t>> expected;
    for (size_t j = 0; j < m; ++j) {
      expected.emplace_back(-snapshot.Predict(user, j).Mid(), j);
    }
    std::sort(expected.begin(), expected.end());

    const std::vector<ServingSnapshot::ScoredItem> top =
        snapshot.TopK(user, k);
    ASSERT_EQ(top.size(), k);
    for (size_t r = 0; r < k; ++r) {
      EXPECT_EQ(top[r].item, expected[r].second) << "user " << user
                                                 << " rank " << r;
      EXPECT_DOUBLE_EQ(top[r].score.Mid(), -expected[r].first);
    }
  }
}

TEST(ServingSnapshotTest, TopKExcludesObservedItemsWhenAsked) {
  Rng rng(14);
  const size_t n = 12, m = 8;
  const CellMap cells = RandomBaseCells(n, m, 2, 0.6, rng);
  StreamingIsvd streaming(
      2, 2, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(cells)));
  const ServingSnapshot snapshot = SnapshotOf(streaming, 1);

  for (size_t user = 0; user < n; ++user) {
    const std::vector<ServingSnapshot::ScoredItem> top =
        snapshot.TopK(user, m, /*exclude_observed=*/true);
    size_t observed = 0;
    for (size_t j = 0; j < m; ++j) {
      if (cells.count({user, j}) > 0) ++observed;
    }
    EXPECT_EQ(top.size(), m - observed);
    for (const ServingSnapshot::ScoredItem& s : top) {
      EXPECT_EQ(cells.count({user, s.item}), 0u)
          << "served an already-rated item";
    }
  }
}

TEST(ServingSnapshotTest, TopKClampsToCandidateCount) {
  Rng rng(15);
  const CellMap cells = RandomBaseCells(6, 4, 2, 0.7, rng);
  StreamingIsvd streaming(
      2, 2, SparseIntervalMatrix::FromTriplets(6, 4, ToTriplets(cells)));
  const ServingSnapshot snapshot = SnapshotOf(streaming, 1);
  EXPECT_EQ(snapshot.TopK(0, 100).size(), 4u);
}

// ---------------------------------------------------------------------------
// SnapshotRegistry
// ---------------------------------------------------------------------------

TEST(SnapshotRegistryTest, AcquireReturnsLatestPublished) {
  Rng rng(16);
  const CellMap cells = RandomBaseCells(8, 6, 2, 0.6, rng);
  StreamingIsvd streaming(
      2, 2, SparseIntervalMatrix::FromTriplets(8, 6, ToTriplets(cells)));

  SnapshotRegistry registry;
  EXPECT_EQ(registry.Acquire(), nullptr);
  EXPECT_EQ(registry.published(), 0u);

  auto first = std::make_shared<const ServingSnapshot>(
      1, streaming.result(), streaming.matrix_snapshot());
  registry.Publish(first);
  EXPECT_EQ(registry.Acquire(), first);
  EXPECT_EQ(registry.published(), 1u);

  auto second = std::make_shared<const ServingSnapshot>(
      2, streaming.result(), streaming.matrix_snapshot());
  registry.Publish(second);
  EXPECT_EQ(registry.Acquire(), second);
  EXPECT_EQ(registry.Acquire()->epoch(), 2u);
  EXPECT_EQ(registry.published(), 2u);

  // An old acquire keeps its epoch alive independently of publication.
  EXPECT_EQ(first->epoch(), 1u);
}

// ---------------------------------------------------------------------------
// ServingEngine
// ---------------------------------------------------------------------------

TEST(ServingEngineTest, ConstructionPublishesEpochOne) {
  Rng rng(17);
  const CellMap cells = RandomBaseCells(10, 8, 2, 0.5, rng);
  ServingEngine engine(
      2, 2, SparseIntervalMatrix::FromTriplets(10, 8, ToTriplets(cells)));
  const auto snapshot = engine.Acquire();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->epoch(), 1u);
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_EQ(engine.registry().published(), 1u);
}

TEST(ServingEngineTest, StepWithoutWorkKeepsTheEpoch) {
  Rng rng(18);
  const CellMap cells = RandomBaseCells(10, 8, 2, 0.5, rng);
  ServingEngine engine(
      2, 2, SparseIntervalMatrix::FromTriplets(10, 8, ToTriplets(cells)));
  const auto before = engine.Acquire();
  EXPECT_EQ(engine.Step(), 0u);
  EXPECT_EQ(engine.Acquire(), before);
  EXPECT_EQ(engine.epoch(), 1u);
}

TEST(ServingEngineTest, StepPublishesConsistentSnapshot) {
  Rng rng(19);
  const size_t n = 30, m = 20, rank = 3;
  CellMap cells = RandomBaseCells(n, m, 3, 0.4, rng);
  ServingEngine engine(
      2, rank, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(cells)));

  // Two submitted batches coalesce into one refresh.
  engine.Submit({{0, 0, Interval(2.0, 2.5)}, {5, 5, Interval(1.0, 1.5)}});
  engine.Submit({{0, 0, Interval(3.0, 3.5)}});  // revision: last write wins
  EXPECT_EQ(engine.pending_cells(), 3u);
  EXPECT_EQ(engine.Step(), 3u);
  EXPECT_EQ(engine.pending_cells(), 0u);
  EXPECT_EQ(engine.cells_applied(), 3u);

  const auto snapshot = engine.Acquire();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->epoch(), 2u);
  EXPECT_EQ(snapshot->Observed(0, 0), Interval(3.0, 3.5));
  EXPECT_EQ(snapshot->Observed(5, 5), Interval(1.0, 1.5));

  // The published factors decompose the published matrix: a from-scratch
  // cold run of the same solver family on the frozen view agrees to the
  // streaming suite's tolerance.
  cells[{0, 0}] = Interval(3.0, 3.5);
  cells[{5, 5}] = Interval(1.0, 1.5);
  StreamingIsvdOptions options;
  const IsvdResult from_scratch =
      RunIsvd(2, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(cells)),
              rank, options.isvd);
  ASSERT_EQ(snapshot->rank(), from_scratch.rank());
  for (size_t j = 0; j < from_scratch.rank(); ++j) {
    EXPECT_NEAR(snapshot->result().sigma[j].lo, from_scratch.sigma[j].lo,
                1e-8);
    EXPECT_NEAR(snapshot->result().sigma[j].hi, from_scratch.sigma[j].hi,
                1e-8);
  }
  const IntervalMatrix recon = from_scratch.Reconstruct();
  for (size_t i = 0; i < n; i += 7) {
    for (size_t j = 0; j < m; j += 5) {
      const Interval predicted = snapshot->Predict(i, j);
      EXPECT_NEAR(predicted.lo, recon.At(i, j).lo, 1e-8);
      EXPECT_NEAR(predicted.hi, recon.At(i, j).hi, 1e-8);
    }
  }
}

// With shard_rows set, every published snapshot carries the frozen
// block-row sharded view of its matrix — shape-checked against the matrix
// view and cell-consistent with Observed across epochs.
TEST(ServingEngineTest, ShardedViewRidesThePublishedSnapshot) {
  Rng rng(23);
  const size_t n = 30, m = 20;
  CellMap cells = RandomBaseCells(n, m, 3, 0.4, rng);
  ServingEngineOptions options;
  options.streaming.shard_rows = 8;
  ServingEngine engine(
      3, 3, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(cells)),
      options);

  auto snapshot = engine.Acquire();
  ASSERT_NE(snapshot, nullptr);
  ASSERT_TRUE(snapshot->has_sharded());
  EXPECT_EQ(snapshot->shared_sharded()->rows(), n);
  EXPECT_EQ(snapshot->shared_sharded()->cols(), m);
  EXPECT_EQ(snapshot->shared_sharded()->num_shards(), 4u);

  engine.Submit({{0, 0, Interval(2.0, 2.5)}});
  EXPECT_EQ(engine.Step(), 1u);
  snapshot = engine.Acquire();
  ASSERT_TRUE(snapshot->has_sharded());
  const Interval sharded_cell = snapshot->shared_sharded()->At(0, 0);
  const Interval observed = snapshot->Observed(0, 0);
  EXPECT_EQ(sharded_cell.lo, observed.lo);
  EXPECT_EQ(sharded_cell.hi, observed.hi);
}

TEST(ServingEngineTest, OnPublishSeesEveryEpochInOrder) {
  Rng rng(20);
  const CellMap cells = RandomBaseCells(12, 8, 2, 0.5, rng);
  std::vector<uint64_t> epochs;
  ServingEngineOptions options;
  options.on_publish =
      [&epochs](const std::shared_ptr<const ServingSnapshot>& s) {
        epochs.push_back(s->epoch());
      };
  ServingEngine engine(
      2, 2, SparseIntervalMatrix::FromTriplets(12, 8, ToTriplets(cells)),
      options);
  engine.Submit({{1, 1, Interval(2.0, 2.0)}});
  engine.Step();
  engine.Submit({{2, 2, Interval(3.0, 3.0)}});
  engine.Step();
  EXPECT_EQ(epochs, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(ServingEngineTest, BackgroundWriterPublishesSubmittedWork) {
  Rng rng(21);
  const CellMap cells = RandomBaseCells(15, 10, 2, 0.5, rng);
  ServingEngine engine(
      2, 2, SparseIntervalMatrix::FromTriplets(15, 10, ToTriplets(cells)));
  engine.StartWriter();
  EXPECT_TRUE(engine.writer_running());
  engine.Submit({{3, 3, Interval(4.0, 4.5)}});
  engine.StopWriter();  // flushes pending work before returning
  EXPECT_FALSE(engine.writer_running());
  const auto snapshot = engine.Acquire();
  EXPECT_GE(snapshot->epoch(), 2u);
  EXPECT_EQ(snapshot->Observed(3, 3), Interval(4.0, 4.5));
  EXPECT_EQ(engine.pending_cells(), 0u);
}

// ---------------------------------------------------------------------------
// DynamicSparseIntervalMatrix::SharedSnapshot (the frozen-view handoff)
// ---------------------------------------------------------------------------

TEST(SharedSnapshotTest, CachesUntilMutation) {
  DynamicSparseIntervalMatrix m(5, 4);
  m.Upsert(0, 1, Interval(1.0, 2.0));
  m.Upsert(3, 2, Interval(2.0, 3.0));

  const auto first = m.SharedSnapshot();
  const auto again = m.SharedSnapshot();
  EXPECT_EQ(first.get(), again.get());  // same epoch: no new merge

  m.Upsert(4, 0, Interval(5.0, 5.0));
  const auto after = m.SharedSnapshot();
  EXPECT_NE(after.get(), first.get());

  // The old view is frozen at its epoch; the new one sees the mutation.
  EXPECT_EQ(first->At(4, 0), Interval());
  EXPECT_EQ(after->At(4, 0), Interval(5.0, 5.0));
  EXPECT_EQ(after->nnz(), 3u);
}

TEST(SharedSnapshotTest, CompactionKeepsTheFrozenViewValid) {
  DynamicSparseIntervalMatrix m(4, 4);
  m.Upsert(1, 1, Interval(1.0, 1.0));
  m.Upsert(2, 3, Interval(2.0, 2.0));
  const auto view = m.SharedSnapshot();

  // Compaction folds the log without changing content: the cached view
  // stays current (pointer-equal on re-acquire) and the base adopts it.
  m.Compact();
  EXPECT_EQ(m.delta_size(), 0u);
  EXPECT_EQ(m.base_nnz(), 2u);
  EXPECT_EQ(m.SharedSnapshot().get(), view.get());
  EXPECT_EQ(m.At(1, 1), Interval(1.0, 1.0));
  EXPECT_EQ(m.At(2, 3), Interval(2.0, 2.0));
}

TEST(SharedSnapshotTest, StreamingExportsTheDecomposedMatrix) {
  Rng rng(22);
  const size_t n = 20, m = 12;
  CellMap cells = RandomBaseCells(n, m, 2, 0.4, rng);
  StreamingIsvd streaming(
      2, 2, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(cells)));
  ASSERT_NE(streaming.matrix_snapshot(), nullptr);
  EXPECT_EQ(streaming.refresh_count(), 1u);

  // The exported view stays paired with result() across later ApplyBatch
  // calls — it reflects the matrix at the last refresh, not the log.
  const auto at_refresh = streaming.matrix_snapshot();
  streaming.ApplyBatch({{0, 0, Interval(9.0, 9.0)}});
  EXPECT_EQ(streaming.matrix_snapshot().get(), at_refresh.get());
  EXPECT_EQ(streaming.matrix_snapshot()->At(0, 0).hi, at_refresh->At(0, 0).hi);

  streaming.Refresh();
  EXPECT_EQ(streaming.refresh_count(), 2u);
  EXPECT_NE(streaming.matrix_snapshot().get(), at_refresh.get());
  EXPECT_EQ(streaming.matrix_snapshot()->At(0, 0), Interval(9.0, 9.0));
}

}  // namespace
}  // namespace ivmf
