#include "linalg/matrix.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomMatrix;

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ConstructorFillsValue) {
  Matrix m(2, 3, 1.5);
  for (size_t i = 0; i < 2; ++i)
    for (size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 1.5);
}

TEST(MatrixTest, FromRowsBuildsExpectedLayout) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(MatrixTest, IdentityHasOnesOnDiagonal) {
  const Matrix id = Matrix::Identity(4);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(MatrixTest, DiagonalPlacesEntries) {
  const Matrix d = Matrix::Diagonal({1, 2, 3});
  EXPECT_DOUBLE_EQ(d(0, 0), 1);
  EXPECT_DOUBLE_EQ(d(1, 1), 2);
  EXPECT_DOUBLE_EQ(d(2, 2), 3);
  EXPECT_DOUBLE_EQ(d(0, 1), 0);
}

TEST(MatrixTest, RowAndColExtraction) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.Row(1), (std::vector<double>{3, 4}));
  EXPECT_EQ(m.Col(0), (std::vector<double>{1, 3, 5}));
}

TEST(MatrixTest, SetRowAndSetCol) {
  Matrix m(2, 2);
  m.SetRow(0, {1, 2});
  m.SetCol(1, {7, 8});
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(0, 1), 7);
  EXPECT_DOUBLE_EQ(m(1, 1), 8);
}

TEST(MatrixTest, ColBlockExtractsContiguousColumns) {
  const Matrix m = Matrix::FromRows({{1, 2, 3, 4}, {5, 6, 7, 8}});
  const Matrix block = m.ColBlock(1, 2);
  EXPECT_EQ(block.rows(), 2u);
  EXPECT_EQ(block.cols(), 2u);
  EXPECT_DOUBLE_EQ(block(0, 0), 2);
  EXPECT_DOUBLE_EQ(block(1, 1), 7);
}

TEST(MatrixTest, AdditionAndSubtraction) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix sum = a + b;
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6);
  EXPECT_DOUBLE_EQ(sum(1, 1), 12);
  EXPECT_DOUBLE_EQ(diff(0, 0), 4);
  EXPECT_DOUBLE_EQ(diff(1, 1), 4);
}

TEST(MatrixTest, ScalarMultiplication) {
  const Matrix a = Matrix::FromRows({{1, -2}});
  const Matrix b = 2.0 * a;
  const Matrix c = a * 2.0;
  EXPECT_DOUBLE_EQ(b(0, 1), -4);
  EXPECT_TRUE(b == c);
}

TEST(MatrixTest, MatrixProductMatchesHandComputation) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 19);
  EXPECT_DOUBLE_EQ(p(0, 1), 22);
  EXPECT_DOUBLE_EQ(p(1, 0), 43);
  EXPECT_DOUBLE_EQ(p(1, 1), 50);
}

TEST(MatrixTest, ProductWithIdentityIsIdentityOperation) {
  Rng rng(3);
  const Matrix a = RandomMatrix(5, 7, rng);
  EXPECT_TRUE((Matrix::Identity(5) * a).ApproxEquals(a, 1e-14));
  EXPECT_TRUE((a * Matrix::Identity(7)).ApproxEquals(a, 1e-14));
}

TEST(MatrixTest, ProductIsAssociative) {
  Rng rng(4);
  const Matrix a = RandomMatrix(4, 5, rng);
  const Matrix b = RandomMatrix(5, 6, rng);
  const Matrix c = RandomMatrix(6, 3, rng);
  EXPECT_TRUE(((a * b) * c).ApproxEquals(a * (b * c), 1e-12));
}

TEST(MatrixTest, TransposeRoundTrips) {
  Rng rng(5);
  const Matrix a = RandomMatrix(3, 8, rng);
  EXPECT_TRUE(a.Transpose().Transpose() == a);
}

TEST(MatrixTest, TransposeOfProductReversesOrder) {
  Rng rng(6);
  const Matrix a = RandomMatrix(4, 5, rng);
  const Matrix b = RandomMatrix(5, 3, rng);
  EXPECT_TRUE(
      (a * b).Transpose().ApproxEquals(b.Transpose() * a.Transpose(), 1e-13));
}

TEST(MatrixTest, CwiseMultiply) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{2, 0}, {-1, 5}});
  const Matrix p = a.CwiseMultiply(b);
  EXPECT_DOUBLE_EQ(p(0, 0), 2);
  EXPECT_DOUBLE_EQ(p(0, 1), 0);
  EXPECT_DOUBLE_EQ(p(1, 0), -3);
  EXPECT_DOUBLE_EQ(p(1, 1), 20);
}

TEST(MatrixTest, CwiseQuotientGuardsZeroDenominator) {
  const Matrix a = Matrix::FromRows({{4, 9}});
  const Matrix b = Matrix::FromRows({{2, 0}});
  const Matrix q = a.CwiseQuotient(b);
  EXPECT_DOUBLE_EQ(q(0, 0), 2);
  EXPECT_DOUBLE_EQ(q(0, 1), 0.0);  // guarded division
}

TEST(MatrixTest, FrobeniusNorm) {
  const Matrix m = Matrix::FromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, MaxAbsAndSum) {
  const Matrix m = Matrix::FromRows({{1, -7}, {3, 2}});
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 7.0);
  EXPECT_DOUBLE_EQ(m.Sum(), -1.0);
}

TEST(MatrixTest, DiagonalEntriesOfRectangular) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.DiagonalEntries(), (std::vector<double>{1, 5}));
}

TEST(MatrixTest, ApproxEqualsRespectsTolerance) {
  const Matrix a = Matrix::FromRows({{1.0}});
  const Matrix b = Matrix::FromRows({{1.0 + 1e-9}});
  EXPECT_TRUE(a.ApproxEquals(b, 1e-8));
  EXPECT_FALSE(a.ApproxEquals(b, 1e-10));
}

TEST(MatrixTest, ApproxEqualsRejectsShapeMismatch) {
  EXPECT_FALSE(Matrix(2, 2).ApproxEquals(Matrix(2, 3), 1.0));
}

TEST(VectorOpsTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
}

TEST(VectorOpsTest, Norm2) {
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
}

TEST(VectorOpsTest, CosineSimilarityOfParallelVectors) {
  EXPECT_NEAR(CosineSimilarity({1, 2}, {2, 4}), 1.0, 1e-12);
}

TEST(VectorOpsTest, CosineSimilarityOfOrthogonalVectors) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
}

TEST(VectorOpsTest, CosineSimilarityOfOppositeVectors) {
  EXPECT_NEAR(CosineSimilarity({1, 1}, {-1, -1}), -1.0, 1e-12);
}

TEST(VectorOpsTest, CosineSimilarityOfZeroVectorIsZero) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 2}), 0.0);
}

// Parameterized sweep: (AB)ᵀ = BᵀAᵀ and Frobenius submultiplicativity over
// a range of shapes.
class MatrixShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MatrixShapeTest, ProductDimensionsAndNormBound) {
  const auto [n, m] = GetParam();
  Rng rng(1000 + n * 31 + m);
  const Matrix a = RandomMatrix(n, m, rng);
  const Matrix b = RandomMatrix(m, n, rng);
  const Matrix p = a * b;
  EXPECT_EQ(p.rows(), static_cast<size_t>(n));
  EXPECT_EQ(p.cols(), static_cast<size_t>(n));
  // ||AB||_F <= ||A||_F ||B||_F.
  EXPECT_LE(p.FrobeniusNorm(),
            a.FrobeniusNorm() * b.FrobeniusNorm() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatrixShapeTest,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(1, 5),
                      std::make_pair(5, 1), std::make_pair(3, 7),
                      std::make_pair(7, 3), std::make_pair(10, 10),
                      std::make_pair(17, 23)));

}  // namespace
}  // namespace ivmf
