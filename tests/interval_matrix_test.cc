#include "interval/interval_matrix.h"

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomIntervalMatrix;
using ::ivmf::testing::RandomMatrix;

TEST(IntervalMatrixTest, FromScalarIsDegenerate) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  const IntervalMatrix im = IntervalMatrix::FromScalar(m);
  EXPECT_TRUE(im.lower() == m);
  EXPECT_TRUE(im.upper() == m);
  EXPECT_TRUE(im.IsProper());
  EXPECT_DOUBLE_EQ(im.Span().MaxAbs(), 0.0);
}

TEST(IntervalMatrixTest, AtAndSetRoundTrip) {
  IntervalMatrix m(2, 2);
  m.Set(0, 1, Interval(-1, 2));
  EXPECT_EQ(m.At(0, 1), Interval(-1, 2));
  EXPECT_EQ(m.At(0, 0), Interval(0, 0));
}

TEST(IntervalMatrixTest, MidIsAverage) {
  IntervalMatrix m(1, 1);
  m.Set(0, 0, Interval(2, 6));
  EXPECT_DOUBLE_EQ(m.Mid()(0, 0), 4.0);
}

TEST(IntervalMatrixTest, SpanMatrix) {
  IntervalMatrix m(1, 2);
  m.Set(0, 0, Interval(1, 4));
  m.Set(0, 1, Interval(-2, -2));
  EXPECT_DOUBLE_EQ(m.Span()(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.Span()(0, 1), 0.0);
}

TEST(IntervalMatrixTest, IsProperDetectsMisorder) {
  IntervalMatrix m(2, 2);
  EXPECT_TRUE(m.IsProper());
  m.mutable_lower()(1, 1) = 5.0;
  m.mutable_upper()(1, 1) = 2.0;
  EXPECT_FALSE(m.IsProper());
  EXPECT_DOUBLE_EQ(m.MaxMisorder(), 3.0);
}

TEST(IntervalMatrixTest, AverageReplacedRepairsMisorder) {
  IntervalMatrix m(1, 2);
  m.mutable_lower()(0, 0) = 5.0;
  m.mutable_upper()(0, 0) = 1.0;   // misordered -> avg 3
  m.Set(0, 1, Interval(1.0, 2.0)); // proper, untouched
  const IntervalMatrix fixed = m.AverageReplaced();
  EXPECT_TRUE(fixed.IsProper());
  EXPECT_EQ(fixed.At(0, 0), Interval(3.0, 3.0));
  EXPECT_EQ(fixed.At(0, 1), Interval(1.0, 2.0));
}

TEST(IntervalMatrixTest, TransposeSwapsIndices) {
  IntervalMatrix m(2, 3);
  m.Set(0, 2, Interval(1, 2));
  const IntervalMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.At(2, 0), Interval(1, 2));
}

TEST(IntervalMatrixTest, AdditionIsElementwiseSunaga) {
  IntervalMatrix a(1, 1), b(1, 1);
  a.Set(0, 0, Interval(1, 2));
  b.Set(0, 0, Interval(10, 20));
  EXPECT_EQ((a + b).At(0, 0), Interval(11, 22));
  EXPECT_EQ((a - b).At(0, 0), Interval(-19, -8));
}

TEST(IntervalMatrixTest, ContainsMatrix) {
  IntervalMatrix m(1, 2);
  m.Set(0, 0, Interval(0, 1));
  m.Set(0, 1, Interval(-1, 1));
  EXPECT_TRUE(m.ContainsMatrix(Matrix::FromRows({{0.5, 0.0}})));
  EXPECT_FALSE(m.ContainsMatrix(Matrix::FromRows({{1.5, 0.0}})));
}

TEST(IntervalMatMulTest, DegenerateMatchesScalarProduct) {
  Rng rng(1);
  const Matrix a = RandomMatrix(4, 5, rng);
  const Matrix b = RandomMatrix(5, 3, rng);
  const IntervalMatrix p = IntervalMatMul(IntervalMatrix::FromScalar(a),
                                          IntervalMatrix::FromScalar(b));
  EXPECT_TRUE(p.lower().ApproxEquals(a * b, 1e-12));
  EXPECT_TRUE(p.upper().ApproxEquals(a * b, 1e-12));
}

TEST(IntervalMatMulTest, HandKnownExample) {
  // [1,2] * [3,4] + [0,1] * [-1,1] : algorithm-1 endpoints are computed on
  // the four summed products.
  IntervalMatrix a(1, 2), b(2, 1);
  a.Set(0, 0, Interval(1, 2));
  a.Set(0, 1, Interval(0, 1));
  b.Set(0, 0, Interval(3, 4));
  b.Set(1, 0, Interval(-1, 1));
  // T1 = 1*3 + 0*(-1) = 3 ; T2 = 1*4 + 0*1 = 4
  // T3 = 2*3 + 1*(-1) = 5 ; T4 = 2*4 + 1*1 = 9  -> [3, 9]
  const IntervalMatrix p = IntervalMatMul(a, b);
  EXPECT_DOUBLE_EQ(p.At(0, 0).lo, 3.0);
  EXPECT_DOUBLE_EQ(p.At(0, 0).hi, 9.0);
}

TEST(IntervalMatMulTest, ResultIsAlwaysProper) {
  Rng rng(2);
  const IntervalMatrix a = RandomIntervalMatrix(6, 4, rng, -1.0, 1.0, 0.8);
  const IntervalMatrix b = RandomIntervalMatrix(4, 5, rng, -1.0, 1.0, 0.8);
  EXPECT_TRUE(IntervalMatMul(a, b).IsProper());
}

TEST(IntervalMatMulTest, ExactHullContainsAlgorithmOne) {
  // Algorithm 1 takes min/max after summation, the Sunaga hull before —
  // so the hull always contains the Algorithm-1 interval.
  Rng rng(3);
  const IntervalMatrix a = RandomIntervalMatrix(5, 4, rng, -1.0, 1.0, 1.0);
  const IntervalMatrix b = RandomIntervalMatrix(4, 3, rng, -1.0, 1.0, 1.0);
  const IntervalMatrix paper = IntervalMatMul(a, b);
  const IntervalMatrix exact = IntervalMatMulExact(a, b);
  for (size_t i = 0; i < paper.rows(); ++i) {
    for (size_t j = 0; j < paper.cols(); ++j) {
      EXPECT_LE(exact.At(i, j).lo, paper.At(i, j).lo + 1e-12);
      EXPECT_GE(exact.At(i, j).hi, paper.At(i, j).hi - 1e-12);
    }
  }
}

TEST(IntervalMatMulTest, VariantsCoincideForNonNegativeOperands) {
  Rng rng(4);
  const IntervalMatrix a = RandomIntervalMatrix(5, 4, rng, 0.0, 1.0, 0.5);
  const IntervalMatrix b = RandomIntervalMatrix(4, 3, rng, 0.0, 1.0, 0.5);
  const IntervalMatrix paper = IntervalMatMul(a, b);
  const IntervalMatrix exact = IntervalMatMulExact(a, b);
  EXPECT_TRUE(paper.ApproxEquals(exact, 1e-12));
}

TEST(IntervalMatMulTest, ContainsScalarSelections) {
  // Any scalar matrix selected inside A and B multiplies into the exact
  // hull product.
  Rng rng(5);
  const IntervalMatrix a = RandomIntervalMatrix(4, 4, rng, -1.0, 1.0, 0.6);
  const IntervalMatrix b = RandomIntervalMatrix(4, 4, rng, -1.0, 1.0, 0.6);
  const IntervalMatrix exact = IntervalMatMulExact(a, b);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix sa(4, 4), sb(4, 4);
    for (size_t i = 0; i < 4; ++i) {
      for (size_t j = 0; j < 4; ++j) {
        sa(i, j) = rng.Uniform(a.At(i, j).lo, a.At(i, j).hi);
        sb(i, j) = rng.Uniform(b.At(i, j).lo, b.At(i, j).hi);
      }
    }
    EXPECT_TRUE(exact.ContainsMatrix(sa * sb, 1e-9));
  }
}

TEST(IntervalMatMulTest, GramProductIsSymmetric) {
  Rng rng(6);
  const IntervalMatrix m = RandomIntervalMatrix(6, 4, rng, -1.0, 1.0, 0.7);
  const IntervalMatrix gram = IntervalMatMul(m.Transpose(), m);
  EXPECT_TRUE(gram.lower().ApproxEquals(gram.lower().Transpose(), 1e-12));
  EXPECT_TRUE(gram.upper().ApproxEquals(gram.upper().Transpose(), 1e-12));
}

TEST(IntervalMatMulTest, MixedScalarOverloads) {
  Rng rng(7);
  const Matrix s = RandomMatrix(3, 4, rng);
  const IntervalMatrix b = RandomIntervalMatrix(4, 2, rng);
  const IntervalMatrix left = IntervalMatMul(s, b);
  const IntervalMatrix ref = IntervalMatMul(IntervalMatrix::FromScalar(s), b);
  EXPECT_TRUE(left.ApproxEquals(ref, 1e-12));
}

}  // namespace
}  // namespace ivmf
