// Structured-logging tests: records render as valid single-line JSON with
// escaped fields, the ring overwrites oldest and counts what it dropped,
// the /logz payload (LogRing::ToJson) parses, and the level gate drops
// below-minimum records before they reach any sink.

#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "obs/log.h"
#include "test_util.h"

namespace ivmf::obs {
namespace {

// The global minimum level and stderr sink are process state; every test
// that touches them restores the defaults on exit.
class SilencedLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogStderr(false);
    SetMinLogLevel(LogLevel::kDebug);
    LogRing::Global().Clear();
  }
  void TearDown() override {
    SetMinLogLevel(LogLevel::kInfo);
    SetLogStderr(true);
  }
};

TEST(LogLevelTest, NamesRoundTrip) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                               LogLevel::kWarn, LogLevel::kError}) {
    LogLevel parsed = LogLevel::kDebug;
    ASSERT_TRUE(ParseLogLevel(LogLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  LogLevel parsed = LogLevel::kDebug;
  EXPECT_FALSE(ParseLogLevel("verbose", &parsed));
}

TEST(LogRecordTest, ToJsonIsValidAndEscapes) {
  LogRecord record;
  record.ts_seconds = 1.25;
  record.level = LogLevel::kWarn;
  record.component = "serve";
  record.message = "quote \" backslash \\ newline \n done";
  record.fields.push_back({"path", std::string("/tmp/a\"b")});
  record.fields.push_back({"count", 42});
  record.fields.push_back({"ratio", 0.5});
  record.fields.push_back({"ok", true});

  const std::string json = record.ToJson();
  std::string error;
  EXPECT_TRUE(ivmf::testing::ValidateJson(json, &error)) << error << "\n"
                                                         << json;
  // One line (the stderr sink appends exactly one '\n' per record).
  EXPECT_EQ(json.find('\n'), std::string::npos) << json;
  EXPECT_NE(json.find("\"level\":\"warn\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos) << json;
}

TEST(LogRecordTest, NonFiniteDoubleStaysValidJson) {
  LogRecord record;
  record.component = "t";
  record.message = "m";
  record.fields.push_back({"bad", 0.0 / 0.0});
  std::string error;
  EXPECT_TRUE(ivmf::testing::ValidateJson(record.ToJson(), &error))
      << error << "\n"
      << record.ToJson();
}

TEST(LogRingTest, WrapsAroundAndCountsDropped) {
  LogRing ring(4);
  for (int i = 0; i < 10; ++i) {
    LogRecord record;
    record.component = "t";
    record.message = "m" + std::to_string(i);
    ring.Record(std::move(record));
  }
  const std::vector<LogRecord> records = ring.Records();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first, holding the most recent four.
  EXPECT_EQ(records.front().message, "m6");
  EXPECT_EQ(records.back().message, "m9");
  EXPECT_EQ(ring.dropped(), 6u);

  ring.Clear();
  EXPECT_TRUE(ring.Records().empty());
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(LogRingTest, ToJsonParsesEvenPastWraparound) {
  LogRing ring(3);
  for (int i = 0; i < 8; ++i) {
    LogRecord record;
    record.component = "comp\"quoted";
    record.message = "msg";
    record.fields.push_back({"i", i});
    ring.Record(std::move(record));
  }
  const std::string json = ring.ToJson();
  std::string error;
  EXPECT_TRUE(ivmf::testing::ValidateJson(json, &error)) << error << "\n"
                                                         << json;
  EXPECT_NE(json.find("\"dropped\":5"), std::string::npos) << json;
}

TEST_F(SilencedLogTest, BelowMinimumLevelIsDropped) {
  SetMinLogLevel(LogLevel::kWarn);
  LogInfo("test", "should not be recorded");
  EXPECT_TRUE(LogRing::Global().Records().empty());
  LogWarn("test", "should be recorded");
  ASSERT_EQ(LogRing::Global().Records().size(), 1u);
  EXPECT_EQ(LogRing::Global().Records()[0].message, "should be recorded");
}

TEST_F(SilencedLogTest, LogReachesGlobalRingWithFields) {
  LogError("unit", "boom", {{"path", std::string("/x")}, {"attempt", 3}});
  const std::vector<LogRecord> records = LogRing::Global().Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].level, LogLevel::kError);
  EXPECT_EQ(records[0].component, "unit");
  ASSERT_EQ(records[0].fields.size(), 2u);
  EXPECT_EQ(records[0].fields[0].key, "path");
  EXPECT_TRUE(records[0].fields[0].quoted);
  EXPECT_EQ(records[0].fields[1].value, "3");
  EXPECT_FALSE(records[0].fields[1].quoted);
}

}  // namespace
}  // namespace ivmf::obs
