// HTTP exporter tests: routing via Handle(), then the real server —
// ephemeral-port startup, a full GET round-trip per endpoint over a real
// socket (JSON endpoints validated with the recursive-descent parser, the
// Prometheus endpoint carrying # TYPE lines), error statuses for unknown
// paths / non-GET / malformed requests, watchdog-backed /healthz flipping
// to 503, and concurrent scrapes racing metric writers (the sanitize-thread
// CI job runs this binary under TSan).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "obs/http_exporter.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "test_util.h"

namespace ivmf::obs {
namespace {

// Blocking one-shot HTTP GET against loopback; returns the raw response
// (status line through body) or "" on connect failure.
std::string RawGet(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;  // Connection: close terminates the response
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return RawGet(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

int StatusOf(const std::string& response) {
  if (response.rfind("HTTP/1.1 ", 0) != 0) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

class HttpExporterTest : public ::testing::Test {
 protected:
  void SetUp() override { SetLogStderr(false); }
  void TearDown() override { SetLogStderr(true); }
};

TEST_F(HttpExporterTest, HandleRoutes) {
  const HttpExporter exporter;  // never started: Handle needs no socket
  EXPECT_EQ(exporter.Handle("GET", "/metrics").status, 200);
  EXPECT_EQ(exporter.Handle("GET", "/metrics.json").status, 200);
  EXPECT_EQ(exporter.Handle("GET", "/tracez").status, 200);
  EXPECT_EQ(exporter.Handle("GET", "/logz").status, 200);
  EXPECT_EQ(exporter.Handle("GET", "/healthz").status, 200);
  EXPECT_EQ(exporter.Handle("GET", "/").status, 200);
  EXPECT_EQ(exporter.Handle("GET", "/nope").status, 404);
  EXPECT_EQ(exporter.Handle("POST", "/metrics").status, 405);
}

TEST_F(HttpExporterTest, RoundTripEveryEndpoint) {
  MetricsRegistry::Global().GetCounter("http_test.round_trip").Add(1);
  LogInfo("http_test", "a record for /logz");

  HttpExporter exporter;  // port 0: ephemeral
  ASSERT_TRUE(exporter.Start());
  ASSERT_NE(exporter.port(), 0);

  const std::string metrics = Get(exporter.port(), "/metrics");
  EXPECT_EQ(StatusOf(metrics), 200) << metrics;
  EXPECT_NE(BodyOf(metrics).find("# TYPE "), std::string::npos);
  EXPECT_NE(BodyOf(metrics).find("ivmf_http_test_round_trip_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);

  std::string error;
  for (const char* path : {"/metrics.json", "/tracez", "/logz", "/healthz"}) {
    const std::string response = Get(exporter.port(), path);
    EXPECT_EQ(StatusOf(response), 200) << path << "\n" << response;
    EXPECT_TRUE(ivmf::testing::ValidateJson(BodyOf(response), &error))
        << path << ": " << error << "\n"
        << BodyOf(response);
  }

  const std::string index = Get(exporter.port(), "/");
  EXPECT_EQ(StatusOf(index), 200);
  EXPECT_NE(BodyOf(index).find("/metrics"), std::string::npos);

  exporter.Stop();
  EXPECT_FALSE(exporter.running());
}

TEST_F(HttpExporterTest, ErrorStatuses) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.Start());

  EXPECT_EQ(StatusOf(Get(exporter.port(), "/nope")), 404);
  EXPECT_EQ(StatusOf(RawGet(exporter.port(),
                            "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n")),
            405);
  EXPECT_EQ(StatusOf(RawGet(exporter.port(), "NONSENSE\r\n\r\n")), 400);
  // Query strings route to the path.
  EXPECT_EQ(StatusOf(Get(exporter.port(), "/healthz?probe=1")), 200);
}

TEST_F(HttpExporterTest, HealthzReportsWatchdogStall) {
  double now = 50.0;
  WatchdogOptions watchdog_options;
  watchdog_options.stall_seconds = 5.0;
  watchdog_options.clock = [&now] { return now; };
  Watchdog watchdog(watchdog_options);

  HttpExporterOptions options;
  options.watchdog = &watchdog;
  HttpExporter exporter(options);
  ASSERT_TRUE(exporter.Start());

  std::string response = Get(exporter.port(), "/healthz");
  EXPECT_EQ(StatusOf(response), 200) << response;
  EXPECT_NE(BodyOf(response).find("\"status\":\"ok\""), std::string::npos);

  now += 10.0;  // heartbeat is stale and the watchdog is strict: stalled
  response = Get(exporter.port(), "/healthz");
  EXPECT_EQ(StatusOf(response), 503) << response;
  EXPECT_NE(BodyOf(response).find("\"status\":\"stalled\""),
            std::string::npos);

  watchdog.Beat();
  EXPECT_EQ(StatusOf(Get(exporter.port(), "/healthz")), 200);
}

TEST_F(HttpExporterTest, ConcurrentScrapesRaceMetricWriters) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.Start());
  const uint16_t port = exporter.port();

  std::atomic<bool> stop{false};
  std::atomic<int> scrape_failures{0};

  // Writers mutate every instrument kind while scrapers snapshot them.
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&stop, w] {
      Counter& counter = MetricsRegistry::Global().GetCounter(
          "http_test.race", {{"writer", std::to_string(w)}});
      Histogram& histogram =
          MetricsRegistry::Global().GetHistogram("http_test.race.latency");
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter.Add(1);
        histogram.Record(static_cast<double>(i % 100) * 1e-4);
        if (i % 64 == 0) LogDebug("http_test", "writer tick");
        ++i;
      }
    });
  }

  std::vector<std::thread> scrapers;
  for (int s = 0; s < 3; ++s) {
    scrapers.emplace_back([&scrape_failures, port, s] {
      const char* paths[] = {"/metrics", "/metrics.json", "/logz"};
      for (int i = 0; i < 8; ++i) {
        const std::string response = Get(port, paths[(s + i) % 3]);
        if (StatusOf(response) != 200 || BodyOf(response).empty()) {
          scrape_failures.fetch_add(1);
        }
      }
    });
  }

  for (std::thread& t : scrapers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();

  EXPECT_EQ(scrape_failures.load(), 0);
  exporter.Stop();
}

TEST_F(HttpExporterTest, StopIsIdempotentAndRestartable) {
  HttpExporter first;
  ASSERT_TRUE(first.Start());
  first.Stop();
  first.Stop();  // second stop is a no-op

  HttpExporter second;  // a fresh exporter can bind again immediately
  ASSERT_TRUE(second.Start());
  EXPECT_EQ(StatusOf(Get(second.port(), "/healthz")), 200);
}

}  // namespace
}  // namespace ivmf::obs
