#include "base/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ivmf {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, IsDeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformIndex(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NormalMomentsAreStandard) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n - mean * mean, 1.0, 0.03);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child continues differently from the parent.
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

}  // namespace
}  // namespace ivmf
