// Property-based sweeps over the ISVD family: paper-level behavioural
// invariants checked across strategies, targets, shapes, and interval
// intensities (parameterized gtest).

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "core/accuracy.h"
#include "core/isvd.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace ivmf {
namespace {

IntervalMatrix MakeMatrix(size_t rows, size_t cols, double intensity,
                          uint64_t seed) {
  Rng rng(seed);
  SyntheticConfig config;
  config.rows = rows;
  config.cols = cols;
  config.interval_intensity = intensity;
  return GenerateUniformIntervalMatrix(config, rng);
}

// ---------------------------------------------------------------------------
// Sweep 1: strategy x target — reconstruction H-mean must be meaningful
// (> 0.25) at half rank on a well-behaved random instance, and the result
// structurally valid.
// ---------------------------------------------------------------------------

using StrategyTarget = std::tuple<int, DecompositionTarget>;

class StrategyTargetTest : public ::testing::TestWithParam<StrategyTarget> {};

TEST_P(StrategyTargetTest, HalfRankAccuracyIsMeaningful) {
  const auto [strategy, target] = GetParam();
  const IntervalMatrix m = MakeMatrix(16, 24, 0.5, 100 + strategy);
  IsvdOptions options;
  options.target = target;
  const IsvdResult result = RunIsvd(strategy, m, 8, options);
  const AccuracyReport report = DecompositionAccuracy(m, result.Reconstruct());
  EXPECT_GT(report.harmonic_mean, 0.25)
      << IsvdName(strategy, target);
  EXPECT_LE(report.harmonic_mean, 1.0 + 1e-12);
}

TEST_P(StrategyTargetTest, SigmaSortedDescendinglyByMidpoint) {
  const auto [strategy, target] = GetParam();
  if (strategy == 1) GTEST_SKIP() << "ISVD1 reorders sigma by alignment";
  const IntervalMatrix m = MakeMatrix(14, 20, 0.3, 200 + strategy);
  IsvdOptions options;
  options.target = target;
  const IsvdResult result = RunIsvd(strategy, m, 6, options);
  // The max-side (unaligned) ordering is descending; allow mild slack for
  // the aligned min side shifting midpoints.
  for (size_t j = 1; j < result.rank(); ++j) {
    EXPECT_GE(result.sigma[j - 1].hi, result.sigma[j].hi - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, StrategyTargetTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(DecompositionTarget::kA,
                                         DecompositionTarget::kB,
                                         DecompositionTarget::kC)));

// ---------------------------------------------------------------------------
// Sweep 2: interval intensity — higher imprecision should not *increase*
// reconstruction accuracy for the scalar baseline ISVD0 (the paper's Table
// 2b trend), and ISVD4-b should beat ISVD0 at full intensity (Figure 6a).
// ---------------------------------------------------------------------------

class IntensityTest : public ::testing::TestWithParam<double> {};

TEST_P(IntensityTest, AllStrategiesProduceFiniteAccuracy) {
  const double intensity = GetParam();
  const IntervalMatrix m = MakeMatrix(15, 25, intensity, 300);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  for (int strategy = 0; strategy <= 4; ++strategy) {
    const IsvdResult result = RunIsvd(strategy, m, 8, options);
    const AccuracyReport report =
        DecompositionAccuracy(m, result.Reconstruct());
    EXPECT_TRUE(std::isfinite(report.harmonic_mean));
    EXPECT_GE(report.harmonic_mean, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Intensities, IntensityTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 1.0));

TEST(IntensityTrendTest, AlignedStrategiesBeatNaiveAtHighIntensity) {
  // Figure 6a / Table 2: at 100% interval density and intensity the aligned
  // ISVD3/4-b dominate ISVD0. Averaged over several matrices to de-noise.
  double naive_sum = 0.0, isvd4_sum = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    const IntervalMatrix m = MakeMatrix(20, 40, 1.0, 400 + t);
    IsvdOptions options;
    options.target = DecompositionTarget::kB;
    naive_sum +=
        DecompositionAccuracy(m, Isvd0(m, 10, options).Reconstruct())
            .harmonic_mean;
    isvd4_sum +=
        DecompositionAccuracy(m, Isvd4(m, 10, options).Reconstruct())
            .harmonic_mean;
  }
  EXPECT_GT(isvd4_sum / trials, naive_sum / trials - 0.02);
}

// ---------------------------------------------------------------------------
// Sweep 3: shapes (Table 2d) — every strategy must handle tall, wide and
// near-square inputs at several ranks.
// ---------------------------------------------------------------------------

using ShapeRank = std::tuple<std::pair<int, int>, int>;

class ShapeRankTest : public ::testing::TestWithParam<ShapeRank> {};

TEST_P(ShapeRankTest, DecompositionIsWellFormed) {
  const auto [shape, rank] = GetParam();
  const auto [rows, cols] = shape;
  const IntervalMatrix m = MakeMatrix(rows, cols, 0.5, 37 * rows + cols);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  for (int strategy = 0; strategy <= 4; ++strategy) {
    const IsvdResult result = RunIsvd(strategy, m, rank, options);
    const size_t expected_rank =
        std::min<size_t>(rank, std::min<size_t>(rows, cols));
    EXPECT_EQ(result.rank(), expected_rank);
    EXPECT_EQ(result.u.rows(), static_cast<size_t>(rows));
    EXPECT_EQ(result.v.rows(), static_cast<size_t>(cols));
    EXPECT_TRUE(result.u.IsProper());
    EXPECT_TRUE(result.v.IsProper());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeRankTest,
    ::testing::Combine(::testing::Values(std::make_pair(8, 20),
                                         std::make_pair(20, 8),
                                         std::make_pair(12, 12)),
                       ::testing::Values(2, 5, 8)));

// ---------------------------------------------------------------------------
// Sweep 4: matchers inside ISVD — all three ILSA matchers must run through
// the full ISVD4 pipeline, and Hungarian's aligned similarity dominates.
// ---------------------------------------------------------------------------

class MatcherPipelineTest : public ::testing::TestWithParam<AlignMatcher> {};

TEST_P(MatcherPipelineTest, PipelineCompletes) {
  const IntervalMatrix m = MakeMatrix(14, 22, 0.8, 555);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.ilsa.matcher = GetParam();
  const IsvdResult result = Isvd4(m, 7, options);
  const AccuracyReport report = DecompositionAccuracy(m, result.Reconstruct());
  EXPECT_GT(report.harmonic_mean, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Matchers, MatcherPipelineTest,
                         ::testing::Values(AlignMatcher::kHungarian,
                                           AlignMatcher::kGreedy,
                                           AlignMatcher::kStableMarriage));

// ---------------------------------------------------------------------------
// Sweep 5: containment sanity — target-a interval reconstruction at full
// rank should cover most of the midpoint matrix (soundness of the interval
// recombination; not exact, per Corollary 2 an exact interval SVD cannot
// exist).
// ---------------------------------------------------------------------------

TEST(ContainmentTest, FullRankTargetAReconstructionCoversMidpoints) {
  const IntervalMatrix m = MakeMatrix(10, 14, 0.4, 777);
  IsvdOptions options;
  options.target = DecompositionTarget::kA;
  const IsvdResult result = Isvd1(m, 0, options);
  const IntervalMatrix recon = result.Reconstruct();
  const Matrix mid = m.Mid();
  size_t covered = 0;
  const double slack = 0.05 * mid.MaxAbs();
  for (size_t i = 0; i < m.rows(); ++i)
    for (size_t j = 0; j < m.cols(); ++j)
      if (mid(i, j) >= recon.At(i, j).lo - slack &&
          mid(i, j) <= recon.At(i, j).hi + slack)
        ++covered;
  EXPECT_GT(static_cast<double>(covered) /
                static_cast<double>(m.rows() * m.cols()),
            0.8);
}

// ---------------------------------------------------------------------------
// Sweep 6: rank monotonicity (Table 2e trend) — more rank, more accuracy,
// checked with a tolerance for stochastic jitter.
// ---------------------------------------------------------------------------

TEST(RankTrendTest, AccuracyGrowsWithRank) {
  const IntervalMatrix m = MakeMatrix(20, 30, 0.5, 888);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  double prev = -1.0;
  for (const size_t rank : {2u, 5u, 10u, 20u}) {
    const double h =
        DecompositionAccuracy(m, Isvd4(m, rank, options).Reconstruct())
            .harmonic_mean;
    EXPECT_GT(h, prev - 0.05) << "rank " << rank;
    prev = h;
  }
}

}  // namespace
}  // namespace ivmf
