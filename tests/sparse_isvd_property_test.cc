// Property tests for the sparse matrix-free ISVD path: decomposing through
// the sparse route (Golub–Kahan–Lanczos SVD for ISVD0/ISVD1, the Lanczos
// Gram operator or the four-product signed Gram for ISVD2–ISVD4) must agree
// with the dense pipeline to 1e-8 — for every strategy 0–4, every
// decomposition target (a, b, c), and both sign regimes (entrywise
// non-negative and signed). Reconstructions are compared (they are
// invariant to the eigenvector sign/permutation freedom the factor matrices
// themselves carry), together with the interval core. Rank-deficient inputs
// (exactly low-rank factors, all-zero endpoints) exercise the Krylov
// breakdown-restart paths; duplicate-singular-value inputs pin the
// degenerate-cluster behavior through the rotation-invariant
// reconstruction.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "core/isvd.h"
#include "core/sparse_isvd.h"
#include "data/ratings.h"
#include "sparse/sparse_interval_matrix.h"
#include "test_util.h"

namespace ivmf {
namespace {

// A random exactly-rank-K entrywise non-negative interval matrix: a shared
// non-negative left factor U and two ordered right factors V_lo <= V_hi, so
// lower = U V_loᵀ <= upper = U V_hiᵀ elementwise and both endpoints have
// rank exactly K.
IntervalMatrix RandomLowRankIntervalMatrix(size_t n, size_t m, size_t k,
                                           Rng& rng) {
  Matrix u(n, k), v_lo(m, k), v_hi(m, k);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < k; ++j) u(i, j) = rng.Uniform(0.1, 1.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) {
      v_lo(i, j) = rng.Uniform(0.1, 1.0);
      v_hi(i, j) = v_lo(i, j) + rng.Uniform(0.0, 0.4);
    }
  }
  return IntervalMatrix(u * v_lo.Transpose(), u * v_hi.Transpose());
}

// A random exactly-rank-K *signed* interval matrix: the shared left factor
// stays non-negative so the ordered right factors V_lo <= V_hi still give
// lower <= upper elementwise, but V ranges over negative values, so the
// matrix entries carry both signs and the four-product Gram route engages.
IntervalMatrix RandomSignedLowRankIntervalMatrix(size_t n, size_t m, size_t k,
                                                 Rng& rng) {
  Matrix u(n, k), v_lo(m, k), v_hi(m, k);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < k; ++j) u(i, j) = rng.Uniform(0.1, 1.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) {
      v_lo(i, j) = rng.Uniform(-1.0, 0.6);
      v_hi(i, j) = v_lo(i, j) + rng.Uniform(0.0, 0.4);
    }
  }
  return IntervalMatrix(u * v_lo.Transpose(), u * v_hi.Transpose());
}

void ExpectResultsAgree(const IsvdResult& dense, const IsvdResult& sparse,
                        double tol) {
  ASSERT_EQ(dense.rank(), sparse.rank());
  for (size_t j = 0; j < dense.rank(); ++j) {
    EXPECT_NEAR(dense.sigma[j].lo, sparse.sigma[j].lo, tol);
    EXPECT_NEAR(dense.sigma[j].hi, sparse.sigma[j].hi, tol);
  }
  const IntervalMatrix recon_dense = dense.Reconstruct();
  const IntervalMatrix recon_sparse = sparse.Reconstruct();
  EXPECT_TRUE(recon_sparse.ApproxEquals(recon_dense, tol))
      << "max lower diff "
      << (recon_sparse.lower() - recon_dense.lower()).MaxAbs()
      << ", max upper diff "
      << (recon_sparse.upper() - recon_dense.upper()).MaxAbs();
}

// The full strategy-family harness: (strategy 0..4) x (target a, b, c) x
// (non-negative, signed). The dense reference runs the exact solvers
// (one-sided Jacobi SVD / Jacobi eig); the sparse route runs matrix-free
// (Golub–Kahan–Lanczos SVD for 0–1, the Lanczos Gram operator for 2–4 on
// non-negative data, the four-product signed Gram otherwise). Inputs are
// exactly rank-k, so they double as rank-deficient coverage: the Krylov
// bases break down before reaching their cap and must restart cleanly.
class SparseDenseAgreement
    : public ::testing::TestWithParam<::testing::tuple<int, int, bool>> {};

TEST_P(SparseDenseAgreement, SparseStrategyMatchesDenseSibling) {
  const int strategy = ::testing::get<0>(GetParam());
  const DecompositionTarget target =
      static_cast<DecompositionTarget>(::testing::get<1>(GetParam()));
  const bool signed_entries = ::testing::get<2>(GetParam());

  Rng rng(1000 + 100 * static_cast<int>(signed_entries) + 10 * strategy +
          static_cast<int>(target));
  const size_t n = 40, m = 25, k = 4;
  const IntervalMatrix dense =
      signed_entries ? RandomSignedLowRankIntervalMatrix(n, m, k, rng)
                     : RandomLowRankIntervalMatrix(n, m, k, rng);
  const SparseIntervalMatrix sparse = SparseIntervalMatrix::FromDense(dense);
  ASSERT_EQ(sparse.IsNonNegative(), !signed_entries);

  IsvdOptions dense_options;
  dense_options.target = target;
  dense_options.eig_solver = EigSolver::kJacobi;

  IsvdOptions sparse_options = dense_options;
  sparse_options.eig_solver = EigSolver::kLanczos;

  const IsvdResult from_dense = RunIsvd(strategy, dense, k, dense_options);
  const IsvdResult from_sparse = RunIsvd(strategy, sparse, k, sparse_options);
  ExpectResultsAgree(from_dense, from_sparse, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesTargetsAndSigns, SparseDenseAgreement,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(0, 1, 2),  // targets a, b, c
                       ::testing::Bool()));

TEST(SparseIsvdFamilyTest, RequestBeyondRankStillPairsAndAgrees) {
  // Rank-3 data asked for rank 6: every Krylov basis must restart to
  // deliver the full count (zero tail singular values), and the sparse and
  // dense routes must still agree. Two scoping notes. Tolerance: a Krylov
  // solver's "zero" Ritz values carry O(eps * lambda_max) mass, and the
  // ISVD core takes square roots, so the zero tail lands at
  // O(sqrt(eps) * sigma_0) ~ 1e-7 — the 1e-6 bound is the tight one for
  // this case, not a loose family bound (the exact-rank harness above
  // holds 1e-8). Strategies: only 0–2, whose math stays well-defined at
  // zero core entries (zero-sigma columns recover as zero vectors); ISVD3/4
  // invert Σ† and the averaged factors, which is ill-posed beyond the
  // matrix rank and amplifies solver-level noise in BOTH pipelines — the
  // paper's solve/recompute strategies assume rank <= rank(M†).
  Rng rng(55);
  const IntervalMatrix dense = RandomLowRankIntervalMatrix(30, 18, 3, rng);
  const SparseIntervalMatrix sparse = SparseIntervalMatrix::FromDense(dense);
  IsvdOptions dense_options;
  dense_options.eig_solver = EigSolver::kJacobi;
  IsvdOptions sparse_options = dense_options;
  sparse_options.eig_solver = EigSolver::kLanczos;
  for (const int strategy : {0, 1, 2}) {
    const IsvdResult from_dense = RunIsvd(strategy, dense, 6, dense_options);
    const IsvdResult from_sparse = RunIsvd(strategy, sparse, 6, sparse_options);
    ASSERT_EQ(from_sparse.rank(), 6u) << "strategy " << strategy;
    ExpectResultsAgree(from_dense, from_sparse, 1e-6);
    for (size_t j = 3; j < 6; ++j) {
      EXPECT_NEAR(from_sparse.sigma[j].hi, 0.0, 1e-6)
          << "strategy " << strategy;
    }
  }
}

TEST(SparseIsvdFamilyTest, DuplicateSingularValuesAgreeOnReconstruction) {
  // diag(A, A) over a signed scalar block duplicates every singular value.
  // Factors inside a degenerate cluster are only defined up to rotation, so
  // the solvers may legitimately differ there — but the requested rank (4)
  // covers whole clusters, making the reconstruction and the core
  // rotation-invariant. This pins the degenerate-cluster behavior of every
  // strategy without over-constraining the bases.
  Rng rng(77);
  const Matrix a = ivmf::testing::RandomMatrix(12, 8, rng, -1.0, 1.0);
  Matrix block(24, 16);
  for (size_t i = 0; i < 12; ++i) {
    for (size_t j = 0; j < 8; ++j) {
      block(i, j) = a(i, j);
      block(12 + i, 8 + j) = a(i, j);
    }
  }
  const IntervalMatrix dense = IntervalMatrix::FromScalar(block);
  const SparseIntervalMatrix sparse = SparseIntervalMatrix::FromDense(dense);

  IsvdOptions dense_options;
  dense_options.eig_solver = EigSolver::kJacobi;
  IsvdOptions sparse_options = dense_options;
  sparse_options.eig_solver = EigSolver::kLanczos;
  for (const int strategy : {0, 1, 2, 3, 4}) {
    const IsvdResult from_dense = RunIsvd(strategy, dense, 4, dense_options);
    const IsvdResult from_sparse = RunIsvd(strategy, sparse, 4, sparse_options);
    SCOPED_TRACE(::testing::Message() << "strategy " << strategy);
    ExpectResultsAgree(from_dense, from_sparse, 1e-8);
    // Duplicated spectrum: the four kept values come in equal pairs.
    EXPECT_NEAR(from_sparse.sigma[0].hi, from_sparse.sigma[1].hi, 1e-8);
    EXPECT_NEAR(from_sparse.sigma[2].hi, from_sparse.sigma[3].hi, 1e-8);
  }
}

TEST(SparseIsvdFamilyTest, SignedJacobiRouteMatchesDenseExactly) {
  // EigSolver::kJacobi on signed sparse input: the four-product Gram
  // endpoints are accumulated in the same term order the dense
  // IntervalMatMul uses, so the whole pipeline agrees to roundoff.
  Rng rng(78);
  const IntervalMatrix dense = RandomSignedLowRankIntervalMatrix(35, 14, 5, rng);
  const SparseIntervalMatrix sparse = SparseIntervalMatrix::FromDense(dense);
  ASSERT_FALSE(sparse.IsNonNegative());

  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.eig_solver = EigSolver::kJacobi;
  for (const int strategy : {2, 3, 4}) {
    const IsvdResult from_dense = RunIsvd(strategy, dense, 5, options);
    const IsvdResult from_sparse = RunIsvd(strategy, sparse, 5, options);
    SCOPED_TRACE(::testing::Message() << "strategy " << strategy);
    ExpectResultsAgree(from_dense, from_sparse, 1e-10);
  }
}

TEST(SparseIsvdFamilyTest, SignedGramEigMaterializesEndpoints) {
  // Unlike the non-negative Lanczos route, the signed route fills
  // GramEig.gram (the four-product endpoints), so TruncateGramEig-style
  // reuse keeps working.
  Rng rng(79);
  const IntervalMatrix dense = RandomSignedLowRankIntervalMatrix(20, 10, 3, rng);
  const SparseIntervalMatrix sparse = SparseIntervalMatrix::FromDense(dense);
  IsvdOptions options;
  options.eig_solver = EigSolver::kLanczos;
  const GramEig gram = ComputeGramEig(sparse, 3, options);
  EXPECT_FALSE(gram.gram.empty());
  EXPECT_EQ(gram.lo.eigenvalues.size(), 3u);
  const IsvdResult r3 = Isvd3(sparse, 3, gram, options);
  EXPECT_EQ(r3.rank(), 3u);
}

TEST(SparseIsvdTest, TruncatedLanczosAgreesOnWideLowRankMatrix) {
  // cols large enough that the Krylov space is a strict subspace: the
  // truncated solver must still nail an exactly low-rank spectrum.
  Rng rng(31);
  const size_t n = 60, m = 200, k = 5;
  const IntervalMatrix dense = RandomLowRankIntervalMatrix(n, m, k, rng);
  const SparseIntervalMatrix sparse = SparseIntervalMatrix::FromDense(dense);

  IsvdOptions dense_options;
  dense_options.target = DecompositionTarget::kB;
  dense_options.eig_solver = EigSolver::kJacobi;
  dense_options.gram_side = GramSide::kAuto;  // resolves to kMMt (m > n)

  IsvdOptions sparse_options = dense_options;
  sparse_options.eig_solver = EigSolver::kLanczos;

  const IsvdResult from_dense = Isvd4(dense, k, dense_options);
  const IsvdResult from_sparse = Isvd4(sparse, k, sparse_options);
  ExpectResultsAgree(from_dense, from_sparse, 1e-8);
}

TEST(SparseIsvdTest, SparseJacobiRouteMatchesDenseJacobi) {
  // EigSolver::kJacobi on the sparse path accumulates dense Grams from the
  // sparse rows — bit-comparable to the dense route on non-negative input.
  Rng rng(32);
  RatingsConfig config;
  config.num_users = 80;
  config.num_items = 30;
  config.fill = 0.3;
  config.seed = 33;
  const SparseRatingsData data = GenerateSparseRatings(config);
  const SparseIntervalMatrix sparse = SparseCfIntervalMatrix(data, 0.3);
  const IntervalMatrix dense = sparse.ToDense();

  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.eig_solver = EigSolver::kJacobi;

  const IsvdResult from_dense = Isvd3(dense, 6, options);
  const IsvdResult from_sparse = Isvd3(sparse, 6, options);
  ExpectResultsAgree(from_dense, from_sparse, 1e-8);
}

TEST(SparseIsvdTest, CfMatrixSparseLanczosMatchesDenseLanczos) {
  // A genuinely sparse (not low-rank) recommender matrix: both routes run
  // the same Lanczos algorithm, one matrix-free, one on the materialized
  // Gram matrix.
  Rng rng(34);
  RatingsConfig config;
  config.num_users = 150;
  config.num_items = 60;
  config.fill = 0.15;
  config.seed = 35;
  const SparseRatingsData data = GenerateSparseRatings(config);
  const SparseIntervalMatrix sparse = SparseCfIntervalMatrix(data, 0.3);
  const IntervalMatrix dense = sparse.ToDense();

  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.eig_solver = EigSolver::kLanczos;

  const IsvdResult from_dense = Isvd4(dense, 8, options);
  const IsvdResult from_sparse = Isvd4(sparse, 8, options);
  ExpectResultsAgree(from_dense, from_sparse, 1e-6);
}

TEST(SparseIsvdTest, RankDeficientLowerEndpointStillDeliversRequestedRank) {
  // [0, x] intervals: the lower endpoint matrix is identically zero, so its
  // Gram operator has rank 0 and Lanczos breaks down immediately. The
  // restart logic must still deliver the requested eigenpair count or the
  // lower/upper pairing inside ISVD aborts.
  Rng rng(40);
  const size_t n = 30, m = 20, k = 5;
  std::vector<IntervalTriplet> triplets;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (!rng.Bernoulli(0.4)) continue;
      triplets.push_back({i, j, Interval(0.0, rng.Uniform(0.5, 1.0))});
    }
  }
  const SparseIntervalMatrix sparse =
      SparseIntervalMatrix::FromTriplets(n, m, std::move(triplets));

  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.eig_solver = EigSolver::kLanczos;
  // ISVD1–ISVD4 all decompose the zero lower endpoint; ISVD0 is excluded
  // (its midpoint matrix is non-zero, so its scalar core has no zero side).
  for (const int strategy : {1, 2, 3, 4}) {
    const IsvdResult result = RunIsvd(strategy, sparse, k, options);
    EXPECT_EQ(result.rank(), k) << "strategy " << strategy;
    for (size_t j = 0; j < k; ++j) {
      EXPECT_NEAR(result.sigma[j].lo, 0.0, 1e-9)
          << "strategy " << strategy;  // zero endpoint
      EXPECT_GE(result.sigma[j].hi, 0.0) << "strategy " << strategy;
    }
  }
}

TEST(SparseIsvdTest, GramEigLanczosLeavesGramEmpty) {
  Rng rng(36);
  const IntervalMatrix dense = RandomLowRankIntervalMatrix(30, 20, 3, rng);
  const SparseIntervalMatrix sparse = SparseIntervalMatrix::FromDense(dense);
  IsvdOptions options;
  options.eig_solver = EigSolver::kLanczos;
  const GramEig gram = ComputeGramEig(sparse, 3, options);
  EXPECT_TRUE(gram.gram.empty());  // never materialized
  EXPECT_EQ(gram.lo.eigenvalues.size(), 3u);
  EXPECT_EQ(gram.hi.eigenvalues.size(), 3u);
  // Reusing the precomputed GramEig across strategies works like the dense
  // path.
  const IsvdResult r2 = Isvd2(sparse, 3, gram, options);
  const IsvdResult r3 = Isvd3(sparse, 3, gram, options);
  EXPECT_EQ(r2.rank(), 3u);
  EXPECT_EQ(r3.rank(), 3u);
}

}  // namespace
}  // namespace ivmf
