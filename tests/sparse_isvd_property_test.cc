// Property tests for the sparse matrix-free ISVD path: on entrywise
// non-negative low-rank interval matrices, decomposing through the sparse
// Lanczos route must agree with the dense ComputeGramEig + Jacobi pipeline
// to 1e-8 — for every Gram-based strategy (ISVD2–ISVD4) and every
// decomposition target (a, b, c). Reconstructions are compared (they are
// invariant to the eigenvector sign/permutation freedom the factor matrices
// themselves carry), together with the interval core.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "core/isvd.h"
#include "core/sparse_isvd.h"
#include "data/ratings.h"
#include "sparse/sparse_interval_matrix.h"
#include "test_util.h"

namespace ivmf {
namespace {

// A random exactly-rank-K entrywise non-negative interval matrix: a shared
// non-negative left factor U and two ordered right factors V_lo <= V_hi, so
// lower = U V_loᵀ <= upper = U V_hiᵀ elementwise and both endpoints have
// rank exactly K.
IntervalMatrix RandomLowRankIntervalMatrix(size_t n, size_t m, size_t k,
                                           Rng& rng) {
  Matrix u(n, k), v_lo(m, k), v_hi(m, k);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < k; ++j) u(i, j) = rng.Uniform(0.1, 1.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) {
      v_lo(i, j) = rng.Uniform(0.1, 1.0);
      v_hi(i, j) = v_lo(i, j) + rng.Uniform(0.0, 0.4);
    }
  }
  return IntervalMatrix(u * v_lo.Transpose(), u * v_hi.Transpose());
}

void ExpectResultsAgree(const IsvdResult& dense, const IsvdResult& sparse,
                        double tol) {
  ASSERT_EQ(dense.rank(), sparse.rank());
  for (size_t j = 0; j < dense.rank(); ++j) {
    EXPECT_NEAR(dense.sigma[j].lo, sparse.sigma[j].lo, tol);
    EXPECT_NEAR(dense.sigma[j].hi, sparse.sigma[j].hi, tol);
  }
  const IntervalMatrix recon_dense = dense.Reconstruct();
  const IntervalMatrix recon_sparse = sparse.Reconstruct();
  EXPECT_TRUE(recon_sparse.ApproxEquals(recon_dense, tol))
      << "max lower diff "
      << (recon_sparse.lower() - recon_dense.lower()).MaxAbs()
      << ", max upper diff "
      << (recon_sparse.upper() - recon_dense.upper()).MaxAbs();
}

struct Case {
  int strategy;
  DecompositionTarget target;
};

class SparseDenseAgreement
    : public ::testing::TestWithParam<::testing::tuple<int, int>> {};

TEST_P(SparseDenseAgreement, MatrixFreePathMatchesJacobiPath) {
  const int strategy = ::testing::get<0>(GetParam());
  const DecompositionTarget target =
      static_cast<DecompositionTarget>(::testing::get<1>(GetParam()));

  Rng rng(1000 + 10 * strategy + static_cast<int>(target));
  const size_t n = 40, m = 25, k = 4;
  const IntervalMatrix dense = RandomLowRankIntervalMatrix(n, m, k, rng);
  const SparseIntervalMatrix sparse = SparseIntervalMatrix::FromDense(dense);

  IsvdOptions dense_options;
  dense_options.target = target;
  dense_options.eig_solver = EigSolver::kJacobi;

  IsvdOptions sparse_options = dense_options;
  sparse_options.eig_solver = EigSolver::kLanczos;

  const IsvdResult from_dense = RunIsvd(strategy, dense, k, dense_options);
  const IsvdResult from_sparse = RunIsvd(strategy, sparse, k, sparse_options);
  ExpectResultsAgree(from_dense, from_sparse, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndTargets, SparseDenseAgreement,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(0, 1, 2)));  // targets a, b, c

TEST(SparseIsvdTest, TruncatedLanczosAgreesOnWideLowRankMatrix) {
  // cols large enough that the Krylov space is a strict subspace: the
  // truncated solver must still nail an exactly low-rank spectrum.
  Rng rng(31);
  const size_t n = 60, m = 200, k = 5;
  const IntervalMatrix dense = RandomLowRankIntervalMatrix(n, m, k, rng);
  const SparseIntervalMatrix sparse = SparseIntervalMatrix::FromDense(dense);

  IsvdOptions dense_options;
  dense_options.target = DecompositionTarget::kB;
  dense_options.eig_solver = EigSolver::kJacobi;
  dense_options.gram_side = GramSide::kAuto;  // resolves to kMMt (m > n)

  IsvdOptions sparse_options = dense_options;
  sparse_options.eig_solver = EigSolver::kLanczos;

  const IsvdResult from_dense = Isvd4(dense, k, dense_options);
  const IsvdResult from_sparse = Isvd4(sparse, k, sparse_options);
  ExpectResultsAgree(from_dense, from_sparse, 1e-8);
}

TEST(SparseIsvdTest, SparseJacobiRouteMatchesDenseJacobi) {
  // EigSolver::kJacobi on the sparse path accumulates dense Grams from the
  // sparse rows — bit-comparable to the dense route on non-negative input.
  Rng rng(32);
  RatingsConfig config;
  config.num_users = 80;
  config.num_items = 30;
  config.fill = 0.3;
  config.seed = 33;
  const SparseRatingsData data = GenerateSparseRatings(config);
  const SparseIntervalMatrix sparse = SparseCfIntervalMatrix(data, 0.3);
  const IntervalMatrix dense = sparse.ToDense();

  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.eig_solver = EigSolver::kJacobi;

  const IsvdResult from_dense = Isvd3(dense, 6, options);
  const IsvdResult from_sparse = Isvd3(sparse, 6, options);
  ExpectResultsAgree(from_dense, from_sparse, 1e-8);
}

TEST(SparseIsvdTest, CfMatrixSparseLanczosMatchesDenseLanczos) {
  // A genuinely sparse (not low-rank) recommender matrix: both routes run
  // the same Lanczos algorithm, one matrix-free, one on the materialized
  // Gram matrix.
  Rng rng(34);
  RatingsConfig config;
  config.num_users = 150;
  config.num_items = 60;
  config.fill = 0.15;
  config.seed = 35;
  const SparseRatingsData data = GenerateSparseRatings(config);
  const SparseIntervalMatrix sparse = SparseCfIntervalMatrix(data, 0.3);
  const IntervalMatrix dense = sparse.ToDense();

  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.eig_solver = EigSolver::kLanczos;

  const IsvdResult from_dense = Isvd4(dense, 8, options);
  const IsvdResult from_sparse = Isvd4(sparse, 8, options);
  ExpectResultsAgree(from_dense, from_sparse, 1e-6);
}

TEST(SparseIsvdTest, RankDeficientLowerEndpointStillDeliversRequestedRank) {
  // [0, x] intervals: the lower endpoint matrix is identically zero, so its
  // Gram operator has rank 0 and Lanczos breaks down immediately. The
  // restart logic must still deliver the requested eigenpair count or the
  // lower/upper pairing inside ISVD aborts.
  Rng rng(40);
  const size_t n = 30, m = 20, k = 5;
  std::vector<IntervalTriplet> triplets;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (!rng.Bernoulli(0.4)) continue;
      triplets.push_back({i, j, Interval(0.0, rng.Uniform(0.5, 1.0))});
    }
  }
  const SparseIntervalMatrix sparse =
      SparseIntervalMatrix::FromTriplets(n, m, std::move(triplets));

  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.eig_solver = EigSolver::kLanczos;
  for (const int strategy : {2, 3, 4}) {
    const IsvdResult result = RunIsvd(strategy, sparse, k, options);
    EXPECT_EQ(result.rank(), k);
    for (size_t j = 0; j < k; ++j) {
      EXPECT_NEAR(result.sigma[j].lo, 0.0, 1e-9);  // zero endpoint
      EXPECT_GE(result.sigma[j].hi, 0.0);
    }
  }
}

TEST(SparseIsvdTest, GramEigLanczosLeavesGramEmpty) {
  Rng rng(36);
  const IntervalMatrix dense = RandomLowRankIntervalMatrix(30, 20, 3, rng);
  const SparseIntervalMatrix sparse = SparseIntervalMatrix::FromDense(dense);
  IsvdOptions options;
  options.eig_solver = EigSolver::kLanczos;
  const GramEig gram = ComputeGramEig(sparse, 3, options);
  EXPECT_TRUE(gram.gram.empty());  // never materialized
  EXPECT_EQ(gram.lo.eigenvalues.size(), 3u);
  EXPECT_EQ(gram.hi.eigenvalues.size(), 3u);
  // Reusing the precomputed GramEig across strategies works like the dense
  // path.
  const IsvdResult r2 = Isvd2(sparse, 3, gram, options);
  const IsvdResult r3 = Isvd3(sparse, 3, gram, options);
  EXPECT_EQ(r2.rank(), 3u);
  EXPECT_EQ(r3.rank(), 3u);
}

}  // namespace
}  // namespace ivmf
