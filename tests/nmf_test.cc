#include "factor/nmf.h"

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

Matrix RandomNonNegative(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng.Uniform(0.0, 1.0);
  return m;
}

// Low-rank non-negative ground truth.
Matrix LowRankNonNegative(size_t rows, size_t cols, size_t rank, Rng& rng) {
  return RandomNonNegative(rows, rank, rng) *
         RandomNonNegative(cols, rank, rng).Transpose();
}

TEST(NmfTest, FactorsStayNonNegative) {
  Rng rng(1);
  const Matrix m = RandomNonNegative(10, 8, rng);
  const NmfResult result = ComputeNmf(m, 4);
  for (size_t i = 0; i < result.u.rows(); ++i)
    for (size_t j = 0; j < result.u.cols(); ++j)
      EXPECT_GE(result.u(i, j), 0.0);
  for (size_t i = 0; i < result.v.rows(); ++i)
    for (size_t j = 0; j < result.v.cols(); ++j)
      EXPECT_GE(result.v(i, j), 0.0);
}

TEST(NmfTest, LossIsMonotoneNonIncreasing) {
  Rng rng(2);
  const Matrix m = RandomNonNegative(12, 9, rng);
  const NmfResult result = ComputeNmf(m, 5);
  for (size_t i = 1; i < result.loss_history.size(); ++i)
    EXPECT_LE(result.loss_history[i], result.loss_history[i - 1] + 1e-9);
}

TEST(NmfTest, RecoversLowRankStructure) {
  Rng rng(3);
  const Matrix m = LowRankNonNegative(15, 12, 3, rng);
  NmfOptions options;
  options.max_iterations = 500;
  options.tolerance = 1e-10;
  const NmfResult result = ComputeNmf(m, 3, options);
  const double rel_err =
      (result.Reconstruct() - m).FrobeniusNorm() / m.FrobeniusNorm();
  EXPECT_LT(rel_err, 0.05);
}

TEST(NmfTest, LossDecreasesSubstantially) {
  Rng rng(4);
  const Matrix m = LowRankNonNegative(10, 10, 2, rng);
  const NmfResult result = ComputeNmf(m, 2);
  EXPECT_LT(result.loss_history.back(), 0.5 * result.loss_history.front());
}

TEST(NmfTest, DeterministicForFixedSeed) {
  Rng rng(5);
  const Matrix m = RandomNonNegative(8, 6, rng);
  const NmfResult a = ComputeNmf(m, 3);
  const NmfResult b = ComputeNmf(m, 3);
  EXPECT_TRUE(a.u == b.u);
  EXPECT_TRUE(a.v == b.v);
}

TEST(NmfTest, DifferentSeedsDiffer) {
  Rng rng(6);
  const Matrix m = RandomNonNegative(8, 6, rng);
  NmfOptions options;
  options.seed = 1;
  const NmfResult a = ComputeNmf(m, 3, options);
  options.seed = 2;
  const NmfResult b = ComputeNmf(m, 3, options);
  EXPECT_FALSE(a.u == b.u);
}

TEST(IntervalNmfTest, FactorsStayNonNegative) {
  Rng rng(7);
  const Matrix base = RandomNonNegative(10, 8, rng);
  Matrix upper = base;
  for (size_t i = 0; i < 10; ++i)
    for (size_t j = 0; j < 8; ++j) upper(i, j) += rng.Uniform(0.0, 0.3);
  const IntervalMatrix m(base, upper);
  const IntervalNmfResult result = ComputeIntervalNmf(m, 4);
  EXPECT_GE(result.u.Sum(), 0.0);
  for (size_t i = 0; i < result.v_lo.rows(); ++i)
    for (size_t j = 0; j < result.v_lo.cols(); ++j) {
      EXPECT_GE(result.v_lo(i, j), 0.0);
      EXPECT_GE(result.v_hi(i, j), 0.0);
    }
}

TEST(IntervalNmfTest, LossIsMonotoneNonIncreasing) {
  Rng rng(8);
  const Matrix base = RandomNonNegative(10, 8, rng);
  Matrix upper = base;
  for (size_t i = 0; i < 10; ++i)
    for (size_t j = 0; j < 8; ++j) upper(i, j) += rng.Uniform(0.0, 0.3);
  const IntervalNmfResult result = ComputeIntervalNmf(IntervalMatrix(base, upper), 4);
  for (size_t i = 1; i < result.loss_history.size(); ++i)
    EXPECT_LE(result.loss_history[i], result.loss_history[i - 1] + 1e-9);
}

TEST(IntervalNmfTest, DegenerateInputMatchesBothEndpoints) {
  Rng rng(9);
  const Matrix m = LowRankNonNegative(12, 10, 3, rng);
  NmfOptions options;
  options.max_iterations = 500;
  const IntervalNmfResult result =
      ComputeIntervalNmf(IntervalMatrix::FromScalar(m), 3, options);
  // Both endpoint reconstructions should fit the same matrix.
  const IntervalMatrix recon = result.Reconstruct();
  EXPECT_LT((recon.lower() - m).FrobeniusNorm() / m.FrobeniusNorm(), 0.1);
  EXPECT_LT((recon.upper() - m).FrobeniusNorm() / m.FrobeniusNorm(), 0.1);
}

TEST(IntervalNmfTest, ReconstructIsProper) {
  Rng rng(10);
  const Matrix base = RandomNonNegative(8, 6, rng);
  Matrix upper = base;
  for (size_t i = 0; i < 8; ++i)
    for (size_t j = 0; j < 6; ++j) upper(i, j) += 0.2;
  const IntervalNmfResult result =
      ComputeIntervalNmf(IntervalMatrix(base, upper), 3);
  EXPECT_TRUE(result.Reconstruct().IsProper());
}

class NmfRankTest : public ::testing::TestWithParam<int> {};

TEST_P(NmfRankTest, ReconstructionErrorShrinksWithRank) {
  const int rank = GetParam();
  Rng rng(11);
  const Matrix m = RandomNonNegative(14, 12, rng);
  NmfOptions options;
  options.max_iterations = 300;
  const NmfResult result = ComputeNmf(m, rank, options);
  EXPECT_EQ(result.u.cols(), static_cast<size_t>(rank));
  EXPECT_LT(result.loss_history.back(), result.loss_history.front());
}

INSTANTIATE_TEST_SUITE_P(Ranks, NmfRankTest, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace ivmf
